package atm

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the docs don't use them.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks fails on dead relative links in README.md and docs/*.md,
// so the doc layer can't silently rot as files move. External URLs and
// in-page anchors are not checked.
func TestDocsLinks(t *testing.T) {
	pages := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, docs...)
	if len(pages) < 2 {
		t.Fatalf("expected README.md plus docs/*.md, found %v", pages)
	}
	checked := 0
	for _, page := range pages {
		body, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("%s: %v", page, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			// In-page anchor, or a path + anchor: check only the path part.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			rel := filepath.Join(filepath.Dir(page), filepath.FromSlash(target))
			if _, err := os.Stat(rel); err != nil {
				t.Errorf("%s: dead link %q (resolved %s)", page, m[1], rel)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("link checker matched no relative links; regexp or docs layout broken")
	}
}
