// Command atmd serves the ATM engine as a network memoization service:
// an HTTP front-end (docs/service.md) over the service engine's
// coalescing master loop, with the harness's warm-start / delta-chain /
// recovery-policy persistence behind it.
//
//	atmd -addr :8080 -workers 8 -mode dynamic
//	atmd -chain warm.atmchain -delta-every 30s -recover salvage
//	atmd -backlog 64        # fixed admission watermark (overload testing)
//	atmd -tht-budget 64m -evict clock -tenant-shares acme=0.5,beta=0.25
//
// Routes: POST /v1/submit, GET /v1/lookup, POST /v1/snapshot,
// GET /v1/stats, GET /metrics (Prometheus), GET /healthz. Load past the
// admission watermark is shed with 429 + Retry-After. SIGINT/SIGTERM
// drain the server and run a final snapshot save when persistence is
// configured.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atm/internal/core"
	"atm/internal/harness"
	"atm/internal/hashx"
	"atm/internal/persist"
	"atm/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 0, "task-runtime workers (0 = GOMAXPROCS)")
		mode       = flag.String("mode", "dynamic", "memoization mode: baseline|static|dynamic|fixed")
		level      = flag.Int("level", 15, "p level for -mode fixed")
		noIKT      = flag.Bool("no-ikt", false, "disable the In-flight Key Table")
		coalesce   = flag.Int("coalesce", 0, "max tasks folded into one engine batch (0 = 512)")
		backlog    = flag.Int("backlog", 0, "fixed admission watermark in tasks (0 = adaptive LLC-sized)")
		resetEvery = flag.Int("reset-every", 0, "engine batches between runtime resets (0 = 64)")
		seed       = flag.Uint64("seed", 0, "ATM shuffle-plan seed")
		snapshot   = flag.String("snapshot", "", "whole-table snapshot file: warm-start from it when present, save back on shutdown/snapshot requests")
		loadPath   = flag.String("load", "", "whole-table warm-start file (overrides -snapshot's load half)")
		savePath   = flag.String("save", "", "whole-table save file (overrides -snapshot's save half)")
		chainPath  = flag.String("chain", "", "incremental chain file: warm-start from it and append delta records on saves (supersedes the whole-table flags)")
		deltaEvery = flag.Duration("delta-every", 0, "also save a snapshot every interval")
		recoverStr = flag.String("recover", "strict", "damaged-snapshot policy: strict|salvage|cold")
		noSync     = flag.Bool("nosync", false, "skip fsync on snapshot saves (a crash may lose or tear the most recent saves)")
		hashStr    = flag.String("hash", "", "ATM key hash function: lookup3 (default) | xxh3 | wyhash — folded into the snapshot fingerprint, so warm state is per-function")
		budgetStr  = flag.String("tht-budget", "", "THT memory budget in bytes, k/m/g suffixes accepted (empty = unbounded)")
		evictStr   = flag.String("evict", "", "eviction policy under -tht-budget: fifo (default) | clock | tinylfu")
		sharesStr  = flag.String("tenant-shares", "", "per-tenant budget shares, e.g. acme=0.5,beta=0.25 (requires -tht-budget)")
		maxTenants = flag.Int("max-tenants", 0, "distinct tenant namespaces served (0 = 64)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	recoverPolicy, err := harness.ParseRecoverPolicy(*recoverStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	hashFunc, err := hashx.ParseFunc(*hashStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	budget, err := harness.ParseByteSize(*budgetStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	evict, err := core.ParseEvictPolicy(*evictStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shares, err := harness.ParseTenantShares(*sharesStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := (core.Config{THTBudgetBytes: budget, THTEviction: evict, TenantShares: shares}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec := harness.ATMSpec{}
	switch *mode {
	case "baseline", "off":
		// No memoization: every task executes (for A/B load tests).
	case "static":
		spec = harness.Static(!*noIKT)
	case "dynamic":
		spec = harness.Dynamic(!*noIKT)
	case "fixed":
		spec = harness.Fixed(*level, !*noIKT)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	opt := harness.RunOptions{
		Seed:               *seed,
		Hash:               hashFunc,
		SnapshotPath:       *snapshot,
		SnapshotLoad:       *loadPath,
		SnapshotSave:       *savePath,
		SnapshotChain:      *chainPath,
		SnapshotDeltaEvery: *deltaEvery,
		Recover:            recoverPolicy,
		THTBudgetBytes:     budget,
		THTEviction:        evict,
		TenantShares:       shares,
	}
	if *noSync {
		opt.Sync = persist.SyncOff
	}

	engine, info := harness.Serve(spec, opt, service.Config{
		Workers:    *workers,
		Backlog:    *backlog,
		Coalesce:   *coalesce,
		ResetEvery: *resetEvery,
		MaxTenants: *maxTenants,
	})

	if info.SnapshotErr != nil {
		fmt.Fprintf(os.Stderr, "atmd: snapshot load failed (-recover %s): %v; serving cold\n", recoverPolicy, info.SnapshotErr)
	}
	switch {
	case info.WarmStart && info.Salvaged:
		fmt.Printf("atmd: warm start from salvaged snapshot (%d entries restored; %d torn bytes truncated: %s)\n",
			info.RestoredEntries, info.Recovery.BytesTruncated, info.Recovery.Reason)
	case info.WarmStart:
		fmt.Printf("atmd: warm start (%d entries restored)\n", info.RestoredEntries)
	case info.ColdFallback:
		fmt.Println("atmd: damaged snapshot could not warm-start; serving cold")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("atmd: serving on %s (mode %s, kinds %s)\n", *addr, *mode, strings.Join(engine.KindNames(), ","))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("atmd: %v: draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "atmd: %v\n", err)
			_ = engine.Close()
			os.Exit(1)
		}
	}

	// Close drains queued work and runs the final save.
	if err := engine.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "atmd: final snapshot save failed: %v\n", err)
		os.Exit(1)
	}
	if st := engine.Stats(); len(st.Types) > 0 {
		var tasks, memoized int64
		for _, ts := range st.Types {
			tasks += ts.Tasks
			memoized += ts.MemoizedTHT + ts.MemoizedIKT
		}
		fmt.Printf("atmd: served %d tasks, %d memoized, THT %d entries / %d bytes\n",
			tasks, memoized, st.THTEntries, st.THTBytes)
	}
}
