// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output (stdin or -in) and compares the metrics named
// in a committed baseline file (-baseline, e.g. BENCH_3.json) against the
// measured values, failing the run — exit status 1 and a per-gate report
// — when any timed metric regresses by more than the allowed fraction or
// any allocation count grows.
//
// Timed metrics (ns/op and custom ns-flavored metrics) are gated at
//
//	measured > baseline × (1 + max_regress) × slack
//
// where max_regress comes from the baseline file (the repo's recorded
// tolerance, default 0.20) and -slack is a CI-side multiplier (default 1)
// that absorbs the machine delta between the box that recorded the
// baseline and the CI runner — set it so the gate stays quiet on honest
// runs but still trips on a 2x slowdown. Allocation gates (allocs/op)
// never get slack: allocation counts are machine-independent, so any
// growth over baseline fails.
//
// Refreshing baselines: rerun the bench command recorded in the baseline
// file on a quiet machine and pass -update — benchgate rewrites the
// gate.benches values (timed metrics and allocs) in place from the
// measured output, leaving every other field of the baseline file
// untouched, instead of gating. Review the diff and commit it alongside
// the PERFORMANCE.md section explaining the move — see docs/ci.md.
//
// Usage:
//
//	go test -run '^$' -bench 'SubmitBatch|RuntimeSubmitWait|MemoizedVsExecuted' \
//	    -benchmem -benchtime 200ms . | benchgate -baseline BENCH_3.json -slack 1.5
//	go test -run '^$' -bench ... -benchmem -benchtime 2s . \
//	    | benchgate -baseline BENCH_4.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// baselineFile is the subset of the BENCH_*.json schema the gate reads;
// everything else in the file (prose, raw results) is ignored.
type baselineFile struct {
	Gate gate `json:"gate"`
}

type gate struct {
	// MaxRegress is the allowed fractional regression for timed metrics
	// (0.20 = +20%). Omitted means 0.20; an explicit 0 means
	// zero-tolerance (any timed regression beyond -slack fails).
	MaxRegress *float64 `json:"max_regress"`
	// Benches are the gated benchmarks.
	Benches []benchGate `json:"benches"`
}

type benchGate struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix,
	// e.g. "BenchmarkSubmitBatch/batched".
	Name string `json:"name"`
	// Metric is the gated unit as printed by the bench ("ns/op",
	// "master-cpu-ns/task", ...).
	Metric string `json:"metric"`
	// Value is the baseline for Metric.
	Value float64 `json:"value"`
	// AllocsPerOp, when non-nil, additionally gates allocs/op at this
	// exact baseline (no slack: allocation counts are deterministic).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parseBench parses `go test -bench` output into name → unit → value.
// A bench line is "BenchmarkName-8  <iters>  <value> <unit>  ..." with
// value/unit pairs after the iteration count.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		m := out[name]
		if m == nil {
			m = map[string]float64{}
			out[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			m[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline JSON file with a top-level \"gate\" object (required)")
	inPath := flag.String("in", "", "bench output file (default stdin)")
	slack := flag.Float64("slack", 1.0, "CI machine-delta multiplier applied to timed thresholds (never to allocs)")
	update := flag.Bool("update", false, "rewrite the baseline's gate values from the measured output instead of gating")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(bf.Gate.Benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no gate.benches entries\n", *baselinePath)
		os.Exit(2)
	}
	maxRegress := 0.20
	if bf.Gate.MaxRegress != nil {
		maxRegress = *bf.Gate.MaxRegress
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading bench output: %v\n", err)
		os.Exit(2)
	}

	if *update {
		if err := updateBaseline(*baselinePath, raw, measured); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		return
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	for _, g := range bf.Gate.Benches {
		got, ok := measured[g.Name]
		if !ok {
			fail("%s: benchmark missing from output", g.Name)
			continue
		}
		v, ok := got[g.Metric]
		if !ok {
			fail("%s: metric %q missing from output", g.Name, g.Metric)
			continue
		}
		limit := g.Value * (1 + maxRegress) * *slack
		delta := 100 * (v/g.Value - 1)
		if v > limit {
			fail("%s %s: %.1f vs baseline %.1f (%+.1f%%, limit %.1f)", g.Name, g.Metric, v, g.Value, delta, limit)
		} else {
			fmt.Printf("ok    %s %s: %.1f vs baseline %.1f (%+.1f%%, limit %.1f)\n", g.Name, g.Metric, v, g.Value, delta, limit)
		}
		if g.AllocsPerOp != nil {
			a, ok := got["allocs/op"]
			switch {
			case !ok:
				fail("%s: allocs/op missing (run the bench with -benchmem)", g.Name)
			case a > *g.AllocsPerOp:
				fail("%s allocs/op: %.0f vs baseline %.0f (allocation regressions get no slack)", g.Name, a, *g.AllocsPerOp)
			default:
				fmt.Printf("ok    %s allocs/op: %.0f vs baseline %.0f\n", g.Name, a, *g.AllocsPerOp)
			}
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// updateBaseline rewrites the gate.benches values in the baseline file
// from the measured output. It works on the raw JSON as generic maps so
// every field outside the gated values — prose, recorded results,
// max_regress — survives untouched, and refuses to write anything when
// any gated benchmark or metric is missing from the output: a half-
// refreshed baseline would gate against a mix of machines.
func updateBaseline(path string, raw []byte, measured map[string]map[string]float64) error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}
	gate, _ := doc["gate"].(map[string]any)
	benches, _ := gate["benches"].([]any)
	if len(benches) == 0 {
		return fmt.Errorf("%s has no gate.benches entries", path)
	}
	type change struct {
		bench  map[string]any
		metric string
		value  float64
		allocs *float64
	}
	var changes []change
	for i, b := range benches {
		bm, ok := b.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: gate.benches[%d] is not an object", path, i)
		}
		name, _ := bm["name"].(string)
		metric, _ := bm["metric"].(string)
		got, ok := measured[name]
		if !ok {
			return fmt.Errorf("cannot update: benchmark %s missing from output", name)
		}
		v, ok := got[metric]
		if !ok {
			return fmt.Errorf("cannot update: %s metric %q missing from output", name, metric)
		}
		c := change{bench: bm, metric: metric, value: v}
		if _, gated := bm["allocs_per_op"]; gated {
			a, ok := got["allocs/op"]
			if !ok {
				return fmt.Errorf("cannot update: %s allocs/op missing (run the bench with -benchmem)", name)
			}
			c.allocs = &a
		}
		changes = append(changes, c)
	}
	for _, c := range changes {
		old, _ := c.bench["value"].(float64)
		c.bench["value"] = c.value
		fmt.Printf("update  %s %s: %.1f -> %.1f\n", c.bench["name"], c.metric, old, c.value)
		if c.allocs != nil {
			c.bench["allocs_per_op"] = *c.allocs
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchgate: rewrote %d gate values in %s\n", len(changes), path)
	return nil
}
