// Command atmload drives an atmd server with an open-loop workload and
// reports latency percentiles, shed counts and the server's warm-hit
// ratio (docs/service.md).
//
// Open-loop means arrivals follow the configured rate regardless of how
// fast the server responds; each request's latency is measured from its
// intended arrival time, so server-side queueing shows up in the
// percentiles instead of silently slowing the generator down.
//
//	atmload -url http://127.0.0.1:8080 -n 100000 -rate 5000 -keys 512
//	atmload -mix spin=1 -rate 2000 -n 4000 -require-shed   # overload probe
//
// The exit status is 0 only when the run (and any -require-* assertion)
// succeeded, so CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"atm/internal/service"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "atmd base URL")
		n        = flag.Int("n", 100000, "total HTTP requests")
		rate     = flag.Float64("rate", 2000, "offered arrival rate, requests/second")
		batch    = flag.Int("batch", 1, "tasks per request body")
		mixStr   = flag.String("mix", "", "workload mix as kind=weight,... (default: the built-in five-app mix)")
		keys     = flag.Uint64("keys", 1024, "key-space cardinality per kind (smaller = more warm hits)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		inflight = flag.Int("inflight", 128, "max concurrent requests")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		binary   = flag.Bool("binary", false, "use the binary application/x-atm-tasks encoding")
		keyed    = flag.Bool("keyed", false, "send {kind,key,seed} specs and let the server expand inputs")
		report   = flag.String("report", "", "write the JSON report to this file (default: stdout)")
		reqWarm  = flag.Float64("require-warm-hits", -1, "exit nonzero unless the server's warm-hit ratio over the run exceeds this")
		reqShed  = flag.Bool("require-shed", false, "exit nonzero unless the server shed at least one request (backpressure probe)")
		reqOK    = flag.Float64("require-ok", -1, "exit nonzero unless ok/(ok+errors) is at least this (sheds excluded)")
		quiet    = flag.Bool("q", false, "suppress the human-readable summary")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep, err := service.RunLoad(service.LoadConfig{
		URL:       strings.TrimRight(*url, "/"),
		Rate:      *rate,
		Requests:  *n,
		Batch:     *batch,
		Mix:       mix,
		Keys:      *keys,
		Seed:      *seed,
		InFlight:  *inflight,
		Timeout:   *timeout,
		Binary:    *binary,
		KeyedBody: *keyed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "atmload: %v\n", err)
		os.Exit(1)
	}

	out, _ := json.MarshalIndent(rep, "", "  ")
	out = append(out, '\n')
	if *report != "" {
		if err := os.WriteFile(*report, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "atmload: %v\n", err)
			os.Exit(1)
		}
	} else if *quiet {
		os.Stdout.Write(out)
	}

	if !*quiet {
		fmt.Printf("atmload: %d requests (%d tasks) in %.1fs: %d ok, %d shed, %d errors\n",
			rep.Requests, rep.Tasks, rep.DurationMS/1000, rep.OK, rep.Shed, rep.Errors)
		fmt.Printf("  offered %.0f req/s, achieved %.0f req/s\n", rep.OfferedRate, rep.AchievedRate)
		fmt.Printf("  latency from intended arrival: p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms\n",
			rep.P50MS, rep.P90MS, rep.P99MS, rep.P999MS, rep.MaxMS)
		fmt.Printf("  server over the run: %d tasks, %d executed, %d memo(THT), %d memo(IKT) — warm-hit ratio %.1f%%\n",
			rep.Server.ATMTasks, rep.Server.ATMExecuted, rep.Server.MemoTHT, rep.Server.MemoIKT, 100*rep.WarmHitRatio)
		if rep.FirstError != "" {
			fmt.Printf("  first error: %s\n", rep.FirstError)
		}
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "atmload: "+format+"\n", args...)
		os.Exit(1)
	}
	if *reqWarm >= 0 && !(rep.WarmHitRatio > *reqWarm) {
		fail("warm-hit ratio %.4f not above required %.4f", rep.WarmHitRatio, *reqWarm)
	}
	if *reqShed && rep.Shed == 0 {
		fail("expected shed requests (429), saw none")
	}
	if *reqOK >= 0 {
		answered := rep.OK + rep.Errors
		frac := 1.0
		if answered > 0 {
			frac = float64(rep.OK) / float64(answered)
		}
		if frac < *reqOK {
			fail("ok fraction %.4f below required %.4f (first error: %s)", frac, *reqOK, rep.FirstError)
		}
	}
}

// parseMix parses "kind=weight,kind=weight"; empty means the default.
func parseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, wstr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad mix weight %q: %v", wstr, err)
		}
		mix[name] = w
	}
	return mix, nil
}
