package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atm/internal/core"
	"atm/internal/persist"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// buildShard runs a small static workload over [from, from+n) inputs
// and returns the engine's chain parts: an empty base plus one delta.
func buildShard(t *testing.T, from, n int) (*core.Snapshot, *core.Delta) {
	t.Helper()
	memo := core.New(core.Config{Mode: core.ModeStatic})
	memo.EnableDeltaTracking()
	base, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Float64s(0), task.Float64s(1)
		for i := range in {
			out[i] = 2 * in[i]
		}
	}})
	for v := from; v < from+n; v++ {
		in := region.NewFloat64(4)
		for i := range in.Data {
			in.Data[i] = float64(v*10 + i)
		}
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(4)))
	}
	rt.Wait()
	d, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	return base, d
}

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestInspectAndVerify(t *testing.T) {
	dir := t.TempDir()
	base, d := buildShard(t, 0, 4)
	chain := filepath.Join(dir, "chain.atmsnap")
	if err := persist.SaveChain(chain, base, []*core.Delta{d}); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "full.atmsnap")
	full, err := persist.Compact(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.Save(v1, full); err != nil {
		t.Fatal(err)
	}

	code, out, errw := runCmd(t, "inspect", chain, v1)
	if code != 0 {
		t.Fatalf("inspect: code %d, stderr %s", code, errw)
	}
	for _, want := range []string{"version 2", "version 1", "delta 1:", `type "double"`, "4 entries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runCmd(t, "verify", chain, v1)
	if code != 0 || strings.Count(out, "OK") != 2 {
		t.Fatalf("verify: code %d, out %s", code, out)
	}

	// Corruption: flip one byte in the chain tail and verify must fail
	// with a nonzero exit and a typed complaint.
	data, err := os.ReadFile(chain)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	bad := filepath.Join(dir, "bad.atmsnap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw = runCmd(t, "verify", bad)
	if code == 0 || !strings.Contains(errw, "FAIL") {
		t.Fatalf("verify of a corrupt file must fail: code %d, stderr %s", code, errw)
	}
}

func TestCompactFoldsChainFiles(t *testing.T) {
	dir := t.TempDir()
	base, d1 := buildShard(t, 0, 3)
	_, d2 := buildShard(t, 3, 2) // same engine config: fingerprints match
	chain := filepath.Join(dir, "chain.atmsnap")
	if err := persist.SaveChain(chain, base, []*core.Delta{d1}); err != nil {
		t.Fatal(err)
	}
	cont := filepath.Join(dir, "cont.atmsnap")
	if err := persist.SaveChain(cont, nil, []*core.Delta{d2}); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "full.atmsnap")
	code, out, errw := runCmd(t, "compact", "-o", outFile, chain, cont)
	if code != 0 {
		t.Fatalf("compact: code %d, stderr %s", code, errw)
	}
	if !strings.Contains(out, "5 entries") {
		t.Fatalf("compact summary: %s", out)
	}
	full, deltas, err := persist.LoadChain(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if full == nil || len(deltas) != 0 {
		t.Fatal("compact output must be a single base record")
	}
	var entries int
	for _, sec := range full.Types {
		entries += len(sec.Entries)
	}
	if entries != 5 {
		t.Fatalf("compacted entries: %d", entries)
	}

	// A delta-only file cannot start a chain — and cannot be a merge
	// shard either (merge inputs are independent shards).
	code, _, _ = runCmd(t, "compact", "-o", outFile, cont)
	if code == 0 {
		t.Fatal("compact of a baseless chain must fail")
	}
	code, _, errw = runCmd(t, "merge", "-o", outFile, cont)
	if code == 0 || !strings.Contains(errw, "delta-only") {
		t.Fatalf("merge of a delta-only file must fail with guidance: code %d, stderr %s", code, errw)
	}
	// A second base in a continuation is rejected.
	code, _, _ = runCmd(t, "compact", "-o", outFile, chain, chain)
	if code == 0 {
		t.Fatal("compact with two bases must fail")
	}
}

func TestMergeCombinesShardsAndRestores(t *testing.T) {
	dir := t.TempDir()
	baseA, dA := buildShard(t, 0, 4) // inputs 0..3
	baseB, dB := buildShard(t, 2, 4) // inputs 2..5: overlaps A on 2,3
	shardA := filepath.Join(dir, "a.atmsnap")
	shardB := filepath.Join(dir, "b.atmsnap")
	if err := persist.SaveChain(shardA, baseA, []*core.Delta{dA}); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveChain(shardB, baseB, []*core.Delta{dB}); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.atmsnap")
	code, _, errw := runCmd(t, "merge", "-o", merged, shardA, shardB)
	if code != 0 {
		t.Fatalf("merge: code %d, stderr %s", code, errw)
	}

	// The merged file warm-starts an engine that serves the union of
	// both shards' inputs without executing a body.
	full, _, err := persist.LoadChain(merged)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.Restore(core.Config{Mode: core.ModeStatic}, full)
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: warm})
	defer rt.Close()
	executed := 0
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		executed++
		in, out := task.Float64s(0), task.Float64s(1)
		for i := range in {
			out[i] = 2 * in[i]
		}
	}})
	for v := 0; v < 6; v++ {
		in := region.NewFloat64(4)
		for i := range in.Data {
			in.Data[i] = float64(v*10 + i)
		}
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(4)))
	}
	rt.Wait()
	if executed != 0 {
		t.Fatalf("merged warm start executed %d bodies instead of serving the shard union", executed)
	}
}

func TestUsageAndUnknownCommand(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("bare invocation must print usage with code 2")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Fatal("unknown command must print usage with code 2")
	}
	if code, _, _ := runCmd(t, "merge", "-o", ""); code != 2 {
		t.Fatal("merge without output/inputs must print usage with code 2")
	}
}

// tornChain writes a two-delta chain and returns the path of a copy
// whose tail is cut mid-record, plus the intact original for reference.
func tornChain(t *testing.T, dir string) (torn, intact string) {
	t.Helper()
	base, d1 := buildShard(t, 0, 3)
	_, d2 := buildShard(t, 3, 2)
	intact = filepath.Join(dir, "intact.atmsnap")
	if err := persist.SaveChain(intact, base, []*core.Delta{d1, d2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	torn = filepath.Join(dir, "torn.atmsnap")
	if err := os.WriteFile(torn, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	return torn, intact
}

// TestVerifyExitCodes pins the recovery-script contract: 0 clean, 2
// salvageable torn tail, 3 unrecoverable corruption, 1 unreadable —
// and a multi-file run exits with its worst file's code.
func TestVerifyExitCodes(t *testing.T) {
	dir := t.TempDir()
	torn, intact := tornChain(t, dir)

	if code, out, _ := runCmd(t, "verify", intact); code != 0 || !strings.Contains(out, "OK") {
		t.Fatalf("clean: code %d, out %s", code, out)
	}
	code, out, _ := runCmd(t, "verify", torn)
	if code != 2 || !strings.Contains(out, "TORN") || !strings.Contains(out, "snapshotctl repair") {
		t.Fatalf("torn: code %d, out %s", code, out)
	}

	data, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff // inside the last record body: CRC trips
	corrupt := filepath.Join(dir, "corrupt.atmsnap")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errw := runCmd(t, "verify", corrupt); code != 3 || !strings.Contains(errw, "FAIL") {
		t.Fatalf("corrupt: code %d, stderr %s", code, errw)
	}

	if code, _, _ := runCmd(t, "verify", filepath.Join(dir, "absent.atmsnap")); code != 1 {
		t.Fatalf("unreadable: code %d", code)
	}

	// Worst file wins: clean + torn + corrupt -> 3.
	if code, _, _ := runCmd(t, "verify", intact, torn, corrupt); code != 3 {
		t.Fatalf("mixed: code %d, want 3", code)
	}
}

func TestRepairCommand(t *testing.T) {
	dir := t.TempDir()
	torn, intact := tornChain(t, dir)

	code, out, errw := runCmd(t, "repair", torn)
	if code != 0 || !strings.Contains(out, "repaired") {
		t.Fatalf("repair: code %d, out %s, stderr %s", code, out, errw)
	}
	// The repaired file verifies clean and accepts appends (the chain
	// lost its torn last record but kept everything before it).
	if code, out, _ := runCmd(t, "verify", torn); code != 0 || !strings.Contains(out, "1 deltas") {
		t.Fatalf("verify after repair: code %d, out %s", code, out)
	}
	// Repairing a clean file is a reported no-op.
	if code, out, _ := runCmd(t, "repair", intact); code != 0 || !strings.Contains(out, "clean") {
		t.Fatalf("repair clean: code %d, out %s", code, out)
	}
	// Repair refuses corruption.
	data, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	corrupt := filepath.Join(dir, "corrupt.atmsnap")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errw := runCmd(t, "repair", corrupt); code != 3 || !strings.Contains(errw, "FAIL") {
		t.Fatalf("repair corrupt: code %d, stderr %s", code, errw)
	}
	if after, _ := os.ReadFile(corrupt); !bytes.Equal(after, data) {
		t.Fatal("repair must not modify an unrecoverable file")
	}
}

func TestScrubCommand(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "shard0")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	torn, intact := tornChain(t, shard)
	// An orphaned temp file from a crashed save, and a non-snapshot
	// bystander file that scrub must leave alone.
	orphan := intact + ".tmp"
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	readme := filepath.Join(shard, "README.txt")
	if err := os.WriteFile(readme, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errw := runCmd(t, "scrub", dir)
	if code != 2 {
		t.Fatalf("scrub: code %d, out %s, stderr %s", code, out, errw)
	}
	if !strings.Contains(out, "1 clean, 1 torn") || !strings.Contains(out, "1 orphaned temps") {
		t.Fatalf("scrub summary: %s", out)
	}
	if strings.Contains(out, "README") {
		t.Fatalf("scrub must skip non-snapshot files silently:\n%s", out)
	}

	code, out, errw = runCmd(t, "scrub", "-repair", dir)
	if code != 0 {
		t.Fatalf("scrub -repair: code %d, out %s, stderr %s", code, out, errw)
	}
	if !strings.Contains(out, "1 repaired") || !strings.Contains(out, "1 swept") {
		t.Fatalf("scrub -repair summary: %s", out)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("scrub -repair must remove the orphaned temp file")
	}
	// Everything now verifies clean; a second scrub is all-clean.
	if code, out, _ := runCmd(t, "scrub", dir); code != 0 || !strings.Contains(out, "2 clean, 0 torn") {
		t.Fatalf("post-repair scrub: code %d, out %s", code, out)
	}
	if code, _, _ := runCmd(t, "verify", torn, intact); code != 0 {
		t.Fatalf("post-repair verify: code %d", code)
	}
}
