// Command snapshotctl operates on ATM memoization snapshot files —
// version-1 whole-table snapshots and version-2 incremental chains
// (docs/persistence.md):
//
//	snapshotctl inspect <file>...          summarize header, records and sections
//	snapshotctl verify <file>...           classify file health (see exit codes)
//	snapshotctl repair <file>...           truncate torn tails, sweep stale temp files
//	snapshotctl scrub [-repair] <dir>...   walk shard directories, classify every snapshot
//	snapshotctl compact -o out <file>...   fold a chain (base + deltas) into one full snapshot
//	snapshotctl merge -o out <file>...     merge shard snapshots/chains into one warm-start file
//
// verify and scrub distinguish outcomes by exit code so recovery
// scripts can branch without parsing output: 0 every file clean, 2 at
// least one salvageable torn tail (a crash artifact; `snapshotctl
// repair` fixes it), 3 at least one unrecoverable file (corruption —
// restore from a replica or start cold), 1 for I/O errors. Invocation
// errors also exit 2 but print a usage line to stderr.
//
// compact consumes one chain: the first file must carry the base
// record, later files may be delta-only continuations (a shard's
// incremental saves), applied in argument order. merge first compacts
// every input independently, then combines them last-writer-wins by
// key with the deterministic tie-break pinned in persist.MergeSnapshots
// — the shard-merge workflow of a sweep split across machines. Both
// write a version-2 file holding a single base record.
package main

import (
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"

	"atm/internal/core"
	"atm/internal/persist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(err io.Writer) int {
	fmt.Fprintln(err, "usage: snapshotctl <inspect|verify|repair|scrub|compact|merge> [-o out] [-repair] <file|dir>...")
	return 2
}

func run(args []string, out, errw io.Writer) int {
	if len(args) < 1 {
		return usage(errw)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "inspect":
		return inspect(rest, out, errw)
	case "verify":
		return verify(rest, out, errw)
	case "repair":
		return repair(rest, out, errw)
	case "scrub":
		return scrub(rest, out, errw)
	case "compact":
		return fold(rest, out, errw, false)
	case "merge":
		return fold(rest, out, errw, true)
	default:
		fmt.Fprintf(errw, "snapshotctl: unknown command %q\n", cmd)
		return usage(errw)
	}
}

// loadFile decodes one snapshot file of either version.
func loadFile(path string) (*core.Snapshot, []*core.Delta, error) {
	return persist.LoadChain(path)
}

// decodeAny decodes already-read bytes of either format version.
func decodeAny(path string, data []byte) (ver uint32, base *core.Snapshot, deltas []*core.Delta, err error) {
	if ver, err = persist.FileVersion(data); err != nil {
		return 0, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	switch ver {
	case persist.Version:
		base, err = persist.Unmarshal(data)
	case persist.Version2:
		base, deltas, err = persist.UnmarshalChain(data)
	default:
		err = fmt.Errorf("unsupported file version %d", ver)
	}
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return ver, base, deltas, nil
}

func inspect(paths []string, out, errw io.Writer) int {
	if len(paths) == 0 {
		return usage(errw)
	}
	code := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(errw, "snapshotctl: %v\n", err)
			code = 1
			continue
		}
		ver, base, deltas, err := decodeAny(path, data)
		if err != nil {
			fmt.Fprintf(errw, "snapshotctl: %v\n", err)
			code = 1
			continue
		}
		fp := fingerprintOf(base, deltas)
		// The hash name is a best-effort decode of the fingerprint's
		// marker bits (see core.FingerprintHashFunc): display only.
		fmt.Fprintf(out, "%s: version %d, fingerprint %#016x (hash %s), %d bytes\n",
			path, ver, fp, core.FingerprintHashFunc(fp), len(data))
		if base != nil {
			entries, bytes := snapshotStats(base)
			fmt.Fprintf(out, "  base: %d sections, %d entries, ~%d payload bytes (IKT inserts=%d defers=%d rejected=%d)\n",
				len(base.Types), entries, bytes, base.IKT.Inserts, base.IKT.Defers, base.IKT.Rejected)
			for i := range base.Types {
				sec := &base.Types[i]
				phase := "training"
				if sec.Steady {
					phase = "steady"
				}
				fmt.Fprintf(out, "    type %-24q %s level=%d successes=%d excluded=%d entries=%d\n",
					sec.Name, phase, sec.Level, sec.Successes, sec.Excluded, len(sec.Entries))
			}
		}
		for i, d := range deltas {
			types, metas, entries := d.Stats()
			if tombs := d.Tombstones(); tombs > 0 {
				fmt.Fprintf(out, "  delta %d: %d types (%d with metadata), %d entries, %d tombstones\n", i+1, types, metas, entries, tombs)
			} else {
				fmt.Fprintf(out, "  delta %d: %d types (%d with metadata), %d entries\n", i+1, types, metas, entries)
			}
		}
	}
	return code
}

func fingerprintOf(base *core.Snapshot, deltas []*core.Delta) uint64 {
	if base != nil {
		return base.Fingerprint
	}
	if len(deltas) > 0 {
		return deltas[0].Fingerprint
	}
	return 0
}

func snapshotStats(s *core.Snapshot) (entries int, payload int64) {
	for i := range s.Types {
		entries += len(s.Types[i].Entries)
		for j := range s.Types[i].Entries {
			e := &s.Types[i].Entries[j]
			for _, r := range e.Outs {
				payload += int64(r.NumBytes())
			}
			for _, r := range e.Ins {
				payload += int64(r.NumBytes())
			}
		}
	}
	return entries, payload
}

// Verify/scrub exit codes, also used as per-file severities (a run's
// exit code is its worst file's).
const (
	fileClean         = 0
	fileIOError       = 1
	fileTorn          = 2
	fileUnrecoverable = 3
)

// classify decides one file's health for verify and scrub: clean,
// salvageable torn tail, unrecoverable corruption, or unreadable.
func classify(path string) (code int, base *core.Snapshot, deltas []*core.Delta, rep persist.RecoveryReport, err error) {
	base, deltas, rep, err = persist.LoadChainSalvage(path)
	switch {
	case err == nil && rep.Clean():
		return fileClean, base, deltas, rep, nil
	case err == nil:
		return fileTorn, base, deltas, rep, nil
	case rep.Reason == "":
		// No decode ran: the file could not be read at all.
		return fileIOError, nil, nil, rep, err
	default:
		return fileUnrecoverable, nil, nil, rep, err
	}
}

func verify(paths []string, out, errw io.Writer) int {
	if len(paths) == 0 {
		return usage(errw)
	}
	code := 0
	for _, path := range paths {
		c, base, deltas, rep, err := classify(path)
		switch c {
		case fileClean:
			entries := 0
			if base != nil {
				entries, _ = snapshotStats(base)
			}
			for _, d := range deltas {
				entries += len(d.Entries)
			}
			fmt.Fprintf(out, "%s: OK (%d deltas, %d entries)\n", path, len(deltas), entries)
		case fileTorn:
			fmt.Fprintf(out, "%s: TORN tail — %d records / %d bytes salvageable, %d bytes torn (%s); run `snapshotctl repair %s`\n",
				path, rep.RecordsKept, rep.BytesKept, rep.BytesTruncated, rep.Reason, path)
		default:
			fmt.Fprintf(errw, "snapshotctl: FAIL %v\n", err)
		}
		if c > code {
			code = c
		}
	}
	return code
}

// repair truncates torn tails back to the last valid record boundary
// and sweeps stale temp files. Clean files are untouched, unrecoverable
// files are refused (exit 3) — repair never guesses.
func repair(paths []string, out, errw io.Writer) int {
	if len(paths) == 0 {
		return usage(errw)
	}
	code := 0
	for _, path := range paths {
		rep, err := persist.RepairChain(path, persist.SyncAlways)
		c := fileClean
		switch {
		case err == nil && rep.Clean():
			fmt.Fprintf(out, "%s: clean (%d records)\n", path, rep.RecordsKept)
		case err == nil:
			fmt.Fprintf(out, "%s: repaired — kept %d records / %d bytes, dropped %d torn bytes (%s)\n",
				path, rep.RecordsKept, rep.BytesKept, rep.BytesTruncated, rep.Reason)
		case rep.Reason == "":
			fmt.Fprintf(errw, "snapshotctl: FAIL %v\n", err)
			c = fileIOError
		default:
			fmt.Fprintf(errw, "snapshotctl: FAIL %v\n", err)
			c = fileUnrecoverable
		}
		if c > code {
			code = c
		}
	}
	return code
}

// scrub walks shard directories, sniffs out snapshot files by magic,
// classifies each, and reports orphaned temp files from crashed saves.
// With -repair it truncates torn tails and removes the orphans, so a
// post-crash `snapshotctl scrub -repair <dir>` leaves the whole shard
// tree clean.
func scrub(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("snapshotctl scrub", flag.ContinueOnError)
	fs.SetOutput(errw)
	fix := fs.Bool("repair", false, "repair torn chains and remove orphaned temp files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		return usage(errw)
	}
	code := 0
	worst := func(c int) {
		if c > code {
			code = c
		}
	}
	var clean, torn, repaired, unrecoverable, orphans, swept int
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d iofs.DirEntry, err error) error {
			if err != nil {
				fmt.Fprintf(errw, "snapshotctl: %v\n", err)
				worst(fileIOError)
				return nil
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".tmp") {
				// A temp file next to its target is an unpublished save
				// from a crashed process; it is never valid state.
				if *fix {
					if err := os.Remove(path); err != nil {
						fmt.Fprintf(errw, "snapshotctl: %v\n", err)
						worst(fileIOError)
						return nil
					}
					swept++
					fmt.Fprintf(out, "%s: orphaned temp file removed\n", path)
				} else {
					orphans++
					worst(fileTorn)
					fmt.Fprintf(out, "%s: orphaned temp file (crashed save); run `snapshotctl scrub -repair`\n", path)
				}
				return nil
			}
			head := make([]byte, 8)
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(errw, "snapshotctl: %v\n", err)
				worst(fileIOError)
				return nil
			}
			n, _ := io.ReadFull(f, head)
			f.Close()
			if !persist.HasMagic(head[:n]) {
				return nil // not a snapshot file
			}
			c, _, _, rep, cerr := classify(path)
			switch c {
			case fileClean:
				clean++
			case fileTorn:
				if *fix {
					if _, err := persist.RepairChain(path, persist.SyncAlways); err != nil {
						fmt.Fprintf(errw, "snapshotctl: %v\n", err)
						worst(fileIOError)
						return nil
					}
					repaired++
					fmt.Fprintf(out, "%s: repaired — kept %d records, dropped %d torn bytes\n", path, rep.RecordsKept, rep.BytesTruncated)
				} else {
					torn++
					worst(fileTorn)
					fmt.Fprintf(out, "%s: TORN tail — %d records salvageable, %d bytes torn\n", path, rep.RecordsKept, rep.BytesTruncated)
				}
			default:
				unrecoverable++
				worst(c)
				fmt.Fprintf(errw, "snapshotctl: FAIL %v\n", cerr)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(errw, "snapshotctl: %v\n", err)
			worst(fileIOError)
		}
	}
	fmt.Fprintf(out, "scrub: %d clean, %d torn, %d repaired, %d unrecoverable, %d orphaned temps, %d swept\n",
		clean, torn, repaired, unrecoverable, orphans, swept)
	return code
}

// fold implements compact (merge == false: one chain across the input
// files, in order) and merge (every input is an independent shard,
// compacted then merged).
func fold(args []string, out, errw io.Writer, merge bool) int {
	name := "compact"
	if merge {
		name = "merge"
	}
	fs := flag.NewFlagSet("snapshotctl "+name, flag.ContinueOnError)
	fs.SetOutput(errw)
	outPath := fs.String("o", "", "output snapshot file (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if *outPath == "" || len(paths) == 0 {
		fmt.Fprintf(errw, "usage: snapshotctl %s -o out <file>...\n", name)
		return 2
	}

	var full *core.Snapshot
	if merge {
		shards := make([]*core.Snapshot, 0, len(paths))
		for _, path := range paths {
			base, deltas, err := loadFile(path)
			if err != nil {
				fmt.Fprintf(errw, "snapshotctl: %v\n", err)
				return 1
			}
			if base == nil {
				// merge treats every input as an independent shard; a
				// delta-only continuation file belongs to some shard's
				// chain and must be folded with its base first.
				fmt.Fprintf(errw, "snapshotctl: %s: delta-only file — merge inputs are independent shards; run `snapshotctl compact -o shard.full <base-chain> %s` first\n", path, path)
				return 1
			}
			shard, err := persist.Compact(base, deltas...)
			if err != nil {
				fmt.Fprintf(errw, "snapshotctl: %s: %v\n", path, err)
				return 1
			}
			shards = append(shards, shard)
		}
		var err error
		full, err = persist.MergeSnapshots(shards...)
		if err != nil {
			fmt.Fprintf(errw, "snapshotctl: %v\n", err)
			return 1
		}
	} else {
		var base *core.Snapshot
		var chain []*core.Delta
		for i, path := range paths {
			b, deltas, err := loadFile(path)
			if err != nil {
				fmt.Fprintf(errw, "snapshotctl: %v\n", err)
				return 1
			}
			switch {
			case i == 0 && b == nil:
				fmt.Fprintf(errw, "snapshotctl: %s: the first chain file must carry the base record\n", path)
				return 1
			case i > 0 && b != nil:
				fmt.Fprintf(errw, "snapshotctl: %s: continuation files must be delta-only (found a second base)\n", path)
				return 1
			case i == 0:
				base = b
			}
			chain = append(chain, deltas...)
		}
		var err error
		full, err = persist.Compact(base, chain...)
		if err != nil {
			fmt.Fprintf(errw, "snapshotctl: %v\n", err)
			return 1
		}
	}

	if err := persist.SaveChain(*outPath, full, nil); err != nil {
		fmt.Fprintf(errw, "snapshotctl: %v\n", err)
		return 1
	}
	entries, _ := snapshotStats(full)
	fmt.Fprintf(out, "%s: %d input file(s) -> %d sections, %d entries\n", *outPath, len(paths), len(full.Types), entries)
	return 0
}
