// Command atmbench regenerates the tables and figures of "ATM: Approximate
// Task Memoization in the Runtime System" (IPDPS 2017) on this machine.
//
// Usage:
//
//	atmbench -experiment fig3 -scale bench -workers 8
//	atmbench -experiment all -bench Blackscholes,LU
//	atmbench -experiment stats -bench Swaptions -mode dynamic
//	atmbench -experiment stats -bench Kmeans -save warm.atmsnap   # then:
//	atmbench -experiment stats -bench Kmeans -load warm.atmsnap
//	atmbench -experiment stats -bench Kmeans -chain warm.atmchain # delta-append saves
//	atmbench -experiment sweep -bench Jacobi -repeats 5
//	atmbench -experiment shardsweep -bench Blackscholes,Kmeans -repeats 3
//
// Experiments: table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// stats sweep shardsweep all. sweep runs each benchmark -repeats times
// reusing a persisted memoization snapshot between repetitions (the
// amortization scenario of docs/persistence.md); -save/-load warm-start
// individual stats runs, while -chain (optionally with -delta-every)
// persists them incrementally — each save appends a delta record
// instead of rewriting the table. shardsweep treats each benchmark as
// one sweep shard saving per-rep deltas into its own chain, then
// compacts + merges the chains and warm-starts every shard from the
// single merged file (the snapshotctl merge workflow). See DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/harness"
	"atm/internal/hashx"
	"atm/internal/persist"
	"atm/internal/taskrt"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig3", "table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|stats|sweep|shardsweep|all")
		benchList  = flag.String("bench", "", "comma-separated benchmark filter (Blackscholes,GS,Jacobi,Kmeans,LU,Swaptions)")
		scaleStr   = flag.String("scale", "bench", "workload scale: test|bench|paper")
		workers    = flag.Int("workers", defaultWorkers(), "number of worker cores")
		repeats    = flag.Int("repeats", 1, "timing repetitions (median reported)")
		seed       = flag.Uint64("seed", 0, "ATM sampling seed")
		mode       = flag.String("mode", "dynamic", "stats experiment: baseline|static|dynamic|fixed")
		level      = flag.Int("level", 15, "stats experiment: p level for -mode fixed")
		noIKT      = flag.Bool("no-ikt", false, "stats experiment: disable the IKT")
		batch      = flag.Int("batch", taskrt.DefaultBatchSize, "submission batch size (0 = per-task Submit)")
		policyStr  = flag.String("policy", "fifo", "scheduling policy: fifo|lifo")
		det        = flag.Bool("det", false, "run under the deterministic replay executor: single goroutine, schedule drawn from -seed (see docs/determinism.md)")
		schedStr   = flag.String("sched", "", "deterministic ready-queue discipline: fifo|lifo|random|adversarial (implies -det; default follows -policy)")
		schedSeed  = flag.Uint64("schedseed", 0, "deterministic replay seed: implies -det and overrides -seed when nonzero")
		savePath   = flag.String("save", "", "stats/sweep: save the ATM snapshot to this file after the run (suffixed per benchmark when several are selected)")
		loadPath   = flag.String("load", "", "stats: warm-start the ATM from this snapshot file (suffixed per benchmark when several are selected)")
		chainPath  = flag.String("chain", "", "stats: incremental chain file — warm-start from it when present and append a delta record of this run's churn (suffixed per benchmark when several are selected)")
		deltaEvery = flag.Duration("delta-every", 0, "stats: with -chain, also append a delta record every interval while the run executes")
		shardDir   = flag.String("shard-dir", "", "shardsweep: directory for the per-shard chain files and the merged snapshot (default: a temp directory)")
		recoverStr = flag.String("recover", "strict", "damaged-snapshot policy: strict (report, run cold) | salvage (repair torn tails, warm-start the prefix) | cold (discard, run cold)")
		noSync     = flag.Bool("nosync", false, "skip fsync on snapshot saves (benchmarking only: a crash may lose or tear the most recent saves)")
		hashStr    = flag.String("hash", "", "ATM key hash function: lookup3 (default) | xxh3 | wyhash — folded into the snapshot fingerprint, so warm state is per-function")
		budgetStr  = flag.String("tht-budget", "", "stats: THT memory budget in bytes, k/m/g suffixes accepted (empty = unbounded)")
		evictStr   = flag.String("evict", "", "stats: eviction policy under -tht-budget: fifo (default) | clock | tinylfu")
	)
	flag.Parse()

	recoverPolicy, err := harness.ParseRecoverPolicy(*recoverStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	budget, err := harness.ParseByteSize(*budgetStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	evict, err := core.ParseEvictPolicy(*evictStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	hashFunc, err := hashx.ParseFunc(*hashStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var policy taskrt.SchedPolicy
	switch *policyStr {
	case "fifo":
		policy = taskrt.PolicyFIFO
	case "lifo":
		policy = taskrt.PolicyLIFO
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyStr)
		os.Exit(2)
	}

	detSched, err := taskrt.ParseDetSched(*schedStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *schedSeed != 0 {
		*seed = *schedSeed
		*det = true
	}
	if *schedStr != "" {
		*det = true
	}

	var scale apps.Scale
	switch *scaleStr {
	case "test":
		scale = apps.ScaleTest
	case "bench":
		scale = apps.ScaleBench
	case "paper":
		scale = apps.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleStr)
		os.Exit(2)
	}

	opt := harness.Options{
		Scale:         scale,
		Workers:       *workers,
		Repeats:       *repeats,
		Seed:          *seed,
		Hash:          hashFunc,
		Policy:        policy,
		Deterministic: *det,
		DetSched:      detSched,
		Recover:       recoverPolicy,
		Out:           os.Stdout,
	}
	if *noSync {
		opt.Sync = persist.SyncOff
	}
	// -batch 0 means per-task Submit (the pre-batching baseline), which
	// the runtime spells as a negative batch size; 0 would mean "default".
	if *batch <= 0 {
		opt.Batch = -1
	} else {
		opt.Batch = *batch
	}
	if *benchList != "" {
		for _, b := range strings.Split(*benchList, ",") {
			b = strings.TrimSpace(b)
			if harness.FactoryFor(b) == nil {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", b)
				os.Exit(2)
			}
			opt.Benchmarks = append(opt.Benchmarks, b)
		}
	}

	switch *experiment {
	case "table1":
		harness.Table1(opt)
	case "table2":
		harness.Table2(opt)
	case "table3":
		harness.Table3(opt)
	case "fig3", "fig4":
		harness.Fig3(opt)
	case "fig5":
		harness.Fig5(opt)
	case "fig6":
		harness.Fig6(opt)
	case "fig7":
		harness.Fig7(opt)
	case "fig8":
		harness.Fig8(opt)
	case "fig9":
		harness.Fig9(opt)
	case "stats":
		runStats(opt, *mode, *level, !*noIKT, *loadPath, *savePath, *chainPath, *deltaEvery, budget, evict)
	case "sweep":
		// The repeated-experiment-sweep scenario: N repetitions of each
		// benchmark reusing a persisted snapshot (repetition 1 is cold).
		reps := *repeats
		if reps < 2 {
			reps = 5
		}
		path := *savePath
		if path == "" {
			path = filepath.Join(os.TempDir(), "atmbench-sweep.atmsnap")
		}
		if err := harness.Sweep(opt, reps, path); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	case "shardsweep":
		// The sharded sweep + merge scenario: each benchmark is one
		// shard saving per-rep deltas; the chains are compacted, merged
		// and used for a warm restart of every shard.
		reps := *repeats
		if reps < 2 {
			reps = 3
		}
		dir := *shardDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "atmbench-shardsweep"); err != nil {
				fmt.Fprintf(os.Stderr, "shardsweep: %v\n", err)
				os.Exit(1)
			}
		}
		if err := harness.ShardedSweep(opt, reps, dir); err != nil {
			fmt.Fprintf(os.Stderr, "shardsweep: %v\n", err)
			os.Exit(1)
		}
	case "all":
		harness.Table1(opt)
		fmt.Println()
		harness.Table2(opt)
		fmt.Println()
		harness.Table3(opt)
		fmt.Println()
		harness.Fig3(opt)
		fmt.Println()
		harness.Fig5(opt)
		fmt.Println()
		harness.Fig6(opt)
		fmt.Println()
		harness.Fig7(opt)
		fmt.Println()
		harness.Fig8(opt)
		fmt.Println()
		harness.Fig9(opt)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8 // the paper's machine has 8 cores
	}
	return n
}

// runStats runs each selected benchmark once under one configuration and
// dumps the detailed ATM statistics. load/save warm-start the engine
// from (and persist it to) a whole-table snapshot file; chain switches
// to incremental persistence (append a delta record per save, plus one
// every deltaEvery while running).
func runStats(opt harness.Options, mode string, level int, ikt bool, load, save, chain string, deltaEvery time.Duration,
	budget int64, evict core.EvictPolicy) {
	var spec harness.ATMSpec
	switch mode {
	case "baseline":
		spec = harness.Baseline()
	case "static":
		spec = harness.Static(ikt)
	case "dynamic":
		spec = harness.Dynamic(ikt)
	case "fixed":
		spec = harness.Fixed(level, ikt)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", mode)
		os.Exit(2)
	}
	names := opt.Benchmarks
	if len(names) == 0 {
		names = harness.Benchmarks()
	}
	for _, name := range names {
		// With several benchmarks selected, a shared snapshot file would
		// be overwritten per benchmark (each run saves only its own
		// types); key the file per benchmark like the sweep does.
		bload, bsave, bchain := load, save, chain
		if len(names) > 1 {
			if bload != "" {
				bload += "." + name
			}
			if bsave != "" {
				bsave += "." + name
				fmt.Printf("%s: snapshot file %s\n", name, bsave)
			}
			if bchain != "" {
				bchain += "." + name
				fmt.Printf("%s: chain file %s\n", name, bchain)
			}
		}
		ro := harness.RunOptions{Seed: opt.Seed, Hash: opt.Hash, Batch: opt.Batch, Policy: opt.Policy,
			Deterministic: opt.Deterministic, DetSched: opt.DetSched,
			SnapshotLoad: bload, SnapshotSave: bsave, SnapshotChain: bchain, SnapshotDeltaEvery: deltaEvery,
			Recover: opt.Recover, Sync: opt.Sync,
			THTBudgetBytes: budget, THTEviction: evict}
		base := harness.RunOne(harness.FactoryFor(name), opt.Scale, opt.Workers, harness.Baseline(),
			harness.RunOptions{Seed: opt.Seed, Hash: opt.Hash, Batch: opt.Batch, Policy: opt.Policy,
				Deterministic: opt.Deterministic, DetSched: opt.DetSched})
		o := harness.RunOne(harness.FactoryFor(name), opt.Scale, opt.Workers, spec, ro)
		if o.SnapshotErr != nil {
			fmt.Fprintf(os.Stderr, "%s: snapshot: %v\n", name, o.SnapshotErr)
			os.Exit(1)
		}
		start := "cold"
		if o.WarmStart {
			start = fmt.Sprintf("warm (%d entries restored)", o.RestoredEntries)
		}
		if o.Salvaged {
			fmt.Printf("%s: salvaged torn snapshot — kept %d records / %d bytes, dropped %d torn bytes\n",
				name, o.Recovery.RecordsKept, o.Recovery.BytesKept, o.Recovery.BytesTruncated)
		}
		if o.ColdFallback {
			fmt.Printf("%s: damaged snapshot could not warm-start (-recover %s); started cold\n", name, opt.Recover)
		}
		if bchain != "" {
			fmt.Printf("%s: appended %d delta record(s), %d bytes, to %s\n", name, o.DeltaSaves, o.DeltaBytes, bchain)
		}
		fmt.Printf("%s under %s (%s start): elapsed=%v speedup=%.2fx correctness=%.3f%% reuse=%.1f%% tht-hit-ratio=%.1f%%\n",
			name, spec.Name(), start, o.Elapsed, harness.Speedup(base, o), o.App.Correctness(base.App), 100*o.Reuse(), 100*o.THTHitRatio())
		for _, ts := range o.Stats.Types {
			fmt.Printf("  type %-24s tasks=%-6d exec=%-6d memoTHT=%-6d memoIKT=%-5d trainHits=%-5d trainFail=%-4d excl=%d level=%d (p=%s) steady=%v hash=%v copy=%v\n",
				ts.Name, ts.Tasks, ts.Executed, ts.MemoizedTHT, ts.MemoizedIKT,
				ts.TrainingHits, ts.TrainingFailures, ts.ExcludedRegions, ts.Level,
				fmtP(ts.P), ts.Steady, ts.HashTime.Round(1e3), ts.CopyTime.Round(1e3))
		}
		s := o.Stats
		fmt.Printf("  THT: %d entries, %s, lookups=%d hits=%d evictions=%d; IKT: inserts=%d defers=%d rejected=%d\n",
			s.THTEntries, fmtBytes(s.THTBytes), s.THTLookups, s.THTHits, s.THTEvictions,
			s.IKTInserts, s.IKTDefers, s.IKTRejected)
		if s.THTBudgetBytes > 0 {
			fmt.Printf("  budget: %s under %s eviction — budget evictions=%d admission rejects=%d\n",
				fmtBytes(s.THTBudgetBytes), s.THTEvictionPolicy, s.THTBudgetEvictions, s.THTAdmissionRejects)
		}
		fmt.Println()
	}
}

func fmtP(p float64) string { return fmt.Sprintf("%.4g%%", 100*p) }

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
