package region

import "testing"

// TestAllConcreteTypesAreSlotted pins the tentpole contract: every
// concrete region type embeds DepSlot, so the runtime's slot fast path
// covers all regions this package can construct.
func TestAllConcreteTypesAreSlotted(t *testing.T) {
	for _, r := range []Region{NewFloat64(1), NewFloat32(1), NewInt32(1), NewBytes(1)} {
		s, ok := r.(Slotted)
		if !ok {
			t.Fatalf("%T does not satisfy Slotted", r)
		}
		if s.DepSlotHeader().DepGen() != 0 {
			t.Fatalf("%T: fresh region has a claimed slot (gen %d)", r, s.DepSlotHeader().DepGen())
		}
	}
}

// TestSlotStampAndClone checks the stamp round-trip and that Clone yields
// an unclaimed slot: a cloned region must not inherit the original's
// dependence state (clones are THT snapshots, never dependence-tracked
// under the original's identity).
func TestSlotStampAndClone(t *testing.T) {
	r := NewFloat64(4)
	state := &struct{ x int }{x: 7}
	r.DepSlotHeader().SetDepState(42, state)
	if g := r.DepGen(); g != 42 {
		t.Fatalf("DepGen = %d, want 42", g)
	}
	if st := r.DepState(); st != state {
		t.Fatalf("DepState did not round-trip")
	}
	c := r.Clone().(*Float64)
	if c.DepGen() != 0 || c.DepState() != nil {
		t.Fatalf("Clone inherited the slot stamp (gen %d)", c.DepGen())
	}
	// Wrapping a slice shares data but not dependence identity either.
	w := WrapFloat64(r.Data)
	if w.DepGen() != 0 {
		t.Fatalf("WrapFloat64 inherited a slot stamp")
	}
}
