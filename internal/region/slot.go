package region

// DepSlot is an embeddable dependence-state header. The task runtime
// tracks dependences per region; with a slot embedded in the concrete
// region types, the runtime reaches a region's dependence state with one
// pointer load and a generation compare instead of a map probe — the
// registry-elimination half of the submission-cost budget (the ATM paper
// requires the runtime overhead of memoization to stay far below task
// execution cost for its speedups to exist).
//
// The zero value is an unclaimed slot. A runtime claims it by stamping
// its own generation (a process-unique id assigned per runtime instance
// and re-assigned on reset) next to an opaque state pointer; a slot whose
// generation does not match the reading runtime's is treated as
// unclaimed, so regions can be reused across runtimes (sequentially)
// without carrying stale dependence state over. The slot is plain memory
// owned by the claiming runtime's master thread: a region must not be
// submitted to two live runtimes concurrently (submission is
// single-threaded per runtime by contract, and two live masters would
// race on the slot; the runtime detects the stamp of another live
// runtime and falls back to its map, but the detection itself assumes
// the competing runtime is quiescent).
//
// All concrete region types of this package embed DepSlot and therefore
// satisfy Slotted. Region implementations outside this package that do
// not embed it still work — the runtime keeps a map fallback for such
// foreign regions — they just pay the map probe per submission.
type DepSlot struct {
	gen   uint64
	state any
}

// DepSlotHeader returns the slot itself; embedding DepSlot in a region
// type is what satisfies Slotted.
func (s *DepSlot) DepSlotHeader() *DepSlot { return s }

// DepGen returns the stamped generation (0 = unclaimed).
func (s *DepSlot) DepGen() uint64 { return s.gen }

// DepState returns the opaque state stored by the claiming runtime.
func (s *DepSlot) DepState() any { return s.state }

// SetDepState stamps the slot with a generation and its state. Only the
// claiming runtime's master thread may call it.
func (s *DepSlot) SetDepState(gen uint64, state any) {
	s.gen, s.state = gen, state
}

// Slotted is a Region carrying an embedded DepSlot dependence-state
// header.
type Slotted interface {
	Region
	DepSlotHeader() *DepSlot
}
