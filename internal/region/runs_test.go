package region

import (
	"testing"
	"testing/quick"
)

// wordSink reassembles every write back into the little-endian byte
// stream, so run-optimized emission can be compared byte-for-byte.
type wordSink struct{ bs []byte }

func (s *wordSink) WriteByte(b byte) error { s.bs = append(s.bs, b); return nil }
func (s *wordSink) WriteUint16(u uint16)   { s.bs = append(s.bs, byte(u), byte(u>>8)) }
func (s *wordSink) WriteUint32(u uint32) {
	s.bs = append(s.bs, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}
func (s *wordSink) WriteUint64(u uint64) {
	s.WriteUint32(uint32(u))
	s.WriteUint32(uint32(u >> 32))
}

// byteOnlySink lacks the optional WriteUint16 capability, pinning the
// fallback path.
type byteOnlySink struct{ bs []byte }

func (s *byteOnlySink) WriteByte(b byte) error { s.bs = append(s.bs, b); return nil }
func (s *byteOnlySink) WriteUint32(u uint32) {
	s.bs = append(s.bs, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}
func (s *byteOnlySink) WriteUint64(u uint64) {
	s.WriteUint32(uint32(u))
	s.WriteUint32(uint32(u >> 32))
}

// runsFromMask converts a selection bitmask over nbytes into the
// flattened (start, length) encoding HashSampleRuns consumes, plus the
// expanded offset list.
func runsFromMask(mask []bool) (runs []int32, offsets []int32) {
	n := len(mask)
	for i := 0; i < n; {
		if !mask[i] {
			i++
			continue
		}
		j := i
		for j < n && mask[j] {
			j++
		}
		runs = append(runs, int32(i), int32(j-i))
		for k := i; k < j; k++ {
			offsets = append(offsets, int32(k))
		}
		i = j
	}
	return runs, offsets
}

func runsTestRegions() []Region {
	f64 := NewFloat64(40)
	f32 := NewFloat32(40)
	i32 := NewInt32(40)
	bs := NewBytes(160)
	for i := 0; i < 40; i++ {
		f64.Data[i] = float64(i)*1.7e-3 + 1e9
		f32.Data[i] = float32(i) * -2.5e7
		i32.Data[i] = int32(i*7919) - 1<<30
	}
	for i := range bs.Data {
		bs.Data[i] = byte(i * 13)
	}
	return []Region{f64, f32, i32, bs}
}

// TestHashSampleRunsMatchesByteAt checks, for every region kind and for
// arbitrary selection masks, that the run-optimized word emission yields
// exactly the bytes ByteAt would — with and without the WriteUint16
// capability.
func TestHashSampleRunsMatchesByteAt(t *testing.T) {
	f := func(seed uint64) bool {
		for _, r := range runsTestRegions() {
			mask := make([]bool, r.NumBytes())
			s := seed
			for i := range mask {
				s = s*6364136223846793005 + 1442695040888963407
				mask[i] = s>>62 != 0 // ~75% selected: long runs
			}
			runs, offsets := runsFromMask(mask)
			var want []byte
			for _, off := range offsets {
				want = append(want, r.ByteAt(int(off)))
			}
			full := &wordSink{}
			r.HashSampleRuns(runs, full)
			bytesOnly := &byteOnlySink{}
			r.HashSampleRuns(runs, bytesOnly)
			if len(full.bs) != len(want) || len(bytesOnly.bs) != len(want) {
				return false
			}
			for i := range want {
				if full.bs[i] != want[i] || bytesOnly.bs[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHashSampleRunsSingletons pins run-length-1 handling (every byte its
// own run).
func TestHashSampleRunsSingletons(t *testing.T) {
	for _, r := range runsTestRegions() {
		var runs []int32
		var want []byte
		for o := 0; o < r.NumBytes(); o += 3 {
			runs = append(runs, int32(o), 1)
			want = append(want, r.ByteAt(o))
		}
		s := &wordSink{}
		r.HashSampleRuns(runs, s)
		if len(s.bs) != len(want) {
			t.Fatalf("%s: %d bytes, want %d", r.Kind(), len(s.bs), len(want))
		}
		for i := range want {
			if s.bs[i] != want[i] {
				t.Fatalf("%s: byte %d mismatch", r.Kind(), i)
			}
		}
	}
}
