// Package region provides typed data regions: the unit of task data in the
// runtime system.
//
// In the paper's system the Mercurium compiler passes the element types of
// every task input and output to the Nanos++ runtime (§III-C: "we have
// extended the runtime library API and modified the compiler to inform the
// runtime system about the types of the elements in each data input and
// output"). This package plays that role: a Region carries both the data
// and its element kind, so ATM can
//
//   - decompose inputs into bytes for hash-key sampling without unsafe
//     memory reinterpretation (ByteAt),
//   - apply type-aware most-significant-byte-first input selection
//     (ElemSize + byte significance),
//   - copy memoized outputs (CopyFrom / Clone), and
//   - measure task output distances (Float64At) for the Chebyshev and
//     Euclidean error metrics.
//
// Region identity (the interface value, always a pointer) is also the unit
// of dependence tracking in the task runtime, standing in for the address
// ranges OmpSs uses.
package region

import (
	"fmt"
	"math"
)

// Kind identifies the element type stored in a region.
type Kind uint8

// Element kinds. They mirror the C types of the evaluated benchmarks
// (float, double and int per Table I).
const (
	KindBytes   Kind = iota // raw bytes, element size 1
	KindFloat32             // C float, element size 4
	KindFloat64             // C double, element size 8
	KindInt32               // C int, element size 4
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindFloat32:
		return "float32"
	case KindFloat64:
		return "float64"
	case KindInt32:
		return "int32"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Size returns the element size in bytes for the kind.
func (k Kind) Size() int {
	switch k {
	case KindFloat64:
		return 8
	case KindFloat32, KindInt32:
		return 4
	default:
		return 1
	}
}

// Region is a typed block of task data. Implementations are pointers, so a
// Region value is usable as a map key identifying the block (the
// dependence-tracking unit).
//
// Byte numbering: byte i belongs to element i/ElemSize; within an element,
// offset 0 is the LEAST significant byte (little-endian convention, as on
// the paper's x86 machine). The most significant byte of element e is
// therefore ByteAt(e*ElemSize + ElemSize - 1).
type Region interface {
	// Kind reports the element kind.
	Kind() Kind
	// NumElems reports the number of elements.
	NumElems() int
	// NumBytes reports the total payload size in bytes
	// (NumElems * Kind().Size()).
	NumBytes() int
	// ByteAt returns byte i of the little-endian encoding of the payload.
	ByteAt(i int) byte
	// Float64At returns element i converted to float64, for error metrics.
	Float64At(i int) float64
	// CopyFrom copies the payload of src, which must have the same kind
	// and length, into the receiver. It is the memoization output copy.
	CopyFrom(src Region)
	// Clone returns a deep copy with the same kind and contents; used to
	// snapshot task outputs into the Task History Table.
	Clone() Region
	// EqualContents reports whether o has identical kind, length and
	// bit-exact contents.
	EqualContents(o Region) bool
	// HashInto feeds every payload byte, in order, to sink. It is the
	// p = 100% fallback path.
	HashInto(sink func(b byte))
	// HashWords feeds the payload to sink word-wise, producing the same
	// little-endian byte stream as HashInto with far fewer calls. It is
	// the p = 100% fast path.
	HashWords(sink WordSink)
	// HashSample feeds the bytes at the given ascending local byte
	// offsets to sink: the sampled-hash (p < 100%) fast path.
	HashSample(offsets []int32, sink WordSink)
	// HashSampleRuns feeds the bytes described by runs — flattened
	// (start, length) pairs of contiguous ascending byte offsets — to
	// sink, emitting word-wide writes for long runs. Type-aware MSB
	// selection produces such runs wholesale once p reaches the top
	// byte-significance ranks (§III-C); the byte stream is identical to
	// HashSample over the expanded offsets.
	HashSampleRuns(runs []int32, sink WordSink)
}

// WordSink consumes a little-endian byte stream word-by-word.
// Every hashx.Hasher (and so *jenkins.Streaming) satisfies it.
type WordSink interface {
	WriteByte(b byte) error
	WriteUint32(u uint32)
	WriteUint64(u uint64)
}

// Float64 is a Region over []float64. The embedded DepSlot lets the task
// runtime resolve dependence state without a registry map probe (true of
// all four concrete types; see DepSlot).
type Float64 struct {
	DepSlot
	Data []float64
}

// NewFloat64 allocates a float64 region with n elements.
func NewFloat64(n int) *Float64 { return &Float64{Data: make([]float64, n)} }

// WrapFloat64 wraps an existing slice without copying.
func WrapFloat64(d []float64) *Float64 { return &Float64{Data: d} }

// Kind implements Region.
func (r *Float64) Kind() Kind { return KindFloat64 }

// NumElems implements Region.
func (r *Float64) NumElems() int { return len(r.Data) }

// NumBytes implements Region.
func (r *Float64) NumBytes() int { return 8 * len(r.Data) }

// ByteAt implements Region.
func (r *Float64) ByteAt(i int) byte {
	return byte(math.Float64bits(r.Data[i>>3]) >> (8 * uint(i&7)))
}

// Float64At implements Region.
func (r *Float64) Float64At(i int) float64 { return r.Data[i] }

// CopyFrom implements Region.
func (r *Float64) CopyFrom(src Region) { copy(r.Data, src.(*Float64).Data) }

// Clone implements Region.
func (r *Float64) Clone() Region {
	d := make([]float64, len(r.Data))
	copy(d, r.Data)
	return &Float64{Data: d}
}

// EqualContents implements Region.
func (r *Float64) EqualContents(o Region) bool {
	s, ok := o.(*Float64)
	if !ok || len(s.Data) != len(r.Data) {
		return false
	}
	for i, v := range r.Data {
		if math.Float64bits(v) != math.Float64bits(s.Data[i]) {
			return false
		}
	}
	return true
}

// HashInto implements Region.
func (r *Float64) HashInto(sink func(b byte)) {
	for _, v := range r.Data {
		u := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			sink(byte(u >> uint(s)))
		}
	}
}

// Float32 is a Region over []float32.
type Float32 struct {
	DepSlot
	Data []float32
}

// NewFloat32 allocates a float32 region with n elements.
func NewFloat32(n int) *Float32 { return &Float32{Data: make([]float32, n)} }

// WrapFloat32 wraps an existing slice without copying.
func WrapFloat32(d []float32) *Float32 { return &Float32{Data: d} }

// Kind implements Region.
func (r *Float32) Kind() Kind { return KindFloat32 }

// NumElems implements Region.
func (r *Float32) NumElems() int { return len(r.Data) }

// NumBytes implements Region.
func (r *Float32) NumBytes() int { return 4 * len(r.Data) }

// ByteAt implements Region.
func (r *Float32) ByteAt(i int) byte {
	return byte(math.Float32bits(r.Data[i>>2]) >> (8 * uint(i&3)))
}

// Float64At implements Region.
func (r *Float32) Float64At(i int) float64 { return float64(r.Data[i]) }

// CopyFrom implements Region.
func (r *Float32) CopyFrom(src Region) { copy(r.Data, src.(*Float32).Data) }

// Clone implements Region.
func (r *Float32) Clone() Region {
	d := make([]float32, len(r.Data))
	copy(d, r.Data)
	return &Float32{Data: d}
}

// EqualContents implements Region.
func (r *Float32) EqualContents(o Region) bool {
	s, ok := o.(*Float32)
	if !ok || len(s.Data) != len(r.Data) {
		return false
	}
	for i, v := range r.Data {
		if math.Float32bits(v) != math.Float32bits(s.Data[i]) {
			return false
		}
	}
	return true
}

// HashInto implements Region.
func (r *Float32) HashInto(sink func(b byte)) {
	for _, v := range r.Data {
		u := math.Float32bits(v)
		sink(byte(u))
		sink(byte(u >> 8))
		sink(byte(u >> 16))
		sink(byte(u >> 24))
	}
}

// Int32 is a Region over []int32.
type Int32 struct {
	DepSlot
	Data []int32
}

// NewInt32 allocates an int32 region with n elements.
func NewInt32(n int) *Int32 { return &Int32{Data: make([]int32, n)} }

// WrapInt32 wraps an existing slice without copying.
func WrapInt32(d []int32) *Int32 { return &Int32{Data: d} }

// Kind implements Region.
func (r *Int32) Kind() Kind { return KindInt32 }

// NumElems implements Region.
func (r *Int32) NumElems() int { return len(r.Data) }

// NumBytes implements Region.
func (r *Int32) NumBytes() int { return 4 * len(r.Data) }

// ByteAt implements Region.
func (r *Int32) ByteAt(i int) byte {
	return byte(uint32(r.Data[i>>2]) >> (8 * uint(i&3)))
}

// Float64At implements Region.
func (r *Int32) Float64At(i int) float64 { return float64(r.Data[i]) }

// CopyFrom implements Region.
func (r *Int32) CopyFrom(src Region) { copy(r.Data, src.(*Int32).Data) }

// Clone implements Region.
func (r *Int32) Clone() Region {
	d := make([]int32, len(r.Data))
	copy(d, r.Data)
	return &Int32{Data: d}
}

// EqualContents implements Region.
func (r *Int32) EqualContents(o Region) bool {
	s, ok := o.(*Int32)
	if !ok || len(s.Data) != len(r.Data) {
		return false
	}
	for i, v := range r.Data {
		if v != s.Data[i] {
			return false
		}
	}
	return true
}

// HashInto implements Region.
func (r *Int32) HashInto(sink func(b byte)) {
	for _, v := range r.Data {
		u := uint32(v)
		sink(byte(u))
		sink(byte(u >> 8))
		sink(byte(u >> 16))
		sink(byte(u >> 24))
	}
}

// Bytes is a Region over raw []byte.
type Bytes struct {
	DepSlot
	Data []byte
}

// NewBytes allocates a byte region with n elements.
func NewBytes(n int) *Bytes { return &Bytes{Data: make([]byte, n)} }

// WrapBytes wraps an existing slice without copying.
func WrapBytes(d []byte) *Bytes { return &Bytes{Data: d} }

// Kind implements Region.
func (r *Bytes) Kind() Kind { return KindBytes }

// NumElems implements Region.
func (r *Bytes) NumElems() int { return len(r.Data) }

// NumBytes implements Region.
func (r *Bytes) NumBytes() int { return len(r.Data) }

// ByteAt implements Region.
func (r *Bytes) ByteAt(i int) byte { return r.Data[i] }

// Float64At implements Region.
func (r *Bytes) Float64At(i int) float64 { return float64(r.Data[i]) }

// CopyFrom implements Region.
func (r *Bytes) CopyFrom(src Region) { copy(r.Data, src.(*Bytes).Data) }

// Clone implements Region.
func (r *Bytes) Clone() Region {
	d := make([]byte, len(r.Data))
	copy(d, r.Data)
	return &Bytes{Data: d}
}

// EqualContents implements Region.
func (r *Bytes) EqualContents(o Region) bool {
	s, ok := o.(*Bytes)
	if !ok || len(s.Data) != len(r.Data) {
		return false
	}
	for i, v := range r.Data {
		if v != s.Data[i] {
			return false
		}
	}
	return true
}

// HashInto implements Region.
func (r *Bytes) HashInto(sink func(b byte)) {
	for _, v := range r.Data {
		sink(v)
	}
}

// TotalBytes sums NumBytes over regions; it is the "task inputs size"
// column of Table I.
func TotalBytes(regions []Region) int {
	n := 0
	for _, r := range regions {
		n += r.NumBytes()
	}
	return n
}

// Optional sink capabilities. Every hashx.Hasher implements all of them
// (they are part of its interface), so any registered hash function —
// including the SIMD-accelerated ones — engages the bulk fast paths;
// plainer sinks fall back to the element-wise word/byte calls. Detecting
// them once per region call (instead of dispatching per element) is what
// makes the p = 100% hash run at memory speed.
type (
	float64sSink interface{ WriteFloat64s([]float64) }
	float32sSink interface{ WriteFloat32s([]float32) }
	int32sSink   interface{ WriteInt32s([]int32) }
	bytesSink    interface{ WriteBytes([]byte) }
	uint16Sink   interface{ WriteUint16(uint16) }
)

// HashWords implements Region.
func (r *Float64) HashWords(sink WordSink) {
	if s, ok := sink.(float64sSink); ok {
		s.WriteFloat64s(r.Data)
		return
	}
	for _, v := range r.Data {
		sink.WriteUint64(math.Float64bits(v))
	}
}

// HashWords implements Region.
func (r *Float32) HashWords(sink WordSink) {
	if s, ok := sink.(float32sSink); ok {
		s.WriteFloat32s(r.Data)
		return
	}
	for _, v := range r.Data {
		sink.WriteUint32(math.Float32bits(v))
	}
}

// HashWords implements Region.
func (r *Int32) HashWords(sink WordSink) {
	if s, ok := sink.(int32sSink); ok {
		s.WriteInt32s(r.Data)
		return
	}
	for _, v := range r.Data {
		sink.WriteUint32(uint32(v))
	}
}

// HashWords implements Region.
func (r *Bytes) HashWords(sink WordSink) {
	if s, ok := sink.(bytesSink); ok {
		s.WriteBytes(r.Data)
		return
	}
	for _, v := range r.Data {
		_ = sink.WriteByte(v)
	}
}

// HashSample feeds the bytes at the given ascending local byte offsets to
// sink: the sampled-hash (p < 100%) fast path. Contiguous offset runs —
// which type-aware MSB-first selection produces wholesale once p reaches
// 25% on 4-byte elements (and 12.5% on 8-byte ones) — are detected and
// emitted as 2/4/8-byte word writes instead of per-byte calls; the byte
// stream is identical either way.

// HashSample implements Region.
func (r *Float64) HashSample(offsets []int32, sink WordSink) {
	for _, off := range offsets {
		u := math.Float64bits(r.Data[off>>3])
		_ = sink.WriteByte(byte(u >> (8 * uint(off&7))))
	}
}

// HashSample implements Region.
func (r *Float32) HashSample(offsets []int32, sink WordSink) {
	for _, off := range offsets {
		u := math.Float32bits(r.Data[off>>2])
		_ = sink.WriteByte(byte(u >> (8 * uint(off&3))))
	}
}

// HashSample implements Region.
func (r *Int32) HashSample(offsets []int32, sink WordSink) {
	for _, off := range offsets {
		u := uint32(r.Data[off>>2])
		_ = sink.WriteByte(byte(u >> (8 * uint(off&3))))
	}
}

// HashSample implements Region.
func (r *Bytes) HashSample(offsets []int32, sink WordSink) {
	for _, off := range offsets {
		_ = sink.WriteByte(r.Data[off])
	}
}

// HashSampleRuns implements Region.
func (r *Float64) HashSampleRuns(runs []int32, sink WordSink) {
	u16, has16 := sink.(uint16Sink)
	d := r.Data
	for k := 0; k+1 < len(runs); k += 2 {
		o, run := runs[k], runs[k+1]
		for run >= 8 {
			u := math.Float64bits(d[o>>3]) >> (8 * uint(o&7))
			if o&7 != 0 {
				u |= math.Float64bits(d[o>>3+1]) << (64 - 8*uint(o&7))
			}
			sink.WriteUint64(u)
			o += 8
			run -= 8
		}
		if run >= 4 {
			u := math.Float64bits(d[o>>3]) >> (8 * uint(o&7))
			if o&7 > 4 {
				u |= math.Float64bits(d[o>>3+1]) << (64 - 8*uint(o&7))
			}
			sink.WriteUint32(uint32(u))
			o += 4
			run -= 4
		}
		if run >= 2 && has16 {
			u := uint16(byte(math.Float64bits(d[o>>3])>>(8*uint(o&7)))) |
				uint16(byte(math.Float64bits(d[(o+1)>>3])>>(8*uint((o+1)&7))))<<8
			u16.WriteUint16(u)
			o += 2
			run -= 2
		}
		for ; run > 0; run-- {
			_ = sink.WriteByte(byte(math.Float64bits(d[o>>3]) >> (8 * uint(o&7))))
			o++
		}
	}
}

// HashSampleRuns implements Region.
func (r *Float32) HashSampleRuns(runs []int32, sink WordSink) {
	hashSampleRuns4(runs, sink, r.Data, func(e int32) uint32 { return math.Float32bits(r.Data[e]) })
}

// HashSampleRuns implements Region.
func (r *Int32) HashSampleRuns(runs []int32, sink WordSink) {
	hashSampleRuns4(runs, sink, r.Data, func(e int32) uint32 { return uint32(r.Data[e]) })
}

// hashSampleRuns4 is the shared run emitter for 4-byte-element regions.
// The bits closure is only reached on run boundaries, so its call cost is
// amortized over whole words; data is passed solely to pin the slice for
// bounds-check elimination.
func hashSampleRuns4[T any](runs []int32, sink WordSink, _ []T, bits func(int32) uint32) {
	u16, has16 := sink.(uint16Sink)
	for k := 0; k+1 < len(runs); k += 2 {
		o, run := runs[k], runs[k+1]
		for run >= 4 {
			u := bits(o>>2) >> (8 * uint(o&3))
			if o&3 != 0 {
				u |= bits(o>>2+1) << (32 - 8*uint(o&3))
			}
			sink.WriteUint32(u)
			o += 4
			run -= 4
		}
		if run >= 2 && has16 {
			u := uint16(byte(bits(o>>2)>>(8*uint(o&3)))) |
				uint16(byte(bits((o+1)>>2)>>(8*uint((o+1)&3))))<<8
			u16.WriteUint16(u)
			o += 2
			run -= 2
		}
		for ; run > 0; run-- {
			_ = sink.WriteByte(byte(bits(o>>2) >> (8 * uint(o&3))))
			o++
		}
	}
}

// HashSampleRuns implements Region.
func (r *Bytes) HashSampleRuns(runs []int32, sink WordSink) {
	u16, has16 := sink.(uint16Sink)
	d := r.Data
	for k := 0; k+1 < len(runs); k += 2 {
		o, run := runs[k], runs[k+1]
		for run >= 8 {
			sink.WriteUint64(uint64(d[o]) | uint64(d[o+1])<<8 | uint64(d[o+2])<<16 |
				uint64(d[o+3])<<24 | uint64(d[o+4])<<32 | uint64(d[o+5])<<40 |
				uint64(d[o+6])<<48 | uint64(d[o+7])<<56)
			o += 8
			run -= 8
		}
		if run >= 4 {
			sink.WriteUint32(uint32(d[o]) | uint32(d[o+1])<<8 | uint32(d[o+2])<<16 | uint32(d[o+3])<<24)
			o += 4
			run -= 4
		}
		if run >= 2 && has16 {
			u16.WriteUint16(uint16(d[o]) | uint16(d[o+1])<<8)
			o += 2
			run -= 2
		}
		for ; run > 0; run-- {
			_ = sink.WriteByte(d[o])
			o++
		}
	}
}
