package region

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// collectSink gathers HashInto/HashWords output for comparison.
type collectSink struct{ buf []byte }

func (c *collectSink) WriteByte(b byte) error { c.buf = append(c.buf, b); return nil }
func (c *collectSink) WriteUint32(u uint32) {
	c.buf = append(c.buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}
func (c *collectSink) WriteUint64(u uint64) {
	c.WriteUint32(uint32(u))
	c.WriteUint32(uint32(u >> 32))
}

// leBytes renders the canonical little-endian encoding via encoding/binary.
func leBytes(t *testing.T, v any) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func regionsUnderTest() []Region {
	return []Region{
		&Float64{Data: []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}},
		&Float32{Data: []float32{0, 1.5, -2.25, 3.25e7, float32(math.Inf(-1))}},
		&Int32{Data: []int32{0, 1, -1, 1 << 30, -(1 << 30)}},
		&Bytes{Data: []byte{0, 1, 2, 255, 128}},
	}
}

func payload(r Region) any {
	switch x := r.(type) {
	case *Float64:
		return x.Data
	case *Float32:
		return x.Data
	case *Int32:
		return x.Data
	default:
		return x.(*Bytes).Data
	}
}

func TestByteAtMatchesEncodingBinary(t *testing.T) {
	for _, r := range regionsUnderTest() {
		want := leBytes(t, payload(r))
		if r.NumBytes() != len(want) {
			t.Fatalf("%s: NumBytes=%d want %d", r.Kind(), r.NumBytes(), len(want))
		}
		for i := 0; i < r.NumBytes(); i++ {
			if got := r.ByteAt(i); got != want[i] {
				t.Errorf("%s: ByteAt(%d)=%#x want %#x", r.Kind(), i, got, want[i])
			}
		}
	}
}

func TestHashIntoMatchesByteAt(t *testing.T) {
	for _, r := range regionsUnderTest() {
		var got []byte
		r.HashInto(func(b byte) { got = append(got, b) })
		want := leBytes(t, payload(r))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: HashInto stream mismatch", r.Kind())
		}
	}
}

func TestHashWordsMatchesHashInto(t *testing.T) {
	for _, r := range regionsUnderTest() {
		var viaBytes []byte
		r.HashInto(func(b byte) { viaBytes = append(viaBytes, b) })
		sink := &collectSink{}
		r.HashWords(sink)
		if !bytes.Equal(viaBytes, sink.buf) {
			t.Errorf("%s: HashWords and HashInto streams differ", r.Kind())
		}
	}
}

func TestKindSizeConsistency(t *testing.T) {
	for _, r := range regionsUnderTest() {
		if r.NumBytes() != r.NumElems()*r.Kind().Size() {
			t.Errorf("%s: NumBytes=%d != NumElems*Size=%d", r.Kind(), r.NumBytes(), r.NumElems()*r.Kind().Size())
		}
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	for _, r := range regionsUnderTest() {
		c := r.Clone()
		if !r.EqualContents(c) || !c.EqualContents(r) {
			t.Fatalf("%s: clone not equal", r.Kind())
		}
		// Mutating the clone must not affect the original.
		switch x := c.(type) {
		case *Float64:
			x.Data[0] = 99
		case *Float32:
			x.Data[0] = 99
		case *Int32:
			x.Data[0] = 99
		case *Bytes:
			x.Data[0] = 99
		}
		if r.EqualContents(c) {
			t.Fatalf("%s: clone shares storage with original", r.Kind())
		}
	}
}

func TestCopyFromRestoresEquality(t *testing.T) {
	for _, r := range regionsUnderTest() {
		c := r.Clone()
		switch x := c.(type) {
		case *Float64:
			x.Data[1] = -77
		case *Float32:
			x.Data[1] = -77
		case *Int32:
			x.Data[1] = -77
		case *Bytes:
			x.Data[1] = 77
		}
		c.CopyFrom(r)
		if !c.EqualContents(r) {
			t.Fatalf("%s: CopyFrom did not restore contents", r.Kind())
		}
	}
}

func TestEqualContentsKindMismatch(t *testing.T) {
	f32 := &Float32{Data: []float32{1}}
	i32 := &Int32{Data: []int32{1}}
	if f32.EqualContents(i32) || i32.EqualContents(f32) {
		t.Fatal("different kinds must never be equal")
	}
	short := &Float32{Data: []float32{1, 2}}
	if f32.EqualContents(short) {
		t.Fatal("different lengths must never be equal")
	}
}

func TestEqualContentsNaN(t *testing.T) {
	// Bit-exact comparison: NaN payloads are compared as bits, so a
	// region equals its own clone even with NaNs inside.
	r := &Float64{Data: []float64{math.NaN()}}
	if !r.EqualContents(r.Clone()) {
		t.Fatal("NaN-holding region must equal its clone bit-for-bit")
	}
}

func TestFloat64AtConversions(t *testing.T) {
	f := &Float32{Data: []float32{1.5}}
	if f.Float64At(0) != 1.5 {
		t.Fatal("Float32.Float64At")
	}
	i := &Int32{Data: []int32{-3}}
	if i.Float64At(0) != -3 {
		t.Fatal("Int32.Float64At")
	}
	b := &Bytes{Data: []byte{200}}
	if b.Float64At(0) != 200 {
		t.Fatal("Bytes.Float64At")
	}
}

func TestQuickFloat64RoundTrip(t *testing.T) {
	f := func(data []float64) bool {
		r := &Float64{Data: data}
		want := leBytes(t, data)
		for i := range want {
			if r.ByteAt(i) != want[i] {
				return false
			}
		}
		return r.EqualContents(r.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInt32RoundTrip(t *testing.T) {
	f := func(data []int32) bool {
		r := &Int32{Data: data}
		want := leBytes(t, data)
		for i := range want {
			if r.ByteAt(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytes(t *testing.T) {
	rs := []Region{NewFloat64(3), NewFloat32(5), NewInt32(2), NewBytes(7)}
	want := 24 + 20 + 8 + 7
	if got := TotalBytes(rs); got != want {
		t.Fatalf("TotalBytes=%d want %d", got, want)
	}
}

func TestConstructors(t *testing.T) {
	if NewFloat64(4).NumElems() != 4 || NewFloat32(4).NumElems() != 4 ||
		NewInt32(4).NumElems() != 4 || NewBytes(4).NumElems() != 4 {
		t.Fatal("constructors must allocate the requested element count")
	}
	d := []float64{1, 2}
	w := WrapFloat64(d)
	d[0] = 9
	if w.Float64At(0) != 9 {
		t.Fatal("WrapFloat64 must alias the slice")
	}
}
