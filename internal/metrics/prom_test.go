package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPromOutput(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Family("atm_test_total", "counter", "A test counter.")
	p.Sample("atm_test_total", nil, 42)
	p.Sample("atm_test_total", []Label{{"type", "a"}, {"code", "200"}}, 7)
	p.Family("atm_frac", "gauge", "A fractional gauge.")
	p.Sample("atm_frac", nil, 0.25)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP atm_test_total A test counter.\n",
		"# TYPE atm_test_total counter\n",
		"atm_test_total 42\n",
		`atm_test_total{type="a",code="200"} 7` + "\n",
		"atm_frac 0.25\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestPromEscaping(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Family("m", "gauge", "multi\nline \\ help")
	p.Sample("m", []Label{{"v", "a\"b\\c\nd"}}, 1)
	got := b.String()
	if !strings.Contains(got, `multi\nline \\ help`) {
		t.Errorf("HELP not escaped: %q", got)
	}
	if !strings.Contains(got, `{v="a\"b\\c\nd"}`) {
		t.Errorf("label not escaped: %q", got)
	}
}

func TestPromLatencyHistogram(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	h.Observe(2 * time.Second)
	var b strings.Builder
	p := NewProm(&b)
	p.Family("lat", "histogram", "latency")
	p.LatencyHistogram("lat", nil, &h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`lat_bucket{le="0.005"} 1` + "\n", // 1ms only
		`lat_bucket{le="0.05"} 2` + "\n",  // +20ms
		`lat_bucket{le="+Inf"} 3` + "\n",
		"lat_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// _sum ≈ 2.021s.
	if !strings.Contains(got, "lat_sum 2.021") {
		t.Errorf("unexpected sum line in:\n%s", got)
	}
}
