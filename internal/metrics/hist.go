package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear, HDR-style. Values below
// 2^histSubBits nanoseconds get exact unit buckets; above that, each
// power-of-two range is split into 2^histSubBits linear sub-buckets,
// bounding the relative error of any recorded value by 1/2^histSubBits
// (~3%). 60 groups cover the full int64 nanosecond range.
const (
	histSubBits = 5
	histSubs    = 1 << histSubBits
	histGroups  = 60
	histBuckets = histSubs * histGroups
)

// Histogram is a fixed-memory, concurrency-safe latency histogram:
// Observe is one atomic add (plus a CAS loop for the max), so open-loop
// load generators can record from many sender goroutines and a server
// can record on the request path without locks. The zero value is ready
// to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubs {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	g := msb - histSubBits + 1
	sub := (v >> (msb - histSubBits)) & (histSubs - 1)
	idx := g<<histSubBits | int(sub)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histLower returns the inclusive lower bound of a bucket.
func histLower(idx int) int64 {
	g, sub := idx>>histSubBits, int64(idx&(histSubs-1))
	if g == 0 {
		return sub
	}
	return (histSubs + sub) << (g - 1)
}

// histMid returns a representative value for a bucket (its midpoint).
func histMid(idx int) int64 {
	g := idx >> histSubBits
	if g == 0 {
		return histLower(idx)
	}
	width := int64(1) << (g - 1)
	return histLower(idx) + width/2
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average recorded duration, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the recorded
// values, accurate to the bucket resolution (~3% relative). A racing
// Observe may or may not be counted; quantiles of a live histogram are
// estimates, exact once recording has stopped.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			mid := histMid(i)
			if m := h.max.Load(); mid > m {
				mid = m // the top bucket's midpoint can overshoot the max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max.Load())
}

// CountAtMost returns how many recorded values were ≤ d, to bucket
// resolution: every bucket whose upper bound is ≤ d is included, plus
// the bucket containing d itself (its values may straddle d by at most
// the ~3% bucket width). This is the cumulative count a Prometheus
// histogram's le-buckets need.
func (h *Histogram) CountAtMost(d time.Duration) uint64 {
	idx := histIndex(int64(d))
	var n uint64
	for i := 0; i <= idx; i++ {
		n += h.counts[i].Load()
	}
	return n
}
