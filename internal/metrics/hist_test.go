package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not zero: count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v, want 6ms", h.Sum())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v, want 3ms", h.Max())
	}
	if m := h.Mean(); m != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", m)
	}
}

// TestHistogramQuantileAccuracy checks the log-linear bucketing holds
// its documented ~3% relative error against exact order statistics.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	exact := make([]time.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform over 10µs..1s: exercises many bucket groups.
		d := time.Duration(float64(10*time.Microsecond) * math.Pow(1e5, rng.Float64()))
		exact = append(exact, d)
		h.Observe(d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)-1))]
		got := h.Quantile(q)
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.05 {
			t.Errorf("q%.3f: got %v, exact %v (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q1 = %v, want max %v", h.Quantile(1), h.Max())
	}
}

func TestHistogramCountAtMost(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if c := h.CountAtMost(1 * time.Second); c != 100 {
		t.Fatalf("CountAtMost(1s) = %d, want 100", c)
	}
	if c := h.CountAtMost(0); c != 0 {
		t.Fatalf("CountAtMost(0) = %d, want 0", c)
	}
	// 50ms boundary: bucketing is ~3% coarse, allow slack.
	c := h.CountAtMost(50 * time.Millisecond)
	if c < 45 || c > 55 {
		t.Fatalf("CountAtMost(50ms) = %d, want ≈50", c)
	}
}
