package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"atm/internal/region"
)

func regs(xs ...float64) []region.Region {
	return []region.Region{&region.Float64{Data: xs}}
}

func TestChebyshevZeroOnEqual(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 1
			}
		}
		return Chebyshev(regs(xs...), regs(xs...)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChebyshevKnownValue(t *testing.T) {
	// correct = (10, -4), atm = (9, -4): num = 1, den = 10 -> 0.1.
	got := Chebyshev(regs(10, -4), regs(9, -4))
	if math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("τ=%v want 0.1", got)
	}
}

func TestChebyshevUsesMaxNotSum(t *testing.T) {
	// Many small identical errors: τ must stay the per-component max,
	// unlike the accumulating Euclidean metric (the paper's argument for
	// Chebyshev in high output dimensionalities, §III-D).
	n := 10000
	correct := make([]float64, n)
	atm := make([]float64, n)
	for i := range correct {
		correct[i] = 100
		atm[i] = 100.5
	}
	got := Chebyshev(regs(correct...), regs(atm...))
	if math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("τ=%v want 0.005 regardless of dimensionality", got)
	}
}

func TestChebyshevScaleInvariance(t *testing.T) {
	a, b := []float64{3, 1, -2}, []float64{3.1, 0.8, -2}
	t1 := Chebyshev(regs(a...), regs(b...))
	for i := range a {
		a[i] *= 1000
		b[i] *= 1000
	}
	t2 := Chebyshev(regs(a...), regs(b...))
	if math.Abs(t1-t2) > 1e-12 {
		t.Fatalf("τ must be scale invariant: %v vs %v", t1, t2)
	}
}

func TestChebyshevZeroDenominator(t *testing.T) {
	if got := Chebyshev(regs(0, 0), regs(0, 0)); got != 0 {
		t.Fatalf("0/0 must be 0, got %v", got)
	}
	if got := Chebyshev(regs(0, 0), regs(1, 0)); !math.IsInf(got, 1) {
		t.Fatalf("x/0 must be +Inf, got %v", got)
	}
}

func TestChebyshevMultipleRegions(t *testing.T) {
	correct := []region.Region{
		&region.Float64{Data: []float64{10}},
		&region.Int32{Data: []int32{5}},
	}
	atm := []region.Region{
		&region.Float64{Data: []float64{10}},
		&region.Int32{Data: []int32{3}},
	}
	// num = 2 (int region), den = 10 (float region) -> 0.2.
	if got := Chebyshev(correct, atm); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("τ=%v want 0.2", got)
	}
}

func TestEuclideanZeroOnEqualAndKnown(t *testing.T) {
	if Euclidean(regs(1, 2, 3), regs(1, 2, 3)) != 0 {
		t.Fatal("Er must be 0 on equal outputs")
	}
	// correct=(3,4), atm=(3,3): num=1, den=25 -> 0.04.
	if got := Euclidean(regs(3, 4), regs(3, 3)); math.Abs(got-0.04) > 1e-15 {
		t.Fatalf("Er=%v want 0.04", got)
	}
	if got := Euclidean(regs(0), regs(2)); !math.IsInf(got, 1) {
		t.Fatalf("x/0 must be +Inf, got %v", got)
	}
	if Euclidean(regs(0), regs(0)) != 0 {
		t.Fatal("0/0 must be 0")
	}
}

func TestEuclideanAccumulates(t *testing.T) {
	// The same per-component error over more components keeps Er constant
	// (both sums scale linearly) — but unlike Chebyshev, Er grows when a
	// single component's error grows quadratically.
	small := Euclidean(regs(10, 10), regs(9, 10))
	big := Euclidean(regs(10, 10), regs(8, 10))
	if !(big > 3.9*small && big < 4.1*small) {
		t.Fatalf("doubling one error must quadruple Er: %v vs %v", small, big)
	}
}

func TestCorrectnessClamps(t *testing.T) {
	if Correctness(0) != 100 {
		t.Fatal("Er=0 -> 100%")
	}
	if got := Correctness(0.05); math.Abs(got-95) > 1e-12 {
		t.Fatalf("Er=0.05 -> 95%%, got %v", got)
	}
	if Correctness(2) != 0 {
		t.Fatal("Er>1 clamps to 0%")
	}
	if Correctness(math.Inf(1)) != 0 || Correctness(math.NaN()) != 0 {
		t.Fatal("Inf/NaN clamp to 0%")
	}
}

func TestQuickMetricAxioms(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 1
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 2
			}
		}
		tau := Chebyshev(regs(a...), regs(b...))
		er := Euclidean(regs(a...), regs(b...))
		// Non-negativity, and zero exactly on equality.
		if tau < 0 || er < 0 {
			return false
		}
		equal := true
		for i := range a {
			if a[i] != b[i] {
				equal = false
			}
		}
		if equal && (tau != 0 || er != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// denseLU computes an unpivoted LU of a copy of a, returning the combined
// factors, for residual testing.
func denseLUFactor(a []float64, n int) []float64 {
	lu := make([]float64, len(a))
	copy(lu, a)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			lu[i*n+k] /= lu[k*n+k]
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= lu[i*n+k] * lu[k*n+j]
			}
		}
	}
	return lu
}

func TestLUResidualIdentity(t *testing.T) {
	// A = I: LU = I, residual 0.
	n := 4
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	if got := LUResidual(a, a, n); got != 0 {
		t.Fatalf("identity residual=%v", got)
	}
}

func TestLUResidualExactFactorization(t *testing.T) {
	// A small diagonally dominant matrix factors exactly (up to float64
	// roundoff); the residual must be tiny.
	n := 6
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = 1 / float64(1+i+j)
		}
		a[i*n+i] += 4
	}
	lu := denseLUFactor(a, n)
	if got := LUResidual(a, lu, n); got > 1e-25 {
		t.Fatalf("exact factorization residual=%v", got)
	}
}

func TestLUResidualDetectsCorruption(t *testing.T) {
	n := 6
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i*j)%5) * 0.25
		}
		a[i*n+i] += 3
	}
	lu := denseLUFactor(a, n)
	lu[2*n+3] += 0.5 // corrupt U
	if got := LUResidual(a, lu, n); got < 1e-6 {
		t.Fatalf("corrupted factors must have a visible residual, got %v", got)
	}
}

func TestLUResidualZeroMatrix(t *testing.T) {
	n := 3
	z := make([]float64, n*n)
	if got := LUResidual(z, z, n); got != 0 {
		t.Fatalf("0/0 must be 0, got %v", got)
	}
}
