package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-exposition-format writer (version 0.0.4, the format
// every Prometheus-compatible scraper accepts). The exporter is
// deliberately dependency-free: a scrape handler builds its families in
// registration order with one Family call per metric name and one
// Sample per series, and the writer takes care of HELP/TYPE headers,
// label escaping and float formatting.
//
// Usage:
//
//	p := metrics.NewProm(w)
//	p.Family("atmd_requests_total", "counter", "HTTP requests by route and code.")
//	p.Sample("atmd_requests_total", []metrics.Label{{"route", "submit"}, {"code", "200"}}, 123)
//	p.LatencyHistogram("atmd_submit_seconds", nil, hist)
//	err := p.Err()

// Label is one name="value" pair of a sample.
type Label struct {
	Name, Value string
}

// Prom writes metric families in the Prometheus text format.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a writer targeting w. Errors are sticky: check Err()
// once after the last family.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Err returns the first write error, if any.
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family emits the HELP/TYPE header for a metric name. typ is one of
// "counter", "gauge", "histogram". Call it once per name, before the
// name's samples.
func (p *Prom) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one series: name{labels} value.
func (p *Prom) Sample(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatFloat(v))
}

// latencyBounds is the le-bucket ladder LatencyHistogram exposes:
// coarse enough to stay readable, fine enough to locate a p99 between
// 100µs and 10s.
var latencyBounds = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// LatencyHistogram renders h as a Prometheus histogram in seconds:
// name_bucket{le="..."} series over a fixed ladder, name_sum and
// name_count. Bucket counts are accurate to h's ~3% bucket resolution.
// Call Family(name, "histogram", ...) first.
func (p *Prom) LatencyHistogram(name string, labels []Label, h *Histogram) {
	for _, b := range latencyBounds {
		le := append(append([]Label{}, labels...), Label{"le", formatFloat(b.Seconds())})
		p.Sample(name+"_bucket", le, float64(h.CountAtMost(b)))
	}
	inf := append(append([]Label{}, labels...), Label{"le", "+Inf"})
	p.Sample(name+"_bucket", inf, float64(h.Count()))
	p.Sample(name+"_sum", labels, h.Sum().Seconds())
	p.Sample(name+"_count", labels, float64(h.Count()))
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus expects: integers
// without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
