// Package metrics implements the error and correctness measures of the
// paper's evaluation (§III-D and §IV-C).
//
// Per-task approximation error uses the Chebyshev relative error τ
// (equation 1): the maximum absolute component difference divided by the
// maximum absolute component of the correct output. The paper selects it
// over the Euclidean relative error Er (equation 3) because τ's reduction
// is a max, not a floating-point accumulation, so it stays precise in high
// output dimensionalities and correlates with whole-program correctness.
//
// Whole-program correctness is reported as (1 - Er) * 100%, with the
// LU-specific residual |A - L*U|² / |A|² (equation 4) for SparseLU.
//
// Beyond the paper's measures, the package carries the operational
// metrics substrate of the service layer (docs/service.md): a
// fixed-memory log-linear latency Histogram (hist.go) shared by the
// atmd request path and the atmload load generator, and a
// dependency-free Prometheus text-format writer (prom.go) behind
// atmd's GET /metrics.
package metrics

import (
	"math"

	"atm/internal/region"
)

// Chebyshev returns τ = max_i |correct_i - atm_i| / max_i |correct_i|
// over the concatenation of the paired regions (equation 1).
//
// Edge cases: if the denominator is zero, τ is 0 when the numerator is
// also zero (both outputs are identically zero) and +Inf otherwise.
func Chebyshev(correct, atm []region.Region) float64 {
	var num, den float64
	for k, c := range correct {
		a := atm[k]
		n := c.NumElems()
		for i := 0; i < n; i++ {
			cv := c.Float64At(i)
			av := a.Float64At(i)
			if d := math.Abs(cv - av); d > num {
				num = d
			}
			if m := math.Abs(cv); m > den {
				den = m
			}
		}
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// Euclidean returns Er = Σ(correct_i - atm_i)² / Σ(correct_i)²
// (equation 3).
//
// Edge cases mirror Chebyshev: 0/0 is 0, x/0 with x > 0 is +Inf.
func Euclidean(correct, atm []region.Region) float64 {
	var num, den float64
	for k, c := range correct {
		a := atm[k]
		n := c.NumElems()
		for i := 0; i < n; i++ {
			cv := c.Float64At(i)
			av := a.Float64At(i)
			d := cv - av
			num += d * d
			den += cv * cv
		}
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// Correctness converts a relative error Er into the paper's correctness
// percentage: (1 - Er) * 100, clamped to [0, 100].
func Correctness(er float64) float64 {
	c := (1 - er) * 100
	if math.IsNaN(c) || c < 0 {
		return 0
	}
	if c > 100 {
		return 100
	}
	return c
}

// LUResidual returns |A - L*U|² / |A|² (equation 4) for a dense row-major
// n×n matrix A and the combined LU factors (unit lower triangle L below
// the diagonal, U on and above it), both length n*n.
func LUResidual(a, lu []float64, n int) float64 {
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L*U)[i][j] = Σ_k L[i][k] * U[k][j], k ≤ min(i, j),
			// with L[i][i] = 1.
			kmax := i
			if j < kmax {
				kmax = j
			}
			var s float64
			for k := 0; k < kmax; k++ {
				s += lu[i*n+k] * lu[k*n+j]
			}
			// k = kmax term: if kmax == i, L[i][i] = 1 → + U[i][j];
			// else L[i][kmax]*U[kmax][j] with kmax == j.
			if kmax == i {
				s += lu[i*n+j]
			} else {
				s += lu[i*n+kmax] * lu[kmax*n+j]
			}
			d := a[i*n+j] - s
			num += d * d
			den += a[i*n+j] * a[i*n+j]
		}
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}
