package jenkins

import (
	"testing"
	"testing/quick"
)

func TestHashLittle2EmptyIsDeadbeef(t *testing.T) {
	// lookup3.c documents that zero-length input with zero seeds yields
	// 0xdeadbeef in both words.
	c, b := HashLittle2(nil, 0, 0)
	if c != 0xdeadbeef || b != 0xdeadbeef {
		t.Fatalf("HashLittle2(nil) = %#x, %#x; want 0xdeadbeef twice", c, b)
	}
}

func TestHashLittle2EmptySeeded(t *testing.T) {
	c, b := HashLittle2(nil, 1, 2)
	if c == 0xdeadbeef && b == 0xdeadbeef {
		t.Fatal("seeds must perturb the empty hash")
	}
}

func TestHashLittle2Deterministic(t *testing.T) {
	f := func(key []byte, pc, pb uint32) bool {
		c1, b1 := HashLittle2(key, pc, pb)
		c2, b2 := HashLittle2(key, pc, pb)
		return c1 == c2 && b1 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashLittle2AllTailLengths(t *testing.T) {
	// Every switch arm of the tail handler must contribute: extending
	// the input by one byte must change the hash, for every length mod
	// 12 and across block boundaries.
	buf := make([]byte, 0, 40)
	seen := map[uint64]int{}
	for n := 0; n <= 40; n++ {
		h := Hash64(buf[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide: %#x", prev, n, h)
		}
		seen[h] = n
		buf = append(buf[:n], byte(n*37+1))
	}
}

func TestHash64SingleBitAvalanche(t *testing.T) {
	// Flipping any single input bit must change the 64-bit hash (a weak
	// but meaningful avalanche check for a table-lookup hash).
	base := make([]byte, 29)
	for i := range base {
		base[i] = byte(i * 13)
	}
	h0 := Hash64(base, 7)
	for i := range base {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(base))
			copy(mut, base)
			mut[i] ^= 1 << uint(bit)
			if Hash64(mut, 7) == h0 {
				t.Fatalf("flipping byte %d bit %d left the hash unchanged", i, bit)
			}
		}
	}
}

func TestHash64SeedSeparation(t *testing.T) {
	key := []byte("approximate task memoization")
	if Hash64(key, 1) == Hash64(key, 2) {
		t.Fatal("different seeds must give different hashes")
	}
}

func TestOneAtATimeDistinguishes(t *testing.T) {
	seen := map[uint32][]byte{}
	for i := 0; i < 1000; i++ {
		key := []byte{byte(i), byte(i >> 8), byte(i * 7)}
		h := OneAtATime(key)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %v and %v", prev, key)
		}
		seen[h] = key
	}
}

func TestStreamingMatchesByteAtATime(t *testing.T) {
	// WriteUint32/WriteUint64 must produce the same stream as the
	// equivalent WriteByte sequence.
	f := func(words []uint32, dwords []uint64, seed uint64) bool {
		a := NewStreaming(seed)
		b := NewStreaming(seed)
		for _, w := range words {
			a.WriteUint32(w)
			_ = b.WriteByte(byte(w))
			_ = b.WriteByte(byte(w >> 8))
			_ = b.WriteByte(byte(w >> 16))
			_ = b.WriteByte(byte(w >> 24))
		}
		for _, d := range dwords {
			a.WriteUint64(d)
			for s := 0; s < 64; s += 8 {
				_ = b.WriteByte(byte(d >> uint(s)))
			}
		}
		return a.Sum64() == b.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingWriteMatchesWriteByte(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		a := NewStreaming(seed)
		_, _ = a.Write(data)
		b := NewStreaming(seed)
		for _, x := range data {
			_ = b.WriteByte(x)
		}
		return a.Sum64() == b.Sum64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingSum64IsRepeatable(t *testing.T) {
	s := NewStreaming(3)
	_, _ = s.Write([]byte("hello, tasks"))
	h1 := s.Sum64()
	h2 := s.Sum64()
	if h1 != h2 {
		t.Fatalf("Sum64 consumed state: %#x then %#x", h1, h2)
	}
	// Continuing after Sum64 must still work deterministically.
	_ = s.WriteByte('!')
	h3 := s.Sum64()
	s2 := NewStreaming(3)
	_, _ = s2.Write([]byte("hello, tasks!"))
	if h3 != s2.Sum64() {
		t.Fatal("writes after Sum64 diverge from a fresh stream")
	}
}

func TestStreamingReset(t *testing.T) {
	s := NewStreaming(9)
	_, _ = s.Write([]byte("garbage"))
	s.Reset()
	_, _ = s.Write([]byte("abc"))
	fresh := NewStreaming(9)
	_, _ = fresh.Write([]byte("abc"))
	if s.Sum64() != fresh.Sum64() {
		t.Fatal("Reset must restore the initial state")
	}
}

func TestStreamingLengthMatters(t *testing.T) {
	// "ab" then finalize must differ from "ab\x00": the length fold must
	// distinguish a written zero byte from absence.
	a := NewStreaming(0)
	_, _ = a.Write([]byte{1, 2})
	b := NewStreaming(0)
	_, _ = b.Write([]byte{1, 2, 0})
	if a.Sum64() == b.Sum64() {
		t.Fatal("trailing zero byte must change the hash")
	}
}

func TestStreamingDistribution(t *testing.T) {
	// Bucketing sequential integers by the low 8 bits of their hash
	// should roughly balance — the THT relies on low-bit dispersal.
	const n, buckets = 4096, 256
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		s := NewStreaming(0)
		s.WriteUint64(uint64(i))
		counts[s.Sum64()&(buckets-1)]++
	}
	for b, c := range counts {
		if c > 4*n/buckets {
			t.Fatalf("bucket %d holds %d of %d hashes (poor dispersal)", b, c, n)
		}
	}
}

func BenchmarkHash64_1KiB(b *testing.B) {
	buf := make([]byte, 1024)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Hash64(buf, 0)
	}
}

func BenchmarkStreamingUint64_1KiB(b *testing.B) {
	b.SetBytes(1024)
	s := NewStreaming(0)
	for i := 0; i < b.N; i++ {
		s.Reset()
		for w := 0; w < 128; w++ {
			s.WriteUint64(uint64(w))
		}
		_ = s.Sum64()
	}
}
