package jenkins

import (
	"math"
	"testing"
	"testing/quick"
)

// TestBulkWritesMatchElementwise pins the contract the region fast paths
// rely on: every bulk Write*s method produces exactly the hash the
// element-wise WriteUint32/WriteUint64/WriteByte stream would.
func TestBulkWritesMatchElementwise(t *testing.T) {
	f := func(seed uint64, d64 []float64, d32 []float32, i32 []int32, bs []byte, prefix uint8) bool {
		// A prefix of single bytes exercises every buffer alignment.
		pre := make([]byte, int(prefix%12))
		for i := range pre {
			pre[i] = byte(i * 7)
		}

		slow := NewStreaming(seed)
		fast := NewStreaming(seed)
		for _, b := range pre {
			_ = slow.WriteByte(b)
			_ = fast.WriteByte(b)
		}

		for _, v := range d64 {
			slow.WriteUint64(math.Float64bits(v))
		}
		fast.WriteFloat64s(d64)
		if slow.Sum64() != fast.Sum64() {
			return false
		}

		for _, v := range d32 {
			slow.WriteUint32(math.Float32bits(v))
		}
		fast.WriteFloat32s(d32)
		if slow.Sum64() != fast.Sum64() {
			return false
		}

		for _, v := range i32 {
			slow.WriteUint32(uint32(v))
		}
		fast.WriteInt32s(i32)
		if slow.Sum64() != fast.Sum64() {
			return false
		}

		for _, b := range bs {
			_ = slow.WriteByte(b)
		}
		fast.WriteBytes(bs)
		return slow.Sum64() == fast.Sum64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteUint16MatchesBytes(t *testing.T) {
	for align := 0; align < 12; align++ {
		slow := NewStreaming(9)
		fast := NewStreaming(9)
		for i := 0; i < align; i++ {
			_ = slow.WriteByte(byte(i))
			_ = fast.WriteByte(byte(i))
		}
		u := uint16(0xbeef)
		_ = slow.WriteByte(byte(u))
		_ = slow.WriteByte(byte(u >> 8))
		fast.WriteUint16(u)
		if slow.Sum64() != fast.Sum64() {
			t.Fatalf("align %d: WriteUint16 diverges from byte stream", align)
		}
	}
}

func TestResetSeed(t *testing.T) {
	a := NewStreaming(1)
	a.WriteUint64(42)
	k1 := a.Sum64()
	a.ResetSeed(2)
	a.WriteUint64(42)
	k2 := a.Sum64()
	if k1 == k2 {
		t.Fatal("different seeds must give different keys")
	}
	a.ResetSeed(1)
	a.WriteUint64(42)
	if a.Sum64() != k1 {
		t.Fatal("ResetSeed must fully restore the seeded initial state")
	}
}
