package jenkins

import "math"

// Bulk write paths: whole typed slices are folded into the lookup3 block
// state in 12-byte strides without any per-element call or buffer
// shuffling, producing exactly the byte stream the element-wise
// WriteUint32/WriteUint64 calls would. They are the p = 100% hash fast
// path: region.HashWords detects a sink that implements them.
//
// Alignment note: 4- and 8-byte elements return the buffer fill to zero
// every three elements (lcm(4,12)/4, lcm(8,12)/8), so after at most two
// single-element writes the tight block loops below take over.

// WriteFloat64s adds the little-endian IEEE-754 bytes of every element.
func (s *Streaming) WriteFloat64s(d []float64) {
	i := 0
	for ; i < len(d) && s.n != 0; i++ {
		s.WriteUint64(math.Float64bits(d[i]))
	}
	if n := len(d) - i; n >= 3 {
		s.initState()
		a, b, c := s.a, s.b, s.c
		for ; i+3 <= len(d); i += 3 {
			u0 := math.Float64bits(d[i])
			u1 := math.Float64bits(d[i+1])
			u2 := math.Float64bits(d[i+2])
			a += uint32(u0)
			b += uint32(u0 >> 32)
			c += uint32(u1)
			a, b, c = mix(a, b, c)
			a += uint32(u1 >> 32)
			b += uint32(u2)
			c += uint32(u2 >> 32)
			a, b, c = mix(a, b, c)
			s.total += 24
		}
		s.a, s.b, s.c = a, b, c
	}
	for ; i < len(d); i++ {
		s.WriteUint64(math.Float64bits(d[i]))
	}
}

// WriteFloat32s adds the little-endian IEEE-754 bytes of every element,
// three elements per lookup3 block.
func (s *Streaming) WriteFloat32s(d []float32) {
	i := 0
	for ; i < len(d) && s.n != 0; i++ {
		s.WriteUint32(math.Float32bits(d[i]))
	}
	if len(d)-i >= 3 {
		s.initState()
		a, b, c := s.a, s.b, s.c
		for ; i+3 <= len(d); i += 3 {
			a += math.Float32bits(d[i])
			b += math.Float32bits(d[i+1])
			c += math.Float32bits(d[i+2])
			a, b, c = mix(a, b, c)
			s.total += 12
		}
		s.a, s.b, s.c = a, b, c
	}
	for ; i < len(d); i++ {
		s.WriteUint32(math.Float32bits(d[i]))
	}
}

// WriteInt32s adds the little-endian bytes of every element, three
// elements per lookup3 block.
func (s *Streaming) WriteInt32s(d []int32) {
	i := 0
	for ; i < len(d) && s.n != 0; i++ {
		s.WriteUint32(uint32(d[i]))
	}
	if len(d)-i >= 3 {
		s.initState()
		a, b, c := s.a, s.b, s.c
		for ; i+3 <= len(d); i += 3 {
			a += uint32(d[i])
			b += uint32(d[i+1])
			c += uint32(d[i+2])
			a, b, c = mix(a, b, c)
			s.total += 12
		}
		s.a, s.b, s.c = a, b, c
	}
	for ; i < len(d); i++ {
		s.WriteUint32(uint32(d[i]))
	}
}

// WriteBytes adds p byte-for-byte, 12 bytes per block once aligned.
func (s *Streaming) WriteBytes(p []byte) {
	i := 0
	for ; i < len(p) && s.n != 0; i++ {
		_ = s.WriteByte(p[i])
	}
	if len(p)-i >= 12 {
		s.initState()
		a, b, c := s.a, s.b, s.c
		for ; i+12 <= len(p); i += 12 {
			a += le32(p[i : i+4])
			b += le32(p[i+4 : i+8])
			c += le32(p[i+8 : i+12])
			a, b, c = mix(a, b, c)
			s.total += 12
		}
		s.a, s.b, s.c = a, b, c
	}
	for ; i < len(p); i++ {
		_ = s.WriteByte(p[i])
	}
}
