// Package jenkins implements Bob Jenkins' hash functions used by ATM to
// build task hash keys: the lookup3 family (hashlittle2, giving 64 bits of
// hash state) and the classic one-at-a-time hash.
//
// The paper ("ATM: Approximate Task Memoization in the Runtime System",
// IPDPS 2017, §III-B) generates an 8-byte key per task from a sampled
// subset of the task's input bytes using "a hash key generator [Jenkins],
// which is known to give a collision once in 2^32".
package jenkins

// rot rotates x left by k bits.
func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// mix mixes three 32-bit values reversibly (lookup3 mix()).
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot(c, 4)
	c += b
	b -= a
	b ^= rot(a, 6)
	a += c
	c -= b
	c ^= rot(b, 8)
	b += a
	a -= c
	a ^= rot(c, 16)
	c += b
	b -= a
	b ^= rot(a, 19)
	a += c
	c -= b
	c ^= rot(b, 4)
	b += a
	return a, b, c
}

// final forces all bits of c to avalanche (lookup3 final()).
func final(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return a, b, c
}

// HashLittle2 is Jenkins' lookup3 hashlittle2: it hashes key and returns
// two 32-bit values. pc and pb seed the two results; (pc, pb) == (0, 0)
// yields the canonical hash.
//
// This is a byte-slice port of the word-at-a-time C original. Because Go
// does not allow reading past the end of a slice, the tail is assembled
// byte by byte; the resulting hash values equal the C implementation's
// "not aligned" path.
func HashLittle2(key []byte, pc, pb uint32) (uint32, uint32) {
	length := len(key)
	a := uint32(0xdeadbeef) + uint32(length) + pc
	b := a
	c := a + pb

	k := key
	for len(k) > 12 {
		a += le32(k[0:4])
		b += le32(k[4:8])
		c += le32(k[8:12])
		a, b, c = mix(a, b, c)
		k = k[12:]
	}

	// Last block: affect all of (a, b, c).
	switch len(k) {
	case 12:
		c += le32(k[8:12])
		b += le32(k[4:8])
		a += le32(k[0:4])
	case 11:
		c += uint32(k[10]) << 16
		fallthrough
	case 10:
		c += uint32(k[9]) << 8
		fallthrough
	case 9:
		c += uint32(k[8])
		fallthrough
	case 8:
		b += le32(k[4:8])
		a += le32(k[0:4])
	case 7:
		b += uint32(k[6]) << 16
		fallthrough
	case 6:
		b += uint32(k[5]) << 8
		fallthrough
	case 5:
		b += uint32(k[4])
		fallthrough
	case 4:
		a += le32(k[0:4])
	case 3:
		a += uint32(k[2]) << 16
		fallthrough
	case 2:
		a += uint32(k[1]) << 8
		fallthrough
	case 1:
		a += uint32(k[0])
	case 0:
		return c, b // zero-length strings require no mixing
	}

	a, b, c = final(a, b, c)
	return c, b
}

func le32(p []byte) uint32 {
	_ = p[3]
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// Hash64 returns a 64-bit hash of key built from the two lookup3 results,
// seeded with seed. ATM stores this 8-byte value in the THT and IKT.
func Hash64(key []byte, seed uint64) uint64 {
	c, b := HashLittle2(key, uint32(seed), uint32(seed>>32))
	return uint64(c) | uint64(b)<<32
}

// OneAtATime is Jenkins' one-at-a-time hash, kept as the cheap secondary
// hash (bucket index dispersal) and for tests.
func OneAtATime(key []byte) uint32 {
	var h uint32
	for _, c := range key {
		h += uint32(c)
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

// Streaming computes a 64-bit Jenkins-style hash incrementally without
// materializing the whole sampled-byte vector. Bytes are buffered in
// 12-byte lookup3 blocks and mixed with lookup3's mix/final rounds.
//
// Because lookup3 folds the total input length into its *initial* state —
// unknowable while streaming — Streaming folds the length at finalization
// instead. Its values therefore differ from Hash64 but share its mixing
// quality; the function is deterministic and self-consistent, which is all
// ATM requires of a key.
type Streaming struct {
	a, b, c uint32
	buf     [12]byte
	n       int  // bytes in buf
	total   int  // total bytes written
	started bool // at least one full block mixed
	seed    uint64
}

// NewStreaming returns a streaming hasher with the given seed.
func NewStreaming(seed uint64) *Streaming {
	s := &Streaming{seed: seed}
	s.Reset()
	return s
}

// Reset restores the hasher to its initial (empty) state.
func (s *Streaming) Reset() {
	s.n = 0
	s.total = 0
	s.started = false
}

// ResetSeed restores the hasher to its initial state under a new seed,
// letting one hasher be reused across task types (the ATM per-worker
// fast path relies on this to keep key computation allocation-free).
func (s *Streaming) ResetSeed(seed uint64) {
	s.seed = seed
	s.Reset()
}

// WriteByte adds one byte to the hash stream. It never fails.
func (s *Streaming) WriteByte(x byte) error {
	s.buf[s.n] = x
	s.n++
	s.total++
	if s.n == 12 {
		s.flushFull()
	}
	return nil
}

// Write adds p to the hash stream. It never fails.
func (s *Streaming) Write(p []byte) (int, error) {
	for _, x := range p {
		_ = s.WriteByte(x)
	}
	return len(p), nil
}

// WriteUint32 adds u's 4 little-endian bytes. It is the bulk fast path
// used when hashing whole regions element-wise (p = 100%): identical
// stream, far fewer calls than 4 WriteByte invocations.
func (s *Streaming) WriteUint32(u uint32) {
	if s.n <= 8 {
		s.buf[s.n] = byte(u)
		s.buf[s.n+1] = byte(u >> 8)
		s.buf[s.n+2] = byte(u >> 16)
		s.buf[s.n+3] = byte(u >> 24)
		s.n += 4
		s.total += 4
		if s.n == 12 {
			s.flushFull()
		}
		return
	}
	_ = s.WriteByte(byte(u))
	_ = s.WriteByte(byte(u >> 8))
	_ = s.WriteByte(byte(u >> 16))
	_ = s.WriteByte(byte(u >> 24))
}

// WriteUint16 adds u's 2 little-endian bytes. It serves the sampled-hash
// path's short contiguous offset runs (type-aware MSB selection on 4-byte
// elements produces byte pairs at p = 50%).
func (s *Streaming) WriteUint16(u uint16) {
	if s.n <= 10 {
		s.buf[s.n] = byte(u)
		s.buf[s.n+1] = byte(u >> 8)
		s.n += 2
		s.total += 2
		if s.n == 12 {
			s.flushFull()
		}
		return
	}
	_ = s.WriteByte(byte(u))
	_ = s.WriteByte(byte(u >> 8))
}

// WriteUint64 adds u's 8 little-endian bytes (see WriteUint32).
func (s *Streaming) WriteUint64(u uint64) {
	if s.n <= 4 {
		s.buf[s.n] = byte(u)
		s.buf[s.n+1] = byte(u >> 8)
		s.buf[s.n+2] = byte(u >> 16)
		s.buf[s.n+3] = byte(u >> 24)
		s.buf[s.n+4] = byte(u >> 32)
		s.buf[s.n+5] = byte(u >> 40)
		s.buf[s.n+6] = byte(u >> 48)
		s.buf[s.n+7] = byte(u >> 56)
		s.n += 8
		s.total += 8
		if s.n == 12 {
			s.flushFull()
		}
		return
	}
	s.WriteUint32(uint32(u))
	s.WriteUint32(uint32(u >> 32))
}

// initState lazily seeds the lookup3 running state before the first full
// block is mixed.
func (s *Streaming) initState() {
	if !s.started {
		s.a = 0xdeadbeef + uint32(s.seed)
		s.b = s.a
		s.c = s.a + uint32(s.seed>>32)
		s.started = true
	}
}

func (s *Streaming) flushFull() {
	s.initState()
	s.a += le32(s.buf[0:4])
	s.b += le32(s.buf[4:8])
	s.c += le32(s.buf[8:12])
	s.a, s.b, s.c = mix(s.a, s.b, s.c)
	s.n = 0
}

// Sum64 finalizes and returns the 64-bit hash of everything written so
// far. The hasher may continue to be used; Sum64 does not consume state.
func (s *Streaming) Sum64() uint64 {
	a, b, c := s.a, s.b, s.c
	if !s.started {
		a = 0xdeadbeef + uint32(s.seed)
		b = a
		c = a + uint32(s.seed>>32)
	}
	// Fold the total length at the end (deviates from lookup3's
	// front-loaded length, which is impossible to know when streaming).
	a += uint32(s.total)
	if s.n == 0 && s.total > 0 {
		a, b, c = final(a, b, c)
		return uint64(c) | uint64(b)<<32
	}
	for i := 0; i < s.n; i++ {
		switch {
		case i < 4:
			a += uint32(s.buf[i]) << (8 * uint(i))
		case i < 8:
			b += uint32(s.buf[i]) << (8 * uint(i-4))
		default:
			c += uint32(s.buf[i]) << (8 * uint(i-8))
		}
	}
	a, b, c = final(a, b, c)
	return uint64(c) | uint64(b)<<32
}
