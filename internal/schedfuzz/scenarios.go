package schedfuzz

import (
	"os"
	"path/filepath"

	"atm/internal/core"
	"atm/internal/failpoint"
	"atm/internal/persist"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// The scenario corpus. Each scenario is shaped by the Ctx stream and run
// under the Ctx's seeded deterministic schedule; together they cover the
// mechanisms whose bugs are interleaving-dependent: dependence wiring
// (Submit and two-phase SubmitBatch, including the >32-predecessor spill
// and WAR fans), the IKT defer/CompleteExternal handshake, the delta
// insert-log partition racing quiesce points, persistence fault paths,
// and Reset epoch churn over recycled slabs.

// Corpus returns the standard scenario corpus.
func Corpus() []Scenario {
	return []Scenario{
		{Name: "submit-chains", Run: submitChains},
		{Name: "batch-diamonds", Run: batchDiamonds},
		{Name: "fanin-spill", Run: faninSpill},
		{Name: "ikt-dup", Run: iktDup},
		{Name: "delta-partition", Run: deltaPartition},
		{Name: "persist-faults", Run: persistFaults},
		{Name: "reset-epochs", Run: resetEpochs},
	}
}

// depOracle mirrors wire()'s RAW/WAW/WAR semantics over task IDs: for
// every submitted task it derives the predecessor set the runtime must
// enforce, and check() verifies the observed execution order respects
// every edge and ran every task exactly once.
type depOracle struct {
	lastWriter map[region.Region]uint64
	readers    map[region.Region][]uint64
	preds      map[uint64][]uint64
	ids        []uint64
}

func newDepOracle() *depOracle {
	return &depOracle{
		lastWriter: map[region.Region]uint64{},
		readers:    map[region.Region][]uint64{},
		preds:      map[uint64][]uint64{},
	}
}

// observe records one submitted task, in submission order (the same
// order wire sees).
func (o *depOracle) observe(id uint64, accs []taskrt.Access) {
	o.ids = append(o.ids, id)
	add := func(p uint64) {
		if p == id {
			return
		}
		o.preds[id] = append(o.preds[id], p)
	}
	for _, a := range accs {
		r := a.Region
		switch a.Mode {
		case taskrt.ModeIn:
			if lw, ok := o.lastWriter[r]; ok {
				add(lw) // RAW
			}
			o.readers[r] = append(o.readers[r], id)
		default: // ModeOut, ModeInOut
			if lw, ok := o.lastWriter[r]; ok {
				add(lw) // WAW (and RAW for inout)
			}
			for _, rd := range o.readers[r] {
				add(rd) // WAR
			}
			o.lastWriter[r] = id
			if a.Mode == taskrt.ModeInOut {
				o.readers[r] = []uint64{id}
			} else {
				delete(o.readers, r)
			}
		}
	}
}

// reset drops the dependence history (the oracle's Runtime.Reset).
func (o *depOracle) reset() {
	o.lastWriter = map[region.Region]uint64{}
	o.readers = map[region.Region][]uint64{}
}

// check verifies order against the recorded edges: every submitted task
// executed exactly once, and every predecessor executed before its
// successor.
func (o *depOracle) check(c *Ctx, order []uint64) {
	pos := make(map[uint64]int, len(order))
	for i, id := range order {
		if _, dup := pos[id]; dup {
			c.Errorf("task %d executed twice (positions %d and %d)", id, pos[id], i)
		}
		pos[id] = i
	}
	if len(order) != len(o.ids) {
		c.Errorf("executed %d tasks, submitted %d", len(order), len(o.ids))
	}
	for _, id := range o.ids {
		pi, ok := pos[id]
		if !ok {
			c.Errorf("task %d never executed", id)
			continue
		}
		for _, p := range o.preds[id] {
			pp, ok := pos[p]
			if !ok {
				continue // already reported as never-executed
			}
			if pp >= pi {
				c.Errorf("dependence order violated: task %d (pos %d) ran before predecessor %d (pos %d)", id, pi, p, pp)
			}
		}
	}
}

// checkDrained verifies the exactly-once completion counters after a
// barrier.
func checkDrained(c *Ctx, rt *taskrt.Runtime) {
	if s, d := rt.Submitted(), rt.Completed(); s != d {
		c.Errorf("after Wait: %d submitted, %d completed", s, d)
	}
}

// recorderType registers a task type whose body appends its task ID to
// *order (deterministic mode: bodies run on the master goroutine).
func recorderType(rt *taskrt.Runtime, name string, order *[]uint64) *taskrt.TaskType {
	return rt.RegisterType(taskrt.TypeConfig{Name: name, Run: func(t *taskrt.Task) {
		*order = append(*order, t.ID())
	}})
}

// submitChains fuzzes per-task Submit over a small region pool: random
// RAW/WAW/WAR chains, occasional barriers, dependence order checked
// against the oracle.
func submitChains(c *Ctx) {
	rt := c.Runtime(taskrt.Config{})
	defer rt.Close()
	var order []uint64
	tt := recorderType(rt, "chain", &order)
	regs := make([]region.Region, 6)
	for i := range regs {
		regs[i] = region.NewFloat64(4)
	}
	o := newDepOracle()
	n := 100 + c.Intn(200)
	for i := 0; i < n; i++ {
		r1, r2 := regs[c.Intn(len(regs))], regs[c.Intn(len(regs))]
		var accs []taskrt.Access
		switch c.Intn(4) {
		case 0:
			accs = []taskrt.Access{taskrt.In(r1), taskrt.Out(r2)}
		case 1:
			accs = []taskrt.Access{taskrt.InOut(r1)}
		case 2:
			accs = []taskrt.Access{taskrt.In(r1), taskrt.In(r2)}
		default:
			accs = []taskrt.Access{taskrt.Out(r1)}
		}
		t := rt.Submit(tt, accs...)
		o.observe(t.ID(), accs)
		if c.Intn(32) == 0 {
			rt.Wait()
			checkDrained(c, rt)
		}
	}
	rt.Wait()
	checkDrained(c, rt)
	o.check(c, order)
}

// batchDiamonds fuzzes SubmitBatch's two-phase finalize with diamond
// graphs (one producer, a fan of parallel readers-then-writers, one
// reducer) split across batch boundaries so both intra-batch plain
// wiring and cross-batch guarded wiring are exercised under every
// schedule.
func batchDiamonds(c *Ctx) {
	rt := c.Runtime(taskrt.Config{})
	defer rt.Close()
	var order []uint64
	tt := recorderType(rt, "diamond", &order)
	o := newDepOracle()
	var batch []taskrt.BatchEntry
	add := func(accs ...taskrt.Access) {
		batch = append(batch, taskrt.Desc(tt, accs...))
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		for _, t := range rt.SubmitBatch(batch) {
			o.observe(t.ID(), t.Accesses())
		}
		batch = batch[:0]
	}
	diamonds := 8 + c.Intn(16)
	for d := 0; d < diamonds; d++ {
		src := region.NewFloat64(4)
		sink := region.NewFloat64(4)
		width := 2 + c.Intn(4)
		add(taskrt.Out(src))
		mids := make([]region.Region, width)
		for i := range mids {
			mids[i] = region.NewFloat64(4)
			add(taskrt.In(src), taskrt.Out(mids[i]))
			// Random batch splits move the diamond's edges between the
			// intra-batch and cross-batch wiring paths.
			if c.Intn(4) == 0 {
				flush()
			}
		}
		accs := make([]taskrt.Access, 0, width+1)
		for _, m := range mids {
			accs = append(accs, taskrt.In(m))
		}
		accs = append(accs, taskrt.Out(sink))
		add(accs...)
		if c.Intn(3) == 0 {
			flush()
			if c.Intn(4) == 0 {
				rt.Wait()
				checkDrained(c, rt)
			}
		}
	}
	flush()
	rt.Wait()
	checkDrained(c, rt)
	o.check(c, order)
}

// faninSpill drives wire()'s predecessor-dedup spill (>32 distinct
// predecessors forces the map path) and a wide WAR fan (many readers,
// then one writer) under fuzzed schedules.
func faninSpill(c *Ctx) {
	rt := c.Runtime(taskrt.Config{})
	defer rt.Close()
	var order []uint64
	tt := recorderType(rt, "fanin", &order)
	o := newDepOracle()
	submit := func(accs ...taskrt.Access) {
		t := rt.Submit(tt, accs...)
		o.observe(t.ID(), accs)
	}
	rounds := 2 + c.Intn(3)
	for round := 0; round < rounds; round++ {
		// Fan-in: 40 writers to distinct regions, one reader of all 40.
		parts := make([]region.Region, 40)
		for i := range parts {
			parts[i] = region.NewFloat64(2)
			submit(taskrt.Out(parts[i]))
		}
		accs := make([]taskrt.Access, 0, len(parts)+1)
		for _, p := range parts {
			accs = append(accs, taskrt.In(p))
		}
		sum := region.NewFloat64(2)
		accs = append(accs, taskrt.Out(sum))
		submit(accs...)
		// WAR fan: 40 readers of the sum, then a writer that must wait
		// for all of them.
		for i := 0; i < 40; i++ {
			submit(taskrt.In(sum))
		}
		submit(taskrt.InOut(sum))
		if c.Intn(2) == 0 {
			rt.Wait()
			checkDrained(c, rt)
		}
	}
	rt.Wait()
	checkDrained(c, rt)
	o.check(c, order)
}

// mkInput builds a deterministic 16-element input region keyed by v.
func mkInput(v int) *region.Float64 {
	in := region.NewFloat64(16)
	for i := range in.Data {
		in.Data[i] = float64(v*100+i) * 1.5
	}
	return in
}

// doubler is the scenarios' memoizable body: out[i] = 2*in[i].
func doubler(t *taskrt.Task) {
	in, out := t.Float64s(0), t.Float64s(1)
	for i := range in {
		out[i] = 2 * in[i]
	}
}

// iktDup fuzzes the IKT defer → CompleteExternal handshake: batches full
// of duplicate inputs under static ATM, where every duplicate either
// defers to an in-flight provider or hits the THT depending on the
// schedule. Invariants: every output is correct regardless of which path
// served it, the memoization accounting partitions the task count, and
// the run drains (a lost CompleteExternal would stall the executor,
// which panics with the seed).
func iktDup(c *Ctx) {
	memo := core.New(core.Config{Mode: core.ModeStatic})
	rt := c.Runtime(taskrt.Config{Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	type pending struct {
		v   int
		out *region.Float64
	}
	var all []pending
	rounds := 4 + c.Intn(6)
	total := int64(0)
	for round := 0; round < rounds; round++ {
		var batch []taskrt.BatchEntry
		distinct := 2 + c.Intn(6)
		dups := 2 + c.Intn(3)
		for i := 0; i < distinct; i++ {
			v := round*100 + i
			in := mkInput(v)
			for d := 0; d < dups; d++ {
				out := region.NewFloat64(16)
				all = append(all, pending{v: v, out: out})
				batch = append(batch, taskrt.Desc(tt, taskrt.In(in), taskrt.Out(out)))
			}
		}
		total += int64(len(batch))
		rt.SubmitBatch(batch)
		if c.Intn(3) == 0 {
			rt.Wait()
			checkDrained(c, rt)
		}
	}
	rt.Wait()
	checkDrained(c, rt)

	for _, p := range all {
		want := mkInput(p.v)
		for i := range p.out.Data {
			if p.out.Data[i] != 2*want.Data[i] {
				c.Errorf("input %d: out[%d] = %v, want %v", p.v, i, p.out.Data[i], 2*want.Data[i])
				break
			}
		}
	}
	for _, ts := range memo.Stats().Types {
		if ts.Name != "double" {
			continue
		}
		if ts.Tasks != total {
			c.Errorf("ATM saw %d tasks, submitted %d", ts.Tasks, total)
		}
		if got := ts.Executed + ts.MemoizedTHT + ts.MemoizedIKT; got != ts.Tasks {
			c.Errorf("accounting does not partition: executed %d + tht %d + ikt %d = %d, tasks %d",
				ts.Executed, ts.MemoizedTHT, ts.MemoizedIKT, got, ts.Tasks)
		}
	}
}

// deltaPartition fuzzes the delta insert log against quiesce points:
// seeded SnapshotDelta saves interleave with batch traffic (including
// IKT duplicates), and the saves must partition the inserts exactly —
// every executed insert logged once, and the compacted chain rebuilding
// the exact live table. A chain file round-trip ties persist's ordinary
// path into the same schedule.
func deltaPartition(c *Ctx) {
	cfg := core.Config{Mode: core.ModeStatic}
	memo := core.New(cfg)
	memo.EnableDeltaTracking()
	rt := c.Runtime(taskrt.Config{Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	base, err := memo.Snapshot()
	if err != nil {
		c.Errorf("base snapshot: %v", err)
		return
	}
	var deltas []*core.Delta
	saveDelta := func() {
		d, err := memo.SnapshotDelta()
		if err != nil {
			c.Errorf("SnapshotDelta: %v", err)
			return
		}
		deltas = append(deltas, d)
	}
	rounds := 6 + c.Intn(8)
	for round := 0; round < rounds; round++ {
		var batch []taskrt.BatchEntry
		n := 4 + c.Intn(12)
		for i := 0; i < n; i++ {
			// Mostly fresh values with some duplicates for IKT traffic.
			v := round*50 + c.Intn(n)
			batch = append(batch, taskrt.Desc(tt, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16))))
		}
		rt.SubmitBatch(batch)
		if c.Intn(2) == 0 {
			saveDelta() // quiesces via rt.Wait, mid-stream
		}
	}
	rt.Wait()
	saveDelta() // drain the tail

	var executed, logged int64
	for _, ts := range memo.Stats().Types {
		executed += ts.Executed
	}
	for _, d := range deltas {
		logged += int64(len(d.Entries))
	}
	if logged != executed {
		c.Errorf("delta chain logged %d inserts, engine executed %d tasks", logged, executed)
	}

	full, err := memo.Snapshot()
	if err != nil {
		c.Errorf("full snapshot: %v", err)
		return
	}
	keySet := func(snap *core.Snapshot) map[uint64]int {
		keys := map[uint64]int{}
		for _, sec := range snap.Types {
			for _, e := range sec.Entries {
				keys[e.Key]++
			}
		}
		return keys
	}
	replayed, err := core.Restore(cfg, base)
	if err != nil {
		c.Errorf("restore base: %v", err)
		return
	}
	for i, d := range deltas {
		if err := replayed.ApplyDelta(d); err != nil {
			c.Errorf("apply delta %d: %v", i, err)
			return
		}
	}
	snap, err := replayed.Snapshot()
	if err != nil {
		c.Errorf("replayed snapshot: %v", err)
		return
	}
	want, got := keySet(full), keySet(snap)
	if len(want) != len(got) {
		c.Errorf("replayed chain holds %d distinct keys, live table %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			c.Errorf("key %#x: live count %d, replayed %d", k, n, got[k])
		}
	}

	// Chain file round-trip under the same seed (unfaulted persist path).
	path := filepath.Join(c.Dir, "chain.atm")
	if err := persist.SaveChain(path, base, deltas); err != nil {
		c.Errorf("SaveChain: %v", err)
		return
	}
	lb, ld, err := persist.LoadChain(path)
	if err != nil {
		c.Errorf("LoadChain: %v", err)
		return
	}
	compacted, err := persist.Compact(lb, ld...)
	if err != nil {
		c.Errorf("Compact: %v", err)
		return
	}
	if gotC := keySet(compacted); len(gotC) != len(want) {
		c.Errorf("compacted chain file holds %d distinct keys, live table %d", len(gotC), len(want))
	}
}

// persistFaults fuzzes the persistence error paths: seeded failpoint
// arming makes Save/SaveChain/AppendDelta fail at the write, rename and
// append boundaries, and the invariants are (a) a failed save surfaces
// an error and leaves no *.tmp residue, (b) the chain stays loadable
// after a failed append, (c) once disarmed, saving and loading recover
// completely.
func persistFaults(c *Ctx) {
	memo := core.New(core.Config{Mode: core.ModeStatic})
	memo.EnableDeltaTracking()
	rt := c.Runtime(taskrt.Config{Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	base, err := memo.Snapshot()
	if err != nil {
		c.Errorf("base snapshot: %v", err)
		rt.Close()
		return
	}
	for v := 0; v < 8; v++ {
		rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16)))
	}
	rt.Wait()
	delta, err := memo.SnapshotDelta()
	if err != nil {
		c.Errorf("delta: %v", err)
		rt.Close()
		return
	}
	full, err := memo.Snapshot()
	if err != nil {
		c.Errorf("full snapshot: %v", err)
		rt.Close()
		return
	}
	rt.Close()

	checkNoTmp := func(op string) {
		tmps, _ := filepath.Glob(filepath.Join(c.Dir, "*.tmp"))
		for _, f := range tmps {
			c.Errorf("%s left temp-file residue: %s", op, filepath.Base(f))
			os.Remove(f)
		}
	}
	// Seeded fault plan: each point fails with probability 1/3 per call,
	// drawn from the scenario stream so the fault schedule replays with
	// the seed.
	arm := func(name string) {
		failpoint.Enable(name, func() error {
			if c.Intn(3) == 0 {
				return failpoint.ErrInjected
			}
			return nil
		})
	}
	arm(persist.FailpointWrite)
	arm(persist.FailpointRename)
	arm(persist.FailpointAppend)

	snapPath := filepath.Join(c.Dir, "snap.atm")
	chainPath := filepath.Join(c.Dir, "chain.atm")
	chainSaved := false
	for i := 0; i < 16; i++ {
		if err := persist.Save(snapPath, full); err != nil {
			checkNoTmp("Save")
		}
		if err := persist.SaveChain(chainPath, base, []*core.Delta{delta}); err == nil {
			chainSaved = true
		} else {
			checkNoTmp("SaveChain")
		}
		if chainSaved {
			// Appends fail before any byte lands; the chain must stay
			// loadable either way.
			_ = persist.AppendDelta(chainPath, delta)
			if _, _, err := persist.LoadChain(chainPath); err != nil {
				c.Errorf("chain unloadable after append attempt %d: %v", i, err)
			}
		}
	}
	failpoint.DisableAll()

	// Recovery: clean saves succeed and round-trip.
	if err := persist.Save(snapPath, full); err != nil {
		c.Errorf("recovery Save: %v", err)
		return
	}
	if _, err := persist.Load(snapPath); err != nil {
		c.Errorf("recovery Load: %v", err)
	}
	if err := persist.SaveChain(chainPath, base, []*core.Delta{delta}); err != nil {
		c.Errorf("recovery SaveChain: %v", err)
		return
	}
	if err := persist.AppendDelta(chainPath, delta); err != nil {
		c.Errorf("recovery AppendDelta: %v", err)
	}
	if _, ld, err := persist.LoadChain(chainPath); err != nil {
		c.Errorf("recovery LoadChain: %v", err)
	} else if len(ld) != 2 {
		c.Errorf("recovered chain holds %d deltas, want 2", len(ld))
	}
	checkNoTmp("recovery")
}

// resetEpochs fuzzes Reset between waves: dependence history drops per
// epoch while regions and recycled slabs carry over, and the oracle is
// reset in lockstep. Exactly-once completion must hold across epochs.
func resetEpochs(c *Ctx) {
	rt := c.Runtime(taskrt.Config{})
	defer rt.Close()
	var order []uint64
	tt := recorderType(rt, "epoch", &order)
	regs := make([]region.Region, 4)
	for i := range regs {
		regs[i] = region.NewFloat64(4)
	}
	o := newDepOracle()
	epochs := 3 + c.Intn(4)
	for e := 0; e < epochs; e++ {
		n := 40 + c.Intn(80)
		for i := 0; i < n; i++ {
			r := regs[c.Intn(len(regs))]
			var accs []taskrt.Access
			if c.Intn(3) == 0 {
				accs = []taskrt.Access{taskrt.In(r)}
			} else {
				accs = []taskrt.Access{taskrt.InOut(r)}
			}
			t := rt.Submit(tt, accs...)
			o.observe(t.ID(), accs)
		}
		rt.Reset() // barrier + dependence-history drop
		o.reset()
		checkDrained(c, rt)
	}
	o.check(c, order)
}
