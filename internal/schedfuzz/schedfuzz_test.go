package schedfuzz

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestSchedFuzzCorpus sweeps the scenario corpus. Defaults to a small
// per-scenario seed sweep so the ordinary test run stays fast; CI's
// schedfuzz-smoke job raises the sweep with -schedseeds, and a failing
// seed replays with -schedseed (see the failure message).
func TestSchedFuzzCorpus(t *testing.T) {
	opts := Options{Seeds: 12}
	if testing.Short() {
		opts.Seeds = 4
	}
	Run(t, Corpus(), opts)
}

// TestSchedFuzzRegressionCorpus replays the committed regression seeds
// (testdata/regression_seeds.txt, "scenario seed" per line): every seed
// that ever exposed a bug keeps running in the ordinary test run.
func TestSchedFuzzRegressionCorpus(t *testing.T) {
	f, err := os.Open("testdata/regression_seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byName := map[string]Scenario{}
	for _, sc := range Corpus() {
		byName[sc.Name] = sc
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			t.Fatalf("regression_seeds.txt:%d: want \"scenario seed\", got %q", line, text)
		}
		scenario, ok := byName[fields[0]]
		if !ok {
			t.Fatalf("regression_seeds.txt:%d: unknown scenario %q", line, fields[0])
		}
		seed, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || seed == 0 {
			t.Fatalf("regression_seeds.txt:%d: bad seed %q", line, fields[1])
		}
		t.Run(fmt.Sprintf("%s/seed=%d", scenario.Name, seed), func(t *testing.T) {
			RunSeed(t, scenario, seed)
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedForDeterministic pins the seed → discipline mapping: it must
// be a pure function of the seed (replays run the same discipline) and
// never produce DetSchedPolicy (which would leak machine-dependent
// defaults into the schedule).
func TestSchedForDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 64; seed++ {
		a, b := schedFor(seed), schedFor(seed)
		if a != b {
			t.Fatalf("seed %d: schedFor not deterministic (%v vs %v)", seed, a, b)
		}
		if a.String() == "policy" {
			t.Fatalf("seed %d mapped to the policy-following discipline", seed)
		}
	}
}

// TestCtxStreamDeterministic pins the scenario-shape stream: equal seeds
// draw equal sequences, so a replayed seed rebuilds the same scenario.
func TestCtxStreamDeterministic(t *testing.T) {
	a := &Ctx{Seed: 9, rng: 9 ^ 0x5eedf00dcafe}
	b := &Ctx{Seed: 9, rng: 9 ^ 0x5eedf00dcafe}
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
