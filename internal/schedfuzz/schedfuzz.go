// Package schedfuzz is a seeded schedule- and fault-fuzzing harness for
// the taskrt/core/persist stack. A scenario is a function that drives a
// deterministic runtime (taskrt.Config.Deterministic) and checks its own
// invariants — dependence order, exactly-once completion, memoization
// correctness, delta-partition exactness, no temp-file residue. The
// harness runs each scenario across N seeds; everything a run does —
// scheduling decisions, scenario shape, worker count, injected faults —
// derives from the one seed, so any failure replays bit-identically:
//
//	go test -run 'TestSchedFuzzCorpus/<scenario>' -schedseed=<seed> ./internal/schedfuzz
//
// Failing seeds worth keeping are committed to
// testdata/regression_seeds.txt and replayed by the ordinary test run.
// See docs/determinism.md for the workflow and the failpoint catalog.
package schedfuzz

import (
	"flag"
	"fmt"
	"testing"

	"atm/internal/failpoint"
	"atm/internal/taskrt"
)

var (
	flagSeed  = flag.Uint64("schedseed", 0, "replay one schedfuzz seed instead of the sweep")
	flagSeeds = flag.Int("schedseeds", 0, "override the number of seeds per scenario")
	flagSched = flag.String("schedsched", "", "override the per-seed sched discipline (fifo|lifo|random|adversarial)")
)

// splitmix64 advances *x and returns the next value of its stream (the
// same expander taskrt's deterministic executor uses; duplicated here so
// scenario shape and schedule draw from provably separate streams).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Ctx is one seeded scenario run. The scenario draws its shape (task
// counts, region choices, fault plans) from the Ctx stream and builds
// runtimes through Runtime, which seeds the schedule from the same
// integer — so shape and schedule replay together.
type Ctx struct {
	// Seed is the run's seed: the single integer that replays it.
	Seed uint64
	// Sched is the deterministic discipline this seed runs under.
	Sched taskrt.DetSched
	// Dir is a per-run temp directory for persistence scenarios.
	Dir string

	rng   uint64
	fails []string
}

// Errorf records an invariant violation; the run continues so one seed
// reports everything it found.
func (c *Ctx) Errorf(format string, args ...any) {
	c.fails = append(c.fails, fmt.Sprintf(format, args...))
}

// Uint64 draws from the scenario-shape stream.
func (c *Ctx) Uint64() uint64 { return splitmix64(&c.rng) }

// Intn draws a shape value in [0, n).
func (c *Ctx) Intn(n int) int { return int(c.Uint64() % uint64(n)) }

// Runtime builds a deterministic runtime for this run: cfg is taken as
// given except that Deterministic/Seed/DetSched are forced to the run's,
// an unset worker count is drawn from the shape stream (1–8 lanes), and
// an unset throttle window is pinned — the adaptive LLC-sized window
// would vary schedules across machines, breaking seed replay.
func (c *Ctx) Runtime(cfg taskrt.Config) *taskrt.Runtime {
	cfg.Deterministic = true
	cfg.Seed = c.Seed
	cfg.DetSched = c.Sched
	if cfg.Workers <= 0 {
		cfg.Workers = 1 + c.Intn(8)
	}
	if cfg.ThrottleWindow == 0 {
		cfg.ThrottleWindow = 512
	}
	return taskrt.New(cfg)
}

// Scenario is one named fuzz target.
type Scenario struct {
	Name string
	Run  func(*Ctx)
}

// Options configures a sweep.
type Options struct {
	// Seeds is the number of seeds per scenario (default 12; the CI
	// schedfuzz-smoke job raises it with -schedseeds).
	Seeds int
	// FirstSeed is the first seed of the sweep (default 1; seed 0 is
	// reserved as the flag's "unset" value).
	FirstSeed uint64
}

// Run sweeps every scenario across the configured seeds as subtests.
// With -schedseed=S only that seed runs — the replay path.
func Run(t *testing.T, scenarios []Scenario, opts Options) {
	seeds := opts.Seeds
	if *flagSeeds > 0 {
		seeds = *flagSeeds
	}
	if seeds <= 0 {
		seeds = 12
	}
	first := opts.FirstSeed
	if first == 0 {
		first = 1
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			if *flagSeed != 0 {
				RunSeed(t, sc, *flagSeed)
				return
			}
			for s := first; s < first+uint64(seeds); s++ {
				RunSeed(t, sc, s)
			}
		})
	}
}

// schedFor derives the seed's discipline (overridable with -schedsched).
// It is a pure function of the seed, so a replay under the same seed
// runs the same discipline without carrying extra state.
func schedFor(seed uint64) taskrt.DetSched {
	if *flagSched != "" {
		s, err := taskrt.ParseDetSched(*flagSched)
		if err != nil {
			panic(err)
		}
		if s != taskrt.DetSchedPolicy {
			return s
		}
	}
	x := seed ^ 0xd15ea5e5eed
	return taskrt.DetSched(1 + splitmix64(&x)%4)
}

// RunSeed runs one scenario under one seed, converting panics (including
// the deterministic executor's stall reports) and recorded Errorf
// failures into test failures that carry the replay command.
func RunSeed(t *testing.T, sc Scenario, seed uint64) {
	t.Helper()
	sched := schedFor(seed)
	c := &Ctx{Seed: seed, Sched: sched, Dir: t.TempDir(), rng: seed ^ 0x5eedf00dcafe}
	// Scenarios arm process-global failpoints; never leave one armed for
	// the next seed (and never run seeds in parallel).
	defer failpoint.DisableAll()
	completed := false
	var pv any
	func() {
		defer func() { pv = recover() }()
		sc.Run(c)
		completed = true
	}()
	if !completed {
		t.Fatalf("scenario %q panicked under seed %d (sched=%s): %v\n%s",
			sc.Name, seed, sched, pv, ReplayHint(sc.Name, seed))
	}
	if len(c.fails) > 0 {
		for _, f := range c.fails {
			t.Errorf("seed %d (sched=%s): %s", seed, sched, f)
		}
		t.Fatalf("scenario %q failed under seed %d\n%s", sc.Name, seed, ReplayHint(sc.Name, seed))
	}
}

// ReplayHint is the command that replays a failing seed.
func ReplayHint(name string, seed uint64) string {
	return fmt.Sprintf("replay: go test -run 'TestSchedFuzzCorpus/%s' -schedseed=%d ./internal/schedfuzz", name, seed)
}
