package core

import (
	"sync"
	"testing"
	"time"

	"atm/internal/region"
	"atm/internal/taskrt"
)

// TestDeltaSnapshotRacesSubmitBatchTraffic stresses the incremental
// save path against live traffic (run it under -race): a background
// goroutine takes periodic SnapshotDelta saves while the master keeps
// submitting batches whose intra-batch duplicates exercise the IKT
// defer → CompleteExternal path. The fence quiescence inside
// SnapshotDelta (rt.Wait) plus the bucket-ordered insert log must keep
// the deltas self-consistent: across all saves every insert is
// recorded exactly once, and compacting the chain rebuilds the exact
// table the live engine ended with.
func TestDeltaSnapshotRacesSubmitBatchTraffic(t *testing.T) {
	const (
		rounds    = 40
		batchSize = 32
		saveEvery = time.Millisecond
	)
	cfg := Config{Mode: ModeStatic}
	memo := New(cfg)
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	base, err := memo.Snapshot() // empty chain base, before any traffic
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu     sync.Mutex
		deltas []*Delta
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(saveEvery):
			}
			d, err := memo.SnapshotDelta()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			deltas = append(deltas, d)
			mu.Unlock()
		}
	}()

	// A second task type appears only midway through the run, so its
	// very first inserts race the background saver — the stale-names
	// window where SnapshotDelta must not drop freshly-registered
	// types' logged entries.
	var late *taskrt.TaskType
	for round := 0; round < rounds; round++ {
		if round == rounds/2 {
			late = rt.RegisterType(taskrt.TypeConfig{Name: "late", Memoize: true, Run: doubler})
		}
		batch := make([]taskrt.BatchEntry, 0, batchSize+1)
		for i := 0; i < batchSize; i++ {
			// Each fresh value appears twice per batch, so the duplicate
			// either defers through the IKT (completing via
			// CompleteExternal) or hits the THT — both while saves race.
			v := round*batchSize/2 + i%(batchSize/2)
			batch = append(batch, taskrt.Desc(tt, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16))))
		}
		if late != nil {
			batch = append(batch, taskrt.Desc(late, taskrt.In(mkInput(100000+round)), taskrt.Out(region.NewFloat64(16))))
		}
		rt.SubmitBatch(batch)
		if round%8 == 0 {
			rt.Wait()
		}
	}
	rt.Wait()
	close(done)
	wg.Wait()

	final, err := memo.SnapshotDelta() // drain whatever the racing saves missed
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	deltas = append(deltas, final)
	mu.Unlock()

	// Every insert must be logged exactly once across the save
	// partition: in static mode each executed task inserts one entry.
	var executed, logged int64
	for _, ts := range memo.Stats().Types {
		executed += ts.Executed
	}
	for _, d := range deltas {
		logged += int64(len(d.Entries))
	}
	if logged != executed {
		t.Fatalf("delta chain logged %d inserts, engine executed %d tasks", logged, executed)
	}

	// Compacting the chain must rebuild the live table exactly: same
	// key set (the workload never overflows a bucket, so no evictions).
	full, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	keySet := func(snap *Snapshot) map[uint64]int {
		keys := map[uint64]int{}
		for _, sec := range snap.Types {
			for _, e := range sec.Entries {
				keys[e.Key]++
			}
		}
		return keys
	}
	chained, err := Restore(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		if err := chained.ApplyDelta(d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	replayed, err := chained.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, got := keySet(full), keySet(replayed)
	if len(want) != len(got) {
		t.Fatalf("replayed chain holds %d distinct keys, live table %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %#x: live count %d, replayed %d", k, n, got[k])
		}
	}

	// And the replayed engine serves every input the live run learned.
	rt2 := taskrt.New(taskrt.Config{Workers: 2, Memoizer: chained})
	defer rt2.Close()
	executedWarm := 0
	tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		executedWarm++
		doubler(task)
	}})
	for v := 0; v < rounds*batchSize/2; v++ {
		rt2.Submit(tt2, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16)))
	}
	rt2.Wait()
	if executedWarm != 0 {
		t.Fatalf("warm replay executed %d bodies instead of serving restored hits", executedWarm)
	}
}
