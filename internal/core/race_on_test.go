//go:build race

package core

// raceEnabled mirrors the runtime's race.Enabled for tests whose
// assertions depend on sync.Pool round-trips: in race mode the runtime
// intentionally drops Pool.Put calls at random, so pool-recycling
// outcomes are not assertable.
const raceEnabled = true
