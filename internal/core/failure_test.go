package core

import (
	"testing"

	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// Failure-injection tests: §III-E lists ATM's limitations — tasks that use
// undeclared state or randomness violate the determinism contract. These
// tests verify dynamic ATM's training phase contains the damage, and that
// static ATM behaves exactly as specified when misused.

// TestDynamicContainsNondeterministicTask injects a task type whose output
// depends on a hidden counter (undeclared state). Dynamic ATM's training
// phase grades its approximations, sees τ failures on the same output
// region, and eventually excludes it rather than serving stale outputs
// forever.
func TestDynamicContainsNondeterministicTask(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()

	hidden := 0.0 // undeclared state: a §III-E contract violation
	bad := rt.RegisterType(taskrt.TypeConfig{
		Name: "nondet", Memoize: true, TauMax: 0.01, LTraining: 1000,
		Run: func(task *taskrt.Task) {
			hidden += 1000
			task.Float64s(1)[0] = task.Float64s(0)[0] + hidden
		},
	})
	in := region.NewFloat64(1)
	in.Data[0] = 5
	out := region.NewFloat64(1)
	for i := 0; i < 20; i++ {
		rt.Submit(bad, taskrt.In(in), taskrt.InOut(out))
	}
	rt.Wait()

	ts := memo.Stats().Types[0]
	if ts.ExcludedRegions != 1 {
		t.Fatalf("nondeterministic output must be excluded: %+v", ts)
	}
	if ts.MemoizedTHT != 0 {
		t.Fatalf("training must never serve the nondeterministic task from the THT: %+v", ts)
	}
	// All tasks executed: the program's (nondeterministic) semantics are
	// preserved even though the type was mis-annotated.
	if ts.Executed != ts.Tasks {
		t.Fatalf("accounting: %+v", ts)
	}
}

// TestStaticServesStaleForUndeclaredInput documents the §III-E limitation:
// under *static* ATM a task reading undeclared inputs is memoized on its
// declared inputs only, so it receives stale outputs. This is the
// specified (mis)behavior, not a bug — the test pins it.
func TestStaticServesStaleForUndeclaredInput(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()

	undeclared := 1.0
	bad := rt.RegisterType(taskrt.TypeConfig{
		Name: "undeclared-read", Memoize: true,
		Run: func(task *taskrt.Task) {
			task.Float64s(1)[0] = task.Float64s(0)[0] * undeclared
		},
	})
	in := region.NewFloat64(1)
	in.Data[0] = 3
	out1, out2 := region.NewFloat64(1), region.NewFloat64(1)
	rt.Submit(bad, taskrt.In(in), taskrt.Out(out1))
	rt.Wait()
	undeclared = 2 // changes behavior invisibly to ATM
	rt.Submit(bad, taskrt.In(in), taskrt.Out(out2))
	rt.Wait()

	if out2.Data[0] != out1.Data[0] {
		t.Fatalf("static ATM must have served the memoized (stale) output, got %v vs %v",
			out2.Data[0], out1.Data[0])
	}
}

// TestExcludedTaskStillProducesFreshOutputs verifies an excluded type's
// tasks keep executing normally through the rest of the run.
func TestExcludedTaskStillProducesFreshOutputs(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()

	calls := 0
	bad := rt.RegisterType(taskrt.TypeConfig{
		Name: "flappy", Memoize: true, TauMax: 0.001, LTraining: 1000,
		Run: func(task *taskrt.Task) {
			calls++
			task.Float64s(1)[0] = float64(calls)
		},
	})
	in := region.NewFloat64(1)
	out := region.NewFloat64(1)
	const n = 30
	for i := 0; i < n; i++ {
		rt.Submit(bad, taskrt.In(in), taskrt.InOut(out))
	}
	rt.Wait()
	if calls != n {
		t.Fatalf("excluded task executed %d of %d times", calls, n)
	}
	if out.Data[0] != float64(n) {
		t.Fatalf("final output %v must be the freshest execution", out.Data[0])
	}
}

// TestFixedLevelsProduceDistinctKeys pins that every p level yields a
// different sampled byte set (and so a different key) on a large mixed
// input — the property Fig. 5's sweep relies on.
func TestFixedLevelsProduceDistinctKeys(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	memo.BindRuntime(rt)

	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Run: func(task *taskrt.Task) { captured = task }})
	// Large enough that every level selects a different byte count
	// (levels only differ once ceil(N·p) does — tiny inputs legitimately
	// share keys between adjacent levels).
	in1 := region.NewFloat64(4096)
	in2 := region.NewFloat32(4096)
	for i := 0; i < 4096; i++ {
		in1.Data[i] = float64(i) * 1.1
		in2.Data[i] = float32(i) * 2.2
	}
	rt.Submit(tt, taskrt.In(in1), taskrt.In(in2), taskrt.Out(region.NewFloat64(1)))
	rt.Wait()

	seen := map[uint64]int{}
	for level := sampling.MinPLevel; level <= sampling.MaxPLevel; level++ {
		k := memo.HashKey(captured, level)
		if prev, dup := seen[k]; dup {
			t.Fatalf("levels %d and %d share key %#x", prev, level, k)
		}
		seen[k] = level
	}
}
