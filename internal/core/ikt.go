package core

import (
	"sync"

	"atm/internal/taskrt"
)

// iktKey identifies an in-flight computation.
type iktKey struct {
	typeID int
	key    uint64
	level  int8
}

// iktEntry tracks one in-flight task and the ready tasks waiting to reuse
// its outputs (the postponeCopyOuts() petitions of Fig. 1).
type iktEntry struct {
	provider *taskrt.Task
	waiters  []*taskrt.Task
}

// IKT is the In-flight Key Table of §III-A. It stores at most as many hash
// keys as there are threads in the parallel execution and is protected by
// a single lock: accesses are very fast compared to the THT because they
// involve no output copies.
type IKT struct {
	mu  sync.Mutex
	cap int
	m   map[iktKey]*iktEntry

	defers   int64
	inserts  int64
	rejected int64 // insertions skipped because the table was full
}

// NewIKT builds an IKT bounded to cap in-flight keys (the thread count).
func NewIKT(cap int) *IKT {
	if cap < 1 {
		cap = 1
	}
	return &IKT{cap: cap, m: make(map[iktKey]*iktEntry, cap)}
}

// Acquire is the OnReady-side IKT protocol. If a task with the same key is
// in flight, t is registered as a waiter and Acquire returns
// (nil, true): the caller must defer t. Otherwise t becomes the in-flight
// provider for the key (if the table has room) and Acquire returns
// (key-inserted, false).
func (k *IKT) Acquire(key iktKey, t *taskrt.Task) (inserted, deferred bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if e, ok := k.m[key]; ok {
		if !outputShapesMatch(e.provider.Outputs(), t.Outputs()) {
			return false, false // incompatible shapes: just execute
		}
		e.waiters = append(e.waiters, t)
		k.defers++
		return false, true
	}
	if len(k.m) >= k.cap {
		k.rejected++
		return false, false
	}
	k.m[key] = &iktEntry{provider: t}
	k.inserts++
	return true, false
}

// Release removes t's in-flight entry and returns the tasks waiting on it.
// It must be called after the provider's outputs are final.
func (k *IKT) Release(key iktKey, t *taskrt.Task) []*taskrt.Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	e, ok := k.m[key]
	if !ok || e.provider != t {
		return nil
	}
	delete(k.m, key)
	return e.waiters
}

// Len reports the number of in-flight keys currently tracked. It is
// zero whenever the runtime is quiescent (every provider releases its
// key at completion), which the snapshot path asserts.
func (k *IKT) Len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.m)
}

// Counters returns (provider insertions, deferred waiters, full-table
// rejections).
func (k *IKT) Counters() (inserts, defers, rejected int64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.inserts, k.defers, k.rejected
}
