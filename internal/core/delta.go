package core

import (
	"errors"
	"fmt"
)

// This file implements incremental (delta) snapshots, the persistence
// half of ROADMAP's "Snapshot compaction/merge": a long-lived service
// or a sharded sweep should not re-serialize the whole Task History
// Table on every save. With delta tracking enabled, the engine stamps
// every mutation with a save epoch (Entry.Epoch, typeState.dirtyEpoch)
// and keeps an ordered THT insert log; SnapshotDelta quiesces through
// the runtime's completion fence and extracts only the state changed
// since the previous save. The restore side chains deltas onto a full
// base snapshot with ApplyDelta; package persist serializes the chain
// (v2 record-stream format) and provides Compact/MergeSnapshots.

// Typed delta errors; test with errors.Is.
var (
	// ErrNotTracking is returned by SnapshotDelta when
	// EnableDeltaTracking was never called: without the insert log
	// there is nothing sound to extract.
	ErrNotTracking = errors.New("core: delta snapshot without EnableDeltaTracking")
	// ErrDeltaLive is returned by ApplyDelta when a referenced task
	// type has already registered in this engine: its section was
	// installed at registration, so a late delta could no longer be
	// merged into it. Chain deltas immediately after Restore, before
	// the engine runs tasks.
	ErrDeltaLive = errors.New("core: ApplyDelta after the named task type registered")
)

// Delta is the serializable difference between two saves of one
// engine: the per-type metadata that changed plus every THT insert
// performed since the previous save, in insert order. Like Snapshot,
// its regions are deep copies on the SnapshotDelta side and are
// adopted on the ApplyDelta side — do not reuse a Delta after applying
// it.
type Delta struct {
	// Fingerprint identifies the Config (see Fingerprint); it must
	// match the base snapshot's.
	Fingerprint uint64
	// Types is the delta's type table, in capture order. Entries
	// reference their type by index into it. A TypeDelta with HasMeta
	// carries changed adaptive metadata; without it the type appears
	// only because Entries references it.
	Types []TypeDelta
	// Entries are the THT operations since the previous save —
	// inserts and eviction tombstones (EntrySnapshot.Tombstone) in one
	// ordered stream — preserving per-bucket operation order (the order
	// replay needs to rebuild the same FIFO ring state). Every eviction
	// the live table performed while logging, whether ring replacement
	// or budget pressure, appears as an explicit tombstone, so replayed
	// occupancy mirrors the live table step by step.
	Entries []DeltaEntry
}

// TypeDelta is one task type's row in a delta's type table.
type TypeDelta struct {
	Name string
	// HasMeta marks a metadata update; the fields below are only
	// meaningful (and only serialized non-zero) when it is set.
	HasMeta   bool
	Steady    bool
	Level     int
	Successes int
	Excluded  int
}

// DeltaEntry is one logged THT insert: Type indexes Delta.Types.
type DeltaEntry struct {
	Type int
	EntrySnapshot
}

// EnableDeltaTracking switches the engine into incremental-snapshot
// mode: THT inserts are logged (retained, not copied — the clone cost
// is paid at save time, proportional to the delta, not to the table)
// and metadata mutations are epoch-stamped. Call it before the engine
// runs tasks; idempotent. Tracking costs one atomic load per insert
// when saves are rare, plus the log's retained entries between saves.
func (a *ATM) EnableDeltaTracking() {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	if a.tracking {
		return
	}
	a.tracking = true
	a.tht.SetLogging(true)
}

// DisableDeltaTracking turns incremental-snapshot mode back off and
// releases every entry the insert log retains. Callers that stop
// saving (e.g. after a persistent save error) should disable tracking
// too, so the log stops pinning evicted entries' buffers for a drain
// that will never come.
func (a *ATM) DisableDeltaTracking() {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	if !a.tracking {
		return
	}
	a.tracking = false
	a.tht.SetLogging(false)
}

// DeltaTracking reports whether EnableDeltaTracking was called.
func (a *ATM) DeltaTracking() bool {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	return a.tracking
}

// SnapshotDelta extracts the state changed since the previous save
// (SnapshotDelta or Snapshot) and seals the current save epoch. It
// quiesces through the runtime's completion fence like Snapshot, so
// every in-flight task has published its THT insert before the log is
// drained. Concurrent traffic submitted after the fence is simply
// carried by the next delta: the insert log partitions inserts exactly
// across saves, and a metadata mutation racing the save re-stamps the
// new epoch, so nothing is lost or saved twice. For a chain that is
// complete at a given instant, take the final delta after traffic
// stops (the harness does).
func (a *ATM) SnapshotDelta() (*Delta, error) {
	if a.rt != nil {
		a.rt.Wait()
	}
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	if !a.tracking {
		return nil, ErrNotTracking
	}
	// Seal the current epoch first: a metadata mutation that runs after
	// this bump stamps the new epoch and is picked up by the next save
	// even if this scan misses it (the stamp happens under ts.mu, which
	// the scan below also takes).
	cur := a.saveEpoch.Add(1) - 1
	d := &Delta{Fingerprint: Fingerprint(a.cfg)}

	a.typeMu.Lock()
	var states []*typeState
	if sl := a.typeStates.Load(); sl != nil {
		states = *sl
	}
	names := make(map[int]string, len(a.names))
	for id, name := range a.names {
		names[id] = name
	}
	a.typeMu.Unlock()

	idx := make(map[string]int)
	seen := make(map[string]bool, len(states))
	for id, ts := range states {
		if ts == nil {
			continue
		}
		name := names[id]
		if seen[name] {
			// Same policy as Snapshot: name-keyed sections cannot carry a
			// collision; fail at save time, where it is diagnosable.
			return nil, fmt.Errorf("core: two task types named %q: snapshot sections are keyed by type name", name)
		}
		seen[name] = true
		ts.mu.Lock()
		dirty := ts.dirtyEpoch > a.savedThrough
		ph, level := ts.load()
		succ := ts.successes
		excl := len(ts.excluded)
		ts.mu.Unlock()
		if !dirty {
			continue
		}
		idx[name] = len(d.Types)
		d.Types = append(d.Types, TypeDelta{
			Name:      name,
			HasMeta:   true,
			Steady:    ph == phaseSteady,
			Level:     level,
			Successes: succ,
			Excluded:  excl,
		})
	}

	// Drain the insert log after the metadata scan: an insert landing
	// between the two is saved now and its (possibly newer) metadata by
	// the next save — never the reverse, so a restored chain cannot hold
	// metadata for entries it does not have.
	log := a.tht.DrainLog()
	// Refresh the id→name view AFTER the drain: a type that registered
	// since the scan above may already have logged inserts, and resolving
	// them against the stale copy would drop them from every delta (the
	// log is already drained). The registry is append-only, so the
	// refreshed map is a superset of the one the scan used; such a
	// type's entries ship in this delta under a meta-less row and its
	// metadata follows with the next save, per the invariant above.
	a.typeMu.Lock()
	for id, name := range a.names {
		names[id] = name
	}
	a.typeMu.Unlock()
	for _, rec := range log {
		name, ok := names[rec.typeID]
		if !ok {
			// An operation from a type absent from the refreshed registry
			// cannot happen through the engine; guard anyway.
			rec.e.Release()
			continue
		}
		ti, ok := idx[name]
		if !ok {
			ti = len(d.Types)
			idx[name] = ti
			d.Types = append(d.Types, TypeDelta{Name: name})
		}
		if rec.e == nil {
			// An eviction tombstone: identity only, no region payload.
			d.Entries = append(d.Entries, DeltaEntry{Type: ti, EntrySnapshot: EntrySnapshot{
				Key:       rec.key,
				Level:     rec.level,
				Provider:  rec.provider,
				Tombstone: true,
			}})
			continue
		}
		d.Entries = append(d.Entries, DeltaEntry{Type: ti, EntrySnapshot: EntrySnapshot{
			Key:      rec.e.Key,
			Level:    rec.e.Level,
			Provider: rec.e.ProviderID,
			Outs:     cloneRegions(rec.e.Outs),
			Ins:      cloneRegions(rec.e.Ins),
		}})
		rec.e.Release()
	}
	a.savedThrough = cur
	return d, nil
}

// ApplyDelta chains a delta onto a restored engine: metadata updates
// replace the pending sections' metadata and logged inserts append to
// their entry lists, so when a type registers, installSection replays
// base entries followed by delta entries in original insert order.
// Call it on a freshly Restored engine, before the referenced types
// register (ErrDeltaLive otherwise); apply deltas in chain order. The
// engine adopts the delta's regions — do not reuse the delta.
func (a *ATM) ApplyDelta(d *Delta) error {
	if want := Fingerprint(a.cfg); d.Fingerprint != want {
		return fmt.Errorf("%w: delta %#016x, config %#016x", ErrSnapshotConfig, d.Fingerprint, want)
	}
	a.typeMu.Lock()
	defer a.typeMu.Unlock()
	registered := make(map[string]bool, len(a.names))
	for _, name := range a.names {
		registered[name] = true
	}
	// Validate everything before mutating anything: a rejected delta
	// must leave the pending sections untouched, not half-applied.
	seen := make(map[string]bool, len(d.Types))
	for _, td := range d.Types {
		if seen[td.Name] {
			return fmt.Errorf("core: duplicate delta section for type %q", td.Name)
		}
		seen[td.Name] = true
		if registered[td.Name] {
			return fmt.Errorf("%w: type %q", ErrDeltaLive, td.Name)
		}
	}
	for i := range d.Entries {
		if t := d.Entries[i].Type; t < 0 || t >= len(d.Types) {
			return fmt.Errorf("core: delta entry %d references type %d of %d", i, t, len(d.Types))
		}
	}
	if a.pending == nil {
		a.pending = make(map[string]*TypeSnapshot, len(d.Types))
	}
	for _, td := range d.Types {
		sec := a.pending[td.Name]
		if sec == nil {
			sec = &TypeSnapshot{Name: td.Name}
			a.pending[td.Name] = sec
		}
		if td.HasMeta {
			sec.Steady = td.Steady
			sec.Level = td.Level
			sec.Successes = td.Successes
			sec.Excluded = td.Excluded
		}
	}
	for i := range d.Entries {
		de := &d.Entries[i]
		sec := a.pending[d.Types[de.Type].Name]
		sec.Entries = append(sec.Entries, de.EntrySnapshot)
	}
	return nil
}

// DeltaStats summarizes a delta for reports and the snapshotctl
// inspect subcommand. entries counts insert operations only; use
// Tombstones for the eviction records.
func (d *Delta) Stats() (types, metas, entries int) {
	for _, td := range d.Types {
		if td.HasMeta {
			metas++
		}
	}
	return len(d.Types), metas, len(d.Entries) - d.Tombstones()
}

// Tombstones counts the delta's eviction records.
func (d *Delta) Tombstones() int {
	n := 0
	for i := range d.Entries {
		if d.Entries[i].Tombstone {
			n++
		}
	}
	return n
}
