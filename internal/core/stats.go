package core

import (
	"time"

	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// TypeStats is a snapshot of one task type's ATM activity.
type TypeStats struct {
	Name string
	// Tasks is the number of ready tasks of this type seen by ATM.
	Tasks int64
	// Executed counts tasks whose body actually ran (including every
	// training-phase task).
	Executed int64
	// MemoizedTHT counts tasks bypassed with outputs copied from the THT.
	MemoizedTHT int64
	// MemoizedIKT counts tasks deferred to an in-flight provider.
	MemoizedIKT int64
	// TrainingHits / TrainingFailures count graded training
	// approximations and those whose τ reached τmax.
	TrainingHits     int64
	TrainingFailures int64
	// ExcludedSkips counts steady-state tasks bypassing ATM because an
	// output region is in the exclusion set.
	ExcludedSkips int64
	// Level is the current p level (p = 2^(Level-15)).
	Level int
	// P is the corresponding fraction of sampled input bytes.
	P float64
	// Steady reports whether the type finished training.
	Steady bool
	// ExcludedRegions is the exclusion-set size.
	ExcludedRegions int
	// HashTime and CopyTime aggregate ATM overheads on this type.
	// Past a per-worker warmup they are sampled measurements scaled to
	// the full task count, so treat them as estimates on long runs.
	HashTime time.Duration
	CopyTime time.Duration
}

// Reuse returns the fraction of tasks bypassed by ATM (the paper's "reuse"
// metric, §IV-C).
func (s TypeStats) Reuse() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.MemoizedTHT+s.MemoizedIKT) / float64(s.Tasks)
}

// Stats is a full ATM snapshot.
type Stats struct {
	Types []TypeStats
	// THTBytes is the table's payload memory (Table III numerator).
	THTBytes int64
	// THTEntries is the current entry count.
	THTEntries int64
	// THTLookups / THTHits / THTEvictions are table counters
	// (THTEvictions counts every displaced entry — ring replacements
	// and budget evictions alike).
	THTLookups, THTHits, THTEvictions int64
	// THTBudgetBytes is the configured global memory budget (0 =
	// unbounded) and THTEvictionPolicy the policy enforcing it.
	THTBudgetBytes    int64
	THTEvictionPolicy string
	// THTBudgetEvictions counts evictions forced by the global or
	// per-tenant budget (a subset of THTEvictions); THTAdmissionRejects
	// counts inserts rejected at admission (TinyLFU duels lost, or
	// entries larger than the budget).
	THTBudgetEvictions, THTAdmissionRejects int64
	// Tenants is the per-tenant THT accounting, in dense id order (the
	// default tenant "" first); empty when only the default tenant
	// exists and no budget is set.
	Tenants []TenantStats
	// IKTInserts / IKTDefers / IKTRejected are in-flight table counters.
	IKTInserts, IKTDefers, IKTRejected int64
}

// TotalReuse returns the memoized fraction over all memoizable tasks.
func (s Stats) TotalReuse() float64 {
	var memo, tasks int64
	for _, t := range s.Types {
		memo += t.MemoizedTHT + t.MemoizedIKT
		tasks += t.Tasks
	}
	if tasks == 0 {
		return 0
	}
	return float64(memo) / float64(tasks)
}

// Stats snapshots the engine's counters, summing the per-worker shards.
func (a *ATM) Stats() Stats {
	var st Stats
	a.typeMu.Lock()
	var states []*typeState
	if sl := a.typeStates.Load(); sl != nil {
		states = *sl
	}
	for id, ts := range states {
		if ts == nil {
			continue
		}
		t := TypeStats{Name: a.names[id]}
		for i := range ts.shards {
			sh := &ts.shards[i]
			t.Tasks += sh.tasks.Load()
			t.Executed += sh.executed.Load()
			t.MemoizedTHT += sh.memoTHT.Load()
			t.MemoizedIKT += sh.memoIKT.Load()
			t.TrainingHits += sh.trainHits.Load()
			t.TrainingFailures += sh.trainFailures.Load()
			t.ExcludedSkips += sh.excludedSkips.Load()
			t.HashTime += time.Duration(sh.hashNanos.Load())
			t.CopyTime += time.Duration(sh.copyNanos.Load())
		}
		ph, level := ts.load()
		t.Level = level
		t.P = sampling.PFromLevel(level)
		t.Steady = ph == phaseSteady
		ts.mu.Lock()
		t.ExcludedRegions = len(ts.excluded)
		ts.mu.Unlock()
		st.Types = append(st.Types, t)
	}
	a.typeMu.Unlock()

	st.THTBytes = a.tht.MemoryBytes()
	st.THTEntries = a.tht.Entries()
	st.THTLookups, st.THTHits, st.THTEvictions = a.tht.Counters()
	budget, policy := a.tht.Budget()
	st.THTBudgetBytes = budget
	st.THTEvictionPolicy = policy.String()
	st.THTBudgetEvictions, st.THTAdmissionRejects = a.tht.BudgetCounters()
	if tenants := a.tht.TenantStats(); budget > 0 || len(tenants) > 1 {
		st.Tenants = tenants
	}
	if a.ikt != nil {
		st.IKTInserts, st.IKTDefers, st.IKTRejected = a.ikt.Counters()
	}
	return st
}

// ChosenLevel reports the current p level of a task type and whether its
// training has completed (the star markers of Fig. 5).
func (a *ATM) ChosenLevel(tt *taskrt.TaskType) (level int, steady bool) {
	ts := a.state(tt)
	ph, lv := ts.load()
	return lv, ph == phaseSteady
}

// MemoryBytes reports ATM's extra memory footprint (THT payload).
func (a *ATM) MemoryBytes() int64 { return a.tht.MemoryBytes() }
