package core

import (
	"sort"
	"time"

	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// TypeStats is a snapshot of one task type's ATM activity.
type TypeStats struct {
	Name string
	// Tasks is the number of ready tasks of this type seen by ATM.
	Tasks int64
	// Executed counts tasks whose body actually ran (including every
	// training-phase task).
	Executed int64
	// MemoizedTHT counts tasks bypassed with outputs copied from the THT.
	MemoizedTHT int64
	// MemoizedIKT counts tasks deferred to an in-flight provider.
	MemoizedIKT int64
	// TrainingHits / TrainingFailures count graded training
	// approximations and those whose τ reached τmax.
	TrainingHits     int64
	TrainingFailures int64
	// ExcludedSkips counts steady-state tasks bypassing ATM because an
	// output region is in the exclusion set.
	ExcludedSkips int64
	// Level is the current p level (p = 2^(Level-15)).
	Level int
	// P is the corresponding fraction of sampled input bytes.
	P float64
	// Steady reports whether the type finished training.
	Steady bool
	// ExcludedRegions is the exclusion-set size.
	ExcludedRegions int
	// HashTime and CopyTime aggregate ATM overheads on this type.
	HashTime time.Duration
	CopyTime time.Duration
}

// Reuse returns the fraction of tasks bypassed by ATM (the paper's "reuse"
// metric, §IV-C).
func (s TypeStats) Reuse() float64 {
	if s.Tasks == 0 {
		return 0
	}
	return float64(s.MemoizedTHT+s.MemoizedIKT) / float64(s.Tasks)
}

// Stats is a full ATM snapshot.
type Stats struct {
	Types []TypeStats
	// THTBytes is the table's payload memory (Table III numerator).
	THTBytes int64
	// THTEntries is the current entry count.
	THTEntries int64
	// THTLookups / THTHits / THTEvictions are table counters.
	THTLookups, THTHits, THTEvictions int64
	// IKTInserts / IKTDefers / IKTRejected are in-flight table counters.
	IKTInserts, IKTDefers, IKTRejected int64
}

// TotalReuse returns the memoized fraction over all memoizable tasks.
func (s Stats) TotalReuse() float64 {
	var memo, tasks int64
	for _, t := range s.Types {
		memo += t.MemoizedTHT + t.MemoizedIKT
		tasks += t.Tasks
	}
	if tasks == 0 {
		return 0
	}
	return float64(memo) / float64(tasks)
}

// Stats snapshots the engine's counters.
func (a *ATM) Stats() Stats {
	var st Stats
	a.typeMu.Lock()
	ids := make([]int, 0, len(a.types))
	for id := range a.types {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ts := a.types[id]
		name := a.names[id]
		ts.mu.Lock()
		st.Types = append(st.Types, TypeStats{
			Name:             name,
			Tasks:            ts.tasks,
			Executed:         ts.executed,
			MemoizedTHT:      ts.memoTHT,
			MemoizedIKT:      ts.memoIKT,
			TrainingHits:     ts.trainHits,
			TrainingFailures: ts.trainFailures,
			ExcludedSkips:    ts.excludedSkips,
			Level:            ts.level,
			P:                sampling.PFromLevel(ts.level),
			Steady:           ts.phase == phaseSteady,
			ExcludedRegions:  len(ts.excluded),
			HashTime:         time.Duration(ts.hashNanos),
			CopyTime:         time.Duration(ts.copyNanos),
		})
		ts.mu.Unlock()
	}
	a.typeMu.Unlock()

	st.THTBytes = a.tht.MemoryBytes()
	st.THTEntries = a.tht.Entries()
	st.THTLookups, st.THTHits, st.THTEvictions = a.tht.Counters()
	if a.ikt != nil {
		st.IKTInserts, st.IKTDefers, st.IKTRejected = a.ikt.Counters()
	}
	return st
}

// ChosenLevel reports the current p level of a task type and whether its
// training has completed (the star markers of Fig. 5).
func (a *ATM) ChosenLevel(tt *taskrt.TaskType) (level int, steady bool) {
	ts := a.state(tt)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.level, ts.phase == phaseSteady
}

// MemoryBytes reports ATM's extra memory footprint (THT payload).
func (a *ATM) MemoryBytes() int64 { return a.tht.MemoryBytes() }
