package core

import (
	"testing"

	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// TestOnBatchSubmittedWarmsEngineState pins the BatchObserver integration:
// a batch submitted through SubmitBatch must leave the memoizable types'
// typeState materialized and (below p = 100%) their shuffle plans built
// before any worker consults them, so the first OnReady of a new type or
// layout finds everything by atomic loads.
func TestOnBatchSubmittedWarmsEngineState(t *testing.T) {
	a := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: a})
	defer rt.Close()

	gate := make(chan struct{})
	hold := rt.RegisterType(taskrt.TypeConfig{Name: "hold", Run: func(*taskrt.Task) { <-gate }})
	memo := rt.RegisterType(taskrt.TypeConfig{Name: "memo", Memoize: true, Run: func(*taskrt.Task) {}})
	plain := rt.RegisterType(taskrt.TypeConfig{Name: "plain", Run: func(*taskrt.Task) {}})

	// Hold the lone worker so nothing of the batch reaches OnReady: the
	// state observed afterwards can only come from OnBatchSubmitted.
	rt.Submit(hold, taskrt.Out(region.NewFloat64(1)))

	in, out := region.NewFloat64(64), region.NewFloat64(64)
	rt.SubmitBatch([]taskrt.BatchEntry{
		taskrt.Desc(memo, taskrt.In(in), taskrt.Out(out)),
		taskrt.Desc(plain, taskrt.Out(region.NewFloat64(1))),
	})

	if sl := a.typeStates.Load(); sl == nil || memo.ID() >= len(*sl) || (*sl)[memo.ID()] == nil {
		t.Fatal("memoizable type state not materialized by OnBatchSubmitted")
	} else if plain.ID() < len(*sl) && (*sl)[plain.ID()] != nil {
		t.Fatal("non-memoizable type must not get engine state")
	}
	pk := planKey{typeID: memo.ID(), sig: sampling.SignatureOf([]region.Region{in})}
	if m := a.plans.Load(); m == nil || (*m)[pk] == nil {
		t.Fatal("shuffle plan not pre-built for the batch's input layout")
	}

	close(gate)
	rt.Wait()
}
