package core

import (
	"math"
	"testing"

	"atm/internal/region"
	"atm/internal/taskrt"
)

func TestVerifyInputsAcceptsTrueHits(t *testing.T) {
	memo := New(Config{Mode: ModeStatic, VerifyInputs: true})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	in := region.NewFloat64(32)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	for i := 0; i < 8; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(32)))
	}
	rt.Wait()

	ts := memo.Stats().Types[0]
	if ts.MemoizedTHT+ts.MemoizedIKT == 0 {
		t.Fatal("verification must not reject genuine matches")
	}
	if memo.FalsePositives() != 0 {
		t.Fatalf("false positives on identical inputs: %d", memo.FalsePositives())
	}
}

func TestVerifyInputsDoublesTHTMemory(t *testing.T) {
	run := func(verify bool) int64 {
		memo := New(Config{Mode: ModeStatic, VerifyInputs: verify})
		rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
		defer rt.Close()
		tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Memoize: true, Run: doubler})
		in := region.NewFloat64(128)
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(128)))
		rt.Wait()
		return memo.MemoryBytes()
	}
	plain := run(false)
	verified := run(true)
	if verified <= plain {
		t.Fatalf("input snapshots must cost memory: %d vs %d", verified, plain)
	}
	// Equal-sized inputs and outputs: verification roughly doubles the
	// payload (the paper's reason to drop the scheme).
	if verified < plain+1024-64 {
		t.Fatalf("expected ~1 KiB extra, got %d vs %d", verified, plain)
	}
}

func TestVerifyHitRejectsForgedCollision(t *testing.T) {
	// Forge a colliding entry by hand: same key, same shapes, different
	// input contents. verifyHit must reject it and count it.
	memo := New(Config{Mode: ModeStatic, VerifyInputs: true})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	memo.BindRuntime(rt)

	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Run: func(task *taskrt.Task) { captured = task }})
	in := region.NewFloat64(16)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()

	other := in.Clone()
	other.(*region.Float64).Data[3] = -99
	forged := &Entry{
		TypeID: tt.ID(), Key: 1, Level: 15,
		Outs: []region.Region{region.NewFloat64(16)},
		Ins:  []region.Region{other},
	}
	if memo.verifyHit(forged, captured, memo.state(captured.Type()), 15) {
		t.Fatal("verification must reject a forged exact-mode collision")
	}
	if memo.FalsePositives() != 1 {
		t.Fatalf("false positive must be counted: %d", memo.FalsePositives())
	}

	// Approximate mode: a forged entry differing only outside the
	// sampled byte set must still be ACCEPTED (only sampled bytes
	// participate in the key).
	lowByteTwin := in.Clone()
	d := lowByteTwin.(*region.Float64).Data
	for i := range d {
		if d[i] != 0 {
			// Flip the lowest mantissa bit: never in the level-0
			// sample of a type-aware plan over 128 bytes.
			bits := regionBits(d[i]) ^ 1
			d[i] = regionFromBits(bits)
		}
	}
	genuine := &Entry{
		TypeID: tt.ID(), Key: 1, Level: 0,
		Outs: []region.Region{region.NewFloat64(16)},
		Ins:  []region.Region{lowByteTwin},
	}
	if !memo.verifyHit(genuine, captured, memo.state(captured.Type()), 0) {
		t.Fatal("approximate verification must only compare sampled bytes")
	}
}

func TestVerifyInputsStaticEndToEnd(t *testing.T) {
	// Whole-app style check: with verification on, static ATM remains
	// bit-exact and reuse is unchanged relative to the plain engine.
	mkRun := func(verify bool) (int64, []float64) {
		memo := New(Config{Mode: ModeStatic, VerifyInputs: verify})
		rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: memo})
		defer rt.Close()
		tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Memoize: true, Run: doubler})
		ins := make([]*region.Float64, 4)
		for i := range ins {
			ins[i] = region.NewFloat64(16)
			for j := range ins[i].Data {
				ins[i].Data[j] = float64(i*100 + j)
			}
		}
		out := region.NewFloat64(16)
		for r := 0; r < 10; r++ {
			for i := range ins {
				rt.Submit(tt, taskrt.In(ins[i]), taskrt.InOut(out))
			}
		}
		rt.Wait()
		ts := memo.Stats().Types[0]
		vals := make([]float64, len(out.Data))
		copy(vals, out.Data)
		return ts.MemoizedTHT + ts.MemoizedIKT, vals
	}
	reuse1, out1 := mkRun(false)
	reuse2, out2 := mkRun(true)
	if reuse1 != reuse2 {
		t.Fatalf("verification changed reuse: %d vs %d", reuse1, reuse2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("verification changed results")
		}
	}
}

// regionBits / regionFromBits are tiny local helpers for bit twiddling in
// tests.
func regionBits(f float64) uint64     { return math.Float64bits(f) }
func regionFromBits(u uint64) float64 { return math.Float64frombits(u) }
