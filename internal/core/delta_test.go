package core

import (
	"errors"
	"testing"

	"atm/internal/region"
	"atm/internal/taskrt"
)

// runDistinct submits n distinct doubler tasks with input values
// [from, from+n) and waits for them.
func runDistinct(rt *taskrt.Runtime, tt *taskrt.TaskType, from, n int) []*region.Float64 {
	outs := make([]*region.Float64, n)
	for i := range outs {
		outs[i] = region.NewFloat64(16)
		rt.Submit(tt, taskrt.In(mkInput(from+i)), taskrt.Out(outs[i]))
	}
	rt.Wait()
	return outs
}

func TestSnapshotDeltaRequiresTracking(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	if _, err := memo.SnapshotDelta(); !errors.Is(err, ErrNotTracking) {
		t.Fatalf("want ErrNotTracking, got %v", err)
	}
	memo.EnableDeltaTracking()
	if !memo.DeltaTracking() {
		t.Fatal("tracking must report enabled")
	}
	if _, err := memo.SnapshotDelta(); err != nil {
		t.Fatalf("tracked delta: %v", err)
	}
}

func TestSnapshotDeltaCapturesOnlyNewState(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	runDistinct(rt, tt, 0, 4)
	d1, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Entries) != 4 {
		t.Fatalf("first delta entries: %d", len(d1.Entries))
	}
	if len(d1.Types) != 1 || !d1.Types[0].HasMeta || !d1.Types[0].Steady {
		t.Fatalf("first delta must carry the fresh type's metadata: %+v", d1.Types)
	}

	// Four more distinct tasks: the second delta carries exactly them,
	// and the type reappears only as an entry target — its metadata did
	// not change since the save that recorded it.
	runDistinct(rt, tt, 4, 4)
	d2, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Entries) != 4 {
		t.Fatalf("second delta entries: %d", len(d2.Entries))
	}
	if len(d2.Types) != 1 || d2.Types[0].HasMeta {
		t.Fatalf("unchanged metadata must not be re-saved: %+v", d2.Types)
	}

	// Epoch stamps partition the inserts across the two saves.
	epochs := map[uint64]int{}
	memo.THT().forEach(func(e *Entry) { epochs[e.Epoch]++ })
	if epochs[1] != 4 || epochs[2] != 4 {
		t.Fatalf("epoch partition: %v", epochs)
	}

	// Nothing happened since: the third delta is empty.
	d3, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Types) != 0 || len(d3.Entries) != 0 {
		t.Fatalf("idle delta must be empty: %+v", d3)
	}
}

func TestFullSnapshotSupersedesDeltaState(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	runDistinct(rt, tt, 0, 3)
	if _, err := memo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Types) != 0 || len(d.Entries) != 0 {
		t.Fatalf("delta after a full save must be empty: %d types, %d entries", len(d.Types), len(d.Entries))
	}
}

func TestDeltaChainRestoreMatchesFullSnapshot(t *testing.T) {
	cfg := Config{Mode: ModeStatic}
	memo := New(cfg)
	memo.EnableDeltaTracking()
	base, err := memo.Snapshot() // empty chain base, taken before any traffic
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	coldOuts := runDistinct(rt, tt, 0, 4)
	d1, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	coldOuts = append(coldOuts, runDistinct(rt, tt, 4, 4)...)
	d2, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	full, err := memo.Snapshot() // the whole-table path, for comparison
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()

	restoreAndRun := func(build func() (*ATM, error)) []*region.Float64 {
		t.Helper()
		warm, err := build()
		if err != nil {
			t.Fatal(err)
		}
		rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: warm})
		defer rt.Close()
		executed := 0
		tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
			executed++
			doubler(task)
		}})
		outs := runDistinct(rt, tt, 0, 8)
		if executed != 0 {
			t.Fatalf("warm run executed %d bodies", executed)
		}
		if warm.RestoredEntries() != 8 {
			t.Fatalf("restored entries: %d", warm.RestoredEntries())
		}
		return outs
	}

	viaChain := restoreAndRun(func() (*ATM, error) {
		warm, err := Restore(cfg, base)
		if err != nil {
			return nil, err
		}
		for _, d := range []*Delta{d1, d2} {
			if err := warm.ApplyDelta(d); err != nil {
				return nil, err
			}
		}
		return warm, nil
	})
	viaFull := restoreAndRun(func() (*ATM, error) { return Restore(cfg, full) })

	for i := range coldOuts {
		if !viaChain[i].EqualContents(coldOuts[i]) {
			t.Fatalf("chain-restored output %d diverges from the cold run", i)
		}
		if !viaFull[i].EqualContents(coldOuts[i]) {
			t.Fatalf("full-restored output %d diverges from the cold run", i)
		}
	}
}

func TestWarmRunSavesEmptyDelta(t *testing.T) {
	// The sublinear guarantee: a warm repetition that adds nothing new
	// must save a (near-)empty delta — restored entries bypass the
	// insert log and verbatim-installed metadata stays clean.
	cfg := Config{Mode: ModeStatic}
	cold := New(cfg)
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: cold})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	runDistinct(rt, tt, 0, 6)
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()

	warm, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	warm.EnableDeltaTracking()
	rt2 := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	defer rt2.Close()
	tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	runDistinct(rt2, tt2, 0, 6) // all hits
	d, err := warm.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Types) != 0 || len(d.Entries) != 0 {
		t.Fatalf("all-hit warm run must save an empty delta: %d types, %d entries", len(d.Types), len(d.Entries))
	}
}

func TestApplyDeltaRejectsLiveType(t *testing.T) {
	cfg := Config{Mode: ModeStatic}
	memo := New(cfg)
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	// The type goes live (claims its state, consuming any pending
	// section) when its first task runs; only then is a late delta
	// unmergeable.
	rt.Submit(tt, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	d := &Delta{Fingerprint: Fingerprint(cfg), Types: []TypeDelta{{Name: "double", HasMeta: true, Steady: true, Level: 15}}}
	if err := memo.ApplyDelta(d); !errors.Is(err, ErrDeltaLive) {
		t.Fatalf("want ErrDeltaLive, got %v", err)
	}
	// A delta for a type this engine never registered still applies.
	d2 := &Delta{Fingerprint: Fingerprint(cfg), Types: []TypeDelta{{Name: "other", HasMeta: true, Steady: true, Level: 15}}}
	if err := memo.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaRejectsFingerprintMismatch(t *testing.T) {
	memo := New(Config{Mode: ModeStatic, Seed: 1})
	d := &Delta{Fingerprint: Fingerprint(Config{Mode: ModeStatic, Seed: 2})}
	if err := memo.ApplyDelta(d); !errors.Is(err, ErrSnapshotConfig) {
		t.Fatalf("want ErrSnapshotConfig, got %v", err)
	}
}

func TestApplyDeltaRejectsBadTypeIndex(t *testing.T) {
	cfg := Config{Mode: ModeStatic}
	memo := New(cfg)
	d := &Delta{
		Fingerprint: Fingerprint(cfg),
		Types:       []TypeDelta{{Name: "double"}},
		Entries:     []DeltaEntry{{Type: 3}},
	}
	if err := memo.ApplyDelta(d); err == nil {
		t.Fatal("out-of-range entry type index must be rejected")
	}
}

func TestDynamicTrainingProgressDirtiesMetadata(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, TauMax: 0.01, LTraining: 100, Run: doubler})
	in := mkInput(1)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	if _, err := memo.SnapshotDelta(); err != nil {
		t.Fatal(err)
	}
	// Two more identical tasks: training hits bump the successes
	// counter, which the next delta must re-record.
	rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	d, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	var meta *TypeDelta
	for i := range d.Types {
		if d.Types[i].Name == "double" && d.Types[i].HasMeta {
			meta = &d.Types[i]
		}
	}
	if meta == nil {
		t.Fatalf("training progress must dirty the type metadata: %+v", d.Types)
	}
	if meta.Steady || meta.Successes == 0 {
		t.Fatalf("delta metadata must carry the in-training successes count: %+v", meta)
	}
}

func TestFailedSnapshotLeavesDeltaChainIntact(t *testing.T) {
	// A full save that fails (duplicate type names) must not have
	// consumed the insert log: the inserts still belong to the next
	// delta, or the chain would silently lose them.
	memo := New(Config{Mode: ModeStatic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	t1 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	t2 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	rt.Submit(t1, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt.Submit(t2, taskrt.In(mkInput(2)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	if _, err := memo.Snapshot(); err == nil {
		t.Fatal("snapshot of two same-named types must fail")
	}
	// SnapshotDelta fails for the same reason — but the entries must
	// still be pinned by the log, not silently discarded: disabling
	// tracking (the caller's give-up path) releases exactly them.
	if _, err := memo.SnapshotDelta(); err == nil {
		t.Fatal("delta of two same-named types must fail")
	}
	logged := memo.THT().DrainLog()
	if len(logged) != 2 {
		t.Fatalf("failed saves must leave the %d inserts in the log, found %d", 2, len(logged))
	}
	for _, r := range logged {
		r.e.Release()
	}
}

func TestDisableDeltaTrackingReleasesLog(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	runDistinct(rt, tt, 0, 3)
	memo.DisableDeltaTracking()
	if memo.DeltaTracking() {
		t.Fatal("tracking must report disabled")
	}
	if got := memo.THT().DrainLog(); len(got) != 0 {
		t.Fatalf("disable must have drained the log, found %d entries", len(got))
	}
	runDistinct(rt, tt, 3, 3)
	if got := memo.THT().DrainLog(); len(got) != 0 {
		t.Fatalf("inserts after disable must not be logged, found %d", len(got))
	}
}

func TestSnapshotDeltaRejectsDuplicateTypeNames(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	memo.EnableDeltaTracking()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	t1 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	t2 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	rt.Submit(t1, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt.Submit(t2, taskrt.In(mkInput(2)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	if _, err := memo.SnapshotDelta(); err == nil {
		t.Fatal("delta of two same-named types must fail")
	}
}
