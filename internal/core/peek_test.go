package core

import (
	"testing"

	"atm/internal/region"
	"atm/internal/taskrt"
)

// TestPeek exercises the read-only lookup API behind the service
// layer's GET /v1/lookup: it must miss before the table holds the
// entry, hit with the stored outputs after, and never mutate stats in
// a way that breaks task accounting.
func TestPeek(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	in := region.NewFloat64(64)
	for i := range in.Data {
		in.Data[i] = float64(i) * 0.5
	}
	peekOut := region.NewFloat64(64)
	if memo.Peek(tt, []region.Region{in}, []region.Region{peekOut}) {
		t.Fatal("Peek hit on an empty table")
	}

	out := region.NewFloat64(64)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(out))
	rt.Wait()

	if !memo.Peek(tt, []region.Region{in}, []region.Region{peekOut}) {
		t.Fatal("Peek missed after the task executed")
	}
	for i := range out.Data {
		if peekOut.Data[i] != out.Data[i] {
			t.Fatalf("peeked output[%d] = %v, want %v", i, peekOut.Data[i], out.Data[i])
		}
	}

	// A different input misses.
	other := region.NewFloat64(64)
	other.Data[0] = 999
	if memo.Peek(tt, []region.Region{other}, []region.Region{peekOut}) {
		t.Fatal("Peek hit for an input never executed")
	}

	// Output shape mismatch misses rather than corrupting anything.
	short := region.NewFloat64(8)
	if memo.Peek(tt, []region.Region{in}, []region.Region{short}) {
		t.Fatal("Peek hit despite output shape mismatch")
	}
}
