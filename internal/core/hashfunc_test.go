package core

import (
	"errors"
	"testing"

	"atm/internal/hashx"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// TestFingerprintHashFuncDefaultUnchanged pins the back-compat contract
// of the fingerprint extension: a Lookup3 (default) config fingerprints
// exactly as it did before Config.HashFunc existed, so every persisted
// snapshot header — including the golden corpus — still matches.
func TestFingerprintHashFuncDefaultUnchanged(t *testing.T) {
	cfg := Config{Mode: ModeStatic, Seed: 42}
	base := Fingerprint(cfg)
	cfg.HashFunc = hashx.Lookup3 // explicit zero value
	if got := Fingerprint(cfg); got != base {
		t.Fatalf("explicit Lookup3 changed fingerprint: %#x != %#x", got, base)
	}
	// Manual FNV over the pre-hashx field list: the formula must not
	// have drifted.
	want := uint64(fnvOffset64)
	mix := func(v uint64) {
		want ^= v
		want *= fnvPrime64
	}
	withDefaults := cfg
	withDefaults.applyDefaults()
	mix(uint64(withDefaults.Mode))
	mix(uint64(withDefaults.FixedLevel))
	mix(uint64(withDefaults.NBits))
	mix(uint64(withDefaults.M))
	mix(0) // DisableIKT
	mix(0) // DisableTypeAware
	mix(0) // VerifyInputs
	mix(withDefaults.Seed)
	if base != want {
		t.Fatalf("default fingerprint formula drifted: %#x != %#x", base, want)
	}
}

func TestFingerprintHashFuncDistinctAndDecodable(t *testing.T) {
	seen := map[uint64]hashx.Func{}
	for _, f := range hashx.Funcs() {
		fp := Fingerprint(Config{Mode: ModeStatic, Seed: 7, HashFunc: f})
		if prev, dup := seen[fp]; dup {
			t.Fatalf("funcs %v and %v share fingerprint %#x", prev, f, fp)
		}
		seen[fp] = f
		if got := FingerprintHashFunc(fp); got != f {
			t.Errorf("FingerprintHashFunc(%#x) = %v, want %v", fp, got, f)
		}
	}
	// Unregistered marker values must fall back to the default rather
	// than invent a Func.
	if got := FingerprintHashFunc(uint64(hashMarker) | 0x7f); got != hashx.Lookup3 {
		t.Errorf("unregistered marker decoded to %v", got)
	}
}

// TestSnapshotCrossHashRejected is the cross-implementation property
// test: warm state persisted under hash A must be rejected — with the
// typed config-mismatch error — when restored into an engine running
// hash B, for every ordered pair of registered functions.
func TestSnapshotCrossHashRejected(t *testing.T) {
	for _, a := range hashx.Funcs() {
		cold := New(Config{Mode: ModeStatic, HashFunc: a})
		rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: cold})
		tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
		rt.Submit(tt, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
		rt.Wait()
		snap, err := cold.Snapshot()
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range hashx.Funcs() {
			warm, err := Restore(Config{Mode: ModeStatic, HashFunc: b}, snap)
			if a == b {
				if err != nil {
					t.Fatalf("same-hash (%v) restore failed: %v", a, err)
				}
				continue
			}
			if warm != nil || !errors.Is(err, ErrSnapshotConfig) {
				t.Fatalf("restore %v snapshot into %v engine: got (%v, %v), want ErrSnapshotConfig", a, b, warm, err)
			}
		}
	}
}

// TestEngineUnderEachHash runs the full memoize-snapshot-restore cycle
// under every registered hash function: hits must be served, outputs
// must match the executed run, and a warm restart under the same
// function must serve every task from the restored THT.
func TestEngineUnderEachHash(t *testing.T) {
	for _, f := range hashx.Funcs() {
		t.Run(f.String(), func(t *testing.T) {
			cold := New(Config{Mode: ModeStatic, HashFunc: f})
			rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: cold})
			tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
			coldOuts := make([]*region.Float64, 6)
			for v := range coldOuts {
				coldOuts[v] = region.NewFloat64(16)
				rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(coldOuts[v]))
			}
			// Resubmit the same inputs: every one must hit.
			repeatOuts := make([]*region.Float64, 6)
			for v := range repeatOuts {
				repeatOuts[v] = region.NewFloat64(16)
				rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(repeatOuts[v]))
			}
			rt.Wait()
			st := cold.Stats().Types[0]
			if st.MemoizedTHT+st.MemoizedIKT != 6 {
				t.Fatalf("repeat submissions must memoize: %+v", st)
			}
			for v := range repeatOuts {
				if !repeatOuts[v].EqualContents(coldOuts[v]) {
					t.Fatalf("memoized output %d diverges", v)
				}
			}
			snap, err := cold.Snapshot()
			rt.Close()
			if err != nil {
				t.Fatal(err)
			}

			warm, err := Restore(Config{Mode: ModeStatic, HashFunc: f}, snap)
			if err != nil {
				t.Fatal(err)
			}
			rt2 := taskrt.New(taskrt.Config{Workers: 2, Memoizer: warm})
			defer rt2.Close()
			executed := 0
			tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
				executed++
				doubler(task)
			}})
			for v := 0; v < 6; v++ {
				out := region.NewFloat64(16)
				rt2.Submit(tt2, taskrt.In(mkInput(v)), taskrt.Out(out))
			}
			rt2.Wait()
			if executed != 0 {
				t.Fatalf("warm run under %v executed %d bodies", f, executed)
			}
		})
	}
}

// TestPeekHashKeyAllocationFree verifies the pooled out-of-band hasher:
// repeated Peek and HashKey calls must not allocate once the pool is
// primed (the cmd/atmd lookup path).
func TestPeekHashKeyAllocationFree(t *testing.T) {
	for _, f := range hashx.Funcs() {
		memo := New(Config{Mode: ModeStatic, HashFunc: f})
		rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
		tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
		rt.Submit(tt, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
		rt.Wait()

		ins := []region.Region{mkInput(1)}
		outs := []region.Region{region.NewFloat64(16)}
		if !memo.Peek(tt, ins, outs) {
			t.Fatalf("%v: Peek must hit the stored entry", f)
		}
		avg := testing.AllocsPerRun(200, func() {
			if !memo.Peek(tt, ins, outs) {
				t.Fatalf("%v: Peek must keep hitting", f)
			}
		})
		if avg != 0 {
			t.Errorf("%v: Peek allocates %.1f/op, want 0", f, avg)
		}
		rt.Close()
	}
}
