package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the THT's global-budget layer: with Config.THTBudgetBytes
// set, Insert keeps the table's payload under the budget by evicting
// residents before publishing the newcomer (so a sustained over-budget
// insert stream never drives MemoryBytes past the budget), under one of
// three policies selected by Config.THTEviction. Per-tenant budget
// shares (Config.TenantShares) scope the same machinery to one tenant's
// entries. The hit path stays allocation- and lock-free with eviction
// enabled: FIFO adds nothing to Lookup, CLOCK one atomic store (the
// reference bit), TinyLFU a handful of atomic nibble CASes into the
// frequency sketch.

// EvictPolicy selects the THT's budget-eviction policy.
type EvictPolicy uint8

const (
	// EvictFIFO evicts the oldest entry of the next non-empty bucket
	// under the eviction hand — the zero-cost default, the same
	// replacement order the per-bucket rings already use.
	EvictFIFO EvictPolicy = iota
	// EvictCLOCK is second-chance FIFO over the existing ring buckets:
	// Lookup hits set a reference bit, the eviction sweep clears set
	// bits and evicts the first entry found clear, so recently-hit
	// entries survive one sweep.
	EvictCLOCK
	// EvictTinyLFU adds a 4-bit count-min frequency sketch fed by every
	// lookup: an insert under budget pressure duels the would-be victim,
	// and is rejected outright when the resident's estimated frequency
	// is higher — one-hit-wonder streams stop displacing the warm set.
	EvictTinyLFU
)

// String returns the policy's flag spelling.
func (p EvictPolicy) String() string {
	switch p {
	case EvictFIFO:
		return "fifo"
	case EvictCLOCK:
		return "clock"
	case EvictTinyLFU:
		return "tinylfu"
	default:
		return fmt.Sprintf("EvictPolicy(%d)", uint8(p))
	}
}

// ParseEvictPolicy parses a policy's flag spelling.
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	switch s {
	case "", "fifo":
		return EvictFIFO, nil
	case "clock":
		return EvictCLOCK, nil
	case "tinylfu":
		return EvictTinyLFU, nil
	default:
		return 0, fmt.Errorf("unknown eviction policy %q (want fifo, clock or tinylfu)", s)
	}
}

// tenantStat is one tenant's accounting row: live bytes/entries, its
// eviction count, and its budget share in bytes (0 = capped by the
// global budget only). budget and name are immutable after
// EnsureTenant publishes the row; the counters are written from the
// insert/evict paths.
type tenantStat struct {
	name    string
	budget  int64
	bytes   atomic.Int64
	entries atomic.Int64
	evicts  atomic.Int64
	_       [32]byte // keep hot tenants off each other's cache lines
}

// EnsureTenant registers tenant id with the table's accounting,
// growing the dense tenant slice copy-on-write. budget is the tenant's
// byte share (0 = no per-tenant cap). Idempotent per id; ids are
// assigned densely by the engine's tenant registry.
func (t *THT) EnsureTenant(id int32, name string, budget int64) {
	if id < 0 {
		return
	}
	t.tenantMu.Lock()
	defer t.tenantMu.Unlock()
	var cur []*tenantStat
	if sl := t.tenants.Load(); sl != nil {
		cur = *sl
	}
	if int(id) < len(cur) && cur[id] != nil {
		return
	}
	grown := make([]*tenantStat, max(int(id)+1, len(cur)))
	copy(grown, cur)
	grown[id] = &tenantStat{name: name, budget: budget}
	t.tenants.Store(&grown)
}

// tenantStat returns tenant id's accounting row, or nil when the
// tenant was never registered (raw-THT tests): one atomic load plus an
// index, no locks.
func (t *THT) tenantStat(id int32) *tenantStat {
	sl := t.tenants.Load()
	if sl == nil || id < 0 || int(id) >= len(*sl) {
		return nil
	}
	return (*sl)[id]
}

// TenantStats is one tenant's externally visible accounting.
type TenantStats struct {
	Name        string
	BudgetBytes int64
	Bytes       int64
	Entries     int64
	Evictions   int64
}

// TenantStats reports every registered tenant's accounting, in dense
// id order.
func (t *THT) TenantStats() []TenantStats {
	sl := t.tenants.Load()
	if sl == nil {
		return nil
	}
	out := make([]TenantStats, 0, len(*sl))
	for _, st := range *sl {
		if st == nil {
			continue
		}
		out = append(out, TenantStats{
			Name:        st.name,
			BudgetBytes: st.budget,
			Bytes:       st.bytes.Load(),
			Entries:     st.entries.Load(),
			Evictions:   st.evicts.Load(),
		})
	}
	return out
}

// admit enforces the per-tenant and global budgets before e is
// published: it evicts residents until e fits, and reports false when
// e must be rejected instead — larger than its budget outright, or a
// lost TinyLFU admission duel. Evicting before adding (rather than
// adding and trimming) is what keeps MemoryBytes ≤ budget at every
// instant of a single-threaded over-budget stream; concurrent
// inserters can overshoot by at most one in-flight entry each.
func (t *THT) admit(e *Entry, size int64) bool {
	if st := t.tenantStat(e.tenant); st != nil && st.budget > 0 {
		if size > st.budget {
			return false
		}
		for st.bytes.Load()+size > st.budget {
			evicted, reject := t.evictOne(e, e.tenant)
			if reject {
				return false
			}
			if !evicted {
				break // no resident of this tenant left to evict
			}
		}
	}
	if t.budget > 0 {
		if size > t.budget {
			return false
		}
		for t.memBytes.Load()+size > t.budget {
			evicted, reject := t.evictOne(e, -1)
			if reject {
				return false
			}
			if !evicted {
				break // empty table racing concurrent evictors
			}
		}
	}
	return true
}

// evictOne scans buckets from the eviction hand for one victim under
// the configured policy — restricted to the given tenant when tenant
// ≥ 0 — removes it and adjusts the accounting. rejectNew reports a
// TinyLFU admission duel lost by the newcomer cand (the resident stays
// put and cand must not be inserted). The scan holds one bucket lock
// at a time and the caller holds none, so eviction never nests bucket
// locks.
func (t *THT) evictOne(cand *Entry, tenant int32) (evicted, rejectNew bool) {
	nb := len(t.buckets)
	// One sweep finds a victim under FIFO/TinyLFU; CLOCK needs a second
	// sweep, since the first may only clear reference bits.
	limit := nb
	if t.policy == EvictCLOCK {
		limit = 2 * nb
	}
	for pass := 0; pass < limit; pass++ {
		b := &t.buckets[(t.hand.Add(1)-1)&t.mask]
		b.mu.Lock()
		idx := -1
		for i := 0; i < b.n; i++ {
			e := b.entries[(b.head+i)%len(b.entries)]
			if tenant >= 0 && e.tenant != tenant {
				continue
			}
			if t.policy == EvictCLOCK && pass < nb && e.touched.Load() {
				e.touched.Store(false) // second chance: survive this sweep
				continue
			}
			idx = i
			break
		}
		if idx < 0 {
			b.mu.Unlock()
			continue
		}
		victim := b.entries[(b.head+idx)%len(b.entries)]
		if t.sketch != nil && cand != nil && t.sketch.estimate(victim.Key) > t.sketch.estimate(cand.Key) {
			// TinyLFU admission: the resident is estimated hotter than
			// the newcomer, so the newcomer loses.
			b.mu.Unlock()
			return false, true
		}
		b.removeAt(idx)
		if t.logging.Load() {
			// Budget evictions are explicit tombstones in the operation
			// log, in bucket order — the next delta snapshot records the
			// removal so restore and compaction see it.
			b.log = append(b.log, tombstoneRec(victim))
		}
		b.mu.Unlock()
		t.memBytes.Add(-victim.bytes)
		t.entries.Add(-1)
		t.evicts.Add(1)
		t.budgetEvicts.Add(1)
		if st := t.tenantStat(victim.tenant); st != nil {
			st.bytes.Add(-victim.bytes)
			st.entries.Add(-1)
			st.evicts.Add(1)
		}
		victim.Release()
		return true, false
	}
	return false, false
}

// freqSketch is TinyLFU's frequency estimator: a 4-bit count-min
// sketch, sketchRows rows of 2^sketchRowBits nibbles packed into
// atomic uint64 words (32 KiB total, allocated once). Increments are
// lock-free saturating nibble CASes; estimates take the minimum over
// the rows. After sketchAgeEvery increments every counter is halved
// (under a TryLock so the hot path never blocks), aging out stale
// frequency so the sketch tracks recent demand.
type freqSketch struct {
	words []atomic.Uint64
	mask  uint64
	adds  atomic.Int64
	ageMu sync.Mutex
}

const (
	sketchRows     = 4
	sketchRowBits  = 14
	sketchAgeEvery = 10 << sketchRowBits
)

// sketchSeeds perturb the key per row so the rows hash independently.
var sketchSeeds = [sketchRows]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0x27d4eb2f165667c5,
}

func newFreqSketch() *freqSketch {
	width := 1 << sketchRowBits
	return &freqSketch{
		words: make([]atomic.Uint64, sketchRows*width/16),
		mask:  uint64(width - 1),
	}
}

// slot returns the word index and nibble shift of key's counter in row r.
func (s *freqSketch) slot(key uint64, r int) (word int, shift uint) {
	h := (key ^ sketchSeeds[r]) * sketchSeeds[(r+1)%sketchRows]
	i := (h >> 17) & s.mask
	return r<<(sketchRowBits-4) | int(i>>4), uint(i&15) * 4
}

// inc bumps key's counters (saturating at 15) and ages the sketch when
// due. Lock-free and allocation-free.
func (s *freqSketch) inc(key uint64) {
	for r := 0; r < sketchRows; r++ {
		w, shift := s.slot(key, r)
		for {
			old := s.words[w].Load()
			if (old>>shift)&0xf == 0xf {
				break // saturated
			}
			if s.words[w].CompareAndSwap(old, old+1<<shift) {
				break
			}
		}
	}
	if s.adds.Add(1) >= sketchAgeEvery {
		s.age()
	}
}

// estimate returns key's count-min frequency estimate.
func (s *freqSketch) estimate(key uint64) uint64 {
	est := uint64(0xf)
	for r := 0; r < sketchRows; r++ {
		w, shift := s.slot(key, r)
		if n := (s.words[w].Load() >> shift) & 0xf; n < est {
			est = n
		}
	}
	return est
}

// age halves every counter. TryLock: racing incrementers skip the
// aging rather than block, and increments lost to the halving races
// are noise the sketch tolerates by design.
func (s *freqSketch) age() {
	if !s.ageMu.TryLock() {
		return
	}
	defer s.ageMu.Unlock()
	if s.adds.Load() < sketchAgeEvery {
		return // another ager got here first
	}
	for i := range s.words {
		for {
			old := s.words[i].Load()
			if s.words[i].CompareAndSwap(old, old>>1&0x7777777777777777) {
				break
			}
		}
	}
	s.adds.Store(0)
}
