package core

import (
	"sync"
	"sync/atomic"

	"atm/internal/region"
)

// Entry is one memoized task execution stored in the Task History Table:
// the 8-byte hash key of the (sampled) inputs, the percentage level the
// key was computed at, and a snapshot of the task's outputs. Entries are
// immutable while reachable, which lets hit paths copy from them without
// holding the bucket lock; a reference count tracks the table's own
// reference plus any in-flight readers, and an entry whose count drains
// to zero is recycled through the table's pool so a steady insert/evict
// stream stops allocating output buffers.
type Entry struct {
	TypeID     int
	Key        uint64
	Level      int8
	ProviderID uint64 // creation id of the task that produced the outputs
	// Epoch is the save epoch the entry was inserted under (see
	// ATM.saveEpoch), a diagnostic stamp: tests assert the epoch
	// partition and tools can tell restored (epoch 0) from live
	// entries. Delta extraction itself selects entries via the insert
	// log below, not by comparing epochs.
	Epoch uint64
	Outs  []region.Region
	// Ins snapshots the provider's inputs; populated only when
	// Config.VerifyInputs is set (the §III-E final-check variant).
	Ins   []region.Region
	bytes int64
	refs  atomic.Int32
	pool  *sync.Pool // set by Insert; nil entries are never recycled
}

// retain marks an in-flight reader. Callers must pair it with Release.
func (e *Entry) retain() { e.refs.Add(1) }

// Release drops one reference. Once the table and every reader are done
// with the entry it returns to the insert pool for buffer reuse. Safe on
// a nil entry.
func (e *Entry) Release() {
	if e == nil {
		return
	}
	if e.refs.Add(-1) == 0 && e.pool != nil {
		p := e.pool
		e.pool = nil
		p.Put(e)
	}
}

// THT is the Task History Table of §III-A: 2^N buckets indexed by the low
// N bits of the hash key, each holding up to M entries with FIFO
// replacement. Each bucket is protected by its own RWMutex, supporting
// exclusive writes and parallel reads exactly as the paper describes.
// Buckets are ring buffers, so an insert into a full bucket overwrites
// the oldest slot in O(1) instead of shifting the whole bucket.
type THT struct {
	mask    uint64
	m       int
	buckets []thtBucket
	pool    sync.Pool // recycled *Entry values with dead output buffers

	// logging enables the per-bucket insert logs for incremental
	// snapshots (see thtBucket.log); DrainLog hands the accumulated
	// entries (and their references) to the snapshotter.
	logging atomic.Bool

	memBytes atomic.Int64
	entries  atomic.Int64
	lookups  atomic.Int64
	hits     atomic.Int64
	evicts   atomic.Int64
}

type thtBucket struct {
	mu      sync.RWMutex
	entries []*Entry // ring: oldest at head
	head    int
	n       int
	// log records this bucket's inserts (retained) for the next delta
	// snapshot, appended under mu so it preserves the bucket's insert
	// order — the only order that matters for replaying a delta into an
	// empty table, since buckets are independent FIFO rings. Keeping
	// the log per bucket costs no extra synchronization on insert and
	// no cross-bucket contention.
	log []*Entry
}

// NewTHT builds a THT with 2^nbits buckets of capacity m each. The paper's
// sizing (§IV-B) is nbits = 8, m = 128.
func NewTHT(nbits, m int) *THT {
	if nbits < 0 {
		nbits = 0
	}
	if m <= 0 {
		m = 1
	}
	n := 1 << uint(nbits)
	return &THT{mask: uint64(n - 1), m: m, buckets: make([]thtBucket, n)}
}

// Lookup returns the entry matching (typeID, key, level), or nil. A
// non-nil result is retained for the caller, who must Release it after
// copying from it (the table cannot recycle it before that).
func (t *THT) Lookup(typeID int, key uint64, level int8) *Entry {
	t.lookups.Add(1)
	b := &t.buckets[key&t.mask]
	b.mu.RLock()
	// Newest entries are most likely to match; scan back to front.
	for i := b.n - 1; i >= 0; i-- {
		e := b.entries[(b.head+i)%len(b.entries)]
		if e.Key == key && e.TypeID == typeID && e.Level == level {
			e.retain()
			b.mu.RUnlock()
			t.hits.Add(1)
			return e
		}
	}
	b.mu.RUnlock()
	return nil
}

// GetEntry returns a recycled entry (with its previous output buffers
// still attached, for CopyFrom reuse when the shapes match) or a fresh
// one.
func (t *THT) GetEntry() *Entry {
	if e, ok := t.pool.Get().(*Entry); ok && e != nil {
		return e
	}
	return &Entry{}
}

// Insert adds e, evicting the bucket's oldest entry if it is full. The
// entry's memory size is computed idempotently, so re-inserting an entry
// (or inserting a recycled one) never double-counts. When the insert
// log is enabled the entry is recorded for the next delta snapshot.
func (t *THT) Insert(e *Entry) { t.insert(e, true) }

// InsertRestored is Insert for entries installed from a persisted
// snapshot: they are already saved, so they bypass the insert log (a
// delta must carry only state the previous save did not).
func (t *THT) InsertRestored(e *Entry) { t.insert(e, false) }

func (t *THT) insert(e *Entry, logIt bool) {
	var size int64
	for _, o := range e.Outs {
		size += int64(o.NumBytes())
	}
	for _, in := range e.Ins {
		size += int64(in.NumBytes())
	}
	size += 8 + 8 + 8 // key + provider id + header, the paper's 8-byte key cost
	e.bytes = size
	e.pool = &t.pool // set before publication: readers may Release anytime
	e.retain()       // the table's reference
	var old *Entry
	b := &t.buckets[e.Key&t.mask]
	b.mu.Lock()
	if b.entries == nil {
		c := 8
		if c > t.m {
			c = t.m
		}
		b.entries = make([]*Entry, c)
	}
	if b.n == t.m {
		old = b.entries[b.head]
		b.entries[b.head] = e
		b.head = (b.head + 1) % len(b.entries)
	} else {
		if b.n == len(b.entries) {
			grown := make([]*Entry, min(2*b.n, t.m))
			for i := 0; i < b.n; i++ {
				grown[i] = b.entries[(b.head+i)%len(b.entries)]
			}
			b.entries = grown
			b.head = 0
		}
		b.entries[(b.head+b.n)%len(b.entries)] = e
		b.n++
	}
	if logIt && t.logging.Load() {
		// Still under b.mu: concurrent inserts into this bucket reach
		// the log in ring order, so a replay of the log rebuilds
		// identical per-bucket FIFO state.
		e.retain() // the log's reference; dropped by the drain consumer
		b.log = append(b.log, e)
	}
	b.mu.Unlock()
	t.memBytes.Add(size)
	t.entries.Add(1)
	if old != nil {
		t.memBytes.Add(-old.bytes)
		t.entries.Add(-1)
		t.evicts.Add(1)
		old.Release() // drop the table's reference; readers may linger
	}
}

// forEach calls fn for every live entry, bucket by bucket in index
// order and oldest-first within a bucket — a deterministic order, so
// repeated snapshots of an idle table are byte-identical. Entries are
// retained across the callback (fn may safely read their buffers while
// concurrent inserts evict) and released afterwards; fn must not retain
// references past its return.
func (t *THT) forEach(fn func(e *Entry)) {
	var batch []*Entry
	for bi := range t.buckets {
		b := &t.buckets[bi]
		b.mu.RLock()
		batch = batch[:0]
		for i := 0; i < b.n; i++ {
			e := b.entries[(b.head+i)%len(b.entries)]
			e.retain()
			batch = append(batch, e)
		}
		b.mu.RUnlock()
		for _, e := range batch {
			fn(e)
			e.Release()
		}
	}
}

// SetLogging turns the insert log on or off. Disabling releases any
// entries still queued (their inserts will not be replayable by a
// delta).
func (t *THT) SetLogging(on bool) {
	t.logging.Store(on)
	if !on {
		for _, e := range t.DrainLog() {
			e.Release()
		}
	}
}

// DrainLog takes the accumulated insert logs, bucket by bucket in
// index order. Each bucket's log is swapped out under its own lock, so
// an insert racing the drain lands wholly in this result or wholly in
// the next one — the exactly-once partition delta saves rely on.
// Cross-bucket ordering in the result is arbitrary, which replay
// tolerates (buckets are independent). Entries come retained (by
// Insert, on the log's behalf); the caller owns those references and
// must Release each entry when done with it.
func (t *THT) DrainLog() []*Entry {
	var log []*Entry
	for bi := range t.buckets {
		b := &t.buckets[bi]
		b.mu.Lock()
		if len(b.log) > 0 {
			log = append(log, b.log...)
			b.log = nil
		}
		b.mu.Unlock()
	}
	return log
}

// MemoryBytes reports the table's current payload size (Table III's
// numerator).
func (t *THT) MemoryBytes() int64 { return t.memBytes.Load() }

// Entries reports the current number of stored entries.
func (t *THT) Entries() int64 { return t.entries.Load() }

// Counters returns (lookups, hits, evictions).
func (t *THT) Counters() (lookups, hits, evicts int64) {
	return t.lookups.Load(), t.hits.Load(), t.evicts.Load()
}
