package core

import (
	"sync"
	"sync/atomic"

	"atm/internal/region"
)

// Entry is one memoized task execution stored in the Task History Table:
// the 8-byte hash key of the (sampled) inputs, the percentage level the
// key was computed at, and a snapshot of the task's outputs. Entries are
// immutable after insertion, which lets hit paths copy from them without
// holding the bucket lock.
type Entry struct {
	TypeID     int
	Key        uint64
	Level      int8
	ProviderID uint64 // creation id of the task that produced the outputs
	Outs       []region.Region
	// Ins snapshots the provider's inputs; populated only when
	// Config.VerifyInputs is set (the §III-E final-check variant).
	Ins   []region.Region
	bytes int64
}

// THT is the Task History Table of §III-A: 2^N buckets indexed by the low
// N bits of the hash key, each holding up to M entries with FIFO
// replacement. Each bucket is protected by its own RWMutex, supporting
// exclusive writes and parallel reads exactly as the paper describes.
type THT struct {
	mask    uint64
	m       int
	buckets []thtBucket

	memBytes atomic.Int64
	entries  atomic.Int64
	lookups  atomic.Int64
	hits     atomic.Int64
	evicts   atomic.Int64
}

type thtBucket struct {
	mu      sync.RWMutex
	entries []*Entry // FIFO: oldest first
}

// NewTHT builds a THT with 2^nbits buckets of capacity m each. The paper's
// sizing (§IV-B) is nbits = 8, m = 128.
func NewTHT(nbits, m int) *THT {
	if nbits < 0 {
		nbits = 0
	}
	if m <= 0 {
		m = 1
	}
	n := 1 << uint(nbits)
	return &THT{mask: uint64(n - 1), m: m, buckets: make([]thtBucket, n)}
}

// Lookup returns the entry matching (typeID, key, level), or nil.
func (t *THT) Lookup(typeID int, key uint64, level int8) *Entry {
	t.lookups.Add(1)
	b := &t.buckets[key&t.mask]
	b.mu.RLock()
	defer b.mu.RUnlock()
	// Newest entries are most likely to match; scan back to front.
	for i := len(b.entries) - 1; i >= 0; i-- {
		e := b.entries[i]
		if e.Key == key && e.TypeID == typeID && e.Level == level {
			t.hits.Add(1)
			return e
		}
	}
	return nil
}

// Insert adds e, evicting the bucket's oldest entry if it is full.
func (t *THT) Insert(e *Entry) {
	for _, o := range e.Outs {
		e.bytes += int64(o.NumBytes())
	}
	for _, in := range e.Ins {
		e.bytes += int64(in.NumBytes())
	}
	e.bytes += 8 + 8 + 8 // key + provider id + header, the paper's 8-byte key cost
	b := &t.buckets[e.Key&t.mask]
	b.mu.Lock()
	if len(b.entries) >= t.m {
		old := b.entries[0]
		copy(b.entries, b.entries[1:])
		b.entries = b.entries[:len(b.entries)-1]
		t.memBytes.Add(-old.bytes)
		t.entries.Add(-1)
		t.evicts.Add(1)
	}
	b.entries = append(b.entries, e)
	b.mu.Unlock()
	t.memBytes.Add(e.bytes)
	t.entries.Add(1)
}

// MemoryBytes reports the table's current payload size (Table III's
// numerator).
func (t *THT) MemoryBytes() int64 { return t.memBytes.Load() }

// Entries reports the current number of stored entries.
func (t *THT) Entries() int64 { return t.entries.Load() }

// Counters returns (lookups, hits, evictions).
func (t *THT) Counters() (lookups, hits, evicts int64) {
	return t.lookups.Load(), t.hits.Load(), t.evicts.Load()
}
