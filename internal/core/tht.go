package core

import (
	"sync"
	"sync/atomic"

	"atm/internal/region"
)

// Entry is one memoized task execution stored in the Task History Table:
// the 8-byte hash key of the (sampled) inputs, the percentage level the
// key was computed at, and a snapshot of the task's outputs. Entries are
// immutable while reachable, which lets hit paths copy from them without
// holding the bucket lock; a reference count tracks the table's own
// reference plus any in-flight readers, and an entry whose count drains
// to zero is recycled through the table's pool so a steady insert/evict
// stream stops allocating output buffers.
type Entry struct {
	TypeID     int
	Key        uint64
	Level      int8
	ProviderID uint64 // creation id of the task that produced the outputs
	// Epoch is the save epoch the entry was inserted under (see
	// ATM.saveEpoch), a diagnostic stamp: tests assert the epoch
	// partition and tools can tell restored (epoch 0) from live
	// entries. Delta extraction itself selects entries via the insert
	// log below, not by comparing epochs.
	Epoch uint64
	Outs  []region.Region
	// Ins snapshots the provider's inputs; populated only when
	// Config.VerifyInputs is set (the §III-E final-check variant).
	Ins   []region.Region
	bytes int64
	refs  atomic.Int32
	pool  *sync.Pool // set by Insert; nil entries are never recycled
	// tenant is the owning tenant's dense id (see ATM tenant registry);
	// 0 is the default tenant. It scopes the per-tenant byte accounting
	// and budget-share eviction.
	tenant int32
	// touched is the CLOCK reference bit, set on lookup hits when the
	// table's eviction policy is EvictCLOCK (markHits) and cleared when
	// the eviction hand sweeps past, giving recently-hit entries a
	// second chance.
	touched atomic.Bool
}

// retain marks an in-flight reader. Callers must pair it with Release.
func (e *Entry) retain() { e.refs.Add(1) }

// Release drops one reference. Once the table and every reader are done
// with the entry it returns to the insert pool for buffer reuse. Safe on
// a nil entry.
func (e *Entry) Release() {
	if e == nil {
		return
	}
	if e.refs.Add(-1) == 0 && e.pool != nil {
		p := e.pool
		e.pool = nil
		p.Put(e)
	}
}

// THT is the Task History Table of §III-A: 2^N buckets indexed by the low
// N bits of the hash key, each holding up to M entries with FIFO
// replacement. Each bucket is protected by its own RWMutex, supporting
// exclusive writes and parallel reads exactly as the paper describes.
// Buckets are ring buffers, so an insert into a full bucket overwrites
// the oldest slot in O(1) instead of shifting the whole bucket.
type THT struct {
	mask    uint64
	m       int
	buckets []thtBucket
	pool    sync.Pool // recycled *Entry values with dead output buffers

	// Budget/eviction state, immutable after ConfigureBudget (called
	// before the table is published): budget is the global payload cap
	// in bytes (0 = unbounded), policy the eviction policy applied under
	// budget pressure, markHits whether Lookup sets the CLOCK reference
	// bit, sketch the TinyLFU frequency estimator (nil otherwise).
	budget   int64
	policy   EvictPolicy
	markHits bool
	sketch   *freqSketch
	// hand is the eviction scan position (a bucket index, advanced
	// atomically so concurrent evictors spread over the table).
	hand atomic.Uint64
	// tenants is the per-tenant accounting table, grown copy-on-write
	// under tenantMu; the insert/evict paths read it with one atomic
	// load plus an index.
	tenantMu sync.Mutex
	tenants  atomic.Pointer[[]*tenantStat]

	// logging enables the per-bucket operation logs for incremental
	// snapshots (see thtBucket.log); DrainLog hands the accumulated
	// records (and the inserts' references) to the snapshotter.
	logging atomic.Bool

	memBytes     atomic.Int64
	entries      atomic.Int64
	lookups      atomic.Int64
	hits         atomic.Int64
	evicts       atomic.Int64
	budgetEvicts atomic.Int64
	admitRejects atomic.Int64
}

// logRec is one record in a bucket's operation log: an insert (e
// non-nil, retained on the log's behalf) or a tombstone marking an
// eviction (e nil). Tombstones copy the victim's identity instead of
// retaining it, so the log never pins an evicted entry's buffers; the
// identity fields are filled for both kinds.
type logRec struct {
	e        *Entry
	typeID   int
	key      uint64
	level    int8
	provider uint64
}

func tombstoneRec(e *Entry) logRec {
	return logRec{typeID: e.TypeID, key: e.Key, level: e.Level, provider: e.ProviderID}
}

type thtBucket struct {
	mu      sync.RWMutex
	entries []*Entry // ring: oldest at head
	head    int
	n       int
	// log records this bucket's operations — inserts (retained) and
	// eviction tombstones — for the next delta snapshot, appended under
	// mu so it preserves the bucket's operation order. Replaying the log
	// mirrors the bucket's occupancy step by step (every eviction,
	// whether ring replacement or budget pressure, is an explicit
	// tombstone), which is what lets Compact cancel insert/tombstone
	// pairs soundly. Keeping the log per bucket costs no extra
	// synchronization on insert and no cross-bucket contention.
	log []logRec
}

// removeAt removes the entry at ring offset i (0 = oldest), preserving
// the remaining entries' order, and returns it. Caller holds b.mu.
func (b *thtBucket) removeAt(i int) *Entry {
	e := b.entries[(b.head+i)%len(b.entries)]
	if i == 0 {
		b.entries[b.head] = nil
		b.head = (b.head + 1) % len(b.entries)
		b.n--
		return e
	}
	for j := i; j < b.n-1; j++ {
		b.entries[(b.head+j)%len(b.entries)] = b.entries[(b.head+j+1)%len(b.entries)]
	}
	b.n--
	b.entries[(b.head+b.n)%len(b.entries)] = nil
	return e
}

// MaxNBits bounds Config.NBits / NewTHT's nbits: 2^20 buckets already
// hold 128M entries at the paper's M=128 and cost ~100 MB of empty
// bucket headers — anything above is a misconfiguration, and nbits ≥ 31
// would overflow the shift. Config.Validate reports the violation as a
// typed error; NewTHT clamps defensively.
const MaxNBits = 20

// NewTHT builds a THT with 2^nbits buckets of capacity m each. The paper's
// sizing (§IV-B) is nbits = 8, m = 128. nbits is clamped into
// [0, MaxNBits]; use Config.Validate to surface out-of-range values as
// errors instead.
func NewTHT(nbits, m int) *THT {
	if nbits < 0 {
		nbits = 0
	}
	if nbits > MaxNBits {
		nbits = MaxNBits
	}
	if m <= 0 {
		m = 1
	}
	n := 1 << uint(nbits)
	return &THT{mask: uint64(n - 1), m: m, buckets: make([]thtBucket, n)}
}

// ConfigureBudget sets the table's global memory budget (bytes; 0 =
// unbounded) and eviction policy. Must be called before the table
// serves traffic — the fields are read without synchronization on the
// hot paths.
func (t *THT) ConfigureBudget(budget int64, policy EvictPolicy) {
	if budget < 0 {
		budget = 0
	}
	t.budget = budget
	t.policy = policy
	t.markHits = policy == EvictCLOCK
	if policy == EvictTinyLFU {
		t.sketch = newFreqSketch()
	} else {
		t.sketch = nil
	}
}

// Budget reports the configured global budget and eviction policy.
func (t *THT) Budget() (bytes int64, policy EvictPolicy) { return t.budget, t.policy }

// Lookup returns the entry matching (typeID, key, level), or nil. A
// non-nil result is retained for the caller, who must Release it after
// copying from it (the table cannot recycle it before that).
func (t *THT) Lookup(typeID int, key uint64, level int8) *Entry {
	t.lookups.Add(1)
	if t.sketch != nil {
		// TinyLFU: every access feeds the frequency sketch (lock-free
		// nibble CAS), so the admission duel sees demand, not residency.
		t.sketch.inc(key)
	}
	b := &t.buckets[key&t.mask]
	b.mu.RLock()
	// Newest entries are most likely to match; scan back to front.
	for i := b.n - 1; i >= 0; i-- {
		e := b.entries[(b.head+i)%len(b.entries)]
		if e.Key == key && e.TypeID == typeID && e.Level == level {
			e.retain()
			if t.markHits {
				e.touched.Store(true) // CLOCK reference bit
			}
			b.mu.RUnlock()
			t.hits.Add(1)
			return e
		}
	}
	b.mu.RUnlock()
	return nil
}

// GetEntry returns a recycled entry (with its previous output buffers
// still attached, for CopyFrom reuse when the shapes match) or a fresh
// one.
func (t *THT) GetEntry() *Entry {
	if e, ok := t.pool.Get().(*Entry); ok && e != nil {
		return e
	}
	return &Entry{}
}

// Insert adds e, evicting the bucket's oldest entry if it is full. The
// entry's memory size is computed idempotently, so re-inserting an entry
// (or inserting a recycled one) never double-counts. When the insert
// log is enabled the entry is recorded for the next delta snapshot.
func (t *THT) Insert(e *Entry) { t.insert(e, true) }

// InsertRestored is Insert for entries installed from a persisted
// snapshot: they are already saved, so they bypass the insert log (a
// delta must carry only state the previous save did not).
func (t *THT) InsertRestored(e *Entry) { t.insert(e, false) }

func (t *THT) insert(e *Entry, logIt bool) {
	var size int64
	for _, o := range e.Outs {
		size += int64(o.NumBytes())
	}
	for _, in := range e.Ins {
		size += int64(in.NumBytes())
	}
	size += 8 + 8 + 8 // key + provider id + header, the paper's 8-byte key cost
	e.bytes = size
	e.pool = &t.pool // set before publication: readers may Release anytime
	e.touched.Store(false)
	e.retain() // the table's reference
	if !t.admit(e, size) {
		// Over budget and not worth a resident's slot (or larger than the
		// budget outright): recycle without publishing.
		t.admitRejects.Add(1)
		e.Release()
		return
	}
	var old *Entry
	b := &t.buckets[e.Key&t.mask]
	b.mu.Lock()
	if b.entries == nil {
		c := 8
		if c > t.m {
			c = t.m
		}
		b.entries = make([]*Entry, c)
	}
	if b.n == t.m {
		old = b.entries[b.head]
		b.entries[b.head] = e
		b.head = (b.head + 1) % len(b.entries)
	} else {
		if b.n == len(b.entries) {
			grown := make([]*Entry, min(2*b.n, t.m))
			for i := 0; i < b.n; i++ {
				grown[i] = b.entries[(b.head+i)%len(b.entries)]
			}
			b.entries = grown
			b.head = 0
		}
		b.entries[(b.head+b.n)%len(b.entries)] = e
		b.n++
	}
	// Still under b.mu: concurrent operations on this bucket reach the
	// log in ring order, so a replay of the log rebuilds identical
	// per-bucket FIFO state. A ring replacement logs the victim's
	// tombstone ahead of the insert — replay then mirrors the ring's
	// occupancy step by step instead of relying on implicit drops, which
	// is what makes Compact's insert/tombstone cancellation sound.
	if logging := t.logging.Load(); logging {
		if old != nil {
			b.log = append(b.log, tombstoneRec(old))
		}
		if logIt {
			e.retain() // the log's reference; dropped by the drain consumer
			b.log = append(b.log, logRec{e: e, typeID: e.TypeID, key: e.Key, level: e.Level, provider: e.ProviderID})
		}
	}
	b.mu.Unlock()
	// Apply the accounting as one net delta per counter: adding the new
	// entry's bytes before subtracting the victim's would let a
	// concurrent MemoryBytes reader (the budget evictor above included)
	// observe a transient overshoot at the boundary.
	delta, dn := size, int64(1)
	if old != nil {
		delta -= old.bytes
		dn--
		t.evicts.Add(1)
	}
	if delta != 0 {
		t.memBytes.Add(delta)
	}
	if dn != 0 {
		t.entries.Add(dn)
	}
	if old != nil && old.tenant == e.tenant {
		if st := t.tenantStat(e.tenant); st != nil {
			st.bytes.Add(delta)
			st.evicts.Add(1)
		}
	} else {
		if st := t.tenantStat(e.tenant); st != nil {
			st.bytes.Add(size)
			st.entries.Add(1)
		}
		if old != nil {
			if st := t.tenantStat(old.tenant); st != nil {
				st.bytes.Add(-old.bytes)
				st.entries.Add(-1)
				st.evicts.Add(1)
			}
		}
	}
	if old != nil {
		old.Release() // drop the table's reference; readers may linger
	}
}

// Remove deletes the oldest entry matching (typeID, key, level,
// provider), preserving the remaining ring order, and reports whether
// one was found. It is the replay side of an eviction tombstone
// (installSection), so it neither logs nor counts as an eviction — the
// removal it replays was already persisted.
func (t *THT) Remove(typeID int, key uint64, level int8, provider uint64) bool {
	b := &t.buckets[key&t.mask]
	b.mu.Lock()
	for i := 0; i < b.n; i++ {
		e := b.entries[(b.head+i)%len(b.entries)]
		if e.Key == key && e.TypeID == typeID && e.Level == level && e.ProviderID == provider {
			b.removeAt(i)
			b.mu.Unlock()
			t.memBytes.Add(-e.bytes)
			t.entries.Add(-1)
			if st := t.tenantStat(e.tenant); st != nil {
				st.bytes.Add(-e.bytes)
				st.entries.Add(-1)
			}
			e.Release()
			return true
		}
	}
	b.mu.Unlock()
	return false
}

// forEach calls fn for every live entry, bucket by bucket in index
// order and oldest-first within a bucket — a deterministic order, so
// repeated snapshots of an idle table are byte-identical. Entries are
// retained across the callback (fn may safely read their buffers while
// concurrent inserts evict) and released afterwards; fn must not retain
// references past its return.
func (t *THT) forEach(fn func(e *Entry)) {
	var batch []*Entry
	for bi := range t.buckets {
		b := &t.buckets[bi]
		b.mu.RLock()
		batch = batch[:0]
		for i := 0; i < b.n; i++ {
			e := b.entries[(b.head+i)%len(b.entries)]
			e.retain()
			batch = append(batch, e)
		}
		b.mu.RUnlock()
		for _, e := range batch {
			fn(e)
			e.Release()
		}
	}
}

// SetLogging turns the operation log on or off. Disabling releases any
// insert records still queued (their operations will not be replayable
// by a delta).
func (t *THT) SetLogging(on bool) {
	t.logging.Store(on)
	if !on {
		for _, r := range t.DrainLog() {
			r.e.Release() // nil-safe: tombstones hold no reference
		}
	}
}

// DrainLog takes the accumulated operation logs, bucket by bucket in
// index order. Each bucket's log is swapped out under its own lock, so
// an operation racing the drain lands wholly in this result or wholly
// in the next one — the exactly-once partition delta saves rely on.
// Cross-bucket ordering in the result is arbitrary, which replay
// tolerates (buckets are independent); per-bucket order is preserved,
// which tombstone replay requires. Insert records come retained (by
// Insert, on the log's behalf); the caller owns those references and
// must Release each record's entry when done with it (tombstone
// records hold none — Release is nil-safe).
func (t *THT) DrainLog() []logRec {
	var log []logRec
	for bi := range t.buckets {
		b := &t.buckets[bi]
		b.mu.Lock()
		if len(b.log) > 0 {
			log = append(log, b.log...)
			b.log = nil
		}
		b.mu.Unlock()
	}
	return log
}

// MemoryBytes reports the table's current payload size (Table III's
// numerator).
func (t *THT) MemoryBytes() int64 { return t.memBytes.Load() }

// Entries reports the current number of stored entries.
func (t *THT) Entries() int64 { return t.entries.Load() }

// Counters returns (lookups, hits, evictions). Evictions count every
// entry displaced from the table — ring replacements and budget
// evictions alike.
func (t *THT) Counters() (lookups, hits, evicts int64) {
	return t.lookups.Load(), t.hits.Load(), t.evicts.Load()
}

// BudgetCounters returns the budget-pressure counters: evictions
// forced by the global or per-tenant budget (a subset of Counters'
// evictions) and inserts rejected at admission (TinyLFU duels lost, or
// entries larger than the budget).
func (t *THT) BudgetCounters() (budgetEvicts, admitRejects int64) {
	return t.budgetEvicts.Load(), t.admitRejects.Load()
}
