package core

import (
	"sync"
	"testing"
	"testing/quick"

	"atm/internal/region"
)

func entryWith(typeID int, key uint64, level int8, vals ...float64) *Entry {
	return &Entry{
		TypeID: typeID, Key: key, Level: level,
		Outs: []region.Region{&region.Float64{Data: vals}},
	}
}

func TestTHTInsertLookup(t *testing.T) {
	tht := NewTHT(4, 8)
	tht.Insert(entryWith(1, 0xabc, 15, 1, 2, 3))
	e := tht.Lookup(1, 0xabc, 15)
	if e == nil || e.Outs[0].Float64At(0) != 1 {
		t.Fatal("lookup after insert failed")
	}
	if tht.Lookup(2, 0xabc, 15) != nil {
		t.Fatal("type id must participate in matching")
	}
	if tht.Lookup(1, 0xabd, 15) != nil {
		t.Fatal("different keys must miss")
	}
	if tht.Lookup(1, 0xabc, 14) != nil {
		t.Fatal("the p level is stored with the key and must match (§III-D)")
	}
}

func TestTHTFIFOEviction(t *testing.T) {
	// One bucket (nbits=0), capacity 3: inserting 4 entries evicts the
	// oldest.
	tht := NewTHT(0, 3)
	for i := 0; i < 4; i++ {
		tht.Insert(entryWith(0, uint64(i), 15, float64(i)))
	}
	if tht.Lookup(0, 0, 15) != nil {
		t.Fatal("oldest entry must be evicted first (FIFO)")
	}
	for i := 1; i < 4; i++ {
		if tht.Lookup(0, uint64(i), 15) == nil {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
	if tht.Entries() != 3 {
		t.Fatalf("entries=%d", tht.Entries())
	}
	_, _, ev := tht.Counters()
	if ev != 1 {
		t.Fatalf("evictions=%d", ev)
	}
}

func TestTHTMemoryAccounting(t *testing.T) {
	tht := NewTHT(0, 2)
	tht.Insert(entryWith(0, 1, 15, 1, 2, 3, 4)) // 32 payload + 24 header
	if got := tht.MemoryBytes(); got != 56 {
		t.Fatalf("bytes=%d want 56", got)
	}
	tht.Insert(entryWith(0, 2, 15, 1))
	tht.Insert(entryWith(0, 3, 15, 1))
	// First entry evicted: memory must drop by its 56 bytes.
	if got := tht.MemoryBytes(); got != 2*(8+24) {
		t.Fatalf("bytes=%d want %d", got, 2*(8+24))
	}
}

func TestTHTBucketSelection(t *testing.T) {
	// Keys differing only above the low N bits share a bucket and can
	// both live there; keys in different buckets never interfere.
	tht := NewTHT(2, 1) // 4 buckets, 1 entry each
	tht.Insert(entryWith(0, 0b0100, 15, 1))
	tht.Insert(entryWith(0, 0b1000, 15, 2)) // same bucket 0 -> evicts
	if tht.Lookup(0, 0b0100, 15) != nil {
		t.Fatal("bucket-capacity eviction did not happen")
	}
	tht.Insert(entryWith(0, 0b0101, 15, 3)) // bucket 1
	if tht.Lookup(0, 0b1000, 15) == nil || tht.Lookup(0, 0b0101, 15) == nil {
		t.Fatal("entries in distinct buckets must coexist")
	}
}

func TestTHTHitCounters(t *testing.T) {
	tht := NewTHT(2, 2)
	tht.Insert(entryWith(0, 9, 15, 1))
	tht.Lookup(0, 9, 15)
	tht.Lookup(0, 10, 15)
	lookups, hits, _ := tht.Counters()
	if lookups != 2 || hits != 1 {
		t.Fatalf("lookups=%d hits=%d", lookups, hits)
	}
}

func TestTHTNewestFirstLookup(t *testing.T) {
	// Two entries with the same (type, key, level): the lookup must
	// return the most recently inserted one.
	tht := NewTHT(0, 4)
	tht.Insert(entryWith(0, 7, 15, 1))
	tht.Insert(entryWith(0, 7, 15, 2))
	if got := tht.Lookup(0, 7, 15).Outs[0].Float64At(0); got != 2 {
		t.Fatalf("got %v want newest entry", got)
	}
}

func TestTHTQuickInvariant(t *testing.T) {
	// Property: after any sequence of inserts, (a) no bucket exceeds M,
	// (b) every lookup that hits returns an entry with a matching
	// (type, key, level), and (c) memory equals the sum of live entries.
	f := func(keys []uint16, m uint8) bool {
		cap := int(m%8) + 1
		tht := NewTHT(2, cap)
		for _, k := range keys {
			tht.Insert(entryWith(int(k%3), uint64(k), int8(k%16), float64(k)))
		}
		if int(tht.Entries()) > 4*cap {
			return false
		}
		for _, k := range keys {
			if e := tht.Lookup(int(k%3), uint64(k), int8(k%16)); e != nil {
				if e.Key != uint64(k) || e.TypeID != int(k%3) || e.Level != int8(k%16) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTHTConcurrentAccess(t *testing.T) {
	tht := NewTHT(4, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := uint64(g*1000 + i)
				tht.Insert(entryWith(0, key, 15, float64(i)))
				if e := tht.Lookup(0, key, 15); e != nil && e.Key != key {
					t.Errorf("corrupt entry")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
