package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// tenantEntry is entryWith for a non-default tenant.
func tenantEntry(tenant int32, typeID int, key uint64, level int8, vals ...float64) *Entry {
	e := entryWith(typeID, key, level, vals...)
	e.tenant = tenant
	return e
}

// entrySize is the byte cost of a 4-value entryWith: 32 bytes of
// payload plus the 24-byte key/provider/header cost the accounting
// charges (pinned by TestTHTMemoryAccounting).
const entrySize = 4*8 + 24

func TestTHTBudgetBoundedSingleThreaded(t *testing.T) {
	// A sustained over-budget insert stream must hold MemoryBytes at or
	// under the budget at every step: admit evicts before publishing,
	// never after.
	const budget = 10 * entrySize
	tht := NewTHT(2, 8)
	tht.ConfigureBudget(budget, EvictFIFO)
	for i := 0; i < 200; i++ {
		tht.Insert(entryWith(0, uint64(i), 15, 1, 2, 3, 4))
		if got := tht.MemoryBytes(); got > budget {
			t.Fatalf("insert %d: MemoryBytes %d > budget %d", i, got, budget)
		}
	}
	if tht.Entries() != 10 {
		t.Fatalf("entries=%d want the budget's worth (10)", tht.Entries())
	}
	evicts, rejects := tht.BudgetCounters()
	if evicts != 190 || rejects != 0 {
		t.Fatalf("budget evictions=%d rejects=%d want 190, 0", evicts, rejects)
	}
}

func TestTHTBudgetBoundedConcurrent(t *testing.T) {
	// Concurrent inserters may each hold one admitted-but-unpublished
	// entry, so the hard ceiling is budget + workers×entrySize. The
	// accounting applies ring replacements as one net delta per counter;
	// the old add-then-subtract order let a sampler observe a transient
	// extra entry per in-flight insert, which this bound has no room for.
	const (
		budget    = 20 * entrySize
		workers   = 8
		perWorker = 2000
		ceiling   = budget + workers*entrySize
	)
	tht := NewTHT(4, 4)
	tht.ConfigureBudget(budget, EvictFIFO)

	var (
		wg      sync.WaitGroup
		maxSeen atomic.Int64
		stop    = make(chan struct{})
		sampled sync.WaitGroup
	)
	sampled.Add(1)
	go func() {
		defer sampled.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m := tht.MemoryBytes(); m > maxSeen.Load() {
				maxSeen.Store(m)
			}
		}
	}()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tht.Insert(entryWith(0, uint64(g*1_000_000+i), 15, 1, 2, 3, 4))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sampled.Wait()

	if m := maxSeen.Load(); m > ceiling {
		t.Fatalf("sampled MemoryBytes peaked at %d, ceiling %d (budget %d + %d inserters)",
			m, ceiling, budget, workers)
	}
	if m := tht.MemoryBytes(); m > budget {
		t.Fatalf("quiesced MemoryBytes %d > budget %d", m, budget)
	}
}

func TestTHTCLOCKSecondChance(t *testing.T) {
	// CLOCK: a lookup hit sets the reference bit, so the hit entry
	// survives the next eviction sweep and the oldest untouched entry
	// goes instead.
	tht := NewTHT(0, 8)
	tht.ConfigureBudget(4*entrySize, EvictCLOCK)
	for i := 0; i < 4; i++ {
		tht.Insert(entryWith(0, uint64(i), 15, 1, 2, 3, 4))
	}
	e := tht.Lookup(0, 0, 15) // oldest entry, but recently hit
	if e == nil {
		t.Fatal("warm lookup missed")
	}
	e.Release()
	tht.Insert(entryWith(0, 99, 15, 1, 2, 3, 4))
	if tht.Lookup(0, 0, 15) == nil {
		t.Fatal("hit entry must survive the sweep (second chance)")
	}
	if tht.Lookup(0, 1, 15) != nil {
		t.Fatal("oldest untouched entry must be the victim")
	}
}

func TestTHTTinyLFUAdmissionDuel(t *testing.T) {
	tht := NewTHT(0, 8)
	tht.ConfigureBudget(2*entrySize, EvictTinyLFU)
	tht.Insert(entryWith(0, 1, 15, 1, 2, 3, 4))
	tht.Insert(entryWith(0, 2, 15, 1, 2, 3, 4))
	// Residents are hot: every lookup feeds the frequency sketch.
	for i := 0; i < 8; i++ {
		tht.Lookup(0, 1, 15).Release()
		tht.Lookup(0, 2, 15).Release()
	}
	// A cold newcomer loses the admission duel against the hotter
	// would-be victim and is rejected without displacing anything.
	tht.Insert(entryWith(0, 99, 15, 1, 2, 3, 4))
	if tht.Lookup(0, 99, 15) != nil {
		t.Fatal("cold newcomer must lose the admission duel")
	}
	if tht.Lookup(0, 1, 15) == nil || tht.Lookup(0, 2, 15) == nil {
		t.Fatal("residents must survive a rejected insert")
	}
	if _, rejects := tht.BudgetCounters(); rejects != 1 {
		_, r := tht.BudgetCounters()
		t.Fatalf("admission rejects=%d want 1", r)
	}

	// The reverse: demand observed through lookups (even misses) warms
	// the newcomer, which then wins the duel against a cold resident.
	tht2 := NewTHT(0, 8)
	tht2.ConfigureBudget(2*entrySize, EvictTinyLFU)
	tht2.Insert(entryWith(0, 1, 15, 1, 2, 3, 4))
	tht2.Insert(entryWith(0, 2, 15, 1, 2, 3, 4))
	for i := 0; i < 8; i++ {
		tht2.Lookup(0, 99, 15) // misses, but register demand
	}
	tht2.Insert(entryWith(0, 99, 15, 1, 2, 3, 4))
	if tht2.Lookup(0, 99, 15) == nil {
		t.Fatal("warm newcomer must win the admission duel")
	}
	if tht2.Lookup(0, 1, 15) != nil {
		t.Fatal("cold oldest resident must be the victim")
	}
}

func TestTHTTenantBudgetShares(t *testing.T) {
	// A tenant with a budget share is evicted down to its own slice
	// before it can pressure anyone else; other tenants are untouched.
	tht := NewTHT(2, 8)
	tht.ConfigureBudget(100*entrySize, EvictFIFO)
	tht.EnsureTenant(0, "", 0)
	tht.EnsureTenant(1, "acme", 3*entrySize)
	for i := 0; i < 5; i++ {
		tht.Insert(tenantEntry(0, 0, uint64(1000+i), 15, 1, 2, 3, 4))
	}
	for i := 0; i < 10; i++ {
		tht.Insert(tenantEntry(1, 0, uint64(i), 15, 1, 2, 3, 4))
	}
	stats := tht.TenantStats()
	if len(stats) != 2 {
		t.Fatalf("tenant rows=%d want 2", len(stats))
	}
	def, acme := stats[0], stats[1]
	if def.Name != "" || acme.Name != "acme" {
		t.Fatalf("tenant names %q, %q", def.Name, acme.Name)
	}
	if acme.Bytes > acme.BudgetBytes || acme.Entries != 3 {
		t.Fatalf("acme bytes=%d entries=%d over its %d-byte share", acme.Bytes, acme.Entries, acme.BudgetBytes)
	}
	if acme.Evictions != 7 {
		t.Fatalf("acme evictions=%d want 7", acme.Evictions)
	}
	if def.Bytes != 5*entrySize || def.Entries != 5 || def.Evictions != 0 {
		t.Fatalf("default tenant disturbed: %+v", def)
	}
}

func TestTHTBudgetEvictionLogsTombstone(t *testing.T) {
	// Budget evictions must be visible to the delta machinery: each one
	// appends a tombstone record (e == nil, victim identity copied) to
	// its bucket's log, in operation order.
	tht := NewTHT(0, 8)
	tht.ConfigureBudget(2*entrySize, EvictFIFO)
	tht.SetLogging(true)
	for i := 1; i <= 3; i++ {
		tht.Insert(entryWith(0, uint64(i), 15, 1, 2, 3, 4))
	}
	log := tht.DrainLog()
	var kinds []string
	var tombKey uint64
	for _, r := range log {
		if r.e == nil {
			kinds = append(kinds, "tombstone")
			tombKey = r.key
		} else {
			kinds = append(kinds, "insert")
			r.e.Release()
		}
	}
	want := []string{"insert", "insert", "tombstone", "insert"}
	if len(kinds) != len(want) {
		t.Fatalf("log records %v want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("log records %v want %v", kinds, want)
		}
	}
	if tombKey != 1 {
		t.Fatalf("tombstone names key %d, want the FIFO victim 1", tombKey)
	}
}

func TestConfigValidateEdges(t *testing.T) {
	bad := []Config{
		{NBits: -1},
		{NBits: MaxNBits + 1},
		{NBits: 31}, // would overflow the bucket-count shift if clamping ever regressed
		{NBits: 40},
		{M: -1},
		{Mode: ModeFixed + 1},
		{THTBudgetBytes: -1},
		{THTEviction: 99},
		{THTBudgetBytes: 1 << 20, TenantShares: map[string]float64{"a": 1.5}},
		{THTBudgetBytes: 1 << 20, TenantShares: map[string]float64{"a": -0.1}},
		{THTBudgetBytes: 1 << 20, TenantShares: map[string]float64{"a": 0.6, "b": 0.6}},
		{TenantShares: map[string]float64{"a": 0.5}}, // shares without a budget
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("bad config %d (%+v): err=%v, want ErrConfig", i, c, err)
		}
	}
	good := []Config{
		{},
		{NBits: MaxNBits},
		{Mode: ModeFixed, FixedLevel: 7},
		{THTBudgetBytes: 1 << 20, THTEviction: EvictTinyLFU, TenantShares: map[string]float64{"a": 0.5, "b": 0.5}},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d (%+v): unexpected %v", i, c, err)
		}
	}
}

func TestNewTHTClampsNBits(t *testing.T) {
	if tht := NewTHT(40, 4); tht.mask != 1<<MaxNBits-1 {
		t.Fatalf("nbits above MaxNBits must clamp: mask=%#x", tht.mask)
	}
	if tht := NewTHT(-3, 4); tht.mask != 0 {
		t.Fatalf("negative nbits must clamp to one bucket: mask=%#x", tht.mask)
	}
	tht := NewTHT(0, 0) // m clamps to 1
	tht.Insert(entryWith(0, 1, 15, 1))
	tht.Insert(entryWith(0, 2, 15, 2))
	if tht.Entries() != 1 {
		t.Fatalf("entries=%d want 1 (m clamped)", tht.Entries())
	}
}

func TestLogDrainRaceLeaksNoReferences(t *testing.T) {
	// SetLogging(false) and DrainLog race a stream of concurrent
	// Inserts (run under -race): whichever side wins each record, every
	// logged insert reference is released exactly once. After quiescing
	// and a final drain, the only reference left on any live entry is
	// the table's own.
	tht := NewTHT(4, 8)
	tht.SetLogging(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tht.Insert(entryWith(0, uint64(g*1_000_000+i), 15, float64(i)))
			}
		}(g)
	}
	for r := 0; r < 300; r++ {
		if r%3 == 2 {
			tht.SetLogging(false) // releases whatever it drains
			tht.SetLogging(true)
		} else {
			for _, rec := range tht.DrainLog() {
				rec.e.Release() // nil-safe: tombstones hold no reference
			}
		}
	}
	close(stop)
	wg.Wait()
	tht.SetLogging(false) // final drain catches records logged after the last toggle

	for bi := range tht.buckets {
		b := &tht.buckets[bi]
		for i := 0; i < b.n; i++ {
			e := b.entries[(b.head+i)%len(b.entries)]
			if refs := e.refs.Load(); refs != 1 {
				t.Fatalf("bucket %d entry %d (key %#x): refs=%d want 1 — a drained log reference leaked",
					bi, i, e.Key, refs)
			}
		}
	}
}
