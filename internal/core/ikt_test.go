package core

import (
	"testing"

	"atm/internal/region"
	"atm/internal/taskrt"
)

// mkTask builds a detached task-like value through a throwaway runtime so
// the IKT can inspect its outputs.
func mkTask(t *testing.T, outElems int) *taskrt.Task {
	t.Helper()
	rt := taskrt.New(taskrt.Config{Workers: 1})
	defer rt.Close()
	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "x", Run: func(task *taskrt.Task) { captured = task }})
	rt.Submit(tt, taskrt.Out(region.NewFloat64(outElems)))
	rt.Wait()
	return captured
}

func TestIKTAcquireRelease(t *testing.T) {
	k := NewIKT(4)
	key := iktKey{typeID: 1, key: 42, level: 15}
	p := mkTask(t, 3)

	inserted, deferred := k.Acquire(key, p)
	if !inserted || deferred {
		t.Fatalf("first acquire must insert: %v %v", inserted, deferred)
	}

	w1, w2 := mkTask(t, 3), mkTask(t, 3)
	if ins, def := k.Acquire(key, w1); ins || !def {
		t.Fatal("second acquire must defer")
	}
	if ins, def := k.Acquire(key, w2); ins || !def {
		t.Fatal("multiple waiters must be accepted (the paper allows many A-like tasks per in-flight B)")
	}

	ws := k.Release(key, p)
	if len(ws) != 2 {
		t.Fatalf("waiters=%d", len(ws))
	}
	// Key is gone: a new acquire inserts again.
	if ins, _ := k.Acquire(key, p); !ins {
		t.Fatal("released key must be reusable")
	}
}

func TestIKTShapeMismatchExecutes(t *testing.T) {
	k := NewIKT(4)
	key := iktKey{typeID: 1, key: 7, level: 15}
	p := mkTask(t, 3)
	other := mkTask(t, 5) // different output shape
	k.Acquire(key, p)
	if ins, def := k.Acquire(key, other); ins || def {
		t.Fatal("shape-mismatched task must just execute")
	}
}

func TestIKTCapacityBound(t *testing.T) {
	// The table stores at most as many keys as threads (§III-A).
	k := NewIKT(2)
	a, b, c := mkTask(t, 1), mkTask(t, 1), mkTask(t, 1)
	k.Acquire(iktKey{key: 1}, a)
	k.Acquire(iktKey{key: 2}, b)
	if ins, def := k.Acquire(iktKey{key: 3}, c); ins || def {
		t.Fatal("full table must reject new providers")
	}
	_, _, rejected := k.Counters()
	if rejected != 1 {
		t.Fatalf("rejected=%d", rejected)
	}
}

func TestIKTReleaseWrongProvider(t *testing.T) {
	k := NewIKT(2)
	key := iktKey{key: 5}
	p, q := mkTask(t, 1), mkTask(t, 1)
	k.Acquire(key, p)
	if ws := k.Release(key, q); ws != nil {
		t.Fatal("a non-provider must not release the key")
	}
	if ws := k.Release(iktKey{key: 99}, p); ws != nil {
		t.Fatal("releasing an absent key must be a no-op")
	}
	if ws := k.Release(key, p); ws != nil || len(ws) != 0 {
		t.Fatal("provider release with no waiters returns empty")
	}
}

func TestIKTCounters(t *testing.T) {
	k := NewIKT(4)
	p, w := mkTask(t, 1), mkTask(t, 1)
	key := iktKey{key: 9}
	k.Acquire(key, p)
	k.Acquire(key, w)
	ins, def, rej := k.Counters()
	if ins != 1 || def != 1 || rej != 0 {
		t.Fatalf("counters=%d %d %d", ins, def, rej)
	}
}
