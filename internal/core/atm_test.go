package core

import (
	"math"
	"runtime"
	"testing"
	"time"

	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// doubler is a simple deterministic task body: out[i] = 2*in[i].
func doubler(t *taskrt.Task) {
	in, out := t.Float64s(0), t.Float64s(1)
	for i := range in {
		out[i] = 2 * in[i]
	}
}

func TestStaticATMBitExactReuse(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	in := region.NewFloat64(64)
	for i := range in.Data {
		in.Data[i] = float64(i) * 1.5
	}
	outs := make([]*region.Float64, 10)
	for i := range outs {
		outs[i] = region.NewFloat64(64)
		rt.Submit(tt, taskrt.In(in), taskrt.Out(outs[i]))
	}
	rt.Wait()

	for i, o := range outs {
		for j := range o.Data {
			if o.Data[j] != 2*in.Data[j] {
				t.Fatalf("task %d elem %d: %v", i, j, o.Data[j])
			}
		}
	}
	st := memo.Stats()
	ts := st.Types[0]
	if ts.MemoizedTHT+ts.MemoizedIKT == 0 {
		t.Fatal("identical tasks must be memoized")
	}
	if ts.Executed+ts.MemoizedTHT+ts.MemoizedIKT != 10 {
		t.Fatalf("task accounting: %+v", ts)
	}
}

func TestStaticATMDistinguishesDifferentInputs(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	for v := 0; v < 20; v++ {
		in := region.NewFloat64(8)
		for i := range in.Data {
			in.Data[i] = float64(v*100 + i)
		}
		out := region.NewFloat64(8)
		rt.Submit(tt, taskrt.In(in), taskrt.Out(out))
	}
	rt.Wait()
	ts := memo.Stats().Types[0]
	if ts.MemoizedTHT != 0 || ts.Executed != 20 {
		t.Fatalf("distinct inputs must all execute: %+v", ts)
	}
}

// msbTwin returns two 8-element float64 regions whose values share every
// byte except the lowest mantissa byte: indistinguishable to the
// type-aware sampler until p selects low-significance bytes.
func msbTwin() (*region.Float64, *region.Float64) {
	a := region.NewFloat64(8)
	b := region.NewFloat64(8)
	for i := range a.Data {
		v := 1.5 + float64(i)
		a.Data[i] = v
		b.Data[i] = math.Float64frombits(math.Float64bits(v) ^ 1)
	}
	return a, b
}

func TestFixedLowPApproximatesNearDuplicates(t *testing.T) {
	memo := New(Config{Mode: ModeFixed, FixedLevel: 0})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	a, b := msbTwin()
	outA, outB := region.NewFloat64(8), region.NewFloat64(8)
	rt.Submit(tt, taskrt.In(a), taskrt.Out(outA))
	rt.Submit(tt, taskrt.In(b), taskrt.Out(outB))
	rt.Wait()

	ts := memo.Stats().Types[0]
	if ts.MemoizedTHT != 1 {
		t.Fatalf("near-duplicate must hit at p=2^-15: %+v", ts)
	}
	// The memoized task's outputs are the provider's, bit for bit.
	if !outB.EqualContents(outA) {
		t.Fatal("approximate hit must copy the stored outputs")
	}
}

func TestFixedFullPSeparatesNearDuplicates(t *testing.T) {
	memo := New(Config{Mode: ModeFixed, FixedLevel: sampling.MaxPLevel})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	a, b := msbTwin()
	outA, outB := region.NewFloat64(8), region.NewFloat64(8)
	rt.Submit(tt, taskrt.In(a), taskrt.Out(outA))
	rt.Submit(tt, taskrt.In(b), taskrt.Out(outB))
	rt.Wait()
	if memo.Stats().Types[0].MemoizedTHT != 0 {
		t.Fatal("p=100% must distinguish the twins")
	}
	if outB.EqualContents(outA) {
		t.Fatal("outputs must differ at full precision")
	}
}

// amplify makes low-mantissa input differences huge in the output, so a
// low-p approximation of msbTwin inputs violates any τmax.
func amplify(t *taskrt.Task) {
	in, out := t.Float64s(0), t.Float64s(1)
	for i := range in {
		out[i] = (in[i] - 1.5 - float64(i)) * 1e12
	}
}

func TestDynamicTrainingBumpsLevelOnFailure(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "amp", Memoize: true, TauMax: 0.01, LTraining: 1000, Run: amplify})

	a, b := msbTwin()
	// Distinct output regions per task so the failure is "fresh" each
	// time and keeps doubling p rather than excluding a repeat-offender
	// region.
	for i := 0; i < 6; i++ {
		in := a
		if i%2 == 1 {
			in = b
		}
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(8)))
	}
	rt.Wait()

	level, steady := memo.ChosenLevel(tt)
	if steady {
		t.Fatal("must still be training (Ltraining=1000)")
	}
	if level == 0 {
		t.Fatal("τ failures must double p")
	}
	ts := memo.Stats().Types[0]
	if ts.TrainingFailures == 0 || ts.Executed != 6 {
		t.Fatalf("training must execute and grade: %+v", ts)
	}
}

func TestDynamicTrainingExcludesRepeatOffenderOutputs(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	// A hidden-state body whose outputs always land in [1000, 1700): the
	// MSB byte of every input and output element is constant, so the
	// low-p training key collides on every task no matter which MSB the
	// shuffle plan samples (the test must not encode one particular
	// shuffle), while consecutive outputs differ by ≥ 100 — far beyond
	// τmax — so every graded hit is a failure on the same output region.
	calls := 0
	chaotic := rt.RegisterType(taskrt.TypeConfig{
		Name: "chaotic", Memoize: true, TauMax: 0.01, LTraining: 1000,
		Run: func(task *taskrt.Task) {
			calls++
			out := task.Float64s(1)
			for i := range out {
				out[i] = 1000 + 100*float64(calls%7)
			}
		},
	})

	a, _ := msbTwin()
	out := region.NewFloat64(8) // same "chaotic" output region every time
	for i := 0; i < 12; i++ {
		rt.Submit(chaotic, taskrt.In(a), taskrt.InOut(out))
	}
	rt.Wait()

	ts := memo.Stats().Types[0]
	if ts.ExcludedRegions == 0 {
		t.Fatalf("a repeatedly failing output region must join the exclusion set: %+v", ts)
	}
	// Exclusion caps the escalation: every failure before the exclusion
	// threshold doubles p, and afterwards the region's tasks bypass ATM
	// instead of pushing p toward 100%.
	if ts.Level > 3 {
		t.Fatalf("excluded region must stop doubling p: level=%d", ts.Level)
	}
	if ts.ExcludedSkips == 0 {
		t.Fatalf("post-exclusion tasks must bypass ATM: %+v", ts)
	}
}

func TestDynamicReachesSteadyAndMemoizes(t *testing.T) {
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, TauMax: 0.01, LTraining: 3, Run: doubler})

	in := region.NewFloat64(16)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	for i := 0; i < 10; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	}
	rt.Wait()

	ts := memo.Stats().Types[0]
	if !ts.Steady {
		t.Fatalf("identical tasks must finish training quickly: %+v", ts)
	}
	if ts.MemoizedTHT == 0 {
		t.Fatal("steady state must memoize")
	}
	// Training tasks all executed: 1 miss + 3 graded hits; the remaining
	// 6 are steady-state hits.
	if ts.Executed != 4 || ts.MemoizedTHT != 6 {
		t.Fatalf("phase accounting: %+v", ts)
	}
}

func TestIKTDefersInFlightDuplicates(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	defer rt.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	first := true
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "slow", Memoize: true, Run: func(task *taskrt.Task) {
		if first {
			first = false
			close(started)
			<-release
		}
		out := task.Float64s(1)
		out[0] = task.Float64s(0)[0] * 3
	}})

	in := region.NewFloat64(1)
	in.Data[0] = 14
	outA, outB := region.NewFloat64(1), region.NewFloat64(1)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(outA))
	<-started // provider is in flight, IKT entry registered
	rt.Submit(tt, taskrt.In(in), taskrt.Out(outB))
	// Wait until the waiter is parked in the IKT.
	for {
		_, defers, _ := memo.IKT().Counters()
		if defers == 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	rt.Wait()

	if outA.Data[0] != 42 || outB.Data[0] != 42 {
		t.Fatalf("outputs: %v %v", outA.Data[0], outB.Data[0])
	}
	ts := memo.Stats().Types[0]
	if ts.MemoizedIKT != 1 || ts.Executed != 1 {
		t.Fatalf("IKT accounting: %+v", ts)
	}
}

func TestDisableIKT(t *testing.T) {
	memo := New(Config{Mode: ModeStatic, DisableIKT: true})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Memoize: true, Run: doubler})
	in := region.NewFloat64(4)
	for i := 0; i < 6; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(4)))
	}
	rt.Wait()
	if _, defers, _ := memo.IKT().Counters(); defers != 0 {
		t.Fatal("IKT must stay unused when disabled")
	}
}

func TestHashKeyLevelAndLayoutSeparation(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	memo.BindRuntime(rt)

	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Run: func(task *taskrt.Task) { captured = task }})
	in := region.NewFloat64(32)
	for i := range in.Data {
		in.Data[i] = float64(i) * 0.25
	}
	rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(1)))
	rt.Wait()

	k15a := memo.HashKey(captured, 15)
	k15b := memo.HashKey(captured, 15)
	if k15a != k15b {
		t.Fatal("hash keys must be deterministic")
	}
	k0 := memo.HashKey(captured, 0)
	if k0 == k15a {
		t.Fatal("different p levels should give different keys")
	}

	// Mutating a sampled byte changes the key at p=100%.
	in.Data[7] += 1
	if memo.HashKey(captured, 15) == k15a {
		t.Fatal("input changes must change the full-p key")
	}
}

func TestOutputShapesMatch(t *testing.T) {
	a := []region.Region{region.NewFloat64(3), region.NewInt32(2)}
	b := []region.Region{region.NewFloat64(3), region.NewInt32(2)}
	if !outputShapesMatch(a, b) {
		t.Fatal("equal shapes must match")
	}
	c := []region.Region{region.NewFloat64(3), region.NewInt32(3)}
	if outputShapesMatch(a, c) {
		t.Fatal("length mismatch")
	}
	d := []region.Region{region.NewFloat64(3), region.NewFloat32(2)}
	if outputShapesMatch(a, d) {
		t.Fatal("kind mismatch")
	}
	if outputShapesMatch(a, a[:1]) {
		t.Fatal("arity mismatch")
	}
}

func TestConfigDefaults(t *testing.T) {
	a := New(Config{})
	cfg := a.Config()
	if cfg.NBits != 8 || cfg.M != 128 {
		t.Fatalf("defaults: %+v (paper sizing is N=8, M=128)", cfg)
	}
	b := New(Config{Mode: ModeFixed, FixedLevel: 99})
	if b.Config().FixedLevel != sampling.MaxPLevel {
		t.Fatal("fixed level must clamp")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeStatic.String() != "static" || ModeDynamic.String() != "dynamic" || ModeFixed.String() != "fixed-p" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestStatsSnapshotFields(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "named", Memoize: true, Run: doubler})
	in := region.NewFloat64(4)
	for i := 0; i < 3; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(4)))
	}
	rt.Wait()
	st := memo.Stats()
	if len(st.Types) != 1 || st.Types[0].Name != "named" {
		t.Fatalf("stats types: %+v", st.Types)
	}
	ts := st.Types[0]
	if ts.Tasks != 3 || ts.P != 1 || !ts.Steady || ts.Level != 15 {
		t.Fatalf("static type stats: %+v", ts)
	}
	if ts.Reuse() <= 0 {
		t.Fatal("reuse must be positive")
	}
	if st.THTEntries == 0 || st.THTBytes == 0 || st.THTLookups == 0 {
		t.Fatalf("THT counters: %+v", st)
	}
	if memo.MemoryBytes() != st.THTBytes {
		t.Fatal("MemoryBytes must mirror the THT")
	}
}

func TestTrainingHitRefreshesStaleEntry(t *testing.T) {
	// After a failed training grade, the THT must hold the fresh outputs
	// for that key so later comparisons grade against current data.
	memo := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "amp", Memoize: true, TauMax: 0.01, LTraining: 1000, Run: amplify})

	a, b := msbTwin()
	rt.Submit(tt, taskrt.In(a), taskrt.Out(region.NewFloat64(8)))
	rt.Submit(tt, taskrt.In(b), taskrt.Out(region.NewFloat64(8)))
	rt.Wait()
	ts := memo.Stats().Types[0]
	if ts.TrainingFailures != 1 {
		t.Fatalf("expected exactly one graded failure: %+v", ts)
	}
	if memo.THT().Entries() < 2 {
		t.Fatal("failed grade must insert the fresh outputs")
	}
}

func TestATMHashCopyTimersAdvance(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "t", Memoize: true, Run: doubler})
	in := region.NewFloat64(4096)
	for i := 0; i < 4; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(4096)))
	}
	rt.Wait()
	ts := memo.Stats().Types[0]
	if ts.HashTime <= 0 || ts.CopyTime <= 0 {
		t.Fatalf("overhead timers must advance: hash=%v copy=%v", ts.HashTime, ts.CopyTime)
	}
	if ts.HashTime > time.Minute || ts.CopyTime > time.Minute {
		t.Fatal("implausible timer values")
	}
}
