package core

import (
	"errors"
	"fmt"
	"sort"

	"atm/internal/hashx"
	"atm/internal/region"
	"atm/internal/sampling"
)

// This file is the engine's snapshot boundary: the paper's payoff is
// amortization — memoization only wins once the THT is warm — yet a
// fresh process always starts cold. Snapshot extracts the serializable
// memoization state (THT entries, per-type adaptive state, a config
// fingerprint) and Restore rebuilds a new engine from it, so repeated
// experiment sweeps pay the training phase once. The external binary
// representation lives in package persist.

// ErrSnapshotConfig is returned by Restore when the snapshot was taken
// under a configuration whose fingerprint differs from the restoring
// engine's: serving hits from such a snapshot could silently mis-hit
// (different hash seeds or shuffle plans), so it is rejected instead.
var ErrSnapshotConfig = errors.New("core: snapshot config fingerprint mismatch")

// Snapshot is the serializable state of a quiescent ATM engine. The
// regions it references are deep copies on the Snapshot() side and are
// adopted by the engine on the Restore() side — do not reuse a Snapshot
// after passing it to Restore.
type Snapshot struct {
	// Fingerprint identifies the Config the state was produced under
	// (see Fingerprint); Restore rejects a mismatch.
	Fingerprint uint64
	// IKT carries the In-flight Key Table's lifetime counters at
	// snapshot time. The table itself is empty at quiescence (every
	// provider released its key at completion), so counters are its only
	// content; they are informational and are not replayed by Restore.
	IKT IKTCounters
	// Types are the per-task-type sections, in type-registration order
	// with any carried-over (never re-registered) sections after them.
	Types []TypeSnapshot
}

// IKTCounters mirrors IKT.Counters.
type IKTCounters struct {
	Inserts, Defers, Rejected int64
}

// TypeSnapshot is one task type's memoization state, keyed by the
// type's name: dense type IDs are assigned per-runtime in registration
// order, so the name is the only identity stable across processes
// (hash seeds are derived from it too — see typeSeed).
type TypeSnapshot struct {
	Name string
	// Steady reports whether dynamic training had completed; Level is
	// the chosen (or in-progress) p level.
	Steady bool
	Level  int
	// Successes is the consecutive-correct-approximations counter of an
	// in-training type (meaningless when Steady).
	Successes int
	// Excluded is the size of the type's chaotic-output exclusion set.
	// The set itself is keyed by per-process region identity and cannot
	// be carried across processes; Restore re-enters training for a type
	// with a non-empty set so the warm run rebuilds it (never serving
	// steady-state hits it can no longer guard).
	Excluded int
	Entries  []EntrySnapshot
}

// EntrySnapshot is one THT entry: the key, the p level it was computed
// at, and the provider's output (and, under VerifyInputs, input)
// snapshots. With Tombstone set it is instead an eviction record — the
// identity of an entry the live table removed — and carries no
// regions. Tombstones appear only inside delta operation streams
// (Delta.Entries and pending sections mid-restore); a full Snapshot
// never contains one, and the v1 entry codec rejects them.
type EntrySnapshot struct {
	Key       uint64
	Level     int8
	Provider  uint64
	Outs      []region.Region
	Ins       []region.Region
	Tombstone bool
}

// Fingerprint hashes every Config field that determines whether stored
// keys remain valid — Seed and DisableTypeAware feed the hash and
// shuffle plans directly; the mode, level and table-shape fields are
// included too so a snapshot only ever restores into an identically
// configured engine. Defaults are applied first, so Config{} and the
// spelled-out equivalent fingerprint identically.
//
// THTBudgetBytes, THTEviction and TenantShares are deliberately
// excluded: they are capacity knobs, not key-validity knobs. A
// snapshot is a cache — restoring it under a different budget or
// eviction policy yields valid (merely fewer or differently chosen)
// entries, and an operator must be able to resize a service's budget
// across restarts without discarding its warm state. Tenancy needs no
// fingerprint bit either: the tenant lives in the type name, which
// seeds the key hash (typeSeed), so tenants' key spaces are disjoint
// by construction.
func Fingerprint(cfg Config) uint64 {
	cfg.applyDefaults()
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime64
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	mix(uint64(cfg.Mode))
	mix(uint64(cfg.FixedLevel))
	mix(uint64(cfg.NBits))
	mix(uint64(cfg.M))
	mix(b2u(cfg.DisableIKT))
	mix(b2u(cfg.DisableTypeAware))
	mix(b2u(cfg.VerifyInputs))
	mix(cfg.Seed)
	if cfg.HashFunc == hashx.Lookup3 {
		// The default hash keeps the exact pre-hashx formula, so every
		// fingerprint in previously persisted snapshots (including the
		// golden corpus) is unchanged.
		return h
	}
	// Non-default hash: mix the function id and name (the name so a
	// renumbering cannot silently alias two functions), then stamp the
	// low 16 bits with a recognizable marker so tooling can decode the
	// hash choice from the otherwise opaque persisted fingerprint.
	mix(uint64(cfg.HashFunc))
	name := cfg.HashFunc.String()
	for i := 0; i < len(name); i++ {
		mix(uint64(name[i]))
	}
	return h&^0xffff | uint64(hashMarker) | uint64(cfg.HashFunc)
}

// hashMarker tags the low 16 bits of non-default-hash fingerprints as
// 0xA5 <func id>, making the hash choice recoverable by inspection
// tooling (FingerprintHashFunc). Lookup3 fingerprints are unmarked for
// back compatibility.
const hashMarker uint16 = 0xa500

// FingerprintHashFunc decodes the hash function a fingerprint was
// produced under. It is best-effort for display tooling only — a
// pre-hashx or Lookup3 fingerprint has ~3/65536 odds of its low bits
// aliasing the marker — so restore paths must keep comparing full
// fingerprints and never trust this decode for validation.
func FingerprintHashFunc(fp uint64) hashx.Func {
	low := uint16(fp)
	if low&0xff00 == hashMarker {
		if f := hashx.Func(low & 0xff); f != hashx.Lookup3 && hashx.Registered(f) {
			return f
		}
	}
	return hashx.Lookup3
}

// Snapshot extracts the engine's memoization state. It quiesces through
// the runtime's completion fence (Wait) when the engine is bound, so
// every in-flight task has published its THT insert and released its
// IKT key before the tables are read; an unbound engine (tests driving
// the hooks directly) is the caller's responsibility to quiesce. The
// returned regions are deep copies: the engine may keep running and
// recycling entries afterwards.
func (a *ATM) Snapshot() (*Snapshot, error) {
	if a.rt != nil {
		a.rt.Wait()
	}
	snap := &Snapshot{Fingerprint: Fingerprint(a.cfg)}
	if a.ikt != nil {
		if n := a.ikt.Len(); n != 0 {
			return nil, fmt.Errorf("core: snapshot with %d in-flight IKT entries (engine not quiescent)", n)
		}
		snap.IKT.Inserts, snap.IKT.Defers, snap.IKT.Rejected = a.ikt.Counters()
	}
	byType := map[int][]EntrySnapshot{}
	a.tht.forEach(func(e *Entry) {
		byType[e.TypeID] = append(byType[e.TypeID], EntrySnapshot{
			Key:      e.Key,
			Level:    e.Level,
			Provider: e.ProviderID,
			Outs:     cloneRegions(e.Outs),
			Ins:      cloneRegions(e.Ins),
		})
	})
	if err := a.collectTypeSections(snap, byType); err != nil {
		return nil, err
	}
	// A successful full snapshot supersedes the accumulated delta
	// state: every insert the log references is covered by the table
	// scan above, so the log is discarded and the current epoch sealed
	// — the next SnapshotDelta carries only changes made after this
	// point. The supersession commits only now, after every failure
	// path is behind us: a failed Snapshot must leave the delta chain
	// intact (draining up front would silently drop those inserts from
	// every future delta). It also runs outside typeMu, preserving the
	// snapMu→typeMu lock order SnapshotDelta uses. Under the full
	// snapshot's quiescence contract no insert races the scan-then-
	// drain window; racing saves belong to SnapshotDelta, whose drain
	// partitions inserts exactly.
	a.snapMu.Lock()
	if a.tracking {
		for _, r := range a.tht.DrainLog() {
			r.e.Release()
		}
		a.savedThrough = a.saveEpoch.Add(1) - 1
	}
	a.snapMu.Unlock()
	return snap, nil
}

// FoldEntryOps folds an ordered operation stream (inserts and
// tombstones) into the equivalent insert-only list: each tombstone
// cancels the oldest uncancelled insert matching its (key, level,
// provider) identity, exactly the entry THT.Remove would take off the
// ring at replay time. A tombstone with no match is dropped — the
// replay-side removal of an absent entry is a no-op, so the fold
// mirrors it. Because the live table logs every eviction as an
// explicit tombstone, replaying the folded list reproduces the same
// table as replaying the operations (the property persist.Compact
// builds on to make compacted chains shrink).
func FoldEntryOps(ops []EntrySnapshot) []EntrySnapshot {
	tombs := 0
	for i := range ops {
		if ops[i].Tombstone {
			tombs++
		}
	}
	if tombs == 0 {
		return ops
	}
	out := make([]EntrySnapshot, 0, len(ops)-tombs)
	for _, op := range ops {
		if !op.Tombstone {
			out = append(out, op)
			continue
		}
		for i := range out {
			if out[i].Key == op.Key && out[i].Level == op.Level && out[i].Provider == op.Provider {
				out = append(out[:i], out[i+1:]...)
				break
			}
		}
	}
	return out
}

// collectTypeSections appends the per-type sections (registered types
// first, then carried unclaimed pending sections) to snap, under
// typeMu.
func (a *ATM) collectTypeSections(snap *Snapshot, byType map[int][]EntrySnapshot) error {
	a.typeMu.Lock()
	defer a.typeMu.Unlock()
	var states []*typeState
	if sl := a.typeStates.Load(); sl != nil {
		states = *sl
	}
	seen := make(map[string]bool, len(states))
	for id, ts := range states {
		if ts == nil {
			continue
		}
		name := a.names[id]
		if seen[name] {
			// The runtime does not enforce type-name uniqueness, but the
			// snapshot's sections are name-keyed: writing the collision
			// out would produce a file every later Load rejects. Fail at
			// save time, where it is diagnosable.
			return fmt.Errorf("core: two task types named %q: snapshot sections are keyed by type name", name)
		}
		seen[name] = true
		ph, level := ts.load()
		ts.mu.Lock()
		succ := ts.successes
		excl := len(ts.excluded)
		ts.mu.Unlock()
		snap.Types = append(snap.Types, TypeSnapshot{
			Name:      name,
			Steady:    ph == phaseSteady,
			Level:     level,
			Successes: succ,
			Excluded:  excl,
			Entries:   byType[id],
		})
	}
	// Sections restored into this engine whose types never re-registered
	// carry through (a sweep alternating workloads must not lose the
	// idle workload's warm state). Cloned: the pending map may later be
	// installed into the THT, whose recycling mutates entries. Pending
	// sections are operation streams — a chained delta may have left
	// tombstones — and a full snapshot carries entries only, so the ops
	// are folded first (FoldEntryOps replays removals textually, which
	// installSection would otherwise do on the ring).
	carried := make([]string, 0, len(a.pending))
	for name := range a.pending {
		carried = append(carried, name)
	}
	sort.Strings(carried)
	for _, name := range carried {
		sec := a.pending[name]
		cp := *sec
		folded := FoldEntryOps(sec.Entries)
		cp.Entries = make([]EntrySnapshot, len(folded))
		for i, es := range folded {
			cp.Entries[i] = EntrySnapshot{
				Key:      es.Key,
				Level:    es.Level,
				Provider: es.Provider,
				Outs:     cloneRegions(es.Outs),
				Ins:      cloneRegions(es.Ins),
			}
		}
		snap.Types = append(snap.Types, cp)
	}
	return nil
}

func cloneRegions(rs []region.Region) []region.Region {
	if rs == nil {
		return nil
	}
	out := make([]region.Region, len(rs))
	for i, r := range rs {
		out[i] = r.Clone()
	}
	return out
}

// Restore builds a fresh engine from cfg pre-warmed with the state in
// snap. The snapshot's fingerprint must match cfg's or Restore fails
// with ErrSnapshotConfig — a snapshot taken under different hash seeds
// or shuffle plans must never serve hits. Restored sections are held
// pending by type name and installed (adaptive level adopted, THT
// entries inserted) when the matching type first registers, so restore
// order is independent of type-registration order. The engine adopts
// snap's regions; do not reuse snap afterwards.
func Restore(cfg Config, snap *Snapshot) (*ATM, error) {
	a := New(cfg)
	if want := Fingerprint(a.cfg); snap.Fingerprint != want {
		return nil, fmt.Errorf("%w: snapshot %#016x, config %#016x", ErrSnapshotConfig, snap.Fingerprint, want)
	}
	a.pending = make(map[string]*TypeSnapshot, len(snap.Types))
	for i := range snap.Types {
		sec := &snap.Types[i]
		if _, dup := a.pending[sec.Name]; dup {
			return nil, fmt.Errorf("core: duplicate snapshot section for type %q", sec.Name)
		}
		a.pending[sec.Name] = sec
	}
	return a, nil
}

// RestoreChain is Restore for a decoded chain: the base is restored
// and the deltas applied in order, yielding a warm engine whose state
// is the chain's fold. The engine adopts every part's regions — do not
// reuse base or deltas afterwards.
func RestoreChain(cfg Config, base *Snapshot, deltas []*Delta) (*ATM, error) {
	a, err := Restore(cfg, base)
	if err != nil {
		return nil, err
	}
	for i, d := range deltas {
		if err := a.ApplyDelta(d); err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
	}
	return a, nil
}

// installSection adopts a restored section into a freshly created
// typeState. Called from stateSlow under typeMu, before the state is
// published, so no task of the type can race the installation: the
// first OnReady already sees the warm level and the warm THT. The
// return value reports whether the metadata installed verbatim — false
// means the installed state diverged from the snapshot (clamped level,
// or an excluded steady type demoted to training) and the caller must
// mark the type dirty for the next delta save.
func (a *ATM) installSection(id int, ts *typeState, sec *TypeSnapshot) bool {
	level := sec.Level
	if level < sampling.MinPLevel {
		level = sampling.MinPLevel
	}
	if level > sampling.MaxPLevel {
		level = sampling.MaxPLevel
	}
	ph := phaseTraining
	// A type whose cold run excluded chaotic output regions re-trains:
	// the exclusion set is per-process region identity and cannot be
	// restored, and steady-state memoization without it would approximate
	// exactly the outputs the cold run proved unstable.
	if sec.Steady && sec.Excluded == 0 {
		ph = phaseSteady
	}
	ts.phaseLevel.Store(packPhaseLevel(ph, level))
	if ph == phaseTraining && !sec.Steady {
		// Resume an interrupted training run where it left off. A
		// formerly-steady type demoted by the exclusion caveat instead
		// re-trains from zero successes, so it cannot flip back to
		// steady before its exclusion set has had a chance to rebuild.
		ts.successes = sec.Successes
	}
	for _, es := range sec.Entries {
		if es.Level < sampling.MinPLevel || es.Level > sampling.MaxPLevel {
			continue
		}
		if es.Tombstone {
			// A chained delta recorded an eviction: replay the removal.
			// Remove neither logs nor counts an eviction — the removal
			// was already persisted by the chain being restored.
			a.tht.Remove(id, es.Key, es.Level, es.Provider)
			continue
		}
		// Restored entries bypass the delta insert log (Epoch 0): the
		// snapshot chain that produced them already persists them.
		a.tht.InsertRestored(&Entry{
			TypeID:     id,
			Key:        es.Key,
			Level:      es.Level,
			ProviderID: es.Provider,
			Outs:       es.Outs,
			Ins:        es.Ins,
			tenant:     ts.tenant,
		})
		a.restored.Add(1)
	}
	demoted := sec.Steady && sec.Excluded != 0
	return level == sec.Level && !demoted
}

// RestoredEntries reports how many THT entries have been installed from
// a restored snapshot so far (sections install lazily, when their task
// type first registers).
func (a *ATM) RestoredEntries() int64 { return a.restored.Load() }
