// Package core implements Approximate Task Memoization (ATM), the paper's
// primary contribution (§III): a runtime-system mechanism that predicts
// the outputs of ready tasks from the history of previous executions of
// the same task type.
//
// It plugs into the task runtime (package taskrt) through the Memoizer
// hook. When a worker pulls a ready task, core computes an 8-byte Jenkins
// hash key over a sampled subset of the task's input bytes and probes the
// Task History Table (THT); on a hit the stored outputs are copied into
// the task's outputs and the body is skipped. On a miss, the In-flight Key
// Table (IKT) catches reuse at short distances: if an identical task is
// currently executing, this one is deferred and receives the outputs when
// the in-flight provider finishes.
//
// The steady-state hit path (hash + THT probe + output copy) is
// allocation-free and lock-free: each worker owns a reusable hasher and
// scratch, type state and shuffle plans are read through atomic
// pointers, statistics go to per-worker padded shards, and overhead
// timing is sampled rather than measured on every task.
//
// Three operating modes are provided:
//
//   - ModeStatic — static ATM: p = 100% of input bytes, exact memoization,
//     0% accuracy loss.
//   - ModeDynamic — dynamic ATM: a per-task-type training phase starts at
//     p = 2^-15·100% and doubles p every time an approximated task's
//     Chebyshev error τ reaches τmax, until L_training tasks in a row are
//     approximated correctly; then a steady phase memoizes at the chosen p
//     without executing the tasks.
//   - ModeFixed — a constant p level with no training, used by the
//     Oracle(100%)/Oracle(95%) sweeps and the Fig. 5 sensitivity study.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/hashx"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
	"atm/internal/trace"
)

// Mode selects the ATM operating mode.
type Mode uint8

// Operating modes.
const (
	ModeStatic  Mode = iota // p = 100%, exact memoization
	ModeDynamic             // training phase chooses p automatically
	ModeFixed               // constant p level (oracle / sensitivity runs)
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	case ModeFixed:
		return "fixed-p"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config configures an ATM instance.
type Config struct {
	// Mode selects static, dynamic, or fixed-p operation.
	Mode Mode
	// FixedLevel is the p level for ModeFixed: level L means
	// p = 2^(L-15), so 15 is 100%. Ignored in other modes.
	FixedLevel int
	// NBits sets the THT to 2^NBits buckets. Zero means 8, the paper's
	// sizing (§IV-B: "N=8 provides a 46% performance improvement with
	// respect to N=0").
	NBits int
	// M is the THT bucket capacity. Zero means 128, the paper's value
	// (sized for Kmeans; most applications saturate at 16).
	M int
	// DisableIKT turns off the In-flight Key Table, leaving only the
	// THT (the "THT" bars of Fig. 3).
	DisableIKT bool
	// DisableTypeAware turns off type-aware MSB-first input selection
	// (§III-C) and uses the plain uniform shuffle.
	DisableTypeAware bool
	// VerifyInputs enables the paranoid final check the paper built and
	// then dropped (§III-E): THT entries additionally store a snapshot
	// of the (sampled) task inputs, and a key hit is confirmed by
	// comparing the actual sampled bytes before the outputs are served.
	// This eliminates hash-collision false positives at the price of
	// roughly doubling the THT's memory and the hit-path work; the paper
	// found "the obtained results did not justify such a complex
	// approach" and observed no collisions in any benchmark, which the
	// FalsePositives counter lets this implementation confirm too.
	VerifyInputs bool
	// Seed perturbs the shuffle plans and hash keys; runs with equal
	// seeds are reproducible.
	Seed uint64
	// HashFunc selects the key hash function (package hashx). The zero
	// value is hashx.Lookup3, the engine's historical hash: zero-valued
	// configs produce bit-identical keys, snapshots and fingerprints to
	// every release before the hash became pluggable. The choice is
	// folded into Fingerprint, so warm state persisted under one
	// function never restores into an engine running another.
	HashFunc hashx.Func
	// THTBudgetBytes caps the THT's payload memory (the table's
	// MemoryBytes). Zero means unbounded — the paper's sweep behavior.
	// With a budget set, inserts evict residents under THTEviction
	// before publishing, so a sustained over-budget insert stream holds
	// the table at or under the budget. Budgets are capacity knobs, not
	// key-validity knobs: they are deliberately NOT folded into
	// Fingerprint, so warm state persists across budget changes (a
	// snapshot is a cache; restoring under a smaller budget simply
	// evicts during install).
	THTBudgetBytes int64
	// THTEviction selects the budget-eviction policy: EvictFIFO (the
	// zero-cost default), EvictCLOCK, or EvictTinyLFU. Ignored without
	// THTBudgetBytes. Not folded into Fingerprint (see THTBudgetBytes).
	THTEviction EvictPolicy
	// TenantShares maps tenant names (the prefix before the first '/'
	// in a task type's name — see SplitTenant) to fractions of
	// THTBudgetBytes. A tenant with a share is evicted down to its own
	// slice of the budget before it can pressure other tenants; tenants
	// without a share compete under the global budget only. Not folded
	// into Fingerprint (see THTBudgetBytes).
	TenantShares map[string]float64
}

func (c *Config) applyDefaults() {
	if c.NBits == 0 {
		c.NBits = 8
	}
	if c.M == 0 {
		c.M = 128
	}
	if c.FixedLevel < sampling.MinPLevel {
		c.FixedLevel = sampling.MinPLevel
	}
	if c.FixedLevel > sampling.MaxPLevel {
		c.FixedLevel = sampling.MaxPLevel
	}
}

// ErrConfig is the typed error Validate wraps: test with errors.Is.
var ErrConfig = errors.New("core: invalid config")

// Validate reports configuration values New would have to clamp or
// that cannot work at all, as errors wrapping ErrConfig. New itself
// stays panic-free (it clamps defensively, preserving the historical
// zero-value behavior); front-ends that accept external configuration
// (harness, atmd, atmbench) validate first so a misconfiguration is a
// diagnosable error instead of a silently resized table.
func (c Config) Validate() error {
	if c.Mode > ModeFixed {
		return fmt.Errorf("%w: unknown mode %d", ErrConfig, c.Mode)
	}
	if c.NBits < 0 || c.NBits > MaxNBits {
		// Both edges matter: a negative count is meaningless, and nbits
		// ≥ 31 overflows the bucket-count shift (gigabytes of empty
		// buckets well before that).
		return fmt.Errorf("%w: NBits %d outside [0, %d]", ErrConfig, c.NBits, MaxNBits)
	}
	if c.M < 0 {
		return fmt.Errorf("%w: negative bucket capacity M %d", ErrConfig, c.M)
	}
	if c.THTBudgetBytes < 0 {
		return fmt.Errorf("%w: negative THTBudgetBytes %d", ErrConfig, c.THTBudgetBytes)
	}
	if c.THTEviction > EvictTinyLFU {
		return fmt.Errorf("%w: unknown eviction policy %d", ErrConfig, c.THTEviction)
	}
	var total float64
	for name, share := range c.TenantShares {
		if share < 0 || share > 1 {
			return fmt.Errorf("%w: tenant %q share %v outside [0, 1]", ErrConfig, name, share)
		}
		total += share
	}
	if total > 1+1e-9 {
		return fmt.Errorf("%w: tenant shares sum to %v > 1", ErrConfig, total)
	}
	if len(c.TenantShares) > 0 && c.THTBudgetBytes == 0 {
		return fmt.Errorf("%w: TenantShares without THTBudgetBytes", ErrConfig)
	}
	return nil
}

// SplitTenant splits a tenant-qualified task-type name "tenant/kind"
// into its tenant prefix and bare kind; a name without '/' belongs to
// the default tenant "". The tenant rides in the type name itself, so
// typeSeed — and with it every hash key and shuffle plan — is already
// tenant-isolated: two tenants submitting identical inputs under the
// same kind occupy disjoint key spaces.
func SplitTenant(name string) (tenant, kind string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i], name[i+1:]
		}
	}
	return "", name
}

// TenantOf returns the tenant prefix of a type name ("" for the
// default tenant).
func TenantOf(name string) string {
	tenant, _ := SplitTenant(name)
	return tenant
}

// excludeAfter is the number of failed training approximations after
// which an output region is declared chaotic and excluded from ATM.
const excludeAfter = 3

// Overhead timing is sampled: the first timingWarmup tasks of a type (per
// worker) are measured exactly — keeping short runs and tests accurate —
// after which only every timingSampleth task pays the two time.Now()
// calls, with the measurement scaled up so aggregate HashTime/CopyTime
// stay representative.
const (
	timingWarmup = 64
	timingSample = 64
)

// phase is a task type's position in the dynamic-ATM lifecycle.
type phase uint8

const (
	phaseTraining phase = iota
	phaseSteady
)

// typeShard is one worker's slice of a type's statistics, padded so
// different workers never share a cache line. All fields are atomics only
// so Stats() may read them concurrently; each shard has a single writer.
type typeShard struct {
	tasks         atomic.Int64
	executed      atomic.Int64
	memoTHT       atomic.Int64
	memoIKT       atomic.Int64
	trainHits     atomic.Int64
	trainFailures atomic.Int64
	excludedSkips atomic.Int64
	hashNanos     atomic.Int64
	copyNanos     atomic.Int64
	_             [56]byte
}

// typeState is the per-task-type adaptive state of §III-D. The steady
// state hot path reads only phaseLevel and hasExcl (both atomic); the
// mutex guards the training-phase bookkeeping.
type typeState struct {
	phaseLevel atomic.Uint32 // phase<<8 | level
	hasExcl    atomic.Bool   // any region in the exclusion set
	// seed is the type's stable hash-seed component, derived from the
	// type name (typeSeed) rather than the runtime-assigned dense ID:
	// hash keys and shuffle plans must be identical across processes for
	// persisted snapshots (snapshot.go) to hit on restore. Immutable
	// after stateSlow publishes the state.
	seed   uint64
	shards []typeShard // one per worker, +1 for external callers
	// tenant is the owning tenant's dense id (from the type name's
	// '/'-prefix), stamped on every THT entry the type inserts so the
	// table's per-tenant accounting and budget shares apply. Immutable
	// after stateSlow publishes the state.
	tenant int32

	mu        sync.Mutex
	successes int // consecutive correct approximations at this level
	// dirtyEpoch is the save epoch (ATM.saveEpoch) of the last
	// phase/level/successes/exclusion mutation, stamped under mu; a
	// delta save carries the type's metadata when dirtyEpoch exceeds
	// the last saved epoch. Zero means the state matches what the
	// restored snapshot recorded.
	dirtyEpoch uint64
	// failCount counts, per output region, training approximations whose
	// τ reached τmax. Every failure doubles p (§III-D); a region that
	// keeps failing across levels is "potentially related to chaotic
	// behavior" and joins the exclusion set after excludeAfter failures:
	// its tasks bypass ATM instead of driving p all the way to 100%.
	// This reproduces the output-pointer exclusion set that Jacobi needs
	// (§IV-A) while letting ordinary failures raise p as the paper's
	// algorithm does.
	failCount map[region.Region]int
	excluded  map[region.Region]bool
}

func packPhaseLevel(ph phase, level int) uint32 { return uint32(ph)<<8 | uint32(level) }

func (ts *typeState) load() (phase, int) {
	pl := ts.phaseLevel.Load()
	return phase(pl >> 8), int(pl & 0xff)
}

// scratch is the per-task Memoizer state carried from OnReady to
// OnFinished in Task.MemoScratch. One scratch per worker is recycled
// across tasks: OnReady and OnFinished for a task always run on the same
// worker, with no other task of that worker's in between.
type scratch struct {
	key   uint64
	level int8
	timed bool
	// tscale is the extrapolation factor for sampled timings (1 during
	// warmup, timingSample after), applied to both the OnReady hash
	// measurement and the OnFinished snapshot-copy measurement so
	// aggregate HashTime/CopyTime stay representative.
	tscale     int64
	trainEntry *Entry // training-phase THT hit to grade after execution (retained)
	iktKey     iktKey
	inIKT      bool
	// insSnap holds pre-execution input clones when Config.VerifyInputs
	// is set; inout inputs are mutated by the body, so the snapshot must
	// be taken at hash time, not at THT-insert time.
	insSnap []region.Region
}

// workerState is the per-worker reusable machinery: the streaming hasher
// and the scratch, padded against false sharing.
type workerState struct {
	hasher  hashx.Hasher
	scratch scratch
	_       [32]byte
}

// ATM is the Approximate Task Memoization engine. It implements
// taskrt.Memoizer and taskrt.RuntimeBinder.
type ATM struct {
	cfg Config
	rt  *taskrt.Runtime
	tht *THT
	ikt *IKT

	// plans is an immutable map swapped copy-on-write under planMu;
	// readers load it with one atomic pointer read.
	planMu sync.Mutex
	plans  atomic.Pointer[map[planKey]*sampling.Plan]

	falsePositives atomic.Int64

	// typeStates is a dense slice indexed by task-type ID, grown
	// copy-on-write under typeMu; the hot path is one atomic load plus an
	// index.
	typeMu     sync.Mutex
	typeStates atomic.Pointer[[]*typeState]
	names      map[int]string
	// tenantIDs assigns dense ids to tenant names (the '/'-prefix of
	// type names — SplitTenant) as their types register; guarded by
	// typeMu. Id 0 is the default tenant "". The THT mirrors the
	// registry for per-tenant accounting (EnsureTenant).
	tenantIDs map[string]int32
	// pending holds restored snapshot sections (see Restore) not yet
	// claimed by a registered task type, keyed by type name; guarded by
	// typeMu. stateSlow installs and removes a section when its type
	// first appears.
	pending  map[string]*TypeSnapshot
	restored atomic.Int64 // THT entries installed from a snapshot

	// Incremental-snapshot state (delta.go). saveEpoch is the epoch new
	// state is stamped with; it starts at 1 and each save seals the
	// current epoch by bumping it. savedThrough (guarded by snapMu) is
	// the highest sealed epoch, so state with a stamp above it is
	// unsaved. tracking reports EnableDeltaTracking was called (the THT
	// insert log is on).
	saveEpoch    atomic.Uint64
	snapMu       sync.Mutex
	savedThrough uint64
	tracking     bool

	workers []workerState

	// probePool recycles hashers for the out-of-band key paths (HashKey,
	// Peek), which have no worker identity to borrow a hasher from:
	// concurrent lookup front-ends (cmd/atmd) probe allocation-free.
	// Pooled hashers keep their last seed, so seed-change detection in
	// ResetSeed (hashx) skips re-derivation on repeated same-type probes.
	probePool sync.Pool
}

type planKey struct {
	typeID int
	sig    uint64
}

var (
	_ taskrt.Memoizer      = (*ATM)(nil)
	_ taskrt.RuntimeBinder = (*ATM)(nil)
	_ taskrt.BatchObserver = (*ATM)(nil)
)

// New builds an ATM engine. Pass it as taskrt.Config.Memoizer; the runtime
// binds itself on construction.
func New(cfg Config) *ATM {
	cfg.applyDefaults()
	a := &ATM{
		cfg:       cfg,
		tht:       NewTHT(cfg.NBits, cfg.M),
		names:     make(map[int]string),
		tenantIDs: make(map[string]int32),
	}
	a.tht.ConfigureBudget(cfg.THTBudgetBytes, cfg.THTEviction)
	a.registerTenant("") // the default tenant always exists, id 0
	a.probePool.New = func() any { return hashx.New(cfg.HashFunc, cfg.Seed) }
	a.saveEpoch.Store(1)
	return a
}

// registerTenant assigns (or returns) the dense id for a tenant name
// and mirrors it into the THT's accounting with its budget share.
// Caller holds typeMu (or, in New, no concurrency exists yet).
func (a *ATM) registerTenant(name string) int32 {
	if id, ok := a.tenantIDs[name]; ok {
		return id
	}
	id := int32(len(a.tenantIDs))
	a.tenantIDs[name] = id
	var budget int64
	if share, ok := a.cfg.TenantShares[name]; ok && a.cfg.THTBudgetBytes > 0 {
		budget = int64(share * float64(a.cfg.THTBudgetBytes))
	}
	a.tht.EnsureTenant(id, name, budget)
	return id
}

// Tenants reports the registered tenants' THT accounting, in dense id
// order (the default tenant "" first).
func (a *ATM) Tenants() []TenantStats { return a.tht.TenantStats() }

// BindRuntime implements taskrt.RuntimeBinder.
func (a *ATM) BindRuntime(rt *taskrt.Runtime) {
	a.rt = rt
	a.ikt = NewIKT(rt.Workers())
	a.workers = make([]workerState, rt.Workers())
	for i := range a.workers {
		a.workers[i].hasher = hashx.New(a.cfg.HashFunc, a.cfg.Seed)
	}
}

// Config returns the engine's effective configuration.
func (a *ATM) Config() Config { return a.cfg }

// THT exposes the history table (for statistics and tests).
func (a *ATM) THT() *THT { return a.tht }

// IKT exposes the in-flight table (for statistics and tests).
func (a *ATM) IKT() *IKT { return a.ikt }

// OnBatchSubmitted implements taskrt.BatchObserver: it runs on the master
// thread after a batch's dependences are fully wired but before any of
// its tasks can reach a worker, so the engine-side state a ready task
// needs is prepared batch-wide instead of lazily on the worker hot path.
// Per memoizable type (deduplicated against the consecutive same-type
// runs loop nests produce) it materializes the typeState — the one
// stateSlow mutex acquisition a type would otherwise pay under worker
// contention — and pre-builds the shuffle plan for the batch's input
// layout, so the first OnReady of a new (type, layout) pair finds the
// copy-on-write plan map already populated.
func (a *ATM) OnBatchSubmitted(tasks []*taskrt.Task) {
	var last *taskrt.TaskType
	for _, t := range tasks {
		tt := t.Type()
		if tt == last || !tt.Config().Memoize {
			continue
		}
		last = tt
		ts := a.state(tt)
		ins := t.Inputs()
		if len(ins) == 0 {
			continue
		}
		if _, level := ts.load(); level < sampling.MaxPLevel {
			a.planFor(tt.ID(), ts.seed, sampling.SignatureOf(ins), ins)
		}
	}
}

// state returns (creating if needed) the per-type adaptive state. The hit
// path costs one atomic load and an index into the dense type slice.
func (a *ATM) state(tt *taskrt.TaskType) *typeState {
	id := tt.ID()
	if sl := a.typeStates.Load(); sl != nil && id < len(*sl) {
		if ts := (*sl)[id]; ts != nil {
			return ts
		}
	}
	return a.stateSlow(tt)
}

func (a *ATM) stateSlow(tt *taskrt.TaskType) *typeState {
	a.typeMu.Lock()
	defer a.typeMu.Unlock()
	id := tt.ID()
	var cur []*typeState
	if sl := a.typeStates.Load(); sl != nil {
		cur = *sl
	}
	if id < len(cur) && cur[id] != nil {
		return cur[id]
	}
	nshards := len(a.workers) + 1
	if nshards < 2 {
		nshards = 2
	}
	ts := &typeState{
		seed:      typeSeed(tt.Name()),
		tenant:    a.registerTenant(TenantOf(tt.Name())),
		shards:    make([]typeShard, nshards),
		failCount: make(map[region.Region]int),
		excluded:  make(map[region.Region]bool),
	}
	switch a.cfg.Mode {
	case ModeStatic:
		ts.phaseLevel.Store(packPhaseLevel(phaseSteady, sampling.MaxPLevel))
	case ModeFixed:
		ts.phaseLevel.Store(packPhaseLevel(phaseSteady, a.cfg.FixedLevel))
	default:
		ts.phaseLevel.Store(packPhaseLevel(phaseTraining, sampling.MinPLevel))
	}
	if sec, ok := a.pending[tt.Name()]; ok {
		delete(a.pending, tt.Name())
		if !a.installSection(id, ts, sec) {
			// The installed metadata differs from what the snapshot
			// recorded (level clamped, or an excluded steady type demoted
			// to training): the next delta must re-record it.
			ts.dirtyEpoch = a.saveEpoch.Load()
		}
	} else {
		// A type the previous save never saw: its metadata is unsaved by
		// definition.
		ts.dirtyEpoch = a.saveEpoch.Load()
	}
	grown := make([]*typeState, max(id+1, len(cur)))
	copy(grown, cur)
	grown[id] = ts
	a.typeStates.Store(&grown)
	a.names[id] = tt.Name()
	return ts
}

// shard returns the stats shard for worker w of ts (the last shard
// absorbs out-of-range callers such as tests driving the engine
// directly).
func (ts *typeState) shard(w int) *typeShard {
	if w < 0 || w >= len(ts.shards)-1 {
		w = len(ts.shards) - 1
	}
	return &ts.shards[w]
}

// hasherFor returns worker w's reusable hasher, or a fresh one for
// out-of-band callers.
func (a *ATM) hasherFor(w int) hashx.Hasher {
	if w >= 0 && w < len(a.workers) {
		return a.workers[w].hasher
	}
	return hashx.New(a.cfg.HashFunc, a.cfg.Seed)
}

// probeHasher borrows a pooled hasher for an out-of-band key
// computation; return it with releaseProbe. Unlike hasherFor's
// fallback this never allocates in steady state.
func (a *ATM) probeHasher() hashx.Hasher   { return a.probePool.Get().(hashx.Hasher) }
func (a *ATM) releaseProbe(h hashx.Hasher) { a.probePool.Put(h) }

// FNV-1a parameters shared by typeSeed and Fingerprint (snapshot.go):
// one definition, so the two hashes cannot drift apart by a constant
// typo.
const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

// typeSeed derives the per-type hash-seed component from the type's
// name (FNV-1a). A stable name hash — rather than the runtime-assigned
// dense type ID — keeps hash keys and shuffle plans identical across
// processes, which is what makes persisted snapshots restorable: a
// warm-started run recomputes exactly the keys the cold run stored, as
// long as the type names match.
func typeSeed(name string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	return h
}

// planFor returns the cached shuffle plan for a task's input layout,
// building it on first use. The fast path is one atomic map load.
// tseed is the type's stable seed (typeState.seed): the plan cache is
// keyed by the per-runtime dense type ID, but the shuffle itself is
// seeded by the stable name hash so plans reproduce across processes.
func (a *ATM) planFor(typeID int, tseed uint64, sig uint64, ins []region.Region) *sampling.Plan {
	pk := planKey{typeID: typeID, sig: sig}
	if m := a.plans.Load(); m != nil {
		if p := (*m)[pk]; p != nil {
			return p
		}
	}
	a.planMu.Lock()
	defer a.planMu.Unlock()
	var cur map[planKey]*sampling.Plan
	if m := a.plans.Load(); m != nil {
		cur = *m
		if p := cur[pk]; p != nil {
			return p
		}
	}
	layout := sampling.LayoutOf(ins)
	seed := a.cfg.Seed ^ pk.sig ^ (tseed|1)*0x9e3779b97f4a7c15
	p := sampling.NewPlan(layout, seed, !a.cfg.DisableTypeAware)
	grown := make(map[planKey]*sampling.Plan, len(cur)+1)
	for k, v := range cur {
		grown[k] = v
	}
	grown[pk] = p
	a.plans.Store(&grown)
	return p
}

// HashKey computes the task's 8-byte key at the given p level (§III-B).
// At level 15 (p = 100%) the whole input is streamed element-wise; below
// that, the cached shuffled index prefix selects the sampled bytes.
func (a *ATM) HashKey(t *taskrt.Task, level int) uint64 {
	h := a.probeHasher()
	key := a.hashKeyInto(t, a.state(t.Type()), level, h)
	a.releaseProbe(h)
	return key
}

// hashKeyInto is HashKey on a caller-owned hasher: the worker fast path,
// free of allocation and locks.
func (a *ATM) hashKeyInto(t *taskrt.Task, ts *typeState, level int, h hashx.Hasher) uint64 {
	return a.hashIns(t.Type().ID(), ts, t.Inputs(), level, h)
}

// hashIns is the shape-agnostic key computation shared by the worker
// fast path (hashKeyInto) and out-of-band probes (Peek): callers that
// have input regions but no carved task hash through here.
func (a *ATM) hashIns(typeID int, ts *typeState, ins []region.Region, level int, h hashx.Hasher) uint64 {
	sig := sampling.SignatureOf(ins)
	seed := a.cfg.Seed ^ sig ^ (ts.seed|1)*0xc2b2ae3d27d4eb4f
	h.ResetSeed(seed)
	if level >= sampling.MaxPLevel {
		for _, in := range ins {
			in.HashWords(h)
		}
		return h.Sum64()
	}
	plan := a.planFor(typeID, ts.seed, sig, ins)
	runs := plan.SegmentedRuns(level)
	for i, offsets := range plan.Segmented(level) {
		if len(offsets) == 0 {
			continue
		}
		if runs[i] != nil {
			ins[i].HashSampleRuns(runs[i], h)
		} else {
			ins[i].HashSample(offsets, h)
		}
	}
	return h.Sum64()
}

// Peek probes the THT for the outputs the engine would currently serve
// for a task of type tt with the given inputs, without submitting a
// task: on a hit the stored outputs are copied into outs (which must
// match the entry's shapes) and Peek reports true. It never mutates
// engine state beyond the table's lookup/hit counters and is safe to
// call from any goroutine — the memoization-lookup path of a network
// front-end (GET /v1/lookup in cmd/atmd).
//
// A false return means only that no entry exists at the type's current
// p level right now; a concurrent insert may land immediately after.
func (a *ATM) Peek(tt *taskrt.TaskType, ins, outs []region.Region) bool {
	ts := a.state(tt)
	_, level := ts.load()
	h := a.probeHasher()
	key := a.hashIns(tt.ID(), ts, ins, level, h)
	a.releaseProbe(h)
	e := a.tht.Lookup(tt.ID(), key, int8(level))
	if e == nil {
		return false
	}
	defer e.Release()
	if !outputShapesMatch(e.Outs, outs) {
		return false
	}
	for i, o := range outs {
		o.CopyFrom(e.Outs[i])
	}
	return true
}

// verifyHit confirms a THT key match by comparing the actual sampled input
// bytes when Config.VerifyInputs is set (the §III-E final check). Without
// verification it accepts the hit, like the paper's deployed design.
func (a *ATM) verifyHit(e *Entry, t *taskrt.Task, ts *typeState, level int) bool {
	if !a.cfg.VerifyInputs || e.Ins == nil {
		return true
	}
	ins := t.Inputs()
	if len(ins) != len(e.Ins) {
		a.falsePositives.Add(1)
		return false
	}
	if level >= sampling.MaxPLevel {
		// Exact mode: the whole inputs must be bit-identical.
		for i, in := range ins {
			if !in.EqualContents(e.Ins[i]) {
				a.falsePositives.Add(1)
				return false
			}
		}
		return true
	}
	// Approximate mode: only the sampled byte positions participate in
	// the key, so only they are verified.
	for i, in := range ins {
		if in.Kind() != e.Ins[i].Kind() || in.NumBytes() != e.Ins[i].NumBytes() {
			a.falsePositives.Add(1)
			return false
		}
	}
	plan := a.planFor(t.Type().ID(), ts.seed, sampling.SignatureOf(ins), ins)
	for i, offsets := range plan.Segmented(level) {
		for _, off := range offsets {
			if ins[i].ByteAt(int(off)) != e.Ins[i].ByteAt(int(off)) {
				a.falsePositives.Add(1)
				return false
			}
		}
	}
	return true
}

// FalsePositives reports the number of key matches rejected by the
// VerifyInputs final check (always zero when verification is off).
func (a *ATM) FalsePositives() int64 { return a.falsePositives.Load() }

// outputShapesMatch reports whether two output lists are copy-compatible.
func outputShapesMatch(a, b []region.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() != b[i].Kind() || a[i].NumElems() != b[i].NumElems() {
			return false
		}
	}
	return true
}

// snapshotEntry builds (reusing pooled buffers when shapes allow) a THT
// entry holding a copy of t's current outputs, stamped with ts's tenant.
func (a *ATM) snapshotEntry(t *taskrt.Task, ts *typeState, key uint64, level int8, insSnap []region.Region) *Entry {
	outs := t.Outputs()
	e := a.tht.GetEntry()
	if outputShapesMatch(e.Outs, outs) {
		for i, o := range outs {
			e.Outs[i].CopyFrom(o)
		}
	} else {
		cloned := make([]region.Region, len(outs))
		for i, o := range outs {
			cloned[i] = o.Clone()
		}
		e.Outs = cloned
	}
	e.TypeID = t.Type().ID()
	e.Key = key
	e.Level = level
	e.ProviderID = t.ID()
	e.Epoch = a.saveEpoch.Load() // diagnostic stamp; the insert log drives delta selection
	e.Ins = insSnap
	e.tenant = ts.tenant
	return e
}

// OnReady implements taskrt.Memoizer: Fig. 1's ready-task protocol.
func (a *ATM) OnReady(t *taskrt.Task, worker int) taskrt.Outcome {
	ts := a.state(t.Type())
	sh := ts.shard(worker)
	n := sh.tasks.Add(1)
	ph, level := ts.load()

	if a.cfg.Mode == ModeDynamic && ts.hasExcl.Load() {
		ts.mu.Lock()
		for _, o := range t.Outputs() {
			if ts.excluded[o] {
				ts.mu.Unlock()
				sh.excludedSkips.Add(1)
				sh.executed.Add(1)
				return taskrt.OutcomeRun // chaotic output: never memoize
			}
		}
		ts.mu.Unlock()
	}

	tracer := a.rt.Tracer()
	if tracer != nil {
		tracer.SetState(worker, trace.StateHash)
	}
	timed := n <= timingWarmup || n%timingSample == 0
	tscale := int64(1)
	if n > timingWarmup {
		tscale = timingSample
	}
	var h0 time.Time
	if timed {
		h0 = time.Now()
	}
	h := a.hasherFor(worker)
	key := a.hashKeyInto(t, ts, level, h)
	var hashNanos int64
	if timed {
		hashNanos = time.Since(h0).Nanoseconds() * tscale // sampled: extrapolate
		sh.hashNanos.Add(hashNanos)
	}

	var insSnap []region.Region
	if a.cfg.VerifyInputs {
		insSnap = make([]region.Region, len(t.Inputs()))
		for i, in := range t.Inputs() {
			insSnap[i] = in.Clone()
		}
	}

	if ph == phaseTraining {
		// Training: memoization is only emulated; the task always runs
		// so τ can be measured against the stored outputs (§III-D).
		sc := a.scratchFor(worker)
		*sc = scratch{key: key, level: int8(level), timed: timed, tscale: tscale, insSnap: insSnap}
		if e := a.tht.Lookup(t.Type().ID(), key, sc.level); e != nil {
			if outputShapesMatch(e.Outs, t.Outputs()) {
				sc.trainEntry = e // retained; released after grading
			} else {
				e.Release()
			}
		}
		t.MemoScratch = sc
		sh.executed.Add(1)
		return taskrt.OutcomeRun
	}

	// Steady state (or static / fixed-p from the start).
	if e := a.tht.Lookup(t.Type().ID(), key, int8(level)); e != nil {
		if outputShapesMatch(e.Outs, t.Outputs()) && a.verifyHit(e, t, ts, level) {
			if tracer != nil {
				tracer.SetState(worker, trace.StateMemo)
			}
			var c0 time.Time
			if timed {
				c0 = time.Now()
			}
			for i, o := range t.Outputs() {
				o.CopyFrom(e.Outs[i])
			}
			if timed {
				sh.copyNanos.Add(time.Since(c0).Nanoseconds() * tscale)
			}
			provider := e.ProviderID
			e.Release()
			sh.memoTHT.Add(1)
			if tracer != nil {
				tracer.Reuse(provider, t.ID(), level < sampling.MaxPLevel, false)
			}
			t.MemoScratch = nil
			return taskrt.OutcomeMemoized
		}
		e.Release()
	}

	if !a.cfg.DisableIKT {
		ik := iktKey{typeID: t.Type().ID(), key: key, level: int8(level)}
		inserted, deferred := a.ikt.Acquire(ik, t)
		if deferred {
			sh.memoIKT.Add(1)
			t.MemoScratch = nil
			return taskrt.OutcomeDeferred
		}
		if inserted {
			sc := a.scratchFor(worker)
			*sc = scratch{key: key, level: int8(level), timed: timed, tscale: tscale, insSnap: insSnap, inIKT: true, iktKey: ik}
			t.MemoScratch = sc
			sh.executed.Add(1)
			return taskrt.OutcomeRun
		}
	}
	sc := a.scratchFor(worker)
	*sc = scratch{key: key, level: int8(level), timed: timed, tscale: tscale, insSnap: insSnap}
	t.MemoScratch = sc
	sh.executed.Add(1)
	return taskrt.OutcomeRun
}

// scratchFor returns worker w's recycled scratch (or a fresh one for
// out-of-band callers).
func (a *ATM) scratchFor(w int) *scratch {
	if w >= 0 && w < len(a.workers) {
		return &a.workers[w].scratch
	}
	return new(scratch)
}

// OnFinished implements taskrt.Memoizer: Fig. 1's updateTHT&IKT() path,
// plus dynamic ATM's training-phase grading.
func (a *ATM) OnFinished(t *taskrt.Task, worker int) {
	sc, _ := t.MemoScratch.(*scratch)
	t.MemoScratch = nil
	if sc == nil {
		return // excluded-output task: not memoized, not recorded
	}
	ts := a.state(t.Type())
	sh := ts.shard(worker)
	tracer := a.rt.Tracer()

	if sc.trainEntry != nil {
		a.grade(t, ts, sh, sc)
		sc.trainEntry = nil
		return
	}

	// Snapshot outputs into the THT.
	if tracer != nil {
		tracer.SetState(worker, trace.StateMemo)
	}
	var c0 time.Time
	if sc.timed {
		c0 = time.Now()
	}
	a.tht.Insert(a.snapshotEntry(t, ts, sc.key, sc.level, sc.insSnap))
	if sc.timed {
		// Extrapolate by the same factor as the OnReady measurements:
		// past warmup only every timingSample-th task is timed, and an
		// unscaled add would under-report CopyTime ~64x.
		sh.copyNanos.Add(time.Since(c0).Nanoseconds() * sc.tscale)
	}

	// Serve postponed copies (IKT waiters) and complete them.
	if sc.inIKT {
		waiters := a.ikt.Release(sc.iktKey, t)
		for _, w := range waiters {
			for i, o := range w.Outputs() {
				o.CopyFrom(t.Outputs()[i])
			}
			if tracer != nil {
				tracer.Reuse(t.ID(), w.ID(), int(sc.level) < sampling.MaxPLevel, true)
			}
			a.rt.CompleteExternal(w)
		}
	}
}

// grade measures a training-phase approximation: the task executed, so its
// fresh outputs are the ground truth against the THT entry's prediction.
func (a *ATM) grade(t *taskrt.Task, ts *typeState, sh *typeShard, sc *scratch) {
	tau := metrics.Chebyshev(t.Outputs(), sc.trainEntry.Outs)
	tauMax := t.Type().TauMax()
	sc.trainEntry.Release()

	ts.mu.Lock()
	ph, level := ts.load()
	if ph != phaseTraining || int(sc.level) != level {
		// The level moved while this task was in flight; its grade is
		// stale. Count it as a hit observation only.
		ts.mu.Unlock()
		sh.trainHits.Add(1)
		return
	}
	sh.trainHits.Add(1)
	ts.dirtyEpoch = a.saveEpoch.Load() // every branch below mutates the metadata
	if tau >= tauMax {
		sh.trainFailures.Add(1)
		alreadyChaotic := true
		for _, o := range t.Outputs() {
			if !ts.excluded[o] {
				alreadyChaotic = false
			}
			ts.failCount[o]++
			if ts.failCount[o] >= excludeAfter {
				ts.excluded[o] = true
				ts.hasExcl.Store(true)
			}
		}
		// Failures on already-excluded (chaotic) outputs must not keep
		// doubling p: raising it would not stabilize them (§III-D's
		// rationale for the exclusion set).
		if !alreadyChaotic && level < sampling.MaxPLevel {
			ts.phaseLevel.Store(packPhaseLevel(phaseTraining, level+1)) // double p
			ts.successes = 0
		}
		ts.mu.Unlock()
		// Refresh the stale prediction with the true outputs.
		a.tht.Insert(a.snapshotEntry(t, ts, sc.key, sc.level, sc.insSnap))
		return
	}
	ts.successes++
	if ts.successes >= t.Type().LTraining() {
		ts.phaseLevel.Store(packPhaseLevel(phaseSteady, level))
	}
	ts.mu.Unlock()
}
