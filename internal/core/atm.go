// Package core implements Approximate Task Memoization (ATM), the paper's
// primary contribution (§III): a runtime-system mechanism that predicts
// the outputs of ready tasks from the history of previous executions of
// the same task type.
//
// It plugs into the task runtime (package taskrt) through the Memoizer
// hook. When a worker pulls a ready task, core computes an 8-byte Jenkins
// hash key over a sampled subset of the task's input bytes and probes the
// Task History Table (THT); on a hit the stored outputs are copied into
// the task's outputs and the body is skipped. On a miss, the In-flight Key
// Table (IKT) catches reuse at short distances: if an identical task is
// currently executing, this one is deferred and receives the outputs when
// the in-flight provider finishes.
//
// Three operating modes are provided:
//
//   - ModeStatic — static ATM: p = 100% of input bytes, exact memoization,
//     0% accuracy loss.
//   - ModeDynamic — dynamic ATM: a per-task-type training phase starts at
//     p = 2^-15·100% and doubles p every time an approximated task's
//     Chebyshev error τ reaches τmax, until L_training tasks in a row are
//     approximated correctly; then a steady phase memoizes at the chosen p
//     without executing the tasks.
//   - ModeFixed — a constant p level with no training, used by the
//     Oracle(100%)/Oracle(95%) sweeps and the Fig. 5 sensitivity study.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/jenkins"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
	"atm/internal/trace"
)

// Mode selects the ATM operating mode.
type Mode uint8

// Operating modes.
const (
	ModeStatic  Mode = iota // p = 100%, exact memoization
	ModeDynamic             // training phase chooses p automatically
	ModeFixed               // constant p level (oracle / sensitivity runs)
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	case ModeFixed:
		return "fixed-p"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config configures an ATM instance.
type Config struct {
	// Mode selects static, dynamic, or fixed-p operation.
	Mode Mode
	// FixedLevel is the p level for ModeFixed: level L means
	// p = 2^(L-15), so 15 is 100%. Ignored in other modes.
	FixedLevel int
	// NBits sets the THT to 2^NBits buckets. Zero means 8, the paper's
	// sizing (§IV-B: "N=8 provides a 46% performance improvement with
	// respect to N=0").
	NBits int
	// M is the THT bucket capacity. Zero means 128, the paper's value
	// (sized for Kmeans; most applications saturate at 16).
	M int
	// DisableIKT turns off the In-flight Key Table, leaving only the
	// THT (the "THT" bars of Fig. 3).
	DisableIKT bool
	// DisableTypeAware turns off type-aware MSB-first input selection
	// (§III-C) and uses the plain uniform shuffle.
	DisableTypeAware bool
	// VerifyInputs enables the paranoid final check the paper built and
	// then dropped (§III-E): THT entries additionally store a snapshot
	// of the (sampled) task inputs, and a key hit is confirmed by
	// comparing the actual sampled bytes before the outputs are served.
	// This eliminates hash-collision false positives at the price of
	// roughly doubling the THT's memory and the hit-path work; the paper
	// found "the obtained results did not justify such a complex
	// approach" and observed no collisions in any benchmark, which the
	// FalsePositives counter lets this implementation confirm too.
	VerifyInputs bool
	// Seed perturbs the shuffle plans and hash keys; runs with equal
	// seeds are reproducible.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.NBits == 0 {
		c.NBits = 8
	}
	if c.M == 0 {
		c.M = 128
	}
	if c.FixedLevel < sampling.MinPLevel {
		c.FixedLevel = sampling.MinPLevel
	}
	if c.FixedLevel > sampling.MaxPLevel {
		c.FixedLevel = sampling.MaxPLevel
	}
}

// excludeAfter is the number of failed training approximations after
// which an output region is declared chaotic and excluded from ATM.
const excludeAfter = 3

// phase is a task type's position in the dynamic-ATM lifecycle.
type phase uint8

const (
	phaseTraining phase = iota
	phaseSteady
)

// typeState is the per-task-type adaptive state of §III-D.
type typeState struct {
	mu        sync.Mutex
	phase     phase
	level     int // current p level: p = 2^(level-15)
	successes int // consecutive correct approximations at this level
	// failCount counts, per output region, training approximations whose
	// τ reached τmax. Every failure doubles p (§III-D); a region that
	// keeps failing across levels is "potentially related to chaotic
	// behavior" and joins the exclusion set after excludeAfter failures:
	// its tasks bypass ATM instead of driving p all the way to 100%.
	// This reproduces the output-pointer exclusion set that Jacobi needs
	// (§IV-A) while letting ordinary failures raise p as the paper's
	// algorithm does.
	failCount map[region.Region]int
	excluded  map[region.Region]bool

	// Counters (guarded by mu).
	tasks         int64
	executed      int64
	memoTHT       int64
	memoIKT       int64
	trainHits     int64
	trainFailures int64
	excludedSkips int64
	hashNanos     int64
	copyNanos     int64
}

// scratch is the per-task Memoizer state carried from OnReady to
// OnFinished in Task.MemoScratch.
type scratch struct {
	key        uint64
	level      int8
	trainEntry *Entry // training-phase THT hit to grade after execution
	iktKey     iktKey
	inIKT      bool
	// insSnap holds pre-execution input clones when Config.VerifyInputs
	// is set; inout inputs are mutated by the body, so the snapshot must
	// be taken at hash time, not at THT-insert time.
	insSnap []region.Region
}

// ATM is the Approximate Task Memoization engine. It implements
// taskrt.Memoizer and taskrt.RuntimeBinder.
type ATM struct {
	cfg Config
	rt  *taskrt.Runtime
	tht *THT
	ikt *IKT

	planMu sync.RWMutex
	plans  map[planKey]*sampling.Plan

	falsePositives atomic.Int64

	typeMu sync.Mutex
	types  map[int]*typeState
	names  map[int]string
}

type planKey struct {
	typeID int
	sig    uint64
}

var (
	_ taskrt.Memoizer      = (*ATM)(nil)
	_ taskrt.RuntimeBinder = (*ATM)(nil)
)

// New builds an ATM engine. Pass it as taskrt.Config.Memoizer; the runtime
// binds itself on construction.
func New(cfg Config) *ATM {
	cfg.applyDefaults()
	return &ATM{
		cfg:   cfg,
		tht:   NewTHT(cfg.NBits, cfg.M),
		plans: make(map[planKey]*sampling.Plan),
		types: make(map[int]*typeState),
		names: make(map[int]string),
	}
}

// BindRuntime implements taskrt.RuntimeBinder.
func (a *ATM) BindRuntime(rt *taskrt.Runtime) {
	a.rt = rt
	a.ikt = NewIKT(rt.Workers())
}

// Config returns the engine's effective configuration.
func (a *ATM) Config() Config { return a.cfg }

// THT exposes the history table (for statistics and tests).
func (a *ATM) THT() *THT { return a.tht }

// IKT exposes the in-flight table (for statistics and tests).
func (a *ATM) IKT() *IKT { return a.ikt }

// state returns (creating if needed) the per-type adaptive state.
func (a *ATM) state(tt *taskrt.TaskType) *typeState {
	a.typeMu.Lock()
	defer a.typeMu.Unlock()
	ts, ok := a.types[tt.ID()]
	if !ok {
		ts = &typeState{
			failCount: make(map[region.Region]int),
			excluded:  make(map[region.Region]bool),
		}
		switch a.cfg.Mode {
		case ModeStatic:
			ts.phase = phaseSteady
			ts.level = sampling.MaxPLevel
		case ModeFixed:
			ts.phase = phaseSteady
			ts.level = a.cfg.FixedLevel
		default:
			ts.phase = phaseTraining
			ts.level = sampling.MinPLevel
		}
		a.types[tt.ID()] = ts
		a.names[tt.ID()] = tt.Name()
	}
	return ts
}

// plan returns the cached shuffle plan for a task's input layout.
func (a *ATM) plan(typeID int, layout sampling.Layout) *sampling.Plan {
	pk := planKey{typeID: typeID, sig: layout.Signature()}
	a.planMu.RLock()
	p := a.plans[pk]
	a.planMu.RUnlock()
	if p != nil {
		return p
	}
	a.planMu.Lock()
	defer a.planMu.Unlock()
	if p = a.plans[pk]; p != nil {
		return p
	}
	seed := a.cfg.Seed ^ pk.sig ^ (uint64(typeID)+1)*0x9e3779b97f4a7c15
	p = sampling.NewPlan(layout, seed, !a.cfg.DisableTypeAware)
	a.plans[pk] = p
	return p
}

// HashKey computes the task's 8-byte key at the given p level (§III-B).
// At level 15 (p = 100%) the whole input is streamed element-wise; below
// that, the cached shuffled index prefix selects the sampled bytes.
func (a *ATM) HashKey(t *taskrt.Task, level int) uint64 {
	ins := t.Inputs()
	layout := sampling.LayoutOf(ins)
	seed := a.cfg.Seed ^ layout.Signature() ^ (uint64(t.Type().ID())+1)*0xc2b2ae3d27d4eb4f
	h := jenkins.NewStreaming(seed)
	if level >= sampling.MaxPLevel {
		for _, in := range ins {
			in.HashWords(h)
		}
		return h.Sum64()
	}
	plan := a.plan(t.Type().ID(), layout)
	for i, offsets := range plan.Segmented(level) {
		if len(offsets) > 0 {
			ins[i].HashSample(offsets, h)
		}
	}
	return h.Sum64()
}

// verifyHit confirms a THT key match by comparing the actual sampled input
// bytes when Config.VerifyInputs is set (the §III-E final check). Without
// verification it accepts the hit, like the paper's deployed design.
func (a *ATM) verifyHit(e *Entry, t *taskrt.Task, level int) bool {
	if !a.cfg.VerifyInputs || e.Ins == nil {
		return true
	}
	ins := t.Inputs()
	if len(ins) != len(e.Ins) {
		a.falsePositives.Add(1)
		return false
	}
	if level >= sampling.MaxPLevel {
		// Exact mode: the whole inputs must be bit-identical.
		for i, in := range ins {
			if !in.EqualContents(e.Ins[i]) {
				a.falsePositives.Add(1)
				return false
			}
		}
		return true
	}
	// Approximate mode: only the sampled byte positions participate in
	// the key, so only they are verified.
	for i, in := range ins {
		if in.Kind() != e.Ins[i].Kind() || in.NumBytes() != e.Ins[i].NumBytes() {
			a.falsePositives.Add(1)
			return false
		}
	}
	plan := a.plan(t.Type().ID(), sampling.LayoutOf(ins))
	for i, offsets := range plan.Segmented(level) {
		for _, off := range offsets {
			if ins[i].ByteAt(int(off)) != e.Ins[i].ByteAt(int(off)) {
				a.falsePositives.Add(1)
				return false
			}
		}
	}
	return true
}

// FalsePositives reports the number of key matches rejected by the
// VerifyInputs final check (always zero when verification is off).
func (a *ATM) FalsePositives() int64 { return a.falsePositives.Load() }

// outputShapesMatch reports whether two output lists are copy-compatible.
func outputShapesMatch(a, b []region.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind() != b[i].Kind() || a[i].NumElems() != b[i].NumElems() {
			return false
		}
	}
	return true
}

// OnReady implements taskrt.Memoizer: Fig. 1's ready-task protocol.
func (a *ATM) OnReady(t *taskrt.Task, worker int) taskrt.Outcome {
	ts := a.state(t.Type())
	tracer := a.rt.Tracer()

	ts.mu.Lock()
	ts.tasks++
	ph, level := ts.phase, ts.level
	if a.cfg.Mode == ModeDynamic {
		for _, o := range t.Outputs() {
			if ts.excluded[o] {
				ts.excludedSkips++
				ts.executed++
				ts.mu.Unlock()
				return taskrt.OutcomeRun // chaotic output: never memoize
			}
		}
	}
	ts.mu.Unlock()

	tracer.SetState(worker, trace.StateHash)
	h0 := time.Now()
	key := a.HashKey(t, level)
	hashNanos := time.Since(h0).Nanoseconds()
	sc := &scratch{key: key, level: int8(level)}
	if a.cfg.VerifyInputs {
		sc.insSnap = make([]region.Region, len(t.Inputs()))
		for i, in := range t.Inputs() {
			sc.insSnap[i] = in.Clone()
		}
	}
	t.MemoScratch = sc

	if ph == phaseTraining {
		// Training: memoization is only emulated; the task always runs
		// so τ can be measured against the stored outputs (§III-D).
		if e := a.tht.Lookup(t.Type().ID(), key, sc.level); e != nil && outputShapesMatch(e.Outs, t.Outputs()) {
			sc.trainEntry = e
		}
		ts.mu.Lock()
		ts.hashNanos += hashNanos
		ts.executed++
		ts.mu.Unlock()
		return taskrt.OutcomeRun
	}

	// Steady state (or static / fixed-p from the start).
	if e := a.tht.Lookup(t.Type().ID(), key, sc.level); e != nil && outputShapesMatch(e.Outs, t.Outputs()) &&
		a.verifyHit(e, t, level) {
		tracer.SetState(worker, trace.StateMemo)
		c0 := time.Now()
		for i, o := range t.Outputs() {
			o.CopyFrom(e.Outs[i])
		}
		copyNanos := time.Since(c0).Nanoseconds()
		ts.mu.Lock()
		ts.memoTHT++
		ts.hashNanos += hashNanos
		ts.copyNanos += copyNanos
		ts.mu.Unlock()
		tracer.Reuse(e.ProviderID, t.ID(), level < sampling.MaxPLevel, false)
		t.MemoScratch = nil
		return taskrt.OutcomeMemoized
	}

	if !a.cfg.DisableIKT {
		ik := iktKey{typeID: t.Type().ID(), key: key, level: sc.level}
		inserted, deferred := a.ikt.Acquire(ik, t)
		if deferred {
			ts.mu.Lock()
			ts.memoIKT++
			ts.hashNanos += hashNanos
			ts.mu.Unlock()
			t.MemoScratch = nil
			return taskrt.OutcomeDeferred
		}
		sc.inIKT = inserted
		sc.iktKey = ik
	}
	ts.mu.Lock()
	ts.executed++
	ts.hashNanos += hashNanos
	ts.mu.Unlock()
	return taskrt.OutcomeRun
}

// OnFinished implements taskrt.Memoizer: Fig. 1's updateTHT&IKT() path,
// plus dynamic ATM's training-phase grading.
func (a *ATM) OnFinished(t *taskrt.Task, worker int) {
	sc, _ := t.MemoScratch.(*scratch)
	t.MemoScratch = nil
	if sc == nil {
		return // excluded-output task: not memoized, not recorded
	}
	ts := a.state(t.Type())
	tracer := a.rt.Tracer()

	if sc.trainEntry != nil {
		a.grade(t, ts, sc)
		return
	}

	// Snapshot outputs into the THT.
	tracer.SetState(worker, trace.StateMemo)
	c0 := time.Now()
	outs := make([]region.Region, len(t.Outputs()))
	for i, o := range t.Outputs() {
		outs[i] = o.Clone()
	}
	a.tht.Insert(&Entry{
		TypeID:     t.Type().ID(),
		Key:        sc.key,
		Level:      sc.level,
		ProviderID: t.ID(),
		Outs:       outs,
		Ins:        sc.insSnap,
	})
	copyNanos := time.Since(c0).Nanoseconds()
	ts.mu.Lock()
	ts.copyNanos += copyNanos
	ts.mu.Unlock()

	// Serve postponed copies (IKT waiters) and complete them.
	if sc.inIKT {
		waiters := a.ikt.Release(sc.iktKey, t)
		for _, w := range waiters {
			for i, o := range w.Outputs() {
				o.CopyFrom(t.Outputs()[i])
			}
			tracer.Reuse(t.ID(), w.ID(), int(sc.level) < sampling.MaxPLevel, true)
			a.rt.CompleteExternal(w)
		}
	}
}

// grade measures a training-phase approximation: the task executed, so its
// fresh outputs are the ground truth against the THT entry's prediction.
func (a *ATM) grade(t *taskrt.Task, ts *typeState, sc *scratch) {
	tau := metrics.Chebyshev(t.Outputs(), sc.trainEntry.Outs)
	tauMax := t.Type().TauMax()

	ts.mu.Lock()
	if ts.phase != phaseTraining || int(sc.level) != ts.level {
		// The level moved while this task was in flight; its grade is
		// stale. Count it as a hit observation only.
		ts.trainHits++
		ts.mu.Unlock()
		return
	}
	ts.trainHits++
	if tau >= tauMax {
		ts.trainFailures++
		alreadyChaotic := true
		for _, o := range t.Outputs() {
			if !ts.excluded[o] {
				alreadyChaotic = false
			}
			ts.failCount[o]++
			if ts.failCount[o] >= excludeAfter {
				ts.excluded[o] = true
			}
		}
		// Failures on already-excluded (chaotic) outputs must not keep
		// doubling p: raising it would not stabilize them (§III-D's
		// rationale for the exclusion set).
		if !alreadyChaotic && ts.level < sampling.MaxPLevel {
			ts.level++ // double p
			ts.successes = 0
		}
		ts.mu.Unlock()
		// Refresh the stale prediction with the true outputs.
		outs := make([]region.Region, len(t.Outputs()))
		for i, o := range t.Outputs() {
			outs[i] = o.Clone()
		}
		a.tht.Insert(&Entry{
			TypeID: t.Type().ID(), Key: sc.key, Level: sc.level,
			ProviderID: t.ID(), Outs: outs, Ins: sc.insSnap,
		})
		return
	}
	ts.successes++
	if ts.successes >= t.Type().LTraining() {
		ts.phase = phaseSteady
	}
	ts.mu.Unlock()
}
