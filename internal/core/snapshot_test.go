package core

import (
	"errors"
	"testing"

	"atm/internal/region"
	"atm/internal/sampling"
	"atm/internal/taskrt"
)

// mkInput builds a deterministic 16-element float64 region seeded by v.
func mkInput(v int) *region.Float64 {
	in := region.NewFloat64(16)
	for i := range in.Data {
		in.Data[i] = float64(v*100+i) * 1.5
	}
	return in
}

func TestSnapshotRestoreServesImmediateHits(t *testing.T) {
	// Cold run: execute 8 distinct tasks under static ATM.
	cold := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: cold})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	coldOuts := make([]*region.Float64, 8)
	for v := range coldOuts {
		coldOuts[v] = region.NewFloat64(16)
		rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(coldOuts[v]))
	}
	rt.Wait()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if got := len(snap.Types); got != 1 {
		t.Fatalf("sections: %d", got)
	}
	if got := len(snap.Types[0].Entries); got != 8 {
		t.Fatalf("snapshot entries: %d", got)
	}

	// Warm run: a fresh engine in a fresh runtime must serve every task
	// from the restored THT without executing a single body.
	warm, err := Restore(Config{Mode: ModeStatic}, snap)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := taskrt.New(taskrt.Config{Workers: 2, Memoizer: warm})
	defer rt2.Close()
	executed := 0
	tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		executed++
		doubler(task)
	}})
	warmOuts := make([]*region.Float64, 8)
	for v := range warmOuts {
		warmOuts[v] = region.NewFloat64(16)
		rt2.Submit(tt2, taskrt.In(mkInput(v)), taskrt.Out(warmOuts[v]))
	}
	rt2.Wait()
	if executed != 0 {
		t.Fatalf("warm run executed %d bodies", executed)
	}
	ts := warm.Stats().Types[0]
	if ts.MemoizedTHT != 8 {
		t.Fatalf("warm run must hit the restored THT: %+v", ts)
	}
	if warm.RestoredEntries() != 8 {
		t.Fatalf("restored entries: %d", warm.RestoredEntries())
	}
	for v := range warmOuts {
		if !warmOuts[v].EqualContents(coldOuts[v]) {
			t.Fatalf("warm output %d diverges from cold run", v)
		}
	}
}

func TestSnapshotRestoreIndependentOfRegistrationOrder(t *testing.T) {
	// Hash keys are seeded by the type NAME, not the runtime-assigned
	// dense ID: a warm run that registers its types in a different order
	// must still hit.
	cold := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: cold})
	ta := rt.RegisterType(taskrt.TypeConfig{Name: "alpha", Memoize: true, Run: doubler})
	tb := rt.RegisterType(taskrt.TypeConfig{Name: "beta", Memoize: true, Run: doubler})
	rt.Submit(ta, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt.Submit(tb, taskrt.In(mkInput(2)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()

	warm, err := Restore(Config{Mode: ModeStatic}, snap)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	defer rt2.Close()
	// Reversed registration order: beta now has alpha's old dense ID.
	tb2 := rt2.RegisterType(taskrt.TypeConfig{Name: "beta", Memoize: true, Run: doubler})
	ta2 := rt2.RegisterType(taskrt.TypeConfig{Name: "alpha", Memoize: true, Run: doubler})
	rt2.Submit(tb2, taskrt.In(mkInput(2)), taskrt.Out(region.NewFloat64(16)))
	rt2.Submit(ta2, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt2.Wait()
	for _, ts := range warm.Stats().Types {
		if ts.MemoizedTHT != 1 {
			t.Fatalf("type %s must hit across registration orders: %+v", ts.Name, ts)
		}
	}
}

func TestSnapshotRejectsDuplicateTypeNames(t *testing.T) {
	// The runtime does not enforce type-name uniqueness, but snapshot
	// sections are name-keyed: a collision must fail at save time (where
	// it is diagnosable), not produce a file every Load rejects.
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	t1 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	t2 := rt.RegisterType(taskrt.TypeConfig{Name: "same", Memoize: true, Run: doubler})
	rt.Submit(t1, taskrt.In(mkInput(1)), taskrt.Out(region.NewFloat64(16)))
	rt.Submit(t2, taskrt.In(mkInput(2)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	if _, err := memo.Snapshot(); err == nil {
		t.Fatal("snapshot of two same-named types must fail")
	}
}

func TestRestoreRejectsFingerprintMismatch(t *testing.T) {
	memo := New(Config{Mode: ModeStatic, Seed: 1})
	snap, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Mode: ModeStatic, Seed: 2},       // different hash seed
		{Mode: ModeDynamic, Seed: 1},      // different mode
		{Mode: ModeStatic, Seed: 1, M: 4}, // different table shape
	} {
		if _, err := Restore(cfg, snap); !errors.Is(err, ErrSnapshotConfig) {
			t.Fatalf("cfg %+v: want ErrSnapshotConfig, got %v", cfg, err)
		}
	}
	// The exact config restores.
	if _, err := Restore(Config{Mode: ModeStatic, Seed: 1}, snap); err != nil {
		t.Fatalf("identical config must restore: %v", err)
	}
}

func TestSnapshotRestoreDynamicResumesSteady(t *testing.T) {
	cold := New(Config{Mode: ModeDynamic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: cold})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, TauMax: 0.01, LTraining: 3, Run: doubler})
	in := mkInput(7)
	for i := 0; i < 10; i++ {
		rt.Submit(tt, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	}
	rt.Wait()
	level, steady := cold.ChosenLevel(tt)
	if !steady {
		t.Fatal("training must have completed")
	}
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()

	warm, err := Restore(Config{Mode: ModeDynamic}, snap)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	defer rt2.Close()
	tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, TauMax: 0.01, LTraining: 3, Run: doubler})
	rt2.Submit(tt2, taskrt.In(in), taskrt.Out(region.NewFloat64(16)))
	rt2.Wait()
	level2, steady2 := warm.ChosenLevel(tt2)
	if !steady2 || level2 != level {
		t.Fatalf("restored type must resume steady at level %d: level=%d steady=%v", level, level2, steady2)
	}
	ts := warm.Stats().Types[0]
	if ts.MemoizedTHT != 1 || ts.Executed != 0 {
		t.Fatalf("warm dynamic run must memoize without retraining: %+v", ts)
	}
}

func TestRestoreDemotesExcludedTypesToTraining(t *testing.T) {
	// Exclusion sets are per-process region identity: a steady section
	// recorded with a non-empty set must re-train on restore rather than
	// serve steady hits it can no longer guard.
	snap := &Snapshot{
		Fingerprint: Fingerprint(Config{Mode: ModeDynamic}),
		Types: []TypeSnapshot{{
			Name: "jumpy", Steady: true, Level: 9, Successes: 99, Excluded: 1,
		}},
	}
	warm, err := Restore(Config{Mode: ModeDynamic}, snap)
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "jumpy", Memoize: true, Run: doubler})
	level, steady := warm.ChosenLevel(tt)
	if steady || level != 9 {
		t.Fatalf("excluded section must re-train at its level: level=%d steady=%v", level, steady)
	}
}

func TestSnapshotCarriesUnclaimedSections(t *testing.T) {
	// A sweep alternating workloads must not lose the idle workload's
	// warm state: sections whose type never registers in this process
	// round-trip through the next snapshot untouched.
	cold := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: cold})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "seen", Memoize: true, Run: doubler})
	rt.Submit(tt, taskrt.In(mkInput(3)), taskrt.Out(region.NewFloat64(16)))
	rt.Wait()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	snap.Types = append(snap.Types, TypeSnapshot{
		Name: "unseen", Steady: true, Level: sampling.MaxPLevel,
		Entries: []EntrySnapshot{{Key: 42, Level: 15, Outs: []region.Region{mkInput(9)}}},
	})

	warm, err := Restore(Config{Mode: ModeStatic}, snap)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	tt2 := rt2.RegisterType(taskrt.TypeConfig{Name: "seen", Memoize: true, Run: doubler})
	rt2.Submit(tt2, taskrt.In(mkInput(3)), taskrt.Out(region.NewFloat64(16)))
	rt2.Wait()
	snap2, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt2.Close()
	var carried *TypeSnapshot
	for i := range snap2.Types {
		if snap2.Types[i].Name == "unseen" {
			carried = &snap2.Types[i]
		}
	}
	if carried == nil {
		t.Fatal("unclaimed section must carry through")
	}
	if len(carried.Entries) != 1 || carried.Entries[0].Key != 42 {
		t.Fatalf("carried section mutated: %+v", carried)
	}
}
