package core

import (
	"sync"
	"testing"

	"atm/internal/region"
	"atm/internal/taskrt"
)

// TestSteadyHitPathZeroAlloc pins the PR's headline property: once a type
// is steady and its plan and THT entry exist, a memoized hit (hash +
// lookup + output copy) performs zero heap allocations.
func TestSteadyHitPathZeroAlloc(t *testing.T) {
	memo := New(Config{Mode: ModeStatic})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		captured = task
		doubler(task)
	}})
	in := region.NewFloat64(512)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out := region.NewFloat64(512)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(out)) // miss: runs, captures, warms the THT
	rt.Wait()
	if captured == nil {
		t.Fatal("body never ran")
	}

	// Drive the steady hit directly on worker 0 against the warm table.
	if got := memo.OnReady(captured, 0); got != taskrt.OutcomeMemoized {
		t.Fatalf("warm lookup must hit: outcome %v", got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if memo.OnReady(captured, 0) != taskrt.OutcomeMemoized {
			t.Fatal("steady hit expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady THT hit path allocates: %v allocs/op", allocs)
	}
}

// TestLowPHitPathZeroAlloc repeats the zero-allocation check on the
// sampled (p < 100%) path, which additionally crosses the plan cache and
// the run-encoded sampler.
func TestLowPHitPathZeroAlloc(t *testing.T) {
	memo := New(Config{Mode: ModeFixed, FixedLevel: 13})
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	var captured *taskrt.Task
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		captured = task
		doubler(task)
	}})
	in := region.NewFloat64(512)
	for i := range in.Data {
		in.Data[i] = float64(i) * 0.5
	}
	out := region.NewFloat64(512)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(out))
	rt.Wait()

	if got := memo.OnReady(captured, 0); got != taskrt.OutcomeMemoized {
		t.Fatalf("warm sampled lookup must hit: outcome %v", got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if memo.OnReady(captured, 0) != taskrt.OutcomeMemoized {
			t.Fatal("steady hit expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("sampled hit path allocates: %v allocs/op", allocs)
	}
}

// TestTHTConcurrentInsertLookupEvict hammers one small table from many
// goroutines so inserts constantly evict while lookups hold and release
// entries, exercising the ring buckets, the refcounts and the recycle
// pool together. Run with -race.
func TestTHTConcurrentInsertLookupEvict(t *testing.T) {
	tht := NewTHT(2, 4) // 4 buckets × 4 entries: constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				key := uint64(i % 97)
				e := tht.GetEntry()
				want := []region.Region{&region.Float64{Data: []float64{float64(key)}}}
				if outputShapesMatch(e.Outs, want) {
					e.Outs[0].CopyFrom(want[0])
				} else {
					e.Outs = want
				}
				e.TypeID = 0
				e.Key = key
				e.Level = 15
				tht.Insert(e)
				if got := tht.Lookup(0, key, 15); got != nil {
					if got.Key != key {
						t.Errorf("corrupt entry: key %d != %d", got.Key, key)
						got.Release()
						return
					}
					if v := got.Outs[0].Float64At(0); v != float64(key) {
						t.Errorf("corrupt outputs for key %d: %v", key, v)
						got.Release()
						return
					}
					got.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	if tht.Entries() > 16 {
		t.Fatalf("table overfull: %d", tht.Entries())
	}
	if tht.MemoryBytes() < 0 {
		t.Fatalf("memory accounting went negative: %d", tht.MemoryBytes())
	}
}

// TestTHTInsertIdempotentSize pins the re-insert accounting fix: inserting
// the same *Entry twice must not double-count its payload bytes.
func TestTHTInsertIdempotentSize(t *testing.T) {
	tht := NewTHT(0, 4)
	e := entryWith(0, 1, 15, 1, 2, 3, 4) // 32 payload + 24 header
	tht.Insert(e)
	first := tht.MemoryBytes()
	tht.Insert(e)
	if got := tht.MemoryBytes(); got != 2*first {
		t.Fatalf("re-insert must count the same size again, not cumulate: %d vs 2×%d", got, first)
	}
}

// TestEntryRecycleReusesBuffers checks the pool round-trip: an evicted,
// released entry's output buffers come back from GetEntry.
func TestEntryRecycleReusesBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts at random; recycling is not assertable")
	}
	tht := NewTHT(0, 1) // capacity 1: second insert evicts the first
	e1 := entryWith(0, 1, 15, 1, 2)
	tht.Insert(e1)
	buf := e1.Outs[0].(*region.Float64)
	tht.Insert(entryWith(0, 2, 15, 3, 4)) // evicts e1 → refs 0 → pooled
	e := tht.GetEntry()
	if e != e1 || e.Outs[0].(*region.Float64) != buf {
		t.Fatal("evicted entry must be recycled through the pool with its buffers")
	}
}

// TestLookupHoldsEvictedEntry pins the safety property behind the
// refcounts: an entry evicted while a reader still holds it must stay
// intact (not recycled) until the reader releases it.
func TestLookupHoldsEvictedEntry(t *testing.T) {
	tht := NewTHT(0, 1)
	e1 := entryWith(0, 1, 15, 42)
	tht.Insert(e1)
	held := tht.Lookup(0, 1, 15)
	if held == nil {
		t.Fatal("lookup must hit")
	}
	tht.Insert(entryWith(0, 2, 15, 7)) // evicts e1 while held
	if got := tht.GetEntry(); got == e1 {
		t.Fatal("held entry must not be recycled")
	}
	if held.Outs[0].Float64At(0) != 42 {
		t.Fatal("held entry corrupted after eviction")
	}
	held.Release() // now it may be pooled
	if raceEnabled {
		return // race mode drops sync.Pool puts at random
	}
	for i := 0; i < 4; i++ {
		if tht.GetEntry() == e1 {
			return // recycled after the last reference dropped
		}
	}
	t.Fatal("released evicted entry never reached the pool")
}
