// Package crashfuzz is a seeded simulated-crash fuzzing harness for the
// persistence stack. Where internal/schedfuzz fuzzes schedules and live
// fault returns, crashfuzz fuzzes the on-disk images a process crash
// leaves behind: failpoint partial-write injection (failpoint.ErrCrash)
// tears a save or append after a seeded number of bytes, production
// cleanup is skipped exactly as a dead process would skip it, and the
// scenario then drives recovery and asserts the crash-consistency
// oracle:
//
//   - recovery yields the previous committed state or a valid prefix of
//     the new chain — never a mix, never silent corruption;
//   - the salvaged prefix is canonical: it re-encodes bit-identically
//     to the bytes kept on disk;
//   - recovery never panics, and repair leaves zero *.tmp residue;
//   - after repair, the ordinary strict load and append paths work.
//
// Everything a run does — workload shape, crash points, cut offsets —
// derives from one seed, so any failure replays bit-identically:
//
//	go test -run 'TestCrashFuzzCorpus/<scenario>' -crashseed=<seed> ./internal/crashfuzz
//
// Failing seeds worth keeping are committed to
// testdata/regression_seeds.txt and replayed by the ordinary test run.
// See docs/persistence.md (crash consistency) and docs/determinism.md.
package crashfuzz

import (
	"flag"
	"fmt"
	"testing"

	"atm/internal/failpoint"
	"atm/internal/taskrt"
)

var (
	flagSeed  = flag.Uint64("crashseed", 0, "replay one crashfuzz seed instead of the sweep")
	flagSeeds = flag.Int("crashseeds", 0, "override the number of seeds per scenario")
)

// splitmix64 advances *x and returns the next value of its stream (the
// same expander taskrt's deterministic executor uses; duplicated here
// so crash plans and schedules draw from provably separate streams).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Ctx is one seeded scenario run. The scenario draws its shape (task
// counts, crash points, cut offsets) from the Ctx stream and builds
// runtimes through Runtime, which seeds the schedule from the same
// integer — so workload and crash plan replay together.
type Ctx struct {
	// Seed is the run's seed: the single integer that replays it.
	Seed uint64
	// Dir is a per-run temp directory for the snapshot files.
	Dir string

	rng   uint64
	fails []string
}

// Errorf records an invariant violation; the run continues so one seed
// reports everything it found.
func (c *Ctx) Errorf(format string, args ...any) {
	c.fails = append(c.fails, fmt.Sprintf(format, args...))
}

// Uint64 draws from the crash-plan stream.
func (c *Ctx) Uint64() uint64 { return splitmix64(&c.rng) }

// Intn draws a value in [0, n).
func (c *Ctx) Intn(n int) int { return int(c.Uint64() % uint64(n)) }

// Runtime builds a deterministic runtime for this run (schedule seeded
// from the run's seed, discipline a pure function of it) so the
// workload that feeds the snapshot files replays bit-identically.
func (c *Ctx) Runtime(cfg taskrt.Config) *taskrt.Runtime {
	cfg.Deterministic = true
	cfg.Seed = c.Seed
	x := c.Seed ^ 0xc4a5bf00d
	cfg.DetSched = taskrt.DetSched(1 + splitmix64(&x)%4)
	if cfg.Workers <= 0 {
		cfg.Workers = 1 + c.Intn(4)
	}
	if cfg.ThrottleWindow == 0 {
		cfg.ThrottleWindow = 512
	}
	return taskrt.New(cfg)
}

// Scenario is one named fuzz target.
type Scenario struct {
	Name string
	Run  func(*Ctx)
}

// Options configures a sweep.
type Options struct {
	// Seeds is the number of seeds per scenario (default 12; the CI
	// crashfuzz-smoke job raises it with -crashseeds).
	Seeds int
	// FirstSeed is the first seed of the sweep (default 1; seed 0 is
	// reserved as the flag's "unset" value).
	FirstSeed uint64
}

// Run sweeps every scenario across the configured seeds as subtests.
// With -crashseed=S only that seed runs — the replay path.
func Run(t *testing.T, scenarios []Scenario, opts Options) {
	seeds := opts.Seeds
	if *flagSeeds > 0 {
		seeds = *flagSeeds
	}
	if seeds <= 0 {
		seeds = 12
	}
	first := opts.FirstSeed
	if first == 0 {
		first = 1
	}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			if *flagSeed != 0 {
				RunSeed(t, sc, *flagSeed)
				return
			}
			for s := first; s < first+uint64(seeds); s++ {
				RunSeed(t, sc, s)
			}
		})
	}
}

// RunSeed runs one scenario under one seed, converting panics and
// recorded Errorf failures into test failures that carry the replay
// command.
func RunSeed(t *testing.T, sc Scenario, seed uint64) {
	t.Helper()
	c := &Ctx{Seed: seed, Dir: t.TempDir(), rng: seed ^ 0xcafef00dd00d}
	// Scenarios arm process-global failpoints; never leave one armed for
	// the next seed (and never run seeds in parallel).
	defer failpoint.DisableAll()
	completed := false
	var pv any
	func() {
		defer func() { pv = recover() }()
		sc.Run(c)
		completed = true
	}()
	if !completed {
		t.Fatalf("scenario %q panicked under seed %d: %v\n%s",
			sc.Name, seed, pv, ReplayHint(sc.Name, seed))
	}
	if len(c.fails) > 0 {
		for _, f := range c.fails {
			t.Errorf("seed %d: %s", seed, f)
		}
		t.Fatalf("scenario %q failed under seed %d\n%s", sc.Name, seed, ReplayHint(sc.Name, seed))
	}
}

// ReplayHint is the command that replays a failing seed.
func ReplayHint(name string, seed uint64) string {
	return fmt.Sprintf("replay: go test -run 'TestCrashFuzzCorpus/%s' -crashseed=%d ./internal/crashfuzz", name, seed)
}
