package crashfuzz

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestCrashFuzzCorpus sweeps the scenario corpus. Defaults to a small
// per-scenario seed sweep so the ordinary test run stays fast; CI's
// crashfuzz-smoke job raises the sweep with -crashseeds, and a failing
// seed replays with -crashseed (see the failure message).
func TestCrashFuzzCorpus(t *testing.T) {
	opts := Options{Seeds: 12}
	if testing.Short() {
		opts.Seeds = 4
	}
	Run(t, Corpus(), opts)
}

// TestCrashFuzzRegressionCorpus replays the committed regression seeds
// (testdata/regression_seeds.txt, "scenario seed" per line): every seed
// that ever exposed a bug keeps running in the ordinary test run.
func TestCrashFuzzRegressionCorpus(t *testing.T) {
	f, err := os.Open("testdata/regression_seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byName := map[string]Scenario{}
	for _, sc := range Corpus() {
		byName[sc.Name] = sc
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			t.Fatalf("regression_seeds.txt:%d: want \"scenario seed\", got %q", line, text)
		}
		scenario, ok := byName[fields[0]]
		if !ok {
			t.Fatalf("regression_seeds.txt:%d: unknown scenario %q", line, fields[0])
		}
		seed, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || seed == 0 {
			t.Fatalf("regression_seeds.txt:%d: bad seed %q", line, fields[1])
		}
		t.Run(fmt.Sprintf("%s/seed=%d", scenario.Name, seed), func(t *testing.T) {
			RunSeed(t, scenario, seed)
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCtxStreamDeterministic pins the crash-plan stream: equal seeds
// draw equal sequences, so a replayed seed rebuilds the same workload
// and the same crash plan.
func TestCtxStreamDeterministic(t *testing.T) {
	a := &Ctx{Seed: 9, rng: 9 ^ 0xcafef00dd00d}
	b := &Ctx{Seed: 9, rng: 9 ^ 0xcafef00dd00d}
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
