package crashfuzz

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/failpoint"
	"atm/internal/harness"
	"atm/internal/persist"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// The scenario corpus. Each scenario simulates process crashes at a
// different layer of the persistence stack: append-crash tears delta
// appends at seeded byte offsets and salvages the chain file directly,
// save-crash kills atomic whole-table saves at the write/sync/rename
// boundaries, and service-recovery drives the harness's RecoverPolicy
// end to end across simulated service lifetimes.

// Corpus returns the standard scenario corpus.
func Corpus() []Scenario {
	return []Scenario{
		{Name: "append-crash", Run: appendCrash},
		{Name: "save-crash", Run: saveCrash},
		{Name: "service-recovery", Run: serviceRecovery},
	}
}

// mkInput builds a deterministic 16-element input region keyed by v.
func mkInput(v int) *region.Float64 {
	in := region.NewFloat64(16)
	for i := range in.Data {
		in.Data[i] = float64(v*100+i) * 1.5
	}
	return in
}

// doubler is the scenarios' memoizable body: out[i] = 2*in[i].
func doubler(t *taskrt.Task) {
	in, out := t.Float64s(0), t.Float64s(1)
	for i := range in {
		out[i] = 2 * in[i]
	}
}

// keySet flattens a snapshot to its multiset of entry keys.
func keySet(snap *core.Snapshot) map[uint64]int {
	keys := map[uint64]int{}
	for _, sec := range snap.Types {
		for _, e := range sec.Entries {
			keys[e.Key]++
		}
	}
	return keys
}

// checkNoTmp reports any *.tmp residue under dir (and removes it so one
// leak does not cascade into later iterations).
func checkNoTmp(c *Ctx, dir, op string) {
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, f := range tmps {
		c.Errorf("%s left temp-file residue: %s", op, filepath.Base(f))
		os.Remove(f)
	}
}

// appendCrash builds a seeded delta chain and crashes every append at a
// seeded byte offset. Oracle per crash: the image keeps every committed
// byte, SalvageChain recovers exactly the last record boundary (the
// previous state, or the full new record when every byte landed), the
// salvaged prefix re-encodes bit-identically, and RepairChain followed
// by a re-append of the lost delta converges on the canonical chain.
func appendCrash(c *Ctx) {
	// A tiny THT budget under a seeded eviction policy makes the deltas
	// interleave inserts with tombstone records, so every crash offset
	// also exercises the tombstone section of the chain format. The
	// oracle below stays valid: Compact folds the tombstones, so its key
	// set equals the live (evicted) table's.
	cfg := core.Config{
		Mode:           core.ModeStatic,
		THTBudgetBytes: 8 * (16*8 + 24), // eight mkInput-sized entries
		THTEviction:    core.EvictPolicy(c.Intn(3)),
	}
	memo := core.New(cfg)
	memo.EnableDeltaTracking()
	rt := c.Runtime(taskrt.Config{Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})

	base, err := memo.Snapshot()
	if err != nil {
		c.Errorf("base snapshot: %v", err)
		rt.Close()
		return
	}
	var deltas []*core.Delta
	rounds := 3 + c.Intn(4)
	for round := 0; round < rounds; round++ {
		n := 2 + c.Intn(6)
		for i := 0; i < n; i++ {
			rt.Submit(tt, taskrt.In(mkInput(round*64+i)), taskrt.Out(region.NewFloat64(16)))
		}
		d, err := memo.SnapshotDelta()
		if err != nil {
			c.Errorf("delta %d: %v", round, err)
			rt.Close()
			return
		}
		deltas = append(deltas, d)
	}
	full, err := memo.Snapshot()
	if err != nil {
		c.Errorf("full snapshot: %v", err)
		rt.Close()
		return
	}
	rt.Close()

	path := filepath.Join(c.Dir, "chain.atmsnap")
	if err := persist.SaveChain(path, base, nil); err != nil {
		c.Errorf("SaveChain: %v", err)
		return
	}
	for i, d := range deltas {
		good, err := os.ReadFile(path)
		if err != nil {
			c.Errorf("read committed chain: %v", err)
			return
		}
		// Crash this append after a seeded number of bytes (the full
		// range: 0 = crash before any byte, total = crash after the
		// record landed but before the success return).
		failpoint.EnablePartial(persist.FailpointAppend, func(total int) (int, error) {
			return c.Intn(total + 1), failpoint.ErrCrash
		})
		aerr := persist.AppendDelta(path, d)
		failpoint.Disable(persist.FailpointAppend)
		if !errors.Is(aerr, failpoint.ErrCrash) {
			c.Errorf("append %d: crashed append returned %v", i, aerr)
			return
		}
		img, err := os.ReadFile(path)
		if err != nil {
			c.Errorf("read crash image: %v", err)
			return
		}
		if !bytes.HasPrefix(img, good) {
			c.Errorf("append %d: crash image lost committed bytes (%d -> %d)", i, len(good), len(img))
			return
		}
		sb, sds, rep, serr := persist.SalvageChain(img)
		if serr != nil {
			c.Errorf("append %d: crash image unsalvageable: %v", i, serr)
			return
		}
		// A torn frame can never form a valid boundary (the CRC trails
		// the body), so salvage keeps either the previous state or the
		// whole new record — nothing in between.
		if rep.BytesKept != int64(len(good)) && rep.BytesKept != int64(len(img)) {
			c.Errorf("append %d: salvage kept %d bytes, want %d (previous) or %d (complete)",
				i, rep.BytesKept, len(good), len(img))
		}
		reenc, err := persist.MarshalChain(sb, sds)
		if err != nil {
			c.Errorf("append %d: salvaged chain does not re-encode: %v", i, err)
			return
		}
		if !bytes.Equal(reenc, img[:rep.BytesKept]) {
			c.Errorf("append %d: salvaged prefix is not canonical", i)
		}
		if _, err := persist.RepairChain(path, persist.SyncAlways); err != nil {
			c.Errorf("append %d: repair: %v", i, err)
			return
		}
		repaired, err := os.ReadFile(path)
		if err != nil {
			c.Errorf("read repaired chain: %v", err)
			return
		}
		if _, _, err := persist.LoadChain(path); err != nil {
			c.Errorf("append %d: repaired chain fails strict load: %v", i, err)
			return
		}
		if len(repaired) == len(good) {
			// The record was lost with the crash; re-append it.
			if err := persist.AppendDelta(path, d); err != nil {
				c.Errorf("append %d: re-append after repair: %v", i, err)
				return
			}
		}
	}
	checkNoTmp(c, c.Dir, "append-crash")

	// Convergence: crash, salvage, repair and retry per delta must land
	// on the canonical chain, and its fold must equal the live table.
	want, err := persist.MarshalChain(base, deltas)
	if err != nil {
		c.Errorf("MarshalChain: %v", err)
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		c.Errorf("read final chain: %v", err)
		return
	}
	if !bytes.Equal(got, want) {
		c.Errorf("final chain diverges from canonical encoding (%d vs %d bytes)", len(got), len(want))
	}
	lb, ld, err := persist.LoadChain(path)
	if err != nil {
		c.Errorf("final LoadChain: %v", err)
		return
	}
	compacted, err := persist.Compact(lb, ld...)
	if err != nil {
		c.Errorf("final Compact: %v", err)
		return
	}
	liveKeys, gotKeys := keySet(full), keySet(compacted)
	if len(gotKeys) != len(liveKeys) {
		c.Errorf("recovered chain holds %d distinct keys, live table %d", len(gotKeys), len(liveKeys))
	}
	for k, n := range liveKeys {
		if gotKeys[k] != n {
			c.Errorf("key %#x: live count %d, recovered %d", k, n, gotKeys[k])
		}
	}
}

// saveCrash kills atomic whole-table saves at seeded points (partial
// write, fsync, rename) while alternating between two snapshots.
// Oracle per crash: the published file is bit-identical to the previous
// committed state (a reader never sees a torn whole-table snapshot),
// the crash leaves exactly the documented residue (one stale *.tmp that
// RemoveStaleTemp sweeps), and a retry after the sweep converges.
func saveCrash(c *Ctx) {
	memo := core.New(core.Config{Mode: core.ModeStatic})
	rt := c.Runtime(taskrt.Config{Memoizer: memo})
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: doubler})
	for v := 0; v < 4; v++ {
		rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16)))
	}
	rt.Wait()
	snapA, err := memo.Snapshot()
	if err != nil {
		c.Errorf("snapshot A: %v", err)
		rt.Close()
		return
	}
	for v := 4; v < 10; v++ {
		rt.Submit(tt, taskrt.In(mkInput(v)), taskrt.Out(region.NewFloat64(16)))
	}
	rt.Wait()
	snapB, err := memo.Snapshot()
	if err != nil {
		c.Errorf("snapshot B: %v", err)
		rt.Close()
		return
	}
	rt.Close()

	path := filepath.Join(c.Dir, "table.atmsnap")
	snaps := []*core.Snapshot{snapA, snapB}
	if err := persist.Save(path, snaps[0]); err != nil {
		c.Errorf("initial save: %v", err)
		return
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		c.Errorf("read committed snapshot: %v", err)
		return
	}
	iters := 8 + c.Intn(8)
	for i := 0; i < iters; i++ {
		next := snaps[(i+1)%2]
		// Seeded crash point: partial write, fsync, or rename.
		switch c.Intn(3) {
		case 0:
			failpoint.EnablePartial(persist.FailpointWrite, func(total int) (int, error) {
				return c.Intn(total + 1), failpoint.ErrCrash
			})
		case 1:
			failpoint.Enable(persist.FailpointSync, func() error { return failpoint.ErrCrash })
		default:
			failpoint.Enable(persist.FailpointRename, func() error { return failpoint.ErrCrash })
		}
		serr := persist.Save(path, next)
		failpoint.DisableAll()
		if !errors.Is(serr, failpoint.ErrCrash) {
			c.Errorf("iter %d: crashed save returned %v", i, serr)
			return
		}
		// The published file must be exactly the previous state: atomic
		// replace means a crash mid-save is invisible to readers.
		got, err := os.ReadFile(path)
		if err != nil {
			c.Errorf("iter %d: read published file: %v", i, err)
			return
		}
		if !bytes.Equal(got, committed) {
			c.Errorf("iter %d: crash corrupted the published snapshot (%d vs %d bytes)", i, len(got), len(committed))
			return
		}
		// Every crash point fires after the temp file is created, so the
		// crash image holds exactly one stale *.tmp; the sweep removes it.
		swept, err := persist.RemoveStaleTemp(path)
		if err != nil {
			c.Errorf("iter %d: sweep: %v", i, err)
			return
		}
		if !swept {
			c.Errorf("iter %d: crash left no stale temp to sweep", i)
		}
		checkNoTmp(c, c.Dir, "sweep")
		// Retry converges.
		if err := persist.Save(path, next); err != nil {
			c.Errorf("iter %d: retry save: %v", i, err)
			return
		}
		committed, err = os.ReadFile(path)
		if err != nil {
			c.Errorf("iter %d: read retried save: %v", i, err)
			return
		}
		if _, err := persist.Load(path); err != nil {
			c.Errorf("iter %d: retried save does not load: %v", i, err)
			return
		}
	}
	checkNoTmp(c, c.Dir, "save-crash")
}

// serviceRecovery drives the harness end to end across simulated
// service lifetimes: a healthy run grows the chain, a crashed run tears
// its final delta append mid-record, and the next lifetime recovers
// under a seeded RecoverPolicy. Oracle: the crash never loses committed
// bytes, salvage warm-starts from the surviving prefix while cold
// discards and recreates, and every recovered chain is strictly
// loadable with no *.tmp residue.
func serviceRecovery(c *Ctx) {
	f := harness.FactoryFor("Blackscholes")
	chain := filepath.Join(c.Dir, "service.atmchain")

	run := func(opt harness.RunOptions) harness.Outcome {
		opt.SnapshotChain = chain
		return harness.RunOne(f, apps.ScaleTest, 2, harness.Static(true), opt)
	}

	// Lifetime 0: cold start creates the chain.
	if o := run(harness.RunOptions{}); o.SnapshotErr != nil {
		c.Errorf("initial lifetime: %v", o.SnapshotErr)
		return
	}
	lifetimes := 2 + c.Intn(2)
	for life := 0; life < lifetimes; life++ {
		good, err := os.ReadFile(chain)
		if err != nil {
			c.Errorf("lifetime %d: read committed chain: %v", life, err)
			return
		}
		// Crash the first delta append of this lifetime mid-record
		// (cut in [1, total-1]: at least one byte lands, never all of
		// them); the harness's bounded retries then fail cleanly, as a
		// dead process would simply stop.
		calls := 0
		failpoint.EnablePartial(persist.FailpointAppend, func(total int) (int, error) {
			calls++
			if calls == 1 {
				return 1 + c.Intn(total-1), failpoint.ErrCrash
			}
			return 0, failpoint.ErrInjected
		})
		o := run(harness.RunOptions{})
		failpoint.Disable(persist.FailpointAppend)
		if o.SnapshotErr == nil || o.SaverFailures == 0 {
			c.Errorf("lifetime %d: crashed run reported err=%v failures=%d", life, o.SnapshotErr, o.SaverFailures)
			return
		}
		img, err := os.ReadFile(chain)
		if err != nil {
			c.Errorf("lifetime %d: read crash image: %v", life, err)
			return
		}
		if !bytes.HasPrefix(img, good) || len(img) == len(good) {
			c.Errorf("lifetime %d: crash image is not committed-plus-torn-tail (%d -> %d bytes)",
				life, len(good), len(img))
			return
		}

		// Next lifetime recovers under a seeded policy.
		policy := harness.RecoverSalvage
		if c.Intn(2) == 0 {
			policy = harness.RecoverCold
		}
		o = run(harness.RunOptions{Recover: policy})
		if o.SnapshotErr != nil {
			c.Errorf("lifetime %d: %v recovery run: %v", life, policy, o.SnapshotErr)
			return
		}
		switch policy {
		case harness.RecoverSalvage:
			if !o.WarmStart || !o.Salvaged || o.ColdFallback {
				c.Errorf("lifetime %d: salvage must warm-start from the prefix: warm=%v salvaged=%v cold=%v",
					life, o.WarmStart, o.Salvaged, o.ColdFallback)
			}
			if o.Recovery.BytesTruncated == 0 {
				c.Errorf("lifetime %d: salvage recovery report is empty: %+v", life, o.Recovery)
			}
		case harness.RecoverCold:
			if o.WarmStart || o.Salvaged || !o.ColdFallback {
				c.Errorf("lifetime %d: cold must discard and recreate: warm=%v salvaged=%v cold=%v",
					life, o.WarmStart, o.Salvaged, o.ColdFallback)
			}
		}
		if _, _, err := persist.LoadChain(chain); err != nil {
			c.Errorf("lifetime %d: recovered chain fails strict load: %v", life, err)
			return
		}
		checkNoTmp(c, c.Dir, "recovery")
	}
}
