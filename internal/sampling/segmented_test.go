package sampling

import (
	"testing"

	"atm/internal/region"
)

func TestSegmentedCoversSelection(t *testing.T) {
	ins := []region.Region{
		region.NewFloat64(16), // bytes 0..127
		region.NewFloat32(8),  // bytes 128..159
		region.NewInt32(4),    // bytes 160..175
	}
	l := LayoutOf(ins)
	p := NewPlan(l, 77, true)
	for level := 0; level <= 15; level++ {
		sel := p.Select(PFromLevel(level))
		segs := p.Segmented(level)
		if len(segs) != 3 {
			t.Fatalf("level %d: %d segments", level, len(segs))
		}
		// The segmented offsets are exactly the selected global indexes,
		// re-based per segment.
		got := map[int]bool{}
		starts := []int{0, 128, 160}
		total := 0
		for si, offs := range segs {
			prev := int32(-1)
			for _, off := range offs {
				if off <= prev {
					t.Fatalf("level %d seg %d: offsets not strictly ascending", level, si)
				}
				prev = off
				got[starts[si]+int(off)] = true
				total++
			}
		}
		if total != len(sel) {
			t.Fatalf("level %d: segmented %d bytes, selected %d", level, total, len(sel))
		}
		for _, g := range sel {
			if !got[int(g)] {
				t.Fatalf("level %d: selected byte %d missing from segments", level, g)
			}
		}
	}
}

func TestSegmentedCached(t *testing.T) {
	l := LayoutOf([]region.Region{region.NewFloat64(8)})
	p := NewPlan(l, 1, false)
	a := p.Segmented(5)
	b := p.Segmented(5)
	if len(a) != len(b) || &a[0][0] != &b[0][0] {
		t.Fatal("segmented selections must be cached per level")
	}
}

func TestHashSampleMatchesByteAt(t *testing.T) {
	regions := []region.Region{
		&region.Float64{Data: []float64{1.5, -2.25, 1e-300, 4e17}},
		&region.Float32{Data: []float32{0.5, -1, 3e7, 2e-12}},
		&region.Int32{Data: []int32{1, -5, 1 << 29, -42}},
		&region.Bytes{Data: []byte{9, 8, 7, 6}},
	}
	for _, r := range regions {
		offsets := make([]int32, 0, r.NumBytes())
		for i := 0; i < r.NumBytes(); i += 3 { // strided sample
			offsets = append(offsets, int32(i))
		}
		var got []byte
		r.HashSample(offsets, byteCollector{&got})
		if len(got) != len(offsets) {
			t.Fatalf("%s: %d bytes for %d offsets", r.Kind(), len(got), len(offsets))
		}
		for i, off := range offsets {
			if got[i] != r.ByteAt(int(off)) {
				t.Fatalf("%s: HashSample[%d] != ByteAt(%d)", r.Kind(), i, off)
			}
		}
	}
}

// byteCollector is a WordSink capturing only WriteByte calls.
type byteCollector struct{ dst *[]byte }

func (c byteCollector) WriteByte(b byte) error { *c.dst = append(*c.dst, b); return nil }
func (c byteCollector) WriteUint32(u uint32)   { panic("unexpected word write") }
func (c byteCollector) WriteUint64(u uint64)   { panic("unexpected word write") }
