package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"atm/internal/region"
)

func TestPFromLevelEndpoints(t *testing.T) {
	if p := PFromLevel(MaxPLevel); p != 1 {
		t.Fatalf("level 15 must be p=1, got %v", p)
	}
	if p := PFromLevel(MinPLevel); p != 1.0/32768 {
		t.Fatalf("level 0 must be p=2^-15, got %v", p)
	}
	// Each level doubles p.
	for l := MinPLevel; l < MaxPLevel; l++ {
		if PFromLevel(l+1) != 2*PFromLevel(l) {
			t.Fatalf("level %d->%d must double p", l, l+1)
		}
	}
	// Out-of-range levels clamp.
	if PFromLevel(-3) != PFromLevel(MinPLevel) || PFromLevel(99) != 1 {
		t.Fatal("levels must clamp to [0,15]")
	}
}

func mkLayout(f64, f32, i32 int) (Layout, []region.Region) {
	ins := []region.Region{
		region.NewFloat64(f64),
		region.NewFloat32(f32),
		region.NewInt32(i32),
	}
	return LayoutOf(ins), ins
}

func TestLayoutTotals(t *testing.T) {
	l, _ := mkLayout(2, 3, 4)
	if l.TotalBytes() != 16+12+16 {
		t.Fatalf("TotalBytes=%d", l.TotalBytes())
	}
}

func TestLayoutSignature(t *testing.T) {
	l1, _ := mkLayout(2, 3, 4)
	l2, _ := mkLayout(2, 3, 4)
	if l1.Signature() != l2.Signature() {
		t.Fatal("equal layouts must share a signature")
	}
	l3, _ := mkLayout(2, 3, 5)
	if l1.Signature() == l3.Signature() {
		t.Fatal("different layouts must (practically) differ")
	}
	// Same total size, different element kinds must differ too.
	a := LayoutOf([]region.Region{region.NewFloat64(4)}) // 32 bytes
	b := LayoutOf([]region.Region{region.NewFloat32(8)}) // 32 bytes
	if a.Signature() == b.Signature() {
		t.Fatal("layouts with different element sizes must differ")
	}
}

func isPermutation(order []int32, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if idx < 0 || int(idx) >= n || seen[idx] {
			return false
		}
		seen[idx] = true
	}
	return true
}

func TestPlanIsPermutation(t *testing.T) {
	for _, aware := range []bool{false, true} {
		l, _ := mkLayout(5, 7, 3)
		p := NewPlan(l, 123, aware)
		if !isPermutation(p.Order(), l.TotalBytes()) {
			t.Fatalf("typeAware=%v: order is not a permutation", aware)
		}
	}
}

func TestPlanQuickPermutation(t *testing.T) {
	f := func(n8, n4 uint8, seed uint64, aware bool) bool {
		l := LayoutOf([]region.Region{
			region.NewFloat64(int(n8%16) + 1),
			region.NewInt32(int(n4%16) + 1),
		})
		p := NewPlan(l, seed, aware)
		return isPermutation(p.Order(), l.TotalBytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDeterministicInSeed(t *testing.T) {
	l, _ := mkLayout(8, 8, 8)
	a := NewPlan(l, 5, true).Order()
	b := NewPlan(l, 5, true).Order()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same shuffle")
		}
	}
	c := NewPlan(l, 6, true).Order()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different shuffles")
	}
}

// significanceOf recomputes a byte's distance-from-MSB for the test.
func significanceOf(l Layout, ins []region.Region, global int) int {
	off := global
	for _, in := range ins {
		if off < in.NumBytes() {
			es := in.Kind().Size()
			return es - 1 - off%es
		}
		off -= in.NumBytes()
	}
	panic("out of range")
}

func TestTypeAwareMSBFirst(t *testing.T) {
	// In the type-aware order, all rank-0 (MSB) indexes must precede all
	// rank-1 indexes, and so on (§III-C).
	l, ins := mkLayout(6, 10, 4)
	p := NewPlan(l, 99, true)
	lastRank := -1
	for _, idx := range p.Order() {
		r := significanceOf(l, ins, int(idx))
		if r < lastRank {
			t.Fatalf("rank %d appears after rank %d", r, lastRank)
		}
		lastRank = r
	}
}

func TestTypeAwareProtectsMSBsAtHalfP(t *testing.T) {
	// With only 4-byte elements and p = 50%, exactly the upper two bytes
	// of every element must be selected (the paper's §III-C example).
	ins := []region.Region{region.NewFloat32(8), region.NewInt32(8)}
	l := LayoutOf(ins)
	p := NewPlan(l, 1, true)
	sel := p.Select(0.5)
	if len(sel) != l.TotalBytes()/2 {
		t.Fatalf("selected %d of %d", len(sel), l.TotalBytes())
	}
	for _, idx := range sel {
		if r := significanceOf(l, ins, int(idx)); r > 1 {
			t.Fatalf("selected byte %d has rank %d; p=50%% must keep ranks 0-1 only", idx, r)
		}
	}
}

func TestSelectBounds(t *testing.T) {
	l, _ := mkLayout(4, 0, 0) // 32 bytes
	p := NewPlan(l, 1, false)
	if got := len(p.Select(1)); got != 32 {
		t.Fatalf("p=1 must select all: %d", got)
	}
	if got := len(p.Select(1.0 / 32768)); got != 1 {
		t.Fatalf("tiny p must select at least 1 byte: %d", got)
	}
	if got := len(p.Select(0.5)); got != 16 {
		t.Fatalf("p=0.5 over 32 bytes must select 16: %d", got)
	}
	// Ceiling: 0.3 of 32 = 9.6 -> 10.
	if got := len(p.Select(0.3)); got != 10 {
		t.Fatalf("p=0.3 over 32 bytes must select ceil(9.6)=10: %d", got)
	}
}

func TestSelectPrefixNesting(t *testing.T) {
	// Select(p1) must be a prefix of Select(p2) when p1 <= p2: doubling
	// p during training only extends the sampled byte set.
	l, _ := mkLayout(3, 9, 5)
	p := NewPlan(l, 44, true)
	prev := p.Select(PFromLevel(0))
	for lv := 1; lv <= 15; lv++ {
		cur := p.Select(PFromLevel(lv))
		if len(cur) < len(prev) {
			t.Fatalf("level %d selects fewer bytes than level %d", lv, lv-1)
		}
		for i := range prev {
			if prev[i] != cur[i] {
				t.Fatalf("level %d is not a prefix extension of level %d", lv, lv-1)
			}
		}
		prev = cur
	}
}

func TestResolverMatchesRegions(t *testing.T) {
	ins := []region.Region{
		&region.Float64{Data: []float64{math.Pi, -1}},
		&region.Int32{Data: []int32{7, -9, 1 << 20}},
		&region.Bytes{Data: []byte{3, 1, 4}},
	}
	r := NewResolver(ins)
	if r.TotalBytes() != 16+12+3 {
		t.Fatalf("TotalBytes=%d", r.TotalBytes())
	}
	g := 0
	for _, in := range ins {
		for i := 0; i < in.NumBytes(); i++ {
			if r.ByteAt(g) != in.ByteAt(i) {
				t.Fatalf("resolver byte %d mismatch", g)
			}
			g++
		}
	}
}

func TestResolverPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewResolver([]region.Region{region.NewBytes(2)})
	r.ByteAt(2)
}

func TestEmptyLayout(t *testing.T) {
	l := LayoutOf(nil)
	p := NewPlan(l, 0, true)
	if p.Len() != 0 || p.Select(1) != nil {
		t.Fatal("empty layout must produce an empty plan")
	}
}
