// Package sampling implements ATM's input-byte selection mechanism
// (paper §III-B "Hash Key Generation" and §III-C "Type-aware Input
// Selection").
//
// The task's data inputs are viewed as a single concatenated vector of N
// bytes. A vector of N indexes into that view is shuffled once per task
// type (and cached), and the first ceil(N*p) indexes select the bytes fed
// to the hash key generator, for a percentage 0 < p <= 1.
//
// Two shuffle orders are provided:
//
//   - Plain: a uniform random permutation of all N indexes.
//   - Type-aware: indexes are grouped by byte significance within their
//     element (most significant byte first), each group is shuffled
//     independently, and the groups are concatenated MSB-group first. With
//     p = 50% on 4-byte elements, 2 of the 4 bytes of every element are
//     selected and they are always the upper ones, protecting sign and
//     exponent bits exactly as §III-C describes.
package sampling

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"atm/internal/region"
)

// MinPLevel and MaxPLevel bound the discrete percentage levels used by
// dynamic ATM: level L means p = 2^(L-15), so L=0 is p = 2^-15*100% and
// L=15 is p = 100% (static ATM). 16 configurations, as in Fig. 5.
const (
	MinPLevel = 0
	MaxPLevel = 15
)

// PFromLevel converts a discrete level to the fraction p in (0, 1].
func PFromLevel(level int) float64 {
	if level < MinPLevel {
		level = MinPLevel
	}
	if level > MaxPLevel {
		level = MaxPLevel
	}
	return 1.0 / float64(int64(1)<<uint(MaxPLevel-level))
}

// rng is a splitmix64 PRNG: tiny, fast, and stable across Go releases so
// that cached shuffle plans (and therefore hash keys) are reproducible.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be > 0. It uses Lemire's
// multiply-shift reduction with rejection, so the result is exactly
// uniform — the plain modulo reduction it replaces biased small values by
// up to 2^-32 relative error, which skewed long shuffles.
func (r *rng) intn(n int) int {
	un := uint64(n)
	hi, lo := bits.Mul64(r.next(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.next(), un)
		}
	}
	return int(hi)
}

// Layout describes the concatenated byte view of a task's inputs: one
// segment per input region, in declaration order.
type Layout struct {
	segs  []segment
	total int
}

type segment struct {
	start    int // global byte offset of the segment
	elemSize int // element size in bytes
}

// LayoutOf builds the Layout for a list of input regions.
func LayoutOf(inputs []region.Region) Layout {
	l := Layout{segs: make([]segment, 0, len(inputs))}
	for _, in := range inputs {
		l.segs = append(l.segs, segment{start: l.total, elemSize: in.Kind().Size()})
		l.total += in.NumBytes()
	}
	return l
}

// TotalBytes reports the size N of the concatenated input view.
func (l Layout) TotalBytes() int { return l.total }

// Signature returns a value identifying the layout shape; plans may be
// shared between tasks whose layouts have equal signatures. Two layouts
// with the same signature produce identical shuffle plans.
func (l Layout) Signature() uint64 {
	// FNV-1a over (start, elemSize) pairs.
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(l.total))
	for _, s := range l.segs {
		mix(uint64(s.start))
		mix(uint64(s.elemSize))
	}
	return h
}

// SignatureOf returns the Signature of LayoutOf(inputs) without
// materializing the Layout: the allocation-free form the memoizer's hit
// path uses to find its cached plan.
func SignatureOf(inputs []region.Region) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	total := 0
	for _, in := range inputs {
		total += in.NumBytes()
	}
	mix(uint64(total))
	start := 0
	for _, in := range inputs {
		mix(uint64(start))
		mix(uint64(in.Kind().Size()))
		start += in.NumBytes()
	}
	return h
}

// significance returns the byte's distance from the most significant byte
// of its element: 0 for the MSB, elemSize-1 for the LSB. Regions use
// little-endian byte numbering, so within an element the MSB is the byte
// with the highest local offset.
func (l Layout) significance(global int) int {
	seg := l.findSeg(global)
	off := (global - seg.start) % seg.elemSize
	return seg.elemSize - 1 - off
}

func (l Layout) findSeg(global int) segment {
	return l.segs[l.segIndex(global)]
}

// segIndex returns the index of the segment containing the global byte.
func (l Layout) segIndex(global int) int {
	lo, hi := 0, len(l.segs)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if l.segs[mid].start <= global {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Plan is a cached shuffled index vector for one input layout. The first
// ceil(N*p) entries of Order are the bytes sampled at percentage p.
//
// Plans also cache, per discrete p level, the selected indexes re-sorted
// and split per input segment: hashing a fixed byte set in ascending
// segment order is equivalent to hashing it in shuffle order (the set is
// what matters) and lets regions stream their sampled bytes without
// per-byte dispatch. Each level's table is built once on first use and
// published through an atomic pointer, so the hot hash path reads it
// lock-free (one atomic load + array index) and levels that are never
// sampled — notably level 15, which hashes whole regions — cost nothing.
type Plan struct {
	order  []int32
	layout Layout

	buildMu   sync.Mutex
	segmented [MaxPLevel + 1]atomic.Pointer[[][]int32] // level -> per-segment sorted local offsets
	segRuns   [MaxPLevel + 1]atomic.Pointer[[][]int32] // level -> per-segment (start, len) run pairs
}

// NewPlan builds the shuffle plan for the layout. When typeAware is true
// the type-aware MSB-first order is used; otherwise a plain uniform
// shuffle. seed fixes the permutation (the paper shuffles once per task
// type and stores the result; callers seed with the task-type identity).
func NewPlan(l Layout, seed uint64, typeAware bool) *Plan {
	n := l.total
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	r := &rng{state: seed ^ 0xa02e1f34c7d58b69}
	if !typeAware {
		shuffle(order, r)
		return &Plan{order: order, layout: l}
	}
	// Type-aware: stable-partition indexes by significance rank, then
	// shuffle within each rank. Ranks are bounded by the largest element
	// size (8 bytes for float64).
	maxRank := 0
	for _, s := range l.segs {
		if s.elemSize-1 > maxRank {
			maxRank = s.elemSize - 1
		}
	}
	buckets := make([][]int32, maxRank+1)
	for i := 0; i < n; i++ {
		rk := l.significance(i)
		buckets[rk] = append(buckets[rk], int32(i))
	}
	out := order[:0]
	for rk := 0; rk <= maxRank; rk++ {
		start := len(out)
		out = append(out, buckets[rk]...)
		shuffle(out[start:], r)
	}
	return &Plan{order: out, layout: l}
}

func shuffle(xs []int32, r *rng) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Len reports the total number of indexes (N).
func (p *Plan) Len() int { return len(p.order) }

// Select returns the index prefix for fraction frac in (0, 1]: the first
// ceil(N*frac) shuffled indexes, at least 1 when N > 0. The returned slice
// aliases the plan and must not be modified.
func (p *Plan) Select(frac float64) []int32 {
	n := len(p.order)
	if n == 0 {
		return nil
	}
	k := int(float64(n) * frac)
	if float64(k) < float64(n)*frac {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return p.order[:k]
}

// Order exposes the full shuffled index vector (for tests).
func (p *Plan) Order() []int32 { return p.order }

// Segmented returns, for each input segment of the plan's layout, the
// sorted local byte offsets selected at the given p level. The result is
// built once per level, published atomically, and must not be modified;
// steady-state lookups are lock-free (one atomic load plus an index),
// safe for any number of concurrent readers. Hashing these per-segment
// byte streams (segments in order) is the fast equivalent of hashing
// Select(PFromLevel(level)) in shuffle order.
func (p *Plan) Segmented(level int) [][]int32 {
	if level < MinPLevel {
		level = MinPLevel
	}
	if level > MaxPLevel {
		level = MaxPLevel
	}
	if s := p.segmented[level].Load(); s != nil {
		return *s
	}
	return p.buildSegmented(level)
}

func (p *Plan) buildSegmented(level int) [][]int32 {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	if s := p.segmented[level].Load(); s != nil {
		return *s
	}
	sel := p.Select(PFromLevel(level))
	segs := make([][]int32, len(p.layout.segs))
	for _, g := range sel {
		si := p.layout.segIndex(int(g))
		segs[si] = append(segs[si], g-int32(p.layout.segs[si].start))
	}
	for _, s := range segs {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	p.segmented[level].Store(&segs)
	return segs
}

// SegmentedRuns returns, aligned with Segmented(level), each segment's
// selected offsets re-encoded as flattened (start, length) pairs of
// contiguous runs — or nil for a segment whose selection is run-poor
// (encoding it would not shrink the stream), which callers should hash
// via plain HashSample instead. Built once per level and published
// atomically; the result must not be modified.
func (p *Plan) SegmentedRuns(level int) [][]int32 {
	if level < MinPLevel {
		level = MinPLevel
	}
	if level > MaxPLevel {
		level = MaxPLevel
	}
	if r := p.segRuns[level].Load(); r != nil {
		return *r
	}
	segs := p.Segmented(level)
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	if r := p.segRuns[level].Load(); r != nil {
		return *r
	}
	runs := make([][]int32, len(segs))
	for si, offs := range segs {
		if len(offs) == 0 {
			continue
		}
		var enc []int32
		for i := 0; i < len(offs); {
			j := i + 1
			for j < len(offs) && offs[j] == offs[j-1]+1 {
				j++
			}
			enc = append(enc, offs[i], int32(j-i))
			i = j
		}
		// Worth it only when runs actually compress the stream: an
		// all-singletons encoding would double the metadata and slow the
		// emitter down relative to the plain byte loop.
		if len(enc) <= len(offs) {
			runs[si] = enc
		}
	}
	p.segRuns[level].Store(&runs)
	return runs
}

// Resolver maps global byte indexes of the concatenated view back to
// region bytes. Build one per task instance (cheap: a prefix table).
type Resolver struct {
	inputs []region.Region
	starts []int
}

// NewResolver builds a resolver over the task's inputs. The layout of
// inputs must match the layout the plan was built for.
func NewResolver(inputs []region.Region) Resolver {
	starts := make([]int, len(inputs)+1)
	for i, in := range inputs {
		starts[i+1] = starts[i] + in.NumBytes()
	}
	return Resolver{inputs: inputs, starts: starts}
}

// ByteAt returns byte g of the concatenated input view.
func (r Resolver) ByteAt(g int) byte {
	// Linear scan is fine: tasks have a handful of inputs.
	for i := 1; i < len(r.starts); i++ {
		if g < r.starts[i] {
			return r.inputs[i-1].ByteAt(g - r.starts[i-1])
		}
	}
	panic("sampling: byte index out of range")
}

// TotalBytes reports the concatenated size.
func (r Resolver) TotalBytes() int { return r.starts[len(r.starts)-1] }
