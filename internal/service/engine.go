package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/core"
	"atm/internal/persist"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// Config configures a service Engine.
type Config struct {
	// Workers is the task-runtime worker count (0 = 1, taskrt's rule).
	Workers int
	// Memo is the ATM engine to memoize through; nil runs a plain
	// baseline runtime (every task executes).
	Memo *core.ATM
	// Policy selects the runtime's scheduling discipline.
	Policy taskrt.SchedPolicy
	// Backlog fixes the admission watermark (and the runtime's
	// throttle window) at this many in-flight tasks. Zero selects the
	// adaptive LLC-sized watermark — admission control then tracks the
	// same cache-sized backlog target as the submission throttle.
	Backlog int
	// Coalesce caps the tasks folded into one SubmitBatch call (0 =
	// 512). Larger batches amortize submission cost; smaller ones bound
	// the per-batch completion fence a request may wait behind.
	Coalesce int
	// ResetEvery is the number of engine batches between rt.Reset()
	// calls (0 = 64). Every request's regions are fresh, so dependence
	// state is garbage after each fence; periodic resets keep the
	// runtime's live-slot list bounded on a long-lived server.
	ResetEvery int
	// Save persists the memoization state; it runs on the engine loop
	// (quiesced, serialized with submissions). Nil disables POST
	// /v1/snapshot's default save and periodic saves.
	Save func() error
	// SaveEvery additionally runs Save on this period (0 = never).
	SaveEvery time.Duration
	// KindList overrides the served task-kind catalog (nil = Kinds()).
	KindList []Kind
	// MaxTenants caps the number of distinct tenant namespaces the
	// engine will register, the default catalog tenant included (0 =
	// 64). Each tenant costs one task type per kind it touches plus a
	// THT accounting row, so the cap bounds what untrusted clients can
	// allocate.
	MaxTenants int
}

// Task is one unit of client work: a kind name plus its input vector.
// Tenant selects the memoization namespace ("" = the default catalog
// namespace): tasks of different tenants never share THT entries, and
// with core.Config.TenantShares each tenant's entries are bounded by
// its budget share.
type Task struct {
	Kind   string
	Tenant string
	Input  []float64
}

// GroupStats is the ATM activity of the coalesced engine batch a
// request rode in: requests coalesced into the same batch observe the
// same numbers (per-batch, not per-request, attribution — the price of
// request coalescing, documented in docs/service.md).
type GroupStats struct {
	// Tasks is the batch's task count; Executed of them ran their body,
	// MemoTHT were served from the history table, MemoIKT deduplicated
	// against an identical in-flight task.
	Tasks, Executed, MemoTHT, MemoIKT int64
}

// Counters is the engine's monotonic operational state.
type Counters struct {
	// Requests / Tasks count admitted work; Shed* count work refused at
	// the admission watermark (the 429 path).
	Requests, Tasks         int64
	ShedRequests, ShedTasks int64
	// Batches counts SubmitBatch fences; Lookups/LookupHits the Peek
	// path; Saves completed snapshot saves.
	Batches, Lookups, LookupHits, Saves int64
	// Queued is the current admitted-but-uncompleted task count;
	// BacklogLimit the current admission watermark.
	Queued, BacklogLimit int64
}

// Engine errors.
var (
	// ErrClosed is returned by calls racing or following Close.
	ErrClosed = errors.New("service: engine closed")
	// ErrNoPersistence rejects snapshot requests on an engine built
	// without a Save hook.
	ErrNoPersistence = errors.New("service: engine has no snapshot persistence configured")
)

// OverloadError is the admission-control rejection: the engine's
// in-flight backlog would exceed the watermark. HTTP maps it to
// 429 + Retry-After.
type OverloadError struct {
	Queued, Limit int64
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded (%d tasks queued, limit %d)", e.Queued, e.Limit)
}

// BadTaskError rejects a malformed task before admission (HTTP 400).
type BadTaskError struct{ msg string }

func (e *BadTaskError) Error() string { return "service: " + e.msg }

// Engine is the memoization service core: it owns the task runtime's
// master thread. Concurrent callers (HTTP handler goroutines) enqueue
// task groups through Do; a single loop goroutine coalesces them into
// SubmitBatch calls — request coalescing over the batched submission
// pipeline — runs each batch to its completion fence, and hands the
// outputs back. Admission control reuses the runtime's adaptive
// throttle watermark: work that would push the in-flight backlog past
// it is shed immediately (OverloadError) instead of queueing
// unboundedly, and identical in-flight tasks deduplicate through the
// IKT as in any ATM run.
type Engine struct {
	cfg   Config
	rt    *taskrt.Runtime
	memo  *core.ATM
	kinds map[string]Kind

	// types maps registered task-type names (tenant + "/" + kind) to
	// their runtime types; tenants tracks the distinct tenant names
	// against cfg.MaxTenants. Guarded by typeMu: the catalog tenant is
	// registered at construction, other tenants lazily at admission.
	typeMu  sync.RWMutex
	types   map[string]*taskrt.TaskType
	tenants map[string]bool

	reqs     chan *request
	ctl      chan *ctlReq
	quit     chan struct{}
	loopDone chan struct{}
	closed   atomic.Bool

	queued   atomic.Int64
	requests atomic.Int64
	tasks    atomic.Int64
	shedReqs atomic.Int64
	shedTask atomic.Int64
	batches  atomic.Int64
	lookups  atomic.Int64
	lookHits atomic.Int64
	saves    atomic.Int64

	saveMu  sync.Mutex
	saveErr error
}

type request struct {
	tasks []Task
	outs  [][]float64
	group GroupStats
	err   error
	done  chan struct{}
}

type ctlReq struct {
	path string // "" = the configured Save hook; else whole-table save to path
	err  chan error
}

// New builds the engine and starts its loop. The caller must Close it.
func New(cfg Config) *Engine {
	kindList := cfg.KindList
	if kindList == nil {
		kindList = Kinds()
	}
	if cfg.Coalesce <= 0 {
		cfg.Coalesce = 512
	}
	if cfg.ResetEvery <= 0 {
		cfg.ResetEvery = 64
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	var m taskrt.Memoizer
	if cfg.Memo != nil {
		m = cfg.Memo
	}
	rt := taskrt.New(taskrt.Config{
		Workers:        cfg.Workers,
		Memoizer:       m,
		Policy:         cfg.Policy,
		ThrottleWindow: cfg.Backlog,
	})
	e := &Engine{
		cfg:   cfg,
		rt:    rt,
		memo:  cfg.Memo,
		kinds: make(map[string]Kind, len(kindList)),
		types: make(map[string]*taskrt.TaskType, len(kindList)),
		// The channel outlasts the watermark's hard cap (16384 tasks,
		// one request minimum each), so an admitted request never blocks
		// on the channel itself.
		reqs:     make(chan *request, 32768),
		ctl:      make(chan *ctlReq),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	e.tenants = map[string]bool{}
	for _, k := range kindList {
		e.kinds[k.Name] = k
		// Registering at construction also touches restored type state:
		// snapshot sections install as types register, and a server
		// should surface its warm-start entry count (and per-type
		// metrics) from construction, not from the first request.
		e.typeMu.Lock()
		_, err := e.registerTypeLocked("", k)
		e.typeMu.Unlock()
		if err != nil {
			panic("service: catalog registration exceeded MaxTenants: " + err.Error())
		}
	}
	go e.loop()
	return e
}

// typeName is the task-type name registered for (tenant, kind): the
// tenant namespace prefix core.SplitTenant recognizes. The default
// tenant is the catalog's historical "svc/" prefix, so default-tenant
// snapshots stay compatible.
func typeName(tenant string, k Kind) string {
	if tenant == "" {
		return k.TypeName()
	}
	return tenant + "/" + k.Name
}

// validTenant bounds tenant names: metrics-label- and
// type-name-safe characters only, no '/' (the namespace separator),
// and not the default catalog prefix (which "" already addresses).
func validTenant(t string) error {
	if t == "" {
		return nil
	}
	if t == "svc" {
		return &BadTaskError{msg: `tenant "svc" is the default namespace; omit the tenant instead`}
	}
	if len(t) > 64 {
		return &BadTaskError{msg: fmt.Sprintf("tenant name %q longer than 64 bytes", t[:64])}
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' {
			continue
		}
		return &BadTaskError{msg: fmt.Sprintf("tenant name %q: want [A-Za-z0-9_.-]", t)}
	}
	return nil
}

// taskType returns the registered runtime type for (tenant, kind), or
// nil when that pair was never admitted.
func (e *Engine) taskType(tenant string, k Kind) *taskrt.TaskType {
	e.typeMu.RLock()
	tt := e.types[typeName(tenant, k)]
	e.typeMu.RUnlock()
	return tt
}

// registerType resolves (tenant, kind) to its runtime type,
// registering the type (and the tenant) on first use. The MaxTenants
// cap is enforced here: a request naming one tenant too many is
// rejected before admission.
func (e *Engine) registerType(tenant string, k Kind) (*taskrt.TaskType, error) {
	if tt := e.taskType(tenant, k); tt != nil {
		return tt, nil
	}
	e.typeMu.Lock()
	defer e.typeMu.Unlock()
	return e.registerTypeLocked(tenant, k)
}

func (e *Engine) registerTypeLocked(tenant string, k Kind) (*taskrt.TaskType, error) {
	name := typeName(tenant, k)
	if tt := e.types[name]; tt != nil {
		return tt, nil
	}
	tkey := core.TenantOf(name)
	if !e.tenants[tkey] && len(e.tenants) >= e.cfg.MaxTenants {
		return nil, &BadTaskError{msg: fmt.Sprintf("tenant %q would exceed the %d-tenant limit", tenant, e.cfg.MaxTenants)}
	}
	tt := e.rt.RegisterType(taskrt.TypeConfig{
		Name:    name,
		Memoize: k.Memoize,
		Run: func(t *taskrt.Task) {
			k.Fn(t.Float64s(0), t.Float64s(1))
		},
	})
	if e.memo != nil && k.Memoize {
		e.memo.ChosenLevel(tt)
	}
	e.tenants[tkey] = true
	e.types[name] = tt
	return tt, nil
}

// Runtime exposes the underlying task runtime (tests, stats).
func (e *Engine) Runtime() *taskrt.Runtime { return e.rt }

// Memoizing reports whether an ATM engine is attached.
func (e *Engine) Memoizing() bool { return e.memo != nil }

// Stats snapshots the ATM engine's statistics (zero when baseline).
func (e *Engine) Stats() core.Stats {
	if e.memo == nil {
		return core.Stats{}
	}
	return e.memo.Stats()
}

// KindNames lists the served kinds in catalog order.
func (e *Engine) KindNames() []string {
	names := make([]string, 0, len(e.kinds))
	for _, k := range Kinds() {
		if _, ok := e.kinds[k.Name]; ok {
			names = append(names, k.Name)
		}
	}
	return names
}

// Kind resolves a served kind by wire name.
func (e *Engine) Kind(name string) (Kind, bool) {
	k, ok := e.kinds[name]
	return k, ok
}

// Counters returns the engine's operational counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Requests:     e.requests.Load(),
		Tasks:        e.tasks.Load(),
		ShedRequests: e.shedReqs.Load(),
		ShedTasks:    e.shedTask.Load(),
		Batches:      e.batches.Load(),
		Lookups:      e.lookups.Load(),
		LookupHits:   e.lookHits.Load(),
		Saves:        e.saves.Load(),
		Queued:       e.queued.Load(),
		BacklogLimit: int64(e.rt.BacklogLimit()),
	}
}

// SaveErr returns the most recent snapshot-save failure (periodic or
// requested), nil if none.
func (e *Engine) SaveErr() error {
	e.saveMu.Lock()
	defer e.saveMu.Unlock()
	return e.saveErr
}

func (e *Engine) setSaveErr(err error) {
	e.saveMu.Lock()
	e.saveErr = err
	e.saveMu.Unlock()
}

// validate checks a task group before admission and registers any new
// (tenant, kind) types it names, so the loop goroutine only ever sees
// resolvable tasks.
func (e *Engine) validate(tasks []Task) error {
	if len(tasks) == 0 {
		return &BadTaskError{msg: "empty task list"}
	}
	for i, t := range tasks {
		k, ok := e.kinds[t.Kind]
		if !ok {
			return &BadTaskError{msg: fmt.Sprintf("task %d: unknown kind %q", i, t.Kind)}
		}
		if len(t.Input) != k.In {
			return &BadTaskError{msg: fmt.Sprintf("task %d: kind %q wants %d input floats, got %d", i, t.Kind, k.In, len(t.Input))}
		}
		if err := validTenant(t.Tenant); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
		if _, err := e.registerType(t.Tenant, k); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	return nil
}

// Do submits a group of tasks and blocks until their outputs are
// ready. The group is admitted or shed atomically: on success every
// task's output vector is returned in order, plus the stats of the
// coalesced batch the group rode in; past the watermark it returns
// *OverloadError without queueing anything.
func (e *Engine) Do(tasks []Task) ([][]float64, GroupStats, error) {
	if e.closed.Load() {
		return nil, GroupStats{}, ErrClosed
	}
	if err := e.validate(tasks); err != nil {
		return nil, GroupStats{}, err
	}
	n := int64(len(tasks))
	limit := int64(e.rt.BacklogLimit())
	if q := e.queued.Add(n); q > limit {
		e.queued.Add(-n)
		e.shedReqs.Add(1)
		e.shedTask.Add(n)
		return nil, GroupStats{}, &OverloadError{Queued: q - n, Limit: limit}
	}
	e.requests.Add(1)
	e.tasks.Add(n)
	r := &request{tasks: tasks, done: make(chan struct{})}
	select {
	case e.reqs <- r:
	case <-e.quit:
		e.queued.Add(-n)
		return nil, GroupStats{}, ErrClosed
	}
	select {
	case <-r.done:
		return r.outs, r.group, r.err
	case <-e.loopDone:
		// The loop exited without processing this request (shutdown
		// race): the work never ran.
		return nil, GroupStats{}, ErrClosed
	}
}

// Lookup probes the memoization table for the outputs the engine would
// serve for (kind, input) in the default namespace; see LookupTenant.
func (e *Engine) Lookup(kind string, input []float64) ([]float64, bool, error) {
	return e.LookupTenant("", kind, input)
}

// LookupTenant probes the memoization table for the outputs the engine
// would serve for (tenant, kind, input) right now, without executing
// anything. It runs entirely off the engine loop — a read-side fast
// path. A tenant that never submitted is simply a miss: the read path
// must not allocate namespaces.
func (e *Engine) LookupTenant(tenant, kind string, input []float64) ([]float64, bool, error) {
	k, ok := e.kinds[kind]
	if !ok {
		return nil, false, &BadTaskError{msg: fmt.Sprintf("unknown kind %q", kind)}
	}
	if len(input) != k.In {
		return nil, false, &BadTaskError{msg: fmt.Sprintf("kind %q wants %d input floats, got %d", kind, k.In, len(input))}
	}
	if err := validTenant(tenant); err != nil {
		return nil, false, err
	}
	e.lookups.Add(1)
	if e.memo == nil || !k.Memoize {
		return nil, false, nil
	}
	tt := e.taskType(tenant, k)
	if tt == nil {
		return nil, false, nil
	}
	out := region.NewFloat64(k.Out)
	if !e.memo.Peek(tt, []region.Region{region.WrapFloat64(input)}, []region.Region{out}) {
		return nil, false, nil
	}
	e.lookHits.Add(1)
	return out.Data, true, nil
}

// Snapshot persists the memoization state: path "" runs the configured
// Save hook (the delta-chain saver under harness serve mode); a
// non-empty path writes a whole-table snapshot there. Serialized on
// the engine loop, quiesced at a completion fence.
func (e *Engine) Snapshot(path string) error {
	if e.memo == nil {
		return ErrNoPersistence
	}
	if path == "" && e.cfg.Save == nil {
		return ErrNoPersistence
	}
	c := &ctlReq{path: path, err: make(chan error, 1)}
	select {
	case e.ctl <- c:
	case <-e.loopDone:
		return ErrClosed
	}
	select {
	case err := <-c.err:
		return err
	case <-e.loopDone:
		return ErrClosed
	}
}

// Close drains queued requests, runs a final save (when configured)
// and stops the runtime. It returns the final save's error, if any.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		<-e.loopDone
		return e.SaveErr()
	}
	close(e.quit)
	<-e.loopDone
	e.rt.Close()
	return e.SaveErr()
}

// save runs a snapshot save on the loop goroutine.
func (e *Engine) save(path string) error {
	var err error
	if path == "" {
		err = e.cfg.Save()
	} else {
		var snap *core.Snapshot
		if snap, err = e.memo.Snapshot(); err == nil {
			err = persist.Save(path, snap)
		}
	}
	if err != nil {
		e.setSaveErr(err)
	} else {
		e.saves.Add(1)
	}
	return err
}

// loop is the engine's master goroutine: the only caller of
// SubmitBatch/Wait/Reset, per taskrt's single-submitter contract.
func (e *Engine) loop() {
	defer close(e.loopDone)
	var tick <-chan time.Time
	if e.cfg.Save != nil && e.cfg.SaveEvery > 0 {
		t := time.NewTicker(e.cfg.SaveEvery)
		defer t.Stop()
		tick = t.C
	}
	var sinceReset int
	for {
		select {
		case r := <-e.reqs:
			sinceReset += e.runGroup(r)
			if sinceReset >= e.cfg.ResetEvery {
				// All fresh regions from the drained batches are dead;
				// drop their dependence state so the live-slot list
				// stays bounded over a service lifetime.
				e.rt.Reset()
				sinceReset = 0
			}
		case c := <-e.ctl:
			c.err <- e.save(c.path)
		case <-tick:
			_ = e.save("")
		case <-e.quit:
			for {
				select {
				case r := <-e.reqs:
					e.runGroup(r)
				default:
					if e.cfg.Save != nil {
						_ = e.save("")
					}
					return
				}
			}
		}
	}
}

// statsSum folds the ATM per-type counters the group diff needs.
func (e *Engine) statsSum() GroupStats {
	var g GroupStats
	if e.memo == nil {
		return g
	}
	for _, ts := range e.memo.Stats().Types {
		g.Tasks += ts.Tasks
		g.Executed += ts.Executed
		g.MemoTHT += ts.MemoizedTHT
		g.MemoIKT += ts.MemoizedIKT
	}
	return g
}

// runGroup coalesces the first request with whatever else is already
// queued (up to Coalesce tasks), submits the whole group as one batch,
// runs it to the completion fence and distributes the outputs. Returns
// the number of batches submitted (for the reset cadence).
func (e *Engine) runGroup(first *request) int {
	group := []*request{first}
	total := len(first.tasks)
	for total < e.cfg.Coalesce {
		select {
		case r := <-e.reqs:
			group = append(group, r)
			total += len(r.tasks)
		default:
			goto drained
		}
	}
drained:
	pre := e.statsSum()
	entries := make([]taskrt.BatchEntry, 0, total)
	outRegs := make([]*region.Float64, 0, total)
	for _, r := range group {
		for _, t := range r.tasks {
			k := e.kinds[t.Kind]
			out := region.NewFloat64(k.Out)
			outRegs = append(outRegs, out)
			// Admission registered the (tenant, kind) type; never nil here.
			entries = append(entries, taskrt.Desc(e.taskType(t.Tenant, k),
				taskrt.In(region.WrapFloat64(t.Input)), taskrt.Out(out)))
		}
	}
	e.rt.SubmitBatch(entries)
	e.rt.Wait()
	e.batches.Add(1)

	post := e.statsSum()
	g := GroupStats{
		Tasks:    post.Tasks - pre.Tasks,
		Executed: post.Executed - pre.Executed,
		MemoTHT:  post.MemoTHT - pre.MemoTHT,
		MemoIKT:  post.MemoIKT - pre.MemoIKT,
	}
	i := 0
	for _, r := range group {
		r.outs = make([][]float64, len(r.tasks))
		for j := range r.tasks {
			r.outs[j] = outRegs[i].Data
			i++
		}
		r.group = g
		close(r.done)
	}
	e.queued.Add(-int64(total))
	return 1
}
