package service

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"atm/internal/core"
	"atm/internal/persist"
)

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// TestEngineExecutesCorrectly checks Do's outputs equal the kernel run
// directly — through the full submit/coalesce/fence path, memoized or
// not.
func TestEngineExecutesCorrectly(t *testing.T) {
	for _, memo := range []bool{false, true} {
		var atm *core.ATM
		if memo {
			atm = core.New(core.Config{Mode: core.ModeStatic})
		}
		e := newTestEngine(t, Config{Workers: 2, Memo: atm})
		k, _ := KindByName("lu")
		in := Input(k, 3, 7)
		want := make([]float64, k.Out)
		k.Fn(in, want)
		for rep := 0; rep < 3; rep++ { // repeats exercise the memoized path
			outs, _, err := e.Do([]Task{{Kind: "lu", Input: in}})
			if err != nil {
				t.Fatalf("memo=%v rep=%d: %v", memo, rep, err)
			}
			for i := range want {
				if outs[0][i] != want[i] {
					t.Fatalf("memo=%v rep=%d: output[%d] = %v, want %v", memo, rep, i, outs[0][i], want[i])
				}
			}
		}
	}
}

// TestEngineMemoizes drives the same inputs repeatedly and requires the
// engine to serve later rounds from the table.
func TestEngineMemoizes(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeDynamic})
	e := newTestEngine(t, Config{Workers: 2, Memo: atm})
	k, _ := KindByName("blackscholes")
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Kind: "blackscholes", Input: Input(k, uint64(i%2), 1)}
	}
	var last GroupStats
	for rep := 0; rep < 40; rep++ {
		_, g, err := e.Do(tasks)
		if err != nil {
			t.Fatal(err)
		}
		last = g
	}
	if last.MemoTHT == 0 {
		t.Fatalf("no THT hits after 40 identical rounds: %+v", last)
	}
	c := e.Counters()
	if c.Requests != 40 || c.Tasks != 320 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestEngineSheds fixes a tiny watermark and floods the engine with
// non-memoizable spin tasks from many goroutines: some requests must be
// shed with OverloadError, none may be lost, and every accepted task
// completes.
func TestEngineSheds(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Backlog: 64, Coalesce: 16})
	in := Input(mustKind(t, "spin"), 1, 1)
	// Each request carries 8 spin tasks, so 32 concurrent senders keep
	// up to 256 tasks pending against the 64-task watermark.
	group := make([]Task, 8)
	for i := range group {
		group[i] = Task{Kind: "spin", Input: in}
	}
	var ok, shed, other int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, _, err := e.Do(group)
				mu.Lock()
				var over *OverloadError
				switch {
				case err == nil:
					ok++
				case errors.As(err, &over):
					shed++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected errors: %d", other)
	}
	if shed == 0 {
		t.Fatal("no sheds despite 256 concurrent spin tasks against backlog 64")
	}
	if ok == 0 {
		t.Fatal("everything shed; admission should accept up to the watermark")
	}
	c := e.Counters()
	if c.Queued != 0 {
		t.Fatalf("queued = %d after all requests returned, want 0", c.Queued)
	}
	if c.ShedRequests != shed || c.Requests != ok {
		t.Fatalf("counter mismatch: %+v vs ok=%d shed=%d", c, ok, shed)
	}
}

func mustKind(t *testing.T, name string) Kind {
	t.Helper()
	k, ok := KindByName(name)
	if !ok {
		t.Fatalf("kind %q missing", name)
	}
	return k
}

func TestEngineValidates(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	var bad *BadTaskError
	if _, _, err := e.Do(nil); !errors.As(err, &bad) {
		t.Errorf("empty list: %v", err)
	}
	if _, _, err := e.Do([]Task{{Kind: "nope", Input: []float64{1}}}); !errors.As(err, &bad) {
		t.Errorf("unknown kind: %v", err)
	}
	if _, _, err := e.Do([]Task{{Kind: "lu", Input: []float64{1, 2}}}); !errors.As(err, &bad) {
		t.Errorf("wrong arity: %v", err)
	}
}

func TestEngineLookup(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeStatic})
	e := newTestEngine(t, Config{Workers: 1, Memo: atm})
	k := mustKind(t, "lu")
	in := Input(k, 11, 0)
	if _, hit, err := e.Lookup("lu", in); err != nil || hit {
		t.Fatalf("pre-run lookup: hit=%v err=%v", hit, err)
	}
	outs, _, err := e.Do([]Task{{Kind: "lu", Input: in}})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the type into steady state so the entry is installed.
	var out []float64
	var hit bool
	for rep := 0; rep < 50 && !hit; rep++ {
		if _, _, err = e.Do([]Task{{Kind: "lu", Input: in}}); err != nil {
			t.Fatal(err)
		}
		out, hit, err = e.Lookup("lu", in)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !hit {
		t.Fatal("lookup never hit after repeated executions")
	}
	for i := range out {
		if out[i] != outs[0][i] {
			t.Fatalf("lookup output[%d] = %v, want %v", i, out[i], outs[0][i])
		}
	}
	var bad *BadTaskError
	if _, _, err := e.Lookup("nope", in); !errors.As(err, &bad) {
		t.Errorf("unknown kind lookup: %v", err)
	}
	if _, _, err := e.Lookup("lu", in[:3]); !errors.As(err, &bad) {
		t.Errorf("short input lookup: %v", err)
	}
}

func TestEngineSnapshot(t *testing.T) {
	dir := t.TempDir()
	atm := core.New(core.Config{Mode: core.ModeStatic})
	e := newTestEngine(t, Config{Workers: 1, Memo: atm})
	k := mustKind(t, "stencil")
	for rep := 0; rep < 30; rep++ {
		if _, _, err := e.Do([]Task{{Kind: "stencil", Input: Input(k, 1, 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Snapshot(""); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("pathless snapshot without Save hook: %v", err)
	}
	path := filepath.Join(dir, "svc.atmsnap")
	if err := e.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Types) == 0 {
		t.Fatal("snapshot has no types")
	}
	if c := e.Counters(); c.Saves != 1 {
		t.Fatalf("saves = %d, want 1", c.Saves)
	}
}

func TestEngineSnapshotWithoutMemo(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	if err := e.Snapshot("x"); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("baseline snapshot: %v", err)
	}
}

func TestEngineClose(t *testing.T) {
	e := New(Config{Workers: 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, _, err := e.Do([]Task{{Kind: "lu", Input: make([]float64, 64)}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close: %v", err)
	}
}
