package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"atm/internal/metrics"
)

// The wire API (documented in docs/service.md):
//
//	POST /v1/submit    JSON {"tasks":[{"kind":"...","input":[...]}]} or
//	                   binary application/x-atm-tasks; batched bodies
//	                   coalesce into one SubmitBatch on the engine loop.
//	                   A per-task "tenant" field (or the X-ATM-Tenant
//	                   header for the whole request) selects the
//	                   memoization namespace.
//	GET  /v1/lookup    ?kind=...&input=1,2,... (or &key=N&seed=S):
//	                   memoization probe, never executes; &tenant= (or
//	                   X-ATM-Tenant) scopes the probe.
//	POST /v1/snapshot  optional JSON {"path":"..."}: persist the table.
//	GET  /v1/stats     JSON operational counters + ATM statistics.
//	GET  /metrics      Prometheus text format.
//	GET  /healthz      liveness.
//
// Overload is shed with 429 + Retry-After; malformed bodies get 400.

// maxBodyBytes bounds a submit body (64 tasks of the largest kind fit
// in well under 1 MiB of JSON; 8 MiB leaves generous headroom).
const maxBodyBytes = 8 << 20

// submitRequest is the JSON submit body.
type submitRequest struct {
	Tasks []taskSpec `json:"tasks"`
}

// taskSpec is one task: a kind plus either an explicit input vector or
// a (key, seed) pair the server expands through the deterministic
// workload generator (the form atmload's smoke mode and quick curl
// tests use). Tenant selects the memoization namespace; a request-wide
// default comes from the X-ATM-Tenant header.
type taskSpec struct {
	Kind   string    `json:"kind"`
	Tenant string    `json:"tenant,omitempty"`
	Input  []float64 `json:"input,omitempty"`
	Key    *uint64   `json:"key,omitempty"`
	Seed   uint64    `json:"seed,omitempty"`
}

// submitResponse is the JSON submit reply.
type submitResponse struct {
	Results []taskResult   `json:"results"`
	Batch   batchBreakdown `json:"batch"`
}

type taskResult struct {
	Output []float64 `json:"output"`
}

// batchBreakdown reports the coalesced engine batch's ATM activity
// (per-batch granularity: requests coalesced together see the same
// numbers).
type batchBreakdown struct {
	Tasks    int64 `json:"tasks"`
	Executed int64 `json:"executed"`
	MemoTHT  int64 `json:"memo_tht"`
	MemoIKT  int64 `json:"memo_ikt"`
}

type lookupResponse struct {
	Hit    bool      `json:"hit"`
	Output []float64 `json:"output,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// StatsResponse is the GET /v1/stats JSON shape: the engine's
// operational counters plus the ATM totals a load generator diffs to
// compute warm-hit ratios.
type StatsResponse struct {
	Requests     int64 `json:"requests"`
	Tasks        int64 `json:"tasks"`
	ShedRequests int64 `json:"shed_requests"`
	ShedTasks    int64 `json:"shed_tasks"`
	Batches      int64 `json:"batches"`
	Lookups      int64 `json:"lookups"`
	LookupHits   int64 `json:"lookup_hits"`
	Saves        int64 `json:"saves"`
	Queued       int64 `json:"queued"`
	BacklogLimit int64 `json:"backlog_limit"`

	Memoizing   bool   `json:"memoizing"`
	ATMTasks    int64  `json:"atm_tasks"`
	ATMExecuted int64  `json:"atm_executed"`
	MemoTHT     int64  `json:"memo_tht"`
	MemoIKT     int64  `json:"memo_ikt"`
	THTEntries  int64  `json:"tht_entries"`
	THTBytes    int64  `json:"tht_bytes"`
	THTLookups  int64  `json:"tht_lookups"`
	THTHits     int64  `json:"tht_hits"`
	IKTDefers   int64  `json:"ikt_defers"`
	SaveError   string `json:"save_error,omitempty"`

	// Budget / eviction state (zero when the THT is unbounded):
	// THTEvictions counts every displaced entry, THTBudgetEvictions
	// the subset forced by the byte budget, THTAdmissionRejects inserts
	// refused at admission.
	THTBudgetBytes      int64  `json:"tht_budget_bytes,omitempty"`
	THTEvictionPolicy   string `json:"tht_eviction_policy,omitempty"`
	THTEvictions        int64  `json:"tht_evictions"`
	THTBudgetEvictions  int64  `json:"tht_budget_evictions"`
	THTAdmissionRejects int64  `json:"tht_admission_rejects"`
	// Tenants is the per-tenant THT accounting (present once a
	// non-default tenant registered or a budget is set).
	Tenants []TenantStatsJSON `json:"tenants,omitempty"`
}

// TenantStatsJSON is one tenant's row in GET /v1/stats.
type TenantStatsJSON struct {
	Name        string `json:"name"`
	BudgetBytes int64  `json:"budget_bytes,omitempty"`
	Bytes       int64  `json:"bytes"`
	Entries     int64  `json:"entries"`
	Evictions   int64  `json:"evictions"`
}

// WarmHitRatio is the fraction of ATM-visible tasks served without
// execution — the service's headline cache effectiveness number.
func (s StatsResponse) WarmHitRatio() float64 {
	if s.ATMTasks == 0 {
		return 0
	}
	return float64(s.MemoTHT+s.MemoIKT) / float64(s.ATMTasks)
}

// Sub returns s - prev counter-wise: the per-run diff a load generator
// reports.
func (s StatsResponse) Sub(prev StatsResponse) StatsResponse {
	d := s
	d.Requests -= prev.Requests
	d.Tasks -= prev.Tasks
	d.ShedRequests -= prev.ShedRequests
	d.ShedTasks -= prev.ShedTasks
	d.Batches -= prev.Batches
	d.Lookups -= prev.Lookups
	d.LookupHits -= prev.LookupHits
	d.Saves -= prev.Saves
	d.ATMTasks -= prev.ATMTasks
	d.ATMExecuted -= prev.ATMExecuted
	d.MemoTHT -= prev.MemoTHT
	d.MemoIKT -= prev.MemoIKT
	d.THTLookups -= prev.THTLookups
	d.THTHits -= prev.THTHits
	d.IKTDefers -= prev.IKTDefers
	d.THTEvictions -= prev.THTEvictions
	d.THTBudgetEvictions -= prev.THTBudgetEvictions
	d.THTAdmissionRejects -= prev.THTAdmissionRejects
	return d
}

// Server is the HTTP front-end over an Engine.
type Server struct {
	e     *Engine
	mux   *http.ServeMux
	start time.Time

	submitLat *metrics.Histogram
	lookupLat *metrics.Histogram

	codeMu sync.Mutex
	codes  map[codeKey]int64
}

type codeKey struct {
	route string
	code  int
}

// NewServer wires the routes for an engine. The returned Server is an
// http.Handler.
func NewServer(e *Engine) *Server {
	s := &Server{
		e:         e,
		mux:       http.NewServeMux(),
		start:     time.Now(),
		submitLat: &metrics.Histogram{},
		lookupLat: &metrics.Histogram{},
		codes:     make(map[codeKey]int64),
	}
	s.mux.HandleFunc("POST /v1/submit", s.instrument("submit", s.submitLat, s.handleSubmit))
	s.mux.HandleFunc("GET /v1/lookup", s.instrument("lookup", s.lookupLat, s.handleLookup))
	s.mux.HandleFunc("POST /v1/snapshot", s.instrument("snapshot", nil, s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", nil, s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", nil, s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the response code for the per-route counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route code counter and an
// optional latency histogram.
func (s *Server) instrument(route string, lat *metrics.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		if lat != nil {
			lat.Observe(time.Since(t0))
		}
		s.codeMu.Lock()
		s.codes[codeKey{route: route, code: sw.code}]++
		s.codeMu.Unlock()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps engine errors onto the HTTP status contract:
// validation failures 400, overload 429 + Retry-After, shutdown 503,
// anything else 500.
func writeError(w http.ResponseWriter, err error) {
	var bad *BadTaskError
	var over *OverloadError
	switch {
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case errors.As(err, &over):
		// Shed, don't queue: the client owns the retry. One second is
		// long enough for the engine to drain a full watermark of the
		// cheap kinds many times over.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// resolve expands a taskSpec into a concrete Task. defTenant is the
// request-wide tenant (the X-ATM-Tenant header); a per-task tenant
// overrides it.
func (s *Server) resolve(i int, spec taskSpec, defTenant string) (Task, error) {
	tenant := spec.Tenant
	if tenant == "" {
		tenant = defTenant
	}
	if spec.Input != nil {
		return Task{Kind: spec.Kind, Tenant: tenant, Input: spec.Input}, nil
	}
	if spec.Key == nil {
		return Task{}, &BadTaskError{msg: fmt.Sprintf("task %d: needs either input or key", i)}
	}
	k, ok := s.e.Kind(spec.Kind)
	if !ok {
		return Task{}, &BadTaskError{msg: fmt.Sprintf("task %d: unknown kind %q", i, spec.Kind)}
	}
	return Task{Kind: spec.Kind, Tenant: tenant, Input: Input(k, *spec.Key, spec.Seed)}, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, &BadTaskError{msg: "body: " + err.Error()})
		return
	}
	var tasks []Task
	ct := r.Header.Get("Content-Type")
	defTenant := r.Header.Get("X-ATM-Tenant")
	if strings.HasPrefix(ct, binaryContentType) {
		tasks, err = decodeBinaryTasks(body)
		for i := range tasks {
			// The binary encoding carries no per-task tenant; the header
			// scopes the whole request.
			tasks[i].Tenant = defTenant
		}
	} else {
		var req submitRequest
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			err = &BadTaskError{msg: "malformed JSON body: " + jerr.Error()}
		} else {
			tasks = make([]Task, 0, len(req.Tasks))
			for i, spec := range req.Tasks {
				var t Task
				if t, err = s.resolve(i, spec, defTenant); err != nil {
					break
				}
				tasks = append(tasks, t)
			}
		}
	}
	if err != nil {
		writeError(w, err)
		return
	}
	outs, g, err := s.e.Do(tasks)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := submitResponse{
		Results: make([]taskResult, len(outs)),
		Batch:   batchBreakdown{Tasks: g.Tasks, Executed: g.Executed, MemoTHT: g.MemoTHT, MemoIKT: g.MemoIKT},
	}
	for i, o := range outs {
		resp.Results[i] = taskResult{Output: o}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind := q.Get("kind")
	var input []float64
	switch {
	case q.Get("input") != "":
		for _, f := range strings.Split(q.Get("input"), ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				writeError(w, &BadTaskError{msg: "bad input value: " + err.Error()})
				return
			}
			input = append(input, v)
		}
	case q.Get("key") != "":
		key, err := strconv.ParseUint(q.Get("key"), 10, 64)
		if err != nil {
			writeError(w, &BadTaskError{msg: "bad key: " + err.Error()})
			return
		}
		var seed uint64
		if sstr := q.Get("seed"); sstr != "" {
			if seed, err = strconv.ParseUint(sstr, 10, 64); err != nil {
				writeError(w, &BadTaskError{msg: "bad seed: " + err.Error()})
				return
			}
		}
		k, ok := s.e.Kind(kind)
		if !ok {
			writeError(w, &BadTaskError{msg: fmt.Sprintf("unknown kind %q", kind)})
			return
		}
		input = Input(k, key, seed)
	default:
		writeError(w, &BadTaskError{msg: "lookup needs ?input=... or ?key=..."})
		return
	}
	tenant := q.Get("tenant")
	if tenant == "" {
		tenant = r.Header.Get("X-ATM-Tenant")
	}
	out, hit, err := s.e.LookupTenant(tenant, kind, input)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{Hit: hit, Output: out})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err == nil && len(body) > 0 {
		if jerr := json.Unmarshal(body, &req); jerr != nil {
			writeError(w, &BadTaskError{msg: "malformed JSON body: " + jerr.Error()})
			return
		}
	}
	if err := s.e.Snapshot(req.Path); err != nil {
		if errors.Is(err, ErrNoPersistence) {
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
			return
		}
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"saved": true})
}

// BuildStats assembles the stats JSON (also used by the loadgen's
// before/after diff).
func (s *Server) BuildStats() StatsResponse {
	c := s.e.Counters()
	resp := StatsResponse{
		Requests: c.Requests, Tasks: c.Tasks,
		ShedRequests: c.ShedRequests, ShedTasks: c.ShedTasks,
		Batches: c.Batches, Lookups: c.Lookups, LookupHits: c.LookupHits,
		Saves: c.Saves, Queued: c.Queued, BacklogLimit: c.BacklogLimit,
		Memoizing: s.e.Memoizing(),
	}
	if err := s.e.SaveErr(); err != nil {
		resp.SaveError = err.Error()
	}
	st := s.e.Stats()
	for _, ts := range st.Types {
		resp.ATMTasks += ts.Tasks
		resp.ATMExecuted += ts.Executed
		resp.MemoTHT += ts.MemoizedTHT
		resp.MemoIKT += ts.MemoizedIKT
	}
	resp.THTEntries = st.THTEntries
	resp.THTBytes = st.THTBytes
	resp.THTLookups = st.THTLookups
	resp.THTHits = st.THTHits
	resp.IKTDefers = st.IKTDefers
	resp.THTBudgetBytes = st.THTBudgetBytes
	if st.THTBudgetBytes > 0 {
		resp.THTEvictionPolicy = st.THTEvictionPolicy
	}
	resp.THTEvictions = st.THTEvictions
	resp.THTBudgetEvictions = st.THTBudgetEvictions
	resp.THTAdmissionRejects = st.THTAdmissionRejects
	for _, ts := range st.Tenants {
		resp.Tenants = append(resp.Tenants, TenantStatsJSON{
			Name: ts.Name, BudgetBytes: ts.BudgetBytes,
			Bytes: ts.Bytes, Entries: ts.Entries, Evictions: ts.Evictions,
		})
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.BuildStats())
}

// handleMetrics renders the Prometheus exposition: the engine and HTTP
// counters plus the ATM per-type and table statistics (the metrics
// catalog of docs/service.md).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := metrics.NewProm(w)
	c := s.e.Counters()

	p.Family("atmd_requests_total", "counter", "HTTP requests by route and status code.")
	s.codeMu.Lock()
	keys := make([]codeKey, 0, len(s.codes))
	for k := range s.codes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		p.Sample("atmd_requests_total",
			[]metrics.Label{{Name: "route", Value: k.route}, {Name: "code", Value: strconv.Itoa(k.code)}},
			float64(s.codes[k]))
	}
	s.codeMu.Unlock()

	p.Family("atmd_tasks_total", "counter", "Tasks admitted through /v1/submit.")
	p.Sample("atmd_tasks_total", nil, float64(c.Tasks))
	p.Family("atmd_shed_tasks_total", "counter", "Tasks shed at the admission watermark (429).")
	p.Sample("atmd_shed_tasks_total", nil, float64(c.ShedTasks))
	p.Family("atmd_batches_total", "counter", "Coalesced SubmitBatch fences run by the engine loop.")
	p.Sample("atmd_batches_total", nil, float64(c.Batches))
	p.Family("atmd_snapshot_saves_total", "counter", "Completed snapshot saves.")
	p.Sample("atmd_snapshot_saves_total", nil, float64(c.Saves))
	p.Family("atmd_queue_tasks", "gauge", "Tasks admitted but not yet completed.")
	p.Sample("atmd_queue_tasks", nil, float64(c.Queued))
	p.Family("atmd_backlog_limit_tasks", "gauge", "Current admission watermark (adaptive unless -backlog fixed it).")
	p.Sample("atmd_backlog_limit_tasks", nil, float64(c.BacklogLimit))
	p.Family("atmd_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Sample("atmd_uptime_seconds", nil, time.Since(s.start).Seconds())

	p.Family("atmd_submit_seconds", "histogram", "Server-side /v1/submit latency.")
	p.LatencyHistogram("atmd_submit_seconds", nil, s.submitLat)
	p.Family("atmd_lookup_seconds", "histogram", "Server-side /v1/lookup latency.")
	p.LatencyHistogram("atmd_lookup_seconds", nil, s.lookupLat)

	st := s.e.Stats()
	p.Family("atm_type_tasks_total", "counter", "ATM-visible tasks by type.")
	p.Family("atm_type_executed_total", "counter", "Tasks whose body ran, by type.")
	p.Family("atm_type_memo_tht_total", "counter", "Tasks served from the THT, by type.")
	p.Family("atm_type_memo_ikt_total", "counter", "Tasks deduplicated in flight, by type.")
	p.Family("atm_type_level", "gauge", "Current p level by type (p = 2^(level-15)).")
	for _, ts := range st.Types {
		l := []metrics.Label{{Name: "type", Value: ts.Name}}
		p.Sample("atm_type_tasks_total", l, float64(ts.Tasks))
		p.Sample("atm_type_executed_total", l, float64(ts.Executed))
		p.Sample("atm_type_memo_tht_total", l, float64(ts.MemoizedTHT))
		p.Sample("atm_type_memo_ikt_total", l, float64(ts.MemoizedIKT))
		p.Sample("atm_type_level", l, float64(ts.Level))
	}
	p.Family("atm_tht_entries", "gauge", "Task History Table entries.")
	p.Sample("atm_tht_entries", nil, float64(st.THTEntries))
	p.Family("atm_tht_bytes", "gauge", "Task History Table payload bytes.")
	p.Sample("atm_tht_bytes", nil, float64(st.THTBytes))
	p.Family("atm_tht_lookups_total", "counter", "THT lookups.")
	p.Sample("atm_tht_lookups_total", nil, float64(st.THTLookups))
	p.Family("atm_tht_hits_total", "counter", "THT hits.")
	p.Sample("atm_tht_hits_total", nil, float64(st.THTHits))
	p.Family("atm_tht_evictions_total", "counter", "THT evictions (ring replacements and budget evictions).")
	p.Sample("atm_tht_evictions_total", nil, float64(st.THTEvictions))
	p.Family("atm_tht_budget_bytes", "gauge", "Configured THT memory budget (0 = unbounded).")
	p.Sample("atm_tht_budget_bytes", nil, float64(st.THTBudgetBytes))
	p.Family("atm_tht_budget_evictions_total", "counter", "THT evictions forced by the memory budget.")
	p.Sample("atm_tht_budget_evictions_total", nil, float64(st.THTBudgetEvictions))
	p.Family("atm_tht_admission_rejects_total", "counter", "THT inserts rejected at admission (budget or TinyLFU duel).")
	p.Sample("atm_tht_admission_rejects_total", nil, float64(st.THTAdmissionRejects))
	if len(st.Tenants) > 0 {
		p.Family("atm_tenant_budget_bytes", "gauge", "Per-tenant THT budget share (0 = global budget only).")
		p.Family("atm_tenant_bytes", "gauge", "Per-tenant THT payload bytes.")
		p.Family("atm_tenant_entries", "gauge", "Per-tenant THT entries.")
		p.Family("atm_tenant_evictions_total", "counter", "Per-tenant THT evictions.")
		for _, ts := range st.Tenants {
			name := ts.Name
			if name == "" {
				name = "default"
			}
			l := []metrics.Label{{Name: "tenant", Value: name}}
			p.Sample("atm_tenant_budget_bytes", l, float64(ts.BudgetBytes))
			p.Sample("atm_tenant_bytes", l, float64(ts.Bytes))
			p.Sample("atm_tenant_entries", l, float64(ts.Entries))
			p.Sample("atm_tenant_evictions_total", l, float64(ts.Evictions))
		}
	}
	p.Family("atm_ikt_inserts_total", "counter", "In-flight Key Table inserts.")
	p.Sample("atm_ikt_inserts_total", nil, float64(st.IKTInserts))
	p.Family("atm_ikt_defers_total", "counter", "Tasks deferred to an in-flight provider.")
	p.Sample("atm_ikt_defers_total", nil, float64(st.IKTDefers))
	_ = p.Err()
}

// binaryContentType selects the compact submit encoding: little-endian
//
//	u32 ntasks, then per task: u8 kind-name length, kind name,
//	u32 nfloats, nfloats × f64.
const binaryContentType = "application/x-atm-tasks"

// decodeBinaryTasks parses the binary submit body.
func decodeBinaryTasks(body []byte) ([]Task, error) {
	bad := func(msg string) error { return &BadTaskError{msg: "binary body: " + msg} }
	if len(body) < 4 {
		return nil, bad("truncated count")
	}
	n := binary.LittleEndian.Uint32(body)
	if n == 0 || n > 1<<20 {
		return nil, bad(fmt.Sprintf("implausible task count %d", n))
	}
	off := 4
	tasks := make([]Task, 0, n)
	for i := uint32(0); i < n; i++ {
		if off >= len(body) {
			return nil, bad("truncated kind length")
		}
		kl := int(body[off])
		off++
		if off+kl > len(body) {
			return nil, bad("truncated kind name")
		}
		kind := string(body[off : off+kl])
		off += kl
		if off+4 > len(body) {
			return nil, bad("truncated float count")
		}
		nf := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if nf < 0 || off+8*nf > len(body) {
			return nil, bad("truncated input vector")
		}
		in := make([]float64, nf)
		for j := 0; j < nf; j++ {
			in[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		off += 8 * nf
		tasks = append(tasks, Task{Kind: kind, Input: in})
	}
	if off != len(body) {
		return nil, bad(fmt.Sprintf("%d trailing bytes", len(body)-off))
	}
	return tasks, nil
}

// EncodeBinaryTasks renders tasks in the binary submit encoding (the
// client half, used by atmload's -binary mode and tests).
func EncodeBinaryTasks(tasks []Task) ([]byte, error) {
	buf := make([]byte, 4, 4+len(tasks)*64)
	binary.LittleEndian.PutUint32(buf, uint32(len(tasks)))
	for _, t := range tasks {
		if len(t.Kind) > 255 {
			return nil, fmt.Errorf("kind name too long: %q", t.Kind)
		}
		buf = append(buf, byte(len(t.Kind)))
		buf = append(buf, t.Kind...)
		var nf [4]byte
		binary.LittleEndian.PutUint32(nf[:], uint32(len(t.Input)))
		buf = append(buf, nf[:]...)
		for _, v := range t.Input {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			buf = append(buf, b[:]...)
		}
	}
	return buf, nil
}
