package service

import (
	"math"
	"testing"
)

// TestKindsCatalog pins the catalog's shape: stable order, positive
// arities, unique names, and the memoizable/overload split.
func TestKindsCatalog(t *testing.T) {
	ks := Kinds()
	if len(ks) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]bool{}
	for i, k := range ks {
		if i > 0 && !(ks[i-1].Name < k.Name) {
			t.Errorf("catalog not sorted at %q", k.Name)
		}
		if seen[k.Name] {
			t.Errorf("duplicate kind %q", k.Name)
		}
		seen[k.Name] = true
		if k.In <= 0 || k.Out <= 0 || k.Fn == nil {
			t.Errorf("kind %q: bad shape In=%d Out=%d Fn=%t", k.Name, k.In, k.Out, k.Fn != nil)
		}
	}
	if k, ok := KindByName("spin"); !ok || k.Memoize {
		t.Errorf("spin must exist and be non-memoizable (ok=%v)", ok)
	}
	for _, name := range []string{"blackscholes", "kmeans", "lu", "stencil", "swaptions"} {
		if k, ok := KindByName(name); !ok || !k.Memoize {
			t.Errorf("kind %q must exist and be memoizable (ok=%v)", name, ok)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Error("KindByName accepted unknown name")
	}
}

// TestKernelsTotalAndDeterministic runs every kernel on generated and
// adversarial inputs: outputs must be finite and reproducible — the
// purity contract memoization relies on.
func TestKernelsTotalAndDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		if k.Name == "spin" {
			continue // ~ms per call; covered by the engine overload tests
		}
		for _, in := range [][]float64{
			Input(k, 0, 1),
			Input(k, 123456, 99),
			make([]float64, k.In), // all zeros
			func() []float64 { // hostile: NaN/Inf/huge
				v := make([]float64, k.In)
				for i := range v {
					switch i % 3 {
					case 0:
						v[i] = math.NaN()
					case 1:
						v[i] = math.Inf(1)
					default:
						v[i] = -1e300
					}
				}
				return v
			}(),
		} {
			out1 := make([]float64, k.Out)
			out2 := make([]float64, k.Out)
			k.Fn(in, out1)
			k.Fn(in, out2)
			for i := range out1 {
				if math.IsNaN(out1[i]) || math.IsInf(out1[i], 0) {
					t.Errorf("%s: non-finite output[%d] = %v", k.Name, i, out1[i])
					break
				}
				if out1[i] != out2[i] {
					t.Errorf("%s: nondeterministic output[%d]: %v vs %v", k.Name, i, out1[i], out2[i])
					break
				}
			}
		}
	}
}

func TestInputDeterministic(t *testing.T) {
	k, _ := KindByName("lu")
	a := Input(k, 7, 1)
	b := Input(k, 7, 1)
	c := Input(k, 8, 1)
	d := Input(k, 7, 2)
	if len(a) != k.In {
		t.Fatalf("len = %d, want %d", len(a), k.In)
	}
	same := func(x, y []float64) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same (key, seed) produced different inputs")
	}
	if same(a, c) || same(a, d) {
		t.Error("different key or seed produced identical inputs")
	}
	for i, v := range a {
		if !(v >= 0 && v < 1) {
			t.Fatalf("input[%d] = %v outside [0,1)", i, v)
		}
	}
}

func TestDefaultMixValid(t *testing.T) {
	entries, err := buildMix(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[len(entries)-1].cum; got != 1 {
		t.Errorf("cumulative mix ends at %v, want 1", got)
	}
	for _, e := range entries {
		if e.kind.Name == "spin" {
			t.Error("default mix must not include spin")
		}
	}
	if _, err := buildMix(map[string]float64{"nope": 1}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := buildMix(map[string]float64{"lu": -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := buildMix(map[string]float64{"lu": 0}); err == nil {
		t.Error("empty effective mix accepted")
	}
}
