package service

import (
	"net/http/httptest"
	"testing"
	"time"

	"atm/internal/core"
)

// TestLoadgenWarmHits is the atmload-vs-atmd smoke: an open-loop run
// over a tiny key space against a memoizing server must finish cleanly
// and report a positive warm-hit ratio.
func TestLoadgenWarmHits(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeDynamic})
	e := newTestEngine(t, Config{Workers: 2, Memo: atm})
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		URL:      ts.URL,
		Rate:     5000,
		Requests: 600,
		Batch:    4,
		Keys:     8, // tiny key space: repeats arrive almost immediately
		Seed:     1,
		InFlight: 16,
		Timeout:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.OK+rep.Shed != int64(rep.Requests) {
		t.Fatalf("ok %d + shed %d != requests %d", rep.OK, rep.Shed, rep.Requests)
	}
	if rep.WarmHitRatio <= 0 {
		t.Fatalf("warm-hit ratio %.4f, want > 0 (server diff: %+v)", rep.WarmHitRatio, rep.Server)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v", rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	if rep.Server.Tasks != rep.Tasks {
		t.Fatalf("server saw %d tasks, client sent %d", rep.Server.Tasks, rep.Tasks)
	}
}

// TestLoadgenShedsUnderOverload reproduces the CI overload probe in
// miniature: spin-only traffic against a tiny fixed watermark must shed.
func TestLoadgenShedsUnderOverload(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Backlog: 64, Coalesce: 16})
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		URL:      ts.URL,
		Rate:     4000,
		Requests: 400,
		Mix:      map[string]float64{"spin": 1},
		Keys:     1 << 30, // effectively unique inputs
		Seed:     2,
		InFlight: 128,
		Timeout:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.Shed == 0 {
		t.Fatalf("no sheds: %+v", rep)
	}
	if rep.Server.ShedRequests != rep.Shed {
		t.Fatalf("server counted %d sheds, client saw %d", rep.Server.ShedRequests, rep.Shed)
	}
}

func TestLoadgenKeyedAndBinaryAgree(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeStatic})
	e := newTestEngine(t, Config{Workers: 1, Memo: atm})
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	base := LoadConfig{
		URL: ts.URL, Rate: 10000, Requests: 100, Batch: 2,
		Keys: 4, Seed: 3, InFlight: 8, Timeout: time.Minute,
	}
	for name, mod := range map[string]func(*LoadConfig){
		"keyed":  func(c *LoadConfig) { c.KeyedBody = true },
		"binary": func(c *LoadConfig) { c.Binary = true },
	} {
		cfg := base
		mod(&cfg)
		rep, err := RunLoad(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Errors != 0 || rep.OK != 100 {
			t.Fatalf("%s: ok=%d errors=%d (first: %s)", name, rep.OK, rep.Errors, rep.FirstError)
		}
	}
}
