package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atm/internal/metrics"
)

// Open-loop load generator (the client half of the service layer,
// behind cmd/atmload). Open-loop means arrivals follow a fixed
// schedule that does not slow down when the server does: request i's
// intended send time is start + i/rate, and its latency is measured
// from that intended time to completion. A server that falls behind
// therefore shows the queueing delay in the reported percentiles
// instead of silently throttling the generator — the coordinated-
// omission-free measurement the service docs call for.

// LoadConfig configures one load run.
type LoadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Rate is the intended arrival rate in requests/second.
	Rate float64
	// Requests is the total HTTP request count.
	Requests int
	// Batch is the number of tasks per request body (0 = 1).
	Batch int
	// Mix weights task kinds by wire name (nil = DefaultMix()).
	// Weights are normalized; unknown names are an error.
	Mix map[string]float64
	// Keys is the key-space cardinality per kind (0 = 1024). Smaller
	// key spaces repeat inputs sooner and drive the warm-hit ratio up.
	Keys uint64
	// Seed seeds both kind selection and input generation.
	Seed uint64
	// InFlight caps concurrent HTTP requests (0 = 128). When the cap is
	// hit, requests queue but keep their intended arrival timestamps.
	InFlight int
	// Timeout bounds each HTTP request (0 = 30s).
	Timeout time.Duration
	// Binary selects the application/x-atm-tasks body encoding.
	Binary bool
	// KeyedBody sends {kind, key, seed} specs instead of expanded input
	// vectors, letting the server run the generator (smaller bodies).
	KeyedBody bool
}

// LoadReport is the result of a load run (serialized as atmload's JSON
// report).
type LoadReport struct {
	Requests   int     `json:"requests"`
	Tasks      int64   `json:"tasks"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	Errors     int64   `json:"errors"`
	DurationMS float64 `json:"duration_ms"`
	// OfferedRate is the configured arrival rate; AchievedRate the
	// completed-request throughput over the run.
	OfferedRate  float64 `json:"offered_rate_rps"`
	AchievedRate float64 `json:"achieved_rate_rps"`

	// Latency percentiles in milliseconds, measured from each request's
	// intended arrival time (not its actual send time).
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	// Server is the /v1/stats diff across the run; WarmHitRatio its
	// memoized fraction of ATM-visible tasks.
	Server       StatsResponse `json:"server"`
	WarmHitRatio float64       `json:"warm_hit_ratio"`
	// FirstError samples the first non-shed failure for diagnosis.
	FirstError string `json:"first_error,omitempty"`
}

// mixEntry is one kind's slot in the cumulative selection table.
type mixEntry struct {
	kind Kind
	cum  float64
}

// buildMix normalizes a mix into a cumulative table over sorted names.
func buildMix(mix map[string]float64) ([]mixEntry, error) {
	if mix == nil {
		mix = DefaultMix()
	}
	names := make([]string, 0, len(mix))
	var total float64
	for name, w := range mix {
		if w < 0 {
			return nil, fmt.Errorf("loadgen: negative weight for %q", name)
		}
		if w == 0 {
			continue
		}
		if _, ok := KindByName(name); !ok {
			return nil, fmt.Errorf("loadgen: unknown kind %q in mix", name)
		}
		names = append(names, name)
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	sort.Strings(names)
	entries := make([]mixEntry, 0, len(names))
	var cum float64
	for _, name := range names {
		k, _ := KindByName(name)
		cum += mix[name] / total
		entries = append(entries, mixEntry{kind: k, cum: cum})
	}
	entries[len(entries)-1].cum = 1 // absorb rounding
	return entries, nil
}

// pick selects a kind from the cumulative table by a uniform u in [0,1).
func pick(entries []mixEntry, u float64) Kind {
	for _, e := range entries {
		if u < e.cum {
			return e.kind
		}
	}
	return entries[len(entries)-1].kind
}

// FetchStats GETs url's /v1/stats.
func FetchStats(client *http.Client, url string) (StatsResponse, error) {
	var s StatsResponse
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// RunLoad executes the configured run and reports.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Requests <= 0 {
		return LoadReport{}, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.Rate <= 0 {
		return LoadReport{}, fmt.Errorf("loadgen: Rate must be positive")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1024
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = 128
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	entries, err := buildMix(cfg.Mix)
	if err != nil {
		return LoadReport{}, err
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.InFlight + 8,
			MaxIdleConnsPerHost: cfg.InFlight + 8,
		},
	}

	before, err := FetchStats(client, cfg.URL)
	if err != nil {
		return LoadReport{}, fmt.Errorf("loadgen: server unreachable: %w", err)
	}

	type job struct {
		index    int
		intended time.Time
	}
	jobs := make(chan job, 4096)
	hist := &metrics.Histogram{}
	var ok, shed, errs, tasksSent atomic.Int64
	var firstErrMu sync.Mutex
	var firstErr string
	noteErr := func(msg string) {
		errs.Add(1)
		firstErrMu.Lock()
		if firstErr == "" {
			firstErr = msg
		}
		firstErrMu.Unlock()
	}

	// body builds request i's payload; every task of the request draws
	// its kind and key from a per-index splitmix stream, so the run is
	// reproducible from (Seed, Mix, Keys, Batch) alone.
	body := func(i int) (payload []byte, contentType string, err error) {
		s := splitmix64(cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
		specs := make([]taskSpec, cfg.Batch)
		tasks := make([]Task, 0, cfg.Batch)
		for j := 0; j < cfg.Batch; j++ {
			s = splitmix64(s)
			k := pick(entries, float64(s>>11)/(1<<53))
			s = splitmix64(s)
			key := s % cfg.Keys
			if cfg.KeyedBody {
				kc := key
				specs[j] = taskSpec{Kind: k.Name, Key: &kc, Seed: cfg.Seed}
			} else {
				tasks = append(tasks, Task{Kind: k.Name, Input: Input(k, key, cfg.Seed)})
			}
		}
		if cfg.Binary {
			b, err := EncodeBinaryTasks(tasks)
			return b, binaryContentType, err
		}
		if cfg.KeyedBody {
			b, err := json.Marshal(submitRequest{Tasks: specs})
			return b, "application/json", err
		}
		for j, t := range tasks {
			specs[j] = taskSpec{Kind: t.Kind, Input: t.Input}
		}
		b, err := json.Marshal(submitRequest{Tasks: specs})
		return b, "application/json", err
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.InFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				payload, ct, berr := body(j.index)
				if berr != nil {
					noteErr(berr.Error())
					continue
				}
				resp, rerr := client.Post(cfg.URL+"/v1/submit", ct, bytes.NewReader(payload))
				if rerr != nil {
					noteErr(rerr.Error())
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					tasksSent.Add(int64(cfg.Batch))
					hist.Observe(time.Since(j.intended))
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					noteErr(fmt.Sprintf("HTTP %d", resp.StatusCode))
				}
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	for i := 0; i < cfg.Requests; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		jobs <- job{index: i, intended: intended}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := FetchStats(client, cfg.URL)
	if err != nil {
		return LoadReport{}, fmt.Errorf("loadgen: final stats fetch: %w", err)
	}
	diff := after.Sub(before)

	r := LoadReport{
		Requests:     cfg.Requests,
		Tasks:        tasksSent.Load(),
		OK:           ok.Load(),
		Shed:         shed.Load(),
		Errors:       errs.Load(),
		DurationMS:   float64(elapsed) / float64(time.Millisecond),
		OfferedRate:  cfg.Rate,
		AchievedRate: float64(ok.Load()) / elapsed.Seconds(),
		P50MS:        ms(hist.Quantile(0.50)),
		P90MS:        ms(hist.Quantile(0.90)),
		P99MS:        ms(hist.Quantile(0.99)),
		P999MS:       ms(hist.Quantile(0.999)),
		MaxMS:        ms(hist.Max()),
		MeanMS:       ms(hist.Mean()),
		Server:       diff,
		WarmHitRatio: diff.WarmHitRatio(),
		FirstError:   firstErr,
	}
	return r, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
