// Package service turns the ATM engine into a network-facing
// memoization service: a catalog of task kinds clients can submit
// (workload.go), a single-master engine loop that coalesces concurrent
// requests into SubmitBatch calls and sheds load past the adaptive
// throttle watermark (engine.go), the HTTP front-end behind cmd/atmd
// (http.go), and the open-loop load generator behind cmd/atmload
// (loadgen.go). See docs/service.md for the wire API, the backpressure
// semantics and the metrics catalog.
package service

import (
	"math"
	"sort"
)

// Kind is one service task kind: a pure float64-vector kernel with
// fixed input and output arity. The kernels are scaled-down versions of
// the paper's five evaluated applications (Table I) — the same
// compute shapes the harness benchmarks, repackaged as per-request
// units a network client can submit — plus a deliberately expensive
// `spin` kind for overload testing.
//
// Every kernel is a total, deterministic function of its input vector
// (finite inputs produce finite outputs, no global state), which is
// exactly the §III-E purity contract ATM's memoization requires.
type Kind struct {
	// Name is the wire name clients use ("blackscholes", "lu", ...).
	Name string
	// In and Out are the input/output vector lengths in float64s.
	In, Out int
	// Memoize marks the kind as ATM-eligible (the §III-E programmer
	// guidance). Non-memoizable kinds always execute.
	Memoize bool
	// Fn computes out from in. len(in) == In, len(out) == Out.
	Fn func(in, out []float64)
}

// TypeName returns the task-type name the engine registers for the
// kind. The svc/ prefix keeps service types distinct from the paper
// benchmarks' type names inside shared snapshot files.
func (k Kind) TypeName() string { return "svc/" + k.Name }

// Kernel sizing: small enough that one task is a sub-millisecond unit
// of work, large enough that the kernels dominate request framing.
const (
	bsOptions   = 16      // blackscholes: options per task
	swapCurve   = 32      // swaptions: forward-curve points per task
	stencilDim  = 16      // stencil: grid side
	stencilIter = 8       // stencil: jacobi sweeps per task
	kmClusters  = 8       // kmeans: centroids
	kmPoints    = 48      // kmeans: points per task
	kmDims      = 4       // kmeans: dimensions
	luDim       = 8       // lu: matrix side
	spinIters   = 1 << 21 // spin: fma iterations (~1-2ms)
)

// Kinds returns the catalog in stable (alphabetical) order.
func Kinds() []Kind {
	ks := []Kind{
		{Name: "blackscholes", In: bsOptions * 5, Out: bsOptions, Memoize: true, Fn: bsKernel},
		{Name: "kmeans", In: kmClusters*kmDims + kmPoints*kmDims, Out: kmClusters * kmDims, Memoize: true, Fn: kmeansKernel},
		{Name: "lu", In: luDim * luDim, Out: luDim * luDim, Memoize: true, Fn: luKernel},
		{Name: "spin", In: 8, Out: 1, Memoize: false, Fn: spinKernel},
		{Name: "stencil", In: stencilDim * stencilDim, Out: stencilDim * stencilDim, Memoize: true, Fn: stencilKernel},
		{Name: "swaptions", In: swapCurve, Out: 2, Memoize: true, Fn: swaptionsKernel},
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// KindByName resolves a wire name against the catalog.
func KindByName(name string) (Kind, bool) {
	for _, k := range Kinds() {
		if k.Name == name {
			return k, true
		}
	}
	return Kind{}, false
}

// splitmix64 is the input generator's PRNG step (same generator the
// deterministic scheduler uses): one 64-bit state in, one output out.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 hashes a kind name into the generator stream.
func fnv64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Input builds the deterministic input vector for (kind, key, seed):
// the same triple always yields the same bytes, so a client re-sending
// a key re-hits the memoized entry, and the key-space cardinality of a
// workload directly controls its warm-hit ratio. Values are uniform in
// [0, 1); the kernels scale them into their own domains.
func Input(k Kind, key, seed uint64) []float64 {
	in := make([]float64, k.In)
	s := splitmix64(seed^fnv64(k.Name)) + key
	for i := range in {
		s = splitmix64(s)
		in[i] = float64(s>>11) / (1 << 53)
	}
	return in
}

// DefaultMix is atmload's default workload mix over the memoizable
// kinds, weighted toward the cheap kernels like real lookup-heavy
// traffic.
func DefaultMix() map[string]float64 {
	return map[string]float64{
		"blackscholes": 0.30,
		"stencil":      0.20,
		"kmeans":       0.20,
		"swaptions":    0.15,
		"lu":           0.15,
	}
}

// clamp01 maps any finite float into [0, 1] (NaN to 0), keeping the
// kernels total on arbitrary client inputs.
func clamp01(v float64) float64 {
	if !(v > 0) { // catches NaN too
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// normCDF is the standard normal CDF via math.Erf.
func normCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// bsKernel prices bsOptions European calls: in holds (S, K, r, v, T)
// per option scaled from [0,1), out the Black-Scholes prices.
func bsKernel(in, out []float64) {
	for i := 0; i < bsOptions; i++ {
		p := in[i*5 : i*5+5]
		s := 10 + 90*clamp01(p[0])     // spot 10..100
		k := 10 + 90*clamp01(p[1])     // strike 10..100
		r := 0.01 + 0.09*clamp01(p[2]) // rate 1..10%
		v := 0.05 + 0.45*clamp01(p[3]) // vol 5..50%
		t := 0.1 + 1.9*clamp01(p[4])   // expiry 0.1..2y
		srt := v * math.Sqrt(t)
		d1 := (math.Log(s/k) + (r+v*v/2)*t) / srt
		d2 := d1 - srt
		out[i] = s*normCDF(d1) - k*math.Exp(-r*t)*normCDF(d2)
	}
}

// swaptionsKernel runs a deterministic pseudo-Monte-Carlo swaption
// valuation over a 32-point forward curve: the path noise is drawn from
// a splitmix stream seeded by the input bits themselves, so the result
// stays a pure function of the inputs. out is (price, spread).
func swaptionsKernel(in, out []float64) {
	var seed uint64
	var mean float64
	for i, v := range in {
		c := clamp01(v)
		mean += c
		seed = splitmix64(seed ^ math.Float64bits(c) ^ uint64(i))
	}
	mean /= float64(len(in))
	const paths = 64
	var sum, sumSq float64
	for p := 0; p < paths; p++ {
		rate := 0.01 + 0.05*mean
		var payoff float64
		for step := 0; step < 16; step++ {
			seed = splitmix64(seed)
			z := float64(seed>>11)/(1<<53) - 0.5 // uniform noise in [-0.5, 0.5)
			rate += 0.002 * z
			if rate < 0.0001 {
				rate = 0.0001
			}
			payoff += math.Max(rate-0.03, 0) / math.Pow(1+rate, float64(step+1))
		}
		sum += payoff
		sumSq += payoff * payoff
	}
	price := sum / paths
	out[0] = price
	out[1] = math.Sqrt(math.Abs(sumSq/paths - price*price))
}

// stencilKernel runs stencilIter Jacobi sweeps over a stencilDim² grid
// with fixed boundary values (the heat-diffusion shape of the paper's
// Jacobi benchmark).
func stencilKernel(in, out []float64) {
	n := stencilDim
	cur := make([]float64, len(in))
	for i, v := range in {
		cur[i] = clamp01(v)
	}
	next := make([]float64, len(in))
	for it := 0; it < stencilIter; it++ {
		copy(next, cur) // boundary rows/cols carry through
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				next[r*n+c] = 0.25 * (cur[(r-1)*n+c] + cur[(r+1)*n+c] + cur[r*n+c-1] + cur[r*n+c+1])
			}
		}
		cur, next = next, cur
	}
	copy(out, cur)
}

// kmeansKernel performs one Lloyd iteration: in holds kmClusters
// centroids then kmPoints points (kmDims each); out the updated
// centroids. Empty clusters keep their previous centroid.
func kmeansKernel(in, out []float64) {
	clamped := make([]float64, len(in))
	for i, v := range in {
		clamped[i] = clamp01(v)
	}
	cents := clamped[:kmClusters*kmDims]
	points := clamped[kmClusters*kmDims:]
	var sums [kmClusters * kmDims]float64
	var counts [kmClusters]int
	for p := 0; p < kmPoints; p++ {
		pt := points[p*kmDims : (p+1)*kmDims]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < kmClusters; c++ {
			var d float64
			for j := 0; j < kmDims; j++ {
				diff := pt[j] - cents[c*kmDims+j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		for j := 0; j < kmDims; j++ {
			sums[best*kmDims+j] += pt[j]
		}
		counts[best]++
	}
	for c := 0; c < kmClusters; c++ {
		for j := 0; j < kmDims; j++ {
			if counts[c] > 0 {
				out[c*kmDims+j] = sums[c*kmDims+j] / float64(counts[c])
			} else {
				out[c*kmDims+j] = cents[c*kmDims+j]
			}
		}
	}
}

// luKernel factorizes a luDim² matrix in place (combined unit-lower L
// and U, the paper's SparseLU block shape). The input is made strictly
// diagonally dominant first so the pivotless factorization is total.
func luKernel(in, out []float64) {
	n := luDim
	for i, v := range in {
		out[i] = clamp01(v)
	}
	for i := 0; i < n; i++ {
		out[i*n+i] += float64(n) // diagonal dominance: no zero pivots
	}
	for k := 0; k < n; k++ {
		piv := out[k*n+k]
		for i := k + 1; i < n; i++ {
			out[i*n+k] /= piv
			f := out[i*n+k]
			for j := k + 1; j < n; j++ {
				out[i*n+j] -= f * out[k*n+j]
			}
		}
	}
}

// spinKernel burns a fixed ~1-2ms of floating-point work regardless of
// input: the overload kind, used to drive the server past its
// admission watermark in backpressure tests. Not memoizable, so every
// submission pays the full cost.
func spinKernel(in, out []float64) {
	x := clamp01(in[0]) + 1.1
	acc := 0.0
	for i := 0; i < spinIters; i++ {
		acc = acc*0.999999 + x
	}
	out[0] = acc
}
