package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atm/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, cfg)
	s := NewServer(e)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPSubmitAndLookup(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeStatic})
	_, ts := newTestServer(t, Config{Workers: 2, Memo: atm})

	// Submit by key: the server expands the input deterministically.
	var sub submitResponse
	var hits int64
	for rep := 0; rep < 40; rep++ {
		resp, body := postJSON(t, ts.URL+"/v1/submit", `{"tasks":[{"kind":"lu","key":5,"seed":2},{"kind":"lu","key":6,"seed":2}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		hits += sub.Batch.MemoTHT
	}
	if len(sub.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(sub.Results))
	}
	k, _ := KindByName("lu")
	if len(sub.Results[0].Output) != k.Out {
		t.Fatalf("output len = %d, want %d", len(sub.Results[0].Output), k.Out)
	}
	if hits == 0 {
		t.Fatal("no THT hits over 40 identical submits")
	}

	// The equivalent explicit-input submit returns the same outputs.
	in := Input(k, 5, 2)
	inJSON, _ := json.Marshal(in)
	resp, body := postJSON(t, ts.URL+"/v1/submit", fmt.Sprintf(`{"tasks":[{"kind":"lu","input":%s}]}`, inJSON))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var sub2 submitResponse
	if err := json.Unmarshal(body, &sub2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sub2.Results[0].Output) != fmt.Sprint(sub.Results[0].Output) {
		t.Fatal("keyed and explicit submits disagree")
	}

	// Lookup by key must hit now.
	lresp, lbody := getBody(t, ts.URL+"/v1/lookup?kind=lu&key=5&seed=2")
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("lookup: HTTP %d: %s", lresp.StatusCode, lbody)
	}
	var lr lookupResponse
	if err := json.Unmarshal(lbody, &lr); err != nil {
		t.Fatal(err)
	}
	if !lr.Hit || len(lr.Output) != k.Out {
		t.Fatalf("lookup: hit=%v len=%d", lr.Hit, len(lr.Output))
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPSubmitBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	k, _ := KindByName("swaptions")
	in := Input(k, 9, 9)
	payload, err := EncodeBinaryTasks([]Task{{Kind: "swaptions", Input: in}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/submit", binaryContentType, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary submit: HTTP %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, k.Out)
	k.Fn(in, want)
	for i := range want {
		if sub.Results[0].Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v", i, sub.Results[0].Output[i], want[i])
		}
	}

	// Truncated bodies are 400, not a hang or a 500.
	for cut := 0; cut < len(payload); cut += 7 {
		resp, err := http.Post(ts.URL+"/v1/submit", binaryContentType, bytes.NewReader(payload[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("truncated at %d: HTTP %d, want 400", cut, resp.StatusCode)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`not json at all`,
		`{"tasks":[]}`,
		`{"tasks":[{"kind":"nope","input":[1]}]}`,
		`{"tasks":[{"kind":"lu","input":[1,2,3]}]}`, // wrong arity
		`{"tasks":[{"kind":"lu"}]}`,                 // neither input nor key
		`{"tasks":[{"kind":"nope","key":1}]}`,       // unknown kind via key
	}
	for _, body := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/submit", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d (%s), want 400", body, resp.StatusCode, b)
		}
		var er errorResponse
		if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
			t.Errorf("body %q: error response %q not JSON", body, b)
		}
	}
	for _, url := range []string{
		"/v1/lookup?kind=lu",           // no input or key
		"/v1/lookup?kind=lu&input=a,b", // unparsable floats
		"/v1/lookup?kind=lu&key=x",     // unparsable key
		"/v1/lookup?kind=nope&key=1",   // unknown kind
		"/v1/lookup?kind=lu&input=1,2", // wrong arity
	} {
		resp, _ := getBody(t, ts.URL+url)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", url, resp.StatusCode)
		}
	}
}

// TestHTTPShed floods a tiny fixed watermark with non-memoizable spin
// tasks: some requests must come back 429 with Retry-After.
func TestHTTPShed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Backlog: 64, Coalesce: 16})
	in := Input(mustKind(t, "spin"), 1, 1)
	inJSON, _ := json.Marshal(in)
	// 8 spin tasks per request: 32 concurrent senders keep up to 256
	// tasks pending against the 64-task watermark.
	one := fmt.Sprintf(`{"kind":"spin","input":%s}`, inJSON)
	body := `{"tasks":[` + strings.Repeat(one+",", 7) + one + `]}`

	type result struct {
		code       int
		retryAfter string
	}
	results := make(chan result, 256)
	for g := 0; g < 32; g++ {
		go func() {
			for i := 0; i < 8; i++ {
				resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader(body))
				if err != nil {
					results <- result{code: -1}
					continue
				}
				resp.Body.Close()
				results <- result{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			}
		}()
	}
	var ok, shed int
	for i := 0; i < 256; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if shed == 0 || ok == 0 {
		t.Fatalf("ok=%d shed=%d: want both nonzero", ok, shed)
	}

	// The shed shows up in stats and metrics.
	_, sb := getBody(t, ts.URL+"/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.ShedRequests != int64(shed) {
		t.Errorf("stats shed_requests = %d, want %d", st.ShedRequests, shed)
	}
	_, mb := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(mb), `atmd_requests_total{route="submit",code="429"}`) {
		t.Error("metrics missing the 429 series")
	}
}

func TestHTTPMetricsAndStats(t *testing.T) {
	atm := core.New(core.Config{Mode: core.ModeDynamic})
	s, ts := newTestServer(t, Config{Workers: 1, Memo: atm})
	for rep := 0; rep < 10; rep++ {
		postJSON(t, ts.URL+"/v1/submit", `{"tasks":[{"kind":"stencil","key":1}]}`)
	}
	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE atmd_requests_total counter",
		`atmd_requests_total{route="submit",code="200"} 10`,
		"atmd_tasks_total 10",
		"# TYPE atmd_submit_seconds histogram",
		"atmd_submit_seconds_count 10",
		`atm_type_tasks_total{type="svc/stencil"} 10`,
		"atm_tht_entries",
		"atmd_backlog_limit_tasks",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	st := s.BuildStats()
	if st.Requests != 10 || st.Tasks != 10 || st.ATMTasks != 10 {
		t.Errorf("stats: %+v", st)
	}
	if !st.Memoizing {
		t.Error("stats: memoizing false with an ATM attached")
	}
	diff := st.Sub(StatsResponse{Requests: 4, ATMTasks: 4})
	if diff.Requests != 6 || diff.ATMTasks != 6 {
		t.Errorf("diff: %+v", diff)
	}

	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestHTTPSnapshotNoPersistence(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without persistence: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	k, _ := KindByName("kmeans")
	tasks := []Task{
		{Kind: "kmeans", Input: Input(k, 1, 2)},
		{Kind: "lu", Input: Input(mustKind(t, "lu"), 3, 4)},
	}
	b, err := EncodeBinaryTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBinaryTasks(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tasks) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range tasks {
		if got[i].Kind != tasks[i].Kind || fmt.Sprint(got[i].Input) != fmt.Sprint(tasks[i].Input) {
			t.Fatalf("task %d mismatch", i)
		}
	}
	if _, err := decodeBinaryTasks(append(b, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}
