package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"atm/internal/persist"
	"atm/internal/service"
)

func serveTasks(t *testing.T, e *service.Engine, kind string, keys int, reps int) {
	t.Helper()
	k, ok := service.KindByName(kind)
	if !ok {
		t.Fatalf("kind %q missing", kind)
	}
	for rep := 0; rep < reps; rep++ {
		tasks := make([]service.Task, keys)
		for i := range tasks {
			tasks[i] = service.Task{Kind: kind, Input: service.Input(k, uint64(i), 1)}
		}
		if _, _, err := e.Do(tasks); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeChainWarmStart runs a served engine over a delta chain, then
// restarts it: the second engine must warm-start from the first one's
// state, and its snapshot saves must append to the same chain.
func TestServeChainWarmStart(t *testing.T) {
	chain := filepath.Join(t.TempDir(), "svc.atmchain")
	opt := RunOptions{SnapshotChain: chain, Sync: persist.SyncOff}

	e1, info1 := Serve(Dynamic(true), opt, service.Config{Workers: 2})
	if info1.WarmStart || info1.SnapshotErr != nil {
		t.Fatalf("first serve: %+v", info1)
	}
	serveTasks(t, e1, "lu", 4, 30)
	if err := e1.Snapshot(""); err != nil { // the Save hook: a delta append
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(chain); err != nil {
		t.Fatalf("chain file not created: %v", err)
	}

	e2, info2 := Serve(Dynamic(true), opt, service.Config{Workers: 2})
	defer e2.Close()
	if info2.SnapshotErr != nil {
		t.Fatalf("second serve: %v", info2.SnapshotErr)
	}
	if !info2.WarmStart || info2.RestoredEntries == 0 {
		t.Fatalf("second serve not warm: %+v", info2)
	}
	// The warm table serves the same inputs without retraining: the
	// first batch already sees THT hits.
	k, _ := service.KindByName("lu")
	tasks := make([]service.Task, 4)
	for i := range tasks {
		tasks[i] = service.Task{Kind: "lu", Input: service.Input(k, uint64(i), 1)}
	}
	_, g, err := e2.Do(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if g.MemoTHT == 0 {
		t.Fatalf("warm-started engine executed everything: %+v", g)
	}
}

// TestServeBaseline checks a disabled spec serves without ATM and
// rejects snapshots.
func TestServeBaseline(t *testing.T) {
	e, info := Serve(Baseline(), RunOptions{}, service.Config{Workers: 1})
	defer e.Close()
	if info.WarmStart || e.Memoizing() {
		t.Fatalf("baseline serve: %+v memoizing=%v", info, e.Memoizing())
	}
	if err := e.Snapshot(""); !errors.Is(err, service.ErrNoPersistence) {
		t.Fatalf("baseline snapshot: %v", err)
	}
}

// TestServeWholeTable exercises the non-chain persistence mode: the
// Save hook rewrites the snapshot file, and a second serve warm-starts
// from it.
func TestServeWholeTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.atmsnap")
	opt := RunOptions{SnapshotPath: path, Sync: persist.SyncOff}

	e1, info1 := Serve(Static(true), opt, service.Config{Workers: 1})
	if info1.WarmStart || info1.SnapshotErr != nil {
		t.Fatalf("first serve: %+v", info1)
	}
	serveTasks(t, e1, "stencil", 2, 30)
	if err := e1.Close(); err != nil { // final save through the hook
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not saved: %v", err)
	}

	e2, info2 := Serve(Static(true), opt, service.Config{Workers: 1})
	defer e2.Close()
	if !info2.WarmStart || info2.RestoredEntries == 0 {
		t.Fatalf("second serve not warm: %+v", info2)
	}
}

// TestServeRecoverSalvage damages the chain's tail and serves under
// -recover salvage: the engine must come up warm from the valid prefix.
func TestServeRecoverSalvage(t *testing.T) {
	chain := filepath.Join(t.TempDir(), "svc.atmchain")
	opt := RunOptions{SnapshotChain: chain, Sync: persist.SyncOff}
	e1, _ := Serve(Dynamic(true), opt, service.Config{Workers: 1})
	serveTasks(t, e1, "lu", 4, 30)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append garbage that breaks the last record framing.
	f, err := os.OpenFile(chain, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Strict refuses (serves cold, error surfaced)...
	eStrict, infoStrict := Serve(Dynamic(true), opt, service.Config{Workers: 1})
	eStrict.Close()
	if infoStrict.SnapshotErr == nil || infoStrict.WarmStart {
		t.Fatalf("strict on torn chain: %+v", infoStrict)
	}
	// ...salvage repairs and warm-starts.
	optS := opt
	optS.Recover = RecoverSalvage
	e2, info2 := Serve(Dynamic(true), optS, service.Config{Workers: 1})
	defer e2.Close()
	if info2.SnapshotErr != nil || !info2.WarmStart || !info2.Salvaged {
		t.Fatalf("salvage on torn chain: %+v", info2)
	}
	if info2.Recovery.BytesTruncated == 0 {
		t.Fatalf("salvage reported no truncation: %+v", info2.Recovery)
	}
}
