// Package harness runs the paper's evaluation (§IV–§V): it executes every
// benchmark under the baseline runtime and under ATM configurations, and
// regenerates each table and figure of the paper from the measurements.
package harness

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"atm/internal/apps"
	"atm/internal/apps/blackscholes"
	"atm/internal/apps/kmeans"
	"atm/internal/apps/sparselu"
	"atm/internal/apps/stencil"
	"atm/internal/apps/swaptions"
	"atm/internal/core"
	"atm/internal/hashx"
	"atm/internal/persist"
	"atm/internal/taskrt"
	"atm/internal/trace"
)

// Benchmarks lists the evaluated applications in Table I order.
func Benchmarks() []string {
	return []string{"Blackscholes", "GS", "Jacobi", "Kmeans", "LU", "Swaptions"}
}

// FactoryFor returns the workload factory for a Table I benchmark name
// (short names "GS"/"Gauss-Seidel" both accepted), or nil.
func FactoryFor(name string) apps.Factory {
	switch name {
	case "Blackscholes", "blackscholes":
		return blackscholes.Factory
	case "GS", "Gauss-Seidel", "gs", "gauss-seidel":
		return stencil.Factory(stencil.GaussSeidel)
	case "Jacobi", "jacobi":
		return stencil.Factory(stencil.Jacobi)
	case "Kmeans", "kmeans":
		return kmeans.Factory
	case "LU", "lu", "SparseLU", "sparselu":
		return sparselu.Factory
	case "Swaptions", "swaptions":
		return swaptions.Factory
	default:
		return nil
	}
}

// ATMSpec describes one ATM configuration of the evaluation matrix.
type ATMSpec struct {
	// Enabled false means the plain baseline runtime (no ATM).
	Enabled bool
	// Mode is the ATM operating mode.
	Mode core.Mode
	// Level is the p level for core.ModeFixed.
	Level int
	// IKT enables the In-flight Key Table.
	IKT bool
}

// Baseline is the no-ATM configuration.
func Baseline() ATMSpec { return ATMSpec{} }

// Static returns static ATM (p = 100%).
func Static(ikt bool) ATMSpec { return ATMSpec{Enabled: true, Mode: core.ModeStatic, IKT: ikt} }

// Dynamic returns dynamic ATM.
func Dynamic(ikt bool) ATMSpec { return ATMSpec{Enabled: true, Mode: core.ModeDynamic, IKT: ikt} }

// Fixed returns constant-p ATM at the given level.
func Fixed(level int, ikt bool) ATMSpec {
	return ATMSpec{Enabled: true, Mode: core.ModeFixed, Level: level, IKT: ikt}
}

// Name renders the spec like the paper's legends.
func (s ATMSpec) Name() string {
	if !s.Enabled {
		return "baseline"
	}
	tail := " (THT)"
	if s.IKT {
		tail = " (THT+IKT)"
	}
	switch s.Mode {
	case core.ModeStatic:
		return "Static ATM" + tail
	case core.ModeDynamic:
		return "Dynamic ATM" + tail
	default:
		return "Fixed-p ATM" + tail
	}
}

// Outcome is one measured run.
type Outcome struct {
	App     apps.App
	Spec    ATMSpec
	Workers int
	Elapsed time.Duration
	// Stats is the ATM snapshot (zero value for baseline runs).
	Stats core.Stats
	// ChosenLevels maps memoized type names to their final p level.
	ChosenLevels map[string]int
	// Tracer is non-nil when the run was traced.
	Tracer *trace.Tracer
	// ATMMemory is the THT payload in bytes at the end of the run.
	ATMMemory int64
	// WarmStart reports that the engine was restored from a snapshot
	// before the run; RestoredEntries counts the THT entries the run
	// actually installed from it.
	WarmStart       bool
	RestoredEntries int64
	// SnapshotErr records a snapshot load/save failure (the run itself
	// still happened, cold). A missing file under RunOptions.SnapshotPath
	// is a normal cold start, not an error.
	SnapshotErr error
	// DeltaSaves counts the incremental saves a chain-mode run
	// performed (periodic plus the final one); DeltaBytes is the total
	// growth they appended to the chain file — the number that stays
	// sublinear in table size when inter-save churn is small.
	DeltaSaves int
	DeltaBytes int64
	// Salvaged reports that the snapshot file had a torn tail (a crash
	// artifact) that RecoverSalvage truncated away before warm-starting;
	// Recovery describes what was kept and dropped. ColdFallback reports
	// that a damaged file could not warm-start under the policy and the
	// run started cold instead (RecoverCold on any damage, or
	// RecoverSalvage on unrecoverable corruption).
	Salvaged     bool
	ColdFallback bool
	Recovery     persist.RecoveryReport
	// SaverRetries counts delta-save attempts that failed and were
	// retried (bounded, exponential backoff); SaverFailures counts
	// saves abandoned after the retry budget — each such failure also
	// sets SnapshotErr and stops further saves.
	SaverRetries  int
	SaverFailures int
}

// Reuse returns the run's overall memoized-task fraction.
func (o Outcome) Reuse() float64 { return o.Stats.TotalReuse() }

// THTHitRatio returns hits over lookups, the warm-start headline
// number: a warm run's ratio is high from the first task, a cold run's
// climbs only as the table fills.
func (o Outcome) THTHitRatio() float64 {
	if o.Stats.THTLookups == 0 {
		return 0
	}
	return float64(o.Stats.THTHits) / float64(o.Stats.THTLookups)
}

// RecoverPolicy decides what a run does when its snapshot or chain
// file turns out damaged — torn by a crash mid-save, or corrupt. The
// matrix is documented in docs/persistence.md; snapshots are caches,
// so every policy still produces a correct run, they differ only in
// how much warm state survives and whether the damage is surfaced.
type RecoverPolicy int

const (
	// RecoverStrict (the default) treats any damaged file as an error:
	// the run proceeds cold, the failure lands in Outcome.SnapshotErr,
	// and the file is left untouched for inspection and repair
	// (snapshotctl verify/repair).
	RecoverStrict RecoverPolicy = iota
	// RecoverSalvage repairs a torn tail in place — truncating to the
	// last valid record boundary, exactly `snapshotctl repair` — and
	// warm-starts from the salvaged prefix. Unrecoverable damage
	// degrades to a cold start as under RecoverCold.
	RecoverSalvage
	// RecoverCold discards any damaged file and starts cold, letting
	// the run recreate the chain from scratch: maximum availability, no
	// salvage attempt, nothing surfaced in SnapshotErr.
	RecoverCold
)

// String renders the policy as atmbench's -recover flag spells it.
func (p RecoverPolicy) String() string {
	switch p {
	case RecoverSalvage:
		return "salvage"
	case RecoverCold:
		return "cold"
	default:
		return "strict"
	}
}

// ParseRecoverPolicy parses atmbench's -recover flag value; the empty
// string is the strict default.
func ParseRecoverPolicy(s string) (RecoverPolicy, error) {
	switch s {
	case "", "strict":
		return RecoverStrict, nil
	case "salvage":
		return RecoverSalvage, nil
	case "cold":
		return RecoverCold, nil
	default:
		return 0, fmt.Errorf("unknown recover policy %q (strict|salvage|cold)", s)
	}
}

// RunOptions tune a single run.
type RunOptions struct {
	// Detail enables full interval tracing (needed for Figs. 7/8).
	Detail bool
	// Trace enables the tracer at all (reuse logs for Fig. 9). When
	// Detail is set, Trace is implied.
	Trace bool
	// Seed perturbs ATM's shuffle plans.
	Seed uint64
	// Hash selects ATM's key hash function (the -hash flag of atmbench
	// and atmd). The zero value is hashx.Lookup3, the historical
	// default; the choice is folded into the engine's config
	// fingerprint, so snapshots only restore under the function that
	// wrote them.
	Hash hashx.Func
	// Batch is the submission batch size handed to taskrt.Config:
	// 0 = runtime default, negative = per-task Submit (the before/after
	// knob of atmbench's -batch flag).
	Batch int
	// Policy selects the scheduling discipline (zero value = FIFO).
	Policy taskrt.SchedPolicy
	// Deterministic runs the workload under taskrt's deterministic
	// executor: every scheduling decision is drawn from Seed, so the same
	// seed replays the same task interleaving bit-identically (see
	// docs/determinism.md). Timing from such a run measures a
	// single-goroutine replay, not parallel performance.
	Deterministic bool
	// DetSched is the deterministic ready-queue discipline
	// (fifo|lifo|random|adversarial; zero value follows Policy).
	DetSched taskrt.DetSched
	// SnapshotPath names a warm-start snapshot file: when set (and the
	// spec enables ATM) the engine is restored from it before the run if
	// the file exists, and the engine's state is saved back to it after
	// the run — the repeated-experiment-sweep amortization the paper's
	// training cost asks for. SnapshotLoad / SnapshotSave override the
	// two halves separately (atmbench's -load / -save); a load path set
	// explicitly that fails to load is reported in Outcome.SnapshotErr.
	SnapshotPath string
	SnapshotLoad string
	SnapshotSave string
	// SnapshotChain switches persistence to the incremental chain
	// format (persist version 2): the run warm-starts from the chain
	// file when it exists (base restored, deltas replayed in order),
	// and saves by APPENDING a delta record of just this run's changes
	// instead of rewriting the whole table — O(churn) I/O per
	// repetition. A missing file is a cold start that creates the chain
	// with an empty base. Mutually exclusive with the whole-table
	// fields above.
	SnapshotChain string
	// SnapshotDeltaEvery additionally saves a delta every interval
	// while the run executes (chain mode only): the long-lived-service
	// scenario, where warm state must survive a crash mid-run. Each
	// periodic save quiesces through the runtime's completion fence.
	SnapshotDeltaEvery time.Duration
	// Recover selects the reaction to a damaged snapshot or chain file
	// (strict error / salvage torn tails / cold fallback).
	Recover RecoverPolicy
	// Sync is the durability policy for this run's snapshot saves:
	// persist.SyncAlways (the zero value) fsyncs every save as a
	// crash-consistent service should; persist.SyncOff is for
	// benchmarks that must not measure fsync latency.
	Sync persist.SyncPolicy
	// THTBudgetBytes caps the THT's payload memory (0 = unbounded) and
	// THTEviction selects the policy enforcing the cap — the -tht-budget
	// and -evict flags of atmbench and atmd. Capacity knobs only: they
	// are not folded into the config fingerprint, so a snapshot written
	// under one budget restores under another.
	THTBudgetBytes int64
	THTEviction    core.EvictPolicy
	// TenantShares gives named tenants (the prefix before the first '/'
	// in a task-type name) fractional shares of THTBudgetBytes.
	TenantShares map[string]float64
}

// snapshotPaths resolves the effective load/save paths and whether a
// failed load is tolerable (SnapshotPath doubles as "load if present").
func (opt RunOptions) snapshotPaths() (load, save string, loadOptional bool) {
	load, save = opt.SnapshotLoad, opt.SnapshotSave
	if load == "" && opt.SnapshotPath != "" {
		load, loadOptional = opt.SnapshotPath, true
	}
	if save == "" {
		save = opt.SnapshotPath
	}
	return load, save, loadOptional
}

// memoState is the opened memoization state of a run or a served
// engine: the engine itself (nil when the spec disables ATM), how it
// warm-started, and the persistence configuration its saves use. It is
// shared by RunOne (the evaluation path) and Serve (the service path);
// its save methods must be called from one goroutine at a time (RunOne
// serializes the periodic saver against the final save; the service
// engine runs every save on its loop goroutine).
type memoState struct {
	memo     *core.ATM
	warm     bool
	salvaged bool
	coldFB   bool
	recovery persist.RecoveryReport
	err      error

	// chain is the incremental chain path ("" = whole-table mode);
	// save the whole-table save path ("" = none).
	chain string
	save  string
	sync  persist.SyncPolicy

	deltaSaves    int
	deltaBytes    int64
	saverRetries  int
	saverFailures int
}

// openMemo builds (and possibly warm-starts) the ATM engine for a spec
// under the persistence options: chain mode restores + enables delta
// tracking (creating the chain file on a cold start), whole-table load
// mode restores under the recovery policy. For a disabled spec the
// state is empty (nil memo).
func openMemo(spec ATMSpec, opt RunOptions) *memoState {
	st := &memoState{sync: opt.Sync}
	if !spec.Enabled {
		return st
	}
	load, save, loadOptional := opt.snapshotPaths()
	st.chain = opt.SnapshotChain
	cfg := core.Config{Mode: spec.Mode, FixedLevel: spec.Level, DisableIKT: !spec.IKT, Seed: opt.Seed, HashFunc: opt.Hash,
		THTBudgetBytes: opt.THTBudgetBytes, THTEviction: opt.THTEviction, TenantShares: opt.TenantShares}
	if err := cfg.Validate(); err != nil {
		st.err = err
		st.memo = core.New(core.Config{Mode: spec.Mode, FixedLevel: spec.Level, DisableIKT: !spec.IKT, Seed: opt.Seed, HashFunc: opt.Hash})
		return st
	}
	if st.chain != "" {
		// Incremental chain mode supersedes the whole-table paths.
		save = ""
		st.memo, st.warm, st.salvaged, st.coldFB, st.recovery, st.err = recoverChain(cfg, st.chain, opt.Recover, opt.Sync)
		if st.err != nil && errors.Is(st.err, os.ErrNotExist) {
			st.err = nil // cold start: this repetition creates the chain
		}
		if st.memo == nil {
			st.memo = core.New(cfg)
		}
		if st.err == nil {
			// A failed chain load means no save will ever drain the
			// insert log; don't start retaining entries for it.
			st.memo.EnableDeltaTracking()
		}
		if !st.warm && st.err == nil {
			// First repetition (or cold fallback): create the chain
			// file, its base holding this engine's (empty) pre-run
			// state, so the later saves can append O(churn) delta
			// records.
			if snap, err := st.memo.Snapshot(); err != nil {
				st.err = err
			} else if err := persist.SaveChainSync(st.chain, snap, nil, opt.Sync); err != nil {
				st.err = err
			}
			if st.err != nil {
				st.memo.DisableDeltaTracking() // nothing will drain the log
			}
		}
	} else if load != "" {
		// Chain-aware load: a v1 whole-table snapshot, a merged
		// shard file, or a full v2 chain all warm-start here.
		st.memo, st.warm, st.err = restoreChain(cfg, load, false)
		switch {
		case st.err == nil:
		case errors.Is(st.err, os.ErrNotExist):
			if loadOptional {
				st.err = nil // cold start: the sweep's first repetition
			}
		case opt.Recover == RecoverStrict:
			// The damage stays in SnapshotErr; the run proceeds cold.
		default:
			if opt.Recover == RecoverSalvage {
				// The load path may be a shared input (-load): salvage
				// in memory, never mutate the file.
				if b, ds, rep, lerr := persist.LoadChainSalvage(load); lerr == nil && b != nil {
					if warmed, rerr := core.RestoreChain(cfg, b, ds); rerr == nil {
						st.memo, st.warm, st.err = warmed, true, nil
						st.salvaged, st.recovery = !rep.Clean(), rep
					}
				}
			}
			if st.err != nil {
				// Unrecoverable (or config skew): degrade to a cold
				// run instead of surfacing an error.
				st.err = nil
				st.coldFB = true
			}
		}
	}
	if st.memo == nil {
		st.memo = core.New(cfg)
	}
	st.save = save
	return st
}

// appendDelta appends one delta record of the engine's churn since the
// last save to the chain file, with bounded retry. In chain mode every
// save appends one record; file growth is the honest measure of save
// cost (it includes record framing). Returns the save's error (also
// latched in st.err; a latched error disables all further saves).
func (st *memoState) appendDelta() error {
	if st.err != nil {
		return st.err
	}
	d, err := st.memo.SnapshotDelta()
	if err != nil {
		st.err = err
		st.memo.DisableDeltaTracking() // no further saves will drain the log
		return err
	}
	// The stats are best-effort: a failed Stat must not abort the
	// save itself.
	var preSize int64 = -1
	if pre, err := os.Stat(st.chain); err == nil {
		preSize = pre.Size()
	}
	// Bounded retry with exponential backoff: transient I/O failures
	// (ENOSPC racing a cleaner, a blip on network storage) must not
	// permanently stop a long-lived service's saves. The retry is
	// safe because a failed append truncates itself back to the
	// record boundary (persist.AppendDeltaSync), so a retry can
	// never double-append. After the budget the save is abandoned:
	// the error latches and delta tracking stops, since nothing
	// will drain the insert log.
	for attempt := 0; ; attempt++ {
		err = persist.AppendDeltaSync(st.chain, d, st.sync)
		if err == nil {
			break
		}
		if attempt+1 >= saverMaxAttempts {
			st.saverFailures++
			st.err = err
			st.memo.DisableDeltaTracking()
			return err
		}
		st.saverRetries++
		time.Sleep(saverBackoffBase << attempt)
	}
	if post, err := os.Stat(st.chain); err == nil && preSize >= 0 {
		st.deltaBytes += post.Size() - preSize
	}
	st.deltaSaves++
	return nil
}

// saveNow persists the engine's current state under whichever mode the
// state was opened in: a delta append in chain mode, a whole-table
// rewrite in load/save mode, a no-op otherwise.
func (st *memoState) saveNow() error {
	switch {
	case st.memo == nil:
		return nil
	case st.chain != "":
		return st.appendDelta()
	case st.save != "" && st.err == nil:
		snap, err := st.memo.Snapshot()
		if err == nil {
			err = persist.SaveSync(st.save, snap, st.sync)
		}
		if err != nil {
			st.err = err
		}
		return err
	}
	return st.err
}

// RunOne builds a fresh workload and executes it once under the spec.
// Workload construction is excluded from the timing; the measured window
// covers task submission, execution and the final taskwait — the same
// window as the paper's equation 2.
func RunOne(factory apps.Factory, scale apps.Scale, workers int, spec ATMSpec, opt RunOptions) Outcome {
	app := factory(scale)

	var tr *trace.Tracer
	if opt.Trace || opt.Detail {
		tr = trace.New(workers, opt.Detail)
	}
	st := openMemo(spec, opt)
	var memo *core.ATM
	var m taskrt.Memoizer
	if spec.Enabled {
		memo = st.memo
		m = memo
	}
	rt := taskrt.New(taskrt.Config{Workers: workers, Memoizer: m, Tracer: tr, Policy: opt.Policy, BatchSize: opt.Batch,
		Seed: opt.Seed, Deterministic: opt.Deterministic, DetSched: opt.DetSched})

	stopSaver := make(chan struct{})
	var saverWG sync.WaitGroup
	// The periodic saver is incompatible with deterministic mode: each
	// save quiesces via rt.Wait, which under Config.Deterministic may only
	// be called from the master goroutine (the run still gets its final
	// delta save after app.Run returns).
	if st.chain != "" && opt.SnapshotDeltaEvery > 0 && memo != nil && st.err == nil && !opt.Deterministic {
		saverWG.Add(1)
		go func() {
			defer saverWG.Done()
			tick := time.NewTicker(opt.SnapshotDeltaEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopSaver:
					return
				case <-tick.C:
					_ = st.appendDelta() // quiesces via the runtime's completion fence
				}
			}
		}()
	}

	start := time.Now()
	app.Run(rt)
	elapsed := time.Since(start)
	close(stopSaver)
	saverWG.Wait()
	rt.Close()

	out := Outcome{App: app, Spec: spec, Workers: workers, Elapsed: elapsed, Tracer: tr, WarmStart: st.warm}
	if memo != nil {
		out.Stats = memo.Stats()
		out.ATMMemory = memo.MemoryBytes()
		out.RestoredEntries = memo.RestoredEntries()
		out.ChosenLevels = map[string]int{}
		for _, ts := range out.Stats.Types {
			out.ChosenLevels[ts.Name] = ts.Level
		}
		_ = st.saveNow() // the final save: this run's remaining churn
	}
	out.SnapshotErr = st.err
	out.DeltaSaves, out.DeltaBytes = st.deltaSaves, st.deltaBytes
	out.Salvaged, out.ColdFallback, out.Recovery = st.salvaged, st.coldFB, st.recovery
	out.SaverRetries, out.SaverFailures = st.saverRetries, st.saverFailures
	return out
}

// Delta-saver retry tuning. Vars, not consts, so tests can shrink the
// backoff; production code never mutates them.
var (
	saverMaxAttempts = 3
	saverBackoffBase = 25 * time.Millisecond
)

// recoverChain is restoreChain under a recovery policy: it decides
// whether a damaged chain file becomes a reported error (strict), a
// repaired warm start (salvage), or a discarded file and cold start
// (cold). A missing file always surfaces as os.ErrNotExist — the
// ordinary first-repetition cold start, never a fallback.
func recoverChain(cfg core.Config, path string, policy RecoverPolicy, sync persist.SyncPolicy) (memo *core.ATM, warm, salvaged, cold bool, rep persist.RecoveryReport, err error) {
	memo, warm, err = restoreChain(cfg, path, true)
	if err == nil || errors.Is(err, os.ErrNotExist) || policy == RecoverStrict {
		return memo, warm, false, false, rep, err
	}
	if policy == RecoverSalvage {
		// Repair first — truncate the torn tail on disk — because this
		// chain will be appended to: records landing after torn bytes
		// would be unreachable. Then reload strictly.
		rrep, rerr := persist.RepairChain(path, sync)
		rep = rrep
		if rerr == nil {
			if m, w, lerr := restoreChain(cfg, path, true); lerr == nil {
				return m, w, !rrep.Clean(), false, rrep, nil
			}
		}
		// Unrecoverable (or repaired yet still unloadable — e.g. config
		// skew): degrade to cold like RecoverCold.
	}
	// Cold fallback: discard the damaged file (and any stale temp) so
	// this run recreates the chain from scratch. A snapshot is a cache;
	// availability beats preserving a file no policy can load.
	persist.RemoveStaleTemp(path)
	if rmErr := os.Remove(path); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
		return nil, false, false, false, rep, rmErr
	}
	return nil, false, false, true, rep, nil
}

// restoreChain loads a snapshot file of either format version and
// builds a warm engine from it: the base is restored and any delta
// records are replayed in order. requireBase distinguishes the chain
// owner (a shard's own chain must start with its base) from generic
// loads. Returns (nil, false, err) on any failure, including a missing
// file (errors.Is os.ErrNotExist — the caller decides whether that is
// a cold start or an error).
func restoreChain(cfg core.Config, path string, requireBase bool) (*core.ATM, bool, error) {
	base, deltas, err := persist.LoadChain(path)
	if err != nil {
		return nil, false, err
	}
	if base == nil {
		if requireBase {
			return nil, false, fmt.Errorf("%s: chain has no base record (a delta-only shard file cannot warm-start alone)", path)
		}
		return nil, false, fmt.Errorf("%s: snapshot has no base record", path)
	}
	memo, err := core.RestoreChain(cfg, base, deltas)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return memo, true, nil
}

// RunMedian runs the spec `repeats` times and returns the run with the
// median elapsed time (workloads are deterministic, so any run's outputs
// are representative; the median de-noises the timing).
func RunMedian(factory apps.Factory, scale apps.Scale, workers int, spec ATMSpec, opt RunOptions, repeats int) Outcome {
	if repeats < 1 {
		repeats = 1
	}
	outs := make([]Outcome, 0, repeats)
	for i := 0; i < repeats; i++ {
		outs = append(outs, RunOne(factory, scale, workers, spec, opt))
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Elapsed < outs[j].Elapsed })
	return outs[len(outs)/2]
}

// Speedup computes equation 2: baseline time over ATM time.
func Speedup(baseline, atm Outcome) float64 {
	if atm.Elapsed <= 0 {
		return 0
	}
	return float64(baseline.Elapsed) / float64(atm.Elapsed)
}

// OracleResult is the outcome of an offline oracle sweep (§V-A): the
// fastest constant-p configuration whose final correctness meets a bound.
type OracleResult struct {
	Level       int
	Outcome     Outcome
	Correctness float64
	Found       bool
}

// Oracle sweeps all 16 p levels with constant-p ATM and returns the
// fastest configuration whose correctness (against ref) is at least
// minCorrectness percent. Level 15 (p = 100%) always qualifies, matching
// the paper's Oracle(100%) ⊆ Oracle(95%) containment.
func Oracle(factory apps.Factory, scale apps.Scale, workers int, ref Outcome,
	minCorrectness float64, ikt bool, opt RunOptions, repeats int) OracleResult {
	best := OracleResult{}
	for level := 0; level <= 15; level++ {
		o := RunMedian(factory, scale, workers, Fixed(level, ikt), opt, repeats)
		c := o.App.Correctness(ref.App)
		if c < minCorrectness {
			continue
		}
		if !best.Found || o.Elapsed < best.Outcome.Elapsed {
			best = OracleResult{Level: level, Outcome: o, Correctness: c, Found: true}
		}
	}
	return best
}
