// Package harness runs the paper's evaluation (§IV–§V): it executes every
// benchmark under the baseline runtime and under ATM configurations, and
// regenerates each table and figure of the paper from the measurements.
package harness

import (
	"errors"
	"os"
	"sort"
	"time"

	"atm/internal/apps"
	"atm/internal/apps/blackscholes"
	"atm/internal/apps/kmeans"
	"atm/internal/apps/sparselu"
	"atm/internal/apps/stencil"
	"atm/internal/apps/swaptions"
	"atm/internal/core"
	"atm/internal/persist"
	"atm/internal/taskrt"
	"atm/internal/trace"
)

// Benchmarks lists the evaluated applications in Table I order.
func Benchmarks() []string {
	return []string{"Blackscholes", "GS", "Jacobi", "Kmeans", "LU", "Swaptions"}
}

// FactoryFor returns the workload factory for a Table I benchmark name
// (short names "GS"/"Gauss-Seidel" both accepted), or nil.
func FactoryFor(name string) apps.Factory {
	switch name {
	case "Blackscholes", "blackscholes":
		return blackscholes.Factory
	case "GS", "Gauss-Seidel", "gs", "gauss-seidel":
		return stencil.Factory(stencil.GaussSeidel)
	case "Jacobi", "jacobi":
		return stencil.Factory(stencil.Jacobi)
	case "Kmeans", "kmeans":
		return kmeans.Factory
	case "LU", "lu", "SparseLU", "sparselu":
		return sparselu.Factory
	case "Swaptions", "swaptions":
		return swaptions.Factory
	default:
		return nil
	}
}

// ATMSpec describes one ATM configuration of the evaluation matrix.
type ATMSpec struct {
	// Enabled false means the plain baseline runtime (no ATM).
	Enabled bool
	// Mode is the ATM operating mode.
	Mode core.Mode
	// Level is the p level for core.ModeFixed.
	Level int
	// IKT enables the In-flight Key Table.
	IKT bool
}

// Baseline is the no-ATM configuration.
func Baseline() ATMSpec { return ATMSpec{} }

// Static returns static ATM (p = 100%).
func Static(ikt bool) ATMSpec { return ATMSpec{Enabled: true, Mode: core.ModeStatic, IKT: ikt} }

// Dynamic returns dynamic ATM.
func Dynamic(ikt bool) ATMSpec { return ATMSpec{Enabled: true, Mode: core.ModeDynamic, IKT: ikt} }

// Fixed returns constant-p ATM at the given level.
func Fixed(level int, ikt bool) ATMSpec {
	return ATMSpec{Enabled: true, Mode: core.ModeFixed, Level: level, IKT: ikt}
}

// Name renders the spec like the paper's legends.
func (s ATMSpec) Name() string {
	if !s.Enabled {
		return "baseline"
	}
	tail := " (THT)"
	if s.IKT {
		tail = " (THT+IKT)"
	}
	switch s.Mode {
	case core.ModeStatic:
		return "Static ATM" + tail
	case core.ModeDynamic:
		return "Dynamic ATM" + tail
	default:
		return "Fixed-p ATM" + tail
	}
}

// Outcome is one measured run.
type Outcome struct {
	App     apps.App
	Spec    ATMSpec
	Workers int
	Elapsed time.Duration
	// Stats is the ATM snapshot (zero value for baseline runs).
	Stats core.Stats
	// ChosenLevels maps memoized type names to their final p level.
	ChosenLevels map[string]int
	// Tracer is non-nil when the run was traced.
	Tracer *trace.Tracer
	// ATMMemory is the THT payload in bytes at the end of the run.
	ATMMemory int64
	// WarmStart reports that the engine was restored from a snapshot
	// before the run; RestoredEntries counts the THT entries the run
	// actually installed from it.
	WarmStart       bool
	RestoredEntries int64
	// SnapshotErr records a snapshot load/save failure (the run itself
	// still happened, cold). A missing file under RunOptions.SnapshotPath
	// is a normal cold start, not an error.
	SnapshotErr error
}

// Reuse returns the run's overall memoized-task fraction.
func (o Outcome) Reuse() float64 { return o.Stats.TotalReuse() }

// THTHitRatio returns hits over lookups, the warm-start headline
// number: a warm run's ratio is high from the first task, a cold run's
// climbs only as the table fills.
func (o Outcome) THTHitRatio() float64 {
	if o.Stats.THTLookups == 0 {
		return 0
	}
	return float64(o.Stats.THTHits) / float64(o.Stats.THTLookups)
}

// RunOptions tune a single run.
type RunOptions struct {
	// Detail enables full interval tracing (needed for Figs. 7/8).
	Detail bool
	// Trace enables the tracer at all (reuse logs for Fig. 9). When
	// Detail is set, Trace is implied.
	Trace bool
	// Seed perturbs ATM's shuffle plans.
	Seed uint64
	// Batch is the submission batch size handed to taskrt.Config:
	// 0 = runtime default, negative = per-task Submit (the before/after
	// knob of atmbench's -batch flag).
	Batch int
	// Policy selects the scheduling discipline (zero value = FIFO).
	Policy taskrt.SchedPolicy
	// SnapshotPath names a warm-start snapshot file: when set (and the
	// spec enables ATM) the engine is restored from it before the run if
	// the file exists, and the engine's state is saved back to it after
	// the run — the repeated-experiment-sweep amortization the paper's
	// training cost asks for. SnapshotLoad / SnapshotSave override the
	// two halves separately (atmbench's -load / -save); a load path set
	// explicitly that fails to load is reported in Outcome.SnapshotErr.
	SnapshotPath string
	SnapshotLoad string
	SnapshotSave string
}

// snapshotPaths resolves the effective load/save paths and whether a
// failed load is tolerable (SnapshotPath doubles as "load if present").
func (opt RunOptions) snapshotPaths() (load, save string, loadOptional bool) {
	load, save = opt.SnapshotLoad, opt.SnapshotSave
	if load == "" && opt.SnapshotPath != "" {
		load, loadOptional = opt.SnapshotPath, true
	}
	if save == "" {
		save = opt.SnapshotPath
	}
	return load, save, loadOptional
}

// RunOne builds a fresh workload and executes it once under the spec.
// Workload construction is excluded from the timing; the measured window
// covers task submission, execution and the final taskwait — the same
// window as the paper's equation 2.
func RunOne(factory apps.Factory, scale apps.Scale, workers int, spec ATMSpec, opt RunOptions) Outcome {
	app := factory(scale)

	var tr *trace.Tracer
	if opt.Trace || opt.Detail {
		tr = trace.New(workers, opt.Detail)
	}
	var memo *core.ATM
	var m taskrt.Memoizer
	var snapErr error
	warm := false
	load, save, loadOptional := opt.snapshotPaths()
	if spec.Enabled {
		cfg := core.Config{Mode: spec.Mode, FixedLevel: spec.Level, DisableIKT: !spec.IKT, Seed: opt.Seed}
		if load != "" {
			snap, err := persist.Load(load)
			if err == nil {
				memo, err = core.Restore(cfg, snap)
			}
			switch {
			case err == nil:
				warm = true
			case loadOptional && errors.Is(err, os.ErrNotExist):
				// Cold start: the sweep's first repetition.
			default:
				snapErr = err
			}
		}
		if memo == nil {
			memo = core.New(cfg)
		}
		m = memo
	}
	rt := taskrt.New(taskrt.Config{Workers: workers, Memoizer: m, Tracer: tr, Policy: opt.Policy, BatchSize: opt.Batch})

	start := time.Now()
	app.Run(rt)
	elapsed := time.Since(start)
	rt.Close()

	out := Outcome{App: app, Spec: spec, Workers: workers, Elapsed: elapsed, Tracer: tr, WarmStart: warm, SnapshotErr: snapErr}
	if memo != nil {
		out.Stats = memo.Stats()
		out.ATMMemory = memo.MemoryBytes()
		out.RestoredEntries = memo.RestoredEntries()
		out.ChosenLevels = map[string]int{}
		for _, ts := range out.Stats.Types {
			out.ChosenLevels[ts.Name] = ts.Level
		}
		if save != "" && snapErr == nil {
			if snap, err := memo.Snapshot(); err != nil {
				out.SnapshotErr = err
			} else if err := persist.Save(save, snap); err != nil {
				out.SnapshotErr = err
			}
		}
	}
	return out
}

// RunMedian runs the spec `repeats` times and returns the run with the
// median elapsed time (workloads are deterministic, so any run's outputs
// are representative; the median de-noises the timing).
func RunMedian(factory apps.Factory, scale apps.Scale, workers int, spec ATMSpec, opt RunOptions, repeats int) Outcome {
	if repeats < 1 {
		repeats = 1
	}
	outs := make([]Outcome, 0, repeats)
	for i := 0; i < repeats; i++ {
		outs = append(outs, RunOne(factory, scale, workers, spec, opt))
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Elapsed < outs[j].Elapsed })
	return outs[len(outs)/2]
}

// Speedup computes equation 2: baseline time over ATM time.
func Speedup(baseline, atm Outcome) float64 {
	if atm.Elapsed <= 0 {
		return 0
	}
	return float64(baseline.Elapsed) / float64(atm.Elapsed)
}

// OracleResult is the outcome of an offline oracle sweep (§V-A): the
// fastest constant-p configuration whose final correctness meets a bound.
type OracleResult struct {
	Level       int
	Outcome     Outcome
	Correctness float64
	Found       bool
}

// Oracle sweeps all 16 p levels with constant-p ATM and returns the
// fastest configuration whose correctness (against ref) is at least
// minCorrectness percent. Level 15 (p = 100%) always qualifies, matching
// the paper's Oracle(100%) ⊆ Oracle(95%) containment.
func Oracle(factory apps.Factory, scale apps.Scale, workers int, ref Outcome,
	minCorrectness float64, ikt bool, opt RunOptions, repeats int) OracleResult {
	best := OracleResult{}
	for level := 0; level <= 15; level++ {
		o := RunMedian(factory, scale, workers, Fixed(level, ikt), opt, repeats)
		c := o.App.Correctness(ref.App)
		if c < minCorrectness {
			continue
		}
		if !best.Found || o.Elapsed < best.Outcome.Elapsed {
			best = OracleResult{Level: level, Outcome: o, Correctness: c, Found: true}
		}
	}
	return best
}
