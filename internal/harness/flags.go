package harness

import (
	"fmt"
	"strconv"
	"strings"
)

// CLI flag parsing shared by atmd and atmbench for the THT budget
// knobs (the harness already hosts the recover-policy flag parser, so
// the front-ends stay in lockstep).

// ParseByteSize parses a byte-count flag value: a plain integer, or
// one with a k/m/g suffix (binary units, case-insensitive). The empty
// string is 0 (unbounded).
func ParseByteSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
	case 'm', 'M':
		mult = 1 << 20
	case 'g', 'G':
		mult = 1 << 30
	}
	num := s
	if mult != 1 {
		num = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 67108864, 64m, 2g)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte size %q", s)
	}
	if mult != 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// ParseTenantShares parses a tenant-shares flag value like
// "acme=0.5,beta=0.25": tenant names mapped to fractions of the THT
// budget. The empty string is nil. Range checks (each share in [0,1],
// sum ≤ 1) are core.Config.Validate's job.
func ParseTenantShares(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	shares := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, frac, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant share %q (want name=fraction)", part)
		}
		v, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return nil, fmt.Errorf("bad tenant share %q: %v", part, err)
		}
		if _, dup := shares[name]; dup {
			return nil, fmt.Errorf("tenant %q listed twice", name)
		}
		shares[name] = v
	}
	return shares, nil
}
