package harness

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/persist"
)

func TestRunOneSnapshotPathWarmStarts(t *testing.T) {
	f := FactoryFor("Blackscholes")
	path := filepath.Join(t.TempDir(), "warm.atmsnap")
	opt := RunOptions{SnapshotPath: path}

	// First run: the file does not exist — a normal cold start that
	// saves on finish.
	cold := RunOne(f, apps.ScaleTest, 4, Static(true), opt)
	if cold.SnapshotErr != nil {
		t.Fatalf("cold run: %v", cold.SnapshotErr)
	}
	if cold.WarmStart || cold.RestoredEntries != 0 {
		t.Fatalf("first run must be cold: %+v", cold)
	}

	// Second run: loads the saved snapshot and hits immediately.
	warm := RunOne(f, apps.ScaleTest, 4, Static(true), opt)
	if warm.SnapshotErr != nil {
		t.Fatalf("warm run: %v", warm.SnapshotErr)
	}
	if !warm.WarmStart || warm.RestoredEntries == 0 {
		t.Fatalf("second run must warm-start: %+v", warm)
	}
	if warm.Reuse() <= cold.Reuse() {
		t.Fatalf("warm reuse %v must exceed cold %v", warm.Reuse(), cold.Reuse())
	}
	for i, r := range warm.App.Result() {
		if !r.EqualContents(cold.App.Result()[i]) {
			t.Fatalf("warm result region %d diverges", i)
		}
	}

	// A mismatched spec (different fingerprint) must surface the typed
	// error, not silently serve hits — and the run still completes cold.
	bad := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotLoad: path, Seed: 99})
	if !errors.Is(bad.SnapshotErr, core.ErrSnapshotConfig) {
		t.Fatalf("fingerprint mismatch must be typed: %v", bad.SnapshotErr)
	}
	if bad.WarmStart || bad.RestoredEntries != 0 {
		t.Fatal("mismatched snapshot must not warm-start or restore entries")
	}
}

func TestSweepReportsWarmDeltas(t *testing.T) {
	var buf bytes.Buffer
	opt := testOpts(&buf, "Blackscholes")
	if err := Sweep(opt, 3, filepath.Join(t.TempDir(), "sweep.atmsnap")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cold", "warm", "warm-vs-cold", "THTHitRatio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep report missing %q:\n%s", want, out)
		}
	}
}

// TestRunOneSnapshotChainSublinearAndCompactEquivalent drives the
// acceptance scenario end to end: per-rep delta saves into one chain
// file, the warm rep appending a near-empty record (sublinear in table
// size), and a compaction of that chain warm-starting bit-identically
// to the whole-table snapshot path.
func TestRunOneSnapshotChainSublinearAndCompactEquivalent(t *testing.T) {
	f := FactoryFor("Blackscholes")
	dir := t.TempDir()
	chain := filepath.Join(dir, "warm.atmchain")
	spec := Static(true)

	cold := RunOne(f, apps.ScaleTest, 4, spec, RunOptions{SnapshotChain: chain})
	if cold.SnapshotErr != nil {
		t.Fatalf("cold run: %v", cold.SnapshotErr)
	}
	if cold.WarmStart || cold.DeltaSaves != 1 || cold.DeltaBytes == 0 {
		t.Fatalf("cold chain run must create the chain and append one delta: %+v", cold)
	}

	warm := RunOne(f, apps.ScaleTest, 4, spec, RunOptions{SnapshotChain: chain})
	if warm.SnapshotErr != nil {
		t.Fatalf("warm run: %v", warm.SnapshotErr)
	}
	if !warm.WarmStart || warm.RestoredEntries == 0 {
		t.Fatalf("second chain run must warm-start: %+v", warm)
	}
	for i, r := range warm.App.Result() {
		if !r.EqualContents(cold.App.Result()[i]) {
			t.Fatalf("warm result region %d diverges", i)
		}
	}
	// Sublinear: the all-hit warm rep appends a near-empty delta record,
	// a tiny fraction of the cold rep's full-churn delta.
	if warm.DeltaBytes*4 >= cold.DeltaBytes {
		t.Fatalf("warm append %dB must be well below cold append %dB", warm.DeltaBytes, cold.DeltaBytes)
	}

	// Compact the chain and warm-start from the result; also warm-start
	// from a classic whole-table snapshot of the same workload. The two
	// paths must produce bit-identical outputs and full reuse.
	base, deltas, err := persist.LoadChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	full, err := persist.Compact(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	compacted := filepath.Join(dir, "compacted.atmsnap")
	if err := persist.SaveChain(compacted, full, nil); err != nil {
		t.Fatal(err)
	}
	wholePath := filepath.Join(dir, "whole.atmsnap")
	whole := RunOne(f, apps.ScaleTest, 4, spec, RunOptions{SnapshotSave: wholePath})
	if whole.SnapshotErr != nil {
		t.Fatal(whole.SnapshotErr)
	}

	viaCompact := RunOne(f, apps.ScaleTest, 4, spec, RunOptions{SnapshotLoad: compacted})
	viaWhole := RunOne(f, apps.ScaleTest, 4, spec, RunOptions{SnapshotLoad: wholePath})
	for _, o := range []Outcome{viaCompact, viaWhole} {
		if o.SnapshotErr != nil {
			t.Fatal(o.SnapshotErr)
		}
		if !o.WarmStart || o.RestoredEntries == 0 {
			t.Fatalf("restored run must warm-start: %+v", o)
		}
	}
	for i, r := range viaCompact.App.Result() {
		if !r.EqualContents(viaWhole.App.Result()[i]) {
			t.Fatalf("compacted-chain warm start diverges from whole-table warm start on region %d", i)
		}
		if !r.EqualContents(cold.App.Result()[i]) {
			t.Fatalf("compacted-chain warm start diverges from the cold run on region %d", i)
		}
	}
	if viaCompact.Reuse() != viaWhole.Reuse() {
		t.Fatalf("reuse differs between compacted (%v) and whole-table (%v) warm starts",
			viaCompact.Reuse(), viaWhole.Reuse())
	}
}

// TestRunOneSnapshotDeltaEvery exercises the periodic mid-run saver:
// every tick appends one loadable delta record, and the final record
// count matches what the run reports.
func TestRunOneSnapshotDeltaEvery(t *testing.T) {
	chain := filepath.Join(t.TempDir(), "service.atmchain")
	o := RunOne(FactoryFor("Kmeans"), apps.ScaleTest, 4, Static(true),
		RunOptions{SnapshotChain: chain, SnapshotDeltaEvery: 200 * time.Microsecond})
	if o.SnapshotErr != nil {
		t.Fatal(o.SnapshotErr)
	}
	if o.DeltaSaves < 1 {
		t.Fatalf("the final delta save must always happen: %+v", o)
	}
	base, deltas, err := persist.LoadChain(chain)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil {
		t.Fatal("chain must start with its base record")
	}
	if len(deltas) != o.DeltaSaves {
		t.Fatalf("chain holds %d delta records, run reported %d saves", len(deltas), o.DeltaSaves)
	}
}

func TestShardedSweepMergesShards(t *testing.T) {
	var buf bytes.Buffer
	opt := testOpts(&buf, "Blackscholes", "Kmeans")
	if err := ShardedSweep(opt, 2, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sharded delta sweep", "cold", "warm", "Merged 2 shard chain(s)", "RestoredEntries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sharded sweep report missing %q:\n%s", want, out)
		}
	}
}
