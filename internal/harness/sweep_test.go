package harness

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"atm/internal/apps"
	"atm/internal/core"
)

func TestRunOneSnapshotPathWarmStarts(t *testing.T) {
	f := FactoryFor("Blackscholes")
	path := filepath.Join(t.TempDir(), "warm.atmsnap")
	opt := RunOptions{SnapshotPath: path}

	// First run: the file does not exist — a normal cold start that
	// saves on finish.
	cold := RunOne(f, apps.ScaleTest, 4, Static(true), opt)
	if cold.SnapshotErr != nil {
		t.Fatalf("cold run: %v", cold.SnapshotErr)
	}
	if cold.WarmStart || cold.RestoredEntries != 0 {
		t.Fatalf("first run must be cold: %+v", cold)
	}

	// Second run: loads the saved snapshot and hits immediately.
	warm := RunOne(f, apps.ScaleTest, 4, Static(true), opt)
	if warm.SnapshotErr != nil {
		t.Fatalf("warm run: %v", warm.SnapshotErr)
	}
	if !warm.WarmStart || warm.RestoredEntries == 0 {
		t.Fatalf("second run must warm-start: %+v", warm)
	}
	if warm.Reuse() <= cold.Reuse() {
		t.Fatalf("warm reuse %v must exceed cold %v", warm.Reuse(), cold.Reuse())
	}
	for i, r := range warm.App.Result() {
		if !r.EqualContents(cold.App.Result()[i]) {
			t.Fatalf("warm result region %d diverges", i)
		}
	}

	// A mismatched spec (different fingerprint) must surface the typed
	// error, not silently serve hits — and the run still completes cold.
	bad := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotLoad: path, Seed: 99})
	if !errors.Is(bad.SnapshotErr, core.ErrSnapshotConfig) {
		t.Fatalf("fingerprint mismatch must be typed: %v", bad.SnapshotErr)
	}
	if bad.WarmStart || bad.RestoredEntries != 0 {
		t.Fatal("mismatched snapshot must not warm-start or restore entries")
	}
}

func TestSweepReportsWarmDeltas(t *testing.T) {
	var buf bytes.Buffer
	opt := testOpts(&buf, "Blackscholes")
	if err := Sweep(opt, 3, filepath.Join(t.TempDir(), "sweep.atmsnap")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cold", "warm", "warm-vs-cold", "THTHitRatio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep report missing %q:\n%s", want, out)
		}
	}
}
