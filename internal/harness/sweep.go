package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"atm/internal/core"
	"atm/internal/persist"
)

// Sweep reproduces the repeated-experiment-sweep scenario the paper's
// amortization argument rests on: the same workload executed reps
// times, with the memoization state persisted between repetitions
// through a snapshot file. Repetition 1 runs cold and saves the
// snapshot; every later repetition warm-starts from it (and saves it
// back, so incremental warm-up — e.g. a dynamic type finishing its
// training in rep 2 — compounds). The report shows, per repetition,
// the elapsed time, reuse fraction and THT hit ratio, and closes with
// the warm-vs-cold deltas.
//
// Each benchmark gets its own snapshot file (path + "." + name): the
// fingerprint is config-level, so heterogeneous workloads would
// otherwise overwrite each other's warm state.
func Sweep(opt Options, reps int, path string) error {
	if reps < 2 {
		reps = 2
	}
	spec := Dynamic(true)
	fmt.Fprintf(opt.Out, "Warm-start sweep: %d repetitions under %s, snapshots at %s.<bench>\n",
		reps, spec.Name(), path)
	for _, name := range opt.names() {
		f := FactoryFor(name)
		file := path + "." + name
		t := newTable(opt.Out)
		t.row("Bench", "Rep", "Start", "Elapsed", "Speedup", "Reuse", "THTHitRatio", "RestoredEntries")
		var cold, last Outcome
		for rep := 1; rep <= reps; rep++ {
			ro := opt.runOpt()
			if rep == 1 {
				ro.SnapshotSave = file
			} else {
				ro.SnapshotLoad = file
				ro.SnapshotSave = file
			}
			o := RunOne(f, opt.Scale, opt.Workers, spec, ro)
			if o.SnapshotErr != nil {
				return fmt.Errorf("sweep %s rep %d: %w", name, rep, o.SnapshotErr)
			}
			if rep == 1 {
				cold = o
			}
			last = o
			startKind := "cold"
			if o.WarmStart {
				startKind = "warm"
			}
			t.row(name, fmt.Sprint(rep), startKind,
				o.Elapsed.Round(time.Microsecond).String(),
				fx(Speedup(cold, o)),
				fpct(100*o.Reuse()),
				fpct(100*o.THTHitRatio()),
				fmt.Sprint(o.RestoredEntries))
		}
		t.flush()
		fmt.Fprintf(opt.Out,
			"  %s warm-vs-cold: reuse %s -> %s, THT hit ratio %s -> %s, elapsed %v -> %v (%s)\n",
			name,
			fpct(100*cold.Reuse()), fpct(100*last.Reuse()),
			fpct(100*cold.THTHitRatio()), fpct(100*last.THTHitRatio()),
			cold.Elapsed.Round(time.Microsecond), last.Elapsed.Round(time.Microsecond),
			fx(Speedup(cold, last)))
	}
	return nil
}

// ShardedSweep reproduces the sharded sweep + merge workflow enabled
// by incremental chains (docs/persistence.md): each selected benchmark
// plays the role of one sweep shard, running reps repetitions against
// its own chain file under dir — repetition 1 creates the chain (cold,
// empty base) and every repetition appends a delta record of just its
// churn, so per-rep save I/O is proportional to what the rep learned,
// not to the table (the report's Append column shrinks toward the
// ~20-byte empty record as the shard warms). The shards' chains are
// then compacted and merged (persist.Compact + persist.MergeSnapshots
// — the fingerprint is config-level, so one merged file can hold every
// shard's types), and each benchmark re-runs warm-starting from the
// single merged file, exactly what `snapshotctl merge` produces for
// sweeps split across machines.
func ShardedSweep(opt Options, reps int, dir string) error {
	if reps < 2 {
		reps = 2
	}
	spec := Dynamic(true)
	names := opt.names()
	fmt.Fprintf(opt.Out, "Sharded delta sweep: %d shard(s) x %d repetitions under %s, chains under %s\n",
		len(names), reps, spec.Name(), dir)

	type shard struct {
		name string
		file string
		cold Outcome
	}
	shards := make([]shard, 0, len(names))
	for _, name := range names {
		file := filepath.Join(dir, "shard."+name+".atmchain")
		t := newTable(opt.Out)
		t.row("Shard", "Rep", "Start", "Elapsed", "Reuse", "THTHitRatio", "Append", "Chain")
		sh := shard{name: name, file: file}
		for rep := 1; rep <= reps; rep++ {
			ro := opt.runOpt()
			ro.SnapshotChain = file
			o := RunOne(FactoryFor(name), opt.Scale, opt.Workers, spec, ro)
			if o.SnapshotErr != nil {
				return fmt.Errorf("shard %s rep %d: %w", name, rep, o.SnapshotErr)
			}
			if rep == 1 {
				sh.cold = o
			}
			startKind := "cold"
			if o.WarmStart {
				startKind = "warm"
			}
			size := int64(0)
			if fi, err := os.Stat(file); err == nil {
				size = fi.Size()
			}
			t.row(name, fmt.Sprint(rep), startKind,
				o.Elapsed.Round(time.Microsecond).String(),
				fpct(100*o.Reuse()),
				fpct(100*o.THTHitRatio()),
				fmt.Sprintf("%dB", o.DeltaBytes),
				fmt.Sprintf("%dB", size))
		}
		t.flush()
		shards = append(shards, sh)
	}

	// Fold every shard chain into a full snapshot and merge them.
	fulls := make([]*core.Snapshot, 0, len(shards))
	var chainTotal int64
	for _, sh := range shards {
		base, deltas, err := persist.LoadChain(sh.file)
		if err != nil {
			return fmt.Errorf("shard %s: %w", sh.name, err)
		}
		full, err := persist.Compact(base, deltas...)
		if err != nil {
			return fmt.Errorf("shard %s: %w", sh.name, err)
		}
		fulls = append(fulls, full)
		if fi, err := os.Stat(sh.file); err == nil {
			chainTotal += fi.Size()
		}
	}
	merged, err := persist.MergeSnapshots(fulls...)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	mergedFile := filepath.Join(dir, "merged.atmsnap")
	if err := persist.SaveChain(mergedFile, merged, nil); err != nil {
		return err
	}
	mergedSize := int64(0)
	if fi, err := os.Stat(mergedFile); err == nil {
		mergedSize = fi.Size()
	}
	fmt.Fprintf(opt.Out, "Merged %d shard chain(s) (%dB total) into %s (%dB, %d sections)\n",
		len(shards), chainTotal, mergedFile, mergedSize, len(merged.Types))

	// Warm phase: every benchmark restarts from the single merged file.
	t := newTable(opt.Out)
	t.row("Shard", "Start", "Elapsed", "Speedup", "Reuse", "THTHitRatio", "RestoredEntries")
	for _, sh := range shards {
		ro := opt.runOpt()
		ro.SnapshotLoad = mergedFile
		o := RunOne(FactoryFor(sh.name), opt.Scale, opt.Workers, spec, ro)
		if o.SnapshotErr != nil {
			return fmt.Errorf("merged warm run %s: %w", sh.name, o.SnapshotErr)
		}
		startKind := "cold"
		if o.WarmStart {
			startKind = "warm"
		}
		t.row(sh.name, startKind,
			o.Elapsed.Round(time.Microsecond).String(),
			fx(Speedup(sh.cold, o)),
			fpct(100*o.Reuse()),
			fpct(100*o.THTHitRatio()),
			fmt.Sprint(o.RestoredEntries))
	}
	t.flush()
	return nil
}
