package harness

import (
	"fmt"
	"time"
)

// Sweep reproduces the repeated-experiment-sweep scenario the paper's
// amortization argument rests on: the same workload executed reps
// times, with the memoization state persisted between repetitions
// through a snapshot file. Repetition 1 runs cold and saves the
// snapshot; every later repetition warm-starts from it (and saves it
// back, so incremental warm-up — e.g. a dynamic type finishing its
// training in rep 2 — compounds). The report shows, per repetition,
// the elapsed time, reuse fraction and THT hit ratio, and closes with
// the warm-vs-cold deltas.
//
// Each benchmark gets its own snapshot file (path + "." + name): the
// fingerprint is config-level, so heterogeneous workloads would
// otherwise overwrite each other's warm state.
func Sweep(opt Options, reps int, path string) error {
	if reps < 2 {
		reps = 2
	}
	spec := Dynamic(true)
	fmt.Fprintf(opt.Out, "Warm-start sweep: %d repetitions under %s, snapshots at %s.<bench>\n",
		reps, spec.Name(), path)
	for _, name := range opt.names() {
		f := FactoryFor(name)
		file := path + "." + name
		t := newTable(opt.Out)
		t.row("Bench", "Rep", "Start", "Elapsed", "Speedup", "Reuse", "THTHitRatio", "RestoredEntries")
		var cold, last Outcome
		for rep := 1; rep <= reps; rep++ {
			ro := opt.runOpt()
			if rep == 1 {
				ro.SnapshotSave = file
			} else {
				ro.SnapshotLoad = file
				ro.SnapshotSave = file
			}
			o := RunOne(f, opt.Scale, opt.Workers, spec, ro)
			if o.SnapshotErr != nil {
				return fmt.Errorf("sweep %s rep %d: %w", name, rep, o.SnapshotErr)
			}
			if rep == 1 {
				cold = o
			}
			last = o
			startKind := "cold"
			if o.WarmStart {
				startKind = "warm"
			}
			t.row(name, fmt.Sprint(rep), startKind,
				o.Elapsed.Round(time.Microsecond).String(),
				fx(Speedup(cold, o)),
				fpct(100*o.Reuse()),
				fpct(100*o.THTHitRatio()),
				fmt.Sprint(o.RestoredEntries))
		}
		t.flush()
		fmt.Fprintf(opt.Out,
			"  %s warm-vs-cold: reuse %s -> %s, THT hit ratio %s -> %s, elapsed %v -> %v (%s)\n",
			name,
			fpct(100*cold.Reuse()), fpct(100*last.Reuse()),
			fpct(100*cold.THTHitRatio()), fpct(100*last.THTHitRatio()),
			cold.Elapsed.Round(time.Microsecond), last.Elapsed.Round(time.Microsecond),
			fx(Speedup(cold, last)))
	}
	return nil
}
