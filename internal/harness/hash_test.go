package harness

import (
	"errors"
	"path/filepath"
	"testing"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/hashx"
)

// TestWarmStartRoundTripPerHash is the harness half of the pluggable-
// hash property test: for every registered hash function and every
// benchmark application, a static-ATM run saved to a snapshot must
// warm-start a second run under the same function (entries restored,
// outputs bit-identical to the cold run), and the snapshot must be
// rejected with the typed config-mismatch error when loaded under any
// other function.
func TestWarmStartRoundTripPerHash(t *testing.T) {
	for _, f := range hashx.Funcs() {
		for _, name := range Benchmarks() {
			t.Run(f.String()+"/"+name, func(t *testing.T) {
				snap := filepath.Join(t.TempDir(), "warm.atmsnap")
				factory := FactoryFor(name)

				cold := RunOne(factory, apps.ScaleTest, 2, Static(true), RunOptions{
					Hash: f, SnapshotSave: snap,
				})
				if cold.SnapshotErr != nil {
					t.Fatalf("cold save: %v", cold.SnapshotErr)
				}

				warm := RunOne(factory, apps.ScaleTest, 2, Static(true), RunOptions{
					Hash: f, SnapshotLoad: snap,
				})
				if warm.SnapshotErr != nil {
					t.Fatalf("warm load: %v", warm.SnapshotErr)
				}
				if !warm.WarmStart || warm.RestoredEntries == 0 {
					t.Fatalf("warm start must restore entries: warm=%v restored=%d",
						warm.WarmStart, warm.RestoredEntries)
				}
				cr, wr := cold.App.Result(), warm.App.Result()
				if len(cr) != len(wr) {
					t.Fatalf("result lengths differ: %d != %d", len(cr), len(wr))
				}
				for i := range cr {
					if !wr[i].EqualContents(cr[i]) {
						t.Fatalf("result region %d diverges between cold and warm run", i)
					}
				}

				// Any other function must reject the warm state.
				for _, g := range hashx.Funcs() {
					if g == f {
						continue
					}
					cross := RunOne(factory, apps.ScaleTest, 2, Static(true), RunOptions{
						Hash: g, SnapshotLoad: snap,
					})
					if !errors.Is(cross.SnapshotErr, core.ErrSnapshotConfig) {
						t.Fatalf("loading %v snapshot under %v: err=%v, want ErrSnapshotConfig",
							f, g, cross.SnapshotErr)
					}
				}
			})
		}
	}
}
