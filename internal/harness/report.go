package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// table is a tiny text-table builder on top of tabwriter.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(t.w, format+"\n", args...)
}

func (t *table) flush() { _ = t.w.Flush() }

// geomean returns the geometric mean of xs (ignoring non-positives).
func geomean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// fx formats a speedup factor.
func fx(x float64) string { return fmt.Sprintf("%.2fx", x) }

// fpct formats a percentage.
func fpct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// fbytes formats a byte count in human units.
func fbytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// pLabel renders a p level as the paper writes it (2^-k·100% or 100%).
func pLabel(level int) string {
	if level >= 15 {
		return "100%"
	}
	return fmt.Sprintf("2^-%d*100%%", 15-level)
}
