package harness

import (
	"fmt"
	"io"
	"time"

	"atm/internal/apps"
	"atm/internal/hashx"
	"atm/internal/persist"
	"atm/internal/taskrt"
	"atm/internal/trace"
)

// Options configure an experiment reproduction.
type Options struct {
	// Scale selects workload sizes (test/bench/paper).
	Scale apps.Scale
	// Workers is the core count (the paper's machine has 8).
	Workers int
	// Repeats is the number of timing repetitions (median reported).
	Repeats int
	// Benchmarks filters the evaluated applications (nil = all six).
	Benchmarks []string
	// Seed perturbs ATM's sampling plans.
	Seed uint64
	// Hash selects ATM's key hash function (atmbench -hash).
	Hash hashx.Func
	// Batch is the submission batch size (0 = runtime default,
	// negative = per-task Submit).
	Batch int
	// Policy selects the scheduling discipline (FIFO by default).
	Policy taskrt.SchedPolicy
	// Deterministic replays every run under taskrt's deterministic
	// executor seeded by Seed (atmbench -det); timings then measure a
	// single-goroutine replay, not parallel performance.
	Deterministic bool
	// DetSched is the deterministic discipline (atmbench -sched).
	DetSched taskrt.DetSched
	// Recover is the damaged-snapshot policy for every run of the
	// experiment (atmbench -recover).
	Recover RecoverPolicy
	// Sync is the snapshot-save durability policy (atmbench -nosync
	// maps to persist.SyncOff).
	Sync persist.SyncPolicy
	// Out receives the report.
	Out io.Writer
}

func (o *Options) names() []string {
	if len(o.Benchmarks) == 0 {
		return Benchmarks()
	}
	return o.Benchmarks
}

func (o *Options) runOpt() RunOptions {
	return RunOptions{Seed: o.Seed, Hash: o.Hash, Batch: o.Batch, Policy: o.Policy,
		Deterministic: o.Deterministic, DetSched: o.DetSched, Recover: o.Recover, Sync: o.Sync}
}

// Table1 reproduces Table I: benchmark descriptions with measured task
// counts and input sizes.
func Table1(opt Options) {
	fmt.Fprintf(opt.Out, "Table I: benchmark description (scale=%s)\n", opt.Scale)
	t := newTable(opt.Out)
	t.row("Benchmark", "TaskInputBytes", "InputKinds", "MemoizedTaskType", "MemoTasks", "AllTasks", "CorrectnessOn")
	for _, name := range opt.names() {
		f := FactoryFor(name)
		ro := opt.runOpt()
		ro.Trace = true
		o := RunOne(f, opt.Scale, opt.Workers, Dynamic(true), ro)
		var memoName string
		var memoTasks int64
		for _, ts := range o.Stats.Types {
			memoName = ts.Name
			memoTasks += ts.Tasks
		}
		t.row(name,
			fmt.Sprint(o.App.MemoTaskInputBytes()),
			inputKinds(name),
			memoName,
			fmt.Sprint(memoTasks),
			fmt.Sprint(o.Tracer.Created()),
			correctnessTarget(name))
	}
	t.flush()
}

func inputKinds(name string) string {
	switch name {
	case "Kmeans":
		return "float,int"
	case "Swaptions":
		return "double"
	default:
		return "float"
	}
}

func correctnessTarget(name string) string {
	switch name {
	case "Blackscholes", "Swaptions":
		return "Prices Vector"
	case "GS", "Jacobi":
		return "Stencil Matrix"
	case "Kmeans":
		return "Centers Vector"
	case "LU":
		return "L*U-A"
	default:
		return "-"
	}
}

// Table2 reproduces Table II: the dynamic-ATM parameters each benchmark
// declares in its task annotations.
func Table2(opt Options) {
	fmt.Fprintln(opt.Out, "Table II: dynamic ATM parameters")
	t := newTable(opt.Out)
	t.row("Benchmark", "Ltraining", "TauMax")
	params := map[string][2]string{
		"Blackscholes": {"15", "1%"},
		"GS":           {"100", "1%"},
		"Jacobi":       {"150", "1%"},
		"Kmeans":       {"15", "20%"},
		"LU":           {"30", "1%"},
		"Swaptions":    {"15", "20%"},
	}
	for _, name := range opt.names() {
		p := params[name]
		t.row(name, p[0], p[1])
	}
	t.flush()
}

// Table3 reproduces Table III: ATM memory overhead relative to the
// application footprint, measured after a dynamic-ATM run.
func Table3(opt Options) {
	fmt.Fprintf(opt.Out, "Table III: ATM memory overhead (scale=%s, N=8, M=128)\n", opt.Scale)
	t := newTable(opt.Out)
	t.row("Benchmark", "ATMBytes", "AppBytes", "Overhead")
	var ratios []float64
	for _, name := range opt.names() {
		o := RunOne(FactoryFor(name), opt.Scale, opt.Workers, Dynamic(true), opt.runOpt())
		ratio := 100 * float64(o.ATMMemory) / float64(o.App.FootprintBytes())
		ratios = append(ratios, ratio)
		t.row(name, fbytes(o.ATMMemory), fbytes(int64(o.App.FootprintBytes())), fpct(ratio))
	}
	t.flush()
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	if len(ratios) > 0 {
		mean /= float64(len(ratios))
	}
	fmt.Fprintf(opt.Out, "average overhead: %s (paper: 9.4%%)\n", fpct(mean))
}

// matrixRow is the full Fig. 3 / Fig. 4 measurement for one benchmark.
type matrixRow struct {
	name                          string
	baseline                      Outcome
	staticTHT, dynTHT             Outcome
	staticIKT, dynIKT             Outcome
	oracle100, oracle95           OracleResult
	corrStatic, corrDyn, corrOr95 float64
	spStaticTHT, spDynTHT         float64
	spStaticIKT, spDynIKT         float64
	spOr100, spOr95               float64
}

// evalMatrix measures one benchmark under every Fig. 3 configuration.
func evalMatrix(name string, opt Options) matrixRow {
	f := FactoryFor(name)
	r := matrixRow{name: name}
	ro := opt.runOpt()
	r.baseline = RunMedian(f, opt.Scale, opt.Workers, Baseline(), ro, opt.Repeats)
	r.staticTHT = RunMedian(f, opt.Scale, opt.Workers, Static(false), ro, opt.Repeats)
	r.dynTHT = RunMedian(f, opt.Scale, opt.Workers, Dynamic(false), ro, opt.Repeats)
	r.staticIKT = RunMedian(f, opt.Scale, opt.Workers, Static(true), ro, opt.Repeats)
	r.dynIKT = RunMedian(f, opt.Scale, opt.Workers, Dynamic(true), ro, opt.Repeats)
	r.oracle100 = Oracle(f, opt.Scale, opt.Workers, r.baseline, 99.99, true, ro, opt.Repeats)
	r.oracle95 = Oracle(f, opt.Scale, opt.Workers, r.baseline, 95, true, ro, opt.Repeats)

	r.spStaticTHT = Speedup(r.baseline, r.staticTHT)
	r.spDynTHT = Speedup(r.baseline, r.dynTHT)
	r.spStaticIKT = Speedup(r.baseline, r.staticIKT)
	r.spDynIKT = Speedup(r.baseline, r.dynIKT)
	if r.oracle100.Found {
		r.spOr100 = Speedup(r.baseline, r.oracle100.Outcome)
	}
	if r.oracle95.Found {
		r.spOr95 = Speedup(r.baseline, r.oracle95.Outcome)
		r.corrOr95 = r.oracle95.Correctness
	}
	r.corrStatic = r.staticIKT.App.Correctness(r.baseline.App)
	r.corrDyn = r.dynIKT.App.Correctness(r.baseline.App)
	return r
}

// Fig3 reproduces Fig. 3 (speedups of static/dynamic ATM with THT and
// THT+IKT plus the two oracles) and, from the same runs, Fig. 4
// (correctness of static ATM, dynamic ATM and Oracle(95%)).
func Fig3(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 3: speedup over no-ATM baseline (scale=%s, workers=%d)\n", opt.Scale, opt.Workers)
	t := newTable(opt.Out)
	t.row("Benchmark", "Static(THT)", "Dynamic(THT)", "Static(THT+IKT)", "Dynamic(THT+IKT)", "Oracle(100%)", "Oracle(95%)")
	var sStatic, sDyn, sStaticIKT, sDynIKT, sOr100, sOr95 []float64
	var rows []matrixRow
	for _, name := range opt.names() {
		r := evalMatrix(name, opt)
		rows = append(rows, r)
		t.row(r.name, fx(r.spStaticTHT), fx(r.spDynTHT), fx(r.spStaticIKT), fx(r.spDynIKT), fx(r.spOr100), fx(r.spOr95))
		sStatic = append(sStatic, r.spStaticTHT)
		sDyn = append(sDyn, r.spDynTHT)
		sStaticIKT = append(sStaticIKT, r.spStaticIKT)
		sDynIKT = append(sDynIKT, r.spDynIKT)
		sOr100 = append(sOr100, r.spOr100)
		sOr95 = append(sOr95, r.spOr95)
	}
	t.row("geomean", fx(geomean(sStatic)), fx(geomean(sDyn)), fx(geomean(sStaticIKT)),
		fx(geomean(sDynIKT)), fx(geomean(sOr100)), fx(geomean(sOr95)))
	t.flush()

	fmt.Fprintln(opt.Out, "\nFig. 4: correctness (%)")
	t2 := newTable(opt.Out)
	t2.row("Benchmark", "StaticATM", "DynamicATM", "Oracle(95%)")
	var cs, cd, co []float64
	for _, r := range rows {
		t2.row(r.name, fpct(r.corrStatic), fpct(r.corrDyn), fpct(r.corrOr95))
		cs = append(cs, r.corrStatic)
		cd = append(cd, r.corrDyn)
		co = append(co, r.corrOr95)
	}
	t2.row("geomean", fpct(geomean(cs)), fpct(geomean(cd)), fpct(geomean(co)))
	t2.flush()
	fmt.Fprintln(opt.Out, "paper: Static 1.4x geomean @100% correct; Dynamic 2.5x @99.3% avg")
}

// Fig4 is an alias of Fig3's second half (they share the same runs).
func Fig4(opt Options) { Fig3(opt) }

// Fig5 reproduces Fig. 5: final correctness when running with a constant
// percentage p, for every p level, plus the configuration dynamic ATM
// chooses (the star markers).
func Fig5(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 5: correctness vs percentage of selected inputs (scale=%s)\n", opt.Scale)
	for _, name := range opt.names() {
		f := FactoryFor(name)
		ref := RunOne(f, opt.Scale, opt.Workers, Baseline(), opt.runOpt())
		fmt.Fprintf(opt.Out, "\n%s:\n", name)
		t := newTable(opt.Out)
		t.row("p", "correctness", "reuse")
		for level := 0; level <= 15; level++ {
			o := RunOne(f, opt.Scale, opt.Workers, Fixed(level, true), opt.runOpt())
			t.row(pLabel(level), fpct(o.App.Correctness(ref.App)), fpct(100*o.Reuse()))
		}
		dyn := RunOne(f, opt.Scale, opt.Workers, Dynamic(true), opt.runOpt())
		var chosen int
		for _, l := range dyn.ChosenLevels {
			chosen = l
		}
		t.row("dynamic*", fpct(dyn.App.Correctness(ref.App)), fpct(100*dyn.Reuse()))
		t.flush()
		fmt.Fprintf(opt.Out, "dynamic ATM chose p = %s\n", pLabel(chosen))
	}
}

// Fig6 reproduces Fig. 6: speedup of dynamic ATM and Oracle(95%) as the
// number of cores grows from 1 to opt.Workers. The oracle level is
// profiled once at the maximum core count, like the paper's offline
// profiling, and replayed at each core count.
func Fig6(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 6: scalability 1..%d cores (scale=%s)\n", opt.Workers, opt.Scale)
	ro := opt.runOpt()
	perCore := map[string][]float64{}
	perCoreOr := map[string][]float64{}
	for _, name := range opt.names() {
		f := FactoryFor(name)
		refTop := RunMedian(f, opt.Scale, opt.Workers, Baseline(), ro, opt.Repeats)
		or := Oracle(f, opt.Scale, opt.Workers, refTop, 95, true, ro, opt.Repeats)
		for cores := 1; cores <= opt.Workers; cores++ {
			base := RunMedian(f, opt.Scale, cores, Baseline(), ro, opt.Repeats)
			dyn := RunMedian(f, opt.Scale, cores, Dynamic(true), ro, opt.Repeats)
			perCore[name] = append(perCore[name], Speedup(base, dyn))
			if or.Found {
				fixed := RunMedian(f, opt.Scale, cores, Fixed(or.Level, true), ro, opt.Repeats)
				perCoreOr[name] = append(perCoreOr[name], Speedup(base, fixed))
			} else {
				perCoreOr[name] = append(perCoreOr[name], 0)
			}
		}
	}
	t := newTable(opt.Out)
	head := []string{"Benchmark", "Config"}
	for c := 1; c <= opt.Workers; c++ {
		head = append(head, fmt.Sprintf("%dc", c))
	}
	t.row(head...)
	geoDyn := make([]float64, opt.Workers)
	geoOr := make([]float64, opt.Workers)
	counts := 0
	for _, name := range opt.names() {
		row := []string{name, "Dynamic ATM"}
		for _, s := range perCore[name] {
			row = append(row, fx(s))
		}
		t.row(row...)
		row = []string{"", "Oracle(95%)"}
		for _, s := range perCoreOr[name] {
			row = append(row, fx(s))
		}
		t.row(row...)
		counts++
	}
	for c := 0; c < opt.Workers; c++ {
		var ds, os []float64
		for _, name := range opt.names() {
			ds = append(ds, perCore[name][c])
			os = append(os, perCoreOr[name][c])
		}
		geoDyn[c] = geomean(ds)
		geoOr[c] = geomean(os)
	}
	rowD := []string{"geomean", "Dynamic ATM"}
	rowO := []string{"", "Oracle(95%)"}
	for c := 0; c < opt.Workers; c++ {
		rowD = append(rowD, fx(geoDyn[c]))
		rowO = append(rowO, fx(geoOr[c]))
	}
	t.row(rowD...)
	t.row(rowO...)
	t.flush()
}

// stateShare renders one lane's state profile.
func stateShare(ds []time.Duration) string {
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("exec %.0f%% hash %.0f%% memo %.0f%% idle %.0f%%",
		100*float64(ds[trace.StateExec])/float64(total),
		100*float64(ds[trace.StateHash])/float64(total),
		100*float64(ds[trace.StateMemo])/float64(total),
		100*float64(ds[trace.StateIdle])/float64(total))
}

// Fig7 reproduces Fig. 7: Gauss-Seidel execution traces at 2 and 8 cores,
// summarized as per-core state profiles and mean ATM-state interval
// widths (the paper observes hash and memoization states are ~60% slower
// at 8 cores due to shared-memory contention).
func Fig7(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 7: Gauss-Seidel trace, ATM state widths at 2 vs %d cores (scale=%s)\n", opt.Workers, opt.Scale)
	f := FactoryFor("GS")
	for _, cores := range []int{2, opt.Workers} {
		ro := opt.runOpt()
		ro.Detail = true
		o := RunOne(f, opt.Scale, cores, Dynamic(true), ro)
		fmt.Fprintf(opt.Out, "\n%d cores (elapsed %v):\n", cores, o.Elapsed.Round(time.Millisecond))
		t := newTable(opt.Out)
		t.row("Core", "Profile")
		durs := o.Tracer.Durations()
		for w := 0; w < cores; w++ {
			t.row(fmt.Sprintf("Core %d", w+1), stateShare(durs[w]))
		}
		t.flush()
		trace.RenderTimeline(opt.Out, o.Tracer, cores, 100)
		var hashN, memoN int
		var hashT, memoT time.Duration
		for w := 0; w < cores; w++ {
			for _, iv := range o.Tracer.Intervals(w) {
				switch iv.State {
				case trace.StateHash:
					hashN++
					hashT += iv.End - iv.Start
				case trace.StateMemo:
					memoN++
					memoT += iv.End - iv.Start
				}
			}
		}
		if hashN > 0 {
			fmt.Fprintf(opt.Out, "mean hash-key interval: %v over %d intervals\n", (hashT / time.Duration(hashN)).Round(time.Microsecond), hashN)
		}
		if memoN > 0 {
			fmt.Fprintf(opt.Out, "mean memoization interval: %v over %d intervals\n", (memoT / time.Duration(memoN)).Round(time.Microsecond), memoN)
		}
	}
}

// Fig8 reproduces Fig. 8: Blackscholes with and without ATM, with the
// ready-queue depth statistics that expose the task-creation-throughput
// bottleneck (with ATM the queue drains faster than the master can fill
// it).
func Fig8(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 8: Blackscholes task creation throughput (scale=%s, workers=%d)\n", opt.Scale, opt.Workers)
	f := FactoryFor("Blackscholes")
	for _, spec := range []ATMSpec{Dynamic(true), Baseline()} {
		ro := opt.runOpt()
		ro.Detail = true
		o := RunOne(f, opt.Scale, opt.Workers, spec, ro)
		fmt.Fprintf(opt.Out, "\n%s (elapsed %v):\n", spec.Name(), o.Elapsed.Round(time.Millisecond))
		durs := o.Tracer.Durations()
		t := newTable(opt.Out)
		t.row("Lane", "Profile")
		for w := 0; w < opt.Workers; w++ {
			t.row(fmt.Sprintf("Core %d", w+1), stateShare(durs[w]))
		}
		t.flush()
		trace.RenderTimeline(opt.Out, o.Tracer, opt.Workers+1, 100)
		depths := o.Tracer.Depths()
		if len(depths) > 0 {
			zero, max, sum := 0, 0, 0
			for _, d := range depths {
				if d.Depth == 0 {
					zero++
				}
				if d.Depth > max {
					max = d.Depth
				}
				sum += d.Depth
			}
			fmt.Fprintf(opt.Out, "ready tasks: mean %.1f, max %d, empty-queue fraction %.0f%% (%d samples)\n",
				float64(sum)/float64(len(depths)), max, 100*float64(zero)/float64(len(depths)), len(depths))
		}
	}
}

// Fig9 reproduces Fig. 9: cumulative generated reuse against normalized
// task creation id, per benchmark, under dynamic ATM.
func Fig9(opt Options) {
	fmt.Fprintf(opt.Out, "Fig. 9: redundancy generation (scale=%s); columns: normalized task id, cumulative reuse\n", opt.Scale)
	for _, name := range opt.names() {
		ro := opt.runOpt()
		ro.Trace = true
		o := RunOne(FactoryFor(name), opt.Scale, opt.Workers, Dynamic(true), ro)
		xs, ys := o.Tracer.CumulativeReuse()
		fmt.Fprintf(opt.Out, "\n%s: %d reuse-generating tasks, reuse %.1f%%\n", name, len(xs), 100*o.Reuse())
		step := 1
		if len(xs) > 16 {
			step = len(xs) / 16
		}
		t := newTable(opt.Out)
		for i := 0; i < len(xs); i += step {
			t.rowf("%.3f\t%.3f", xs[i], ys[i])
		}
		if len(xs) > 0 {
			t.rowf("%.3f\t%.3f", xs[len(xs)-1], ys[len(ys)-1])
		}
		t.flush()
	}
}
