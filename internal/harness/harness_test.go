package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"atm/internal/apps"
)

func testOpts(buf *bytes.Buffer, benches ...string) Options {
	return Options{
		Scale:      apps.ScaleTest,
		Workers:    4,
		Repeats:    1,
		Benchmarks: benches,
		Out:        buf,
	}
}

func TestFactoryForAllBenchmarks(t *testing.T) {
	for _, name := range Benchmarks() {
		if FactoryFor(name) == nil {
			t.Fatalf("no factory for %q", name)
		}
	}
	if FactoryFor("nope") != nil {
		t.Fatal("unknown benchmark must return nil")
	}
	for _, alias := range []string{"gauss-seidel", "SparseLU", "blackscholes"} {
		if FactoryFor(alias) == nil {
			t.Fatalf("alias %q must resolve", alias)
		}
	}
}

func TestSpecNames(t *testing.T) {
	if Baseline().Name() != "baseline" {
		t.Fatal("baseline name")
	}
	if Static(false).Name() != "Static ATM (THT)" {
		t.Fatal(Static(false).Name())
	}
	if Dynamic(true).Name() != "Dynamic ATM (THT+IKT)" {
		t.Fatal(Dynamic(true).Name())
	}
	if !strings.Contains(Fixed(3, true).Name(), "Fixed-p") {
		t.Fatal(Fixed(3, true).Name())
	}
}

func TestRunOneBaselineVsStatic(t *testing.T) {
	f := FactoryFor("Blackscholes")
	base := RunOne(f, apps.ScaleTest, 2, Baseline(), RunOptions{})
	if base.Elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
	if len(base.Stats.Types) != 0 {
		t.Fatal("baseline must carry no ATM stats")
	}
	st := RunOne(f, apps.ScaleTest, 2, Static(true), RunOptions{})
	if st.Reuse() <= 0 {
		t.Fatal("static ATM must find reuse in Blackscholes")
	}
	if c := st.App.Correctness(base.App); c < 99.999 {
		t.Fatalf("static correctness=%v", c)
	}
	if st.ATMMemory <= 0 {
		t.Fatal("ATM memory must be accounted")
	}
	if sp := Speedup(base, st); sp <= 0 {
		t.Fatalf("speedup=%v", sp)
	}
}

func TestRunMedianPicksMiddle(t *testing.T) {
	f := FactoryFor("Kmeans")
	o := RunMedian(f, apps.ScaleTest, 2, Baseline(), RunOptions{}, 3)
	if o.Elapsed <= 0 {
		t.Fatal("median run must be measured")
	}
}

func TestOracleAlwaysFindsFullP(t *testing.T) {
	f := FactoryFor("LU")
	ref := RunOne(f, apps.ScaleTest, 2, Baseline(), RunOptions{})
	or := Oracle(f, apps.ScaleTest, 2, ref, 99.99, true, RunOptions{}, 1)
	if !or.Found {
		t.Fatal("oracle must at least find p=100%")
	}
	if or.Correctness < 99.99 {
		t.Fatalf("oracle correctness=%v", or.Correctness)
	}
}

func TestChosenLevelsExposed(t *testing.T) {
	o := RunOne(FactoryFor("Kmeans"), apps.ScaleTest, 2, Dynamic(true), RunOptions{})
	if len(o.ChosenLevels) == 0 {
		t.Fatal("dynamic run must expose chosen levels")
	}
	for name, level := range o.ChosenLevels {
		if name == "" || level < 0 || level > 15 {
			t.Fatalf("bad chosen level %q=%d", name, level)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean=%v", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, -1}) != 0 {
		t.Fatal("degenerate geomeans must be 0")
	}
}

func TestPLabel(t *testing.T) {
	if pLabel(15) != "100%" {
		t.Fatal(pLabel(15))
	}
	if pLabel(0) != "2^-15*100%" {
		t.Fatal(pLabel(0))
	}
}

func TestFormatHelpers(t *testing.T) {
	if fx(1.5) != "1.50x" || fpct(12.345) != "12.35%" {
		t.Fatal("formatters")
	}
	if !strings.Contains(fbytes(2<<20), "MiB") || !strings.Contains(fbytes(100), "B") {
		t.Fatal("byte formatter")
	}
	if !strings.Contains(fbytes(3<<30), "GiB") || !strings.Contains(fbytes(5<<10), "KiB") {
		t.Fatal("byte formatter units")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(testOpts(&buf, "Blackscholes"))
	out := buf.String()
	for _, want := range []string{"Table I", "bs_thread", "Prices Vector"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	Table2(testOpts(&buf))
	out := buf.String()
	for _, want := range []string{"Jacobi", "150", "20%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	Table3(testOpts(&buf, "Kmeans"))
	if !strings.Contains(buf.String(), "Overhead") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	Fig5(testOpts(&buf, "Kmeans"))
	out := buf.String()
	if !strings.Contains(out, "dynamic ATM chose p") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "2^-15*100%") || !strings.Contains(out, "100%") {
		t.Fatal("must sweep all 16 levels")
	}
}

func TestFig9Output(t *testing.T) {
	var buf bytes.Buffer
	Fig9(testOpts(&buf, "Blackscholes"))
	if !strings.Contains(buf.String(), "reuse") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestFig7And8RunAtTestScale(t *testing.T) {
	var buf bytes.Buffer
	opt := testOpts(&buf)
	opt.Workers = 4
	Fig7(opt)
	if !strings.Contains(buf.String(), "Core 1") {
		t.Fatalf("fig7 output:\n%s", buf.String())
	}
	buf.Reset()
	Fig8(opt)
	if !strings.Contains(buf.String(), "ready tasks") {
		t.Fatalf("fig8 output:\n%s", buf.String())
	}
}

func TestEvalMatrixSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opt := testOpts(&bytes.Buffer{})
	r := evalMatrix("Kmeans", opt)
	if r.baseline.Elapsed <= 0 {
		t.Fatal("baseline missing")
	}
	if !r.oracle100.Found || !r.oracle95.Found {
		t.Fatal("oracles must find a config")
	}
	if r.corrStatic < 99.9 {
		t.Fatalf("static ATM must be exact: %v", r.corrStatic)
	}
	if r.oracle95.Correctness < 95 {
		t.Fatalf("oracle95 bound violated: %v", r.oracle95.Correctness)
	}
}

func TestStateShare(t *testing.T) {
	if stateShare(make([]time.Duration, 6)) != "-" {
		t.Fatal("zero durations must render as '-'")
	}
}

// TestRunOneDeterministicReproducible pins the harness-level replay
// guarantee: two runs under the same seed in deterministic mode produce
// identical memoization statistics — the schedule, and therefore every
// THT/IKT hit, replays bit-identically.
func TestRunOneDeterministicReproducible(t *testing.T) {
	f := FactoryFor("Kmeans")
	ro := RunOptions{Deterministic: true, Seed: 42}
	a := RunOne(f, apps.ScaleTest, 4, Dynamic(true), ro)
	b := RunOne(f, apps.ScaleTest, 4, Dynamic(true), ro)
	if len(a.Stats.Types) == 0 {
		t.Fatal("no memoized types")
	}
	for i, ts := range a.Stats.Types {
		us := b.Stats.Types[i]
		if ts.Tasks != us.Tasks || ts.Executed != us.Executed ||
			ts.MemoizedTHT != us.MemoizedTHT || ts.MemoizedIKT != us.MemoizedIKT {
			t.Fatalf("type %s diverged across same-seed det runs: %+v vs %+v", ts.Name, ts, us)
		}
	}
	if a.Stats.THTLookups != b.Stats.THTLookups || a.Stats.THTHits != b.Stats.THTHits {
		t.Fatalf("THT traffic diverged: %d/%d vs %d/%d",
			a.Stats.THTHits, a.Stats.THTLookups, b.Stats.THTHits, b.Stats.THTLookups)
	}
}

// TestRunOneDeterministicChainSkipsPeriodicSaver pins that deterministic
// mode suppresses the background delta saver (its rt.Wait may only run on
// the master goroutine) while the final post-run delta save still lands.
func TestRunOneDeterministicChainSkipsPeriodicSaver(t *testing.T) {
	chain := t.TempDir() + "/det.atmchain"
	ro := RunOptions{Deterministic: true, Seed: 7,
		SnapshotChain: chain, SnapshotDeltaEvery: time.Millisecond}
	o := RunOne(FactoryFor("Blackscholes"), apps.ScaleTest, 2, Static(true), ro)
	if o.SnapshotErr != nil {
		t.Fatal(o.SnapshotErr)
	}
	if o.DeltaSaves != 1 {
		t.Fatalf("want exactly the final delta save, got %d", o.DeltaSaves)
	}
}
