package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"atm/internal/apps"
	"atm/internal/failpoint"
	"atm/internal/persist"
)

// buildChainFile runs two chain-mode repetitions (cold then warm) and
// returns the chain path plus its healthy bytes.
func buildChainFile(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	f := FactoryFor("Blackscholes")
	chain := filepath.Join(dir, "warm.atmchain")
	for i := 0; i < 2; i++ {
		if o := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain}); o.SnapshotErr != nil {
			t.Fatalf("rep %d: %v", i, o.SnapshotErr)
		}
	}
	data, err := os.ReadFile(chain)
	if err != nil {
		t.Fatal(err)
	}
	return chain, data
}

// TestRecoverPolicyMatrix pins the three reactions to a torn chain
// file (the docs/persistence.md matrix): strict reports and runs cold
// leaving the file for inspection; salvage repairs it and warm-starts
// from the prefix; cold discards it and recreates the chain.
func TestRecoverPolicyMatrix(t *testing.T) {
	f := FactoryFor("Blackscholes")
	chain, healthy := buildChainFile(t, t.TempDir())
	torn := healthy[:len(healthy)-3] // cut inside the last record

	tear := func() {
		t.Helper()
		if err := os.WriteFile(chain, torn, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Strict: the damage is surfaced, the run is cold, the file is
	// untouched for snapshotctl to inspect.
	tear()
	o := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain, Recover: RecoverStrict})
	if o.SnapshotErr == nil || o.WarmStart || o.Salvaged || o.ColdFallback {
		t.Fatalf("strict on torn chain: %+v (err=%v)", o, o.SnapshotErr)
	}
	if got, _ := os.ReadFile(chain); !bytes.Equal(got, torn) {
		t.Fatal("strict must leave the damaged file untouched")
	}

	// Salvage: the torn tail is truncated on disk, the run warm-starts
	// from the surviving prefix and appends its own delta afterwards.
	o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain, Recover: RecoverSalvage})
	if o.SnapshotErr != nil {
		t.Fatalf("salvage run: %v", o.SnapshotErr)
	}
	if !o.WarmStart || !o.Salvaged || o.ColdFallback || o.RestoredEntries == 0 {
		t.Fatalf("salvage on torn chain must warm-start from the prefix: %+v", o)
	}
	if o.Recovery.BytesTruncated == 0 || o.Recovery.RecordsKept == 0 {
		t.Fatalf("salvage recovery report: %+v", o.Recovery)
	}
	if _, _, err := persist.LoadChain(chain); err != nil {
		t.Fatalf("chain after salvage run must load strictly: %v", err)
	}

	// Salvage on a clean file is invisible: no report, plain warm start.
	o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain, Recover: RecoverSalvage})
	if o.SnapshotErr != nil || !o.WarmStart || o.Salvaged || o.ColdFallback {
		t.Fatalf("salvage on clean chain: %+v (err=%v)", o, o.SnapshotErr)
	}

	// Cold: the damaged file is discarded, the run starts cold and
	// recreates the chain, which then loads clean.
	tear()
	o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain, Recover: RecoverCold})
	if o.SnapshotErr != nil {
		t.Fatalf("cold run: %v", o.SnapshotErr)
	}
	if o.WarmStart || o.Salvaged || !o.ColdFallback {
		t.Fatalf("cold on torn chain must discard and run cold: %+v", o)
	}
	if _, _, err := persist.LoadChain(chain); err != nil {
		t.Fatalf("recreated chain must load strictly: %v", err)
	}

	// Salvage on unrecoverable corruption degrades to the cold path.
	bad := bytes.Clone(healthy)
	bad[len(bad)-6] ^= 0xff // inside the last record body: CRC trips
	if err := os.WriteFile(chain, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain, Recover: RecoverSalvage})
	if o.SnapshotErr != nil {
		t.Fatalf("salvage-on-corrupt run: %v", o.SnapshotErr)
	}
	if o.WarmStart || o.Salvaged || !o.ColdFallback {
		t.Fatalf("salvage on corrupt chain must fall back cold: %+v", o)
	}
	if _, _, err := persist.LoadChain(chain); err != nil {
		t.Fatalf("recreated chain must load strictly: %v", err)
	}
}

// TestRecoverPolicyLoadPath covers the whole-table -load path: salvage
// warm-starts from a torn v2 file WITHOUT mutating it (the file may be
// shared input), and both non-strict policies degrade unrecoverable
// files to a cold run instead of an error.
func TestRecoverPolicyLoadPath(t *testing.T) {
	f := FactoryFor("Blackscholes")
	dir := t.TempDir()
	chain, healthy := buildChainFile(t, dir)
	torn := healthy[:len(healthy)-3]
	if err := os.WriteFile(chain, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	o := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotLoad: chain, Recover: RecoverSalvage})
	if o.SnapshotErr != nil || !o.WarmStart || !o.Salvaged {
		t.Fatalf("salvage load of torn file: %+v (err=%v)", o, o.SnapshotErr)
	}
	if got, _ := os.ReadFile(chain); !bytes.Equal(got, torn) {
		t.Fatal("salvage via -load must not mutate the file")
	}

	// Corrupt beyond salvage: cold fallback, file untouched, no error.
	bad := bytes.Clone(healthy)
	bad[len(bad)-6] ^= 0xff
	if err := os.WriteFile(chain, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []RecoverPolicy{RecoverSalvage, RecoverCold} {
		o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotLoad: chain, Recover: policy})
		if o.SnapshotErr != nil || o.WarmStart || !o.ColdFallback {
			t.Fatalf("%v load of corrupt file: %+v (err=%v)", policy, o, o.SnapshotErr)
		}
		if got, _ := os.ReadFile(chain); !bytes.Equal(got, bad) {
			t.Fatalf("%v via -load must not delete the input file", policy)
		}
	}
}

// TestSaverRetryAndFailureBudget pins the delta saver's bounded retry:
// transient append failures are retried with backoff and succeed
// silently (counted in SaverRetries), persistent failures exhaust the
// budget, land in SnapshotErr and count as a SaverFailure.
func TestSaverRetryAndFailureBudget(t *testing.T) {
	defer failpoint.DisableAll()
	oldBase, oldMax := saverBackoffBase, saverMaxAttempts
	saverBackoffBase, saverMaxAttempts = time.Millisecond, 3
	defer func() { saverBackoffBase, saverMaxAttempts = oldBase, oldMax }()

	f := FactoryFor("Blackscholes")
	chain := filepath.Join(t.TempDir(), "warm.atmchain")

	// Fail the first two append attempts; the third lands.
	calls := 0
	failpoint.Enable(persist.FailpointAppend, func() error {
		calls++
		if calls <= 2 {
			return failpoint.ErrInjected
		}
		return nil
	})
	o := RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain})
	if o.SnapshotErr != nil {
		t.Fatalf("transient failures within budget must not surface: %v", o.SnapshotErr)
	}
	if o.SaverRetries != 2 || o.SaverFailures != 0 || o.DeltaSaves != 1 {
		t.Fatalf("retry accounting: retries=%d failures=%d saves=%d", o.SaverRetries, o.SaverFailures, o.DeltaSaves)
	}
	failpoint.Disable(persist.FailpointAppend)
	if _, _, err := persist.LoadChain(chain); err != nil {
		t.Fatalf("chain after retried save must load strictly: %v", err)
	}

	// Persistent failure: the budget is spent, the save abandoned.
	failpoint.Enable(persist.FailpointAppend, func() error { return failpoint.ErrInjected })
	o = RunOne(f, apps.ScaleTest, 4, Static(true), RunOptions{SnapshotChain: chain})
	failpoint.Disable(persist.FailpointAppend)
	if o.SnapshotErr == nil || o.SaverFailures != 1 || o.DeltaSaves != 0 {
		t.Fatalf("exhausted budget: err=%v failures=%d saves=%d", o.SnapshotErr, o.SaverFailures, o.DeltaSaves)
	}
	if o.SaverRetries != saverMaxAttempts-1 {
		t.Fatalf("exhausted budget retries: %d, want %d", o.SaverRetries, saverMaxAttempts-1)
	}
	// The failed append self-truncated every attempt: the chain still
	// loads strictly (it just lacks the abandoned delta).
	if _, _, err := persist.LoadChain(chain); err != nil {
		t.Fatalf("chain after abandoned save must load strictly: %v", err)
	}
}
