package harness

import (
	"atm/internal/persist"
	"atm/internal/service"
)

// Serve-mode: the harness's evaluation matrix (ATMSpec) and persistence
// options (RunOptions) applied to a long-lived service engine instead
// of a one-shot benchmark run. cmd/atmd uses this to get exactly the
// warm-start / delta-chain / recovery-policy behavior atmbench has,
// behind an HTTP front-end.

// ServeInfo describes how a served engine came up: the same
// warm-start and recovery fields RunOne reports in its Outcome.
type ServeInfo struct {
	// WarmStart reports the engine restored state from a snapshot or
	// chain before serving; RestoredEntries counts the THT entries it
	// installed.
	WarmStart       bool
	RestoredEntries int64
	// Salvaged / ColdFallback / Recovery mirror Outcome's recovery
	// reporting (docs/persistence.md).
	Salvaged     bool
	ColdFallback bool
	Recovery     persist.RecoveryReport
	// SnapshotErr is a load failure surfaced under RecoverStrict; the
	// engine still serves, cold.
	SnapshotErr error
}

// Serve opens the memoization state for spec under opt's persistence
// options and starts a service engine over it. cfg supplies the
// service-side knobs (workers, backlog watermark, coalescing);
// cfg.Memo, cfg.Policy, cfg.Save and cfg.SaveEvery are overwritten
// from spec and opt:
//
//   - chain mode (opt.SnapshotChain): the engine warm-starts from the
//     chain under opt.Recover, and the Save hook appends a delta record
//     of the churn since the last save — POST /v1/snapshot, the periodic
//     opt.SnapshotDeltaEvery saver, and the final save on Close all go
//     through it.
//   - whole-table mode (opt.SnapshotPath / SnapshotLoad / SnapshotSave):
//     warm-start from the load path if present, Save rewrites the save
//     path.
//   - neither: no persistence; POST /v1/snapshot needs an explicit path.
//
// The caller owns the returned engine and must Close it (which runs the
// final save).
func Serve(spec ATMSpec, opt RunOptions, cfg service.Config) (*service.Engine, ServeInfo) {
	st := openMemo(spec, opt)
	info := ServeInfo{
		WarmStart:    st.warm,
		Salvaged:     st.salvaged,
		ColdFallback: st.coldFB,
		Recovery:     st.recovery,
		SnapshotErr:  st.err,
	}
	if spec.Enabled {
		cfg.Memo = st.memo
	} else {
		cfg.Memo = nil
	}
	cfg.Policy = opt.Policy
	cfg.Save = nil
	cfg.SaveEvery = 0
	if cfg.Memo != nil && (st.chain != "" || st.save != "") {
		cfg.Save = st.saveNow
		cfg.SaveEvery = opt.SnapshotDeltaEvery
	}
	eng := service.New(cfg)
	// Restored sections install as the engine registers its task types,
	// so the count is only meaningful after construction.
	if cfg.Memo != nil {
		info.RestoredEntries = cfg.Memo.RestoredEntries()
	}
	return eng, info
}
