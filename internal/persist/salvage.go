package persist

import (
	"fmt"
	"os"

	"atm/internal/core"
)

// This file is the recovery half of the crash-consistency story: the
// write paths (durable.go) guarantee a crash leaves either the previous
// file or a valid-prefix-plus-torn-tail, and the functions here turn
// the latter back into a valid file. Salvage is read-only
// classification; RepairChain is the mutating step that truncates the
// tail, and the only one callers may follow with AppendDelta — new
// records appended after torn bytes would be unreachable garbage.

// RecoveryReport describes what a salvage pass found and kept.
type RecoveryReport struct {
	// RecordsKept counts the records in the valid prefix.
	RecordsKept int
	// BytesKept is the salvage boundary: the file is valid up to this
	// offset (header included), and RepairChain truncates to it.
	BytesKept int64
	// BytesTruncated counts the torn-tail bytes past the boundary;
	// zero means the file was already clean.
	BytesTruncated int64
	// Reason is the decode failure that ended the valid prefix, empty
	// for a clean file.
	Reason string
}

// Clean reports whether the file needed no salvage.
func (r RecoveryReport) Clean() bool { return r.BytesTruncated == 0 }

// SalvageChain decodes as much of a version-2 chain as is valid. For a
// clean chain it behaves as UnmarshalChain with a Clean report. For a
// torn tail — the bytes ran out mid-record, the prefix before it
// intact, which is exactly what a crash mid-append or a lost tail page
// leaves — it returns the decoded prefix and a report saying what was
// dropped. Anything else (bad header, CRC mismatch, invalid record
// contents, a tear before the first record boundary) is unrecoverable:
// the error is returned and the report's Reason records it.
func SalvageChain(data []byte) (*core.Snapshot, []*core.Delta, RecoveryReport, error) {
	base, deltas, boundary, torn, err := scanChain(data)
	rep := RecoveryReport{
		RecordsKept:    len(deltas),
		BytesKept:      int64(boundary),
		BytesTruncated: int64(len(data) - boundary),
	}
	if base != nil {
		rep.RecordsKept++
	}
	if err == nil {
		if rep.RecordsKept == 0 {
			err = fmt.Errorf("%w: chain with no records", ErrCorrupt)
			rep.Reason = err.Error()
			return nil, nil, rep, err
		}
		return base, deltas, rep, nil
	}
	rep.Reason = err.Error()
	if torn && rep.RecordsKept > 0 {
		return base, deltas, rep, nil
	}
	return nil, nil, rep, fmt.Errorf("persist: unsalvageable chain: %w", err)
}

// LoadChainSalvage is LoadChain with a torn tail tolerated: a version-2
// file cut mid-record loads as its valid prefix, with the report saying
// what was dropped. The file itself is not modified — call RepairChain
// before appending to a torn chain. Version-1 files have a single
// implicit record, so they are either clean or unrecoverable.
func LoadChainSalvage(path string) (*core.Snapshot, []*core.Delta, RecoveryReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, RecoveryReport{}, err
	}
	ver, err := FileVersion(data)
	if err != nil {
		rep := RecoveryReport{BytesTruncated: int64(len(data)), Reason: err.Error()}
		return nil, nil, rep, fmt.Errorf("%s: unsalvageable: %w", path, err)
	}
	switch ver {
	case Version:
		s, err := Unmarshal(data)
		if err != nil {
			rep := RecoveryReport{BytesTruncated: int64(len(data)), Reason: err.Error()}
			return nil, nil, rep, fmt.Errorf("%s: unsalvageable: %w", path, err)
		}
		return s, nil, RecoveryReport{RecordsKept: 1, BytesKept: int64(len(data))}, nil
	case Version2:
		base, deltas, rep, err := SalvageChain(data)
		if err != nil {
			return nil, nil, rep, fmt.Errorf("%s: %w", path, err)
		}
		return base, deltas, rep, nil
	default:
		rep := RecoveryReport{BytesTruncated: int64(len(data))}
		err := fmt.Errorf("%w: file version %d", ErrVersion, ver)
		rep.Reason = err.Error()
		return nil, nil, rep, fmt.Errorf("%s: unsalvageable: %w", path, err)
	}
}

// RepairChain makes a chain file valid again after a crash: it sweeps
// the stale temp file a crashed save may have left, and if the chain
// has a torn tail, truncates it back to the last valid record boundary
// (atomically, via the same temp-and-rename discipline as a save, so a
// crash mid-repair cannot make things worse). A clean file is left
// untouched. Unrecoverable files are not modified either — the caller
// decides whether to discard them. The report describes what was (or
// for an unrecoverable file, would have to be) dropped.
func RepairChain(path string, sync SyncPolicy) (RecoveryReport, error) {
	if _, err := RemoveStaleTemp(path); err != nil {
		return RecoveryReport{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return RecoveryReport{}, err
	}
	ver, err := FileVersion(data)
	if err != nil {
		rep := RecoveryReport{BytesTruncated: int64(len(data)), Reason: err.Error()}
		return rep, fmt.Errorf("%s: unsalvageable: %w", path, err)
	}
	if ver == Version {
		if _, err := Unmarshal(data); err != nil {
			rep := RecoveryReport{BytesTruncated: int64(len(data)), Reason: err.Error()}
			return rep, fmt.Errorf("%s: unsalvageable: %w", path, err)
		}
		return RecoveryReport{RecordsKept: 1, BytesKept: int64(len(data))}, nil
	}
	_, _, rep, err := SalvageChain(data)
	if err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Clean() {
		return rep, nil
	}
	if err := writeAtomic(path, data[:rep.BytesKept], sync); err != nil {
		return rep, err
	}
	return rep, nil
}
