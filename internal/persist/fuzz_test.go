package persist

import (
	"bytes"
	"errors"
	"testing"

	"atm/internal/core"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the strict decoder.
// Two properties hold for every input:
//
//  1. Unmarshal never panics — corrupt snapshots must degrade a warm
//     start into a typed error, not a crash.
//  2. Any input the decoder accepts is canonical: encode(decode(b))
//     reproduces b byte for byte (the strict decoder leaves no slack —
//     exact lengths, validated enums, no trailing bytes — so one
//     logical snapshot has exactly one encoding, and a snapshot that
//     survives a save/load cycle can never drift).
//
// The corpus is seeded with real encoded snapshots (plus their
// truncations and single-byte corruptions via the fuzzer's mutations).
// FuzzDeltaChainDecode is FuzzSnapshotRoundTrip for the version-2
// chain format: decoding arbitrary bytes must never panic, and any
// accepted chain is canonical — MarshalChain(UnmarshalChain(b))
// reproduces b byte for byte (exact lengths, validated enums and type
// indices, zeroed meta fields on meta-less type rows, records ending
// exactly at EOF), so a chain that survives a load/append cycle can
// never drift.
func FuzzDeltaChainDecode(f *testing.F) {
	base, deltas := buildChain(f)
	if data, err := MarshalChain(base, deltas); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	if dOnly, err := MarshalChain(nil, deltas); err == nil {
		f.Add(dOnly)
	}
	// A budget-evicting chain: its deltas interleave inserts with
	// tombstone records, seeding the optional tombstone section of the
	// delta body (count, type index, position ordering, identity rows).
	if eb, eds, _ := buildEvictChain(f); len(eds) > 0 {
		if data, err := MarshalChain(eb, eds); err == nil {
			f.Add(data)
			f.Add(data[:len(data)*3/4])
		}
	}
	if v1, err := Marshal(base); err == nil {
		f.Add(v1) // version skew path
	}
	f.Add([]byte{})
	f.Add([]byte("ATMSNAP\x00junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Salvage invariants hold for every input, accepted or not:
		// SalvageChain never panics, and whatever it keeps re-encodes
		// to exactly the bytes it reported keeping — salvage is a
		// truncation to a valid prefix, never a rewrite.
		sb, sds, rep, serr := SalvageChain(data)
		if serr == nil {
			if rep.BytesKept+rep.BytesTruncated != int64(len(data)) {
				t.Fatalf("salvage report does not partition the input: %+v of %d bytes", rep, len(data))
			}
			senc, err := MarshalChain(sb, sds)
			if err != nil {
				t.Fatalf("salvaged chain failed to re-encode: %v", err)
			}
			if !bytes.Equal(senc, data[:rep.BytesKept]) {
				t.Fatal("salvaged prefix must be canonical: encode(salvage(b)) != b[:BytesKept]")
			}
		}

		b, ds, err := UnmarshalChain(data)
		if err != nil {
			if serr == nil && rep.Clean() {
				t.Fatalf("salvage called a strictly-rejected chain clean: %v", err)
			}
			return // rejected: fine, as long as we did not panic
		}
		if serr != nil || !rep.Clean() {
			t.Fatalf("strictly-accepted chain must salvage clean: %v (%+v)", serr, rep)
		}
		enc, err := MarshalChain(b, ds)
		if err != nil {
			t.Fatalf("decoded chain failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("accepted chain must be canonical: encode(decode(b)) != b")
		}
		if _, _, err := UnmarshalChain(enc); err != nil {
			t.Fatalf("re-encoded chain failed to decode: %v", err)
		}
	})
}

// FuzzMergeSnapshots drives MergeSnapshots with pairs of decoded
// snapshots: merging must never panic, must reject fingerprint skew
// with the typed error, and an accepted merge must be commutative
// (merge(a,b) == merge(b,a) byte for byte — the shard-reordering
// determinism property, fuzzed) and itself round-trip through the
// codec.
func FuzzMergeSnapshots(f *testing.F) {
	snap := buildSnapshot(f)
	if data, err := Marshal(snap); err == nil {
		f.Add(data, data)
		if empty, err := Marshal(&core.Snapshot{Fingerprint: snap.Fingerprint}); err == nil {
			f.Add(data, empty)
		}
	}
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, errA := Unmarshal(rawA)
		b, errB := Unmarshal(rawB)
		if errA != nil || errB != nil {
			return
		}
		ab, err := MergeSnapshots(a, b)
		if a.Fingerprint != b.Fingerprint {
			if !errors.Is(err, core.ErrSnapshotConfig) {
				t.Fatalf("fingerprint skew must be typed: %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("merge of two valid snapshots failed: %v", err)
		}
		ba, err := MergeSnapshots(b, a)
		if err != nil {
			t.Fatalf("reversed merge failed: %v", err)
		}
		encAB, err := Marshal(ab)
		if err != nil {
			t.Fatalf("merged snapshot failed to encode: %v", err)
		}
		encBA, err := Marshal(ba)
		if err != nil {
			t.Fatalf("reversed merged snapshot failed to encode: %v", err)
		}
		if !bytes.Equal(encAB, encBA) {
			t.Fatal("merge must be deterministic under shard reordering")
		}
		if _, err := Unmarshal(encAB); err != nil {
			t.Fatalf("merged snapshot failed to decode: %v", err)
		}
	})
}

func FuzzSnapshotRoundTrip(f *testing.F) {
	if data, err := Marshal(buildSnapshot(f)); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	if empty, err := Marshal(&core.Snapshot{}); err == nil {
		f.Add(empty)
	}
	f.Add([]byte{})
	f.Add([]byte("ATMSNAP\x00junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		enc, err := Marshal(s)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("accepted input must be canonical: encode(decode(b)) != b")
		}
		if _, err := Unmarshal(enc); err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
	})
}
