package persist

import (
	"bytes"
	"testing"

	"atm/internal/core"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the strict decoder.
// Two properties hold for every input:
//
//  1. Unmarshal never panics — corrupt snapshots must degrade a warm
//     start into a typed error, not a crash.
//  2. Any input the decoder accepts is canonical: encode(decode(b))
//     reproduces b byte for byte (the strict decoder leaves no slack —
//     exact lengths, validated enums, no trailing bytes — so one
//     logical snapshot has exactly one encoding, and a snapshot that
//     survives a save/load cycle can never drift).
//
// The corpus is seeded with real encoded snapshots (plus their
// truncations and single-byte corruptions via the fuzzer's mutations).
func FuzzSnapshotRoundTrip(f *testing.F) {
	if data, err := Marshal(buildSnapshot(f)); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	if empty, err := Marshal(&core.Snapshot{}); err == nil {
		f.Add(empty)
	}
	f.Add([]byte{})
	f.Add([]byte("ATMSNAP\x00junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		enc, err := Marshal(s)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("accepted input must be canonical: encode(decode(b)) != b")
		}
		if _, err := Unmarshal(enc); err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
	})
}
