package persist

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"

	"atm/internal/failpoint"
)

// This file is the durability discipline shared by every write path of
// the package: crash-consistent atomic rewrites (temp file + fsync +
// rename + directory fsync) and the failpoints that let tests tear any
// of those steps. The policy knob exists because the discipline has a
// real price — an fsync per save — that benchmarks measuring codec
// cost must be able to decline explicitly.

// SyncPolicy selects how hard a save pushes bytes toward the platter
// before reporting success.
type SyncPolicy int

const (
	// SyncAlways is the crash-consistent discipline and the default for
	// every Save/SaveChain/AppendDelta: the temp file is fsynced before
	// the publishing rename and the parent directory after it (on
	// ext4/xfs the rename can hit disk before the data, publishing an
	// empty or partial file), and an appended delta record is fsynced
	// before AppendDelta returns.
	SyncAlways SyncPolicy = iota
	// SyncOff skips every fsync: a crash may lose or tear the most
	// recent saves (the salvage path still recovers the valid prefix).
	// For benchmarks and throwaway state only.
	SyncOff
)

// Failpoint names (see internal/failpoint): FailpointWrite tears the
// temp-file write (partial-write injection: only a prefix of the bytes
// lands), FailpointSync fails the pre-rename fsync, FailpointRename
// fails the publishing rename, and FailpointAppend tears AppendDelta's
// record write. Tests use them to pin the error-path contracts —
// Save/SaveChain never leave a *.tmp file behind and a failed append
// leaves the chain loadable — and, with failpoint.ErrCrash, to freeze
// the exact on-disk image a crash would leave (internal/crashfuzz).
const (
	FailpointWrite  = "persist.write"
	FailpointSync   = "persist.sync"
	FailpointRename = "persist.rename"
	FailpointAppend = "persist.append"
)

// crashed reports whether an injected failure simulates a process
// crash: cleanup that a dead process could not have run (removing a
// temp file, truncating a torn append) must be skipped so the caller
// observes the on-disk crash image itself.
func crashed(err error) bool { return errors.Is(err, failpoint.ErrCrash) }

// writeAtomic writes data to path via a same-directory temp file and
// rename, so a crash mid-write leaves the previous file (or none), and
// — under SyncAlways — fsyncs the temp file before the rename and the
// parent directory after it, so a crash just after return cannot
// publish a file whose data never hit disk. Every error path removes
// the temp file: a failed write can leave a partial file on disk
// (ENOSPC, EIO), and leaking it next to the target would accumulate
// one orphan per failed save. (After a real crash the orphan does
// survive; RemoveStaleTemp is the recovery-time sweep for it.)
func writeAtomic(path string, data []byte, sync SyncPolicy) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	drop := func(err error) error {
		f.Close()
		if !crashed(err) {
			os.Remove(tmp)
		}
		return err
	}
	n, werr := failpoint.InjectPartial(FailpointWrite, len(data))
	if _, err := f.Write(data[:n]); err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		return drop(werr)
	}
	if sync == SyncAlways {
		if err := failpoint.Inject(FailpointSync); err != nil {
			return drop(err)
		}
		if err := f.Sync(); err != nil {
			return drop(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := failpoint.Inject(FailpointRename); err != nil {
		if !crashed(err) {
			os.Remove(tmp)
		}
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync == SyncAlways {
		return syncDir(filepath.Dir(path))
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot fsync a directory (some network and FUSE
// mounts) report EINVAL/ENOTSUP; that is the platform declining, not
// the save failing, so it is not surfaced as an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, errors.ErrUnsupported) || errors.Is(err, syscall.EINVAL)) {
		return nil
	}
	return err
}

// RemoveStaleTemp removes the temp file a crashed save may have left
// next to path, reporting whether one existed. Safe to call on every
// recovery: the temp name is an implementation detail of this package,
// and any file under it is by construction an unpublished partial
// write.
func RemoveStaleTemp(path string) (bool, error) {
	tmp := path + ".tmp"
	if err := os.Remove(tmp); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}
