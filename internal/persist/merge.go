package persist

import (
	"bytes"
	"fmt"
	"sort"

	"atm/internal/core"
)

// This file implements the two chain-folding operations of ROADMAP's
// "Snapshot compaction/merge":
//
//   - Compact folds one engine's chain (base + ordered deltas) back
//     into a single full snapshot, preserving replay semantics.
//   - MergeSnapshots combines full snapshots from parallel shards into
//     one, last-writer-wins by key with a deterministic tie-break.
//
// Both are pure functions over decoded snapshots; snapshotctl exposes
// them on files.

// Compact folds a delta chain into one full snapshot: metadata updates
// apply in order, each delta's operations append to its type's section,
// and finally each section's insert/tombstone stream is folded with
// core.FoldEntryOps — every tombstone cancels the oldest uncancelled
// matching insert, exactly what replaying the tombstone against the
// live table would have removed. Restoring the compacted snapshot
// therefore replays the same per-type sequence as Restore(base)
// followed by ApplyDelta of each delta in order — bit-identical engine
// state either way (the property pinned by
// TestCompactEquivalentToDeltaReplay). Surviving duplicate inserts are
// deliberately NOT deduplicated: a key re-inserted by training appears
// twice in the table too, and collapsing it would change bucket
// occupancy and therefore eviction. Because evicted entries' payloads
// are cancelled away, a compacted chain that saw evictions is strictly
// smaller than the chain it folds. The result shares the inputs'
// regions; do not mutate them afterwards.
func Compact(base *core.Snapshot, deltas ...*core.Delta) (*core.Snapshot, error) {
	if base == nil {
		return nil, fmt.Errorf("persist: compact without a base snapshot")
	}
	out := &core.Snapshot{Fingerprint: base.Fingerprint, IKT: base.IKT}
	idx := make(map[string]int, len(base.Types))
	out.Types = make([]core.TypeSnapshot, len(base.Types))
	for i := range base.Types {
		sec := base.Types[i] // copy the struct; share the regions
		// Clip so appends below reallocate instead of scribbling into
		// the base's backing array (compacting the same base twice must
		// not alias).
		sec.Entries = sec.Entries[:len(sec.Entries):len(sec.Entries)]
		if _, dup := idx[sec.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate section for type %q", ErrCorrupt, sec.Name)
		}
		idx[sec.Name] = i
		out.Types[i] = sec
	}
	section := func(name string) *core.TypeSnapshot {
		i, ok := idx[name]
		if !ok {
			i = len(out.Types)
			idx[name] = i
			out.Types = append(out.Types, core.TypeSnapshot{Name: name})
		}
		return &out.Types[i]
	}
	for di, d := range deltas {
		if d.Fingerprint != base.Fingerprint {
			return nil, fmt.Errorf("%w: delta %d fingerprint %#016x, base %#016x",
				core.ErrSnapshotConfig, di, d.Fingerprint, base.Fingerprint)
		}
		for _, td := range d.Types {
			sec := section(td.Name)
			if td.HasMeta {
				sec.Steady = td.Steady
				sec.Level = td.Level
				sec.Successes = td.Successes
				sec.Excluded = td.Excluded
			}
		}
		for i := range d.Entries {
			de := &d.Entries[i]
			if de.Type < 0 || de.Type >= len(d.Types) {
				return nil, fmt.Errorf("%w: delta %d entry %d references type %d of %d",
					ErrCorrupt, di, i, de.Type, len(d.Types))
			}
			sec := section(d.Types[de.Type].Name)
			sec.Entries = append(sec.Entries, de.EntrySnapshot)
		}
	}
	// Fold the accumulated operation streams: tombstones cancel their
	// targets (base entries included — a delta may evict state the base
	// restored), leaving each section a pure insert list, which is what
	// the full-snapshot encoding requires.
	for i := range out.Types {
		out.Types[i].Entries = core.FoldEntryOps(out.Types[i].Entries)
	}
	return out, nil
}

// MergeSnapshots combines full snapshots from parallel shards of a
// sweep into one warm-start snapshot. All inputs must share one config
// fingerprint (core.ErrSnapshotConfig otherwise). Sections merge by
// type name; within a section, entries merge last-writer-wins by
// (key, level) under a pinned, order-free rule, so the result is
// byte-identical no matter how the shards are ordered (the property
// pinned by TestMergeSnapshotsDeterministicUnderShardReordering):
//
//   - the entry with the greater provider task id wins ("last writer":
//     task ids grow monotonically within a shard run);
//   - equal provider ids tie-break on the lexicographically greater
//     encoded entry body, which depends only on the entries' contents.
//
// Section metadata merges to the most-trained shard — maximum by
// (steady, level, successes) lexicographically — except the excluded
// count, which takes the maximum over all shards: any shard that
// observed chaotic outputs keeps the merged type demoted to re-train
// on restore. Output sections are sorted by name and entries by
// (key, level): merging is canonical, not replay-ordered — unlike
// Compact it collapses duplicate keys, which is the point of merging
// shards that learned overlapping state. The result shares the
// inputs' regions; do not mutate them afterwards.
func MergeSnapshots(snaps ...*core.Snapshot) (*core.Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("persist: merge of zero snapshots")
	}
	out := &core.Snapshot{Fingerprint: snaps[0].Fingerprint}
	type entryKey struct {
		key   uint64
		level int8
	}
	type mergedSection struct {
		meta    core.TypeSnapshot
		entries map[entryKey]*core.EntrySnapshot
	}
	sections := map[string]*mergedSection{}
	var scratchA, scratchB []byte
	for si, s := range snaps {
		if s.Fingerprint != out.Fingerprint {
			return nil, fmt.Errorf("%w: snapshot %d fingerprint %#016x, snapshot 0 %#016x",
				core.ErrSnapshotConfig, si, s.Fingerprint, out.Fingerprint)
		}
		out.IKT.Inserts += s.IKT.Inserts
		out.IKT.Defers += s.IKT.Defers
		out.IKT.Rejected += s.IKT.Rejected
		for ti := range s.Types {
			sec := &s.Types[ti]
			m := sections[sec.Name]
			if m == nil {
				m = &mergedSection{
					meta:    core.TypeSnapshot{Name: sec.Name, Steady: sec.Steady, Level: sec.Level, Successes: sec.Successes, Excluded: sec.Excluded},
					entries: map[entryKey]*core.EntrySnapshot{},
				}
				sections[sec.Name] = m
			} else {
				if moreTrained(sec, &m.meta) {
					m.meta.Steady, m.meta.Level, m.meta.Successes = sec.Steady, sec.Level, sec.Successes
				}
				if sec.Excluded > m.meta.Excluded {
					m.meta.Excluded = sec.Excluded
				}
			}
			for ei := range sec.Entries {
				e := &sec.Entries[ei]
				if e.Tombstone {
					// Merging is defined over full snapshots, whose
					// sections are pure insert lists; fold a chain with
					// Compact before merging it.
					return nil, fmt.Errorf("%w: snapshot %d type %q entry %d is a tombstone",
						ErrCorrupt, si, sec.Name, ei)
				}
				k := entryKey{key: e.Key, level: e.Level}
				cur, ok := m.entries[k]
				if !ok {
					m.entries[k] = e
					continue
				}
				var win bool
				win, scratchA, scratchB = entryWins(e, cur, scratchA, scratchB)
				if win {
					m.entries[k] = e
				}
			}
		}
	}
	names := make([]string, 0, len(sections))
	for name := range sections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := sections[name]
		sec := m.meta
		keys := make([]entryKey, 0, len(m.entries))
		for k := range m.entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].key != keys[j].key {
				return keys[i].key < keys[j].key
			}
			return keys[i].level < keys[j].level
		})
		sec.Entries = make([]core.EntrySnapshot, 0, len(keys))
		for _, k := range keys {
			sec.Entries = append(sec.Entries, *m.entries[k])
		}
		out.Types = append(out.Types, sec)
	}
	return out, nil
}

// moreTrained reports whether section a's adaptive metadata dominates
// b's under the merge order: (steady, level, successes) lexicographic.
func moreTrained(a, b *core.TypeSnapshot) bool {
	if a.Steady != b.Steady {
		return a.Steady
	}
	if a.Level != b.Level {
		return a.Level > b.Level
	}
	return a.Successes > b.Successes
}

// entryWins decides the last-writer-wins race between two entries with
// the same (key, level): greater provider id first, then the
// lexicographically greater encoded body. Both comparisons are
// order-free, which is what makes MergeSnapshots deterministic under
// shard reordering. The scratch buffers are threaded through to avoid
// re-allocating per comparison.
func entryWins(a, b *core.EntrySnapshot, scratchA, scratchB []byte) (bool, []byte, []byte) {
	if a.Provider != b.Provider {
		return a.Provider > b.Provider, scratchA, scratchB
	}
	ea, errA := appendEntryBody(scratchA[:0], a)
	eb, errB := appendEntryBody(scratchB[:0], b)
	if errA != nil || errB != nil {
		// Unencodable entries cannot come from a decoded snapshot; keep
		// the incumbent deterministically.
		return false, scratchA, scratchB
	}
	return bytes.Compare(ea, eb) > 0, ea, eb
}
