package persist

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"atm/internal/core"
	"atm/internal/region"
)

// The golden compatibility corpus pins the on-disk byte layout of both
// format versions against drift: the files under testdata/ are
// COMMITTED artifacts, and these tests assert that today's encoder
// still produces them byte for byte and today's decoder still reads
// them. A failure here means the format changed — which must be a
// deliberate version bump (docs/persistence.md), never an accident.
//
// Regenerate with:  go test ./internal/persist -run Golden -update
// (only after a deliberate format change; commit the new files).
var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenFingerprint is a literal, not core.Fingerprint(...): the golden
// files pin bytes, and the fingerprint is opaque payload at this layer.
const goldenFingerprint = 0x0123456789abcdef

// goldenV1Snapshot is a hand-constructed snapshot covering every
// region kind, input-verification payloads, both phases, and an empty
// section — deterministic by construction (no engine, no hashing).
func goldenV1Snapshot() *core.Snapshot {
	f64 := region.NewFloat64(3)
	copy(f64.Data, []float64{1.5, -2.25, 3.125})
	f32 := region.NewFloat32(2)
	copy(f32.Data, []float32{0.5, -8})
	i32 := region.NewInt32(4)
	copy(i32.Data, []int32{-1, 0, 1, 2147483647})
	bts := region.NewBytes(5)
	copy(bts.Data, []byte{0, 1, 2, 254, 255})
	ins := region.NewFloat64(2)
	copy(ins.Data, []float64{42, -42})
	return &core.Snapshot{
		Fingerprint: goldenFingerprint,
		IKT:         core.IKTCounters{Inserts: 7, Defers: 3, Rejected: 1},
		Types: []core.TypeSnapshot{
			{
				Name: "steady-type", Steady: true, Level: 15,
				Entries: []core.EntrySnapshot{
					{Key: 0x1111111111111111, Level: 15, Provider: 9,
						Outs: []region.Region{f64, i32}, Ins: []region.Region{ins}},
					{Key: 0x2222222222222222, Level: 15, Provider: 10,
						Outs: []region.Region{bts}},
				},
			},
			{
				Name: "training-type", Steady: false, Level: 4, Successes: 6, Excluded: 2,
				Entries: []core.EntrySnapshot{
					{Key: 0x3333333333333333, Level: 4, Provider: 11,
						Outs: []region.Region{f32}},
				},
			},
			{Name: "empty-type", Steady: false, Level: 0},
		},
	}
}

// goldenV2Chain is a hand-constructed chain: a small base plus two
// deltas exercising meta rows, entry-target-only rows and an empty
// delta record.
func goldenV2Chain() (*core.Snapshot, []*core.Delta) {
	out1 := region.NewFloat64(2)
	copy(out1.Data, []float64{10, 20})
	out2 := region.NewInt32(2)
	copy(out2.Data, []int32{-5, 5})
	base := &core.Snapshot{
		Fingerprint: goldenFingerprint,
		Types: []core.TypeSnapshot{
			{Name: "alpha", Steady: true, Level: 15,
				Entries: []core.EntrySnapshot{
					{Key: 0xaaaaaaaaaaaaaaaa, Level: 15, Provider: 1, Outs: []region.Region{out1}},
				}},
		},
	}
	d1 := &core.Delta{
		Fingerprint: goldenFingerprint,
		Types: []core.TypeDelta{
			{Name: "alpha"}, // entry target only: meta unchanged since the base
			{Name: "beta", HasMeta: true, Steady: false, Level: 7, Successes: 2, Excluded: 1},
		},
		Entries: []core.DeltaEntry{
			{Type: 0, EntrySnapshot: core.EntrySnapshot{Key: 0xbbbbbbbbbbbbbbbb, Level: 15, Provider: 2, Outs: []region.Region{out2}}},
		},
	}
	d2 := &core.Delta{Fingerprint: goldenFingerprint} // an idle save
	return base, []*core.Delta{d1, d2}
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func writeOrCompare(t *testing.T, path string, want []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update after a deliberate format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from today's encoder output: committed %d bytes, encoder %d bytes (a format change must bump the version and regenerate with -update)",
			path, len(got), len(want))
	}
}

// TestGoldenV1SnapshotLayout pins the version-1 byte layout and proves
// the cross-version guarantee: a committed v1 full snapshot keeps
// decoding — through both the v1 decoder and the chain-aware loader —
// while version 2 exists.
func TestGoldenV1SnapshotLayout(t *testing.T) {
	want, err := Marshal(goldenV1Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := goldenPath(t, "v1_full.atmsnap")
	writeOrCompare(t, path, want)
	if *updateGolden {
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("committed v1 snapshot no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(decoded, goldenV1Snapshot()) {
		t.Fatal("committed v1 snapshot decodes to different content")
	}
	base, deltas, err := LoadChain(path)
	if err != nil {
		t.Fatalf("chain-aware loader must keep reading v1 files: %v", err)
	}
	if deltas != nil || !reflect.DeepEqual(base, decoded) {
		t.Fatal("LoadChain(v1 golden) diverged from Unmarshal")
	}
}

// TestGoldenV2ChainLayout pins the version-2 record-stream byte layout
// (header, record framing, base and delta bodies, per-record and
// per-entry CRCs) against drift.
func TestGoldenV2ChainLayout(t *testing.T) {
	base, deltas := goldenV2Chain()
	want, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	path := goldenPath(t, "v2_chain.atmsnap")
	writeOrCompare(t, path, want)
	if *updateGolden {
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, err := UnmarshalChain(data)
	if err != nil {
		t.Fatalf("committed v2 chain no longer decodes: %v", err)
	}
	wantBase, wantDeltas := goldenV2Chain()
	if !reflect.DeepEqual(gotBase, wantBase) {
		t.Fatal("committed v2 base decodes to different content")
	}
	if !reflect.DeepEqual(gotDeltas, wantDeltas) {
		t.Fatal("committed v2 deltas decode to different content")
	}
}
