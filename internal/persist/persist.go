// Package persist defines the versioned external representation of a
// core memoization snapshot: the on-disk format that lets a process
// warm-start from a previous run's Task History Table instead of
// re-paying the training phase (ROADMAP: warm-start memoization for
// repeated experiment sweeps). Two format versions coexist: version 1
// (this file) is one whole-table snapshot per file; version 2
// (chain.go) is an appendable record stream of a full base plus
// incremental deltas, with Compact and MergeSnapshots to fold chains
// and combine sweep shards.
//
// The version-1 format is a length-prefixed little-endian binary
// layout:
//
//	[8]  magic "ATMSNAP\x00"
//	[4]  u32 format version (currently 1)
//	[8]  u64 config fingerprint (core.Fingerprint)
//	[24] 3 × i64 IKT counters (inserts, defers, rejected)
//	[4]  u32 section count
//	...  sections, each:
//	       [4] u32 body length, then the body:
//	         u16 name length + name bytes
//	         u8 flags (bit 0: steady), u8 level
//	         u32 successes, u32 excluded-region count
//	         u32 entry count
//	         entries, each:
//	           [4] u32 body length, then the body:
//	             u64 key, u8 level, u64 provider id
//	             u16 output count + regions
//	             u16 input-snapshot count + regions
//	           [4] u32 CRC-32 (IEEE) of the entry body
//	region encoding: u8 kind, u32 element count, raw little-endian payload
//
// Decoding is strict: every length prefix must match its content
// exactly, every enum must be in range, every entry CRC must verify,
// and no trailing bytes are tolerated. Violations surface as typed
// errors (ErrBadMagic, ErrVersion, ErrTruncated, ErrCorrupt) — never a
// panic and never a silently mis-decoded snapshot. Version or
// fingerprint skew therefore degrades a warm start into a cold one
// with a diagnosable error, not into wrong hits.
//
// Writes are crash-consistent (docs/persistence.md): whole-table saves
// publish through an fsynced temp file + rename + parent-directory
// sync, delta appends fsync the record and self-truncate on any live
// failure so a retry never double-appends, and a torn tail left by a
// real crash is recovered by SalvageChain/RepairChain, which truncate
// to the last valid CRC-framed record boundary — salvage recovers from
// missing bytes, never wrong ones. SyncPolicy (SyncAlways/SyncOff)
// trades that durability for throughput per call site.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"atm/internal/core"
	"atm/internal/region"
)

// Version is the current format version. Bump it when the layout
// changes; Decode rejects every other version (there is no migration:
// a snapshot is a cache, and a stale cache is discarded).
const Version = 1

// magic identifies a snapshot file. The trailing NUL guards against
// text files that happen to start with the same letters.
var magic = [8]byte{'A', 'T', 'M', 'S', 'N', 'A', 'P', 0}

// HasMagic reports whether data begins with the snapshot file
// signature — the sniff directory-scrub tooling uses to pick snapshot
// files out of a mixed directory without decoding them.
func HasMagic(data []byte) bool {
	return len(data) >= len(magic) && [8]byte(data[:8]) == magic
}

// Typed decode errors. Decode wraps them with positional detail; test
// with errors.Is.
var (
	ErrBadMagic  = errors.New("persist: not an ATM snapshot (bad magic)")
	ErrVersion   = errors.New("persist: unsupported snapshot format version")
	ErrTruncated = errors.New("persist: truncated snapshot")
	ErrCorrupt   = errors.New("persist: corrupt snapshot")
)

// Marshal encodes a snapshot into the versioned binary format.
func Marshal(s *core.Snapshot) ([]byte, error) {
	buf := make([]byte, 0, 1024)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.IKT.Inserts))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.IKT.Defers))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.IKT.Rejected))
	if len(s.Types) > math.MaxUint32 {
		return nil, fmt.Errorf("persist: %d sections overflow the format", len(s.Types))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Types)))
	var body, entry []byte // reused scratch
	for i := range s.Types {
		sec := &s.Types[i]
		var err error
		body, err = appendSectionBody(body[:0], sec, &entry)
		if err != nil {
			return nil, err
		}
		if len(body) > math.MaxUint32 {
			return nil, fmt.Errorf("persist: type %q: %d-byte section overflows the format", sec.Name, len(body))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		buf = append(buf, body...)
	}
	return buf, nil
}

func appendSectionBody(body []byte, sec *core.TypeSnapshot, entry *[]byte) ([]byte, error) {
	if len(sec.Name) > math.MaxUint16 {
		return nil, fmt.Errorf("persist: type name %q overflows the format", sec.Name[:32])
	}
	body = binary.LittleEndian.AppendUint16(body, uint16(len(sec.Name)))
	body = append(body, sec.Name...)
	var flags byte
	if sec.Steady {
		flags |= 1
	}
	body = append(body, flags, byte(sec.Level))
	body = binary.LittleEndian.AppendUint32(body, uint32(sec.Successes))
	body = binary.LittleEndian.AppendUint32(body, uint32(sec.Excluded))
	if len(sec.Entries) > math.MaxUint32 {
		return nil, fmt.Errorf("persist: type %q: %d entries overflow the format", sec.Name, len(sec.Entries))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(sec.Entries)))
	for j := range sec.Entries {
		eb, err := appendEntryBody((*entry)[:0], &sec.Entries[j])
		if err != nil {
			return nil, fmt.Errorf("persist: type %q entry %d: %w", sec.Name, j, err)
		}
		*entry = eb
		if len(eb) > math.MaxUint32 {
			return nil, fmt.Errorf("persist: type %q entry %d: %d-byte body overflows the format", sec.Name, j, len(eb))
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(eb)))
		body = append(body, eb...)
		body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(eb))
	}
	return body, nil
}

func appendEntryBody(b []byte, e *core.EntrySnapshot) ([]byte, error) {
	if e.Tombstone {
		// Tombstones exist only in delta operation streams, where they
		// are serialized by the chain format's tombstone section; a full
		// snapshot (or a v1 entry) carrying one is a caller bug.
		return nil, fmt.Errorf("tombstone entry in a full-entry encoding")
	}
	b = binary.LittleEndian.AppendUint64(b, e.Key)
	b = append(b, byte(e.Level))
	b = binary.LittleEndian.AppendUint64(b, e.Provider)
	for _, rs := range [2][]region.Region{e.Outs, e.Ins} {
		if len(rs) > math.MaxUint16 {
			return nil, fmt.Errorf("%d regions overflow the format", len(rs))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rs)))
		for _, r := range rs {
			var err error
			b, err = appendRegion(b, r)
			if err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendRegion(b []byte, r region.Region) ([]byte, error) {
	if r.NumElems() > math.MaxUint32 {
		return nil, fmt.Errorf("region with %d elements overflows the format", r.NumElems())
	}
	b = append(b, byte(r.Kind()))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.NumElems()))
	switch r := r.(type) {
	case *region.Float64:
		for _, v := range r.Data {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case *region.Float32:
		for _, v := range r.Data {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
		}
	case *region.Int32:
		for _, v := range r.Data {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	case *region.Bytes:
		b = append(b, r.Data...)
	default:
		return nil, fmt.Errorf("unsupported region type %T", r)
	}
	return b, nil
}

// decoder is a bounds-checked cursor over an in-memory buffer. Every
// read validates the remaining length first, so Decode can never panic
// on arbitrary input, and allocation sizes are implied by (and checked
// against) the bytes actually present.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) need(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, d.off, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u8() (byte, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Unmarshal decodes a snapshot, strictly. See the package comment for
// the error contract.
func Unmarshal(data []byte) (*core.Snapshot, error) {
	d := &decoder{data: data}
	head, err := d.need(8)
	if err != nil {
		return nil, err
	}
	if [8]byte(head) != magic {
		return nil, ErrBadMagic
	}
	ver, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, ver, Version)
	}
	s := &core.Snapshot{}
	if s.Fingerprint, err = d.u64(); err != nil {
		return nil, err
	}
	for _, p := range []*int64{&s.IKT.Inserts, &s.IKT.Defers, &s.IKT.Rejected} {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		*p = int64(v)
	}
	nsec, err := d.u32()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for i := uint32(0); i < nsec; i++ {
		blen, err := d.u32()
		if err != nil {
			return nil, err
		}
		body, err := d.need(int(blen))
		if err != nil {
			return nil, err
		}
		sec, err := decodeSection(body)
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		if seen[sec.Name] {
			return nil, fmt.Errorf("%w: duplicate section for type %q", ErrCorrupt, sec.Name)
		}
		seen[sec.Name] = true
		s.Types = append(s.Types, *sec)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return s, nil
}

func decodeSection(body []byte) (*core.TypeSnapshot, error) {
	d := &decoder{data: body}
	nlen, err := d.u16()
	if err != nil {
		return nil, err
	}
	name, err := d.need(int(nlen))
	if err != nil {
		return nil, err
	}
	sec := &core.TypeSnapshot{Name: string(name)}
	flags, err := d.u8()
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("%w: unknown section flags %#x", ErrCorrupt, flags)
	}
	sec.Steady = flags&1 != 0
	level, err := d.u8()
	if err != nil {
		return nil, err
	}
	if level > 15 {
		return nil, fmt.Errorf("%w: p level %d out of range", ErrCorrupt, level)
	}
	sec.Level = int(level)
	succ, err := d.u32()
	if err != nil {
		return nil, err
	}
	sec.Successes = int(succ)
	excl, err := d.u32()
	if err != nil {
		return nil, err
	}
	sec.Excluded = int(excl)
	nent, err := d.u32()
	if err != nil {
		return nil, err
	}
	for j := uint32(0); j < nent; j++ {
		elen, err := d.u32()
		if err != nil {
			return nil, err
		}
		ebody, err := d.need(int(elen))
		if err != nil {
			return nil, err
		}
		sum, err := d.u32()
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(ebody) != sum {
			return nil, fmt.Errorf("%w: entry %d CRC mismatch", ErrCorrupt, j)
		}
		e, err := decodeEntry(ebody)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", j, err)
		}
		sec.Entries = append(sec.Entries, *e)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d stray bytes in section body", ErrCorrupt, d.remaining())
	}
	return sec, nil
}

func decodeEntry(body []byte) (*core.EntrySnapshot, error) {
	d := &decoder{data: body}
	e := &core.EntrySnapshot{}
	var err error
	if e.Key, err = d.u64(); err != nil {
		return nil, err
	}
	level, err := d.u8()
	if err != nil {
		return nil, err
	}
	if level > 15 {
		return nil, fmt.Errorf("%w: p level %d out of range", ErrCorrupt, level)
	}
	e.Level = int8(level)
	if e.Provider, err = d.u64(); err != nil {
		return nil, err
	}
	for _, dst := range []*[]region.Region{&e.Outs, &e.Ins} {
		n, err := d.u16()
		if err != nil {
			return nil, err
		}
		for k := uint16(0); k < n; k++ {
			r, err := decodeRegion(d)
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, r)
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d stray bytes in entry body", ErrCorrupt, d.remaining())
	}
	return e, nil
}

func decodeRegion(d *decoder) (region.Region, error) {
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	if kind > byte(region.KindInt32) {
		return nil, fmt.Errorf("%w: unknown region kind %d", ErrCorrupt, kind)
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	payload, err := d.need(int(n) * region.Kind(kind).Size())
	if err != nil {
		return nil, err
	}
	switch region.Kind(kind) {
	case region.KindFloat64:
		r := region.NewFloat64(int(n))
		for i := range r.Data {
			r.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return r, nil
	case region.KindFloat32:
		r := region.NewFloat32(int(n))
		for i := range r.Data {
			r.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		return r, nil
	case region.KindInt32:
		r := region.NewInt32(int(n))
		for i := range r.Data {
			r.Data[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		return r, nil
	default:
		r := region.NewBytes(int(n))
		copy(r.Data, payload)
		return r, nil
	}
}

// Save writes the snapshot to path via a same-directory temp file and
// rename, so a crash mid-write leaves the previous snapshot (or no
// file) rather than a truncated one — Load's strict decode would
// reject the torn file anyway, but the rename keeps the warm state.
// The write is durable (fsync before rename, directory fsync after);
// SaveSync takes the SyncPolicy explicitly.
func Save(path string, s *core.Snapshot) error {
	return SaveSync(path, s, SyncAlways)
}

// SaveSync is Save under an explicit durability policy.
func SaveSync(path string, s *core.Snapshot, sync SyncPolicy) error {
	data, err := Marshal(s)
	if err != nil {
		return err
	}
	return writeAtomic(path, data, sync)
}

// Load reads and decodes the snapshot at path. A missing file surfaces
// as an error satisfying errors.Is(err, os.ErrNotExist), which callers
// treat as "cold start".
func Load(path string) (*core.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
