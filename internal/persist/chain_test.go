package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"atm/internal/core"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// buildChain produces a realistic chain from a live tracked engine: an
// empty base taken before any traffic, then two deltas of distinct
// work (the second includes a second task type, so the delta type
// table exercises both meta and entry-target rows).
func buildChain(t testing.TB) (*core.Snapshot, []*core.Delta) {
	t.Helper()
	memo := core.New(chainCfg())
	memo.EnableDeltaTracking()
	base, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	double := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Float64s(0), task.Float64s(1)
		for i := range in {
			out[i] = 2 * in[i]
		}
	}})
	negate := rt.RegisterType(taskrt.TypeConfig{Name: "negate", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Int32s(0), task.Int32s(1)
		for i := range in {
			out[i] = -in[i]
		}
	}})
	submitDouble := func(v int) {
		in := region.NewFloat64(8)
		for i := range in.Data {
			in.Data[i] = float64(v*10 + i)
		}
		rt.Submit(double, taskrt.In(in), taskrt.Out(region.NewFloat64(8)))
	}
	for v := 0; v < 3; v++ {
		submitDouble(v)
	}
	rt.Wait()
	d1, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	for v := 3; v < 5; v++ {
		submitDouble(v)
	}
	iv := region.NewInt32(6)
	for i := range iv.Data {
		iv.Data[i] = int32(100 + i)
	}
	rt.Submit(negate, taskrt.In(iv), taskrt.Out(region.NewInt32(6)))
	rt.Wait()
	d2, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	return base, []*core.Delta{d1, d2}
}

func chainCfg() core.Config { return core.Config{Mode: core.ModeStatic, Seed: 7} }

func TestChainRoundTrip(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, err := UnmarshalChain(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBase, base) {
		t.Fatal("base does not round-trip")
	}
	if !reflect.DeepEqual(gotDeltas, deltas) {
		t.Fatalf("deltas do not round-trip: %d vs %d", len(gotDeltas), len(deltas))
	}
	reenc, err := MarshalChain(gotBase, gotDeltas)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, data) {
		t.Fatal("chain re-encode is not canonical")
	}
}

func TestChainDeltaOnlyFile(t *testing.T) {
	_, deltas := buildChain(t)
	data, err := MarshalChain(nil, deltas)
	if err != nil {
		t.Fatal(err)
	}
	base, got, err := UnmarshalChain(data)
	if err != nil {
		t.Fatal(err)
	}
	if base != nil {
		t.Fatal("delta-only file must decode with a nil base")
	}
	if len(got) != len(deltas) {
		t.Fatalf("deltas: %d vs %d", len(got), len(deltas))
	}
}

func TestChainRejectsEmpty(t *testing.T) {
	if _, err := MarshalChain(nil, nil); err == nil {
		t.Fatal("empty chain must not encode")
	}
	base, _ := buildChain(t)
	data, err := MarshalChain(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalChain(data[:headerLen]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header-only chain: want ErrCorrupt, got %v", err)
	}
}

func TestChainFingerprintConsistencyEnforced(t *testing.T) {
	base, deltas := buildChain(t)
	deltas[1].Fingerprint++
	if _, err := MarshalChain(base, deltas); err == nil {
		t.Fatal("mixed-fingerprint chain must not encode")
	}
}

func TestChainTypedErrors(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte("NOTSNAP\x00"), data[8:]...)
	if _, _, err := UnmarshalChain(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	v1, err := Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalChain(v1); !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 file in UnmarshalChain: %v", err)
	}

	// Flip one byte inside the first record's body: its CRC must trip.
	flipped := bytes.Clone(data)
	flipped[headerLen+1+4] ^= 0xff
	if _, _, err := UnmarshalChain(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record body: %v", err)
	}

	// An unknown record kind is corruption (the CRC covers only the
	// body, so the frame itself still verifies).
	kindless := bytes.Clone(data)
	kindless[headerLen] = 9
	if _, _, err := UnmarshalChain(kindless); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown record kind: %v", err)
	}
}

// TestChainTruncationBehavior pins the documented truncation contract:
// a cut exactly at a record boundary decodes as a valid shorter chain
// (the price of O(delta) appends), while a cut anywhere inside a
// record is rejected with a typed error.
func TestChainTruncationBehavior(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]bool{}
	d := &decoder{data: data, off: headerLen}
	for d.remaining() > 0 {
		if _, err := d.u8(); err != nil {
			t.Fatal(err)
		}
		blen, err := d.u32()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.need(int(blen) + 4); err != nil {
			t.Fatal(err)
		}
		boundaries[d.off] = true
	}
	for n := 0; n < len(data); n++ {
		_, got, err := UnmarshalChain(data[:n])
		switch {
		case boundaries[n]:
			if err != nil {
				t.Fatalf("record-boundary cut at %d must decode: %v", n, err)
			}
			if len(got) >= len(deltas) {
				t.Fatalf("boundary cut at %d must drop trailing deltas, kept %d", n, len(got))
			}
		default:
			if err == nil {
				t.Fatalf("mid-record cut at %d of %d must be rejected", n, len(data))
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("cut at %d: untyped error %v", n, err)
			}
		}
	}
}

func TestSaveChainLoadChainAppendDelta(t *testing.T) {
	base, deltas := buildChain(t)
	path := filepath.Join(t.TempDir(), "chain.atmsnap")

	if err := SaveChain(path, base, deltas[:1]); err != nil {
		t.Fatal(err)
	}
	if err := AppendDelta(path, deltas[1]); err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotBase == nil || len(gotDeltas) != 2 {
		t.Fatalf("chain after append: base=%v deltas=%d", gotBase != nil, len(gotDeltas))
	}
	if !reflect.DeepEqual(gotDeltas, deltas) {
		t.Fatal("appended delta does not round-trip")
	}

	// Fingerprint skew is caught before touching the file body.
	skew := *deltas[1]
	skew.Fingerprint++
	if err := AppendDelta(path, &skew); err == nil {
		t.Fatal("appending a mismatched-fingerprint delta must fail")
	}

	// Appending to a version-1 file is a typed error.
	v1path := filepath.Join(t.TempDir(), "v1.atmsnap")
	if err := Save(v1path, base); err != nil {
		t.Fatal(err)
	}
	if err := AppendDelta(v1path, deltas[0]); !errors.Is(err, ErrVersion) {
		t.Fatalf("append to v1 file: %v", err)
	}
}

func TestLoadChainReadsVersion1Files(t *testing.T) {
	// Cross-version load path: a v1 whole-table snapshot keeps loading
	// through the chain-aware loader as (base, no deltas).
	snap := buildSnapshot(t)
	path := filepath.Join(t.TempDir(), "v1.atmsnap")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	base, deltas, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if deltas != nil {
		t.Fatal("v1 file must load with no deltas")
	}
	if !reflect.DeepEqual(base, snap) {
		t.Fatal("v1 snapshot does not survive LoadChain")
	}
	if _, _, err := LoadChain(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file must surface os.ErrNotExist: %v", err)
	}
}

func TestFileVersion(t *testing.T) {
	base, deltas := buildChain(t)
	v2, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := FileVersion(v1); err != nil || v != Version {
		t.Fatalf("v1 header: %d, %v", v, err)
	}
	if v, err := FileVersion(v2); err != nil || v != Version2 {
		t.Fatalf("v2 header: %d, %v", v, err)
	}
	if _, err := FileVersion([]byte("short")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, err := FileVersion(bytes.Repeat([]byte{0}, 16)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("junk header: %v", err)
	}
}
