package persist

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"atm/internal/core"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// evictEntryBytes is the accounting cost of one doubler entry: 8
// float64 outputs plus the key/provider/header charge.
const evictEntryBytes = 8*8 + 24

func evictCfg() core.Config {
	return core.Config{
		Mode:           core.ModeStatic,
		Seed:           7,
		THTBudgetBytes: 6 * evictEntryBytes,
		THTEviction:    core.EvictFIFO,
	}
}

// buildEvictChain drives a tracked engine with ONE task type under a
// tiny THT budget, so the deltas interleave inserts with budget-eviction
// tombstones. It returns the chain plus the live engine's final full
// snapshot (IKT counters zeroed — they are informational, runtime-side
// state that Restore deliberately does not replay).
func buildEvictChain(t testing.TB) (base *core.Snapshot, deltas []*core.Delta, live *core.Snapshot) {
	t.Helper()
	memo := core.New(evictCfg())
	memo.EnableDeltaTracking()
	base, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	double := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Float64s(0), task.Float64s(1)
		for i := range in {
			out[i] = 2 * in[i]
		}
	}})
	submit := func(v int) {
		in := region.NewFloat64(8)
		for i := range in.Data {
			in.Data[i] = float64(v*10 + i)
		}
		rt.Submit(double, taskrt.In(in), taskrt.Out(region.NewFloat64(8)))
	}
	for v := 0; v < 8; v++ {
		submit(v)
	}
	rt.Wait()
	d1, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	for v := 8; v < 16; v++ {
		submit(v)
	}
	rt.Wait()
	d2, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatal(err)
	}
	live, err = memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	live.IKT = core.IKTCounters{}
	deltas = []*core.Delta{d1, d2}
	if d1.Tombstones()+d2.Tombstones() == 0 {
		t.Fatal("workload must overflow the budget and record tombstones")
	}
	return base, deltas, live
}

// claimAndSnapshot registers the "double" type on a restored engine —
// installing its carried section into the THT, inserts and tombstones
// replayed in order — and snapshots the resulting live table.
func claimAndSnapshot(t *testing.T, memo *core.ATM) (*core.Snapshot, error) {
	t.Helper()
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: memo})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {}})
	memo.ChosenLevel(tt) // first engine touch claims the carried section into the THT
	snap, err := memo.Snapshot()
	if err != nil {
		return nil, err
	}
	snap.IKT = core.IKTCounters{}
	return snap, nil
}

// TestEvictingChainRoundTrip pins the tombstone wire format: a chain
// whose deltas carry eviction tombstones round-trips through
// MarshalChain/UnmarshalChain content-identically and canonically
// (encode(decode(b)) == b), and the tombstone count survives.
func TestEvictingChainRoundTrip(t *testing.T) {
	base, deltas, _ := buildEvictChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, err := UnmarshalChain(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBase, base) {
		t.Fatal("base does not round-trip")
	}
	if !reflect.DeepEqual(gotDeltas, deltas) {
		t.Fatal("tombstone-bearing deltas do not round-trip")
	}
	wantTombs := deltas[0].Tombstones() + deltas[1].Tombstones()
	if got := gotDeltas[0].Tombstones() + gotDeltas[1].Tombstones(); got != wantTombs {
		t.Fatalf("decoded %d tombstones, want %d", got, wantTombs)
	}
	reenc, err := MarshalChain(gotBase, gotDeltas)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, data) {
		t.Fatal("tombstone chain re-encode is not canonical")
	}
}

// TestEvictingChainCompactRestore is the end-to-end acceptance path:
// cold run under a tiny budget → evictions → delta chain → restore
// reproduces the live table bit-identically, and Compact folds the
// insert/tombstone pairs into a strictly smaller file that restores to
// the same table.
func TestEvictingChainCompactRestore(t *testing.T) {
	base, deltas, live := buildEvictChain(t)
	liveBytes, err := Marshal(live)
	if err != nil {
		t.Fatal(err)
	}

	// Budget knobs are capacity, not key validity: they are excluded
	// from the fingerprint, so the chain restores into an unbudgeted
	// engine — replaying the recorded tombstones reproduces the evicted
	// occupancy without re-running eviction. Registering the type claims
	// the restored section into the THT (bit-identity is a property of
	// the live table, not of an unclaimed pending section).
	cold := core.Config{Mode: core.ModeStatic, Seed: 7}
	restored, err := core.RestoreChain(cold, base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := claimAndSnapshot(t, restored)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, liveBytes) {
		t.Fatal("chain restore is not bit-identical to the live table")
	}

	chainBytes, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Compact(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	compBytes, err := MarshalChain(compacted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(compBytes) >= len(chainBytes) {
		t.Fatalf("compacted chain %d bytes, original %d: eviction folding must shrink the file",
			len(compBytes), len(chainBytes))
	}
	var liveEntries int
	for _, sec := range live.Types {
		liveEntries += len(sec.Entries)
	}
	var compEntries int
	for _, sec := range compacted.Types {
		for _, e := range sec.Entries {
			if e.Tombstone {
				t.Fatal("compacted snapshot must not contain tombstones")
			}
			compEntries++
		}
	}
	if compEntries != liveEntries {
		t.Fatalf("compacted snapshot holds %d entries, live table %d", compEntries, liveEntries)
	}

	restored2, err := core.Restore(cold, compacted)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := claimAndSnapshot(t, restored2)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes2, err := Marshal(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes2, liveBytes) {
		t.Fatal("restore from the compacted chain is not bit-identical to the live table")
	}
}

// TestChainTombstoneCorruptions walks the strict decoder's tombstone
// validations: out-of-range type index, out-of-order position, level
// overflow and an empty section are each typed corruption.
func TestChainTombstoneCorruptions(t *testing.T) {
	base, deltas, _ := buildEvictChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-level mutations risk landing in CRC-covered slack, so mutate
	// the decoded structures and re-encode invalid streams instead.
	_, ds, err := UnmarshalChain(data)
	if err != nil {
		t.Fatal(err)
	}
	var evicting *core.Delta
	for _, d := range ds {
		if d.Tombstones() > 0 {
			evicting = d
		}
	}
	if evicting == nil {
		t.Fatal("chain carries no tombstones")
	}
	if _, err := MarshalChain(base, []*core.Delta{evicting}); err != nil {
		t.Fatalf("tombstone-bearing delta alone must encode: %v", err)
	}

	// A tombstone naming a type outside the delta's type table must not
	// encode (the encoder validates what the decoder would reject).
	bad := *evicting
	bad.Entries = append([]core.DeltaEntry(nil), evicting.Entries...)
	for i := range bad.Entries {
		if bad.Entries[i].Tombstone {
			bad.Entries[i].Type = len(bad.Types) + 3
			break
		}
	}
	if _, err := MarshalChain(base, []*core.Delta{&bad}); err == nil {
		t.Fatal("tombstone with an out-of-range type index must not encode")
	}

	// MergeSnapshots only accepts full snapshots; a tombstone smuggled
	// into one is typed corruption.
	tomb := &core.Snapshot{
		Fingerprint: base.Fingerprint,
		Types: []core.TypeSnapshot{{
			Name:    "double",
			Steady:  true,
			Level:   15,
			Entries: []core.EntrySnapshot{{Key: 1, Level: 15, Tombstone: true}},
		}},
	}
	if _, err := MergeSnapshots(base, tomb); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("merge of a tombstone-bearing snapshot: %v, want ErrCorrupt", err)
	}
}
