package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"atm/internal/core"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// buildSnapshot produces a realistic snapshot: a static run over a few
// distinct inputs of two types, one with an input-verification payload.
func buildSnapshot(t testing.TB) *core.Snapshot {
	memo := core.New(core.Config{Mode: core.ModeStatic, VerifyInputs: true, Seed: 7})
	rt := taskrt.New(taskrt.Config{Workers: 2, Memoizer: memo})
	double := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Float64s(0), task.Float64s(1)
		for i := range in {
			out[i] = 2 * in[i]
		}
	}})
	negate := rt.RegisterType(taskrt.TypeConfig{Name: "negate", Memoize: true, Run: func(task *taskrt.Task) {
		in, out := task.Int32s(0), task.Int32s(1)
		for i := range in {
			out[i] = -in[i]
		}
	}})
	for v := 0; v < 5; v++ {
		in := region.NewFloat64(8)
		for i := range in.Data {
			in.Data[i] = float64(v*10 + i)
		}
		rt.Submit(double, taskrt.In(in), taskrt.Out(region.NewFloat64(8)))
		iv := region.NewInt32(6)
		for i := range iv.Data {
			iv.Data[i] = int32(v*100 + i)
		}
		rt.Submit(negate, taskrt.In(iv), taskrt.Out(region.NewInt32(6)))
	}
	rt.Wait()
	snap, err := memo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	return snap
}

func TestRoundTrip(t *testing.T) {
	snap := buildSnapshot(t)
	data, err := Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fingerprint {
		t.Fatalf("fingerprint: %#x vs %#x", got.Fingerprint, snap.Fingerprint)
	}
	if got.IKT != snap.IKT {
		t.Fatalf("ikt counters: %+v vs %+v", got.IKT, snap.IKT)
	}
	if len(got.Types) != len(snap.Types) {
		t.Fatalf("sections: %d vs %d", len(got.Types), len(snap.Types))
	}
	for i := range snap.Types {
		a, b := &snap.Types[i], &got.Types[i]
		if a.Name != b.Name || a.Steady != b.Steady || a.Level != b.Level ||
			a.Successes != b.Successes || a.Excluded != b.Excluded || len(a.Entries) != len(b.Entries) {
			t.Fatalf("section %d header mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Entries {
			ea, eb := &a.Entries[j], &b.Entries[j]
			if ea.Key != eb.Key || ea.Level != eb.Level || ea.Provider != eb.Provider {
				t.Fatalf("entry %d/%d header mismatch", i, j)
			}
			for k := range ea.Outs {
				if !ea.Outs[k].EqualContents(eb.Outs[k]) {
					t.Fatalf("entry %d/%d output %d differs", i, j, k)
				}
			}
			for k := range ea.Ins {
				if !ea.Ins[k].EqualContents(eb.Ins[k]) {
					t.Fatalf("entry %d/%d input snapshot %d differs", i, j, k)
				}
			}
		}
	}
	// Determinism: re-encoding the decoded snapshot is byte-identical.
	data2, err := Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding must be byte-identical")
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data, err := Marshal(buildSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Unmarshal(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes must not decode", n, len(data))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Marshal(buildSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single byte must never produce a silently different
	// snapshot: either the decode fails, or (for the rare flips that
	// keep the structure valid, e.g. inside the informational IKT
	// counters) the re-encoding reproduces the flipped input exactly.
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		s, err := Unmarshal(mut)
		if err != nil {
			continue
		}
		re, err := Marshal(s)
		if err != nil || !bytes.Equal(re, mut) {
			t.Fatalf("flip at byte %d decoded to a different snapshot", i)
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	data, err := Marshal(buildSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}

	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}

	bad = bytes.Clone(data)
	bad[8] = 99 // version field
	if _, err := Unmarshal(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}

	if _, err := Unmarshal(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncation: %v", err)
	}

	if _, err := Unmarshal(append(bytes.Clone(data), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}

	// Flip a byte inside the last entry's region payload: CRC must trip.
	bad = bytes.Clone(data)
	bad[len(bad)-6] ^= 0xff
	if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption: %v", err)
	}
}

func TestSaveLoadAndRestore(t *testing.T) {
	snap := buildSnapshot(t)
	path := filepath.Join(t.TempDir(), "warm.atmsnap")
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded snapshot restores into a working engine.
	warm, err := core.Restore(core.Config{Mode: core.ModeStatic, VerifyInputs: true, Seed: 7}, loaded)
	if err != nil {
		t.Fatal(err)
	}
	rt := taskrt.New(taskrt.Config{Workers: 1, Memoizer: warm})
	defer rt.Close()
	tt := rt.RegisterType(taskrt.TypeConfig{Name: "double", Memoize: true, Run: func(task *taskrt.Task) {
		t.Error("warm task must not execute")
	}})
	in := region.NewFloat64(8)
	for i := range in.Data {
		in.Data[i] = float64(i) // the v=0 input of buildSnapshot
	}
	out := region.NewFloat64(8)
	rt.Submit(tt, taskrt.In(in), taskrt.Out(out))
	rt.Wait()
	if out.Data[3] != 6 {
		t.Fatalf("warm hit must serve the stored outputs: %v", out.Data)
	}

	// A missing file is a cold start, distinguishable by errors.Is.
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}
