package persist

import (
	"bytes"
	"errors"

	"math/rand"
	"testing"

	"atm/internal/core"
	"atm/internal/region"
)

// This file holds the property suite for the chain-folding operations:
// randomized (seeded, reproducible) snapshots and deltas drive the two
// invariants the persistence contract rests on — Compact is
// replay-equivalent, and MergeSnapshots is order-free.

// randRegion builds a deterministic random region of a random kind.
func randRegion(rng *rand.Rand) region.Region {
	n := 1 + rng.Intn(6)
	switch rng.Intn(4) {
	case 0:
		r := region.NewFloat64(n)
		for i := range r.Data {
			r.Data[i] = rng.NormFloat64()
		}
		return r
	case 1:
		r := region.NewFloat32(n)
		for i := range r.Data {
			r.Data[i] = float32(rng.NormFloat64())
		}
		return r
	case 2:
		r := region.NewInt32(n)
		for i := range r.Data {
			r.Data[i] = rng.Int31()
		}
		return r
	default:
		r := region.NewBytes(n)
		rng.Read(r.Data)
		return r
	}
}

func randEntry(rng *rand.Rand) core.EntrySnapshot {
	e := core.EntrySnapshot{
		Key:      rng.Uint64(),
		Level:    int8(rng.Intn(16)),
		Provider: uint64(rng.Intn(64)), // small range, so shards collide on providers too
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		e.Outs = append(e.Outs, randRegion(rng))
	}
	return e
}

// typeNames is the shared pool random sections draw from, small enough
// that bases, deltas and shards overlap constantly.
var typeNames = []string{"alpha", "beta", "gamma", "delta", "epsilon"}

func randSnapshot(rng *rand.Rand, fp uint64) *core.Snapshot {
	s := &core.Snapshot{Fingerprint: fp}
	s.IKT.Inserts = int64(rng.Intn(100))
	perm := rng.Perm(len(typeNames))
	nsec := rng.Intn(len(typeNames) + 1)
	for _, ti := range perm[:nsec] {
		sec := core.TypeSnapshot{
			Name:      typeNames[ti],
			Steady:    rng.Intn(2) == 0,
			Level:     rng.Intn(16),
			Successes: rng.Intn(10),
			Excluded:  rng.Intn(3),
		}
		for i := 0; i < rng.Intn(8); i++ {
			e := randEntry(rng)
			// Dense key space so distinct shards produce colliding
			// (key, level) pairs and exercise the tie-break.
			e.Key = uint64(rng.Intn(10))
			e.Level = int8(rng.Intn(3))
			sec.Entries = append(sec.Entries, e)
		}
		s.Types = append(s.Types, sec)
	}
	return s
}

func randDelta(rng *rand.Rand, fp uint64) *core.Delta {
	d := &core.Delta{Fingerprint: fp}
	perm := rng.Perm(len(typeNames))
	ntypes := 1 + rng.Intn(len(typeNames))
	for _, ti := range perm[:ntypes] {
		td := core.TypeDelta{Name: typeNames[ti]}
		if rng.Intn(2) == 0 {
			td.HasMeta = true
			td.Steady = rng.Intn(2) == 0
			td.Level = rng.Intn(16)
			td.Successes = rng.Intn(10)
			td.Excluded = rng.Intn(3)
		}
		d.Types = append(d.Types, td)
	}
	for i := 0; i < rng.Intn(12); i++ {
		d.Entries = append(d.Entries, core.DeltaEntry{
			Type:          rng.Intn(len(d.Types)),
			EntrySnapshot: randEntry(rng),
		})
	}
	return d
}

// TestCompactEquivalentToDeltaReplay pins the compaction property:
// restoring Compact(base, d1..dn) yields bit-identical engine state to
// restoring base and replaying the chain with ApplyDelta — verified by
// re-snapshotting both engines and comparing encoded bytes.
func TestCompactEquivalentToDeltaReplay(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := core.Config{Mode: core.ModeStatic, Seed: uint64(seed)}
		fp := core.Fingerprint(cfg)
		base := randSnapshot(rng, fp)
		var deltas []*core.Delta
		for i := 0; i < 1+rng.Intn(4); i++ {
			deltas = append(deltas, randDelta(rng, fp))
		}
		// The engines adopt their snapshots, so each side gets its own
		// decoded copy of the same bytes.
		data, err := MarshalChain(base, deltas)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		snapshotOf := func(build func(b *core.Snapshot, ds []*core.Delta) (*core.ATM, error)) []byte {
			t.Helper()
			b, ds, err := UnmarshalChain(data)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			engine, err := build(b, ds)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			snap, err := engine.Snapshot()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			enc, err := Marshal(snap)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return enc
		}

		replayed := snapshotOf(func(b *core.Snapshot, ds []*core.Delta) (*core.ATM, error) {
			engine, err := core.Restore(cfg, b)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				if err := engine.ApplyDelta(d); err != nil {
					return nil, err
				}
			}
			return engine, nil
		})
		compacted := snapshotOf(func(b *core.Snapshot, ds []*core.Delta) (*core.ATM, error) {
			full, err := Compact(b, ds...)
			if err != nil {
				return nil, err
			}
			return core.Restore(cfg, full)
		})
		if !bytes.Equal(replayed, compacted) {
			t.Fatalf("seed %d: compacted state diverges from replayed chain", seed)
		}
	}
}

// TestCompactPreservesDuplicateInserts pins the no-dedup rule: a key
// re-inserted by a later delta appears twice after compaction, exactly
// as replay would insert it twice (collapsing it would change bucket
// occupancy and therefore eviction order on restore).
func TestCompactPreservesDuplicateInserts(t *testing.T) {
	cfg := core.Config{Mode: core.ModeStatic}
	fp := core.Fingerprint(cfg)
	e := core.EntrySnapshot{Key: 42, Level: 15, Provider: 1, Outs: []region.Region{region.NewFloat64(2)}}
	base := &core.Snapshot{Fingerprint: fp, Types: []core.TypeSnapshot{{Name: "alpha", Entries: []core.EntrySnapshot{e}}}}
	d := &core.Delta{Fingerprint: fp,
		Types:   []core.TypeDelta{{Name: "alpha"}},
		Entries: []core.DeltaEntry{{Type: 0, EntrySnapshot: e}},
	}
	full, err := Compact(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(full.Types[0].Entries); n != 2 {
		t.Fatalf("compaction must preserve duplicate inserts, got %d entries", n)
	}
}

func TestCompactRequiresBaseAndMatchingFingerprints(t *testing.T) {
	if _, err := Compact(nil); err == nil {
		t.Fatal("compact without a base must fail")
	}
	cfg := core.Config{Mode: core.ModeStatic}
	base := &core.Snapshot{Fingerprint: core.Fingerprint(cfg)}
	skew := &core.Delta{Fingerprint: base.Fingerprint + 1}
	if _, err := Compact(base, skew); !errors.Is(err, core.ErrSnapshotConfig) {
		t.Fatalf("fingerprint skew: %v", err)
	}
}

// TestMergeSnapshotsDeterministicUnderShardReordering pins the merge
// determinism property: any permutation of the shard list encodes to
// the same bytes, because the winner rule (greater provider id, then
// lexicographically greater encoded body) and the metadata fold
// (max by steadiness/level/successes; max excluded) are order-free and
// the output is canonically sorted.
func TestMergeSnapshotsDeterministicUnderShardReordering(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		cfg := core.Config{Mode: core.ModeDynamic, Seed: uint64(seed)}
		fp := core.Fingerprint(cfg)
		shards := []*core.Snapshot{
			randSnapshot(rng, fp), randSnapshot(rng, fp), randSnapshot(rng, fp),
		}
		var want []byte
		permute(len(shards), func(perm []int) {
			ordered := make([]*core.Snapshot, len(perm))
			for i, p := range perm {
				ordered[i] = shards[p]
			}
			merged, err := MergeSnapshots(ordered...)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			enc, err := Marshal(merged)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if want == nil {
				want = enc
			} else if !bytes.Equal(want, enc) {
				t.Fatalf("seed %d: merge order %v produced different bytes", seed, perm)
			}
		})
	}
}

// permute calls fn with every permutation of [0, n).
func permute(n int, fn func(perm []int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(perm)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// TestMergeTieBreakRule pins the documented last-writer-wins rule so a
// future change to it is a deliberate format decision, not drift:
// greater provider id wins; equal providers fall back to the
// lexicographically greater encoded entry body.
func TestMergeTieBreakRule(t *testing.T) {
	cfg := core.Config{Mode: core.ModeStatic}
	fp := core.Fingerprint(cfg)
	mk := func(provider uint64, payload float64) *core.Snapshot {
		out := region.NewFloat64(1)
		out.Data[0] = payload
		return &core.Snapshot{Fingerprint: fp, Types: []core.TypeSnapshot{{
			Name:    "alpha",
			Entries: []core.EntrySnapshot{{Key: 7, Level: 15, Provider: provider, Outs: []region.Region{out}}},
		}}}
	}

	merged, err := MergeSnapshots(mk(5, 1.0), mk(9, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Types[0].Entries[0].Provider; got != 9 {
		t.Fatalf("greater provider id must win, got %d", got)
	}

	// Equal providers: the lexicographically greater encoded body wins,
	// in either argument order.
	lo, hi := mk(5, 1.0), mk(5, 2.0)
	var eLo, eHi []byte
	if eLo, err = Marshal(lo); err != nil {
		t.Fatal(err)
	}
	if eHi, err = Marshal(hi); err != nil {
		t.Fatal(err)
	}
	wantPayload := 2.0
	if bytes.Compare(eLo, eHi) > 0 {
		wantPayload = 1.0
	}
	for _, pair := range [][2]*core.Snapshot{{lo, hi}, {hi, lo}} {
		merged, err := MergeSnapshots(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		got := merged.Types[0].Entries[0].Outs[0].(*region.Float64).Data[0]
		if got != wantPayload {
			t.Fatalf("body tie-break must pick payload %v independent of order, got %v", wantPayload, got)
		}
	}
}

func TestMergeMetadataFold(t *testing.T) {
	cfg := core.Config{Mode: core.ModeDynamic}
	fp := core.Fingerprint(cfg)
	training := &core.Snapshot{Fingerprint: fp, Types: []core.TypeSnapshot{{
		Name: "alpha", Steady: false, Level: 9, Successes: 7, Excluded: 2,
	}}}
	steady := &core.Snapshot{Fingerprint: fp, Types: []core.TypeSnapshot{{
		Name: "alpha", Steady: true, Level: 4, Successes: 0, Excluded: 0,
	}}}
	merged, err := MergeSnapshots(training, steady)
	if err != nil {
		t.Fatal(err)
	}
	sec := merged.Types[0]
	if !sec.Steady || sec.Level != 4 {
		t.Fatalf("steady shard must dominate the fold: %+v", sec)
	}
	if sec.Excluded != 2 {
		t.Fatalf("excluded count must take the shard maximum: %+v", sec)
	}
}

func TestMergeSnapshotsFingerprintMismatch(t *testing.T) {
	a := &core.Snapshot{Fingerprint: 1}
	b := &core.Snapshot{Fingerprint: 2}
	if _, err := MergeSnapshots(a, b); !errors.Is(err, core.ErrSnapshotConfig) {
		t.Fatalf("want ErrSnapshotConfig, got %v", err)
	}
	if _, err := MergeSnapshots(); err == nil {
		t.Fatal("merge of zero snapshots must fail")
	}
}

// TestMergedSnapshotRestores closes the loop: a merge of two real
// shard runs (disjoint workloads) restores into one engine that serves
// both shards' state.
func TestMergedSnapshotRestores(t *testing.T) {
	shardA := buildSnapshot(t) // types "double" + "negate"
	shardB := buildSnapshot(t) // identical workload: full overlap
	merged, err := MergeSnapshots(shardA, shardB)
	if err != nil {
		t.Fatal(err)
	}
	var aEntries, mEntries int
	for _, sec := range shardA.Types {
		aEntries += len(sec.Entries)
	}
	for _, sec := range merged.Types {
		mEntries += len(sec.Entries)
	}
	if mEntries != aEntries {
		t.Fatalf("fully overlapping shards must collapse: %d vs %d entries", mEntries, aEntries)
	}
	cfg := core.Config{Mode: core.ModeStatic, VerifyInputs: true, Seed: 7} // buildSnapshot's config
	if _, err := core.Restore(cfg, merged); err != nil {
		t.Fatal(err)
	}
}
