package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// chainBoundaries scans an encoded v2 chain and returns the byte
// offset just past each record, plus the total record count at each
// boundary, using only the frame structure (kind, length, body, CRC).
func chainBoundaries(t *testing.T, data []byte) map[int]int {
	t.Helper()
	boundaries := map[int]int{}
	d := &decoder{data: data, off: headerLen}
	records := 0
	for d.remaining() > 0 {
		if _, err := d.u8(); err != nil {
			t.Fatal(err)
		}
		blen, err := d.u32()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.need(int(blen) + 4); err != nil {
			t.Fatal(err)
		}
		records++
		boundaries[d.off] = records
	}
	return boundaries
}

// salvageSweep asserts the full salvage contract at every truncation
// offset of a valid chain image: a cut at a record boundary salvages
// clean, a cut inside a record past the first boundary salvages to the
// preceding boundary with a canonical re-encode, and a cut before the
// first boundary is unrecoverable — and nothing ever panics.
func salvageSweep(t *testing.T, data []byte) {
	t.Helper()
	boundaries := chainBoundaries(t, data)
	firstBoundary := len(data)
	for off := range boundaries {
		if off < firstBoundary {
			firstBoundary = off
		}
	}
	for n := 0; n <= len(data); n++ {
		cut := data[:n]
		base, deltas, rep, err := SalvageChain(cut)
		switch {
		case n < firstBoundary:
			// Not even one whole record: nothing to salvage.
			if err == nil {
				t.Fatalf("cut at %d (< first boundary %d): salvage must fail", n, firstBoundary)
			}
			if rep.Reason == "" {
				t.Fatalf("cut at %d: unrecoverable report must carry a reason", n)
			}
		case boundaries[n] > 0:
			if err != nil {
				t.Fatalf("boundary cut at %d: %v", n, err)
			}
			if !rep.Clean() || rep.BytesKept != int64(n) || rep.RecordsKept != boundaries[n] {
				t.Fatalf("boundary cut at %d: report %+v, want clean, %d bytes, %d records", n, rep, n, boundaries[n])
			}
		default:
			// Mid-record past the first boundary: torn tail, salvage
			// keeps the prefix up to the last boundary before the cut.
			if err != nil {
				t.Fatalf("torn cut at %d: %v", n, err)
			}
			want := 0
			for off := range boundaries {
				if off <= n && off > want {
					want = off
				}
			}
			if rep.BytesKept != int64(want) || rep.Clean() || rep.Reason == "" {
				t.Fatalf("torn cut at %d: report %+v, want boundary %d with a reason", n, rep, want)
			}
			if rep.BytesTruncated != int64(n-want) {
				t.Fatalf("torn cut at %d: truncated %d, want %d", n, rep.BytesTruncated, n-want)
			}
			// The salvaged prefix must re-encode to exactly the bytes
			// that were kept — salvage is a truncation, never a rewrite.
			reenc, merr := MarshalChain(base, deltas)
			if merr != nil {
				t.Fatalf("torn cut at %d: re-encode: %v", n, merr)
			}
			if !bytes.Equal(reenc, data[:want]) {
				t.Fatalf("torn cut at %d: salvaged prefix is not canonical", n)
			}
		}
	}
}

func TestSalvageChainSweep(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	salvageSweep(t, data)
}

// TestSalvageGoldenSweep runs the salvage sweep over the pinned golden
// chain fixture: every byte-truncation of testdata/v2_chain.atmsnap
// must load, salvage, or fail with a typed report — never panic. This
// pins the recovery contract against the frozen wire format, not just
// against whatever today's encoder emits.
func TestSalvageGoldenSweep(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "v2_chain.atmsnap"))
	if err != nil {
		t.Fatal(err)
	}
	salvageSweep(t, data)
}

func TestSalvageCleanChain(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, rep, err := SalvageChain(data)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.BytesKept != int64(len(data)) || rep.RecordsKept != 1+len(deltas) || rep.Reason != "" {
		t.Fatalf("clean chain report: %+v", rep)
	}
	reenc, err := MarshalChain(gotBase, gotDeltas)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, data) {
		t.Fatal("clean salvage must round-trip byte-identically")
	}
}

// TestSalvageRejectsCorruption pins the torn-vs-corrupt line: salvage
// recovers from missing bytes, never from wrong ones. A file whose
// present bytes are invalid is rejected outright even when a valid
// prefix exists — returning the prefix of a corrupted file would be
// silent data loss with no crash to explain it.
func TestSalvageRejectsCorruption(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := chainBoundaries(t, data)

	// Flip a byte in the second record's body: record 0 is intact, but
	// the file is corrupt, not torn.
	first := len(data)
	for off := range boundaries {
		if off < first {
			first = off
		}
	}
	flipped := bytes.Clone(data)
	flipped[first+1+4] ^= 0xff
	if _, _, rep, err := SalvageChain(flipped); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CRC corruption must be unsalvageable, got %v (%+v)", err, rep)
	}

	// Unknown record kind: same verdict.
	kindless := bytes.Clone(data)
	kindless[first] = 9
	if _, _, _, err := SalvageChain(kindless); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind must be unsalvageable, got %v", err)
	}

	// Bad magic and a header-only file: unrecoverable, typed reason.
	if _, _, rep, err := SalvageChain([]byte("NOTSNAP\x00rest")); err == nil || rep.Reason == "" {
		t.Fatalf("bad magic: %v (%+v)", err, rep)
	}
	if _, _, _, err := SalvageChain(data[:headerLen]); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header-only chain must be unsalvageable, got %v", err)
	}
}

func TestRepairChainTruncatesTornTail(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chain.atmsnap")
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant a stale temp file as a crashed save would leave.
	if err := os.WriteFile(path+".tmp", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := RepairChain(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.BytesTruncated == 0 {
		t.Fatalf("repair of torn file reported clean: %+v", rep)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("repair must sweep the stale temp file: %v", err)
	}
	gotBase, gotDeltas, err := LoadChain(path)
	if err != nil {
		t.Fatalf("repaired chain must load strictly: %v", err)
	}
	if gotBase == nil || len(gotDeltas) != len(deltas)-1 {
		t.Fatalf("repaired chain: base=%v deltas=%d, want base and %d deltas", gotBase != nil, len(gotDeltas), len(deltas)-1)
	}

	// The repaired file accepts appends again, landing exactly the
	// bytes a never-torn chain would hold.
	if err := AppendDelta(path, deltas[len(deltas)-1]); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("repair + re-append must reproduce the full chain byte-identically")
	}
}

func TestRepairChainLeavesCleanAndCorruptAlone(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.atmsnap")
	if err := os.WriteFile(clean, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := RepairChain(clean, SyncAlways)
	if err != nil || !rep.Clean() {
		t.Fatalf("repair of clean file: %v (%+v)", err, rep)
	}
	if got, _ := os.ReadFile(clean); !bytes.Equal(got, data) {
		t.Fatal("repair must not modify a clean file")
	}

	corrupt := filepath.Join(dir, "corrupt.atmsnap")
	bad := bytes.Clone(data)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RepairChain(corrupt, SyncAlways); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("repair of corrupt file must refuse: %v", err)
	}
	if got, _ := os.ReadFile(corrupt); !bytes.Equal(got, bad) {
		t.Fatal("repair must not modify an unrecoverable file")
	}
}

func TestLoadChainSalvage(t *testing.T) {
	base, deltas := buildChain(t)
	data, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	torn := filepath.Join(dir, "torn.atmsnap")
	if err := os.WriteFile(torn, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	gotBase, gotDeltas, rep, err := LoadChainSalvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if gotBase == nil || len(gotDeltas) != len(deltas)-1 || rep.Clean() {
		t.Fatalf("torn load: base=%v deltas=%d report=%+v", gotBase != nil, len(gotDeltas), rep)
	}
	// The file itself must be untouched: salvage loads, repair mutates.
	if got, _ := os.ReadFile(torn); len(got) != len(data)-5 {
		t.Fatal("LoadChainSalvage must not modify the file")
	}

	// A version-1 file loads as a single clean record.
	v1 := filepath.Join(dir, "v1.atmsnap")
	if err := Save(v1, base); err != nil {
		t.Fatal(err)
	}
	s, ds, rep, err := LoadChainSalvage(v1)
	if err != nil || s == nil || ds != nil {
		t.Fatalf("v1 salvage load: %v", err)
	}
	if !rep.Clean() || rep.RecordsKept != 1 {
		t.Fatalf("v1 report: %+v", rep)
	}

	if _, _, _, err := LoadChainSalvage(filepath.Join(dir, "absent.atmsnap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}
