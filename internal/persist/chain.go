package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"atm/internal/core"
	"atm/internal/failpoint"
)

// This file defines format version 2, the incremental chain layout: a
// header followed by a stream of CRC-framed records — one optional
// full-base record and any number of ordered delta records. A chain
// file is appended to in O(delta) I/O (AppendDelta), which is what
// makes per-save cost proportional to the churn instead of to the
// table: a long-lived service (or a sweep repetition) saves a delta
// record; snapshotctl (or persist.Compact) folds a chain back into a
// single base.
//
//	[8]  magic "ATMSNAP\x00"
//	[4]  u32 format version (2)
//	[8]  u64 config fingerprint (core.Fingerprint; one per file —
//	     every record must be produced under the same config)
//	...  records until EOF, each:
//	       [1] u8 kind (1 = base, 2 = delta)
//	       [4] u32 body length, then the body
//	       [4] u32 CRC-32 (IEEE) of the body
//
// A base record may appear only as the first record (a file may also
// hold deltas alone — a shard's incremental save, chained onto a base
// kept elsewhere). At least one record is required.
//
//	base body:   3 × i64 IKT counters, u32 section count, sections
//	             (the version-1 section encoding, per-entry CRC and all)
//	delta body:  u32 type count, then per type:
//	               u16 name length + name bytes
//	               u8 flags (bit 0: steady, bit 1: has-meta), u8 level
//	               u32 successes, u32 excluded-region count
//	               (all four meta fields must be zero when has-meta is
//	               unset — the type is present only as an entry target)
//	             u32 insert count, then per insert:
//	               u32 type index (into this delta's type table)
//	               the version-1 entry encoding (length, body, CRC)
//	             optionally, when the delta carries eviction tombstones
//	             (the body ends after the inserts otherwise — old
//	             tombstone-free encodings are unchanged, and the section
//	             must be non-empty when present, so every delta has
//	             exactly one encoding):
//	               u32 tombstone count (≥ 1), then per tombstone:
//	                 u32 type index (into this delta's type table)
//	                 u32 position — the number of inserts preceding this
//	                     tombstone in the operation stream; non-decreasing
//	                     across the section and ≤ the insert count, which
//	                     is how the decoder rebuilds the interleaved
//	                     insert/tombstone order replay depends on
//	                 u64 key, u8 p level, u64 provider task id
//
// Decoding is as strict as version 1 — exact lengths, validated enums
// and indices, verified CRCs, no trailing bytes, typed errors, never a
// panic — with one deliberate exception: the record stream ends at
// EOF, so a chain cut exactly at a record boundary decodes as a valid,
// shorter chain. That is the price of O(delta) appends (no up-front
// record count to rewrite); a snapshot is a cache, and a chain missing
// its newest deltas merely restores less warm state. A tear anywhere
// inside a record is rejected by UnmarshalChain; SalvageChain
// (salvage.go) truncates such a torn tail back to the last valid
// record boundary instead of discarding the file.

// Version2 is the incremental chain format version.
const Version2 = 2

// Record kinds.
const (
	recordBase  = 1
	recordDelta = 2
)

// headerLen is magic + version + fingerprint.
const headerLen = 8 + 4 + 8

// FileVersion reads the format version from an encoded snapshot
// header without decoding the rest (snapshotctl inspect's dispatch).
func FileVersion(data []byte) (uint32, error) {
	if len(data) < 12 {
		return 0, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return 0, ErrBadMagic
	}
	return binary.LittleEndian.Uint32(data[8:12]), nil
}

// MarshalChain encodes a chain: an optional full base snapshot
// followed by deltas in order. All parts must share one config
// fingerprint, and the chain must not be empty.
func MarshalChain(base *core.Snapshot, deltas []*core.Delta) ([]byte, error) {
	var fp uint64
	switch {
	case base != nil:
		fp = base.Fingerprint
	case len(deltas) > 0:
		fp = deltas[0].Fingerprint
	default:
		return nil, fmt.Errorf("persist: empty chain (no base, no deltas)")
	}
	for i, d := range deltas {
		if d.Fingerprint != fp {
			return nil, fmt.Errorf("persist: delta %d fingerprint %#016x differs from chain %#016x", i, d.Fingerprint, fp)
		}
	}
	buf := make([]byte, 0, 1024)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version2)
	buf = binary.LittleEndian.AppendUint64(buf, fp)
	var body []byte // reused scratch
	if base != nil {
		var err error
		body, err = appendBaseBody(body[:0], base)
		if err != nil {
			return nil, err
		}
		buf, err = appendRecord(buf, recordBase, body)
		if err != nil {
			return nil, err
		}
	}
	for i, d := range deltas {
		var err error
		body, err = appendDeltaBody(body[:0], d)
		if err != nil {
			return nil, fmt.Errorf("persist: delta %d: %w", i, err)
		}
		buf, err = appendRecord(buf, recordDelta, body)
		if err != nil {
			return nil, fmt.Errorf("persist: delta %d: %w", i, err)
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, kind byte, body []byte) ([]byte, error) {
	if len(body) > math.MaxUint32 {
		return nil, fmt.Errorf("persist: %d-byte record body overflows the format", len(body))
	}
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return buf, nil
}

func appendBaseBody(body []byte, s *core.Snapshot) ([]byte, error) {
	body = binary.LittleEndian.AppendUint64(body, uint64(s.IKT.Inserts))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.IKT.Defers))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.IKT.Rejected))
	if len(s.Types) > math.MaxUint32 {
		return nil, fmt.Errorf("persist: %d sections overflow the format", len(s.Types))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Types)))
	var sec, entry []byte // reused scratch
	for i := range s.Types {
		var err error
		sec, err = appendSectionBody(sec[:0], &s.Types[i], &entry)
		if err != nil {
			return nil, err
		}
		if len(sec) > math.MaxUint32 {
			return nil, fmt.Errorf("persist: type %q: %d-byte section overflows the format", s.Types[i].Name, len(sec))
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(sec)))
		body = append(body, sec...)
	}
	return body, nil
}

func appendDeltaBody(body []byte, d *core.Delta) ([]byte, error) {
	if len(d.Types) > math.MaxUint32 {
		return nil, fmt.Errorf("%d delta types overflow the format", len(d.Types))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(d.Types)))
	for i := range d.Types {
		td := &d.Types[i]
		if len(td.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("type name %q overflows the format", td.Name[:32])
		}
		body = binary.LittleEndian.AppendUint16(body, uint16(len(td.Name)))
		body = append(body, td.Name...)
		// Meta fields are canonically zero without has-meta: one logical
		// delta has exactly one encoding.
		if !td.HasMeta {
			body = append(body, 0, 0)
			body = binary.LittleEndian.AppendUint32(body, 0)
			body = binary.LittleEndian.AppendUint32(body, 0)
			continue
		}
		flags := byte(2)
		if td.Steady {
			flags |= 1
		}
		body = append(body, flags, byte(td.Level))
		body = binary.LittleEndian.AppendUint32(body, uint32(td.Successes))
		body = binary.LittleEndian.AppendUint32(body, uint32(td.Excluded))
	}
	if len(d.Entries) > math.MaxUint32 {
		return nil, fmt.Errorf("%d delta entries overflow the format", len(d.Entries))
	}
	// The operation stream splits into the insert list and a trailing
	// tombstone section; each tombstone records its position (inserts
	// preceding it) so the decoder rebuilds the exact interleave.
	type tombstone struct {
		typeIdx  int
		pos      int
		key      uint64
		level    int8
		provider uint64
	}
	var tombs []tombstone
	inserts := 0
	for i := range d.Entries {
		de := &d.Entries[i]
		if de.Type < 0 || de.Type >= len(d.Types) {
			return nil, fmt.Errorf("entry %d references type %d of %d", i, de.Type, len(d.Types))
		}
		if de.Tombstone {
			tombs = append(tombs, tombstone{typeIdx: de.Type, pos: inserts, key: de.Key, level: de.Level, provider: de.Provider})
			continue
		}
		inserts++
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(inserts))
	var entry []byte // reused scratch
	for i := range d.Entries {
		de := &d.Entries[i]
		if de.Tombstone {
			continue
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(de.Type))
		eb, err := appendEntryBody(entry[:0], &de.EntrySnapshot)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		entry = eb
		if len(eb) > math.MaxUint32 {
			return nil, fmt.Errorf("entry %d: %d-byte body overflows the format", i, len(eb))
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(eb)))
		body = append(body, eb...)
		body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(eb))
	}
	// The tombstone section is emitted only when non-empty, so a delta
	// without evictions encodes exactly as it always has.
	if len(tombs) > 0 {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(tombs)))
		for _, t := range tombs {
			body = binary.LittleEndian.AppendUint32(body, uint32(t.typeIdx))
			body = binary.LittleEndian.AppendUint32(body, uint32(t.pos))
			body = binary.LittleEndian.AppendUint64(body, t.key)
			body = append(body, byte(t.level))
			body = binary.LittleEndian.AppendUint64(body, t.provider)
		}
	}
	return body, nil
}

// UnmarshalChain decodes a version-2 chain, strictly (see the layout
// comment for the one record-boundary caveat). The returned base is
// nil for a delta-only file.
func UnmarshalChain(data []byte) (*core.Snapshot, []*core.Delta, error) {
	base, deltas, _, _, err := scanChain(data)
	if err != nil {
		return nil, nil, err
	}
	if base == nil && len(deltas) == 0 {
		return nil, nil, fmt.Errorf("%w: chain with no records", ErrCorrupt)
	}
	return base, deltas, nil
}

// scanChain is the greedy record-stream parser behind UnmarshalChain
// and SalvageChain: it decodes records until the stream ends or the
// first failure, returning the decoded prefix, the byte offset just
// past its last valid record (the salvage boundary), and whether the
// failure was a torn tail — the remaining bytes ran out mid-record, so
// everything present is consistent with a valid longer file — as
// opposed to corruption (a CRC mismatch, an invalid enum or index, a
// misplaced record) inside bytes that are all there. Header failures
// are never torn: without magic, version and fingerprint nothing is
// salvageable.
func scanChain(data []byte) (base *core.Snapshot, deltas []*core.Delta, boundary int, torn bool, err error) {
	d := &decoder{data: data}
	head, err := d.need(8)
	if err != nil {
		return nil, nil, 0, false, err
	}
	if [8]byte(head) != magic {
		return nil, nil, 0, false, ErrBadMagic
	}
	ver, err := d.u32()
	if err != nil {
		return nil, nil, 0, false, err
	}
	if ver != Version2 {
		return nil, nil, 0, false, fmt.Errorf("%w: file version %d, want chain version %d", ErrVersion, ver, Version2)
	}
	fp, err := d.u64()
	if err != nil {
		return nil, nil, 0, false, err
	}
	boundary = d.off
	for rec := 0; d.remaining() > 0; rec++ {
		// Framing: a failure here hit EOF inside the record — a torn
		// tail, the valid prefix before it intact.
		kind, err := d.u8()
		if err != nil {
			return base, deltas, boundary, true, err
		}
		blen, err := d.u32()
		if err != nil {
			return base, deltas, boundary, true, err
		}
		body, err := d.need(int(blen))
		if err != nil {
			return base, deltas, boundary, true, err
		}
		sum, err := d.u32()
		if err != nil {
			return base, deltas, boundary, true, err
		}
		// The record's bytes are all present: any failure from here on
		// means the file is wrong, not merely cut short.
		if crc32.ChecksumIEEE(body) != sum {
			return base, deltas, boundary, false, fmt.Errorf("%w: record %d CRC mismatch", ErrCorrupt, rec)
		}
		switch kind {
		case recordBase:
			if rec != 0 {
				return base, deltas, boundary, false, fmt.Errorf("%w: base record at position %d (must be first)", ErrCorrupt, rec)
			}
			base, err = decodeBaseBody(body, fp)
		case recordDelta:
			var dl *core.Delta
			dl, err = decodeDeltaBody(body, fp)
			if err == nil {
				deltas = append(deltas, dl)
			}
		default:
			return base, deltas, boundary, false, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
		}
		if err != nil {
			return base, deltas, boundary, false, fmt.Errorf("record %d: %w", rec, err)
		}
		boundary = d.off
	}
	return base, deltas, boundary, false, nil
}

func decodeBaseBody(body []byte, fp uint64) (*core.Snapshot, error) {
	d := &decoder{data: body}
	s := &core.Snapshot{Fingerprint: fp}
	for _, p := range []*int64{&s.IKT.Inserts, &s.IKT.Defers, &s.IKT.Rejected} {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		*p = int64(v)
	}
	nsec, err := d.u32()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for i := uint32(0); i < nsec; i++ {
		blen, err := d.u32()
		if err != nil {
			return nil, err
		}
		sb, err := d.need(int(blen))
		if err != nil {
			return nil, err
		}
		sec, err := decodeSection(sb)
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		if seen[sec.Name] {
			return nil, fmt.Errorf("%w: duplicate section for type %q", ErrCorrupt, sec.Name)
		}
		seen[sec.Name] = true
		s.Types = append(s.Types, *sec)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d stray bytes in base record", ErrCorrupt, d.remaining())
	}
	return s, nil
}

func decodeDeltaBody(body []byte, fp uint64) (*core.Delta, error) {
	d := &decoder{data: body}
	dl := &core.Delta{Fingerprint: fp}
	ntypes, err := d.u32()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for i := uint32(0); i < ntypes; i++ {
		nlen, err := d.u16()
		if err != nil {
			return nil, err
		}
		name, err := d.need(int(nlen))
		if err != nil {
			return nil, err
		}
		td := core.TypeDelta{Name: string(name)}
		if seen[td.Name] {
			return nil, fmt.Errorf("%w: duplicate delta type %q", ErrCorrupt, td.Name)
		}
		seen[td.Name] = true
		flags, err := d.u8()
		if err != nil {
			return nil, err
		}
		if flags > 3 {
			return nil, fmt.Errorf("%w: unknown delta type flags %#x", ErrCorrupt, flags)
		}
		level, err := d.u8()
		if err != nil {
			return nil, err
		}
		succ, err := d.u32()
		if err != nil {
			return nil, err
		}
		excl, err := d.u32()
		if err != nil {
			return nil, err
		}
		td.HasMeta = flags&2 != 0
		if td.HasMeta {
			td.Steady = flags&1 != 0
			if level > 15 {
				return nil, fmt.Errorf("%w: p level %d out of range", ErrCorrupt, level)
			}
			td.Level = int(level)
			td.Successes = int(succ)
			td.Excluded = int(excl)
		} else if flags != 0 || level != 0 || succ != 0 || excl != 0 {
			// Canonical form: an entry-target-only type carries no
			// payload, so accepted inputs re-encode byte-identically.
			return nil, fmt.Errorf("%w: meta fields set on meta-less delta type %q", ErrCorrupt, td.Name)
		}
		dl.Types = append(dl.Types, td)
	}
	nent, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Grown by append (not preallocated) so an entry-less delta decodes
	// with a nil Entries slice, exactly as it was encoded.
	var inserts []core.DeltaEntry
	for j := uint32(0); j < nent; j++ {
		ti, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(ti) >= len(dl.Types) {
			return nil, fmt.Errorf("%w: entry %d references type %d of %d", ErrCorrupt, j, ti, len(dl.Types))
		}
		elen, err := d.u32()
		if err != nil {
			return nil, err
		}
		ebody, err := d.need(int(elen))
		if err != nil {
			return nil, err
		}
		sum, err := d.u32()
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(ebody) != sum {
			return nil, fmt.Errorf("%w: entry %d CRC mismatch", ErrCorrupt, j)
		}
		e, err := decodeEntry(ebody)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", j, err)
		}
		inserts = append(inserts, core.DeltaEntry{Type: int(ti), EntrySnapshot: *e})
	}
	if d.remaining() == 0 {
		// No tombstone section: the operation stream is the inserts.
		dl.Entries = inserts
		return dl, nil
	}
	// Trailing bytes are the tombstone section — canonically present
	// only when non-empty, positions non-decreasing, everything
	// validated so accepted inputs re-encode byte-identically.
	ntomb, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ntomb == 0 {
		return nil, fmt.Errorf("%w: empty tombstone section", ErrCorrupt)
	}
	dl.Entries = make([]core.DeltaEntry, 0, int(nent)+int(ntomb))
	next := 0 // inserts already emitted into the merged stream
	for j := uint32(0); j < ntomb; j++ {
		ti, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(ti) >= len(dl.Types) {
			return nil, fmt.Errorf("%w: tombstone %d references type %d of %d", ErrCorrupt, j, ti, len(dl.Types))
		}
		pos, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(pos) > len(inserts) || int(pos) < next {
			return nil, fmt.Errorf("%w: tombstone %d position %d out of order (%d inserts, previous position %d)",
				ErrCorrupt, j, pos, len(inserts), next)
		}
		key, err := d.u64()
		if err != nil {
			return nil, err
		}
		level, err := d.u8()
		if err != nil {
			return nil, err
		}
		if level > 15 {
			return nil, fmt.Errorf("%w: tombstone %d p level %d out of range", ErrCorrupt, j, level)
		}
		provider, err := d.u64()
		if err != nil {
			return nil, err
		}
		dl.Entries = append(dl.Entries, inserts[next:pos]...)
		next = int(pos)
		dl.Entries = append(dl.Entries, core.DeltaEntry{Type: int(ti), EntrySnapshot: core.EntrySnapshot{
			Key:       key,
			Level:     int8(level),
			Provider:  provider,
			Tombstone: true,
		}})
	}
	dl.Entries = append(dl.Entries, inserts[next:]...)
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d stray bytes in delta record", ErrCorrupt, d.remaining())
	}
	return dl, nil
}

// SaveChain writes a chain atomically and durably (same-directory temp
// file + fsync + rename + directory fsync, like Save). SaveChainSync
// takes the SyncPolicy explicitly.
func SaveChain(path string, base *core.Snapshot, deltas []*core.Delta) error {
	return SaveChainSync(path, base, deltas, SyncAlways)
}

// SaveChainSync is SaveChain under an explicit durability policy.
func SaveChainSync(path string, base *core.Snapshot, deltas []*core.Delta, sync SyncPolicy) error {
	data, err := MarshalChain(base, deltas)
	if err != nil {
		return err
	}
	return writeAtomic(path, data, sync)
}

// LoadChain reads a snapshot file of either version: a version-1 full
// snapshot loads as (base, nil deltas), a version-2 chain as its base
// (possibly nil) plus deltas in order. A missing file surfaces as an
// error satisfying errors.Is(err, os.ErrNotExist) — a cold start.
func LoadChain(path string) (*core.Snapshot, []*core.Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	ver, err := FileVersion(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	switch ver {
	case Version:
		s, err := Unmarshal(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil, nil
	case Version2:
		base, deltas, err := UnmarshalChain(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return base, deltas, nil
	default:
		return nil, nil, fmt.Errorf("%s: %w: file version %d", path, ErrVersion, ver)
	}
}

// AppendDelta appends one delta record to an existing version-2 chain
// file in O(delta) I/O — the incremental save that keeps per-save cost
// proportional to the churn. The file's header (magic, version,
// fingerprint) is verified first; the body is not re-read. The append
// is a single write of a CRC-framed record, fsynced before return
// under SyncAlways. A write that fails partway is truncated back to
// the pre-append length, so a live I/O error never leaves a torn tail;
// a crash mid-append does, and that tail is exactly what SalvageChain
// truncates away — recovery keeps every record up to the tear instead
// of discarding the file (docs/persistence.md). AppendDeltaSync takes
// the SyncPolicy explicitly.
func AppendDelta(path string, d *core.Delta) error {
	return AppendDeltaSync(path, d, SyncAlways)
}

// AppendDeltaSync is AppendDelta under an explicit durability policy.
func AppendDeltaSync(path string, d *core.Delta, sync SyncPolicy) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	// Closed explicitly on every path: the success-path Close error is
	// part of the flush signal for the appended record.
	fail := func(err error) error {
		f.Close()
		return err
	}
	var head [headerLen]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return fail(fmt.Errorf("%s: %w: chain header", path, ErrTruncated))
	}
	ver, err := FileVersion(head[:])
	if err != nil {
		return fail(fmt.Errorf("%s: %w", path, err))
	}
	if ver != Version2 {
		return fail(fmt.Errorf("%s: %w: cannot append a delta to a version-%d file", path, ErrVersion, ver))
	}
	fp := binary.LittleEndian.Uint64(head[12:20])
	if fp != d.Fingerprint {
		return fail(fmt.Errorf("%s: chain fingerprint %#016x, delta %#016x", path, fp, d.Fingerprint))
	}
	body, err := appendDeltaBody(nil, d)
	if err != nil {
		return fail(err)
	}
	rec, err := appendRecord(nil, recordDelta, body)
	if err != nil {
		return fail(err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fail(err)
	}
	n, werr := failpoint.InjectPartial(FailpointAppend, len(rec))
	if _, err := f.Write(rec[:n]); err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		// Undo the partial append so the caller may simply retry; after
		// a simulated crash there is no process left to truncate, which
		// is the torn tail the salvage path exists for.
		if !crashed(werr) {
			f.Truncate(end)
		}
		return fail(werr)
	}
	if sync == SyncAlways {
		if err := failpoint.Inject(FailpointSync); err != nil {
			if !crashed(err) {
				f.Truncate(end)
			}
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			// The record landed but its durability is unknown; back it
			// out so a retry cannot append it twice.
			f.Truncate(end)
			return fail(err)
		}
	}
	return f.Close()
}
