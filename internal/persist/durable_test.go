package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"atm/internal/failpoint"
)

// These tests pin the two halves of the write-path contract. On a live
// error (disk full, EIO — injected as plain failures) a save must clean
// up after itself: no temp residue, the chain still loadable, a retry
// safe. On a simulated crash (failpoint.ErrCrash) the cleanup could not
// have run, so the tests observe the exact on-disk crash image and
// assert the recovery path digests it.

func TestWriteAtomicErrorLeavesNoResidue(t *testing.T) {
	defer failpoint.DisableAll()
	base, _ := buildChain(t)
	path := filepath.Join(t.TempDir(), "snap.atmsnap")
	if err := Save(path, base); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{FailpointWrite, FailpointSync, FailpointRename} {
		failpoint.Enable(point, func() error { return failpoint.ErrInjected })
		if err := Save(path, base); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%s: save must surface the injected error, got %v", point, err)
		}
		failpoint.Disable(point)
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: failed save left a temp file", point)
		}
		if got, _ := os.ReadFile(path); !bytes.Equal(got, before) {
			t.Fatalf("%s: failed save modified the published file", point)
		}
	}
	// After the failures, a plain retry succeeds.
	if err := Save(path, base); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAtomicCrashImage simulates a crash at each write-path stage
// and asserts the published file is never damaged, while the temp file
// survives exactly as a dead process would leave it — and that
// RemoveStaleTemp sweeps it.
func TestWriteAtomicCrashImage(t *testing.T) {
	defer failpoint.DisableAll()
	base, _ := buildChain(t)
	path := filepath.Join(t.TempDir(), "snap.atmsnap")
	if err := Save(path, base); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash after half the temp-file bytes land.
	failpoint.EnablePartial(FailpointWrite, func(total int) (int, error) {
		return total / 2, failpoint.ErrCrash
	})
	if err := Save(path, base); !crashed(err) {
		t.Fatalf("want crash error, got %v", err)
	}
	failpoint.Disable(FailpointWrite)
	tmp, err := os.ReadFile(path + ".tmp")
	if err != nil {
		t.Fatalf("crash image: temp file must survive: %v", err)
	}
	if len(tmp) != len(before)/2 {
		t.Fatalf("crash image: temp holds %d bytes, want %d", len(tmp), len(before)/2)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, before) {
		t.Fatal("crash during temp write modified the published file")
	}
	if removed, err := RemoveStaleTemp(path); err != nil || !removed {
		t.Fatalf("RemoveStaleTemp: %v removed=%v", err, removed)
	}
	if removed, err := RemoveStaleTemp(path); err != nil || removed {
		t.Fatalf("second RemoveStaleTemp must be a no-op: %v removed=%v", err, removed)
	}

	// Crash at the rename: temp is complete but unpublished.
	failpoint.Enable(FailpointRename, func() error { return failpoint.ErrCrash })
	if err := Save(path, base); !crashed(err) {
		t.Fatalf("want crash error, got %v", err)
	}
	failpoint.Disable(FailpointRename)
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("crash at rename must leave the temp file: %v", err)
	}
	// Recovery sweep + retry converges to a clean state.
	if _, err := RemoveStaleTemp(path); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, base); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, before) {
		t.Fatal("post-crash retry must reproduce the snapshot byte-identically")
	}
}

// TestAppendDeltaErrorSelfTruncates pins retry safety: a live append
// failure truncates back to the pre-append length, so the chain stays
// strictly loadable and the retried append lands clean.
func TestAppendDeltaErrorSelfTruncates(t *testing.T) {
	defer failpoint.DisableAll()
	base, deltas := buildChain(t)
	path := filepath.Join(t.TempDir(), "chain.atmsnap")
	if err := SaveChain(path, base, deltas[:1]); err != nil {
		t.Fatal(err)
	}

	failpoint.EnablePartial(FailpointAppend, func(total int) (int, error) {
		return total / 2, failpoint.ErrInjected
	})
	if err := AppendDelta(path, deltas[1]); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	failpoint.Disable(FailpointAppend)

	if _, got, err := LoadChain(path); err != nil || len(got) != 1 {
		t.Fatalf("failed append must leave the chain strictly loadable: %v (deltas=%d)", err, len(got))
	}
	if err := AppendDelta(path, deltas[1]); err != nil {
		t.Fatal(err)
	}
	want, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, want) {
		t.Fatal("retried append must reproduce the canonical chain bytes")
	}
}

// TestAppendDeltaCrashLeavesSalvageableTail crashes mid-append and
// walks the full recovery path: strict load rejects the torn tail,
// salvage recovers the prefix, repair truncates, and the re-append
// reproduces the canonical chain.
func TestAppendDeltaCrashLeavesSalvageableTail(t *testing.T) {
	defer failpoint.DisableAll()
	base, deltas := buildChain(t)
	path := filepath.Join(t.TempDir(), "chain.atmsnap")
	if err := SaveChain(path, base, deltas[:1]); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	failpoint.EnablePartial(FailpointAppend, func(total int) (int, error) {
		return total / 2, failpoint.ErrCrash
	})
	if err := AppendDelta(path, deltas[1]); !crashed(err) {
		t.Fatalf("want crash error, got %v", err)
	}
	failpoint.Disable(FailpointAppend)

	// The crash image: old bytes plus half the new record.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) <= len(before) {
		t.Fatalf("crash image must hold a torn tail: %d <= %d bytes", len(img), len(before))
	}
	if _, _, err := LoadChain(path); err == nil {
		t.Fatal("strict load must reject the torn tail")
	}

	gotBase, gotDeltas, rep, err := LoadChainSalvage(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotBase == nil || len(gotDeltas) != 1 || rep.Clean() || rep.BytesKept != int64(len(before)) {
		t.Fatalf("salvage after crash: deltas=%d report=%+v", len(gotDeltas), rep)
	}

	if _, err := RepairChain(path, SyncAlways); err != nil {
		t.Fatal(err)
	}
	if err := AppendDelta(path, deltas[1]); err != nil {
		t.Fatal(err)
	}
	want, err := MarshalChain(base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, want) {
		t.Fatal("repair + re-append must reproduce the canonical chain bytes")
	}
}

// TestSyncOffSkipsSyncFailpoint proves the policy knob is honored: with
// SyncOff the fsync stage never runs, so an armed FailpointSync cannot
// fire, while SyncAlways trips it.
func TestSyncOffSkipsSyncFailpoint(t *testing.T) {
	defer failpoint.DisableAll()
	base, deltas := buildChain(t)
	dir := t.TempDir()
	failpoint.Enable(FailpointSync, func() error { return failpoint.ErrInjected })

	if err := SaveSync(filepath.Join(dir, "off.atmsnap"), base, SyncOff); err != nil {
		t.Fatalf("SyncOff save must skip the fsync stage: %v", err)
	}
	if err := SaveSync(filepath.Join(dir, "on.atmsnap"), base, SyncAlways); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("SyncAlways save must hit the fsync stage, got %v", err)
	}

	off := filepath.Join(dir, "chain-off.atmsnap")
	if err := SaveChainSync(off, base, deltas[:1], SyncOff); err != nil {
		t.Fatalf("SyncOff chain save: %v", err)
	}
	if err := AppendDeltaSync(off, deltas[1], SyncOff); err != nil {
		t.Fatalf("SyncOff append must skip the fsync stage: %v", err)
	}
	if err := AppendDeltaSync(off, deltas[1], SyncAlways); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("SyncAlways append must hit the fsync stage, got %v", err)
	}
	// The fsync-failed append backed itself out: only the SyncOff
	// append's record is in the chain.
	if _, got, err := LoadChain(off); err != nil || len(got) != 2 {
		t.Fatalf("chain after fsync-failed append: %v (deltas=%d, want 2)", err, len(got))
	}
}
