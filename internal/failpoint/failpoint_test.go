package failpoint

import (
	"errors"
	"testing"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	if err := Inject("nobody/armed/this"); err != nil {
		t.Fatalf("disarmed point injected %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer DisableAll()
	calls := 0
	Enable("p", func() error {
		calls++
		if calls == 2 {
			return ErrInjected
		}
		return nil
	})
	if err := Inject("p"); err != nil {
		t.Fatalf("first call injected %v", err)
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second call returned %v, want ErrInjected", err)
	}
	// Other points stay unarmed while p is armed.
	if err := Inject("q"); err != nil {
		t.Fatalf("unrelated point injected %v", err)
	}
	Disable("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("disabled point injected %v", err)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed count %d after Disable, want 0", got)
	}
}

func TestEnableReplacesHook(t *testing.T) {
	defer DisableAll()
	Enable("p", func() error { return nil })
	Enable("p", func() error { return ErrInjected })
	if got := armed.Load(); got != 1 {
		t.Fatalf("armed count %d after re-Enable, want 1", got)
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("replaced hook returned %v", err)
	}
	DisableAll()
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed count %d after DisableAll, want 0", got)
	}
}
