// Package failpoint provides named fault-injection points for tests.
//
// Production code calls Inject(name) at a boundary whose failure it
// wants testable — a persist write, a rename, an external task
// completion — and proceeds normally when the point is unarmed. Tests
// arm a point with Enable, typically with a seeded closure so the
// injected fault sequence replays from the same integer that replays
// the schedule (internal/schedfuzz drives both from one seed; see
// docs/determinism.md for the point catalog).
//
// The disarmed fast path is a single atomic load, so the points are
// safe to leave on semi-hot paths. Arming is process-global: tests
// that enable points must not run in parallel with each other and must
// disarm them on exit (defer Disable/DisableAll).
package failpoint

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrInjected is the conventional error returned by injection hooks
// that do not need a more specific one.
var ErrInjected = errors.New("failpoint: injected failure")

var (
	armed atomic.Int32 // number of enabled points; 0 = disarmed fast path
	mu    sync.Mutex
	hooks = map[string]func() error{}
)

// Enable arms the named point: every Inject(name) calls hook and
// returns its error. A non-nil return injects the fault; nil lets the
// call proceed (hooks can count calls, fail every Nth, draw from a
// seeded PRNG, ...). Enabling an already-armed point replaces its hook.
func Enable(name string, hook func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; !ok {
		armed.Add(1)
	}
	hooks[name] = hook
}

// Disable disarms the named point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; ok {
		delete(hooks, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every point.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	for name := range hooks {
		delete(hooks, name)
		armed.Add(-1)
	}
}

// Inject consults the named point. It returns nil when the point is
// unarmed (the production fast path: one atomic load), otherwise
// whatever the installed hook returns.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := hooks[name]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}
