// Package failpoint provides named fault-injection points for tests.
//
// Production code calls Inject(name) at a boundary whose failure it
// wants testable — a persist write, a rename, an external task
// completion — and proceeds normally when the point is unarmed. Tests
// arm a point with Enable, typically with a seeded closure so the
// injected fault sequence replays from the same integer that replays
// the schedule (internal/schedfuzz drives both from one seed; see
// docs/determinism.md for the point catalog).
//
// The disarmed fast path is a single atomic load, so the points are
// safe to leave on semi-hot paths. Arming is process-global: tests
// that enable points must not run in parallel with each other and must
// disarm them on exit (defer Disable/DisableAll).
package failpoint

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrInjected is the conventional error returned by injection hooks
// that do not need a more specific one.
var ErrInjected = errors.New("failpoint: injected failure")

// ErrCrash marks an injected failure as a simulated process crash.
// Code that would normally clean up after an I/O error (remove a temp
// file, truncate a torn tail) checks errors.Is(err, ErrCrash) and skips
// the cleanup a dead process could not have run, so tests observe the
// exact on-disk image a crash at that point leaves behind
// (internal/crashfuzz drives its whole corpus through this).
var ErrCrash = errors.New("failpoint: simulated crash")

var (
	armed atomic.Int32 // number of enabled points; 0 = disarmed fast path
	mu    sync.Mutex
	hooks = map[string]func() error{}
	parts = map[string]func(total int) (int, error){}
)

// Enable arms the named point: every Inject(name) calls hook and
// returns its error. A non-nil return injects the fault; nil lets the
// call proceed (hooks can count calls, fail every Nth, draw from a
// seeded PRNG, ...). Enabling an already-armed point replaces its hook.
func Enable(name string, hook func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; !ok {
		armed.Add(1)
	}
	hooks[name] = hook
}

// EnablePartial arms the named point with a partial-write hook: a
// write path that is about to land total bytes consults the hook via
// InjectPartial and receives (n, err) — it must land exactly the first
// n bytes and then surface err, modeling a write torn after n bytes
// (crash, ENOSPC mid-buffer, a torn sector). A nil err with n == total
// lets the write proceed whole. Enabling replaces any previous partial
// hook under the name; plain Enable hooks under the same name are
// consulted only when no partial hook is armed.
func EnablePartial(name string, hook func(total int) (int, error)) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := parts[name]; !ok {
		armed.Add(1)
	}
	parts[name] = hook
}

// Disable disarms the named point (both its plain and partial hooks).
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; ok {
		delete(hooks, name)
		armed.Add(-1)
	}
	if _, ok := parts[name]; ok {
		delete(parts, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every point.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	for name := range hooks {
		delete(hooks, name)
		armed.Add(-1)
	}
	for name := range parts {
		delete(parts, name)
		armed.Add(-1)
	}
}

// Inject consults the named point. It returns nil when the point is
// unarmed (the production fast path: one atomic load), otherwise
// whatever the installed hook returns.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := hooks[name]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}

// InjectPartial consults the named point before landing total bytes.
// Unarmed (the production fast path: one atomic load) it returns
// (total, nil). An armed partial hook decides how many bytes land and
// which error surfaces; its n is clamped to [0, total]. A plain Enable
// hook counts as failing before any byte lands: (0, err) on a non-nil
// error, (total, nil) otherwise.
func InjectPartial(name string, total int) (int, error) {
	if armed.Load() == 0 {
		return total, nil
	}
	mu.Lock()
	p, h := parts[name], hooks[name]
	mu.Unlock()
	if p != nil {
		n, err := p(total)
		if n < 0 {
			n = 0
		}
		if n > total {
			n = total
		}
		return n, err
	}
	if h != nil {
		if err := h(); err != nil {
			return 0, err
		}
	}
	return total, nil
}
