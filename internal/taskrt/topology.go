package taskrt

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Cache-topology discovery for the scheduler's two locality decisions:
//
//   - the adaptive submission-throttle watermark targets a live task
//     graph that is a fixed fraction of the last-level cache, so the
//     LLC size is needed, and
//   - victim selection steals first from workers that (heuristically)
//     share an LLC slice, so the CPU→LLC grouping is needed.
//
// Both come from /sys/devices/system/cpu/cpu*/cache on Linux. On other
// platforms, or when sysfs is absent, the zero topology is returned and
// the scheduler falls back to a default LLC size and a flat random-start
// victim order.

// cacheTopo describes the machine's last-level cache layout.
type cacheTopo struct {
	// llcBytes is the size of one LLC slice in bytes (0 when unknown).
	llcBytes int64
	// cpuLLC maps a CPU id to its LLC group id (nil when unknown).
	cpuLLC map[int]int
	// nLLC is the number of distinct LLC groups (0 when unknown).
	nLLC int
	// ncpu is the number of CPUs seen during discovery.
	ncpu int
}

var (
	topoOnce sync.Once
	topoVal  cacheTopo
)

// topology returns the host's cache topology, discovered once per process.
func topology() cacheTopo {
	topoOnce.Do(func() {
		topoVal = readCacheTopology("/sys/devices/system/cpu")
	})
	return topoVal
}

// readCacheTopology parses a sysfs-style CPU tree. It is split from
// topology() so tests can point it at a synthetic tree.
func readCacheTopology(root string) cacheTopo {
	cpuDirs, err := filepath.Glob(filepath.Join(root, "cpu[0-9]*"))
	if err != nil || len(cpuDirs) == 0 {
		return cacheTopo{}
	}
	tp := cacheTopo{cpuLLC: make(map[int]int)}
	groupIDs := make(map[string]int) // canonical shared_cpu_list -> group id
	for _, dir := range cpuDirs {
		cpu, err := strconv.Atoi(strings.TrimPrefix(filepath.Base(dir), "cpu"))
		if err != nil {
			continue // cpufreq, cpuidle, ...
		}
		tp.ncpu++
		level, size, shared := lastLevelCache(filepath.Join(dir, "cache"))
		if level == 0 {
			continue
		}
		if size > tp.llcBytes {
			tp.llcBytes = size
		}
		id, ok := groupIDs[shared]
		if !ok {
			id = len(groupIDs)
			groupIDs[shared] = id
		}
		tp.cpuLLC[cpu] = id
	}
	tp.nLLC = len(groupIDs)
	if tp.nLLC == 0 {
		return cacheTopo{ncpu: tp.ncpu}
	}
	return tp
}

// lastLevelCache scans one cpu's cache/index* entries and returns the
// highest-level unified/data cache's (level, size bytes, shared_cpu_list).
func lastLevelCache(cacheDir string) (level int, size int64, shared string) {
	idxDirs, err := filepath.Glob(filepath.Join(cacheDir, "index[0-9]*"))
	if err != nil {
		return 0, 0, ""
	}
	for _, idx := range idxDirs {
		typ := readTrimmed(filepath.Join(idx, "type"))
		if typ == "Instruction" {
			continue
		}
		lv, err := strconv.Atoi(readTrimmed(filepath.Join(idx, "level")))
		if err != nil || lv <= level {
			continue
		}
		sz := parseCacheSize(readTrimmed(filepath.Join(idx, "size")))
		if sz <= 0 {
			continue
		}
		level, size = lv, sz
		shared = readTrimmed(filepath.Join(idx, "shared_cpu_list"))
	}
	return level, size, shared
}

func readTrimmed(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseCacheSize parses sysfs cache sizes like "32K", "2048K", "36M".
func parseCacheSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n * mult
}

// effectiveLLCBytes returns the LLC size the adaptive throttle should
// target, substituting a conservative default when discovery failed and
// clamping implausible sizes (huge virtualized L3s would otherwise let
// the live task graph grow far past what stays cache-resident).
func (tp cacheTopo) effectiveLLCBytes() int64 {
	const (
		defaultLLC = 8 << 20
		minLLC     = 1 << 20
		maxLLC     = 64 << 20
	)
	b := tp.llcBytes
	if b <= 0 {
		return defaultLLC
	}
	if b < minLLC {
		return minLLC
	}
	if b > maxLLC {
		return maxLLC
	}
	return b
}

// buildStealOrder precomputes each worker's victim list, LLC-sharing
// victims first. Returned split[w] is the boundary: order[w][:split[w]]
// are same-LLC victims, the rest are remote. Workers are mapped to CPUs
// in index order (worker w ~ CPU w mod ncpu) — Go does not pin
// goroutines, so this is a locality heuristic that matches the common
// GOMAXPROCS = NumCPU deployment; when the topology is unknown or the
// machine has a single LLC, every victim lands in the remote tier and
// scan()'s random start is the only (portable) de-convoying mechanism.
func buildStealOrder(workers int, tp cacheTopo) (order [][]int32, split []int) {
	order = make([][]int32, workers)
	split = make([]int, workers)
	groupOf := func(w int) int {
		if tp.nLLC <= 1 || tp.ncpu == 0 || tp.cpuLLC == nil {
			return 0
		}
		if g, ok := tp.cpuLLC[w%tp.ncpu]; ok {
			return g
		}
		return 0
	}
	multi := tp.nLLC > 1
	for w := 0; w < workers; w++ {
		var near, far []int32
		for i := 1; i < workers; i++ {
			v := (w + i) % workers
			if multi && groupOf(v) == groupOf(w) {
				near = append(near, int32(v))
			} else {
				far = append(far, int32(v))
			}
		}
		order[w] = append(near, far...)
		split[w] = len(near)
	}
	return order, split
}
