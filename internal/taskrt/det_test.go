package taskrt

import (
	"strings"
	"sync/atomic"
	"testing"

	"atm/internal/failpoint"
	"atm/internal/region"
)

// detRunOrder runs a fixed dependence-heavy scenario (shape drawn from
// its own PRNG stream, identical across calls) under the deterministic
// executor and returns the task execution order.
func detRunOrder(seed uint64, sched DetSched) []uint64 {
	rt := New(Config{
		Workers:        4,
		Deterministic:  true,
		Seed:           seed,
		DetSched:       sched,
		ThrottleWindow: 256,
	})
	defer rt.Close()
	var order []uint64
	tt := rt.RegisterType(TypeConfig{Name: "rec", Run: func(task *Task) {
		order = append(order, task.ID()) // det mode: bodies run on this goroutine
	}})
	regs := make([]*region.Float64, 8)
	for i := range regs {
		regs[i] = region.NewFloat64(1)
	}
	shape := uint64(0xabcdef12345)
	b := rt.BatcherN(16)
	for i := 0; i < 300; i++ {
		r1 := regs[splitmix64(&shape)%8]
		r2 := regs[splitmix64(&shape)%8]
		switch splitmix64(&shape) % 3 {
		case 0:
			b.Add(tt, In(r1), Out(r2))
		case 1:
			b.Add(tt, InOut(r1))
		default:
			b.Add(tt, In(r1), In(r2))
		}
		if splitmix64(&shape)%64 == 0 {
			b.Flush()
			rt.Wait()
		}
	}
	b.Flush()
	rt.Wait()
	return order
}

// TestDetSameSeedBitIdenticalOrder pins the mode's defining property and
// the PR's acceptance criterion: the same seed yields a bit-identical
// task execution order across independent runs, for every discipline
// that draws scheduling decisions from the PRNG.
func TestDetSameSeedBitIdenticalOrder(t *testing.T) {
	for _, sched := range []DetSched{DetSchedRandom, DetSchedAdversarial, DetSchedLIFO} {
		a := detRunOrder(12345, sched)
		b := detRunOrder(12345, sched)
		if len(a) != 300 || len(b) != 300 {
			t.Fatalf("%v: ran %d and %d tasks, want 300", sched, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed diverged at step %d: %d vs %d", sched, i, a[i], b[i])
			}
		}
	}
}

// TestDetSeedsDiverge sanity-checks that the seed actually matters: two
// adversarial runs under different seeds should not produce the same
// schedule for a 300-task dependence soup (they legally could, but a
// collision here would mean the PRNG is not reaching the decisions).
func TestDetSeedsDiverge(t *testing.T) {
	a := detRunOrder(1, DetSchedAdversarial)
	b := detRunOrder(2, DetSchedAdversarial)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical adversarial schedules")
	}
}

// TestDetFIFOIndependentSubmissionOrder pins DetSchedFIFO: independent
// tasks execute in exact submission order — yield points may run a
// prefix early, but oldest-first picking preserves the order.
func TestDetFIFOIndependentSubmissionOrder(t *testing.T) {
	rt := New(Config{Workers: 4, Deterministic: true, Seed: 99, DetSched: DetSchedFIFO})
	defer rt.Close()
	var order []uint64
	tt := rt.RegisterType(TypeConfig{Name: "rec", Run: func(task *Task) {
		order = append(order, task.ID())
	}})
	const n = 128
	for i := 0; i < n; i++ {
		rt.Submit(tt, InOut(region.NewFloat64(1)))
	}
	rt.Wait()
	if len(order) != n {
		t.Fatalf("ran %d tasks, want %d", len(order), n)
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("fifo order broken at step %d: task %d", i, id)
		}
	}
}

// deferNeverMemoizer defers the first memoizable task and never completes
// it — the lost-completion fault the stall detector must report.
type deferNeverMemoizer struct{ deferredOnce bool }

func (m *deferNeverMemoizer) OnReady(t *Task, worker int) Outcome {
	if !m.deferredOnce {
		m.deferredOnce = true
		return OutcomeDeferred
	}
	return OutcomeRun
}

func (m *deferNeverMemoizer) OnFinished(*Task, int) {}

// TestDetStallPanicReportsSeed pins the deterministic stall detector: a
// deferred task whose completion never arrives turns Wait into a panic
// that names the incomplete count and the replay seed, instead of the
// live mode's silent hang.
func TestDetStallPanicReportsSeed(t *testing.T) {
	rt := New(Config{Workers: 2, Deterministic: true, Seed: 77, Memoizer: &deferNeverMemoizer{}})
	tt := rt.RegisterType(TypeConfig{Name: "memo", Memoize: true, Run: func(*Task) {}})
	for i := 0; i < 4; i++ {
		rt.Submit(tt, InOut(region.NewFloat64(1)))
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("stalled deterministic drain did not panic")
		}
		s, ok := p.(string)
		if !ok || !strings.Contains(s, "stalled") {
			t.Fatalf("unexpected panic: %v", p)
		}
		if !strings.Contains(s, "seed=77") {
			t.Fatalf("stall report does not carry the replay seed: %q", s)
		}
	}()
	rt.Wait()
}

// TestDetFailpointDroppedCompletionStalls wires the CompleteExternal
// failpoint through a deterministic run: the injected drop must surface
// as a seeded stall report, not a hang — the schedfuzz fault-schedule
// contract.
func TestDetFailpointDroppedCompletionStalls(t *testing.T) {
	defer failpoint.DisableAll()
	m := &deferOnceMemoizer{deferred: make(chan *Task, 1)}
	rt := New(Config{Workers: 2, Deterministic: true, Seed: 5, Memoizer: m})
	tt := rt.RegisterType(TypeConfig{Name: "memo", Memoize: true, Run: func(*Task) {}})
	failpoint.Enable(FailpointCompleteExternal, func() error { return failpoint.ErrInjected })
	for i := 0; i < 4; i++ {
		rt.Submit(tt, InOut(region.NewFloat64(1)))
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("dropped CompleteExternal did not stall the drain")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "seed=5") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	// Drive the executor until the memoizer has deferred a task (a
	// blocking receive would deadlock the single goroutine), then take
	// the provider path: the armed failpoint swallows the completion.
	for len(m.deferred) == 0 {
		if !rt.det.runOne() {
			t.Fatal("executor drained without deferring a task")
		}
	}
	rt.CompleteExternal(<-m.deferred)
	rt.Wait()
}

// TestDetPriorityRunsFirst pins the deterministic priority rule: among
// ready tasks the highest-priority type always runs first, under every
// discipline.
func TestDetPriorityRunsFirst(t *testing.T) {
	rt := New(Config{Workers: 2, Deterministic: true, Seed: 3, DetSched: DetSchedRandom})
	defer rt.Close()
	var order []string
	lo := rt.RegisterType(TypeConfig{Name: "lo", Run: func(*Task) { order = append(order, "lo") }})
	hi := rt.RegisterType(TypeConfig{Name: "hi", Priority: 5, Run: func(*Task) { order = append(order, "hi") }})
	batch := make([]BatchEntry, 0, 8)
	for i := 0; i < 4; i++ {
		batch = append(batch, Desc(lo, InOut(region.NewFloat64(1))))
	}
	for i := 0; i < 4; i++ {
		batch = append(batch, Desc(hi, InOut(region.NewFloat64(1))))
	}
	rt.SubmitBatch(batch)
	rt.Wait()
	if len(order) != 8 {
		t.Fatalf("ran %d tasks, want 8", len(order))
	}
	// All independent and published as one batch: every hi must precede
	// every lo regardless of what the yield points did afterwards.
	lastHi, firstLo := -1, len(order)
	for i, s := range order {
		if s == "hi" && i > lastHi {
			lastHi = i
		}
		if s == "lo" && i < firstLo {
			firstLo = i
		}
	}
	if lastHi > firstLo {
		t.Fatalf("priority inversion: hi at %d after lo at %d (order %v)", lastHi, firstLo, order)
	}
}

// TestResetRacesInflightBatch exercises Reset (barrier + registry drop +
// generation retirement) immediately after SubmitBatch, while the batch
// is still executing on live workers, then reuses the same regions in a
// fresh dependence epoch — the Reset/in-flight interleaving under -race.
func TestResetRacesInflightBatch(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		rt := New(Config{Workers: 4})
		var ran atomic.Int64
		tt := rt.RegisterType(TypeConfig{Name: "w", Run: func(*Task) { ran.Add(1) }})
		regs := make([]*region.Float64, 4)
		for i := range regs {
			regs[i] = region.NewFloat64(8)
		}
		mkBatch := func() []BatchEntry {
			batch := make([]BatchEntry, 0, 64)
			for i := 0; i < 64; i++ {
				batch = append(batch, Desc(tt, InOut(regs[i%len(regs)])))
			}
			return batch
		}
		rt.SubmitBatch(mkBatch())
		rt.Reset() // races the in-flight batch: Reset's Wait is the barrier
		// Same regions, fresh epoch: slots restamp under the new generation.
		rt.SubmitBatch(mkBatch())
		rt.Close()
		if got := ran.Load(); got != 128 {
			t.Fatalf("round %d: ran %d tasks, want 128", round, got)
		}
	}
}

// TestCloseRacesInflightBatch exercises Close called while a just-
// submitted batch is still in flight: Close's Wait must act as the full
// barrier and worker shutdown must not lose tasks.
func TestCloseRacesInflightBatch(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		rt := New(Config{Workers: 4})
		var ran atomic.Int64
		tt := rt.RegisterType(TypeConfig{Name: "w", Run: func(*Task) { ran.Add(1) }})
		r := region.NewFloat64(8)
		batch := make([]BatchEntry, 0, 64)
		for i := 0; i < 64; i++ {
			batch = append(batch, Desc(tt, InOut(r)))
		}
		rt.SubmitBatch(batch)
		rt.Close()
		if got := ran.Load(); got != 64 {
			t.Fatalf("round %d: ran %d tasks, want 64", round, got)
		}
	}
}

// TestLiveSeedReproducibleStealRNG pins the satellite contract that
// Config.Seed derives the live-mode steal RNGs: equal seeds give equal
// per-worker streams, different seeds differ.
func TestLiveSeedReproducibleStealRNG(t *testing.T) {
	mk := func(seed uint64) []uint64 {
		// Deterministic mode runs the identical wlocal seeding path but
		// spawns no workers, so the states can be read without racing a
		// worker's own steal probes.
		rt := New(Config{Workers: 4, Seed: seed, Deterministic: true})
		defer rt.Close()
		out := make([]uint64, len(rt.wlocal))
		for w := range rt.wlocal {
			out[w] = rt.wlocal[w].rng
		}
		return out
	}
	a, b, c := mk(42), mk(42), mk(43)
	for w := range a {
		if a[w] != b[w] {
			t.Fatalf("worker %d: same seed gave different steal RNG state", w)
		}
	}
	diff := false
	for w := range a {
		if a[w] != c[w] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 gave identical steal RNG states")
	}
}
