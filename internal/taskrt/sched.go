package taskrt

import (
	"sync"
	"sync/atomic"
)

// This file implements the runtime's work-stealing scheduler.
//
// Ready tasks live in two kinds of queues:
//
//   - Per-worker deques (Runtime.locals): a worker that readies a task by
//     completing its last predecessor pushes it onto its own deque and, on
//     its next scheduling decision, pops from the same end the policy
//     dictates (LIFO pops the newest for locality and short reuse
//     distances, FIFO the oldest). Thieves always steal the oldest task,
//     so owner and thieves contend on opposite ends of the deque.
//
//   - A sharded injector (Runtime.inj): tasks readied by the master thread
//     (Submit/SubmitBatch) or by external completions (CompleteExternal)
//     round-robin across the shards; workers drain the shards when their
//     own deque is empty, before resorting to stealing. With a single
//     worker the injector collapses to one shard so the global FIFO/LIFO
//     submission order of the old centralized queue is preserved exactly.
//     SubmitBatch publishes each batch's initially-ready tasks as block
//     pushes — one lock acquisition per stripe instead of one per task.
//
// Priorities (the OmpSs priority clause) are handled with per-priority
// buckets inside each queue, allocated lazily and only consulted when a
// prioritized type has been registered — unprioritized programs never pay
// for them.
//
// Victim selection is topology-aware: stealOrder lists LLC-sharing
// workers before remote ones (a stolen task's inputs are then likelier
// to be read from the shared cache slice rather than across the die),
// and every scan starts at a per-worker pseudorandom position within
// each tier so thieves do not probe victims in lockstep — the convoy
// that a fixed round-robin order produces when many workers go idle at
// once.
//
// Idle workers park on a condition variable. Producers hand out wake
// tokens only when the parked-worker count is nonzero, so the busy steady
// state pays a single atomic load per push; multi-task events (batch
// publication, wide fan-out completions) issue one wake of min(n, parked)
// rather than n independent signals. The park protocol (advertise parked,
// rescan every queue, then sleep) makes lost wakeups impossible: a
// producer that observes parked == 0 pushed its task before the worker
// advertised, so the worker's rescan finds it.

// taskRing is a growable ring buffer of tasks (oldest at head).
type taskRing struct {
	buf  []*Task
	head int
	n    int
}

func (r *taskRing) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]*Task, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

func (r *taskRing) pushBack(t *Task) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *taskRing) popFront() *Task {
	if r.n == 0 {
		return nil
	}
	t := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

func (r *taskRing) popBack() *Task {
	if r.n == 0 {
		return nil
	}
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	t := r.buf[i]
	r.buf[i] = nil
	r.n--
	return t
}

// prioRing is one lazily-created priority bucket.
type prioRing struct {
	pr   int
	ring taskRing
}

// readyQ is one mutex-guarded scheduling queue: a plain ring for
// priority-0 tasks plus optional per-priority buckets, kept sorted by
// descending priority. It backs both the per-worker deques and the
// injector shards.
type readyQ struct {
	mu    sync.Mutex
	plain taskRing
	prios []*prioRing  // sorted by pr descending; nil when unused
	size  atomic.Int32 // total queued tasks; read lock-free by the wake heuristic
	_     [20]byte     // pad to keep adjacent queues off one cache line
}

func (q *readyQ) bucket(pr int) *taskRing {
	for _, b := range q.prios {
		if b.pr == pr {
			return &b.ring
		}
	}
	nb := &prioRing{pr: pr}
	q.prios = append(q.prios, nb)
	for i := len(q.prios) - 1; i > 0 && q.prios[i-1].pr < pr; i-- {
		q.prios[i], q.prios[i-1] = q.prios[i-1], q.prios[i]
	}
	return &nb.ring
}

// push enqueues t. pr is the task's effective priority (always 0 when the
// runtime has no prioritized types, which keeps the plain ring hot).
func (q *readyQ) push(t *Task, pr int) {
	q.mu.Lock()
	if pr == 0 {
		q.plain.pushBack(t)
	} else {
		q.bucket(pr).pushBack(t)
	}
	q.size.Add(1)
	q.mu.Unlock()
}

// pushBlock enqueues a block of priority-0 tasks under one lock.
func (q *readyQ) pushBlock(ts []*Task) {
	q.mu.Lock()
	for _, t := range ts {
		q.plain.pushBack(t)
	}
	q.size.Add(int32(len(ts)))
	q.mu.Unlock()
}

// pushBlockPrio enqueues a block of tasks into their per-type priority
// buckets under one lock (the prioritized-program batch publish path).
func (q *readyQ) pushBlockPrio(ts []*Task) {
	q.mu.Lock()
	for _, t := range ts {
		if pr := t.typ.cfg.Priority; pr == 0 {
			q.plain.pushBack(t)
		} else {
			q.bucket(pr).pushBack(t)
		}
	}
	q.size.Add(int32(len(ts)))
	q.mu.Unlock()
}

// pop dequeues the task the policy selects: the highest-priority bucket
// wins; within a bucket FIFO takes the oldest task and LIFO the newest.
// steal forces oldest-first regardless of policy (thieves steal FIFO).
func (q *readyQ) pop(policy SchedPolicy, steal bool) *Task {
	q.mu.Lock()
	t := q.popLocked(policy, steal)
	q.mu.Unlock()
	return t
}

func (q *readyQ) popLocked(policy SchedPolicy, steal bool) *Task {
	lifo := policy == PolicyLIFO && !steal
	take := func(r *taskRing) *Task {
		if lifo {
			return r.popBack()
		}
		return r.popFront()
	}
	// Positive-priority buckets beat the plain (priority 0) ring, which
	// beats negative buckets; q.prios is sorted descending.
	for _, b := range q.prios {
		if b.pr < 0 {
			break
		}
		if t := take(&b.ring); t != nil {
			q.size.Add(-1)
			return t
		}
	}
	if t := take(&q.plain); t != nil {
		q.size.Add(-1)
		return t
	}
	for _, b := range q.prios {
		if b.pr >= 0 {
			continue
		}
		if t := take(&b.ring); t != nil {
			q.size.Add(-1)
			return t
		}
	}
	return nil
}

// enqueue places a ready task on the queue the readying context dictates,
// without waking anyone: callers coalesce their wakes (a completion that
// readies k successors, or a batch publish of k tasks, issues a single
// wake sized to k). w is the worker doing the readying, or -1 for the
// master thread / external completions.
func (rt *Runtime) enqueue(t *Task, w int) {
	if rt.tracer != nil {
		rt.tracer.RQDepth(int(rt.depth.Add(1)))
	}
	if rt.det != nil {
		// Deterministic mode: one queue, one PRNG — the seeded pick
		// subsumes deque-vs-injector placement and victim order.
		rt.det.add(t)
		return
	}
	if rt.priority.Load() {
		// Prioritized programs funnel every ready task through one
		// central shard: its per-priority buckets reproduce the old
		// global queue's "highest priority first" order exactly, which
		// decentralized deques cannot (a local priority-0 pop could
		// overtake a queued high-priority task). Unprioritized programs —
		// the common case — never take this branch.
		rt.inj[0].push(t, t.typ.cfg.Priority)
		return
	}
	if w >= 0 {
		rt.locals[w].push(t, 0)
		return
	}
	// Stripe the injector in blocks of consecutive submissions rather
	// than task-by-task: per-task round-robin resonates with periodic
	// workloads (with 4 shards, a period-2 input tiling lands each
	// pattern in its own shard, and each worker then only ever observes
	// one pattern — which starves dynamic ATM's training of the
	// cross-pattern comparisons it needs). Block striping keeps every
	// shard a faithful, locally-FIFO sample of the submission stream.
	shard := int((rt.injSeq.Add(1)-1)/injStripe) % len(rt.inj)
	rt.inj[shard].push(t, 0)
}

// ready enqueues one master-readied task and wakes at most one worker
// (the single-task Submit path; multi-task producers use enqueue + one
// coalesced wake, or publishBlock).
func (rt *Runtime) ready(t *Task) {
	rt.enqueue(t, -1)
	rt.wake(1)
}

// publishBlock publishes a batch's initially-ready tasks: block pushes
// (one lock acquisition per injector stripe, or one total for
// prioritized programs) followed by a single wake sized to the number of
// tasks actually pushed.
func (rt *Runtime) publishBlock(block []*Task) {
	n := len(block)
	if n == 0 {
		return
	}
	if rt.tracer != nil {
		for range block {
			rt.tracer.RQDepth(int(rt.depth.Add(1)))
		}
	}
	if rt.det != nil {
		rt.det.addBlock(block) // seeded publication interleaving
		return
	}
	if rt.priority.Load() {
		rt.inj[0].pushBlockPrio(block)
		rt.wake(n)
		return
	}
	// Reserve a contiguous stripe range so interleaved Submit calls and
	// batches stripe coherently, then push each stripe as one block.
	base := rt.injSeq.Add(uint32(n)) - uint32(n)
	ns := len(rt.inj)
	for i := 0; i < n; {
		seq := base + uint32(i)
		shard := int(seq/injStripe) % ns
		j := i + int(injStripe-seq%injStripe)
		if j > n {
			j = n
		}
		rt.inj[shard].pushBlock(block[i:j])
		i = j
	}
	rt.wake(n)
}

// injStripe is the number of consecutive master submissions that land in
// the same injector shard.
const injStripe = 32

// wake hands up to n parked workers a wake token, clamped to the number
// actually parked so a wide fan-out cannot bank surplus tokens (which
// would bleed out later as spurious wakeups). Exactly n Signals are
// issued — a Broadcast would rouse every parked worker just to have all
// but n of them find no token and re-sleep, the herd this coalescing
// exists to avoid. The fast path (nobody parked) is a single atomic
// load.
func (rt *Runtime) wake(n int) {
	if n <= 0 {
		return
	}
	if p := int(rt.parked.Load()); p == 0 {
		return
	} else if n > p {
		n = p
	}
	rt.parkMu.Lock()
	rt.tokens += n
	for i := 0; i < n; i++ {
		rt.parkCond.Signal()
	}
	rt.parkMu.Unlock()
}

// workerLocal is per-worker scheduler state touched only by its owner,
// padded against false sharing. rng drives the randomized steal start.
type workerLocal struct {
	rng uint64
	_   [56]byte
}

// nextRand advances worker w's xorshift64 state.
func (rt *Runtime) nextRand(w int) uint64 {
	x := rt.wlocal[w].rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rt.wlocal[w].rng = x
	return x
}

// scan makes one full pass over every queue from worker w's point of
// view: own deque first, then the injector shards, then stealing the
// oldest task from a victim's deque — LLC-sharing victims first, each
// tier probed from a pseudorandom starting offset (see the file comment).
func (rt *Runtime) scan(w int) *Task {
	if t := rt.locals[w].pop(rt.policy, false); t != nil {
		return t
	}
	ns := len(rt.inj)
	for i := 0; i < ns; i++ {
		if t := rt.inj[(w+i)%ns].pop(rt.policy, false); t != nil {
			return t
		}
	}
	order := rt.stealOrder[w]
	if len(order) == 0 {
		return nil
	}
	r := int(rt.nextRand(w) >> 33) // top bits: xorshift lows are weaker
	near, far := order[:rt.stealSplit[w]], order[rt.stealSplit[w]:]
	for i := 0; i < len(near); i++ {
		v := near[(r+i)%len(near)]
		if t := rt.locals[v].pop(rt.policy, true); t != nil {
			return t
		}
	}
	for i := 0; i < len(far); i++ {
		v := far[(r+i)%len(far)]
		if t := rt.locals[v].pop(rt.policy, true); t != nil {
			return t
		}
	}
	return nil
}

// next blocks until a task is available for worker w or the runtime
// closes (nil).
func (rt *Runtime) next(w int) *Task {
	for {
		if t := rt.scan(w); t != nil {
			if rt.tracer != nil {
				rt.tracer.RQDepth(int(rt.depth.Add(-1)))
			}
			return t
		}
		if rt.closed.Load() {
			return nil
		}
		// Park protocol: advertise, rescan, then sleep. See the file
		// comment for why this cannot lose a wakeup.
		rt.parked.Add(1)
		if t := rt.scan(w); t != nil {
			rt.parked.Add(-1)
			if rt.tracer != nil {
				rt.tracer.RQDepth(int(rt.depth.Add(-1)))
			}
			return t
		}
		rt.parkMu.Lock()
		for rt.tokens == 0 && !rt.closed.Load() {
			rt.parkCond.Wait()
		}
		if rt.tokens > 0 {
			rt.tokens--
		}
		rt.parkMu.Unlock()
		rt.parked.Add(-1)
	}
}
