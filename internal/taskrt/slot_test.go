package taskrt

import (
	"sync/atomic"
	"testing"

	"atm/internal/region"
)

// plainRegion is a Region implementation that does NOT embed
// region.DepSlot: the foreign-region shape that must keep working through
// the registry map fallback. It forwards to an inner (non-embedded)
// Bytes value so no DepSlot method is promoted.
type plainRegion struct{ b region.Bytes }

func newPlainRegion(n int) *plainRegion { return &plainRegion{b: region.Bytes{Data: make([]byte, n)}} }

func (r *plainRegion) Kind() region.Kind          { return r.b.Kind() }
func (r *plainRegion) NumElems() int              { return r.b.NumElems() }
func (r *plainRegion) NumBytes() int              { return r.b.NumBytes() }
func (r *plainRegion) ByteAt(i int) byte          { return r.b.ByteAt(i) }
func (r *plainRegion) Float64At(i int) float64    { return r.b.Float64At(i) }
func (r *plainRegion) Clone() region.Region       { return &plainRegion{b: region.Bytes{Data: append([]byte(nil), r.b.Data...)}} }
func (r *plainRegion) HashInto(sink func(b byte)) { r.b.HashInto(sink) }
func (r *plainRegion) CopyFrom(src region.Region) { copy(r.b.Data, src.(*plainRegion).b.Data) }
func (r *plainRegion) EqualContents(o region.Region) bool {
	s, ok := o.(*plainRegion)
	return ok && r.b.EqualContents(&s.b)
}
func (r *plainRegion) HashWords(sink region.WordSink)                 { r.b.HashWords(sink) }
func (r *plainRegion) HashSample(offsets []int32, sink region.WordSink) { r.b.HashSample(offsets, sink) }
func (r *plainRegion) HashSampleRuns(runs []int32, sink region.WordSink) {
	r.b.HashSampleRuns(runs, sink)
}

// submitGatedChain submits two writer tasks of the same region where the
// first blocks until released. If the WAW edge between them is wired, the
// second cannot run before the first; the recorded order proves it.
func submitGatedChain(t *testing.T, rt *Runtime, r region.Region) {
	t.Helper()
	gate := make(chan struct{})
	var order [2]int32
	var seq atomic.Int32
	w1 := rt.RegisterType(TypeConfig{Name: "w1", Run: func(*Task) {
		<-gate
		order[seq.Add(1)-1] = 1
	}})
	w2 := rt.RegisterType(TypeConfig{Name: "w2", Run: func(*Task) {
		order[seq.Add(1)-1] = 2
	}})
	rt.Submit(w1, InOut(r))
	rt.Submit(w2, InOut(r))
	close(gate)
	rt.Wait()
	if order != [2]int32{1, 2} {
		t.Fatalf("WAW chain ran out of order: %v (dependence edge lost)", order)
	}
}

// TestSlotSteadyStateNoMapEntries pins the tentpole property: submitting
// slotted regions never populates the registry map — dependence state
// lives in the regions' own DepSlots, on the live-slot list.
func TestSlotSteadyStateNoMapEntries(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	tt := rt.RegisterType(TypeConfig{Name: "noop", Run: func(*Task) {}})
	regions := make([]*region.Float64, 32)
	for i := range regions {
		regions[i] = region.NewFloat64(1)
	}
	for round := 0; round < 8; round++ {
		for _, r := range regions {
			rt.Submit(tt, InOut(r))
		}
		rt.Wait()
	}
	if len(rt.regs) != 0 {
		t.Fatalf("registry map has %d entries for slotted regions, want 0", len(rt.regs))
	}
	if len(rt.slotStates) != len(regions) {
		t.Fatalf("live-slot list has %d entries, want %d", len(rt.slotStates), len(regions))
	}
	for i, r := range regions {
		if r.DepGen() != rt.gen {
			t.Fatalf("region %d slot generation %d, want runtime generation %d", i, r.DepGen(), rt.gen)
		}
	}
}

// TestSlotReuseAcrossRuntimes reuses one region in two sequential
// runtimes: the second must reclaim the slot (the first runtime's
// generation is retired by Close) and wire dependences correctly.
func TestSlotReuseAcrossRuntimes(t *testing.T) {
	r := region.NewFloat64(1)

	rt1 := New(Config{Workers: 2})
	submitGatedChain(t, rt1, r)
	gen1 := rt1.gen
	rt1.Close()
	if r.DepGen() != gen1 {
		t.Fatalf("slot generation %d after close, want %d (Close must not unstamp)", r.DepGen(), gen1)
	}

	rt2 := New(Config{Workers: 2})
	defer rt2.Close()
	submitGatedChain(t, rt2, r)
	if r.DepGen() != rt2.gen {
		t.Fatalf("slot generation %d, want reclaimed by second runtime (%d)", r.DepGen(), rt2.gen)
	}
	if len(rt2.regs) != 0 {
		t.Fatalf("second runtime fell back to the map (%d entries) for a reclaimable slot", len(rt2.regs))
	}
}

// TestSlotHeldByLiveRuntimeFallsBackToMap shares a region between two
// live runtimes (submitting alternately from one goroutine — concurrent
// masters on one region are out of contract): the second runtime must
// leave the first one's slot stamp alone and track the region in its
// map, then promote the map state to the slot once the first runtime
// closes — without losing its own dependence history.
func TestSlotHeldByLiveRuntimeFallsBackToMap(t *testing.T) {
	r := region.NewFloat64(1)
	rt1 := New(Config{Workers: 1})
	tt1 := rt1.RegisterType(TypeConfig{Name: "n1", Run: func(*Task) {}})
	rt1.Submit(tt1, InOut(r))
	rt1.Wait()

	rt2 := New(Config{Workers: 2})
	defer rt2.Close()
	tt2 := rt2.RegisterType(TypeConfig{Name: "n2", Run: func(*Task) {}})
	rt2.Submit(tt2, InOut(r))
	rt2.Wait()
	if r.DepGen() != rt1.gen {
		t.Fatalf("second runtime stole a live runtime's slot (gen %d, want %d)", r.DepGen(), rt1.gen)
	}
	if len(rt2.regs) != 1 {
		t.Fatalf("second runtime tracks %d map entries, want 1 (the contended region)", len(rt2.regs))
	}

	rt1.Close()
	// rt1's generation is now retired; rt2's next touch promotes its map
	// state into the slot, and chained dependences keep working across
	// the promotion.
	submitGatedChain(t, rt2, r)
	if r.DepGen() != rt2.gen {
		t.Fatalf("slot not promoted after first runtime closed: gen %d, want %d", r.DepGen(), rt2.gen)
	}
	if len(rt2.regs) != 0 {
		t.Fatalf("map entry not promoted to slot: %d entries left", len(rt2.regs))
	}
}

// TestForeignRegionFallback drives a Region that does not embed DepSlot
// through the full dependence flavors: it must work via the registry map.
func TestForeignRegionFallback(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	r := newPlainRegion(8)
	submitGatedChain(t, rt, r)
	if len(rt.regs) != 1 {
		t.Fatalf("foreign region not tracked in the map: %d entries", len(rt.regs))
	}
	if len(rt.slotStates) != 0 {
		t.Fatalf("foreign region leaked onto the live-slot list (%d entries)", len(rt.slotStates))
	}
}

// TestResetMidStream interleaves Reset with submission waves on the same
// regions: each epoch must wire correctly, and Reset must drop every
// registry reference (live-slot list, map, lastReg cache) and invalidate
// the slots by generation.
func TestResetMidStream(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	slotted := region.NewFloat64(1)
	foreign := newPlainRegion(8)
	var ran atomic.Int64
	tt := rt.RegisterType(TypeConfig{Name: "inc", Run: func(*Task) { ran.Add(1) }})

	gens := make(map[uint64]bool)
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 10; i++ {
			rt.Submit(tt, InOut(slotted))
			rt.Submit(tt, In(slotted), Out(foreign))
		}
		if slotted.DepGen() != rt.gen {
			t.Fatalf("epoch %d: slot generation %d, want %d", epoch, slotted.DepGen(), rt.gen)
		}
		if gens[rt.gen] {
			t.Fatalf("epoch %d: generation %d reused across Reset", epoch, rt.gen)
		}
		gens[rt.gen] = true
		rt.Reset()
		if len(rt.slotStates) != 0 || len(rt.regs) != 0 {
			t.Fatalf("epoch %d: Reset left %d slot states, %d map entries", epoch, len(rt.slotStates), len(rt.regs))
		}
		if rt.lastReg != nil || rt.lastRS != nil {
			t.Fatalf("epoch %d: Reset left the lastReg cache populated", epoch)
		}
		if genLive(slotted.DepGen()) {
			t.Fatalf("epoch %d: pre-Reset generation %d still live", epoch, slotted.DepGen())
		}
	}
	if got := ran.Load(); got != 60 {
		t.Fatalf("ran %d tasks, want 60", got)
	}
	// Post-Reset reuse still wires dependences.
	submitGatedChain(t, rt, slotted)
}
