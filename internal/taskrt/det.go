package taskrt

import (
	"fmt"
	"strings"
)

// Deterministic execution mode (Config.Deterministic): a single-threaded
// executor that owns every ready queue and replays any schedule from one
// integer. The live runtime's nondeterminism has four sources — which
// ready task a worker pulls, which victim a thief probes, which parked
// worker a wake token reaches, and where the master's submission stream
// interleaves with worker completions. Under the deterministic executor
// the first is drawn from a seeded PRNG (the sched discipline below) and
// the other three collapse into it: there is one goroutine, so "which
// worker" is just a seeded lane label, and the master/worker interleaving
// is recreated by seeded yield points — at dependence registration, batch
// finalize phases, and between a task body and its memoizer hook — where
// the executor may run a few ready tasks in the middle of a master-side
// operation, exactly the windows a preempting worker would hit.
//
// The mode exists for schedule fuzzing (internal/schedfuzz): run a
// scenario under N seeds, and any invariant violation replays bit-
// identically from the failing seed. The live multi-worker path is
// untouched when the mode is off — every integration point is one
// predictable `rt.det == nil` branch.
//
// Contract: with Deterministic set, *everything* runs on the master
// goroutine — Submit, Wait, task bodies, memoizer hooks. Wait must not be
// called from another goroutine (it would spin on a drain loop that only
// the master can advance), and background goroutines that call
// CompleteExternal are outside the model.

// DetSched selects the deterministic executor's ready-queue discipline.
type DetSched uint8

// Deterministic scheduling disciplines.
const (
	// DetSchedPolicy follows Config.Policy: PolicyFIFO picks like
	// DetSchedFIFO, PolicyLIFO like DetSchedLIFO. The zero value, so a
	// Config that only sets Deterministic gets the schedule closest to
	// its live counterpart.
	DetSchedPolicy DetSched = iota
	// DetSchedFIFO always runs the oldest ready task (breadth-first).
	DetSchedFIFO
	// DetSchedLIFO always runs the newest ready task (depth-first).
	DetSchedLIFO
	// DetSchedRandom picks uniformly among ready tasks and shuffles each
	// published batch block.
	DetSchedRandom
	// DetSchedAdversarial mixes newest-first, oldest-first and uniform
	// picks and doubles the yield-point firing rate — biased toward the
	// starvation/preemption extremes where reordering bugs live.
	DetSchedAdversarial
)

// String returns the discipline's flag spelling.
func (s DetSched) String() string {
	switch s {
	case DetSchedFIFO:
		return "fifo"
	case DetSchedLIFO:
		return "lifo"
	case DetSchedRandom:
		return "random"
	case DetSchedAdversarial:
		return "adversarial"
	default:
		return "policy"
	}
}

// ParseDetSched parses a discipline name as spelled by String (the
// atmbench -sched flag); "" and "policy" mean DetSchedPolicy.
func ParseDetSched(name string) (DetSched, error) {
	switch strings.ToLower(name) {
	case "", "policy":
		return DetSchedPolicy, nil
	case "fifo":
		return DetSchedFIFO, nil
	case "lifo":
		return DetSchedLIFO, nil
	case "random":
		return DetSchedRandom, nil
	case "adversarial":
		return DetSchedAdversarial, nil
	default:
		return 0, fmt.Errorf("taskrt: unknown deterministic sched %q (want fifo|lifo|random|adversarial)", name)
	}
}

// splitmix64 advances *x and returns the next value of its splitmix64
// stream — the seed expander behind every deterministic-mode decision and
// the per-worker steal-RNG seeds of live mode.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// maxYieldDepth caps nested yield-point execution: a yielded-to task body
// may itself hit a yield point, and unbounded nesting would turn a long
// ready queue into a deep call stack.
const maxYieldDepth = 32

// detExec is the deterministic executor: the single ready queue and the
// one PRNG stream every scheduling decision is drawn from.
type detExec struct {
	rt       *Runtime
	seed     uint64   // as configured, for failure reports
	s        uint64   // splitmix64 state
	sched    DetSched // resolved: never DetSchedPolicy
	yieldNum uint64   // yield-point firing threshold out of 256
	depth    int      // current yield nesting depth
	ready    []*Task  // the one ready queue, oldest first
	candBuf  []int    // pick() scratch for priority filtering

	// Lane occupancy. A yielded-to task must run on a lane no in-flight
	// task occupies: memoizers carry per-worker scratch from OnReady to
	// OnFinished under the contract that no other task of that worker
	// runs in between — which also matches reality, where a worker
	// cannot be preempted mid-task and concurrency comes only from the
	// other workers. With every lane busy, yield points are no-ops (a
	// single-worker runtime legitimately has no interleavings).
	busyLane []bool
	nbusy    int
	laneBuf  []int // runOne scratch for the free-lane list
}

func newDetExec(rt *Runtime, seed uint64, sched DetSched) *detExec {
	if sched == DetSchedPolicy {
		if rt.policy == PolicyLIFO {
			sched = DetSchedLIFO
		} else {
			sched = DetSchedFIFO
		}
	}
	d := &detExec{rt: rt, seed: seed, s: seed, sched: sched, yieldNum: 32}
	if sched == DetSchedAdversarial {
		d.yieldNum = 128
	}
	d.busyLane = make([]bool, rt.workers)
	return d
}

// next draws the next PRNG value.
func (d *detExec) next() uint64 { return splitmix64(&d.s) }

// intn draws a value in [0, n).
func (d *detExec) intn(n int) int { return int(d.next() % uint64(n)) }

// add enqueues one readied task (the deterministic counterpart of every
// live queue push).
func (d *detExec) add(t *Task) { d.ready = append(d.ready, t) }

// addBlock enqueues a published batch block. Randomized disciplines
// shuffle the block (seeded Fisher–Yates) so batch publication order is a
// scheduling decision like any other; ts is the caller's scratch and is
// not retained.
func (d *detExec) addBlock(ts []*Task) {
	base := len(d.ready)
	d.ready = append(d.ready, ts...)
	if d.sched == DetSchedRandom || d.sched == DetSchedAdversarial {
		for i := len(d.ready) - 1; i > base; i-- {
			j := base + d.intn(i-base+1)
			d.ready[i], d.ready[j] = d.ready[j], d.ready[i]
		}
	}
}

// chooseIdx draws the discipline's choice among m ready candidates.
func (d *detExec) chooseIdx(m int) int {
	switch d.sched {
	case DetSchedLIFO:
		return m - 1
	case DetSchedRandom:
		return d.intn(m)
	case DetSchedAdversarial:
		switch r := d.next() % 8; {
		case r < 4:
			return m - 1
		case r < 6:
			return 0
		default:
			return d.intn(m)
		}
	default: // DetSchedFIFO
		return 0
	}
}

// pick removes and returns the task the discipline selects, or nil when
// nothing is ready. Prioritized programs restrict the choice to the
// highest-priority ready tasks first, mirroring the live scheduler's
// central priority shard.
func (d *detExec) pick() *Task {
	n := len(d.ready)
	if n == 0 {
		return nil
	}
	var i int
	if !d.rt.priority.Load() {
		i = d.chooseIdx(n)
	} else {
		maxPr := d.ready[0].typ.cfg.Priority
		for _, t := range d.ready[1:] {
			if pr := t.typ.cfg.Priority; pr > maxPr {
				maxPr = pr
			}
		}
		cand := d.candBuf[:0]
		for j, t := range d.ready {
			if t.typ.cfg.Priority == maxPr {
				cand = append(cand, j)
			}
		}
		i = cand[d.chooseIdx(len(cand))]
		d.candBuf = cand[:0]
	}
	t := d.ready[i]
	copy(d.ready[i:], d.ready[i+1:])
	d.ready[n-1] = nil
	d.ready = d.ready[:n-1]
	return t
}

// runOne executes one picked task to completion on a seeded free lane
// (direct handoff is disabled in deterministic mode, so step chains do
// not bypass pick). Returns false when nothing is ready or every lane is
// occupied by an in-flight task further up the yield stack.
func (d *detExec) runOne() bool {
	if d.nbusy == len(d.busyLane) {
		return false
	}
	t := d.pick()
	if t == nil {
		return false
	}
	rt := d.rt
	if rt.tracer != nil {
		rt.tracer.RQDepth(int(rt.depth.Add(-1)))
	}
	// The lane a live scheduler would decide by work stealing; it feeds
	// the memoizer's per-worker scratch and the tracer, so it must be a
	// lane no in-flight task holds (see busyLane).
	free := d.laneBuf[:0]
	for i, b := range d.busyLane {
		if !b {
			free = append(free, i)
		}
	}
	w := free[0]
	if len(free) > 1 {
		w = free[d.intn(len(free))]
	}
	d.laneBuf = free[:0]
	d.busyLane[w] = true
	d.nbusy++
	for t != nil {
		t = rt.step(t, w)
	}
	d.busyLane[w] = false
	d.nbusy--
	return true
}

// maybeYield is a seeded yield point: with probability yieldNum/256 the
// executor runs a few ready tasks here, in the middle of whatever master-
// side operation the caller is performing — the deterministic stand-in
// for a live worker preempting the master at this boundary.
func (d *detExec) maybeYield() {
	if d.depth >= maxYieldDepth || len(d.ready) == 0 {
		return
	}
	if d.next()&0xff >= d.yieldNum {
		return
	}
	k := 1 + int(d.next()&3)
	d.depth++
	for i := 0; i < k; i++ {
		if !d.runOne() {
			break
		}
	}
	d.depth--
}

// delayFence decides (seeded) whether a pending completion fence is
// consumed at this submission or deferred to a later one, exploring both
// early and late slab-recycle timings.
func (d *detExec) delayFence() bool { return d.next()&1 == 1 }

// stall reports a drain that cannot make progress: tasks are incomplete
// but nothing is ready — a lost wakeup, a dependence cycle, or a deferred
// task whose provider never called CompleteExternal (including one
// dropped by an armed failpoint). The message carries the seed so the
// schedule replays.
func (d *detExec) stall() {
	rt := d.rt
	panic(fmt.Sprintf(
		"taskrt: deterministic executor stalled: %d of %d tasks incomplete with no ready task (lost wakeup, dependence cycle, or missing CompleteExternal); seed=%d sched=%s",
		rt.submitted.Load()-rt.completed.Load(), rt.submitted.Load(), d.seed, d.sched))
}

// drain runs ready tasks until every submitted task has completed (the
// deterministic Wait).
func (d *detExec) drain() {
	rt := d.rt
	for rt.completed.Load() != rt.submitted.Load() {
		if !d.runOne() {
			d.stall()
		}
	}
}

// drainBacklog runs ready tasks until the in-flight count falls below the
// throttle low watermark (the deterministic throttle: there is no worker
// pool to wait for, so the master works the backlog down itself).
func (d *detExec) drainBacklog() {
	rt := d.rt
	for rt.submitted.Load()-rt.completed.Load() >= rt.backlogHigh.Load()/2 {
		if !d.runOne() {
			d.stall()
		}
	}
}
