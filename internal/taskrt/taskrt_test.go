package taskrt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"atm/internal/region"
	"atm/internal/trace"
)

func newRT(workers int) *Runtime { return New(Config{Workers: workers}) }

func TestSingleTaskRuns(t *testing.T) {
	rt := newRT(2)
	defer rt.Close()
	out := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "set", Run: func(task *Task) {
		task.Float64s(0)[0] = 42
	}})
	rt.Submit(tt, Out(out))
	rt.Wait()
	if out.Data[0] != 42 {
		t.Fatalf("got %v", out.Data[0])
	}
}

func TestRAWOrdering(t *testing.T) {
	rt := newRT(4)
	defer rt.Close()
	a := region.NewFloat64(1)
	b := region.NewFloat64(1)
	w := rt.RegisterType(TypeConfig{Name: "w", Run: func(task *Task) {
		task.Float64s(0)[0] = 7
	}})
	r := rt.RegisterType(TypeConfig{Name: "r", Run: func(task *Task) {
		task.Float64s(1)[0] = task.Float64s(0)[0] * 2
	}})
	rt.Submit(w, Out(a))
	rt.Submit(r, In(a), Out(b))
	rt.Wait()
	if b.Data[0] != 14 {
		t.Fatalf("RAW violated: got %v", b.Data[0])
	}
}

func TestWAWChain(t *testing.T) {
	rt := newRT(8)
	defer rt.Close()
	a := region.NewInt32(1)
	var tt *TaskType
	tt = rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	for i := 0; i < 100; i++ {
		rt.Submit(tt, InOut(a))
	}
	rt.Wait()
	if a.Data[0] != 100 {
		t.Fatalf("WAW chain broke: got %d", a.Data[0])
	}
	_ = tt
}

func TestWAROrdering(t *testing.T) {
	// A reader submitted before a writer must observe the pre-write
	// value even if the writer could otherwise run first.
	rt := newRT(8)
	defer rt.Close()
	src := region.NewFloat64(1)
	src.Data[0] = 1
	snapshots := region.NewFloat64(64)
	read := rt.RegisterType(TypeConfig{Name: "read", Run: func(task *Task) {
		i := int(task.Float64s(1)[0])
		task.Float64s(2)[i] = task.Float64s(0)[0]
	}})
	write := rt.RegisterType(TypeConfig{Name: "write", Run: func(task *Task) {
		task.Float64s(0)[0]++
	}})
	idx := make([]*region.Float64, 64)
	for i := range idx {
		idx[i] = region.NewFloat64(1)
		idx[i].Data[0] = float64(i)
	}
	for i := 0; i < 64; i++ {
		rt.Submit(read, In(src), In(idx[i]), InOut(snapshots))
		rt.Submit(write, InOut(src))
	}
	rt.Wait()
	for i := 0; i < 64; i++ {
		if snapshots.Data[i] != float64(i+1) {
			t.Fatalf("reader %d saw %v want %v (WAR violated)", i, snapshots.Data[i], i+1)
		}
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	rt := newRT(4)
	defer rt.Close()
	var cur, max atomic.Int32
	gate := make(chan struct{})
	tt := rt.RegisterType(TypeConfig{Name: "spin", Run: func(task *Task) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		<-gate
		cur.Add(-1)
	}})
	regions := make([]*region.Float64, 4)
	for i := range regions {
		regions[i] = region.NewFloat64(1)
		rt.Submit(tt, Out(regions[i]))
	}
	// Release the tasks only after all four are parked in the body: with
	// four workers and four independent ready tasks, every task must
	// eventually start without any finishing first.
	go func() {
		for cur.Load() != 4 {
			runtime.Gosched()
		}
		for i := 0; i < 4; i++ {
			gate <- struct{}{}
		}
	}()
	rt.Wait()
	if max.Load() < 2 {
		t.Fatalf("independent tasks never overlapped (max concurrency %d)", max.Load())
	}
}

func TestWaitBetweenPhases(t *testing.T) {
	rt := newRT(4)
	defer rt.Close()
	a := region.NewFloat64(1)
	add := rt.RegisterType(TypeConfig{Name: "add", Run: func(task *Task) {
		task.Float64s(0)[0]++
	}})
	for phase := 0; phase < 5; phase++ {
		for i := 0; i < 10; i++ {
			rt.Submit(add, InOut(a))
		}
		rt.Wait()
		if a.Data[0] != float64((phase+1)*10) {
			t.Fatalf("phase %d: %v", phase, a.Data[0])
		}
	}
}

// serialModel executes the same access program sequentially to predict the
// final region contents.
type op struct {
	Kind   uint8 // 0 add, 1 copy, 2 scale
	Dst, A uint8
}

func TestQuickDataflowMatchesSerial(t *testing.T) {
	// Any random program of read/write tasks must produce the same final
	// state under the parallel runtime as under serial execution,
	// because the TDG encodes sequential (program-order) semantics.
	f := func(ops []op, workers uint8) bool {
		if len(ops) > 80 {
			ops = ops[:80]
		}
		const nregs = 6
		serial := make([]float64, nregs)
		for i := range serial {
			serial[i] = float64(i + 1)
		}
		par := make([]*region.Float64, nregs)
		for i := range par {
			par[i] = region.NewFloat64(1)
			par[i].Data[0] = float64(i + 1)
		}
		w := int(workers%8) + 1
		rt := newRT(w)
		defer rt.Close()
		apply := rt.RegisterType(TypeConfig{Name: "apply", Run: func(task *Task) {
			k := task.Int32s(2)[0]
			dst, src := task.Float64s(0), task.Float64s(1)
			switch k {
			case 0:
				dst[0] += src[0]
			case 1:
				dst[0] = src[0]
			default:
				dst[0] = dst[0]*0.5 + src[0]
			}
		}})
		kinds := make([]*region.Int32, 3)
		for i := range kinds {
			kinds[i] = region.NewInt32(1)
			kinds[i].Data[0] = int32(i)
		}
		for _, o := range ops {
			dst := int(o.Dst % nregs)
			src := int(o.A % nregs)
			if dst == src {
				src = (src + 1) % nregs
			}
			k := int(o.Kind % 3)
			switch k {
			case 0:
				serial[dst] += serial[src]
			case 1:
				serial[dst] = serial[src]
			default:
				serial[dst] = serial[dst]*0.5 + serial[src]
			}
			rt.Submit(apply, InOut(par[dst]), In(par[src]), In(kinds[k]))
		}
		rt.Wait()
		for i := range serial {
			if par[i].Data[0] != serial[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskAccessPartition(t *testing.T) {
	rt := newRT(1)
	defer rt.Close()
	a, b, c := region.NewFloat64(1), region.NewFloat64(1), region.NewFloat64(1)
	var task *Task
	tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(t *Task) { task = t }})
	rt.Submit(tt, In(a), Out(b), InOut(c))
	rt.Wait()
	if len(task.Inputs()) != 2 || task.Inputs()[0] != region.Region(a) || task.Inputs()[1] != region.Region(c) {
		t.Fatalf("inputs=%v", task.Inputs())
	}
	if len(task.Outputs()) != 2 || task.Outputs()[0] != region.Region(b) || task.Outputs()[1] != region.Region(c) {
		t.Fatalf("outputs=%v", task.Outputs())
	}
	if task.Region(0) != region.Region(a) || len(task.Accesses()) != 3 {
		t.Fatal("accessors broken")
	}
}

func TestTaskIDsAreCreationOrdered(t *testing.T) {
	rt := newRT(2)
	defer rt.Close()
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(*Task) {}})
	var ids []uint64
	for i := 0; i < 5; i++ {
		ids = append(ids, rt.Submit(tt, InOut(r)).ID())
	}
	rt.Wait()
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("ids not sequential: %v", ids)
		}
	}
}

// recordingMemoizer exercises the Memoizer protocol.
type recordingMemoizer struct {
	mu        sync.Mutex
	rt        *Runtime
	ready     int
	finished  int
	skipEvery int // every Nth task is OutcomeMemoized
	deferODD  bool
	deferred  []*Task
}

func (m *recordingMemoizer) BindRuntime(rt *Runtime) { m.rt = rt }

func (m *recordingMemoizer) OnReady(t *Task, worker int) Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ready++
	if m.deferODD && t.ID() < 4 {
		m.deferred = append(m.deferred, t)
		return OutcomeDeferred
	}
	if m.skipEvery > 0 && m.ready%m.skipEvery == 0 {
		t.Outputs()[0].(*region.Float64).Data[0] = -1 // memoized value
		return OutcomeMemoized
	}
	return OutcomeRun
}

func (m *recordingMemoizer) OnFinished(t *Task, worker int) {
	m.mu.Lock()
	m.finished++
	var serve []*Task
	serve, m.deferred = m.deferred, nil
	m.mu.Unlock()
	for _, d := range serve {
		d.Outputs()[0].(*region.Float64).Data[0] = -2
		m.rt.CompleteExternal(d)
	}
}

func TestMemoizerSkip(t *testing.T) {
	m := &recordingMemoizer{skipEvery: 2}
	rt := New(Config{Workers: 2, Memoizer: m})
	defer rt.Close()
	outs := make([]*region.Float64, 10)
	ran := region.NewInt32(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Memoize: true, Run: func(task *Task) {
		task.Outputs()[0].(*region.Float64).Data[0] = 1
	}})
	for i := range outs {
		outs[i] = region.NewFloat64(1)
		rt.Submit(tt, In(ran), Out(outs[i]))
	}
	rt.Wait()
	var memoized, executed int
	for _, o := range outs {
		switch o.Data[0] {
		case -1:
			memoized++
		case 1:
			executed++
		}
	}
	if memoized == 0 || executed == 0 || memoized+executed != 10 {
		t.Fatalf("memoized=%d executed=%d", memoized, executed)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ready != 10 {
		t.Fatalf("OnReady calls=%d", m.ready)
	}
	if m.finished != executed {
		t.Fatalf("OnFinished calls=%d want %d (only executed tasks)", m.finished, executed)
	}
}

func TestMemoizerNotConsultedForNonMemoizableTypes(t *testing.T) {
	m := &recordingMemoizer{}
	rt := New(Config{Workers: 2, Memoizer: m})
	defer rt.Close()
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "plain", Run: func(*Task) {}})
	rt.Submit(tt, InOut(r))
	rt.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ready != 0 || m.finished != 0 {
		t.Fatal("non-memoizable type must bypass the memoizer")
	}
}

func TestMemoizerDeferredCompletion(t *testing.T) {
	// The first four tasks are deferred; later tasks serve them via
	// CompleteExternal when they finish. A single worker drains the FIFO
	// queue in order, so all defers are registered before any provider
	// runs. Wait must still terminate, and the deferred tasks'
	// successors must observe the provided outputs.
	m := &recordingMemoizer{deferODD: true}
	rt := New(Config{Workers: 1, Memoizer: m})
	defer rt.Close()
	outs := make([]*region.Float64, 8)
	sink := region.NewFloat64(8)
	tt := rt.RegisterType(TypeConfig{Name: "t", Memoize: true, Run: func(task *Task) {
		task.Outputs()[0].(*region.Float64).Data[0] = 1
	}})
	collect := rt.RegisterType(TypeConfig{Name: "collect", Run: func(task *Task) {
		for j := 0; j < 8; j++ {
			task.Float64s(8)[j] = task.Float64s(j)[0]
		}
	}})
	for i := range outs {
		outs[i] = region.NewFloat64(1)
		rt.Submit(tt, Out(outs[i]))
	}
	accs := make([]Access, 0, 9)
	for i := range outs {
		accs = append(accs, In(outs[i]))
	}
	accs = append(accs, Out(sink))
	rt.Submit(collect, accs...)
	rt.Wait()
	for i, v := range sink.Data {
		if v != 1 && v != -2 {
			t.Fatalf("slot %d = %v; deferred task output never provided", i, v)
		}
	}
}

func TestTracerLanesDriven(t *testing.T) {
	tr := trace.New(2, false)
	rt := New(Config{Workers: 2, Tracer: tr})
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(*Task) {}})
	for i := 0; i < 10; i++ {
		rt.Submit(tt, InOut(r))
	}
	rt.Wait()
	rt.Close()
	if tr.Created() != 10 {
		t.Fatalf("created=%d", tr.Created())
	}
	durs := tr.Durations()
	var exec int64
	for w := 0; w < 2; w++ {
		exec += int64(durs[w][trace.StateExec])
	}
	if exec == 0 {
		t.Fatal("workers never recorded exec state")
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	rt := newRT(1)
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(*Task) {}})
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Submit after Close")
		}
	}()
	rt.Submit(tt, InOut(r))
}

func TestModeStrings(t *testing.T) {
	if ModeIn.String() != "in" || ModeOut.String() != "out" || ModeInOut.String() != "inout" {
		t.Fatal("mode names")
	}
	if AccessMode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func TestTypeDefaults(t *testing.T) {
	rt := newRT(1)
	defer rt.Close()
	tt := rt.RegisterType(TypeConfig{Name: "d", Run: func(*Task) {}})
	if tt.TauMax() != 0.01 {
		t.Fatalf("default τmax=%v", tt.TauMax())
	}
	if tt.LTraining() != 15 {
		t.Fatalf("default Ltraining=%v", tt.LTraining())
	}
	tt2 := rt.RegisterType(TypeConfig{Name: "c", Run: func(*Task) {}, TauMax: 0.2, LTraining: 100})
	if tt2.TauMax() != 0.2 || tt2.LTraining() != 100 {
		t.Fatal("configured values must win")
	}
	if tt.ID() == tt2.ID() {
		t.Fatal("type ids must be distinct")
	}
	if tt2.Name() != "c" || tt2.Config().LTraining != 100 {
		t.Fatal("accessors")
	}
}

func TestLIFOPolicyOrder(t *testing.T) {
	// One worker, depth-first policy: independent tasks submitted while
	// the worker is busy run newest-first.
	rt := New(Config{Workers: 1, Policy: PolicyLIFO})
	defer rt.Close()
	var order []int
	started := make(chan struct{})
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) {
		close(started)
		<-gate // hold the worker until all tasks are queued
	}})
	tt := rt.RegisterType(TypeConfig{Name: "rec", Run: func(task *Task) {
		order = append(order, int(task.ID()))
	}})
	rt.Submit(hold, Out(region.NewFloat64(1)))
	<-started
	regions := make([]*region.Float64, 5)
	for i := range regions {
		regions[i] = region.NewFloat64(1)
		rt.Submit(tt, Out(regions[i]))
	}
	close(gate)
	rt.Wait()
	// Tasks 1..5 were queued while the worker was held; LIFO runs them
	// newest-first.
	want := []int{5, 4, 3, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LIFO order=%v want %v", order, want)
		}
	}
}

func TestPriorityBeatsSubmissionOrder(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []string
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) { <-gate }})
	low := rt.RegisterType(TypeConfig{Name: "low", Priority: 1, Run: func(*Task) {
		order = append(order, "low")
	}})
	high := rt.RegisterType(TypeConfig{Name: "high", Priority: 9, Run: func(*Task) {
		order = append(order, "high")
	}})
	a, b, c := region.NewFloat64(1), region.NewFloat64(1), region.NewFloat64(1)
	rt.Submit(hold, Out(a))
	rt.Submit(low, Out(b))
	rt.Submit(high, Out(c))
	close(gate)
	rt.Wait()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority order=%v", order)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFIFO.String() != "fifo" || PolicyLIFO.String() != "lifo" {
		t.Fatal("policy names")
	}
}

func TestLIFOPreservesDependences(t *testing.T) {
	// The policy must never override dataflow: a WAW chain still runs in
	// program order under LIFO.
	rt := New(Config{Workers: 4, Policy: PolicyLIFO})
	defer rt.Close()
	a := region.NewInt32(1)
	tt := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	for i := 0; i < 200; i++ {
		rt.Submit(tt, InOut(a))
	}
	rt.Wait()
	if a.Data[0] != 200 {
		t.Fatalf("LIFO broke the WAW chain: %d", a.Data[0])
	}
}
