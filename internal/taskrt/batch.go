package taskrt

import "atm/internal/trace"

// Batched task submission. A per-task Submit pays, for every task, a
// throttle check, a submission-counter atomic, an injector lock and a
// wake attempt — and every dependence edge costs a CAS or a lock, even
// when both endpoints were created microseconds apart by the same master
// thread. The paper's workloads submit tasks in regular loop nests
// (SparseLU's k-loops, the stencils' block sweeps, Blackscholes' block
// loop), so consecutive tasks overwhelmingly depend on each other:
// SubmitBatch exploits that by carving a whole slice of task descriptors
// at once, resolving intra-batch edges with plain memory operations (the
// master owns both endpoints until the batch is published), and
// publishing all initially-ready tasks as one block push with a single
// wake — the batched-submission amortization of runtimes like Nanos++.

// BatchEntry describes one task of a SubmitBatch batch: a task type plus
// its accesses. Build entries with Desc; entries with at most two
// accesses store them inline, so a reused batch slice submits without
// per-entry allocations. A BatchEntry is consumed by SubmitBatch
// (descriptors with spilled access lists hand them to the task) and must
// be rebuilt with Desc before reuse.
type BatchEntry struct {
	typ  *TaskType
	nacc int8 // -1: accesses live in ext
	acc  [2]Access
	ext  []Access
}

// fill (re)initializes e in place. It is the single construction path
// shared by Desc and Batcher.Add; e may be a reused buffer slot whose
// previous occupant was consumed (ext is then already nil).
func (e *BatchEntry) fill(tt *TaskType, accesses []Access) {
	e.typ = tt
	if len(accesses) <= len(e.acc) {
		e.nacc = int8(copy(e.acc[:], accesses))
		e.ext = nil
		return
	}
	e.nacc = -1
	e.ext = make([]Access, len(accesses))
	copy(e.ext, accesses)
}

// Desc builds a batch entry for one task of type tt with the given
// accesses. Up to two accesses are stored inline (no allocation); longer
// access lists are copied to a spill slice that the submitted task later
// adopts.
func Desc(tt *TaskType, accesses ...Access) BatchEntry {
	var e BatchEntry
	e.fill(tt, accesses)
	return e
}

// Type returns the entry's task type.
func (e *BatchEntry) Type() *TaskType { return e.typ }

// take returns the entry's access list and whether the caller may adopt
// it without copying (the spilled case: Desc allocated it exclusively
// for this entry). It panics on a consumed entry, the reuse-after-submit
// programming error.
func (e *BatchEntry) take() (accs []Access, owned bool) {
	if e.nacc >= 0 {
		return e.acc[:e.nacc], false
	}
	if e.ext == nil {
		panic("taskrt: BatchEntry resubmitted after SubmitBatch consumed it")
	}
	accs, e.ext = e.ext, nil
	return accs, true
}

// SubmitBatch creates one task per batch entry, in order, with the same
// dependence semantics as the equivalent sequence of Submit calls, and
// returns the created tasks. The master-side cost is amortized across
// the batch: tasks are carved from slabs in one pass; dependence edges
// between two tasks of the same batch are wired with plain memory
// operations (no atomics — the master owns both endpoints until the
// batch publishes); cross-batch edges use the lock-free CAS path; all
// initially-ready tasks are published to the injector as block pushes
// followed by a single wake sized to the number of tasks pushed; and the
// submission throttle is consulted once per batch rather than per task.
//
// Like Submit, SubmitBatch must be called from the single master
// goroutine. The returned slice is carved from a pointer slab owned by
// the runtime; the tasks it points to live in recyclable slabs, so the
// pointers are valid until the first submission after a completion
// fence (Wait/Fence) — after that the cells may be reset and re-carved
// into unrelated tasks. Consume task results between the Wait and the
// next submission. Batch entries are consumed (see BatchEntry); the
// entries slice itself may be reused after rebuilding its entries with
// Desc.
func (rt *Runtime) SubmitBatch(batch []BatchEntry) []*Task {
	return rt.submitBatch(batch, nil)
}

// taskPtrSlabSize sizes the pointer slab backing SubmitBatch results.
const taskPtrSlabSize = 512

// submitBatch implements SubmitBatch, appending the created tasks to dst
// (carved from the runtime's pointer slab when dst is nil).
func (rt *Runtime) submitBatch(batch []BatchEntry, dst []*Task) []*Task {
	if rt.closed.Load() {
		panic("taskrt: SubmitBatch after Close")
	}
	n := len(batch)
	if n == 0 {
		return dst
	}
	rt.consumeFence()
	rt.throttle() // once per batch; a batch is an atomic submission unit
	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateCreate)
	}
	if dst == nil {
		if n > len(rt.ptrSlab)-rt.ptrOff {
			// Park the used part of the replaced slab for scrubbing at the
			// next fence; its result slices may still be live until then.
			if rt.ptrOff > 0 {
				rt.oldPtrSlabs = append(rt.oldPtrSlabs, rt.ptrSlab[:rt.ptrOff])
			}
			size := taskPtrSlabSize
			if n > size {
				size = n
			}
			rt.ptrSlab = make([]*Task, size)
			rt.ptrOff = 0
		}
		dst = rt.ptrSlab[rt.ptrOff : rt.ptrOff : rt.ptrOff+n]
		rt.ptrOff += n
	}
	first := len(dst)

	// Pass 1: carve and wire each task while it is cache-hot. Wiring
	// only ever looks backwards, so every predecessor — intra-batch or
	// older — is already carved when its successor wires; intra-batch
	// edges (id >= startID) are plain appends, and only cross-batch
	// edges install the npred guard and take the CAS path. Per-task
	// predecessor counts accumulate in a reused scratch so no npred
	// atomics happen until pass 3.
	counts := rt.batchNpred
	if cap(counts) < n {
		counts = make([]int32, n)
	}
	counts = counts[:n]
	startID := rt.nextID
	for i := range batch {
		e := &batch[i]
		accs, owned := e.take()
		var t *Task
		if owned {
			t = rt.carveOwned(e.typ, accs)
		} else {
			t = rt.carve(e.typ, accs)
		}
		dst = append(dst, t)
		counts[i] = rt.wire(t, startID)
		if rt.det != nil {
			// Yield point: cross-batch predecessors may complete while the
			// batch is half-carved — the window the npred guard protects.
			rt.det.maybeYield()
		}
		rt.notePayload(t) // internally sampled, 1 in 8
		if rt.tracer != nil {
			rt.tracer.TaskCreated()
		}
	}
	tasks := dst[first:]
	rt.submitted.Add(int64(n))

	// The batch observer (ATM) runs strictly between wiring and
	// publication: every guard is still in place, so no task of the
	// batch can be scheduled — or even readied by a racing cross-batch
	// completion — until the observer returns.
	if rt.batchObs != nil {
		if rt.det != nil {
			rt.det.maybeYield() // completions may land just before the observer
		}
		rt.batchObs.OnBatchSubmitted(tasks)
	}

	// Pass 3 publishes predecessor counts in two phases. The moment a
	// guarded task's guard drops (3b), a racing cross-batch completion
	// can ready it, a worker can run it, and its completion then
	// decrements in-batch successors — so every successor's plain count
	// must already be installed. Phase 3a therefore stores all unguarded
	// counts (such tasks have no cross-batch edges: nothing can touch
	// their npred until this batch itself starts running) before phase
	// 3b drops any guard.
	ready := rt.batchReady[:0]
	for i, t := range tasks {
		if t.npred.Load() != 0 {
			continue // guard installed: phase 3b
		}
		if counts[i] == 0 {
			ready = append(ready, t)
		} else {
			t.npred.Store(counts[i])
		}
		counts[i] = -1 // consumed
	}
	if rt.det != nil {
		// Yield point between phases 3a and 3b: guarded tasks' cross-batch
		// predecessors may complete here, decrementing npred while the
		// guard is still installed.
		rt.det.maybeYield()
	}
	for i, t := range tasks {
		if counts[i] < 0 {
			continue
		}
		if t.npred.Add(counts[i]-npredGuard) == 0 {
			ready = append(ready, t)
		}
	}
	rt.batchNpred = counts[:0]

	// Pass 4: one block publish + one wake for the whole batch.
	rt.publishBlock(ready)
	for i := range ready {
		ready[i] = nil // scratch must not pin completed tasks' slabs
	}
	rt.batchReady = ready[:0]
	if rt.det != nil {
		rt.det.maybeYield() // workers may start the batch before Submit returns
	}

	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateOther)
	}
	return dst
}

// Batcher accumulates task descriptors and submits them through
// SubmitBatch in fixed-size batches, reusing its buffers so a steady
// submission loop allocates nothing for tasks with at most two accesses.
// With a batch size of 1 (Config.BatchSize < 0, cmd/atmbench's
// "-batch 0") it degrades to per-task Submit, the before/after baseline.
//
// A Batcher holds undelivered descriptors: call Flush before every
// Wait, and before any point where previously submitted tasks' results
// are consulted.
type Batcher struct {
	rt      *Runtime
	size    int
	entries []BatchEntry
	tasks   []*Task
}

// Batcher returns a new Batcher with the runtime's configured batch size
// (Config.BatchSize). Like Submit, it must be used only from the master
// goroutine.
func (rt *Runtime) Batcher() *Batcher {
	return rt.BatcherN(rt.batchSize)
}

// BatcherN returns a new Batcher with an explicit batch size.
func (rt *Runtime) BatcherN(size int) *Batcher {
	if size < 1 {
		size = 1
	}
	b := &Batcher{rt: rt, size: size}
	if size > 1 {
		b.entries = make([]BatchEntry, 0, size)
	}
	return b
}

// Add appends one task descriptor, submitting the accumulated batch when
// it reaches the configured size. The entry is built in place in the
// batch buffer (no intermediate BatchEntry copy).
func (b *Batcher) Add(tt *TaskType, accesses ...Access) {
	if b.size <= 1 {
		b.rt.Submit(tt, accesses...)
		return
	}
	n := len(b.entries)
	if n == cap(b.entries) {
		b.entries = append(b.entries, BatchEntry{})
	} else {
		b.entries = b.entries[:n+1]
	}
	b.entries[n].fill(tt, accesses)
	if len(b.entries) >= b.size {
		b.Flush()
	}
}

// Flush submits any accumulated descriptors as one batch. The reused
// buffers retain stale references until the next flush overwrites them —
// at most one batch's tasks (and their slabs) and the regions of one
// batch's entries stay reachable a flush longer than strictly needed, a
// deliberately bounded trade for a scrub-free steady state.
func (b *Batcher) Flush() {
	if len(b.entries) == 0 {
		return
	}
	b.tasks = b.rt.submitBatch(b.entries, b.tasks[:0])
	b.entries = b.entries[:0]
}
