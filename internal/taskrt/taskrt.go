// Package taskrt is a task-based dataflow runtime system in the style of
// OmpSs/Nanos++ (§II-C of the paper): the program is decomposed into tasks
// annotated with their data inputs and outputs; the runtime builds the
// task dependence graph (TDG), moves tasks whose dependences are satisfied
// to a ready queue, and executes them on a pool of workers.
//
// The runtime is memoization-agnostic: a Memoizer hook (implemented by
// package core) is consulted when a worker pulls a task from the ready
// queue and when a task body finishes, exactly the two interception points
// of the paper's Fig. 1.
package taskrt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atm/internal/failpoint"
	"atm/internal/region"
	"atm/internal/trace"
)

// AccessMode declares how a task uses a region, mirroring the
// in/out/inout clauses of OmpSs and OpenMP 4.0 task depend annotations.
type AccessMode uint8

// Access modes.
const (
	ModeIn    AccessMode = iota // read-only data input
	ModeOut                     // write-only data output
	ModeInOut                   // read-modify-write
)

// String returns the OmpSs clause name of the mode.
func (m AccessMode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// Access pairs a region with its access mode.
type Access struct {
	Region region.Region
	Mode   AccessMode
}

// In declares a read-only access.
func In(r region.Region) Access { return Access{Region: r, Mode: ModeIn} }

// Out declares a write-only access.
func Out(r region.Region) Access { return Access{Region: r, Mode: ModeOut} }

// InOut declares a read-modify-write access.
func InOut(r region.Region) Access { return Access{Region: r, Mode: ModeInOut} }

// TaskFunc is a task body. It must be deterministic in its declared
// inputs and write only its declared outputs (§III-E: ATM requires tasks
// whose outputs are a pure function of their annotated inputs).
type TaskFunc func(t *Task)

// TypeConfig declares a task type (one pragma annotation in OmpSs terms).
type TypeConfig struct {
	// Name labels the type in statistics and reports.
	Name string
	// Run is the task body.
	Run TaskFunc
	// Memoize marks the type as suitable for ATM, the programmer
	// guidance of §III-E. Non-memoizable types bypass ATM entirely.
	Memoize bool
	// TauMax is the per-task Chebyshev error bound τmax used by dynamic
	// ATM's training phase (Table II). Zero means the 1% default.
	TauMax float64
	// LTraining is the number of correctly-approximated training tasks
	// required before entering steady state (Table II). Zero means 15,
	// the minimum that lets training reach p = 100%.
	LTraining int
	// Priority biases the ready queue: among ready tasks, higher
	// priority runs first (OmpSs's priority clause). Ties follow the
	// runtime's scheduling policy.
	Priority int
}

// TaskType is a registered task type.
type TaskType struct {
	id  int
	cfg TypeConfig
	rt  *Runtime
}

// ID returns the dense per-runtime type identifier.
func (tt *TaskType) ID() int { return tt.id }

// Name returns the configured name.
func (tt *TaskType) Name() string { return tt.cfg.Name }

// Config returns the type's configuration.
func (tt *TaskType) Config() TypeConfig { return tt.cfg }

// TauMax returns the effective τmax (default 0.01).
func (tt *TaskType) TauMax() float64 {
	if tt.cfg.TauMax <= 0 {
		return 0.01
	}
	return tt.cfg.TauMax
}

// LTraining returns the effective training length (default 15).
func (tt *TaskType) LTraining() int {
	if tt.cfg.LTraining <= 0 {
		return 15
	}
	return tt.cfg.LTraining
}

// Task is one node of the TDG.
type Task struct {
	id       uint64
	typ      *TaskType
	accesses []Access
	// regions holds the ModeIn + ModeInOut regions (declaration order)
	// followed by the ModeOut + ModeInOut regions; ninlen is the split
	// point. Inputs/Outputs return the two halves. The partition is
	// computed lazily by ensureRegions on first use, so non-memoized
	// tasks never pay for it on the submission path.
	regions []region.Region
	ninlen  int32

	// Dependence bookkeeping. npred carries a large "submission guard"
	// bias while the master wires the task, so a racing predecessor
	// completion can never ready it early. succ1 is the lock-free fast
	// path for the ubiquitous single-successor shape: it holds nil (no
	// successor yet), the lone successor, or succDone once the task has
	// completed. Additional successors spill to succs under mu.
	npred atomic.Int32
	succ1 atomic.Pointer[Task]
	mu    sync.Mutex
	succs []*Task
	done  bool

	// MemoScratch is opaque per-task state for the Memoizer (the hash
	// key and lookup results computed in OnReady, consumed in
	// OnFinished).
	MemoScratch any

	// slab points to the slab this task was carved from and sgen snapshots
	// the slab's recycle generation at carve time: a mismatch later means
	// a completion fence has retired the task and its memory may belong to
	// a newer task (see CompleteExternal).
	slab *taskSlab
	sgen uint32

	// Inline storage for the common small-task shape (≤2 accesses — hence
	// ≤4 regions, since an inout access lands in both halves — and ≤2
	// successors): keeps submission and the lazy partition at zero
	// steady-state heap allocations per task and lets the caller's
	// variadic access slice stay on its stack. Larger tasks spill to the
	// heap, which their execution cost dwarfs.
	accInline  [2]Access
	regInline  [4]region.Region
	succInline [2]*Task
}

// ID returns the task's creation-order identifier (Fig. 9's task id).
func (t *Task) ID() uint64 { return t.id }

// Type returns the task's type.
func (t *Task) Type() *TaskType { return t.typ }

// Accesses returns the declared accesses in declaration order.
func (t *Task) Accesses() []Access { return t.accesses }

// ensureRegions computes the input/output region partition on first use.
// It must be called only by the task's current exclusive owner — the
// master before publication, or the worker the task is scheduled on —
// which is how every caller (the Memoizer hooks, tests after Wait)
// reaches it; the ownership handoffs (queue mutexes, npred atomics, the
// IKT lock for deferred tasks) order the write for later readers.
func (t *Task) ensureRegions() {
	if t.regions != nil || len(t.accesses) == 0 {
		return
	}
	nin, nout := 0, 0
	for _, a := range t.accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			nin++
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			nout++
		}
	}
	var backing []region.Region
	if nin+nout <= len(t.regInline) {
		backing = t.regInline[:nin+nout]
	} else {
		backing = make([]region.Region, nin+nout)
	}
	i, o := 0, nin
	for _, a := range t.accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			backing[i] = a.Region
			i++
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			backing[o] = a.Region
			o++
		}
	}
	t.ninlen = int32(nin)
	t.regions = backing
}

// Inputs returns the data-input regions (in + inout), the bytes ATM hashes.
func (t *Task) Inputs() []region.Region {
	t.ensureRegions()
	return t.regions[:t.ninlen]
}

// Outputs returns the data-output regions (out + inout), what ATM copies.
func (t *Task) Outputs() []region.Region {
	t.ensureRegions()
	return t.regions[t.ninlen:]
}

// reset clears a recycled slab cell back to the carvable zero state. The
// cell's previous task completed before the fence that retired its slab,
// so every field is quiescent: npred is 0 (the ready condition), succ1
// holds succDone, succs was nilled and the inline successor slots cleared
// by complete(). Fields are cleared individually instead of assigning a
// zero Task so the mutex is not copied (vet copylocks).
func (t *Task) reset() {
	t.accesses = nil
	t.regions = nil
	t.ninlen = 0
	t.npred.Store(0)
	t.succ1.Store(nil)
	t.succs = nil
	t.done = false
	t.MemoScratch = nil
	t.accInline = [2]Access{}
	t.regInline = [4]region.Region{}
	t.succInline = [2]*Task{}
}

// Region returns access i's region (convenience for task bodies).
func (t *Task) Region(i int) region.Region { return t.accesses[i].Region }

// Float64s returns access i's region as a float64 slice. It panics if the
// region is not a *region.Float64 (a task-body programming error).
func (t *Task) Float64s(i int) []float64 {
	return t.accesses[i].Region.(*region.Float64).Data
}

// Float32s returns access i's region as a float32 slice.
func (t *Task) Float32s(i int) []float32 {
	return t.accesses[i].Region.(*region.Float32).Data
}

// Int32s returns access i's region as an int32 slice.
func (t *Task) Int32s(i int) []int32 {
	return t.accesses[i].Region.(*region.Int32).Data
}

// Outcome is the Memoizer's verdict on a ready task.
type Outcome uint8

// Memoizer verdicts.
const (
	// OutcomeRun: execute the task body normally.
	OutcomeRun Outcome = iota
	// OutcomeMemoized: outputs were copied from the THT; skip the body.
	OutcomeMemoized
	// OutcomeDeferred: an in-flight task with the same key will provide
	// the outputs and complete this task (IKT postponed copy). The
	// worker must neither run nor complete it.
	OutcomeDeferred
)

// Memoizer is the ATM hook. OnReady runs on the worker that pulled the
// task before the body would execute; OnFinished runs after a body
// completes (only for tasks whose OnReady returned OutcomeRun).
type Memoizer interface {
	OnReady(t *Task, worker int) Outcome
	OnFinished(t *Task, worker int)
}

// RuntimeBinder is implemented by memoizers that need to complete
// deferred tasks through the runtime (the IKT postponed-copy path).
type RuntimeBinder interface {
	BindRuntime(rt *Runtime)
}

// BatchObserver is optionally implemented by memoizers that want to see
// whole submitted batches. SubmitBatch calls OnBatchSubmitted after every
// task of the batch has been carved and its dependences fully wired, but
// before any task of the batch can be published to a worker — so the
// memoizer never observes a half-wired batch, and whatever per-type or
// per-layout state it prepares here is guaranteed to be in place before
// the first OnReady of the batch.
type BatchObserver interface {
	OnBatchSubmitted(tasks []*Task)
}

// SchedPolicy selects the ready-queue discipline, mirroring the scheduler
// plugins of Nanos++ (the paper's runtime exposes breadth-first and
// depth-first schedulers; memoization behavior is policy-independent but
// reuse distances are not).
type SchedPolicy uint8

// Scheduling policies.
const (
	// PolicyFIFO is breadth-first: tasks run in submission order.
	PolicyFIFO SchedPolicy = iota
	// PolicyLIFO is depth-first: the most recently readied task runs
	// first (improves locality, shortens reuse distances).
	PolicyLIFO
)

// String returns the policy's name.
func (p SchedPolicy) String() string {
	if p == PolicyLIFO {
		return "lifo"
	}
	return "fifo"
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines ("cores"). Zero means 1.
	Workers int
	// Memoizer is the optional ATM hook.
	Memoizer Memoizer
	// Tracer is the optional execution tracer.
	Tracer *trace.Tracer
	// Policy selects the ready-queue discipline (default FIFO).
	Policy SchedPolicy
	// BatchSize is the batch size handed to Batcher(): 0 means
	// DefaultBatchSize, 1 or negative degrades Batcher to per-task
	// Submit (the before/after knob of cmd/atmbench's -batch flag).
	BatchSize int
	// ThrottleWindow fixes the submission-throttle high watermark (the
	// maximum number of submitted-but-uncompleted tasks). Zero selects
	// the adaptive watermark: an EWMA of observed task payload bytes
	// sizes the window so the live task graph stays at roughly half the
	// last-level cache.
	ThrottleWindow int
	// Seed seeds every source of scheduling randomness. In live mode it
	// derives the per-worker steal-scan RNGs, so two runs with the same
	// seed probe victims in the same order; in deterministic mode it is
	// the one integer the entire schedule replays from. Zero is a valid
	// seed (the default stream).
	Seed uint64
	// Deterministic replaces the worker pool with a single-threaded
	// seeded executor: every scheduling decision is drawn from Seed and
	// the whole run — task order, yield interleavings, fence timing —
	// replays bit-identically from it. Everything (Submit, Wait, task
	// bodies, memoizer hooks) then runs on the master goroutine; Workers
	// only labels lanes. See det.go and docs/determinism.md.
	Deterministic bool
	// DetSched selects the deterministic executor's ready-queue
	// discipline; the zero value follows Policy. Ignored in live mode.
	DetSched DetSched
}

// Runtime is a task-dataflow runtime instance.
//
// Scheduling state is decentralized (see sched.go): each worker owns a
// deque it pushes newly-readied successors onto and steals from peers
// when empty; master-thread submissions go through a sharded injector.
// Dependence state is touched only by the master thread — reached
// through generation-checked slots embedded in the regions themselves
// (see depState; the regs map is only a fallback) — and per-task wiring
// is guarded by the tasks' own locks, so there is no global runtime
// mutex on any hot path.
type Runtime struct {
	workers  int
	memo     Memoizer
	tracer   *trace.Tracer
	policy   SchedPolicy
	priority atomic.Bool // any registered type has a non-zero priority

	typeMu   sync.Mutex
	nextType int

	locals []readyQ // per-worker deques
	inj    []readyQ // injector shards for master/external submissions
	injSeq atomic.Uint32

	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   atomic.Int32
	tokens   int

	// Task accounting is split so the master and the workers never write
	// the same cache line: submitted is master-only, completed is
	// worker-side, and completers check for a sleeping Wait() only when
	// the waiting flag (read-mostly, shared) says one exists.
	waitMu    sync.Mutex
	waitCond  *sync.Cond
	waiters   int // guarded by waitMu
	submitted atomic.Int64
	completed atomic.Int64
	waiting   atomic.Bool // true while waiters > 0

	// Submission throttling (Nanos++-style task creation throttling): a
	// master that outruns the workers is paused once backlogHigh tasks
	// are in flight, keeping the live task graph cache-sized and GC
	// pressure flat. throttled is read-mostly on the completion path.
	// backlogHigh is the current high watermark; with an adaptive window
	// (Config.ThrottleWindow == 0) the master retunes it from a payload
	// EWMA so live-graph bytes track llcTarget, and completers read it
	// atomically for the low-watermark check.
	throttleMu   sync.Mutex
	throttleCond *sync.Cond
	throttled    atomic.Bool
	backlogHigh  atomic.Int64

	closed atomic.Bool
	depth  atomic.Int64 // ready-task count, maintained only when tracing

	// det is the deterministic executor, nil in live mode. Every hot-path
	// integration point is one predictable nil check.
	det *detExec

	// Victim selection: stealOrder[w] lists worker w's victims with
	// LLC-sharing workers first (stealSplit[w] is the tier boundary);
	// see topology.go and sched.go.
	stealOrder [][]int32
	stealSplit []int
	wlocal     []workerLocal

	// Master-thread-only state (Submit is single-goroutine by contract).
	//
	// Dependence state: slotted regions (region.Slotted, i.e. every
	// concrete region type) carry their *regState in an embedded DepSlot
	// stamped with this runtime's generation — the steady-state submit
	// path performs zero map operations. regs is the fallback registry,
	// holding only foreign (unslotted) regions and regions whose slot is
	// stamped by another live runtime; slotStates is the live-slot list
	// the Close/Reset sweeps walk instead of a map iteration.
	//
	// Task slabs: tasks are carved out of fixed-size slabs so a
	// submission storm costs one allocation per taskSlabSize tasks
	// instead of one per task. Filled slabs accumulate in liveSlabs; the
	// first submission after a completion fence (Wait/Fence, which proves
	// every carved task has completed) retires them to the bounded
	// freeSlabs list for reuse, bumping each slab's recycle generation —
	// recycling replaces the GC-assist share of slab allocation with a
	// per-cell reset.
	gen        uint64 // runtime generation stamped into claimed DepSlots
	fenceSeq   uint64 // bumped per retire; regStates lazily resync to it
	regs       map[region.Region]*regState
	slotStates []*regState
	lastReg    region.Region // 1-entry dependence-state cache
	lastRS     *regState
	nextID     uint64
	slab       *taskSlab
	slabOff    int
	slabGen    uint32 // current slab's recycle generation (can't change while current)
	liveSlabs  []*taskSlab
	freeSlabs  []*taskSlab

	// fencePending is set by Wait/Fence (any goroutine) and consumed by
	// the master at its next submission, so all slab recycling happens on
	// the master thread no matter who fences.
	fencePending atomic.Bool

	// Adaptive-throttle state (master-only): a sampled EWMA of task
	// payload bytes, refreshed into backlogHigh every watermarkRefresh
	// samples.
	payloadEWMA float64
	noteSeq     uint64
	ewmaTasks   int
	llcTarget   int64
	fixedWindow bool

	// SubmitBatch scratch (master-only), reused across batches.
	// oldPtrSlabs holds used portions of replaced pointer slabs until the
	// next fence scrubs them (they may carry still-valid result slices
	// until then, so replacement time is too early to scrub).
	batchNpred  []int32
	batchReady  []*Task
	batchObs    BatchObserver
	batchSize   int
	ptrSlab     []*Task
	ptrOff      int
	oldPtrSlabs [][]*Task

	wg sync.WaitGroup
}

// taskSlabSize is the number of Task structs per master-side slab.
// (Sizing note: 256-task slabs cross Go's 32 KiB large-object threshold
// and regressed the memoized path by 20%; see PERFORMANCE.md.)
const taskSlabSize = 64

// taskSlab is one master-side task slab. gen counts recycles: it is
// bumped when a completion fence retires the slab to the free list, so a
// task pointer that outlives the fence is detectable (its Task.sgen no
// longer matches). recycled marks slabs whose cells need a reset at
// carve time; fresh allocations are already zero.
type taskSlab struct {
	gen      atomic.Uint32
	recycled bool
	tasks    [taskSlabSize]Task
}

// Runtime generations. Every Runtime instance (and every Reset epoch
// within one) gets a process-unique generation to stamp into region
// DepSlots. The registry tracks the generations currently *live* — so a
// later claimant can distinguish the stamp of a live runtime (fall back
// to the map) from a stale one (closed runtime or pre-Reset epoch: safe
// to reclaim). Tracking live rather than retired generations keeps the
// map bounded by the number of live runtimes, not by how many have ever
// existed — a long-running service Resetting per phase stays flat. All
// of this is cold-path only: the steady state is a slot whose
// generation already matches.
var (
	genSeq   atomic.Uint64
	genMu    sync.Mutex
	liveGens = map[uint64]struct{}{}
)

func newGen() uint64 {
	g := genSeq.Add(1)
	genMu.Lock()
	liveGens[g] = struct{}{}
	genMu.Unlock()
	return g
}

func retireGen(g uint64) {
	genMu.Lock()
	delete(liveGens, g)
	genMu.Unlock()
}

func genLive(g uint64) bool {
	genMu.Lock()
	_, ok := liveGens[g]
	genMu.Unlock()
	return ok
}

// npredGuard is the submission-guard bias held in Task.npred while the
// master wires dependences; it is far larger than any real predecessor
// count, so concurrent completions can never drive npred to zero early.
const npredGuard = 1 << 30

// succDone marks a completed task in Task.succ1: once a predecessor's
// slot holds it, no further successors may register there.
var succDone = new(Task)

// Submission-throttle sizing: the high watermark bounds submitted-but-
// uncompleted tasks; Submit/SubmitBatch pause the master above it and
// resume below the low watermark (half). Every in-flight task is
// executable without further submissions (dependences point only
// backwards, and IKT-deferred tasks are completed by an earlier
// in-flight provider), so throttling cannot deadlock. The adaptive
// watermark starts at defaultBacklog and is retuned every
// watermarkRefresh payload samples (one task in eight is sampled) to
// llcTarget / (payload EWMA + task overhead), clamped to
// [minBacklog, maxBacklogCap].
const (
	defaultBacklog    = 4096
	minBacklog        = 64
	maxBacklogCap     = 16384
	watermarkRefresh  = 64
	taskOverheadBytes = 256 // approximate Task struct + queue footprint
)

// DefaultBatchSize is the Batcher batch size when Config.BatchSize is 0.
const DefaultBatchSize = 64

// regState is the per-region dependence registry entry: the last task that
// wrote the region and the readers since that write (the information OmpSs
// keeps per address range). readerInline backs the readers list so the
// common few-readers-per-write window allocates nothing; it is safe to
// reuse after every writer because the registry is master-thread-only and
// reader lists never outlive the next writer's wiring.
type regState struct {
	lastWriter   *Task
	readers      []*Task
	fenceSeq     uint64 // last fence epoch this state was used in
	readerInline [4]*Task
}

// refresh lazily drops dependence state left over from before the last
// slab-recycling fence. Every task recorded here completed before that
// fence, so the references are semantically dead — but the cells they
// point to may since have been re-carved into unrelated live tasks, and
// following them would wire false edges. One compare per region touch
// replaces the eager whole-registry sweep that PERFORMANCE.md records as
// a dead end.
func (rs *regState) refresh(fenceSeq uint64) {
	if rs.fenceSeq != fenceSeq {
		rs.lastWriter = nil
		rs.clearReaders()
		rs.fenceSeq = fenceSeq
	}
}

// clearReaders resets the reader list, nilling the populated inline slots
// so stale *Task pointers do not keep completed tasks (and their slabs)
// reachable. Slots beyond len(readers) are nil by induction (only append
// through readers writes them), so the common reader-free write-after-
// write chain pays no pointer stores at all.
func (rs *regState) clearReaders() {
	n := len(rs.readers)
	if n > len(rs.readerInline) {
		n = len(rs.readerInline)
	}
	for i := 0; i < n; i++ {
		rs.readerInline[i] = nil
	}
	rs.readers = nil
}

// New starts a runtime with cfg.Workers workers. Call Close when done —
// it is required, not advisory: an abandoned Runtime leaks its worker
// goroutines, and its region-slot generation stays registered as live,
// demoting every region it stamped to the map-fallback path in all
// later runtimes.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	nshards := 1
	if cfg.Workers > 1 {
		nshards = cfg.Workers
		if nshards > 4 {
			nshards = 4
		}
	}
	rt := &Runtime{
		workers: cfg.Workers,
		memo:    cfg.Memoizer,
		tracer:  cfg.Tracer,
		policy:  cfg.Policy,
		locals:  make([]readyQ, cfg.Workers),
		inj:     make([]readyQ, nshards),
		regs:    make(map[region.Region]*regState),
		gen:     newGen(),
		slab:    &taskSlab{},
	}
	rt.parkCond = sync.NewCond(&rt.parkMu)
	rt.waitCond = sync.NewCond(&rt.waitMu)
	rt.throttleCond = sync.NewCond(&rt.throttleMu)
	tp := topology()
	rt.llcTarget = tp.effectiveLLCBytes() / 2
	if cfg.ThrottleWindow > 0 {
		rt.fixedWindow = true
		rt.backlogHigh.Store(int64(cfg.ThrottleWindow))
	} else {
		rt.backlogHigh.Store(defaultBacklog)
	}
	switch {
	case cfg.BatchSize == 0:
		rt.batchSize = DefaultBatchSize
	case cfg.BatchSize < 1:
		rt.batchSize = 1
	default:
		rt.batchSize = cfg.BatchSize
	}
	rt.stealOrder, rt.stealSplit = buildStealOrder(cfg.Workers, tp)
	rt.wlocal = make([]workerLocal, cfg.Workers)
	seed := cfg.Seed
	for w := range rt.wlocal {
		// Distinct per-worker seeds for the steal-start xorshift, expanded
		// from Config.Seed so same-seed live runs probe victims in the
		// same per-scan order (xorshift needs nonzero state).
		v := splitmix64(&seed)
		if v == 0 {
			v = 0x2545f4914f6cdd1d
		}
		rt.wlocal[w].rng = v
	}
	if b, ok := cfg.Memoizer.(RuntimeBinder); ok {
		b.BindRuntime(rt)
	}
	if bo, ok := cfg.Memoizer.(BatchObserver); ok {
		rt.batchObs = bo
	}
	if cfg.Deterministic {
		// No worker pool: the seeded executor runs everything on the
		// master goroutine, pulled by Wait/throttle/yield points.
		rt.det = newDetExec(rt, cfg.Seed, cfg.DetSched)
		return rt
	}
	rt.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// Workers returns the worker count.
func (rt *Runtime) Workers() int { return rt.workers }

// Submitted returns the number of tasks submitted so far (exactly-once
// accounting; schedfuzz checks it against Completed after a barrier).
func (rt *Runtime) Submitted() int64 { return rt.submitted.Load() }

// Completed returns the number of tasks completed so far.
func (rt *Runtime) Completed() int64 { return rt.completed.Load() }

// Deterministic reports whether the runtime runs the deterministic
// executor (Config.Deterministic).
func (rt *Runtime) Deterministic() bool { return rt.det != nil }

// Tracer returns the runtime's tracer (possibly nil).
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// RegisterType registers a task type and returns it.
func (rt *Runtime) RegisterType(cfg TypeConfig) *TaskType {
	rt.typeMu.Lock()
	defer rt.typeMu.Unlock()
	tt := &TaskType{id: rt.nextType, cfg: cfg, rt: rt}
	rt.nextType++
	if cfg.Priority != 0 {
		rt.priority.Store(true)
	}
	return tt
}

// throttle pauses the master while the in-flight task count is at or
// above the high watermark, resuming below the low watermark (half).
func (rt *Runtime) throttle() {
	if rt.submitted.Load()-rt.completed.Load() < rt.backlogHigh.Load() {
		return
	}
	if rt.det != nil {
		rt.det.drainBacklog()
		return
	}
	rt.throttleMu.Lock()
	rt.throttled.Store(true)
	for rt.submitted.Load()-rt.completed.Load() >= rt.backlogHigh.Load()/2 {
		rt.throttleCond.Wait()
	}
	rt.throttled.Store(false)
	rt.throttleMu.Unlock()
}

// notePayload feeds one task's payload bytes into the adaptive-throttle
// EWMA and periodically retunes the high watermark so that
// (watermark × mean task bytes) tracks the LLC target. Master-only. Only
// one task in eight is actually measured — submission streams are
// uniform loop nests, so the sampled mean converges to the true mean and
// the steady path pays a counter increment instead of per-access
// NumBytes calls.
func (rt *Runtime) notePayload(t *Task) {
	if rt.fixedWindow {
		return
	}
	rt.noteSeq++
	if rt.noteSeq&7 != 0 {
		return
	}
	bytes := 0
	for _, a := range t.accesses {
		bytes += a.Region.NumBytes()
	}
	if rt.payloadEWMA == 0 {
		rt.payloadEWMA = float64(bytes)
	} else {
		rt.payloadEWMA += (float64(bytes) - rt.payloadEWMA) / 64
	}
	rt.ewmaTasks++
	if rt.ewmaTasks < watermarkRefresh {
		return
	}
	rt.ewmaTasks = 0
	hw := int64(float64(rt.llcTarget) / (rt.payloadEWMA + taskOverheadBytes))
	lo := int64(minBacklog)
	if m := int64(8 * rt.workers); m > lo {
		lo = m
	}
	if hw < lo {
		hw = lo
	}
	if hw > maxBacklogCap {
		hw = maxBacklogCap
	}
	rt.backlogHigh.Store(hw)
}

// BacklogLimit reports the current submission-throttle high watermark.
func (rt *Runtime) BacklogLimit() int { return int(rt.backlogHigh.Load()) }

// carveRaw allocates the next task from the master-side slab and stamps
// its type and id; the caller fills the accesses (the input/output
// partition is computed lazily by ensureRegions).
func (rt *Runtime) carveRaw(tt *TaskType) *Task {
	if rt.slabOff == taskSlabSize {
		// Track the filled slab for recycling at the next fence — but only
		// up to one throttle window's worth. Tracking pins the slab until a
		// fence, so a fence-light submission storm (millions of tasks, one
		// final Wait) must shed the excess to the GC as completion frees
		// them, exactly as before recycling existed; otherwise the tracked
		// list itself would grow the live heap without bound.
		if len(rt.liveSlabs) < rt.slabTrackLimit() {
			rt.liveSlabs = append(rt.liveSlabs, rt.slab)
		}
		rt.slab = rt.takeSlab()
		rt.slabGen = rt.slab.gen.Load()
		rt.slabOff = 0
	}
	t := &rt.slab.tasks[rt.slabOff]
	rt.slabOff++
	if rt.slab.recycled {
		t.reset()
	}
	t.slab = rt.slab
	t.sgen = rt.slabGen
	t.typ = tt
	t.id = rt.nextID
	rt.nextID++
	return t
}

// takeSlab pops a recycled slab from the free list, or allocates a fresh
// one.
func (rt *Runtime) takeSlab() *taskSlab {
	if n := len(rt.freeSlabs); n > 0 {
		s := rt.freeSlabs[n-1]
		rt.freeSlabs[n-1] = nil
		rt.freeSlabs = rt.freeSlabs[:n-1]
		return s
	}
	return &taskSlab{}
}

// retireSlabs moves every filled slab to the free list for reuse. Called
// by the master at its first submission after a completion fence
// (fencePending): at the fence every carved task had completed, and
// between the fence and this call the master — the only carver — created
// none, so all filled slabs hold only completed tasks. Each retired
// slab's recycle generation is bumped (stale Task pointers become
// detectable) and the fence epoch advances so regStates lazily drop
// dependence references into recycled cells. The free list is bounded to
// one throttle window's worth of slabs; excess slabs fall to the GC.
func (rt *Runtime) retireSlabs() {
	rt.lastReg, rt.lastRS = nil, nil
	if len(rt.liveSlabs) == 0 {
		return
	}
	rt.fenceSeq++
	// All outstanding SubmitBatch result pointers die at this fence;
	// scrub the pointer slabs — current and any replaced since the last
	// fence — so stale entries cannot pin retired tasks' slabs (callers'
	// slices share this backing — their contents become nil rather than
	// silently aliasing re-carved cells). ptrOff is NOT reset: long-lived
	// Batcher buffers keep aliasing their original segments, so reusing
	// the storage would hand one segment to two owners. The slab stays
	// monotonic and reallocates when exhausted.
	for i := range rt.ptrSlab[:rt.ptrOff] {
		rt.ptrSlab[i] = nil
	}
	for i, ps := range rt.oldPtrSlabs {
		for j := range ps {
			ps[j] = nil
		}
		rt.oldPtrSlabs[i] = nil
	}
	rt.oldPtrSlabs = rt.oldPtrSlabs[:0]
	limit := rt.slabTrackLimit()
	for i, s := range rt.liveSlabs {
		rt.liveSlabs[i] = nil
		// Bump the recycle generation of every retired slab — also the
		// ones dropped to the GC past the free-list bound — so a stale
		// CompleteExternal straggler is detectable either way.
		s.gen.Add(1)
		if len(rt.freeSlabs) < limit {
			s.recycled = true
			rt.freeSlabs = append(rt.freeSlabs, s)
		}
	}
	rt.liveSlabs = rt.liveSlabs[:0]
}

// slabTrackLimit bounds both the tracked-filled-slab list and the free
// list to one submission-throttle window's worth of slabs: the window is
// the most tasks that can be in flight, so more slabs than this cannot
// all hold live tasks anyway.
func (rt *Runtime) slabTrackLimit() int {
	return int(rt.backlogHigh.Load())/taskSlabSize + 2
}

// consumeFence runs the deferred fence work (slab retirement) if a fence
// was crossed since the last submission. Master-only; called on entry to
// Submit and SubmitBatch, before any carving. The quiescence re-check
// makes stray fences harmless: Wait may be called from any goroutine,
// and a non-master waiter can observe completed == submitted in the
// window after the master has carved a batch but before the batch is
// counted in submitted — raising the flag while those tasks are still
// running. Retiring then would recycle slabs holding live tasks, so the
// flag only takes effect when the counters prove every carved task has
// completed (submitted is stable here: the master is the only writer,
// and it is the caller). A skipped fence costs nothing but the missed
// recycle; the next true barrier re-raises it.
func (rt *Runtime) consumeFence() {
	if !rt.fencePending.Load() {
		return
	}
	rt.fencePending.Store(false)
	if rt.completed.Load() != rt.submitted.Load() {
		return
	}
	if rt.det != nil && rt.det.delayFence() {
		// Seeded fence-timing exploration: keep the fence pending so slab
		// retirement lands at a later submission — the late-recycle
		// schedules that make stale task pointers observable.
		rt.fencePending.Store(true)
		return
	}
	rt.retireSlabs()
}

// carve creates a task copying the caller's access slice (inline for the
// common ≤2-access shape).
func (rt *Runtime) carve(tt *TaskType, accesses []Access) *Task {
	t := rt.carveRaw(tt)
	if len(accesses) <= len(t.accInline) {
		t.accesses = t.accInline[:copy(t.accInline[:], accesses)]
	} else {
		t.accesses = make([]Access, len(accesses))
		copy(t.accesses, accesses)
	}
	return t
}

// carveOwned is carve for an access slice the caller owns and will not
// reuse (always a spilled BatchEntry list, >2 accesses): the task adopts
// it without copying.
func (rt *Runtime) carveOwned(tt *TaskType, accesses []Access) *Task {
	t := rt.carveRaw(tt)
	t.accesses = accesses
	return t
}

// wire registers t's dependences against the registry and returns the
// number of distinct predecessors found. Tasks with id >= batchStart are
// unpublished members of the batch currently being submitted: the master
// owns both endpoints of such an edge, so it is recorded with plain
// appends — no CAS, no lock, no npred guard. Edges to older (published,
// possibly executing) tasks use the lock-free registration path; before
// the first such edge the submission guard is installed in t.npred, so a
// racing predecessor completion can never drive it to zero early.
// Callers must pass the result to finalizeWiring.
func (rt *Runtime) wire(t *Task, batchStart uint64) int32 {
	// Predecessor dedup: a linear scan over a small inline buffer for the
	// ubiquitous few-predecessor shape, spilling to a map once the count
	// would make the scan quadratic (the kmeans fan-in task reads
	// hundreds of partials, all with distinct last-writers).
	const seenSpill = 32
	var seenBuf [8]*Task
	seen := seenBuf[:0]
	var seenMap map[*Task]struct{}
	npred := int32(0)
	guarded := false
	record := func(p *Task) {
		if seenMap != nil {
			seenMap[p] = struct{}{}
			return
		}
		seen = append(seen, p)
		if len(seen) >= seenSpill {
			seenMap = make(map[*Task]struct{}, 2*seenSpill)
			for _, q := range seen {
				seenMap[q] = struct{}{}
			}
		}
	}
	addPred := func(p *Task) {
		if p == nil || p == t {
			return
		}
		if seenMap != nil {
			if _, dup := seenMap[p]; dup {
				return
			}
		} else {
			for _, q := range seen {
				if q == p {
					return
				}
			}
		}
		if p.id >= batchStart {
			// Intra-batch edge: p is unpublished, cannot run or complete
			// until this batch is published, and only the master touches
			// it — plain memory suffices.
			if p.succs == nil {
				p.succs = p.succInline[:0]
			}
			p.succs = append(p.succs, t)
			record(p)
			npred++
			return
		}
		if rt.det != nil {
			// Yield point: p may complete right here, before registration
			// even looks at it (the completed-predecessor fast path).
			rt.det.maybeYield()
		}
		cur := p.succ1.Load()
		if cur == succDone {
			return // p already completed
		}
		// The guard keeps racing predecessor completions from readying
		// the task before its wiring is finished; it is installed lazily
		// so tasks without cross-batch predecessors pay no npred atomics
		// at all.
		if !guarded {
			t.npred.Store(npredGuard)
			guarded = true
		}
		if rt.det != nil {
			// Yield point: p may complete between the load and the CAS —
			// the CAS then fails against succDone and the lock path must
			// observe p.done and drop the edge.
			rt.det.maybeYield()
		}
		if cur == nil && p.succ1.CompareAndSwap(nil, t) {
			record(p)
			npred++
			return
		}
		// Slot taken by another successor: spill under the lock.
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			return
		}
		if p.succs == nil {
			p.succs = p.succInline[:0]
		}
		p.succs = append(p.succs, t)
		p.mu.Unlock()
		record(p)
		npred++
	}
	for _, a := range t.accesses {
		rs := rt.lastRS
		if a.Region != rt.lastReg {
			rs = rt.depState(a.Region)
			rt.lastReg, rt.lastRS = a.Region, rs
		}
		// Opportunistically drop a completed last writer (succ1 holds the
		// succDone sentinel from completion onwards): a stale *Task in
		// the registry pins the writer's whole allocation slab.
		if lw := rs.lastWriter; lw != nil && lw.succ1.Load() == succDone {
			rs.lastWriter = nil
		}
		switch a.Mode {
		case ModeIn:
			addPred(rs.lastWriter) // RAW
			if rs.readers == nil {
				rs.readers = rs.readerInline[:0]
			}
			rs.readers = append(rs.readers, t)
		case ModeOut, ModeInOut:
			addPred(rs.lastWriter) // WAW (and RAW for inout)
			for _, r := range rs.readers {
				addPred(r) // WAR
			}
			rs.lastWriter = t
			rs.clearReaders()
			if a.Mode == ModeInOut {
				rs.readers = rs.readerInline[:0]
				rs.readers = append(rs.readers, t)
			}
		}
	}
	return npred
}

// depState resolves the dependence state for r. The steady state — a
// slotted region whose DepSlot is already stamped with this runtime's
// generation — is one interface assertion, one pointer load and two
// compares, with zero map operations; everything else (first touch,
// reclaiming a slot left by a closed runtime or a pre-Reset epoch,
// foreign regions without a slot) is a cold path.
func (rt *Runtime) depState(r region.Region) *regState {
	if h, ok := r.(region.Slotted); ok {
		s := h.DepSlotHeader()
		if s.DepGen() == rt.gen {
			rs := s.DepState().(*regState)
			rs.refresh(rt.fenceSeq)
			return rs
		}
		return rt.claimSlot(r, s)
	}
	return rt.mapState(r)
}

// claimSlot stamps r's DepSlot with this runtime's generation, unless the
// slot is held by another live runtime — then the map keeps r's state so
// both runtimes stay consistent (the slot's owner keeps its one-load fast
// path; this runtime pays the probe for this region only). A slot whose
// generation is retired (closed runtime, pre-Reset epoch) is reclaimed:
// its old state belongs to a dependence history that no longer exists.
func (rt *Runtime) claimSlot(r region.Region, s *region.DepSlot) *regState {
	if g := s.DepGen(); g != 0 && genLive(g) {
		return rt.mapState(r)
	}
	rs := rt.regs[r]
	if rs != nil {
		// The region was tracked in the map while its slot belonged to a
		// since-retired runtime; promote that state to the slot.
		delete(rt.regs, r)
		rs.refresh(rt.fenceSeq)
	} else {
		rs = &regState{fenceSeq: rt.fenceSeq}
	}
	s.SetDepState(rt.gen, rs)
	rt.slotStates = append(rt.slotStates, rs)
	return rs
}

// mapState is the registry fallback for foreign (unslotted) regions and
// for slots held by another live runtime.
func (rt *Runtime) mapState(r region.Region) *regState {
	rs := rt.regs[r]
	if rs == nil {
		rs = &regState{fenceSeq: rt.fenceSeq}
		rt.regs[r] = rs
	} else {
		rs.refresh(rt.fenceSeq)
	}
	return rs
}

// finalizeWiring publishes t's predecessor count and reports whether the
// task is initially ready: the single-task (Submit) finalize, where every
// predecessor is an older task. If the guard was installed the balancing
// Add folds in the wired-predecessor count, and a zero result means every
// predecessor already completed; with no guard there were no live
// predecessors at all. SubmitBatch uses its own two-phase finalize — with
// intra-batch edges, all plain counts must be installed before any guard
// drops (see batch.go pass 3).
func (rt *Runtime) finalizeWiring(t *Task, npred int32) bool {
	if t.npred.Load() != 0 { // guard installed by wire()
		return t.npred.Add(npred-npredGuard) == 0
	}
	if npred == 0 {
		return true
	}
	t.npred.Store(npred)
	return false
}

// Submit creates a task of type tt with the given accesses, wires its
// dependences against previously submitted tasks, and schedules it when
// ready. Submit must be called from a single goroutine (the "master
// thread"); task bodies must not submit. For regular loop nests,
// SubmitBatch (or a Batcher) amortizes the per-task submission cost.
func (rt *Runtime) Submit(tt *TaskType, accesses ...Access) *Task {
	if rt.closed.Load() {
		panic("taskrt: Submit after Close")
	}
	rt.consumeFence()
	rt.throttle()
	t := rt.carve(tt, accesses)

	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateCreate)
		rt.tracer.TaskCreated()
	}

	rt.submitted.Add(1)
	rt.notePayload(t)

	npred := rt.wire(t, t.id) // batchStart = t.id: no intra-batch edges
	if rt.finalizeWiring(t, npred) {
		rt.ready(t)
	}
	if rt.det != nil {
		// Yield point: workers may run between consecutive Submit calls.
		rt.det.maybeYield()
	}

	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateOther)
	}
	return t
}

// worker is the per-worker loop: pull a ready task, consult the memoizer,
// execute or skip, complete. A completion that readies a single successor
// hands it straight back to the same worker (the inner loop), so serial
// task chains run without touching any queue.
func (rt *Runtime) worker(w int) {
	defer rt.wg.Done()
	for {
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateIdle)
		}
		t := rt.next(w)
		if t == nil {
			return
		}
		for t != nil {
			t = rt.step(t, w)
		}
	}
}

// step runs one scheduled task and returns the direct-handoff successor,
// if any.
func (rt *Runtime) step(t *Task, w int) *Task {
	if rt.memo != nil && t.typ.cfg.Memoize {
		switch rt.memo.OnReady(t, w) {
		case OutcomeMemoized:
			return rt.complete(t, w)
		case OutcomeDeferred:
			return nil // the in-flight provider completes it
		}
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateExec)
		}
		t.typ.cfg.Run(t)
		if rt.det != nil {
			// Yield point between the body and OnFinished: a same-key task
			// pulled here finds the result not yet published and defers on
			// the IKT — the window OutcomeDeferred exists for, unreachable
			// in a strictly sequential replay without this yield.
			rt.det.maybeYield()
		}
		rt.memo.OnFinished(t, w)
	} else {
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateExec)
		}
		t.typ.cfg.Run(t)
	}
	return rt.complete(t, w)
}

// complete marks t done and releases its successors. When called from a
// worker (w >= 0) the first readied successor is returned for direct
// handoff — the worker runs it next without a queue round-trip — and any
// further ones go to the worker's own deque. External completions
// (w == -1) route everything through the injector. Direct handoff is
// skipped when prioritized types exist: a readied task must not overtake
// a queued higher-priority one. A completion that readies k tasks issues
// a single wake of min(k, parked) instead of k independent wakes, so a
// wide fan-out no longer stampedes the park lock.
func (rt *Runtime) complete(t *Task, w int) *Task {
	var keep *Task
	nq := 0
	// Deterministic mode disables direct handoff: a handed-off successor
	// would bypass the seeded pick, hardwiring chain order.
	handoff := w >= 0 && rt.det == nil && !rt.priority.Load()
	release := func(s *Task) {
		if s.npred.Add(-1) == 0 {
			if handoff && keep == nil {
				keep = s
			} else {
				rt.enqueue(s, w)
				nq++
			}
		}
	}
	// Seal the fast-path successor slot first so no new registrations can
	// race with collecting the spill list.
	if s1 := t.succ1.Swap(succDone); s1 != nil && s1 != succDone {
		release(s1)
	}
	t.mu.Lock()
	t.done = true
	succs := t.succs
	t.succs = nil
	t.mu.Unlock()
	for i, s := range succs {
		// Clear the slot: succs usually aliases t.succInline, and a stale
		// *Task there would keep the successor's whole slab reachable.
		succs[i] = nil
		release(s)
	}
	if nq > 0 {
		if keep == nil && w >= 0 {
			// No direct handoff: the completing worker itself returns to
			// the queues next and consumes one of the readied tasks.
			nq--
		}
		rt.wake(nq)
	}
	done := rt.completed.Add(1)
	if rt.waiting.Load() && done == rt.submitted.Load() {
		rt.waitMu.Lock()
		rt.waitCond.Broadcast()
		rt.waitMu.Unlock()
	}
	if rt.throttled.Load() && rt.submitted.Load()-done <= rt.backlogHigh.Load()/2 {
		rt.throttleMu.Lock()
		rt.throttleCond.Signal()
		rt.throttleMu.Unlock()
	}
	return keep
}

// CompleteExternal completes a task that was deferred by the memoizer
// (OutcomeDeferred) after its outputs have been provided. It must be
// called exactly once per deferred task, and before the next completion
// fence can pass (Wait cannot return while the deferred task is
// uncompleted, so any correctly-used provider satisfies this). A call
// that arrives after a fence retired the task's slab is a contract
// violation; the slab generation stamp catches it in most cases —
// retired slabs bump their generation — rather than silently corrupting
// a recycled task. The check is best-effort, not a guarantee: a cell
// already re-carved carries the new stamp, and slabs shed straight to
// the GC by a fence-light submission storm are never retired at all.
func (rt *Runtime) CompleteExternal(t *Task) {
	if err := failpoint.Inject(FailpointCompleteExternal); err != nil {
		// An armed failpoint drops the completion: the deterministic
		// executor's stall detector then reports the incomplete task count
		// and the seed, turning "provider forgot a waiter" into a
		// replayable failure instead of a hang.
		return
	}
	if t.slab != nil {
		if g := t.slab.gen.Load(); g != t.sgen {
			panic(fmt.Sprintf(
				"taskrt: CompleteExternal on a task already retired by a completion fence (slab recycle generation now %d, task carved at generation %d)",
				g, t.sgen))
		}
	}
	rt.complete(t, -1)
}

// FailpointCompleteExternal drops a CompleteExternal call when armed (see
// internal/failpoint): the injected fault for lost-completion schedules.
const FailpointCompleteExternal = "taskrt.CompleteExternal"

// Wait blocks until every submitted task has completed (taskwait/barrier)
// and marks the completion fence: at the master's next submission, every
// filled task slab is recycled (see retireSlabs). Task pointers obtained
// from Submit/SubmitBatch remain valid after Wait — until that next
// submission.
func (rt *Runtime) Wait() {
	if rt.det != nil {
		// Deterministic mode: there is no worker pool to wait for — the
		// master drains the ready queue itself (master goroutine only).
		rt.det.drain()
		rt.fencePending.Store(true)
		return
	}
	if rt.completed.Load() == rt.submitted.Load() {
		rt.fencePending.Store(true)
		return
	}
	rt.waitMu.Lock()
	rt.waiters++
	rt.waiting.Store(true)
	for rt.completed.Load() != rt.submitted.Load() {
		rt.waitCond.Wait()
	}
	rt.waiters--
	if rt.waiters == 0 {
		rt.waiting.Store(false)
	}
	rt.waitMu.Unlock()
	rt.fencePending.Store(true)
}

// Fence is Wait under its slab-recycling name: an explicit completion
// fence after which the runtime reuses task memory. Use it at phase
// boundaries where the point is recycling rather than consuming results.
func (rt *Runtime) Fence() { rt.Wait() }

// Reset discards all dependence-tracking state after a barrier: the
// runtime detaches from every region it has seen, and subsequently
// submitted tasks start a fresh dependence history (the OmpSs analogue of
// dropping all address-range tracking at a taskwait). Claimed region
// slots are invalidated wholesale by retiring the runtime's generation
// and assigning a new one — no per-region unstamping pass. Like Submit,
// Reset must be called from the master goroutine.
func (rt *Runtime) Reset() {
	rt.Wait()
	retireGen(rt.gen)
	rt.gen = newGen()
	rt.sweepDepState()
	rt.regs = make(map[region.Region]*regState)
}

// sweepDepState releases every task reference the dependence registry
// holds, walking the live-slot list (a slice scan) plus the normally tiny
// foreign-region map — not a whole-registry map iteration (regions claim
// slots precisely so the map stays empty). Master-only; used by Reset and
// Close.
func (rt *Runtime) sweepDepState() {
	for i, rs := range rt.slotStates {
		rs.lastWriter = nil
		rs.clearReaders()
		rt.slotStates[i] = nil
	}
	rt.slotStates = rt.slotStates[:0]
	for _, rs := range rt.regs {
		rs.lastWriter = nil
		rs.clearReaders()
	}
	rt.lastReg, rt.lastRS = nil, nil
}

// Close waits for outstanding tasks, then stops the workers. The runtime
// must not be used afterwards.
func (rt *Runtime) Close() {
	rt.Wait()
	rt.closed.Store(true)
	rt.parkMu.Lock()
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
	rt.wg.Wait()
	// Every task is complete; release the dependence registry's task
	// references (live-slot list + foreign map, not a whole-map sweep) so
	// user-held regions whose slots reach regStates cannot pin task
	// memory, and drop the slab lists themselves.
	rt.sweepDepState()
	retireGen(rt.gen)
	rt.slab = nil
	rt.liveSlabs = nil
	rt.freeSlabs = nil
	rt.ptrSlab = nil
	rt.ptrOff = 0
	rt.oldPtrSlabs = nil
	rt.tracer.Flush()
}
