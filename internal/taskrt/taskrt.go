// Package taskrt is a task-based dataflow runtime system in the style of
// OmpSs/Nanos++ (§II-C of the paper): the program is decomposed into tasks
// annotated with their data inputs and outputs; the runtime builds the
// task dependence graph (TDG), moves tasks whose dependences are satisfied
// to a ready queue, and executes them on a pool of workers.
//
// The runtime is memoization-agnostic: a Memoizer hook (implemented by
// package core) is consulted when a worker pulls a task from the ready
// queue and when a task body finishes, exactly the two interception points
// of the paper's Fig. 1.
package taskrt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atm/internal/region"
	"atm/internal/trace"
)

// AccessMode declares how a task uses a region, mirroring the
// in/out/inout clauses of OmpSs and OpenMP 4.0 task depend annotations.
type AccessMode uint8

// Access modes.
const (
	ModeIn    AccessMode = iota // read-only data input
	ModeOut                     // write-only data output
	ModeInOut                   // read-modify-write
)

// String returns the OmpSs clause name of the mode.
func (m AccessMode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// Access pairs a region with its access mode.
type Access struct {
	Region region.Region
	Mode   AccessMode
}

// In declares a read-only access.
func In(r region.Region) Access { return Access{Region: r, Mode: ModeIn} }

// Out declares a write-only access.
func Out(r region.Region) Access { return Access{Region: r, Mode: ModeOut} }

// InOut declares a read-modify-write access.
func InOut(r region.Region) Access { return Access{Region: r, Mode: ModeInOut} }

// TaskFunc is a task body. It must be deterministic in its declared
// inputs and write only its declared outputs (§III-E: ATM requires tasks
// whose outputs are a pure function of their annotated inputs).
type TaskFunc func(t *Task)

// TypeConfig declares a task type (one pragma annotation in OmpSs terms).
type TypeConfig struct {
	// Name labels the type in statistics and reports.
	Name string
	// Run is the task body.
	Run TaskFunc
	// Memoize marks the type as suitable for ATM, the programmer
	// guidance of §III-E. Non-memoizable types bypass ATM entirely.
	Memoize bool
	// TauMax is the per-task Chebyshev error bound τmax used by dynamic
	// ATM's training phase (Table II). Zero means the 1% default.
	TauMax float64
	// LTraining is the number of correctly-approximated training tasks
	// required before entering steady state (Table II). Zero means 15,
	// the minimum that lets training reach p = 100%.
	LTraining int
	// Priority biases the ready queue: among ready tasks, higher
	// priority runs first (OmpSs's priority clause). Ties follow the
	// runtime's scheduling policy.
	Priority int
}

// TaskType is a registered task type.
type TaskType struct {
	id  int
	cfg TypeConfig
	rt  *Runtime
}

// ID returns the dense per-runtime type identifier.
func (tt *TaskType) ID() int { return tt.id }

// Name returns the configured name.
func (tt *TaskType) Name() string { return tt.cfg.Name }

// Config returns the type's configuration.
func (tt *TaskType) Config() TypeConfig { return tt.cfg }

// TauMax returns the effective τmax (default 0.01).
func (tt *TaskType) TauMax() float64 {
	if tt.cfg.TauMax <= 0 {
		return 0.01
	}
	return tt.cfg.TauMax
}

// LTraining returns the effective training length (default 15).
func (tt *TaskType) LTraining() int {
	if tt.cfg.LTraining <= 0 {
		return 15
	}
	return tt.cfg.LTraining
}

// Task is one node of the TDG.
type Task struct {
	id       uint64
	typ      *TaskType
	accesses []Access
	// regions holds the ModeIn + ModeInOut regions (declaration order)
	// followed by the ModeOut + ModeInOut regions; ninlen is the split
	// point. Inputs/Outputs return the two halves. The partition is
	// computed lazily by ensureRegions on first use, so non-memoized
	// tasks never pay for it on the submission path.
	regions []region.Region
	ninlen  int32

	// Dependence bookkeeping. npred carries a large "submission guard"
	// bias while the master wires the task, so a racing predecessor
	// completion can never ready it early. succ1 is the lock-free fast
	// path for the ubiquitous single-successor shape: it holds nil (no
	// successor yet), the lone successor, or succDone once the task has
	// completed. Additional successors spill to succs under mu.
	npred atomic.Int32
	succ1 atomic.Pointer[Task]
	mu    sync.Mutex
	succs []*Task
	done  bool

	// MemoScratch is opaque per-task state for the Memoizer (the hash
	// key and lookup results computed in OnReady, consumed in
	// OnFinished).
	MemoScratch any

	// Inline storage for the common small-task shape (≤2 accesses — hence
	// ≤4 regions, since an inout access lands in both halves — and ≤2
	// successors): keeps submission and the lazy partition at zero
	// steady-state heap allocations per task and lets the caller's
	// variadic access slice stay on its stack. Larger tasks spill to the
	// heap, which their execution cost dwarfs.
	accInline  [2]Access
	regInline  [4]region.Region
	succInline [2]*Task
}

// ID returns the task's creation-order identifier (Fig. 9's task id).
func (t *Task) ID() uint64 { return t.id }

// Type returns the task's type.
func (t *Task) Type() *TaskType { return t.typ }

// Accesses returns the declared accesses in declaration order.
func (t *Task) Accesses() []Access { return t.accesses }

// ensureRegions computes the input/output region partition on first use.
// It must be called only by the task's current exclusive owner — the
// master before publication, or the worker the task is scheduled on —
// which is how every caller (the Memoizer hooks, tests after Wait)
// reaches it; the ownership handoffs (queue mutexes, npred atomics, the
// IKT lock for deferred tasks) order the write for later readers.
func (t *Task) ensureRegions() {
	if t.regions != nil || len(t.accesses) == 0 {
		return
	}
	nin, nout := 0, 0
	for _, a := range t.accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			nin++
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			nout++
		}
	}
	var backing []region.Region
	if nin+nout <= len(t.regInline) {
		backing = t.regInline[:nin+nout]
	} else {
		backing = make([]region.Region, nin+nout)
	}
	i, o := 0, nin
	for _, a := range t.accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			backing[i] = a.Region
			i++
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			backing[o] = a.Region
			o++
		}
	}
	t.ninlen = int32(nin)
	t.regions = backing
}

// Inputs returns the data-input regions (in + inout), the bytes ATM hashes.
func (t *Task) Inputs() []region.Region {
	t.ensureRegions()
	return t.regions[:t.ninlen]
}

// Outputs returns the data-output regions (out + inout), what ATM copies.
func (t *Task) Outputs() []region.Region {
	t.ensureRegions()
	return t.regions[t.ninlen:]
}

// Region returns access i's region (convenience for task bodies).
func (t *Task) Region(i int) region.Region { return t.accesses[i].Region }

// Float64s returns access i's region as a float64 slice. It panics if the
// region is not a *region.Float64 (a task-body programming error).
func (t *Task) Float64s(i int) []float64 {
	return t.accesses[i].Region.(*region.Float64).Data
}

// Float32s returns access i's region as a float32 slice.
func (t *Task) Float32s(i int) []float32 {
	return t.accesses[i].Region.(*region.Float32).Data
}

// Int32s returns access i's region as an int32 slice.
func (t *Task) Int32s(i int) []int32 {
	return t.accesses[i].Region.(*region.Int32).Data
}

// Outcome is the Memoizer's verdict on a ready task.
type Outcome uint8

// Memoizer verdicts.
const (
	// OutcomeRun: execute the task body normally.
	OutcomeRun Outcome = iota
	// OutcomeMemoized: outputs were copied from the THT; skip the body.
	OutcomeMemoized
	// OutcomeDeferred: an in-flight task with the same key will provide
	// the outputs and complete this task (IKT postponed copy). The
	// worker must neither run nor complete it.
	OutcomeDeferred
)

// Memoizer is the ATM hook. OnReady runs on the worker that pulled the
// task before the body would execute; OnFinished runs after a body
// completes (only for tasks whose OnReady returned OutcomeRun).
type Memoizer interface {
	OnReady(t *Task, worker int) Outcome
	OnFinished(t *Task, worker int)
}

// RuntimeBinder is implemented by memoizers that need to complete
// deferred tasks through the runtime (the IKT postponed-copy path).
type RuntimeBinder interface {
	BindRuntime(rt *Runtime)
}

// BatchObserver is optionally implemented by memoizers that want to see
// whole submitted batches. SubmitBatch calls OnBatchSubmitted after every
// task of the batch has been carved and its dependences fully wired, but
// before any task of the batch can be published to a worker — so the
// memoizer never observes a half-wired batch, and whatever per-type or
// per-layout state it prepares here is guaranteed to be in place before
// the first OnReady of the batch.
type BatchObserver interface {
	OnBatchSubmitted(tasks []*Task)
}

// SchedPolicy selects the ready-queue discipline, mirroring the scheduler
// plugins of Nanos++ (the paper's runtime exposes breadth-first and
// depth-first schedulers; memoization behavior is policy-independent but
// reuse distances are not).
type SchedPolicy uint8

// Scheduling policies.
const (
	// PolicyFIFO is breadth-first: tasks run in submission order.
	PolicyFIFO SchedPolicy = iota
	// PolicyLIFO is depth-first: the most recently readied task runs
	// first (improves locality, shortens reuse distances).
	PolicyLIFO
)

// String returns the policy's name.
func (p SchedPolicy) String() string {
	if p == PolicyLIFO {
		return "lifo"
	}
	return "fifo"
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines ("cores"). Zero means 1.
	Workers int
	// Memoizer is the optional ATM hook.
	Memoizer Memoizer
	// Tracer is the optional execution tracer.
	Tracer *trace.Tracer
	// Policy selects the ready-queue discipline (default FIFO).
	Policy SchedPolicy
	// BatchSize is the batch size handed to Batcher(): 0 means
	// DefaultBatchSize, 1 or negative degrades Batcher to per-task
	// Submit (the before/after knob of cmd/atmbench's -batch flag).
	BatchSize int
	// ThrottleWindow fixes the submission-throttle high watermark (the
	// maximum number of submitted-but-uncompleted tasks). Zero selects
	// the adaptive watermark: an EWMA of observed task payload bytes
	// sizes the window so the live task graph stays at roughly half the
	// last-level cache.
	ThrottleWindow int
}

// Runtime is a task-dataflow runtime instance.
//
// Scheduling state is decentralized (see sched.go): each worker owns a
// deque it pushes newly-readied successors onto and steals from peers
// when empty; master-thread submissions go through a sharded injector.
// The dependence registry (regs) is touched only by the master thread,
// and per-task wiring is guarded by the tasks' own locks, so there is no
// global runtime mutex on any hot path.
type Runtime struct {
	workers  int
	memo     Memoizer
	tracer   *trace.Tracer
	policy   SchedPolicy
	priority atomic.Bool // any registered type has a non-zero priority

	typeMu   sync.Mutex
	nextType int

	locals []readyQ // per-worker deques
	inj    []readyQ // injector shards for master/external submissions
	injSeq atomic.Uint32

	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   atomic.Int32
	tokens   int

	// Task accounting is split so the master and the workers never write
	// the same cache line: submitted is master-only, completed is
	// worker-side, and completers check for a sleeping Wait() only when
	// the waiting flag (read-mostly, shared) says one exists.
	waitMu    sync.Mutex
	waitCond  *sync.Cond
	waiters   int // guarded by waitMu
	submitted atomic.Int64
	completed atomic.Int64
	waiting   atomic.Bool // true while waiters > 0

	// Submission throttling (Nanos++-style task creation throttling): a
	// master that outruns the workers is paused once backlogHigh tasks
	// are in flight, keeping the live task graph cache-sized and GC
	// pressure flat. throttled is read-mostly on the completion path.
	// backlogHigh is the current high watermark; with an adaptive window
	// (Config.ThrottleWindow == 0) the master retunes it from a payload
	// EWMA so live-graph bytes track llcTarget, and completers read it
	// atomically for the low-watermark check.
	throttleMu   sync.Mutex
	throttleCond *sync.Cond
	throttled    atomic.Bool
	backlogHigh  atomic.Int64

	closed atomic.Bool
	depth  atomic.Int64 // ready-task count, maintained only when tracing

	// Victim selection: stealOrder[w] lists worker w's victims with
	// LLC-sharing workers first (stealSplit[w] is the tier boundary);
	// see topology.go and sched.go.
	stealOrder [][]int32
	stealSplit []int
	wlocal     []workerLocal

	// Master-thread-only state (Submit is single-goroutine by contract).
	// Tasks are carved out of slabs so a submission storm costs one
	// allocation per taskSlabSize tasks instead of one per task; a slab is
	// collected wholesale once none of its tasks are referenced.
	regs    map[region.Region]*regState
	lastReg region.Region // 1-entry regs cache for same-region resubmits
	lastRS  *regState
	nextID  uint64
	slab    []Task
	slabOff int

	// Adaptive-throttle state (master-only): a sampled EWMA of task
	// payload bytes, refreshed into backlogHigh every watermarkRefresh
	// samples.
	payloadEWMA float64
	noteSeq     uint64
	ewmaTasks   int
	llcTarget   int64
	fixedWindow bool

	// SubmitBatch scratch (master-only), reused across batches.
	batchNpred []int32
	batchReady []*Task
	batchObs   BatchObserver
	batchSize  int
	ptrSlab    []*Task
	ptrOff     int

	wg sync.WaitGroup
}

// taskSlabSize is the number of Task structs per master-side slab.
const taskSlabSize = 64

// npredGuard is the submission-guard bias held in Task.npred while the
// master wires dependences; it is far larger than any real predecessor
// count, so concurrent completions can never drive npred to zero early.
const npredGuard = 1 << 30

// succDone marks a completed task in Task.succ1: once a predecessor's
// slot holds it, no further successors may register there.
var succDone = new(Task)

// Submission-throttle sizing: the high watermark bounds submitted-but-
// uncompleted tasks; Submit/SubmitBatch pause the master above it and
// resume below the low watermark (half). Every in-flight task is
// executable without further submissions (dependences point only
// backwards, and IKT-deferred tasks are completed by an earlier
// in-flight provider), so throttling cannot deadlock. The adaptive
// watermark starts at defaultBacklog and is retuned every
// watermarkRefresh payload samples (one task in eight is sampled) to
// llcTarget / (payload EWMA + task overhead), clamped to
// [minBacklog, maxBacklogCap].
const (
	defaultBacklog    = 4096
	minBacklog        = 64
	maxBacklogCap     = 16384
	watermarkRefresh  = 64
	taskOverheadBytes = 256 // approximate Task struct + queue footprint
)

// DefaultBatchSize is the Batcher batch size when Config.BatchSize is 0.
const DefaultBatchSize = 64

// regState is the per-region dependence registry entry: the last task that
// wrote the region and the readers since that write (the information OmpSs
// keeps per address range). readerInline backs the readers list so the
// common few-readers-per-write window allocates nothing; it is safe to
// reuse after every writer because the registry is master-thread-only and
// reader lists never outlive the next writer's wiring.
type regState struct {
	lastWriter   *Task
	readers      []*Task
	readerInline [4]*Task
}

// clearReaders resets the reader list, nilling the populated inline slots
// so stale *Task pointers do not keep completed tasks (and their slabs)
// reachable. Slots beyond len(readers) are nil by induction (only append
// through readers writes them), so the common reader-free write-after-
// write chain pays no pointer stores at all.
func (rs *regState) clearReaders() {
	n := len(rs.readers)
	if n > len(rs.readerInline) {
		n = len(rs.readerInline)
	}
	for i := 0; i < n; i++ {
		rs.readerInline[i] = nil
	}
	rs.readers = nil
}

// New starts a runtime with cfg.Workers workers. Call Close when done.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	nshards := 1
	if cfg.Workers > 1 {
		nshards = cfg.Workers
		if nshards > 4 {
			nshards = 4
		}
	}
	rt := &Runtime{
		workers: cfg.Workers,
		memo:    cfg.Memoizer,
		tracer:  cfg.Tracer,
		policy:  cfg.Policy,
		locals:  make([]readyQ, cfg.Workers),
		inj:     make([]readyQ, nshards),
		regs:    make(map[region.Region]*regState),
	}
	rt.parkCond = sync.NewCond(&rt.parkMu)
	rt.waitCond = sync.NewCond(&rt.waitMu)
	rt.throttleCond = sync.NewCond(&rt.throttleMu)
	tp := topology()
	rt.llcTarget = tp.effectiveLLCBytes() / 2
	if cfg.ThrottleWindow > 0 {
		rt.fixedWindow = true
		rt.backlogHigh.Store(int64(cfg.ThrottleWindow))
	} else {
		rt.backlogHigh.Store(defaultBacklog)
	}
	switch {
	case cfg.BatchSize == 0:
		rt.batchSize = DefaultBatchSize
	case cfg.BatchSize < 1:
		rt.batchSize = 1
	default:
		rt.batchSize = cfg.BatchSize
	}
	rt.stealOrder, rt.stealSplit = buildStealOrder(cfg.Workers, tp)
	rt.wlocal = make([]workerLocal, cfg.Workers)
	for w := range rt.wlocal {
		// Distinct odd seeds per worker for the steal-start xorshift.
		rt.wlocal[w].rng = uint64(w)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	if b, ok := cfg.Memoizer.(RuntimeBinder); ok {
		b.BindRuntime(rt)
	}
	if bo, ok := cfg.Memoizer.(BatchObserver); ok {
		rt.batchObs = bo
	}
	rt.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// Workers returns the worker count.
func (rt *Runtime) Workers() int { return rt.workers }

// Tracer returns the runtime's tracer (possibly nil).
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// RegisterType registers a task type and returns it.
func (rt *Runtime) RegisterType(cfg TypeConfig) *TaskType {
	rt.typeMu.Lock()
	defer rt.typeMu.Unlock()
	tt := &TaskType{id: rt.nextType, cfg: cfg, rt: rt}
	rt.nextType++
	if cfg.Priority != 0 {
		rt.priority.Store(true)
	}
	return tt
}

// throttle pauses the master while the in-flight task count is at or
// above the high watermark, resuming below the low watermark (half).
func (rt *Runtime) throttle() {
	if rt.submitted.Load()-rt.completed.Load() < rt.backlogHigh.Load() {
		return
	}
	rt.throttleMu.Lock()
	rt.throttled.Store(true)
	for rt.submitted.Load()-rt.completed.Load() >= rt.backlogHigh.Load()/2 {
		rt.throttleCond.Wait()
	}
	rt.throttled.Store(false)
	rt.throttleMu.Unlock()
}

// notePayload feeds one task's payload bytes into the adaptive-throttle
// EWMA and periodically retunes the high watermark so that
// (watermark × mean task bytes) tracks the LLC target. Master-only. Only
// one task in eight is actually measured — submission streams are
// uniform loop nests, so the sampled mean converges to the true mean and
// the steady path pays a counter increment instead of per-access
// NumBytes calls.
func (rt *Runtime) notePayload(t *Task) {
	if rt.fixedWindow {
		return
	}
	rt.noteSeq++
	if rt.noteSeq&7 != 0 {
		return
	}
	bytes := 0
	for _, a := range t.accesses {
		bytes += a.Region.NumBytes()
	}
	if rt.payloadEWMA == 0 {
		rt.payloadEWMA = float64(bytes)
	} else {
		rt.payloadEWMA += (float64(bytes) - rt.payloadEWMA) / 64
	}
	rt.ewmaTasks++
	if rt.ewmaTasks < watermarkRefresh {
		return
	}
	rt.ewmaTasks = 0
	hw := int64(float64(rt.llcTarget) / (rt.payloadEWMA + taskOverheadBytes))
	lo := int64(minBacklog)
	if m := int64(8 * rt.workers); m > lo {
		lo = m
	}
	if hw < lo {
		hw = lo
	}
	if hw > maxBacklogCap {
		hw = maxBacklogCap
	}
	rt.backlogHigh.Store(hw)
}

// BacklogLimit reports the current submission-throttle high watermark.
func (rt *Runtime) BacklogLimit() int { return int(rt.backlogHigh.Load()) }

// carveRaw allocates the next task from the master-side slab and stamps
// its type and id; the caller fills the accesses (the input/output
// partition is computed lazily by ensureRegions).
func (rt *Runtime) carveRaw(tt *TaskType) *Task {
	if rt.slabOff == len(rt.slab) {
		rt.slab = make([]Task, taskSlabSize)
		rt.slabOff = 0
	}
	t := &rt.slab[rt.slabOff]
	rt.slabOff++
	t.typ = tt
	t.id = rt.nextID
	rt.nextID++
	return t
}

// carve creates a task copying the caller's access slice (inline for the
// common ≤2-access shape).
func (rt *Runtime) carve(tt *TaskType, accesses []Access) *Task {
	t := rt.carveRaw(tt)
	if len(accesses) <= len(t.accInline) {
		t.accesses = t.accInline[:copy(t.accInline[:], accesses)]
	} else {
		t.accesses = make([]Access, len(accesses))
		copy(t.accesses, accesses)
	}
	return t
}

// carveOwned is carve for an access slice the caller owns and will not
// reuse (always a spilled BatchEntry list, >2 accesses): the task adopts
// it without copying.
func (rt *Runtime) carveOwned(tt *TaskType, accesses []Access) *Task {
	t := rt.carveRaw(tt)
	t.accesses = accesses
	return t
}

// wire registers t's dependences against the registry and returns the
// number of distinct predecessors found. Tasks with id >= batchStart are
// unpublished members of the batch currently being submitted: the master
// owns both endpoints of such an edge, so it is recorded with plain
// appends — no CAS, no lock, no npred guard. Edges to older (published,
// possibly executing) tasks use the lock-free registration path; before
// the first such edge the submission guard is installed in t.npred, so a
// racing predecessor completion can never drive it to zero early.
// Callers must pass the result to finalizeWiring.
func (rt *Runtime) wire(t *Task, batchStart uint64) int32 {
	// Predecessor dedup: a linear scan over a small inline buffer for the
	// ubiquitous few-predecessor shape, spilling to a map once the count
	// would make the scan quadratic (the kmeans fan-in task reads
	// hundreds of partials, all with distinct last-writers).
	const seenSpill = 32
	var seenBuf [8]*Task
	seen := seenBuf[:0]
	var seenMap map[*Task]struct{}
	npred := int32(0)
	guarded := false
	record := func(p *Task) {
		if seenMap != nil {
			seenMap[p] = struct{}{}
			return
		}
		seen = append(seen, p)
		if len(seen) >= seenSpill {
			seenMap = make(map[*Task]struct{}, 2*seenSpill)
			for _, q := range seen {
				seenMap[q] = struct{}{}
			}
		}
	}
	addPred := func(p *Task) {
		if p == nil || p == t {
			return
		}
		if seenMap != nil {
			if _, dup := seenMap[p]; dup {
				return
			}
		} else {
			for _, q := range seen {
				if q == p {
					return
				}
			}
		}
		if p.id >= batchStart {
			// Intra-batch edge: p is unpublished, cannot run or complete
			// until this batch is published, and only the master touches
			// it — plain memory suffices.
			if p.succs == nil {
				p.succs = p.succInline[:0]
			}
			p.succs = append(p.succs, t)
			record(p)
			npred++
			return
		}
		cur := p.succ1.Load()
		if cur == succDone {
			return // p already completed
		}
		// The guard keeps racing predecessor completions from readying
		// the task before its wiring is finished; it is installed lazily
		// so tasks without cross-batch predecessors pay no npred atomics
		// at all.
		if !guarded {
			t.npred.Store(npredGuard)
			guarded = true
		}
		if cur == nil && p.succ1.CompareAndSwap(nil, t) {
			record(p)
			npred++
			return
		}
		// Slot taken by another successor: spill under the lock.
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			return
		}
		if p.succs == nil {
			p.succs = p.succInline[:0]
		}
		p.succs = append(p.succs, t)
		p.mu.Unlock()
		record(p)
		npred++
	}
	for _, a := range t.accesses {
		rs := rt.lastRS
		if a.Region != rt.lastReg {
			rs = rt.regs[a.Region]
			if rs == nil {
				rs = &regState{}
				rt.regs[a.Region] = rs
			}
			rt.lastReg, rt.lastRS = a.Region, rs
		}
		// Opportunistically drop a completed last writer (succ1 holds the
		// succDone sentinel from completion onwards): a stale *Task in
		// the registry pins the writer's whole allocation slab.
		if lw := rs.lastWriter; lw != nil && lw.succ1.Load() == succDone {
			rs.lastWriter = nil
		}
		switch a.Mode {
		case ModeIn:
			addPred(rs.lastWriter) // RAW
			if rs.readers == nil {
				rs.readers = rs.readerInline[:0]
			}
			rs.readers = append(rs.readers, t)
		case ModeOut, ModeInOut:
			addPred(rs.lastWriter) // WAW (and RAW for inout)
			for _, r := range rs.readers {
				addPred(r) // WAR
			}
			rs.lastWriter = t
			rs.clearReaders()
			if a.Mode == ModeInOut {
				rs.readers = rs.readerInline[:0]
				rs.readers = append(rs.readers, t)
			}
		}
	}
	return npred
}

// finalizeWiring publishes t's predecessor count and reports whether the
// task is initially ready: the single-task (Submit) finalize, where every
// predecessor is an older task. If the guard was installed the balancing
// Add folds in the wired-predecessor count, and a zero result means every
// predecessor already completed; with no guard there were no live
// predecessors at all. SubmitBatch uses its own two-phase finalize — with
// intra-batch edges, all plain counts must be installed before any guard
// drops (see batch.go pass 3).
func (rt *Runtime) finalizeWiring(t *Task, npred int32) bool {
	if t.npred.Load() != 0 { // guard installed by wire()
		return t.npred.Add(npred-npredGuard) == 0
	}
	if npred == 0 {
		return true
	}
	t.npred.Store(npred)
	return false
}

// Submit creates a task of type tt with the given accesses, wires its
// dependences against previously submitted tasks, and schedules it when
// ready. Submit must be called from a single goroutine (the "master
// thread"); task bodies must not submit. For regular loop nests,
// SubmitBatch (or a Batcher) amortizes the per-task submission cost.
func (rt *Runtime) Submit(tt *TaskType, accesses ...Access) *Task {
	if rt.closed.Load() {
		panic("taskrt: Submit after Close")
	}
	rt.throttle()
	t := rt.carve(tt, accesses)

	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateCreate)
		rt.tracer.TaskCreated()
	}

	rt.submitted.Add(1)
	rt.notePayload(t)

	npred := rt.wire(t, t.id) // batchStart = t.id: no intra-batch edges
	if rt.finalizeWiring(t, npred) {
		rt.ready(t)
	}

	if rt.tracer != nil {
		rt.tracer.SetState(rt.tracer.MasterLane(), trace.StateOther)
	}
	return t
}

// worker is the per-worker loop: pull a ready task, consult the memoizer,
// execute or skip, complete. A completion that readies a single successor
// hands it straight back to the same worker (the inner loop), so serial
// task chains run without touching any queue.
func (rt *Runtime) worker(w int) {
	defer rt.wg.Done()
	for {
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateIdle)
		}
		t := rt.next(w)
		if t == nil {
			return
		}
		for t != nil {
			t = rt.step(t, w)
		}
	}
}

// step runs one scheduled task and returns the direct-handoff successor,
// if any.
func (rt *Runtime) step(t *Task, w int) *Task {
	if rt.memo != nil && t.typ.cfg.Memoize {
		switch rt.memo.OnReady(t, w) {
		case OutcomeMemoized:
			return rt.complete(t, w)
		case OutcomeDeferred:
			return nil // the in-flight provider completes it
		}
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateExec)
		}
		t.typ.cfg.Run(t)
		rt.memo.OnFinished(t, w)
	} else {
		if rt.tracer != nil {
			rt.tracer.SetState(w, trace.StateExec)
		}
		t.typ.cfg.Run(t)
	}
	return rt.complete(t, w)
}

// complete marks t done and releases its successors. When called from a
// worker (w >= 0) the first readied successor is returned for direct
// handoff — the worker runs it next without a queue round-trip — and any
// further ones go to the worker's own deque. External completions
// (w == -1) route everything through the injector. Direct handoff is
// skipped when prioritized types exist: a readied task must not overtake
// a queued higher-priority one. A completion that readies k tasks issues
// a single wake of min(k, parked) instead of k independent wakes, so a
// wide fan-out no longer stampedes the park lock.
func (rt *Runtime) complete(t *Task, w int) *Task {
	var keep *Task
	nq := 0
	handoff := w >= 0 && !rt.priority.Load()
	release := func(s *Task) {
		if s.npred.Add(-1) == 0 {
			if handoff && keep == nil {
				keep = s
			} else {
				rt.enqueue(s, w)
				nq++
			}
		}
	}
	// Seal the fast-path successor slot first so no new registrations can
	// race with collecting the spill list.
	if s1 := t.succ1.Swap(succDone); s1 != nil && s1 != succDone {
		release(s1)
	}
	t.mu.Lock()
	t.done = true
	succs := t.succs
	t.succs = nil
	t.mu.Unlock()
	for i, s := range succs {
		// Clear the slot: succs usually aliases t.succInline, and a stale
		// *Task there would keep the successor's whole slab reachable.
		succs[i] = nil
		release(s)
	}
	if nq > 0 {
		if keep == nil && w >= 0 {
			// No direct handoff: the completing worker itself returns to
			// the queues next and consumes one of the readied tasks.
			nq--
		}
		rt.wake(nq)
	}
	done := rt.completed.Add(1)
	if rt.waiting.Load() && done == rt.submitted.Load() {
		rt.waitMu.Lock()
		rt.waitCond.Broadcast()
		rt.waitMu.Unlock()
	}
	if rt.throttled.Load() && rt.submitted.Load()-done <= rt.backlogHigh.Load()/2 {
		rt.throttleMu.Lock()
		rt.throttleCond.Signal()
		rt.throttleMu.Unlock()
	}
	return keep
}

// CompleteExternal completes a task that was deferred by the memoizer
// (OutcomeDeferred) after its outputs have been provided. It must be
// called exactly once per deferred task.
func (rt *Runtime) CompleteExternal(t *Task) { rt.complete(t, -1) }

// Wait blocks until every submitted task has completed (taskwait/barrier).
func (rt *Runtime) Wait() {
	if rt.completed.Load() == rt.submitted.Load() {
		return
	}
	rt.waitMu.Lock()
	rt.waiters++
	rt.waiting.Store(true)
	for rt.completed.Load() != rt.submitted.Load() {
		rt.waitCond.Wait()
	}
	rt.waiters--
	if rt.waiters == 0 {
		rt.waiting.Store(false)
	}
	rt.waitMu.Unlock()
}

// Close waits for outstanding tasks, then stops the workers. The runtime
// must not be used afterwards.
func (rt *Runtime) Close() {
	rt.Wait()
	rt.closed.Store(true)
	rt.parkMu.Lock()
	rt.parkCond.Broadcast()
	rt.parkMu.Unlock()
	rt.wg.Wait()
	// Every task is complete; release the registry's task references so
	// the slabs they pin can be collected even if the Runtime (or the
	// caller's regions) stay reachable.
	for _, rs := range rt.regs {
		rs.lastWriter = nil
		rs.clearReaders()
	}
	rt.tracer.Flush()
}
