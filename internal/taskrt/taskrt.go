// Package taskrt is a task-based dataflow runtime system in the style of
// OmpSs/Nanos++ (§II-C of the paper): the program is decomposed into tasks
// annotated with their data inputs and outputs; the runtime builds the
// task dependence graph (TDG), moves tasks whose dependences are satisfied
// to a ready queue, and executes them on a pool of workers.
//
// The runtime is memoization-agnostic: a Memoizer hook (implemented by
// package core) is consulted when a worker pulls a task from the ready
// queue and when a task body finishes, exactly the two interception points
// of the paper's Fig. 1.
package taskrt

import (
	"fmt"
	"sync"

	"atm/internal/region"
	"atm/internal/trace"
)

// AccessMode declares how a task uses a region, mirroring the
// in/out/inout clauses of OmpSs and OpenMP 4.0 task depend annotations.
type AccessMode uint8

// Access modes.
const (
	ModeIn    AccessMode = iota // read-only data input
	ModeOut                     // write-only data output
	ModeInOut                   // read-modify-write
)

// String returns the OmpSs clause name of the mode.
func (m AccessMode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// Access pairs a region with its access mode.
type Access struct {
	Region region.Region
	Mode   AccessMode
}

// In declares a read-only access.
func In(r region.Region) Access { return Access{Region: r, Mode: ModeIn} }

// Out declares a write-only access.
func Out(r region.Region) Access { return Access{Region: r, Mode: ModeOut} }

// InOut declares a read-modify-write access.
func InOut(r region.Region) Access { return Access{Region: r, Mode: ModeInOut} }

// TaskFunc is a task body. It must be deterministic in its declared
// inputs and write only its declared outputs (§III-E: ATM requires tasks
// whose outputs are a pure function of their annotated inputs).
type TaskFunc func(t *Task)

// TypeConfig declares a task type (one pragma annotation in OmpSs terms).
type TypeConfig struct {
	// Name labels the type in statistics and reports.
	Name string
	// Run is the task body.
	Run TaskFunc
	// Memoize marks the type as suitable for ATM, the programmer
	// guidance of §III-E. Non-memoizable types bypass ATM entirely.
	Memoize bool
	// TauMax is the per-task Chebyshev error bound τmax used by dynamic
	// ATM's training phase (Table II). Zero means the 1% default.
	TauMax float64
	// LTraining is the number of correctly-approximated training tasks
	// required before entering steady state (Table II). Zero means 15,
	// the minimum that lets training reach p = 100%.
	LTraining int
	// Priority biases the ready queue: among ready tasks, higher
	// priority runs first (OmpSs's priority clause). Ties follow the
	// runtime's scheduling policy.
	Priority int
}

// TaskType is a registered task type.
type TaskType struct {
	id  int
	cfg TypeConfig
	rt  *Runtime
}

// ID returns the dense per-runtime type identifier.
func (tt *TaskType) ID() int { return tt.id }

// Name returns the configured name.
func (tt *TaskType) Name() string { return tt.cfg.Name }

// Config returns the type's configuration.
func (tt *TaskType) Config() TypeConfig { return tt.cfg }

// TauMax returns the effective τmax (default 0.01).
func (tt *TaskType) TauMax() float64 {
	if tt.cfg.TauMax <= 0 {
		return 0.01
	}
	return tt.cfg.TauMax
}

// LTraining returns the effective training length (default 15).
func (tt *TaskType) LTraining() int {
	if tt.cfg.LTraining <= 0 {
		return 15
	}
	return tt.cfg.LTraining
}

// Task is one node of the TDG.
type Task struct {
	id       uint64
	typ      *TaskType
	accesses []Access
	ins      []region.Region // ModeIn + ModeInOut regions, declaration order
	outs     []region.Region // ModeOut + ModeInOut regions, declaration order

	// Dependence bookkeeping, guarded by Runtime.mu.
	npred int
	succs []*Task
	done  bool

	// MemoScratch is opaque per-task state for the Memoizer (the hash
	// key and lookup results computed in OnReady, consumed in
	// OnFinished).
	MemoScratch any
}

// ID returns the task's creation-order identifier (Fig. 9's task id).
func (t *Task) ID() uint64 { return t.id }

// Type returns the task's type.
func (t *Task) Type() *TaskType { return t.typ }

// Accesses returns the declared accesses in declaration order.
func (t *Task) Accesses() []Access { return t.accesses }

// Inputs returns the data-input regions (in + inout), the bytes ATM hashes.
func (t *Task) Inputs() []region.Region { return t.ins }

// Outputs returns the data-output regions (out + inout), what ATM copies.
func (t *Task) Outputs() []region.Region { return t.outs }

// Region returns access i's region (convenience for task bodies).
func (t *Task) Region(i int) region.Region { return t.accesses[i].Region }

// Float64s returns access i's region as a float64 slice. It panics if the
// region is not a *region.Float64 (a task-body programming error).
func (t *Task) Float64s(i int) []float64 {
	return t.accesses[i].Region.(*region.Float64).Data
}

// Float32s returns access i's region as a float32 slice.
func (t *Task) Float32s(i int) []float32 {
	return t.accesses[i].Region.(*region.Float32).Data
}

// Int32s returns access i's region as an int32 slice.
func (t *Task) Int32s(i int) []int32 {
	return t.accesses[i].Region.(*region.Int32).Data
}

// Outcome is the Memoizer's verdict on a ready task.
type Outcome uint8

// Memoizer verdicts.
const (
	// OutcomeRun: execute the task body normally.
	OutcomeRun Outcome = iota
	// OutcomeMemoized: outputs were copied from the THT; skip the body.
	OutcomeMemoized
	// OutcomeDeferred: an in-flight task with the same key will provide
	// the outputs and complete this task (IKT postponed copy). The
	// worker must neither run nor complete it.
	OutcomeDeferred
)

// Memoizer is the ATM hook. OnReady runs on the worker that pulled the
// task before the body would execute; OnFinished runs after a body
// completes (only for tasks whose OnReady returned OutcomeRun).
type Memoizer interface {
	OnReady(t *Task, worker int) Outcome
	OnFinished(t *Task, worker int)
}

// RuntimeBinder is implemented by memoizers that need to complete
// deferred tasks through the runtime (the IKT postponed-copy path).
type RuntimeBinder interface {
	BindRuntime(rt *Runtime)
}

// SchedPolicy selects the ready-queue discipline, mirroring the scheduler
// plugins of Nanos++ (the paper's runtime exposes breadth-first and
// depth-first schedulers; memoization behavior is policy-independent but
// reuse distances are not).
type SchedPolicy uint8

// Scheduling policies.
const (
	// PolicyFIFO is breadth-first: tasks run in submission order.
	PolicyFIFO SchedPolicy = iota
	// PolicyLIFO is depth-first: the most recently readied task runs
	// first (improves locality, shortens reuse distances).
	PolicyLIFO
)

// String returns the policy's name.
func (p SchedPolicy) String() string {
	if p == PolicyLIFO {
		return "lifo"
	}
	return "fifo"
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of worker goroutines ("cores"). Zero means 1.
	Workers int
	// Memoizer is the optional ATM hook.
	Memoizer Memoizer
	// Tracer is the optional execution tracer.
	Tracer *trace.Tracer
	// Policy selects the ready-queue discipline (default FIFO).
	Policy SchedPolicy
}

// Runtime is a task-dataflow runtime instance.
type Runtime struct {
	workers  int
	memo     Memoizer
	tracer   *trace.Tracer
	policy   SchedPolicy
	priority bool // any registered type has a non-zero priority
	nextType int

	mu      sync.Mutex // guards dependence registry, queue, counters
	qcond   *sync.Cond
	wcond   *sync.Cond
	queue   []*Task
	regs    map[region.Region]*regState
	pending int
	nextID  uint64
	closed  bool

	wg sync.WaitGroup
}

// regState is the per-region dependence registry entry: the last task that
// wrote the region and the readers since that write (the information OmpSs
// keeps per address range).
type regState struct {
	lastWriter *Task
	readers    []*Task
}

// New starts a runtime with cfg.Workers workers. Call Close when done.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	rt := &Runtime{
		workers: cfg.Workers,
		memo:    cfg.Memoizer,
		tracer:  cfg.Tracer,
		policy:  cfg.Policy,
		regs:    make(map[region.Region]*regState),
	}
	rt.qcond = sync.NewCond(&rt.mu)
	rt.wcond = sync.NewCond(&rt.mu)
	if b, ok := cfg.Memoizer.(RuntimeBinder); ok {
		b.BindRuntime(rt)
	}
	rt.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// Workers returns the worker count.
func (rt *Runtime) Workers() int { return rt.workers }

// Tracer returns the runtime's tracer (possibly nil).
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// RegisterType registers a task type and returns it.
func (rt *Runtime) RegisterType(cfg TypeConfig) *TaskType {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tt := &TaskType{id: rt.nextType, cfg: cfg, rt: rt}
	rt.nextType++
	if cfg.Priority != 0 {
		rt.priority = true
	}
	return tt
}

// Submit creates a task of type tt with the given accesses, wires its
// dependences against previously submitted tasks, and schedules it when
// ready. Submit must be called from a single goroutine (the "master
// thread"); task bodies must not submit.
func (rt *Runtime) Submit(tt *TaskType, accesses ...Access) *Task {
	t := &Task{typ: tt, accesses: accesses}
	for _, a := range accesses {
		if a.Mode == ModeIn || a.Mode == ModeInOut {
			t.ins = append(t.ins, a.Region)
		}
		if a.Mode == ModeOut || a.Mode == ModeInOut {
			t.outs = append(t.outs, a.Region)
		}
	}

	master := rt.tracer.MasterLane()
	rt.tracer.SetState(master, trace.StateCreate)

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		panic("taskrt: Submit after Close")
	}
	t.id = rt.nextID
	rt.nextID++
	rt.pending++
	rt.tracer.TaskCreated()

	seen := map[*Task]bool{}
	addPred := func(p *Task) {
		if p == nil || p == t || p.done || seen[p] {
			return
		}
		seen[p] = true
		p.succs = append(p.succs, t)
		t.npred++
	}
	for _, a := range accesses {
		rs := rt.regs[a.Region]
		if rs == nil {
			rs = &regState{}
			rt.regs[a.Region] = rs
		}
		switch a.Mode {
		case ModeIn:
			addPred(rs.lastWriter) // RAW
			rs.readers = append(rs.readers, t)
		case ModeOut, ModeInOut:
			addPred(rs.lastWriter) // WAW (and RAW for inout)
			for _, r := range rs.readers {
				addPred(r) // WAR
			}
			rs.lastWriter = t
			rs.readers = nil
			if a.Mode == ModeInOut {
				rs.readers = append(rs.readers, t)
			}
		}
	}
	if t.npred == 0 {
		rt.pushLocked(t)
	}
	rt.mu.Unlock()

	rt.tracer.SetState(master, trace.StateOther)
	return t
}

// pushLocked appends t to the ready queue. Caller holds rt.mu.
func (rt *Runtime) pushLocked(t *Task) {
	rt.queue = append(rt.queue, t)
	rt.tracer.RQDepth(len(rt.queue))
	rt.qcond.Signal()
}

// pop blocks until a task is ready or the runtime closes, then removes
// and returns the task selected by the scheduling policy.
func (rt *Runtime) pop() *Task {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for len(rt.queue) == 0 && !rt.closed {
		rt.qcond.Wait()
	}
	if len(rt.queue) == 0 {
		return nil
	}
	idx := 0
	if rt.policy == PolicyLIFO {
		idx = len(rt.queue) - 1
	}
	if rt.priority {
		// Highest priority wins; the policy breaks ties (FIFO keeps
		// the earliest such task, LIFO the latest).
		best := rt.queue[idx].typ.cfg.Priority
		for i, c := range rt.queue {
			p := c.typ.cfg.Priority
			if p > best || (p == best && rt.policy == PolicyLIFO) {
				best, idx = p, i
			}
		}
	}
	t := rt.queue[idx]
	rt.queue = append(rt.queue[:idx], rt.queue[idx+1:]...)
	rt.tracer.RQDepth(len(rt.queue))
	return t
}

// worker is the per-worker loop: pull a ready task, consult the memoizer,
// execute or skip, complete.
func (rt *Runtime) worker(w int) {
	defer rt.wg.Done()
	for {
		rt.tracer.SetState(w, trace.StateIdle)
		t := rt.pop()
		if t == nil {
			return
		}
		if rt.memo != nil && t.typ.cfg.Memoize {
			switch rt.memo.OnReady(t, w) {
			case OutcomeMemoized:
				rt.complete(t)
				continue
			case OutcomeDeferred:
				continue // the in-flight provider completes it
			}
			rt.tracer.SetState(w, trace.StateExec)
			t.typ.cfg.Run(t)
			rt.memo.OnFinished(t, w)
		} else {
			rt.tracer.SetState(w, trace.StateExec)
			t.typ.cfg.Run(t)
		}
		rt.complete(t)
	}
}

// complete marks t done and releases its successors.
func (rt *Runtime) complete(t *Task) {
	rt.mu.Lock()
	t.done = true
	for _, s := range t.succs {
		s.npred--
		if s.npred == 0 {
			rt.pushLocked(s)
		}
	}
	t.succs = nil
	rt.pending--
	if rt.pending == 0 {
		rt.wcond.Broadcast()
	}
	rt.mu.Unlock()
}

// CompleteExternal completes a task that was deferred by the memoizer
// (OutcomeDeferred) after its outputs have been provided. It must be
// called exactly once per deferred task.
func (rt *Runtime) CompleteExternal(t *Task) { rt.complete(t) }

// Wait blocks until every submitted task has completed (taskwait/barrier).
func (rt *Runtime) Wait() {
	rt.mu.Lock()
	for rt.pending > 0 {
		rt.wcond.Wait()
	}
	rt.mu.Unlock()
}

// Close waits for outstanding tasks, then stops the workers. The runtime
// must not be used afterwards.
func (rt *Runtime) Close() {
	rt.Wait()
	rt.mu.Lock()
	rt.closed = true
	rt.qcond.Broadcast()
	rt.mu.Unlock()
	rt.wg.Wait()
	rt.tracer.Flush()
}
