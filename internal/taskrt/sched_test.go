package taskrt

import (
	"runtime"
	"sync/atomic"
	"testing"

	"atm/internal/region"
)

// Stress and semantics tests for the work-stealing scheduler. Run with
// -race: they are written to maximize submit/steal/complete interleaving.

// TestSubmitStorm floods the runtime with independent tasks from the
// master while many workers drain them concurrently (injector + stealing
// under contention, with the submission throttle engaging).
func TestSubmitStorm(t *testing.T) {
	const n = 20000
	rt := New(Config{Workers: 8})
	defer rt.Close()
	var ran atomic.Int64
	regions := make([]*region.Int32, 64)
	for i := range regions {
		regions[i] = region.NewInt32(1)
	}
	tt := rt.RegisterType(TypeConfig{Name: "storm", Run: func(task *Task) {
		ran.Add(1)
	}})
	for i := 0; i < n; i++ {
		// Mostly independent tasks (64 distinct regions): ready at submit.
		rt.Submit(tt, In(regions[i%64]), Out(region.NewFloat64(1)))
	}
	rt.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d of %d", ran.Load(), n)
	}
}

// TestStealHeavyDAG builds wide fan-out/fan-in diamonds so completions
// ready many successors on one worker's deque and the rest must steal.
func TestStealHeavyDAG(t *testing.T) {
	rt := New(Config{Workers: 8, Policy: PolicyLIFO})
	defer rt.Close()
	var ran atomic.Int64
	body := func(task *Task) {
		ran.Add(1)
		// Write the task's last access: it is the writable one in every
		// shape this test submits (source InOut, branch In+InOut, fan-in
		// In...In+InOut).
		d := task.Float64s(len(task.Accesses()) - 1)
		d[0]++
	}
	tt := rt.RegisterType(TypeConfig{Name: "node", Run: body})
	total := 0
	for round := 0; round < 50; round++ {
		src := region.NewFloat64(1)
		rt.Submit(tt, InOut(src)) // source
		total++
		// Fan-out: 32 readers of src, each with its own output.
		outs := make([]*region.Float64, 32)
		for i := range outs {
			outs[i] = region.NewFloat64(1)
			rt.Submit(tt, In(src), InOut(outs[i]))
			total++
		}
		// Fan-in: one task reading every branch output.
		accs := make([]Access, 0, len(outs)+1)
		for _, o := range outs {
			accs = append(accs, In(o))
		}
		sink := region.NewFloat64(1)
		accs = append(accs, InOut(sink))
		rt.Submit(tt, accs...)
		total++
	}
	rt.Wait()
	if int(ran.Load()) != total {
		t.Fatalf("ran %d of %d", ran.Load(), total)
	}
}

// TestWorkerGeneratedTasksAreStolen pins the steal path specifically: one
// long chain executes on (at most) one worker, while its side fan-out
// must be picked up by thieves for the run to finish quickly; correctness
// here is that every task runs exactly once under -race.
func TestWorkerGeneratedTasksAreStolen(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	var ran atomic.Int64
	work := rt.RegisterType(TypeConfig{Name: "w", Run: func(task *Task) {
		ran.Add(1)
		for i := 0; i < 100; i++ {
			runtime.Gosched()
		}
	}})
	chainR := region.NewFloat64(1)
	chain := rt.RegisterType(TypeConfig{Name: "chain", Run: func(task *Task) { ran.Add(1) }})
	prevOuts := []*region.Float64{}
	for i := 0; i < 200; i++ {
		rt.Submit(chain, InOut(chainR))
		o := region.NewFloat64(1)
		prevOuts = append(prevOuts, o)
		// Side task depends on the chain region read-only: readied by the
		// chain task's completion on the chain's worker, then stolen.
		rt.Submit(work, In(chainR), Out(o))
	}
	rt.Wait()
	if ran.Load() != 400 {
		t.Fatalf("ran %d of 400", ran.Load())
	}
	_ = prevOuts
}

// TestFIFOOrderSingleWorker pins the old centralized queue's FIFO
// semantics for master-submitted independent tasks on one worker.
func TestFIFOOrderSingleWorker(t *testing.T) {
	rt := New(Config{Workers: 1, Policy: PolicyFIFO})
	defer rt.Close()
	var order []int
	started := make(chan struct{})
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) {
		close(started)
		<-gate
	}})
	rec := rt.RegisterType(TypeConfig{Name: "rec", Run: func(task *Task) {
		order = append(order, int(task.ID()))
	}})
	rt.Submit(hold, Out(region.NewFloat64(1)))
	<-started
	for i := 0; i < 6; i++ {
		rt.Submit(rec, Out(region.NewFloat64(1)))
	}
	close(gate)
	rt.Wait()
	want := []int{1, 2, 3, 4, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order=%v want %v", order, want)
		}
	}
}

// TestPriorityWithDependences mixes priorities with a dependence chain:
// priorities reorder ready tasks but must never override dataflow.
func TestPriorityWithDependences(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []string
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) { <-gate }})
	lo := rt.RegisterType(TypeConfig{Name: "lo", Priority: 1, Run: func(*Task) { order = append(order, "lo") }})
	hi := rt.RegisterType(TypeConfig{Name: "hi", Priority: 5, Run: func(*Task) { order = append(order, "hi") }})
	dep := region.NewFloat64(1)
	depTail := rt.RegisterType(TypeConfig{Name: "tail", Priority: 9, Run: func(*Task) { order = append(order, "tail") }})

	rt.Submit(hold, Out(region.NewFloat64(1)))
	rt.Submit(lo, InOut(dep))
	rt.Submit(hi, Out(region.NewFloat64(1)))
	// Highest priority but blocked behind lo's write: must still run last
	// of the dependent pair, though its priority cannot help it jump lo.
	rt.Submit(depTail, In(dep), Out(region.NewFloat64(1)))
	close(gate)
	rt.Wait()
	if len(order) != 3 {
		t.Fatalf("order=%v", order)
	}
	if order[0] != "hi" {
		t.Fatalf("highest ready priority must run first: %v", order)
	}
	iLo, iTail := -1, -1
	for i, s := range order {
		switch s {
		case "lo":
			iLo = i
		case "tail":
			iTail = i
		}
	}
	if iLo == -1 || iTail == -1 || iTail < iLo {
		t.Fatalf("dependence violated by priority: %v", order)
	}
}

// TestLIFOEquivalenceSingleWorker cross-checks the deque-based LIFO
// against the old queue's newest-first semantics with interleaved
// dependent tasks.
func TestLIFOEquivalenceSingleWorker(t *testing.T) {
	rt := New(Config{Workers: 1, Policy: PolicyLIFO})
	defer rt.Close()
	var order []int
	started := make(chan struct{})
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) {
		close(started)
		<-gate
	}})
	rec := rt.RegisterType(TypeConfig{Name: "rec", Run: func(task *Task) {
		order = append(order, int(task.ID()))
	}})
	rt.Submit(hold, Out(region.NewFloat64(1)))
	<-started
	for i := 0; i < 5; i++ {
		rt.Submit(rec, Out(region.NewFloat64(1)))
	}
	close(gate)
	rt.Wait()
	want := []int{5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LIFO order=%v want %v", order, want)
		}
	}
}

// TestThrottleReleasesAndCompletes drives far more than the throttle
// window of dependent tasks through a single worker so the submission
// throttle engages and releases repeatedly. A fixed window pins the
// watermark (the adaptive one would grow past these tiny tasks).
func TestThrottleReleasesAndCompletes(t *testing.T) {
	const window = 512
	rt := New(Config{Workers: 1, ThrottleWindow: window})
	defer rt.Close()
	a := region.NewInt32(1)
	tt := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	const n = 6 * window
	for i := 0; i < n; i++ {
		rt.Submit(tt, InOut(a))
	}
	rt.Wait()
	if a.Data[0] != n {
		t.Fatalf("chain under throttle: %d of %d", a.Data[0], n)
	}
}

// TestManyWaitCycles alternates tiny phases with Wait barriers to stress
// the split submitted/completed accounting and its wakeup protocol.
func TestManyWaitCycles(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	r := region.NewInt32(1)
	tt := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	for phase := 0; phase < 500; phase++ {
		rt.Submit(tt, InOut(r))
		rt.Wait()
		if got := r.Data[0]; got != int32(phase+1) {
			t.Fatalf("phase %d: %d", phase, got)
		}
	}
}
