package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"atm/internal/region"
)

// TestSubmitBatchIntraBatchDependences pins RAW/WAW/WAR ordering when
// every edge lives inside one batch (the no-atomics wiring path).
func TestSubmitBatchIntraBatchDependences(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	a, b, c := region.NewFloat64(1), region.NewFloat64(1), region.NewFloat64(1)
	set := rt.RegisterType(TypeConfig{Name: "set", Run: func(task *Task) {
		task.Float64s(0)[0] = 7
	}})
	double := rt.RegisterType(TypeConfig{Name: "double", Run: func(task *Task) {
		task.Float64s(1)[0] = task.Float64s(0)[0] * 2
	}})
	addBoth := rt.RegisterType(TypeConfig{Name: "add", Run: func(task *Task) {
		task.Float64s(2)[0] = task.Float64s(0)[0] + task.Float64s(1)[0]
	}})
	tasks := rt.SubmitBatch([]BatchEntry{
		Desc(set, Out(a)),                     // a = 7
		Desc(double, In(a), Out(b)),           // b = 14 (RAW on a)
		Desc(addBoth, In(a), In(b), InOut(c)), // c = 21 (fan-in)
		Desc(set, Out(c)),                     // c = 7 (WAR on c, then WAW)
	})
	rt.Wait()
	if len(tasks) != 4 {
		t.Fatalf("returned %d tasks", len(tasks))
	}
	if a.Data[0] != 7 || b.Data[0] != 14 || c.Data[0] != 7 {
		t.Fatalf("a=%v b=%v c=%v", a.Data[0], b.Data[0], c.Data[0])
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].ID() != tasks[i-1].ID()+1 {
			t.Fatalf("batch ids not creation-ordered: %d after %d", tasks[i].ID(), tasks[i-1].ID())
		}
	}
}

// TestSubmitBatchCrossBatchDependences chains regions across batches and
// interleaves per-task Submit calls, so the CAS path and the intra-batch
// path wire edges into the same tasks.
func TestSubmitBatchCrossBatchDependences(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()
	a := region.NewInt32(1)
	inc := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	batch := make([]BatchEntry, 0, 8)
	total := 0
	for round := 0; round < 50; round++ {
		batch = batch[:0]
		for i := 0; i < 8; i++ {
			batch = append(batch, Desc(inc, InOut(a)))
		}
		rt.SubmitBatch(batch)
		rt.Submit(inc, InOut(a)) // interleaved per-task submission
		total += 9
	}
	rt.Wait()
	if got := a.Data[0]; got != int32(total) {
		t.Fatalf("WAW chain across batches broke: %d of %d", got, total)
	}
}

// TestSubmitBatchEdgeCases covers the empty batch, the 1-entry batch and
// a batch larger than the task slab.
func TestSubmitBatchEdgeCases(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	if got := rt.SubmitBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d tasks", len(got))
	}
	r := region.NewInt32(1)
	inc := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	if got := rt.SubmitBatch([]BatchEntry{Desc(inc, InOut(r))}); len(got) != 1 {
		t.Fatalf("1-entry batch returned %d tasks", len(got))
	}
	big := make([]BatchEntry, 3*taskSlabSize+5)
	for i := range big {
		big[i] = Desc(inc, InOut(r))
	}
	if got := rt.SubmitBatch(big); len(got) != len(big) {
		t.Fatalf("big batch returned %d of %d tasks", len(got), len(big))
	}
	rt.Wait()
	if want := int32(1 + len(big)); r.Data[0] != want {
		t.Fatalf("chain: %d of %d", r.Data[0], want)
	}
}

// TestBatchEntryReusePanics pins the consumed-descriptor guard: an entry
// whose spilled access list was adopted by a task must not be
// resubmittable.
func TestBatchEntryReusePanics(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	a, b, c := region.NewFloat64(1), region.NewFloat64(1), region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(*Task) {}})
	batch := []BatchEntry{Desc(tt, In(a), In(b), Out(c))} // 3 accesses: spilled
	rt.SubmitBatch(batch)
	rt.Wait()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on resubmitting a consumed spilled entry")
		}
	}()
	rt.SubmitBatch(batch)
}

// TestSubmitBatchPriorities checks that block publication preserves the
// priority discipline: the highest-priority ready task of a batch runs
// first.
func TestSubmitBatchPriorities(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var order []string
	gate := make(chan struct{})
	hold := rt.RegisterType(TypeConfig{Name: "hold", Run: func(*Task) { <-gate }})
	lo := rt.RegisterType(TypeConfig{Name: "lo", Priority: 1, Run: func(*Task) { order = append(order, "lo") }})
	hi := rt.RegisterType(TypeConfig{Name: "hi", Priority: 9, Run: func(*Task) { order = append(order, "hi") }})
	rt.Submit(hold, Out(region.NewFloat64(1)))
	rt.SubmitBatch([]BatchEntry{
		Desc(lo, Out(region.NewFloat64(1))),
		Desc(hi, Out(region.NewFloat64(1))),
		Desc(lo, Out(region.NewFloat64(1))),
	})
	close(gate)
	rt.Wait()
	if len(order) != 3 || order[0] != "hi" {
		t.Fatalf("priority violated through batch publish: %v", order)
	}
}

// TestQuickBatchedDataflowMatchesSerial is the batched twin of
// TestQuickDataflowMatchesSerial: any random access program, chopped into
// random batch sizes (including interleaved per-task Submits), must equal
// serial execution.
func TestQuickBatchedDataflowMatchesSerial(t *testing.T) {
	f := func(ops []op, workers, batchSeed uint8) bool {
		if len(ops) > 80 {
			ops = ops[:80]
		}
		const nregs = 6
		serial := make([]float64, nregs)
		for i := range serial {
			serial[i] = float64(i + 1)
		}
		par := make([]*region.Float64, nregs)
		for i := range par {
			par[i] = region.NewFloat64(1)
			par[i].Data[0] = float64(i + 1)
		}
		w := int(workers%8) + 1
		rt := newRT(w)
		defer rt.Close()
		apply := rt.RegisterType(TypeConfig{Name: "apply", Run: func(task *Task) {
			k := task.Int32s(2)[0]
			dst, src := task.Float64s(0), task.Float64s(1)
			switch k {
			case 0:
				dst[0] += src[0]
			case 1:
				dst[0] = src[0]
			default:
				dst[0] = dst[0]*0.5 + src[0]
			}
		}})
		kinds := make([]*region.Int32, 3)
		for i := range kinds {
			kinds[i] = region.NewInt32(1)
			kinds[i].Data[0] = int32(i)
		}
		var batch []BatchEntry
		bs := uint64(batchSeed)
		nextSplit := func() int { // deterministic pseudo-random 0..7
			bs = bs*6364136223846793005 + 1442695040888963407
			return int(bs >> 61)
		}
		split := nextSplit()
		for _, o := range ops {
			dst := int(o.Dst % nregs)
			src := int(o.A % nregs)
			if dst == src {
				src = (src + 1) % nregs
			}
			k := int(o.Kind % 3)
			switch k {
			case 0:
				serial[dst] += serial[src]
			case 1:
				serial[dst] = serial[src]
			default:
				serial[dst] = serial[dst]*0.5 + serial[src]
			}
			if split == 0 {
				// Interleave a direct Submit between batches.
				rt.Submit(apply, InOut(par[dst]), In(par[src]), In(kinds[k]))
				split = nextSplit()
				continue
			}
			batch = append(batch, Desc(apply, InOut(par[dst]), In(par[src]), In(kinds[k])))
			if len(batch) >= split {
				rt.SubmitBatch(batch)
				batch = batch[:0]
				split = nextSplit()
			}
		}
		if len(batch) > 0 {
			rt.SubmitBatch(batch)
		}
		rt.Wait()
		for i := range serial {
			if par[i].Data[0] != serial[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchAllocs pins the batched master path at ≤1 allocation per
// batch for ≤2-access tasks: the returned []*Task (itself carved from a
// pointer slab) plus the amortized 64-task slab stay under one
// allocation per 16-task batch.
func TestSubmitBatchAllocs(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	tt := rt.RegisterType(TypeConfig{Name: "noop", Run: func(*Task) {}})
	regions := make([]*region.Float64, 16)
	for i := range regions {
		regions[i] = region.NewFloat64(4)
	}
	batch := make([]BatchEntry, 16)
	fill := func() {
		for i := range batch {
			batch[i] = Desc(tt, InOut(regions[i]))
		}
	}
	fill()
	rt.SubmitBatch(batch) // warm the registry and scratch buffers
	rt.Wait()
	allocs := testing.AllocsPerRun(100, func() {
		fill()
		rt.SubmitBatch(batch)
		rt.Wait()
	})
	if allocs > 1 {
		t.Fatalf("SubmitBatch allocates %.2f per 16-task batch, want ≤ 1", allocs)
	}
}

// TestBatcherDegradesToSubmit pins the -batch 0 semantics: a size-1
// batcher must behave exactly like per-task Submit (and never buffer).
func TestBatcherDegradesToSubmit(t *testing.T) {
	rt := New(Config{Workers: 2, BatchSize: -1})
	defer rt.Close()
	a := region.NewInt32(1)
	inc := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	sb := rt.Batcher()
	for i := 0; i < 100; i++ {
		sb.Add(inc, InOut(a))
	}
	// No Flush: per-task mode must have submitted everything already.
	rt.Wait()
	if a.Data[0] != 100 {
		t.Fatalf("per-task batcher ran %d of 100", a.Data[0])
	}
}

// TestBatcherFlushBoundaries drives a batcher whose adds never align with
// its batch size, ensuring partial flushes deliver every task.
func TestBatcherFlushBoundaries(t *testing.T) {
	rt := New(Config{Workers: 4, BatchSize: 7})
	defer rt.Close()
	a := region.NewInt32(1)
	inc := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	sb := rt.Batcher()
	const n = 100 // not a multiple of 7
	for i := 0; i < n; i++ {
		sb.Add(inc, InOut(a))
	}
	sb.Flush()
	rt.Wait()
	if a.Data[0] != n {
		t.Fatalf("batcher delivered %d of %d", a.Data[0], n)
	}
	sb.Flush() // idempotent on empty
	rt.Wait()
}

// batchStressMemoizer defers every 5th memoizable task and completes the
// deferred set whenever a provider finishes — CompleteExternal firing
// concurrently with SubmitBatch wiring, the race the npred guard and the
// publication ordering must survive.
type batchStressMemoizer struct {
	mu       sync.Mutex
	rt       *Runtime
	n        int
	inflight int
	deferred []*Task
}

func (m *batchStressMemoizer) BindRuntime(rt *Runtime) { m.rt = rt }

func (m *batchStressMemoizer) OnReady(t *Task, worker int) Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n++
	// Defer only while a provider is executing (the IKT's contract):
	// that provider's OnFinished — which collects the deferred list
	// under the same lock — has not run yet, so every deferred task is
	// guaranteed a completer and Wait cannot hang.
	if m.n%5 == 0 && m.inflight > 0 {
		m.deferred = append(m.deferred, t)
		return OutcomeDeferred
	}
	m.inflight++
	return OutcomeRun
}

func (m *batchStressMemoizer) OnFinished(t *Task, worker int) {
	m.mu.Lock()
	m.inflight--
	serve := m.deferred
	m.deferred = nil
	m.mu.Unlock()
	for _, d := range serve {
		d.Outputs()[0].(*region.Float64).Data[0] = 1
		m.rt.CompleteExternal(d)
	}
}

// TestBatchSubmitStress interleaves Submit, SubmitBatch, prioritized
// types and CompleteExternal under -race: every dependence flavor (intra-
// batch, cross-batch, cross-to-running) wires while workers complete,
// steal and externally finish tasks.
func TestBatchSubmitStress(t *testing.T) {
	m := &batchStressMemoizer{}
	rt := New(Config{Workers: 8, Memoizer: m, ThrottleWindow: 512})
	defer rt.Close()
	var ran atomic.Int64
	shared := make([]*region.Float64, 16)
	for i := range shared {
		shared[i] = region.NewFloat64(1)
	}
	work := rt.RegisterType(TypeConfig{Name: "work", Memoize: true, Run: func(task *Task) {
		ran.Add(1)
		task.Outputs()[0].(*region.Float64).Data[0] = 1
	}})
	prio := rt.RegisterType(TypeConfig{Name: "prio", Priority: 3, Run: func(task *Task) {
		ran.Add(1)
	}})
	plain := rt.RegisterType(TypeConfig{Name: "plain", Run: func(task *Task) {
		ran.Add(1)
	}})

	batch := make([]BatchEntry, 0, 32)
	submitted := 0
	for round := 0; round < 300; round++ {
		batch = batch[:0]
		for i := 0; i < 16; i++ {
			// Chains through the shared regions create cross-batch edges
			// to possibly-running tasks; neighbors in the batch create
			// intra-batch edges.
			s := shared[(round+i)%len(shared)]
			batch = append(batch, Desc(work, In(s), Out(region.NewFloat64(1))))
			batch = append(batch, Desc(plain, InOut(s)))
		}
		rt.SubmitBatch(batch)
		submitted += len(batch)
		rt.Submit(prio, InOut(shared[round%len(shared)]))
		submitted++
		if round%50 == 49 {
			rt.Wait()
		}
	}
	rt.Wait()
	m.mu.Lock()
	deferredLeft := len(m.deferred)
	m.mu.Unlock()
	if deferredLeft != 0 {
		t.Fatalf("%d deferred tasks never completed", deferredLeft)
	}
	// Every task either ran or was deferred-and-served; Wait returning
	// proves completion, ran counts the executed subset.
	if ran.Load() == 0 || ran.Load() > int64(submitted) {
		t.Fatalf("ran=%d submitted=%d", ran.Load(), submitted)
	}
}

// batchObserverProbe records OnBatchSubmitted invocations and fails the
// ordering contract if any task of a batch reaches OnReady before its
// batch was observed.
type batchObserverProbe struct {
	mu       sync.Mutex
	batches  [][]uint64
	observed map[uint64]bool
	early    atomic.Int64
}

func (m *batchObserverProbe) OnBatchSubmitted(tasks []*Task) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint64, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID()
		m.observed[t.ID()] = true
	}
	m.batches = append(m.batches, ids)
}

func (m *batchObserverProbe) OnReady(t *Task, worker int) Outcome {
	m.mu.Lock()
	ok := m.observed[t.ID()]
	m.mu.Unlock()
	if !ok {
		m.early.Add(1)
	}
	return OutcomeRun
}

func (m *batchObserverProbe) OnFinished(t *Task, worker int) {}

// TestBatchObserverOrdering pins the BatchObserver contract: called once
// per batch, with every task of the batch, strictly before any of those
// tasks' OnReady.
func TestBatchObserverOrdering(t *testing.T) {
	m := &batchObserverProbe{observed: make(map[uint64]bool)}
	rt := New(Config{Workers: 4, Memoizer: m})
	defer rt.Close()
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "t", Memoize: true, Run: func(*Task) {}})
	for round := 0; round < 20; round++ {
		batch := make([]BatchEntry, 8)
		for i := range batch {
			// Mix an intra-batch chain with independent tasks.
			if i%2 == 0 {
				batch[i] = Desc(tt, InOut(r))
			} else {
				batch[i] = Desc(tt, Out(region.NewFloat64(1)))
			}
		}
		rt.SubmitBatch(batch)
	}
	rt.Wait()
	if m.early.Load() != 0 {
		t.Fatalf("%d tasks reached OnReady before their batch was observed", m.early.Load())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) != 20 {
		t.Fatalf("observer called %d times for 20 batches", len(m.batches))
	}
	for _, ids := range m.batches {
		if len(ids) != 8 {
			t.Fatalf("observer saw %d of 8 tasks", len(ids))
		}
	}
}

// TestSubmitBatchChainHammer regression-tests the pass-3 finalize race:
// with parallel WAW chains spanning many batches, a cross-batch
// predecessor completing mid-finalize could ready, run and complete an
// earlier batch task — decrementing an in-batch successor whose plain
// count was not yet installed, losing the decrement and hanging Wait.
// High batch turnover over few chains maximizes that window.
func TestSubmitBatchChainHammer(t *testing.T) {
	rt := New(Config{Workers: 8, ThrottleWindow: 1 << 20})
	defer rt.Close()
	const (
		nchains = 4
		batches = 3000
		perB    = 32
	)
	chains := make([]*region.Int32, nchains)
	for i := range chains {
		chains[i] = region.NewInt32(1)
	}
	inc := rt.RegisterType(TypeConfig{Name: "inc", Run: func(task *Task) {
		task.Int32s(0)[0]++
	}})
	batch := make([]BatchEntry, 0, perB)
	for b := 0; b < batches; b++ {
		batch = batch[:0]
		for i := 0; i < perB; i++ {
			batch = append(batch, Desc(inc, InOut(chains[(b*perB+i)%nchains])))
		}
		rt.SubmitBatch(batch)
	}
	rt.Wait()
	want := int32(batches * perB / nchains)
	for i, c := range chains {
		if c.Data[0] != want {
			t.Fatalf("chain %d: %d of %d increments", i, c.Data[0], want)
		}
	}
}

// TestAdaptiveThrottleWatermark checks the EWMA-driven window: large task
// payloads must shrink it toward the floor, tiny payloads must raise it
// toward the cap, and a fixed window must never move.
func TestAdaptiveThrottleWatermark(t *testing.T) {
	run := func(elems, n int, window int) int {
		rt := New(Config{Workers: 2, ThrottleWindow: window})
		defer rt.Close()
		tt := rt.RegisterType(TypeConfig{Name: "t", Run: func(*Task) {}})
		r := region.NewFloat64(elems)
		for i := 0; i < n; i++ {
			rt.Submit(tt, InOut(r))
		}
		rt.Wait()
		return rt.BacklogLimit()
	}
	const n = 4 * 8 * watermarkRefresh // 1-in-8 payload sampling
	big := run(1<<20, n, 0)            // 8 MiB payload per task
	if big >= defaultBacklog {
		t.Fatalf("8 MiB tasks should shrink the watermark below %d, got %d", defaultBacklog, big)
	}
	small := run(1, n, 0) // 8 B payload per task
	if small <= defaultBacklog {
		t.Fatalf("tiny tasks should raise the watermark above %d, got %d", defaultBacklog, small)
	}
	if small > maxBacklogCap {
		t.Fatalf("watermark exceeded cap: %d", small)
	}
	if fixed := run(1<<20, n, 777); fixed != 777 {
		t.Fatalf("fixed window moved: %d", fixed)
	}
	if big >= small {
		t.Fatalf("watermark not payload-sensitive: big=%d small=%d", big, small)
	}
}
