package taskrt

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFakeCPU lays out one cpuN directory with an L1 and an LLC entry.
func writeFakeCPU(t *testing.T, root string, cpu int, llcSize, llcShared string) {
	t.Helper()
	for idx, f := range []struct{ level, size, typ, shared string }{
		{"1", "32K", "Data", ""},
		{"3", llcSize, "Unified", llcShared},
	} {
		dir := filepath.Join(root, "cpu"+itoa(cpu), "cache", "index"+itoa(idx))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		shared := f.shared
		if shared == "" {
			shared = itoa(cpu)
		}
		for name, val := range map[string]string{
			"level": f.level, "size": f.size, "type": f.typ, "shared_cpu_list": shared,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(val+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestReadCacheTopologyTwoLLCs parses a synthetic two-socket tree: CPUs
// 0-3 share one 16M LLC slice, CPUs 4-7 another.
func TestReadCacheTopologyTwoLLCs(t *testing.T) {
	root := t.TempDir()
	for cpu := 0; cpu < 8; cpu++ {
		shared := "0-3"
		if cpu >= 4 {
			shared = "4-7"
		}
		writeFakeCPU(t, root, cpu, "16384K", shared)
	}
	tp := readCacheTopology(root)
	if tp.ncpu != 8 || tp.nLLC != 2 {
		t.Fatalf("ncpu=%d nLLC=%d", tp.ncpu, tp.nLLC)
	}
	if tp.llcBytes != 16384<<10 {
		t.Fatalf("llcBytes=%d", tp.llcBytes)
	}
	for cpu := 0; cpu < 8; cpu++ {
		want := tp.cpuLLC[0]
		if cpu >= 4 {
			want = tp.cpuLLC[4]
		}
		if tp.cpuLLC[cpu] != want {
			t.Fatalf("cpu %d group %d want %d", cpu, tp.cpuLLC[cpu], want)
		}
	}
	if tp.cpuLLC[0] == tp.cpuLLC[4] {
		t.Fatal("sockets must land in distinct LLC groups")
	}
}

// TestReadCacheTopologyMissing returns the zero topology for absent trees
// (the portable fallback path).
func TestReadCacheTopologyMissing(t *testing.T) {
	tp := readCacheTopology(filepath.Join(t.TempDir(), "nonexistent"))
	if tp.nLLC != 0 || tp.llcBytes != 0 {
		t.Fatalf("expected zero topology, got %+v", tp)
	}
	if got := tp.effectiveLLCBytes(); got != 8<<20 {
		t.Fatalf("fallback LLC=%d", got)
	}
}

// TestParseCacheSize covers the sysfs size suffixes.
func TestParseCacheSize(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int64
	}{
		{"32K", 32 << 10}, {"2048K", 2048 << 10}, {"36M", 36 << 20},
		{"1G", 1 << 30}, {"123", 123}, {"", 0}, {"junk", 0},
	} {
		if got := parseCacheSize(c.in); got != c.want {
			t.Fatalf("parseCacheSize(%q)=%d want %d", c.in, got, c.want)
		}
	}
}

// TestBuildStealOrderLLCFirst checks the two-tier victim order on the
// synthetic two-LLC topology: same-group victims precede remote ones.
func TestBuildStealOrderLLCFirst(t *testing.T) {
	tp := cacheTopo{
		llcBytes: 16 << 20,
		nLLC:     2,
		ncpu:     8,
		cpuLLC:   map[int]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1, 7: 1},
	}
	order, split := buildStealOrder(8, tp)
	for w := 0; w < 8; w++ {
		if len(order[w]) != 7 {
			t.Fatalf("worker %d has %d victims", w, len(order[w]))
		}
		if split[w] != 3 {
			t.Fatalf("worker %d near tier = %d, want 3", w, split[w])
		}
		myGroup := tp.cpuLLC[w]
		for i, v := range order[w] {
			near := i < split[w]
			if (tp.cpuLLC[int(v)] == myGroup) != near {
				t.Fatalf("worker %d victim %d (idx %d) in wrong tier", w, v, i)
			}
			if int(v) == w {
				t.Fatalf("worker %d lists itself", w)
			}
		}
	}
	// More workers than CPUs: mapping wraps, everything stays in-range.
	order16, split16 := buildStealOrder(16, tp)
	for w := range order16 {
		if len(order16[w]) != 15 || split16[w] < 0 || split16[w] > 15 {
			t.Fatalf("worker %d: victims=%d split=%d", w, len(order16[w]), split16[w])
		}
	}
}

// TestBuildStealOrderFallback checks the single-tier fallback when the
// topology is unknown: all victims in the remote tier (random start
// applies to the whole list).
func TestBuildStealOrderFallback(t *testing.T) {
	order, split := buildStealOrder(4, cacheTopo{})
	for w := 0; w < 4; w++ {
		if split[w] != 0 {
			t.Fatalf("unknown topology must produce an empty near tier, got %d", split[w])
		}
		if len(order[w]) != 3 {
			t.Fatalf("worker %d has %d victims", w, len(order[w]))
		}
	}
}
