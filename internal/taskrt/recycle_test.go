package taskrt

import (
	"strings"
	"sync/atomic"
	"testing"

	"atm/internal/region"
)

// TestSlabRecyclingReusesMemory walks a slab through its full recycle
// lifecycle: filled → parked in liveSlabs → retired to the free list by
// the first submission after a fence → re-carved, handing out the same
// Task cells again with fresh identity.
func TestSlabRecyclingReusesMemory(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "noop", Run: func(*Task) {}})

	// Wave 1 exactly fills the first slab.
	first := rt.Submit(tt, InOut(r))
	for i := 1; i < taskSlabSize; i++ {
		rt.Submit(tt, InOut(r))
	}
	slab1 := rt.slab
	rt.Wait()

	// Wave 2: the first carve moves the full slab to liveSlabs (nothing
	// retires yet — the fence's retirement runs before the carve, when
	// the slab is still current).
	rt.Submit(tt, InOut(r))
	if len(rt.liveSlabs) != 1 || rt.liveSlabs[0] != slab1 {
		t.Fatalf("full slab not parked in liveSlabs")
	}
	rt.Wait()

	// Wave 3: the first submission after this fence retires slab 1.
	rt.Submit(tt, InOut(r))
	if len(rt.freeSlabs) != 1 || rt.freeSlabs[0] != slab1 {
		t.Fatalf("fence did not retire the full slab to the free list")
	}
	if !slab1.recycled || slab1.gen.Load() != 1 {
		t.Fatalf("retired slab not marked recycled with a bumped generation (recycled=%v gen=%d)",
			slab1.recycled, slab1.gen.Load())
	}

	// Fill the current slab; the next carve must pop slab 1 and reuse its
	// first cell — same address, fresh task.
	for i := rt.slabOff; i < taskSlabSize; i++ {
		rt.Submit(tt, InOut(r))
	}
	reborn := rt.Submit(tt, Out(r))
	if reborn != first {
		t.Fatalf("recycled slab did not hand back the same cell (got %p, want %p)", reborn, first)
	}
	if len(rt.freeSlabs) != 0 {
		t.Fatalf("free list not drained after reuse")
	}
	rt.Wait()
	if reborn.sgen != 1 || reborn.id == 0 {
		t.Fatalf("re-carved cell not restamped (sgen=%d id=%d)", reborn.sgen, reborn.id)
	}
	// The lazy input/output partition must reflect the NEW accesses, not
	// the recycled cell's old ones (wave 1 used InOut: 1 input + 1
	// output; the reborn task used Out: 0 inputs).
	if n := len(reborn.Inputs()); n != 0 {
		t.Fatalf("recycled cell kept its old region partition: %d inputs, want 0", n)
	}
}

// TestRecycleBoundedFreeList pins the free-list bound: retiring far more
// slabs than one throttle window's worth must drop the excess to the GC.
func TestRecycleBoundedFreeList(t *testing.T) {
	rt := New(Config{Workers: 2, ThrottleWindow: 128})
	defer rt.Close()
	r := region.NewFloat64(1)
	tt := rt.RegisterType(TypeConfig{Name: "noop", Run: func(*Task) {}})
	limit := 128/taskSlabSize + 2
	for wave := 0; wave < 4*limit; wave++ {
		for i := 0; i < taskSlabSize; i++ {
			rt.Submit(tt, InOut(r))
		}
		rt.Wait()
	}
	if len(rt.freeSlabs) > limit {
		t.Fatalf("free list grew to %d slabs, bound is %d", len(rt.freeSlabs), limit)
	}
}

// TestStrayFenceDoesNotRecycleLiveSlabs pins consumeFence's quiescence
// guard: a fence flag raised while tasks are still in flight (Wait may
// be called from any goroutine, and can race a batch between carving
// and counting) must not retire slabs — their cells hold live tasks.
func TestStrayFenceDoesNotRecycleLiveSlabs(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	gate := make(chan struct{})
	block := rt.RegisterType(TypeConfig{Name: "block", Run: func(*Task) { <-gate }})
	slab1 := rt.slab
	// Fill the first slab with blocked tasks, plus one more so the full
	// slab parks in liveSlabs.
	for i := 0; i <= taskSlabSize; i++ {
		rt.Submit(block, InOut(region.NewFloat64(1)))
	}
	if len(rt.liveSlabs) != 1 {
		t.Fatalf("full slab not parked")
	}
	// Stray fence while every task is still in flight: the next
	// submission must refuse to retire.
	rt.fencePending.Store(true)
	rt.Submit(block, InOut(region.NewFloat64(1)))
	if len(rt.freeSlabs) != 0 || slab1.gen.Load() != 0 {
		t.Fatalf("stray fence recycled slabs holding %d live tasks", taskSlabSize)
	}
	close(gate)
	rt.Wait()
	// A true barrier retires as usual.
	rt.Submit(block, InOut(region.NewFloat64(1)))
	if len(rt.freeSlabs) != 1 || slab1.gen.Load() != 1 {
		t.Fatalf("legitimate fence did not retire the slab (free=%d gen=%d)", len(rt.freeSlabs), slab1.gen.Load())
	}
	rt.Wait()
}

// deferOnceMemoizer defers the first memoizable task it sees and hands it
// to the test through a channel; every other task runs normally.
type deferOnceMemoizer struct {
	deferred chan *Task
	once     atomic.Bool
}

func (m *deferOnceMemoizer) OnReady(t *Task, worker int) Outcome {
	if m.once.CompareAndSwap(false, true) {
		m.deferred <- t
		return OutcomeDeferred
	}
	return OutcomeRun
}

func (m *deferOnceMemoizer) OnFinished(*Task, int) {}

// TestStaleCompleteExternalPanics pins the slab-generation guard: a
// CompleteExternal straggler arriving after a fence has retired the
// task's slab must panic loudly instead of silently corrupting a
// recycled cell.
func TestStaleCompleteExternalPanics(t *testing.T) {
	m := &deferOnceMemoizer{deferred: make(chan *Task, 1)}
	rt := New(Config{Workers: 2, Memoizer: m})
	defer rt.Close()
	r := region.NewFloat64(1)
	memo := rt.RegisterType(TypeConfig{Name: "memo", Memoize: true, Run: func(*Task) {}})
	noop := rt.RegisterType(TypeConfig{Name: "noop", Run: func(*Task) {}})

	rt.Submit(memo, InOut(r))
	stale := <-m.deferred
	rt.CompleteExternal(stale) // the legal, exactly-once completion
	// Fill the rest of the slab, then drive it through park → retire
	// (two fences) without re-carving the stale task's cell.
	for i := 1; i < taskSlabSize; i++ {
		rt.Submit(noop, InOut(r))
	}
	rt.Wait()
	rt.Submit(noop, InOut(r)) // parks the full slab
	rt.Wait()
	rt.Submit(noop, InOut(r)) // retires it: stale's generation stamp is now behind
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("CompleteExternal on a fence-retired task did not panic")
		}
		s, ok := p.(string)
		if !ok || !strings.Contains(s, "completion fence") {
			t.Fatalf("unexpected panic: %v", p)
		}
		// The message must carry both recycle generations — the slab's
		// current one and the task's carve-time stamp — so a straggler
		// report says how far behind the pointer is (here: one fence).
		if !strings.Contains(s, "generation now 1") || !strings.Contains(s, "carved at generation 0") {
			t.Fatalf("panic message missing the two recycle generations: %q", s)
		}
		rt.Wait()
	}()
	rt.CompleteExternal(stale)
}

// TestFenceRecycleCompleteExternalStress fences every round under -race:
// slab recycling churns while deferred tasks complete through
// CompleteExternal on worker goroutines right up to each fence, and
// cross-fence region reuse exercises the lazy regState refresh against
// re-carved cells.
func TestFenceRecycleCompleteExternalStress(t *testing.T) {
	m := &batchStressMemoizer{}
	rt := New(Config{Workers: 4, Memoizer: m, ThrottleWindow: 256})
	defer rt.Close()
	shared := make([]*region.Float64, 8)
	for i := range shared {
		shared[i] = region.NewFloat64(1)
	}
	var ran atomic.Int64
	work := rt.RegisterType(TypeConfig{Name: "work", Memoize: true, Run: func(task *Task) {
		ran.Add(1)
		task.Outputs()[0].(*region.Float64).Data[0] = 1
	}})
	plain := rt.RegisterType(TypeConfig{Name: "plain", Run: func(task *Task) { ran.Add(1) }})

	rounds := 150
	if testing.Short() {
		rounds = 30
	}
	batch := make([]BatchEntry, 0, 48)
	for round := 0; round < rounds; round++ {
		batch = batch[:0]
		for i := 0; i < 16; i++ {
			s := shared[(round+i)%len(shared)]
			batch = append(batch, Desc(work, In(s), Out(region.NewFloat64(1))))
			batch = append(batch, Desc(plain, InOut(s)))
			batch = append(batch, Desc(plain, In(s)))
		}
		rt.SubmitBatch(batch)
		rt.Wait() // fence every round: maximal recycle churn
	}
	m.mu.Lock()
	left := len(m.deferred)
	m.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d deferred tasks never completed", left)
	}
	if ran.Load() == 0 {
		t.Fatal("nothing ran")
	}
}
