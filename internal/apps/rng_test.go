package apps

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 50; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped (xorshift fixed point)")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64=%v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32=%v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn=%d", n)
		}
	}
}

func TestRNGUniformish(t *testing.T) {
	r := NewRNG(123)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[int(r.Float64()*buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Fatalf("bucket %d has %d of %d samples", b, c, n)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean=%v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance=%v", variance)
	}
}

func TestScaleStrings(t *testing.T) {
	if ScaleTest.String() != "test" || ScaleBench.String() != "bench" || ScalePaper.String() != "paper" {
		t.Fatal("scale names")
	}
	if Scale(9).String() != "unknown" {
		t.Fatal("unknown scale")
	}
}
