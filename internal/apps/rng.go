package apps

import "math"

// RNG is a small deterministic generator (xorshift64*) used by the
// workload builders. Workloads must be reproducible so that baseline and
// ATM runs operate on identical inputs; math/rand would also work, but a
// self-contained generator keeps the byte streams stable across Go
// releases.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. A zero seed is replaced with a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller, one value
// per call; simple and deterministic).
func (r *RNG) NormFloat64() float64 {
	// Marsaglia polar method without rejection bias concerns for
	// benchmark data: retry until inside the unit circle.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
