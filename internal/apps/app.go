// Package apps defines the common shape of the six evaluated benchmark
// applications (Table I): financial analysis (Blackscholes, Swaptions),
// stencil computation (Gauss-Seidel, Jacobi), machine learning (Kmeans)
// and linear algebra (SparseLU).
//
// Each application constructs a fresh deterministic workload, registers
// its task types with a runtime, submits its task graph, and exposes the
// outputs on which the paper measures correctness. Determinism matters
// twice: ATM requires task bodies that are pure functions of their
// declared inputs (§III-E), and the harness compares an ATM run against a
// baseline run of an identical workload instance.
package apps

import (
	"atm/internal/region"
	"atm/internal/taskrt"
)

// Scale selects a workload size.
type Scale int

// Workload scales.
const (
	// ScaleTest is tiny, for unit and integration tests.
	ScaleTest Scale = iota
	// ScaleBench is the default harness size: large enough that task
	// bodies dominate scheduling, small enough for repeated sweeps.
	ScaleBench
	// ScalePaper approximates the paper's input sizes (Table I).
	ScalePaper
)

// String returns the scale's name.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleBench:
		return "bench"
	case ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}

// App is one benchmark instance. Instances are single-use: build a fresh
// one per run.
type App interface {
	// Name returns the benchmark's name as used in the paper's tables.
	Name() string
	// Run registers task types on rt, submits the whole task graph and
	// waits for completion.
	Run(rt *taskrt.Runtime)
	// Result returns the output regions correctness is measured on
	// (Table I, "Correctness Measured on").
	Result() []region.Region
	// Correctness compares this (ATM) run against a reference run of an
	// identical workload and returns the paper's correctness percentage
	// (100 − relative error·100, clamped to [0,100]). SparseLU overrides
	// the metric with the |A−LU|²/|A|² residual of equation 4.
	Correctness(ref App) float64
	// MemoTaskInputBytes reports the memoized task type's input size in
	// bytes (Table I, "Task Inputs Size").
	MemoTaskInputBytes() int
	// FootprintBytes estimates the application's data footprint, the
	// denominator of Table III's memory-overhead ratio.
	FootprintBytes() int
}

// Factory builds a fresh workload instance at the given scale.
type Factory func(scale Scale) App
