// Package blackscholes implements the Blackscholes benchmark (Table I):
// analytic pricing of a portfolio of European options with the
// Black–Scholes closed-form solution, taskified as in PARSECSs with a
// single task type (bs_thread) that prices one block of options.
//
// Redundancy structure (§V-D): the PARSEC native input replicates a small
// set of distinct options to reach 10 million entries, and the program
// repeats the whole pricing algorithm for several iterations. Both effects
// are reproduced here: the portfolio tiles a pool of distinct options
// whose period is a multiple of the block size, and the task graph prices
// the portfolio for a configurable number of iterations. Most redundancy
// is therefore generated early in the execution — the Fig. 9 curve.
package blackscholes

import (
	"math"

	"atm/internal/apps"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// attrs is the number of float32 attributes per option: spot, strike,
// rate, volatility, time-to-maturity, type flag (call/put).
const attrs = 6

// Params sizes a workload.
type Params struct {
	// NumOptions is the portfolio size.
	NumOptions int
	// BlockSize is the number of options priced per task.
	BlockSize int
	// DistinctBlocks is the number of distinct option blocks the
	// portfolio tiles; NumOptions/BlockSize tasks cycle through them.
	DistinctBlocks int
	// Iterations repeats the pricing algorithm, as the PARSEC kernel
	// does (the paper reports 50% reuse even with a single iteration).
	Iterations int
	// Seed fixes the generated portfolio.
	Seed uint64
}

// ParamsFor returns the workload parameters at a scale. ScalePaper follows
// Table I: 393,216 bytes of task input (16,384 options × 6 floats × 4 B)
// and about 6,109 tasks.
func ParamsFor(scale apps.Scale) Params {
	switch scale {
	case apps.ScalePaper:
		return Params{NumOptions: 10_000_000, BlockSize: 16384, DistinctBlocks: 64, Iterations: 10, Seed: 42}
	case apps.ScaleBench:
		return Params{NumOptions: 196_608, BlockSize: 2048, DistinctBlocks: 12, Iterations: 6, Seed: 42}
	default:
		return Params{NumOptions: 8192, BlockSize: 512, DistinctBlocks: 4, Iterations: 3, Seed: 42}
	}
}

// App is one Blackscholes workload instance.
type App struct {
	p      Params
	blocks []*region.Float32 // option data, one region per block
	prices []*region.Float32 // output prices, one region per block
}

// New builds a workload with explicit parameters.
func New(p Params) *App {
	if p.BlockSize <= 0 {
		p.BlockSize = 512
	}
	nblocks := p.NumOptions / p.BlockSize
	if nblocks < 1 {
		nblocks = 1
	}
	if p.DistinctBlocks <= 0 || p.DistinctBlocks > nblocks {
		p.DistinctBlocks = nblocks
	}
	a := &App{p: p}
	rng := apps.NewRNG(p.Seed)

	distinct := make([][]float32, p.DistinctBlocks)
	for d := range distinct {
		blk := make([]float32, attrs*p.BlockSize)
		for o := 0; o < p.BlockSize; o++ {
			spot := 10 + 90*rng.Float32()
			strike := spot * (0.8 + 0.4*rng.Float32())
			rate := 0.01 + 0.09*rng.Float32()
			vol := 0.05 + 0.55*rng.Float32()
			tt := 0.25 + 3.75*rng.Float32()
			call := float32(0)
			if rng.Intn(2) == 0 {
				call = 1
			}
			copy(blk[o*attrs:], []float32{spot, strike, rate, vol, tt, call})
		}
		distinct[d] = blk
	}
	for b := 0; b < nblocks; b++ {
		src := distinct[b%p.DistinctBlocks]
		data := make([]float32, len(src))
		copy(data, src)
		a.blocks = append(a.blocks, region.WrapFloat32(data))
		a.prices = append(a.prices, region.NewFloat32(p.BlockSize))
	}
	return a
}

// Factory builds an instance at the given scale.
func Factory(scale apps.Scale) apps.App { return New(ParamsFor(scale)) }

// Name implements apps.App.
func (a *App) Name() string { return "Blackscholes" }

// cndf is the cumulative normal distribution function.
func cndf(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// priceBlock prices every option of the input block into out.
func priceBlock(in []float32, out []float32) {
	for o := range out {
		b := in[o*attrs:]
		s, k := float64(b[0]), float64(b[1])
		r, v, t := float64(b[2]), float64(b[3]), float64(b[4])
		sqrtT := math.Sqrt(t)
		d1 := (math.Log(s/k) + (r+0.5*v*v)*t) / (v * sqrtT)
		d2 := d1 - v*sqrtT
		disc := k * math.Exp(-r*t)
		var price float64
		if b[5] != 0 { // call
			price = s*cndf(d1) - disc*cndf(d2)
		} else { // put
			price = disc*cndf(-d2) - s*cndf(-d1)
		}
		out[o] = float32(price)
	}
}

// Run implements apps.App.
func (a *App) Run(rt *taskrt.Runtime) {
	bsThread := rt.RegisterType(taskrt.TypeConfig{
		Name:      "bs_thread",
		Memoize:   true,
		TauMax:    0.01, // Table II: τmax = 1%
		LTraining: 15,   // Table II: L_training = 15
		Run: func(t *taskrt.Task) {
			priceBlock(t.Float32s(0), t.Float32s(1))
		},
	})
	// Independent per-block tasks in a flat loop: the ideal SubmitBatch
	// shape (whole batches publish as one block push + one wake).
	sb := rt.Batcher()
	for it := 0; it < a.p.Iterations; it++ {
		for b := range a.blocks {
			sb.Add(bsThread, taskrt.In(a.blocks[b]), taskrt.Out(a.prices[b]))
		}
		sb.Flush()
		rt.Wait()
	}
}

// Result implements apps.App: correctness is measured on the prices
// vector (Table I).
func (a *App) Result() []region.Region {
	out := make([]region.Region, len(a.prices))
	for i, p := range a.prices {
		out[i] = p
	}
	return out
}

// Correctness implements apps.App.
func (a *App) Correctness(ref apps.App) float64 {
	return metrics.Correctness(metrics.Euclidean(ref.Result(), a.Result()))
}

// MemoTaskInputBytes implements apps.App.
func (a *App) MemoTaskInputBytes() int { return attrs * a.p.BlockSize * 4 }

// FootprintBytes implements apps.App.
func (a *App) FootprintBytes() int {
	n := 0
	for _, b := range a.blocks {
		n += b.NumBytes()
	}
	for _, p := range a.prices {
		n += p.NumBytes()
	}
	return n
}

// NumTasks returns the total task count (Table I's "Number of tasks").
func (a *App) NumTasks() int { return len(a.blocks) * a.p.Iterations }

// Params returns the instance's parameters.
func (a *App) Params() Params { return a.p }
