package blackscholes

import (
	"math"
	"testing"

	"atm/internal/apps"
	"atm/internal/apps/apptest"
)

func TestDeterministic(t *testing.T)       { apptest.CheckDeterministic(t, Factory) }
func TestStaticExact(t *testing.T)         { apptest.CheckStaticExact(t, Factory) }
func TestDynamicBounded(t *testing.T)      { apptest.CheckDynamicBounded(t, Factory, 95) }
func TestWarmStart(t *testing.T)           { apptest.CheckWarmStart(t, Factory) }
func TestWarmStartDeltaChain(t *testing.T) { apptest.CheckWarmStartDeltaChain(t, Factory) }

func TestPriceBlockSanity(t *testing.T) {
	// A deep in-the-money call with negligible volatility is worth about
	// S - K*exp(-rT); the matching put is nearly worthless.
	in := []float32{
		100, 50, 0.05, 0.05, 1, 1, // call
		100, 50, 0.05, 0.05, 1, 0, // put
	}
	out := make([]float32, 2)
	priceBlock(in, out)
	want := 100 - 50*math.Exp(-0.05)
	if math.Abs(float64(out[0])-want) > 0.5 {
		t.Fatalf("call=%v want ~%v", out[0], want)
	}
	if out[1] > 0.5 {
		t.Fatalf("deep OTM put=%v", out[1])
	}
}

func TestPutCallParity(t *testing.T) {
	// C - P = S - K*exp(-rT) for the same parameters.
	s, k, r, v, tt := float32(90), float32(95), float32(0.03), float32(0.3), float32(2)
	in := []float32{s, k, r, v, tt, 1, s, k, r, v, tt, 0}
	out := make([]float32, 2)
	priceBlock(in, out)
	lhs := float64(out[0] - out[1])
	rhs := float64(s) - float64(k)*math.Exp(-float64(r*tt))
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("parity violated: C-P=%v, S-Ke^-rT=%v", lhs, rhs)
	}
}

func TestPortfolioTiling(t *testing.T) {
	a := New(Params{NumOptions: 4096, BlockSize: 512, DistinctBlocks: 2, Iterations: 1, Seed: 9})
	if len(a.blocks) != 8 {
		t.Fatalf("blocks=%d", len(a.blocks))
	}
	// Blocks 0 and 2 tile the same distinct pattern.
	if !a.blocks[0].EqualContents(a.blocks[2]) {
		t.Fatal("tiling must replicate distinct blocks")
	}
	if a.blocks[0].EqualContents(a.blocks[1]) {
		t.Fatal("adjacent blocks must differ (period 2)")
	}
}

func TestParamsFor(t *testing.T) {
	p := ParamsFor(apps.ScalePaper)
	if p.NumOptions != 10_000_000 {
		t.Fatal("paper scale must use the native 10M options")
	}
	if got := New(ParamsFor(apps.ScaleTest)).MemoTaskInputBytes(); got <= 0 {
		t.Fatalf("input bytes=%d", got)
	}
}

func TestTableIAccounting(t *testing.T) {
	a := New(ParamsFor(apps.ScaleTest))
	if a.Name() != "Blackscholes" {
		t.Fatal("name")
	}
	if a.NumTasks() != len(a.blocks)*a.Params().Iterations {
		t.Fatal("task count")
	}
	if a.FootprintBytes() <= a.MemoTaskInputBytes() {
		t.Fatal("footprint must cover the whole portfolio")
	}
}
