package kmeans

import (
	"math"
	"testing"

	"atm/internal/apps"
	"atm/internal/apps/apptest"
)

func TestDeterministic(t *testing.T)       { apptest.CheckDeterministic(t, Factory) }
func TestStaticExact(t *testing.T)         { apptest.CheckStaticExact(t, Factory) }
func TestWarmStart(t *testing.T)           { apptest.CheckWarmStart(t, Factory) }
func TestWarmStartDeltaChain(t *testing.T) { apptest.CheckWarmStartDeltaChain(t, Factory) }

func TestDynamicBounded(t *testing.T) {
	// Table II gives Kmeans τmax = 20%; the paper reports 98.8% final
	// correctness. Use a conservative floor.
	apptest.CheckDynamicBounded(t, Factory, 90)
}

func TestAssignBlockPartialSums(t *testing.T) {
	// 4 points in 2D, 2 centers at (0,0) and (10,10).
	points := []float32{0, 1, 1, 0, 9, 10, 10, 9}
	centers := []float32{0, 0, 10, 10}
	sums := make([]float32, 4)
	counts := make([]int32, 2)
	assignBlock(points, centers, 2, 2, sums, counts)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts=%v", counts)
	}
	if sums[0] != 1 || sums[1] != 1 { // (0,1)+(1,0)
		t.Fatalf("cluster 0 sums=%v", sums[:2])
	}
	if sums[2] != 19 || sums[3] != 19 { // (9,10)+(10,9)
		t.Fatalf("cluster 1 sums=%v", sums[2:])
	}
}

func TestAssignBlockResetsOutputs(t *testing.T) {
	// Outputs are pure functions of inputs: stale values in the output
	// regions must not leak into the result (ATM's determinism rule).
	points := []float32{5, 5}
	centers := []float32{5, 5}
	sums := []float32{99, 99}
	counts := []int32{42}
	assignBlock(points, centers, 1, 2, sums, counts)
	if counts[0] != 1 || sums[0] != 5 || sums[1] != 5 {
		t.Fatalf("stale state leaked: sums=%v counts=%v", sums, counts)
	}
}

func TestConvergesTowardClusterMeans(t *testing.T) {
	app := New(Params{Points: 512, Dims: 4, K: 2, BlockSize: 128, Iterations: 8, Spread: 0.02, Seed: 3})
	apptest.RunBaseline(func(apps.Scale) apps.App { return app }, 2)
	// After convergence every center must sit near a dense region of
	// points: the mean distance from each point to its closest center
	// must be small relative to the data scale.
	var worst float64
	for b := range app.points {
		pts := app.points[b].Data
		for i := 0; i < len(pts)/app.p.Dims; i++ {
			best := math.Inf(1)
			for c := 0; c < app.p.K; c++ {
				var d float64
				for dim := 0; dim < app.p.Dims; dim++ {
					diff := float64(pts[i*app.p.Dims+dim] - app.centers.Data[c*app.p.Dims+dim])
					d += diff * diff
				}
				if d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	// Points sit within Spread*10 of their true center; a converged
	// center must be within a few noise radii of every member.
	if math.Sqrt(worst) > 5 {
		t.Fatalf("worst point-center distance %v: kmeans failed to converge", math.Sqrt(worst))
	}
}

func TestEmptyClusterKeepsCenter(t *testing.T) {
	// A center with no assigned points must keep its previous position
	// (division-by-zero guard in the update task).
	app := New(Params{Points: 128, Dims: 2, K: 4, BlockSize: 64, Iterations: 3, Spread: 0.01, Seed: 7})
	before := make([]float32, len(app.centers.Data))
	copy(before, app.centers.Data)
	apptest.RunBaseline(func(apps.Scale) apps.App { return app }, 2)
	for _, v := range app.centers.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("center corrupted by empty cluster")
		}
	}
	_ = before
}

func TestTableIShape(t *testing.T) {
	p := ParamsFor(apps.ScalePaper)
	if p.Points != 2_000_000 || p.K != 16 || p.Dims != 100 {
		t.Fatal("paper scale must match Table I")
	}
	a := New(ParamsFor(apps.ScaleTest))
	if a.Name() != "Kmeans" {
		t.Fatal("name")
	}
	want := 4 * (a.p.BlockSize*a.p.Dims + a.p.K*a.p.Dims)
	if a.MemoTaskInputBytes() != want {
		t.Fatal("task input bytes: points block + centers")
	}
	if a.NumTasks() != a.nblocks*a.p.Iterations {
		t.Fatal("task count")
	}
}
