// Package kmeans implements the Kmeans benchmark of Table I: unsupervised
// clustering of N d-dimensional points into k groups. One task type
// (kmeans_calculate) assigns a block of points to their closest centers
// and accumulates per-center partial sums; a second task type recomputes
// the centers from the partials.
//
// Redundancy structure (§V-D): the centers change in every iteration, so
// exact (static) memoization finds nothing and its hashing overhead makes
// the program slower — the paper's static-ATM slowdown. But some centers
// converge before others, and once a center's most significant bytes stop
// moving, the assignment tasks become approximately redundant; dynamic
// ATM captures them with a small p. τmax is 20% (Table II): the partial
// sums tolerate coarse matching because the center update averages them.
package kmeans

import (
	"atm/internal/apps"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// Params sizes a workload.
type Params struct {
	// Points is the total number of points (paper: 2·10⁶).
	Points int
	// Dims is the point dimensionality (paper: 100).
	Dims int
	// K is the number of clusters (paper: 16).
	K int
	// BlockSize is the number of points assigned per task.
	BlockSize int
	// Iterations is the number of Lloyd iterations.
	Iterations int
	// Spread is the intra-cluster noise radius relative to the
	// inter-cluster distance; small spreads converge (and memoize) fast.
	Spread float64
	// Seed fixes the generated points and starting centers.
	Seed uint64
}

// ParamsFor returns parameters at a scale. ScalePaper follows Table I:
// 2·10⁶ points, 16 centers, 100 dimensions, ~39,063 tasks; the task input
// (points block + centers) is 219,716 bytes ≈ (512·100 + 16·100 + pad)
// floats.
func ParamsFor(scale apps.Scale) Params {
	switch scale {
	case apps.ScalePaper:
		return Params{Points: 2_000_000, Dims: 100, K: 16, BlockSize: 512, Iterations: 10, Spread: 0.05, Seed: 11}
	case apps.ScaleBench:
		return Params{Points: 24_576, Dims: 32, K: 8, BlockSize: 512, Iterations: 12, Spread: 0.05, Seed: 11}
	default:
		return Params{Points: 2048, Dims: 8, K: 4, BlockSize: 256, Iterations: 6, Spread: 0.05, Seed: 11}
	}
}

// App is one Kmeans workload instance.
type App struct {
	p       Params
	nblocks int
	points  []*region.Float32 // one region per block: BlockSize×Dims
	centers *region.Float32   // k×Dims
	sums    []*region.Float32 // per block: k×Dims partial sums
	counts  []*region.Int32   // per block: k partial counts
}

// New builds a workload with explicit parameters.
func New(p Params) *App {
	if p.BlockSize <= 0 {
		p.BlockSize = 256
	}
	if p.K < 1 {
		p.K = 1
	}
	a := &App{p: p}
	a.nblocks = p.Points / p.BlockSize
	if a.nblocks < 1 {
		a.nblocks = 1
	}
	rng := apps.NewRNG(p.Seed)

	// True cluster centers on a coarse grid, well separated.
	truth := make([]float64, p.K*p.Dims)
	for c := 0; c < p.K; c++ {
		for d := 0; d < p.Dims; d++ {
			truth[c*p.Dims+d] = float64(10 * rng.Intn(10))
		}
	}
	for b := 0; b < a.nblocks; b++ {
		blk := region.NewFloat32(p.BlockSize * p.Dims)
		for i := 0; i < p.BlockSize; i++ {
			c := rng.Intn(p.K)
			for d := 0; d < p.Dims; d++ {
				noise := (2*rng.Float64() - 1) * p.Spread * 10
				blk.Data[i*p.Dims+d] = float32(truth[c*p.Dims+d] + noise)
			}
		}
		a.points = append(a.points, blk)
		a.sums = append(a.sums, region.NewFloat32(p.K*p.Dims))
		a.counts = append(a.counts, region.NewInt32(p.K))
	}
	// Start centers at perturbed truth so iterations converge smoothly
	// (random restarts would be nondeterministic across layouts).
	a.centers = region.NewFloat32(p.K * p.Dims)
	for i := range a.centers.Data {
		a.centers.Data[i] = float32(truth[i] + (2*rng.Float64()-1)*2)
	}
	return a
}

// Factory builds an instance at the given scale.
func Factory(scale apps.Scale) apps.App { return New(ParamsFor(scale)) }

// Name implements apps.App.
func (a *App) Name() string { return "Kmeans" }

// assignBlock computes per-center partial sums and counts for one block.
func assignBlock(points, centers []float32, k, dims int, sums []float32, counts []int32) {
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	n := len(points) / dims
	for i := 0; i < n; i++ {
		pt := points[i*dims : (i+1)*dims]
		best, bestD := 0, float32(0)
		for c := 0; c < k; c++ {
			var dist float32
			ct := centers[c*dims : (c+1)*dims]
			for d := 0; d < dims; d++ {
				diff := pt[d] - ct[d]
				dist += diff * diff
			}
			if c == 0 || dist < bestD {
				best, bestD = c, dist
			}
		}
		counts[best]++
		bs := sums[best*dims : (best+1)*dims]
		for d := 0; d < dims; d++ {
			bs[d] += pt[d]
		}
	}
}

// Run implements apps.App.
func (a *App) Run(rt *taskrt.Runtime) {
	k, dims := a.p.K, a.p.Dims
	calc := rt.RegisterType(taskrt.TypeConfig{
		Name:      "kmeans_calculate",
		Memoize:   true,
		TauMax:    0.20, // Table II: τmax = 20%
		LTraining: 15,   // Table II
		Run: func(t *taskrt.Task) {
			assignBlock(t.Float32s(0), t.Float32s(1), k, dims, t.Float32s(2), t.Int32s(3))
		},
	})
	update := rt.RegisterType(taskrt.TypeConfig{
		Name: "kmeans_update",
		Run: func(t *taskrt.Task) {
			centers := t.Float32s(0)
			nb := (len(t.Accesses()) - 1) / 2
			total := make([]float64, k*dims)
			cnt := make([]int64, k)
			for b := 0; b < nb; b++ {
				s := t.Float32s(1 + b)
				c := t.Int32s(1 + nb + b)
				for i, v := range s {
					total[i] += float64(v)
				}
				for i, v := range c {
					cnt[i] += int64(v)
				}
			}
			for c := 0; c < k; c++ {
				if cnt[c] == 0 {
					continue // keep the previous center
				}
				for d := 0; d < dims; d++ {
					centers[c*dims+d] = float32(total[c*dims+d] / float64(cnt[c]))
				}
			}
		},
	})

	// One batcher carries both task types: the fan-in update task lands
	// in the same batch as (most of) the calc tasks it reads, so its
	// wide dependence set is wired with plain intra-batch appends.
	sb := rt.Batcher()
	for it := 0; it < a.p.Iterations; it++ {
		for b := 0; b < a.nblocks; b++ {
			sb.Add(calc,
				taskrt.In(a.points[b]), taskrt.In(a.centers),
				taskrt.Out(a.sums[b]), taskrt.Out(a.counts[b]))
		}
		accs := make([]taskrt.Access, 0, 1+2*a.nblocks)
		accs = append(accs, taskrt.InOut(a.centers))
		for b := 0; b < a.nblocks; b++ {
			accs = append(accs, taskrt.In(a.sums[b]))
		}
		for b := 0; b < a.nblocks; b++ {
			accs = append(accs, taskrt.In(a.counts[b]))
		}
		sb.Add(update, accs...)
	}
	sb.Flush()
	rt.Wait()
}

// Result implements apps.App: correctness is measured on the centers
// vector (Table I).
func (a *App) Result() []region.Region { return []region.Region{a.centers} }

// Correctness implements apps.App.
func (a *App) Correctness(ref apps.App) float64 {
	return metrics.Correctness(metrics.Euclidean(ref.Result(), a.Result()))
}

// MemoTaskInputBytes implements apps.App: points block + centers.
func (a *App) MemoTaskInputBytes() int {
	return 4 * (a.p.BlockSize*a.p.Dims + a.p.K*a.p.Dims)
}

// FootprintBytes implements apps.App.
func (a *App) FootprintBytes() int {
	n := a.centers.NumBytes()
	for _, b := range a.points {
		n += b.NumBytes()
	}
	for _, s := range a.sums {
		n += s.NumBytes()
	}
	for _, c := range a.counts {
		n += c.NumBytes()
	}
	return n
}

// NumTasks returns the assign-task count.
func (a *App) NumTasks() int { return a.nblocks * a.p.Iterations }

// Params returns the instance's parameters.
func (a *App) Params() Params { return a.p }
