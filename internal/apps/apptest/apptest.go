// Package apptest provides shared checks for the benchmark applications:
// determinism of the workload, bit-exactness under static ATM, bounded
// accuracy loss under dynamic ATM, and warm-start correctness through
// the snapshot/persist round trip. Every app package's tests call into
// it.
package apptest

import (
	"testing"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/persist"
	"atm/internal/taskrt"
)

// RunBaseline executes a fresh instance without ATM.
func RunBaseline(f apps.Factory, workers int) apps.App {
	app := f(apps.ScaleTest)
	rt := taskrt.New(taskrt.Config{Workers: workers})
	app.Run(rt)
	rt.Close()
	return app
}

// RunWithATM executes a fresh instance under the given ATM mode.
func RunWithATM(f apps.Factory, workers int, cfg core.Config) (apps.App, *core.ATM) {
	app := f(apps.ScaleTest)
	memo := core.New(cfg)
	rt := taskrt.New(taskrt.Config{Workers: workers, Memoizer: memo})
	app.Run(rt)
	rt.Close()
	return app, memo
}

// CheckDeterministic verifies two baseline runs produce bit-identical
// results — the precondition for ATM (§III-E) and for the harness's
// baseline-vs-ATM comparisons.
func CheckDeterministic(t *testing.T, f apps.Factory) {
	t.Helper()
	a := RunBaseline(f, 1)
	b := RunBaseline(f, 4)
	ra, rb := a.Result(), b.Result()
	if len(ra) != len(rb) {
		t.Fatalf("result arity differs: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("result region %d differs between runs (nondeterministic workload)", i)
		}
	}
}

// CheckStaticExact verifies static ATM reproduces the baseline outputs
// bit for bit (the paper's "static ATM always achieves a 100%
// correctness", §V-A).
func CheckStaticExact(t *testing.T, f apps.Factory) {
	t.Helper()
	ref := RunBaseline(f, 4)
	app, memo := RunWithATM(f, 4, core.Config{Mode: core.ModeStatic})
	ra, rb := ref.Result(), app.Result()
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("static ATM diverged on result region %d", i)
		}
	}
	if c := app.Correctness(ref); c < 99.999 {
		t.Fatalf("static correctness=%v", c)
	}
	_ = memo
}

// CheckWarmStart verifies warm-start correctness end to end: the app
// runs cold under static ATM, the engine is snapshotted and pushed
// through the persist codec (encode + strict decode, exactly what a
// save/load cycle does), restored into a fresh engine, and the same
// workload runs again warm. The warm pass must serve THT hits
// immediately (MemoizedTHT > 0 with zero restored-state training) and
// produce outputs bit-identical to the cold run — a snapshot that
// changed results would be worse than no snapshot at all.
func CheckWarmStart(t *testing.T, f apps.Factory) {
	t.Helper()
	cfg := core.Config{Mode: core.ModeStatic}
	cold, memo := RunWithATM(f, 4, cfg)
	snap, err := memo.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	data, err := persist.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	decoded, err := persist.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	warmEngine, err := core.Restore(cfg, decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	warm := f(apps.ScaleTest)
	rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: warmEngine})
	warm.Run(rt)
	rt.Close()

	ra, rb := cold.Result(), warm.Result()
	if len(ra) != len(rb) {
		t.Fatalf("result arity differs: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("warm-start result region %d diverges from the cold run", i)
		}
	}
	var memoTHT int64
	for _, ts := range warmEngine.Stats().Types {
		memoTHT += ts.MemoizedTHT
		if ts.Executed+ts.MemoizedTHT+ts.MemoizedIKT != ts.Tasks {
			t.Fatalf("warm-pass accounting leak: %+v", ts)
		}
	}
	if memoTHT == 0 {
		t.Fatal("warm pass must serve THT hits from the restored snapshot")
	}
	if warmEngine.RestoredEntries() == 0 {
		t.Fatal("restore must have installed snapshot entries")
	}
}

// CheckWarmStartDeltaChain is CheckWarmStart for the incremental
// persistence path: the app runs cold on a delta-tracked engine whose
// churn is captured as a chain (empty base + per-phase delta records,
// pushed through the v2 codec like a save/append/load cycle), the
// chain is compacted into a single full snapshot, and the app runs
// again on an engine restored from the compaction. The warm pass must
// serve immediate THT hits and produce outputs bit-identical both to
// the cold run and to a warm start from the classic whole-table
// snapshot — the delta path must not be able to diverge from the full
// path. It also pins the sublinear-save property: the all-hit second
// phase appends a (near-)empty delta.
func CheckWarmStartDeltaChain(t *testing.T, f apps.Factory) {
	t.Helper()
	cfg := core.Config{Mode: core.ModeStatic}
	memo := core.New(cfg)
	memo.EnableDeltaTracking()
	base, err := memo.Snapshot() // the chain's empty base
	if err != nil {
		t.Fatalf("base snapshot: %v", err)
	}
	cold := f(apps.ScaleTest)
	rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: memo})
	cold.Run(rt)
	rt.Close()
	d1, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatalf("first delta: %v", err)
	}
	// A second, fully warm pass on the same engine: its delta must be
	// (near-)empty — the sublinear property deltas exist for.
	again := f(apps.ScaleTest)
	rt2 := taskrt.New(taskrt.Config{Workers: 4, Memoizer: memo})
	again.Run(rt2)
	rt2.Close()
	d2, err := memo.SnapshotDelta()
	if err != nil {
		t.Fatalf("second delta: %v", err)
	}
	if len(d2.Entries) >= len(d1.Entries) && len(d1.Entries) > 0 {
		t.Fatalf("warm-phase delta (%d entries) must stay below the cold phase's (%d)", len(d2.Entries), len(d1.Entries))
	}
	full, err := memo.Snapshot() // the whole-table path, for comparison
	if err != nil {
		t.Fatalf("full snapshot: %v", err)
	}

	// Round-trip the chain through the v2 codec, then compact it.
	data, err := persist.MarshalChain(base, []*core.Delta{d1, d2})
	if err != nil {
		t.Fatalf("marshal chain: %v", err)
	}
	decBase, decDeltas, err := persist.UnmarshalChain(data)
	if err != nil {
		t.Fatalf("unmarshal chain: %v", err)
	}
	compacted, err := persist.Compact(decBase, decDeltas...)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}

	runRestored := func(snap *core.Snapshot) (apps.App, *core.ATM) {
		t.Helper()
		engine, err := core.Restore(cfg, snap)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		app := f(apps.ScaleTest)
		rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: engine})
		app.Run(rt)
		rt.Close()
		return app, engine
	}
	viaChain, chainEngine := runRestored(compacted)
	viaFull, _ := runRestored(full)

	ra := cold.Result()
	for i := range ra {
		if !viaChain.Result()[i].EqualContents(ra[i]) {
			t.Fatalf("delta-chain warm start diverges from the cold run on region %d", i)
		}
		if !viaChain.Result()[i].EqualContents(viaFull.Result()[i]) {
			t.Fatalf("delta-chain warm start diverges from the whole-table warm start on region %d", i)
		}
	}
	var memoTHT int64
	for _, ts := range chainEngine.Stats().Types {
		memoTHT += ts.MemoizedTHT
	}
	if memoTHT == 0 {
		t.Fatal("delta-chain warm pass must serve THT hits from the restored chain")
	}
	if chainEngine.RestoredEntries() == 0 {
		t.Fatal("compacted chain must have installed entries on restore")
	}
}

// CheckDynamicBounded verifies dynamic ATM stays above the correctness
// floor and that its accounting is consistent.
func CheckDynamicBounded(t *testing.T, f apps.Factory, floor float64) {
	t.Helper()
	ref := RunBaseline(f, 4)
	app, memo := RunWithATM(f, 4, core.Config{Mode: core.ModeDynamic})
	if c := app.Correctness(ref); c < floor {
		t.Fatalf("dynamic ATM correctness %v below floor %v", c, floor)
	}
	for _, ts := range memo.Stats().Types {
		if ts.Executed+ts.MemoizedTHT+ts.MemoizedIKT != ts.Tasks {
			t.Fatalf("task accounting leak: %+v", ts)
		}
	}
}
