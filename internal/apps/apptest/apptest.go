// Package apptest provides shared checks for the benchmark applications:
// determinism of the workload, bit-exactness under static ATM, bounded
// accuracy loss under dynamic ATM, and warm-start correctness through
// the snapshot/persist round trip. Every app package's tests call into
// it.
package apptest

import (
	"testing"

	"atm/internal/apps"
	"atm/internal/core"
	"atm/internal/persist"
	"atm/internal/taskrt"
)

// RunBaseline executes a fresh instance without ATM.
func RunBaseline(f apps.Factory, workers int) apps.App {
	app := f(apps.ScaleTest)
	rt := taskrt.New(taskrt.Config{Workers: workers})
	app.Run(rt)
	rt.Close()
	return app
}

// RunWithATM executes a fresh instance under the given ATM mode.
func RunWithATM(f apps.Factory, workers int, cfg core.Config) (apps.App, *core.ATM) {
	app := f(apps.ScaleTest)
	memo := core.New(cfg)
	rt := taskrt.New(taskrt.Config{Workers: workers, Memoizer: memo})
	app.Run(rt)
	rt.Close()
	return app, memo
}

// CheckDeterministic verifies two baseline runs produce bit-identical
// results — the precondition for ATM (§III-E) and for the harness's
// baseline-vs-ATM comparisons.
func CheckDeterministic(t *testing.T, f apps.Factory) {
	t.Helper()
	a := RunBaseline(f, 1)
	b := RunBaseline(f, 4)
	ra, rb := a.Result(), b.Result()
	if len(ra) != len(rb) {
		t.Fatalf("result arity differs: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("result region %d differs between runs (nondeterministic workload)", i)
		}
	}
}

// CheckStaticExact verifies static ATM reproduces the baseline outputs
// bit for bit (the paper's "static ATM always achieves a 100%
// correctness", §V-A).
func CheckStaticExact(t *testing.T, f apps.Factory) {
	t.Helper()
	ref := RunBaseline(f, 4)
	app, memo := RunWithATM(f, 4, core.Config{Mode: core.ModeStatic})
	ra, rb := ref.Result(), app.Result()
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("static ATM diverged on result region %d", i)
		}
	}
	if c := app.Correctness(ref); c < 99.999 {
		t.Fatalf("static correctness=%v", c)
	}
	_ = memo
}

// CheckWarmStart verifies warm-start correctness end to end: the app
// runs cold under static ATM, the engine is snapshotted and pushed
// through the persist codec (encode + strict decode, exactly what a
// save/load cycle does), restored into a fresh engine, and the same
// workload runs again warm. The warm pass must serve THT hits
// immediately (MemoizedTHT > 0 with zero restored-state training) and
// produce outputs bit-identical to the cold run — a snapshot that
// changed results would be worse than no snapshot at all.
func CheckWarmStart(t *testing.T, f apps.Factory) {
	t.Helper()
	cfg := core.Config{Mode: core.ModeStatic}
	cold, memo := RunWithATM(f, 4, cfg)
	snap, err := memo.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	data, err := persist.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	decoded, err := persist.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	warmEngine, err := core.Restore(cfg, decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	warm := f(apps.ScaleTest)
	rt := taskrt.New(taskrt.Config{Workers: 4, Memoizer: warmEngine})
	warm.Run(rt)
	rt.Close()

	ra, rb := cold.Result(), warm.Result()
	if len(ra) != len(rb) {
		t.Fatalf("result arity differs: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].EqualContents(rb[i]) {
			t.Fatalf("warm-start result region %d diverges from the cold run", i)
		}
	}
	var memoTHT int64
	for _, ts := range warmEngine.Stats().Types {
		memoTHT += ts.MemoizedTHT
		if ts.Executed+ts.MemoizedTHT+ts.MemoizedIKT != ts.Tasks {
			t.Fatalf("warm-pass accounting leak: %+v", ts)
		}
	}
	if memoTHT == 0 {
		t.Fatal("warm pass must serve THT hits from the restored snapshot")
	}
	if warmEngine.RestoredEntries() == 0 {
		t.Fatal("restore must have installed snapshot entries")
	}
}

// CheckDynamicBounded verifies dynamic ATM stays above the correctness
// floor and that its accounting is consistent.
func CheckDynamicBounded(t *testing.T, f apps.Factory, floor float64) {
	t.Helper()
	ref := RunBaseline(f, 4)
	app, memo := RunWithATM(f, 4, core.Config{Mode: core.ModeDynamic})
	if c := app.Correctness(ref); c < floor {
		t.Fatalf("dynamic ATM correctness %v below floor %v", c, floor)
	}
	for _, ts := range memo.Stats().Types {
		if ts.Executed+ts.MemoizedTHT+ts.MemoizedIKT != ts.Tasks {
			t.Fatalf("task accounting leak: %+v", ts)
		}
	}
}
