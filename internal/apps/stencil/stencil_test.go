package stencil

import (
	"testing"

	"atm/internal/apps"
	"atm/internal/apps/apptest"
	"atm/internal/region"
)

func TestGSDeterministic(t *testing.T) {
	apptest.CheckDeterministic(t, Factory(GaussSeidel))
}

func TestJacobiDeterministic(t *testing.T) {
	apptest.CheckDeterministic(t, Factory(Jacobi))
}

func TestGSStaticExact(t *testing.T) { apptest.CheckStaticExact(t, Factory(GaussSeidel)) }
func TestGSWarmStart(t *testing.T)   { apptest.CheckWarmStart(t, Factory(GaussSeidel)) }
func TestGSWarmStartDeltaChain(t *testing.T) {
	apptest.CheckWarmStartDeltaChain(t, Factory(GaussSeidel))
}
func TestJacWarmStart(t *testing.T)           { apptest.CheckWarmStart(t, Factory(Jacobi)) }
func TestJacWarmStartDeltaChain(t *testing.T) { apptest.CheckWarmStartDeltaChain(t, Factory(Jacobi)) }
func TestJacStaticExact(t *testing.T)         { apptest.CheckStaticExact(t, Factory(Jacobi)) }

func TestGSDynamicBounded(t *testing.T) {
	apptest.CheckDynamicBounded(t, Factory(GaussSeidel), 90)
}

func TestJacobiDynamicBounded(t *testing.T) {
	apptest.CheckDynamicBounded(t, Factory(Jacobi), 90)
}

func TestCopyEdge(t *testing.T) {
	bs := 3
	block := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	check := func(edge int, want []float32) {
		halo := make([]float32, bs)
		copyEdge(block, bs, edge, halo)
		for i := range want {
			if halo[i] != want[i] {
				t.Fatalf("edge %d: got %v want %v", edge, halo, want)
			}
		}
	}
	check(dirN, []float32{1, 2, 3})
	check(dirS, []float32{7, 8, 9})
	check(dirW, []float32{1, 4, 7})
	check(dirE, []float32{3, 6, 9})
}

func TestRelaxUniformIsFixedPoint(t *testing.T) {
	// A uniform block with uniform halos is a fixed point of both
	// relaxations — the redundancy source the paper describes for the
	// room's interior (§V-D).
	bs := 4
	b := make([]float32, bs*bs)
	for i := range b {
		b[i] = 3.5
	}
	halo := []float32{3.5, 3.5, 3.5, 3.5}
	inplace := make([]float32, bs*bs)
	copy(inplace, b)
	relaxInPlace(inplace, bs, halo, halo, halo, halo)
	for i := range inplace {
		if inplace[i] != 3.5 {
			t.Fatalf("GS fixed point broken at %d: %v", i, inplace[i])
		}
	}
	out := make([]float32, bs*bs)
	relaxOut(b, out, bs, halo, halo, halo, halo)
	for i := range out {
		if out[i] != 3.5 {
			t.Fatalf("Jacobi fixed point broken at %d: %v", i, out[i])
		}
	}
}

func TestHeatFlowsInFromBoundary(t *testing.T) {
	// After a few iterations, cells near the hot walls must warm up and
	// stay within [initial, boundary] bounds (maximum principle).
	a := New(Params{Variant: GaussSeidel, NB: 3, BS: 8, Iterations: 5, BoundaryTemp: 100, Seed: 1, PatternPool: 1})
	ref := apptest.RunBaseline(func(apps.Scale) apps.App { return a }, 2)
	_ = ref
	corner := a.blocks[0][0].Data
	if corner[0] <= 1 {
		t.Fatalf("corner cell never warmed: %v", corner[0])
	}
	for i := range a.blocks {
		for j := range a.blocks[i] {
			for _, v := range a.blocks[i][j].Data {
				if v < 0 || v > 100 {
					t.Fatalf("temperature %v outside [0, 100]", v)
				}
			}
		}
	}
}

func TestJacobiPingPong(t *testing.T) {
	// With an odd iteration count the result lives in the next grid;
	// with an even count in the original. Both must expose a full grid.
	for _, iters := range []int{1, 2} {
		a := New(Params{Variant: Jacobi, NB: 2, BS: 4, Iterations: iters, BoundaryTemp: 10, Seed: 1, PatternPool: 1})
		app := apptest.RunBaseline(func(apps.Scale) apps.App { return a }, 2)
		if got := len(app.Result()); got != 4 {
			t.Fatalf("iters=%d: result blocks=%d", iters, got)
		}
	}
}

func TestGSPropagatesFasterThanJacobi(t *testing.T) {
	// Gauss-Seidel uses fresh north/west halos within an iteration, so
	// after one iteration heat reaches deeper than Jacobi's single-step
	// front. Verify on the far corner block of a small grid: total heat
	// absorbed by GS must be at least Jacobi's.
	mk := func(v Variant) *App {
		return New(Params{Variant: v, NB: 2, BS: 4, Iterations: 1, BoundaryTemp: 50, Seed: 1, PatternPool: 1})
	}
	gs := mk(GaussSeidel)
	apptest.RunBaseline(func(apps.Scale) apps.App { return gs }, 1)
	jac := mk(Jacobi)
	apptest.RunBaseline(func(apps.Scale) apps.App { return jac }, 1)
	sum := func(g [][]*region.Float32) float64 {
		var s float64
		for i := range g {
			for j := range g[i] {
				for _, v := range g[i][j].Data {
					s += float64(v)
				}
			}
		}
		return s
	}
	if sum(gs.finalGrid()) < sum(jac.finalGrid()) {
		t.Fatal("GS must absorb at least as much boundary heat per iteration")
	}
}

func TestVariantNamesAndTableI(t *testing.T) {
	if GaussSeidel.String() != "Gauss-Seidel" || Jacobi.String() != "Jacobi" {
		t.Fatal("variant names")
	}
	p := ParamsFor(GaussSeidel, apps.ScalePaper)
	if p.NB != 32 || p.BS != 1024 {
		t.Fatal("paper scale must match Table I (32x32 blocks of 1024)")
	}
	a := New(ParamsFor(GaussSeidel, apps.ScaleTest))
	if a.NumStencilTasks() != a.Params().NB*a.Params().NB*a.Params().Iterations {
		t.Fatal("stencil task count")
	}
	// Table I: task input = block + 4 halos.
	if a.MemoTaskInputBytes() != 4*(a.Params().BS*a.Params().BS+4*a.Params().BS) {
		t.Fatal("memo task input bytes")
	}
}
