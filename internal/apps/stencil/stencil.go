// Package stencil implements the two stencil benchmarks of Table I:
// Gauss-Seidel and Jacobi 2D five-point heat-diffusion solvers over a
// blocked matrix. Each block is processed by one task; neighboring rows
// and columns reach the task through halo regions filled by copy-tasks,
// exactly as the paper describes ("Neighboring columns and rows are
// obtained via copy-tasks. We choose the task type that computes the
// heat-diffusion for ATM, not the copy tasks").
//
// Redundancy structure (§V-D): the boundaries of the matrix emit heat at a
// fixed temperature and the interior starts cold; temperature near the
// walls converges quickly while many iterations are required to start
// changing the center of the room. Interior blocks therefore perform
// redundant executions — identical across both space and iterations —
// which ATM's THT captures; the per-iteration synchronization of Jacobi
// creates the short reuse distances that need the IKT (§V-A).
package stencil

import (
	"atm/internal/apps"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// Variant selects the solver.
type Variant int

// Solver variants.
const (
	GaussSeidel Variant = iota
	Jacobi
)

// String returns the variant's benchmark name.
func (v Variant) String() string {
	if v == Jacobi {
		return "Jacobi"
	}
	return "Gauss-Seidel"
}

// Params sizes a workload.
type Params struct {
	// Variant selects Gauss-Seidel or Jacobi.
	Variant Variant
	// NB is the number of blocks per matrix side (paper: 32).
	NB int
	// BS is the block side in elements (paper: 1024).
	BS int
	// Iterations is the number of solver sweeps over the whole matrix.
	Iterations int
	// BoundaryTemp is the fixed wall temperature.
	BoundaryTemp float32
	// Seed fixes the initial interior temperature field.
	Seed uint64
	// PatternPool is the number of distinct random initial block
	// patterns. The paper finds redundancy "in the initialization of the
	// sub-blocks of the matrix due to the saturation of the random
	// number generator": the same block patterns repeat across the
	// matrix. Blocks tiled with the same pattern in the same
	// neighborhood class evolve identically, so their stencil tasks stay
	// bit-equal for the whole run — ATM's main stencil reuse source.
	PatternPool int
	// TilePeriod is the spatial period of the pattern tiling (blocks at
	// distance TilePeriod share a pattern class).
	TilePeriod int
}

// ParamsFor returns parameters at a scale. ScalePaper matches Table I:
// 32×32 blocks of 1024×1024 elements, 20,480 stencil tasks (32·32·20).
func ParamsFor(v Variant, scale apps.Scale) Params {
	// The walls are much hotter than the random [0,1) interior: heated
	// cells keep crossing float32 binades, so blocks that actually
	// change are distinguishable from their past states already at
	// small p, which is what lets dynamic ATM pick an aggressive p
	// while keeping the stencils' correctness near 100% (Fig. 4).
	switch scale {
	case apps.ScalePaper:
		return Params{Variant: v, NB: 32, BS: 1024, Iterations: 20, BoundaryTemp: 100, Seed: 7, PatternPool: 4, TilePeriod: 2}
	case apps.ScaleBench:
		return Params{Variant: v, NB: 12, BS: 96, Iterations: 12, BoundaryTemp: 100, Seed: 7, PatternPool: 4, TilePeriod: 2}
	default:
		return Params{Variant: v, NB: 4, BS: 16, Iterations: 4, BoundaryTemp: 100, Seed: 7, PatternPool: 2, TilePeriod: 2}
	}
}

// App is one stencil workload instance.
type App struct {
	p Params
	// blocks[i][j] is the bs×bs block at block-row i, block-col j.
	blocks [][]*region.Float32
	// next is the ping-pong target grid (Jacobi only).
	next [][]*region.Float32
	// halos[i][j][d] is block (i,j)'s halo in direction d.
	halos [][][4]*region.Float32
	// boundary[d] are the constant wall halos.
	boundary [4]*region.Float32
	// haloEdge maps a halo region to the edge of the source block the
	// copy task must extract (read-only after construction).
	haloEdge map[region.Region]int
	// finalInNext reports whether the final Jacobi result lives in next.
	finalInNext bool
}

// Halo directions.
const (
	dirN = iota // halo holds the row above the block
	dirS        // row below
	dirW        // column left
	dirE        // column right
)

// New builds a workload with explicit parameters.
func New(p Params) *App {
	if p.NB < 1 {
		p.NB = 1
	}
	if p.BS < 2 {
		p.BS = 2
	}
	if p.PatternPool < 1 {
		p.PatternPool = 1
	}
	if p.TilePeriod < 1 {
		p.TilePeriod = 1
	}
	a := &App{p: p, haloEdge: make(map[region.Region]int)}
	rng := apps.NewRNG(p.Seed)

	// Distinct random initial block patterns in [0, 1), replicated over
	// the matrix like the saturated RNG of the original kernel. Blocks
	// at tile distance TilePeriod share both their pattern and their
	// neighborhood pattern class, so they receive identical inputs every
	// iteration and stay bit-identical for the whole run.
	patterns := make([][]float32, p.PatternPool)
	for k := range patterns {
		pat := make([]float32, p.BS*p.BS)
		for x := range pat {
			pat[x] = rng.Float32()
		}
		patterns[k] = pat
	}
	classOf := func(i, j int) int {
		t := p.TilePeriod
		return ((i%t)*t + j%t) % p.PatternPool
	}

	alloc := func() [][]*region.Float32 {
		g := make([][]*region.Float32, p.NB)
		for i := range g {
			g[i] = make([]*region.Float32, p.NB)
			for j := range g[i] {
				g[i][j] = region.NewFloat32(p.BS * p.BS)
			}
		}
		return g
	}
	a.blocks = alloc()
	for i := range a.blocks {
		for j := range a.blocks[i] {
			copy(a.blocks[i][j].Data, patterns[classOf(i, j)])
		}
	}
	if p.Variant == Jacobi {
		a.next = alloc()
	}

	for d := 0; d < 4; d++ {
		a.boundary[d] = region.NewFloat32(p.BS)
		for x := 0; x < p.BS; x++ {
			a.boundary[d].Data[x] = p.BoundaryTemp
		}
	}
	a.halos = make([][][4]*region.Float32, p.NB)
	for i := range a.halos {
		a.halos[i] = make([][4]*region.Float32, p.NB)
		for j := range a.halos[i] {
			for d := 0; d < 4; d++ {
				h := region.NewFloat32(p.BS)
				a.halos[i][j][d] = h
				// The copy task extracts the edge of the *source*
				// block facing this block: for our north halo the
				// source is block (i-1,j) and we need its south row.
				a.haloEdge[h] = opposite(d)
			}
		}
	}
	return a
}

func opposite(d int) int {
	switch d {
	case dirN:
		return dirS
	case dirS:
		return dirN
	case dirW:
		return dirE
	default:
		return dirW
	}
}

// Factory returns an apps.Factory for the variant.
func Factory(v Variant) apps.Factory {
	return func(scale apps.Scale) apps.App { return New(ParamsFor(v, scale)) }
}

// Name implements apps.App.
func (a *App) Name() string { return a.p.Variant.String() }

// copyEdge extracts one edge of a block into a halo buffer.
func copyEdge(block []float32, bs int, edge int, halo []float32) {
	switch edge {
	case dirN: // top row
		copy(halo, block[:bs])
	case dirS: // bottom row
		copy(halo, block[(bs-1)*bs:])
	case dirW: // left column
		for r := 0; r < bs; r++ {
			halo[r] = block[r*bs]
		}
	default: // right column
		for r := 0; r < bs; r++ {
			halo[r] = block[r*bs+bs-1]
		}
	}
}

// relaxInPlace performs one Gauss-Seidel sweep over the block using the
// four halos for the outer neighbors. Updates are in place, so values to
// the left and above are the freshly computed ones — true Gauss-Seidel
// ordering inside the block.
func relaxInPlace(b []float32, bs int, n, s, w, e []float32) {
	at := func(r, c int) float32 {
		switch {
		case r < 0:
			return n[c]
		case r >= bs:
			return s[c]
		case c < 0:
			return w[r]
		case c >= bs:
			return e[r]
		default:
			return b[r*bs+c]
		}
	}
	for r := 0; r < bs; r++ {
		for c := 0; c < bs; c++ {
			b[r*bs+c] = 0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
		}
	}
}

// relaxOut performs one Jacobi sweep reading src and writing dst.
func relaxOut(src, dst []float32, bs int, n, s, w, e []float32) {
	at := func(r, c int) float32 {
		switch {
		case r < 0:
			return n[c]
		case r >= bs:
			return s[c]
		case c < 0:
			return w[r]
		case c >= bs:
			return e[r]
		default:
			return src[r*bs+c]
		}
	}
	for r := 0; r < bs; r++ {
		for c := 0; c < bs; c++ {
			dst[r*bs+c] = 0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
		}
	}
}

// haloFor returns the halo region of block (i,j) in direction d, or the
// constant boundary halo at the walls.
func (a *App) haloFor(i, j, d int) *region.Float32 {
	switch d {
	case dirN:
		if i == 0 {
			return a.boundary[dirN]
		}
	case dirS:
		if i == a.p.NB-1 {
			return a.boundary[dirS]
		}
	case dirW:
		if j == 0 {
			return a.boundary[dirW]
		}
	default:
		if j == a.p.NB-1 {
			return a.boundary[dirE]
		}
	}
	return a.halos[i][j][d]
}

// neighbor returns the block adjacent to (i,j) in direction d from grid g,
// or nil at a wall.
func (a *App) neighbor(g [][]*region.Float32, i, j, d int) *region.Float32 {
	switch d {
	case dirN:
		if i > 0 {
			return g[i-1][j]
		}
	case dirS:
		if i < a.p.NB-1 {
			return g[i+1][j]
		}
	case dirW:
		if j > 0 {
			return g[i][j-1]
		}
	default:
		if j < a.p.NB-1 {
			return g[i][j+1]
		}
	}
	return nil
}

// Run implements apps.App.
func (a *App) Run(rt *taskrt.Runtime) {
	bs := a.p.BS
	copyTask := rt.RegisterType(taskrt.TypeConfig{
		Name: "copy_halo",
		Run: func(t *taskrt.Task) {
			src := t.Float32s(0)
			halo := t.Region(1)
			copyEdge(src, bs, a.haloEdge[halo], halo.(*region.Float32).Data)
		},
	})
	stencilGS := rt.RegisterType(taskrt.TypeConfig{
		Name:    "stencilComputation",
		Memoize: true,
		TauMax:  0.01, // Table II: τmax = 1%
		LTraining: func() int {
			if a.p.Variant == Jacobi {
				return 150 // Table II: Jacobi trains longer
			}
			return 100 // Table II: Gauss-Seidel
		}(),
		Run: func(t *taskrt.Task) {
			if a.p.Variant == Jacobi {
				relaxOut(t.Float32s(0), t.Float32s(5), bs,
					t.Float32s(1), t.Float32s(2), t.Float32s(3), t.Float32s(4))
			} else {
				relaxInPlace(t.Float32s(0), bs,
					t.Float32s(1), t.Float32s(2), t.Float32s(3), t.Float32s(4))
			}
		},
	})

	// Each block sweep is a regular loop nest: batch the copy-halo and
	// stencil submissions so their dense intra-batch halo dependences
	// are wired master-locally. The batcher must drain before every
	// Wait barrier (Jacobi synchronizes per iteration).
	sb := rt.Batcher()
	cur, nxt := a.blocks, a.next
	for it := 0; it < a.p.Iterations; it++ {
		for i := 0; i < a.p.NB; i++ {
			for j := 0; j < a.p.NB; j++ {
				// Fill halos from neighbors. In Gauss-Seidel the
				// submission order makes north/west halos carry
				// this iteration's fresh values and south/east the
				// previous iteration's — the classic GS wavefront.
				for d := 0; d < 4; d++ {
					if nb := a.neighbor(cur, i, j, d); nb != nil {
						sb.Add(copyTask, taskrt.In(nb), taskrt.Out(a.halos[i][j][d]))
					}
				}
				n := a.haloFor(i, j, dirN)
				s := a.haloFor(i, j, dirS)
				w := a.haloFor(i, j, dirW)
				e := a.haloFor(i, j, dirE)
				if a.p.Variant == Jacobi {
					sb.Add(stencilGS,
						taskrt.In(cur[i][j]), taskrt.In(n), taskrt.In(s),
						taskrt.In(w), taskrt.In(e), taskrt.Out(nxt[i][j]))
				} else {
					sb.Add(stencilGS,
						taskrt.InOut(cur[i][j]), taskrt.In(n), taskrt.In(s),
						taskrt.In(w), taskrt.In(e))
				}
			}
		}
		if a.p.Variant == Jacobi {
			// The algorithm synchronizes at the end of each iteration.
			sb.Flush()
			rt.Wait()
			cur, nxt = nxt, cur
		}
	}
	sb.Flush()
	rt.Wait()
	a.finalInNext = a.p.Variant == Jacobi && a.p.Iterations%2 == 1
}

// finalGrid returns the grid holding the solution.
func (a *App) finalGrid() [][]*region.Float32 {
	if a.finalInNext {
		return a.next
	}
	return a.blocks
}

// Result implements apps.App: correctness is measured on the stencil
// matrix (Table I).
func (a *App) Result() []region.Region {
	g := a.finalGrid()
	var out []region.Region
	for i := range g {
		for j := range g[i] {
			out = append(out, g[i][j])
		}
	}
	return out
}

// Correctness implements apps.App.
func (a *App) Correctness(ref apps.App) float64 {
	return metrics.Correctness(metrics.Euclidean(ref.Result(), a.Result()))
}

// MemoTaskInputBytes implements apps.App: one block plus four halos
// (paper: 4,210,688 bytes = (1024² + 4·1024) floats).
func (a *App) MemoTaskInputBytes() int {
	return 4 * (a.p.BS*a.p.BS + 4*a.p.BS)
}

// FootprintBytes implements apps.App.
func (a *App) FootprintBytes() int {
	n := a.p.NB * a.p.NB * a.p.BS * a.p.BS * 4
	if a.p.Variant == Jacobi {
		n *= 2
	}
	n += a.p.NB * a.p.NB * 4 * a.p.BS * 4 // halos
	return n
}

// NumStencilTasks returns the stencil task count (Table I).
func (a *App) NumStencilTasks() int { return a.p.NB * a.p.NB * a.p.Iterations }

// Params returns the instance's parameters.
func (a *App) Params() Params { return a.p }
