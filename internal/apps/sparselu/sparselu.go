// Package sparselu implements the LU benchmark of Table I: blocked sparse
// LU decomposition of an N×N matrix into L·U, after the BSC taskified
// SparseLU kernel the paper uses. Four task types factorize the blocked
// matrix: lu0 (diagonal block factorization), fwd (forward solve of a row
// panel), bdiv (backward solve of a column panel) and bmod (trailing
// update C -= A·B). ATM is applied to bmod, "the most frequently called
// routine, which subtracts the result of a row-column dot product from
// the elements of a vector".
//
// Redundancy structure (§V-D): the input matrix carries repeated block
// patterns, so identical (A, B, C) triples recur at short distances spread
// over the whole execution; bmod's O(bs³) arithmetic over O(bs²) inputs
// makes every hit valuable. The short reuse distances are why the IKT
// gives LU its largest gains (§V-A).
package sparselu

import (
	"atm/internal/apps"
	"atm/internal/metrics"
	"atm/internal/region"
	"atm/internal/taskrt"
)

// Params sizes a workload.
type Params struct {
	// NB is the number of blocks per matrix side (paper: 20).
	NB int
	// BS is the block side in elements (paper: 256).
	BS int
	// Density is the probability that an off-diagonal template cell is
	// non-empty (the sparse structure).
	Density float64
	// PatternPool is the number of distinct non-zero block patterns the
	// generator draws from; small pools create the repeated block values
	// that give bmod its redundancy.
	PatternPool int
	// Period is the block-index period of the sparsity template and the
	// value patterns: block (i, j) is structurally and numerically
	// identical to block (i+Period, j) away from the diagonal. Periodic
	// structure makes whole block-rows twins whose factorization
	// histories coincide, reproducing the high bmod reuse the paper
	// reports (49–90%) spread over the whole execution (Fig. 9).
	Period int
	// Seed fixes the generated matrix.
	Seed uint64
}

// ParamsFor returns parameters at a scale. ScalePaper follows Table I:
// 20×20 blocks of 256×256 elements, bmod task inputs of
// 786,432 bytes (3 × 256² floats) and about 670 bmod tasks.
func ParamsFor(scale apps.Scale) Params {
	switch scale {
	case apps.ScalePaper:
		return Params{NB: 20, BS: 256, Density: 0.45, PatternPool: 4, Period: 5, Seed: 5}
	case apps.ScaleBench:
		return Params{NB: 16, BS: 32, Density: 0.45, PatternPool: 4, Period: 4, Seed: 5}
	default:
		return Params{NB: 6, BS: 8, Density: 0.5, PatternPool: 3, Period: 3, Seed: 5}
	}
}

// App is one SparseLU workload instance.
type App struct {
	p Params
	// blocks[i][j] holds block (i,j) or nil where the (possibly filled)
	// matrix is empty. After Run it contains the LU factors in place.
	blocks [][]*region.Float32
	// origDense is the dense original matrix, kept to evaluate the
	// |A - L·U|²/|A|² residual of equation 4.
	origDense []float64
}

// New builds a workload with explicit parameters.
func New(p Params) *App {
	if p.NB < 2 {
		p.NB = 2
	}
	if p.BS < 2 {
		p.BS = 2
	}
	if p.PatternPool < 1 {
		p.PatternPool = 1
	}
	if p.Period < 1 {
		p.Period = 1
	}
	a := &App{p: p}
	rng := apps.NewRNG(p.Seed)

	// Distinct block patterns. Values are kept small relative to the
	// diagonal dominance added below so the factorization is stable
	// without pivoting.
	patterns := make([][]float32, p.PatternPool)
	for k := range patterns {
		pat := make([]float32, p.BS*p.BS)
		for i := range pat {
			pat[i] = 0.01 * (2*rng.Float32() - 1)
		}
		patterns[k] = pat
	}

	// Periodic sparsity template and value assignment: cell (i, j) is
	// drawn from template position (i mod Period, j mod Period), so
	// block-rows at distance Period carry identical values and
	// structure off the diagonal — the repeated patterns in the
	// program's input the paper identifies as LU's redundancy source.
	per := p.Period
	tmpl := make([][]bool, per)
	tpat := make([][]int, per)
	for r := 0; r < per; r++ {
		tmpl[r] = make([]bool, per)
		tpat[r] = make([]int, per)
		for c := 0; c < per; c++ {
			tmpl[r][c] = rng.Float64() < p.Density
			tpat[r][c] = rng.Intn(p.PatternPool)
		}
	}

	a.blocks = make([][]*region.Float32, p.NB)
	for i := range a.blocks {
		a.blocks[i] = make([]*region.Float32, p.NB)
	}
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			if i != j && !tmpl[i%per][j%per] {
				continue
			}
			blk := region.NewFloat32(p.BS * p.BS)
			copy(blk.Data, patterns[tpat[i%per][j%per]])
			if i == j {
				// Diagonal dominance for pivot-free stability.
				for d := 0; d < p.BS; d++ {
					blk.Data[d*p.BS+d] += 4
				}
			}
			a.blocks[i][j] = blk
		}
	}

	// Snapshot the dense original for the equation-4 residual.
	n := p.NB * p.BS
	a.origDense = make([]float64, n*n)
	for i := 0; i < p.NB; i++ {
		for j := 0; j < p.NB; j++ {
			if a.blocks[i][j] == nil {
				continue
			}
			for r := 0; r < p.BS; r++ {
				for c := 0; c < p.BS; c++ {
					a.origDense[(i*p.BS+r)*n+j*p.BS+c] = float64(a.blocks[i][j].Data[r*p.BS+c])
				}
			}
		}
	}
	return a
}

// Factory builds an instance at the given scale.
func Factory(scale apps.Scale) apps.App { return New(ParamsFor(scale)) }

// Name implements apps.App.
func (a *App) Name() string { return "LU" }

// lu0 factorizes a diagonal block in place without pivoting.
func lu0(d []float32, bs int) {
	for k := 0; k < bs; k++ {
		pivot := d[k*bs+k]
		for i := k + 1; i < bs; i++ {
			d[i*bs+k] /= pivot
			lik := d[i*bs+k]
			for j := k + 1; j < bs; j++ {
				d[i*bs+j] -= lik * d[k*bs+j]
			}
		}
	}
}

// fwd solves L·X = B for a row-panel block B in place (L is the unit
// lower triangle of the factored diagonal block).
func fwd(diag, b []float32, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			lik := diag[i*bs+k]
			for j := 0; j < bs; j++ {
				b[i*bs+j] -= lik * b[k*bs+j]
			}
		}
	}
}

// bdiv solves X·U = B for a column-panel block B in place (U is the upper
// triangle of the factored diagonal block).
func bdiv(diag, b []float32, bs int) {
	for k := 0; k < bs; k++ {
		ukk := diag[k*bs+k]
		for i := 0; i < bs; i++ {
			b[i*bs+k] /= ukk
			bik := b[i*bs+k]
			for j := k + 1; j < bs; j++ {
				b[i*bs+j] -= bik * diag[k*bs+j]
			}
		}
	}
}

// bmod performs the trailing update C -= A·B: the memoized task type.
func bmod(aBlk, bBlk, c []float32, bs int) {
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			aik := aBlk[i*bs+k]
			if aik == 0 {
				continue
			}
			row := bBlk[k*bs:]
			crow := c[i*bs:]
			for j := 0; j < bs; j++ {
				crow[j] -= aik * row[j]
			}
		}
	}
}

// Run implements apps.App.
func (a *App) Run(rt *taskrt.Runtime) {
	bs := a.p.BS
	tLU0 := rt.RegisterType(taskrt.TypeConfig{
		Name: "lu0",
		Run:  func(t *taskrt.Task) { lu0(t.Float32s(0), bs) },
	})
	tFwd := rt.RegisterType(taskrt.TypeConfig{
		Name: "fwd",
		Run:  func(t *taskrt.Task) { fwd(t.Float32s(0), t.Float32s(1), bs) },
	})
	tBdiv := rt.RegisterType(taskrt.TypeConfig{
		Name: "bdiv",
		Run:  func(t *taskrt.Task) { bdiv(t.Float32s(0), t.Float32s(1), bs) },
	})
	tBmod := rt.RegisterType(taskrt.TypeConfig{
		Name:      "bmod",
		Memoize:   true,
		TauMax:    0.01, // Table II: τmax = 1%
		LTraining: 30,   // Table II
		Run:       func(t *taskrt.Task) { bmod(t.Float32s(0), t.Float32s(1), t.Float32s(2), bs) },
	})

	// The k-loop nest is a regular submission stream: batch it so the
	// master wires the dense intra-batch dependences (lu0→fwd/bdiv→bmod)
	// without atomics and publishes ready tasks block-wise.
	sb := rt.Batcher()
	nb := a.p.NB
	for k := 0; k < nb; k++ {
		sb.Add(tLU0, taskrt.InOut(a.blocks[k][k]))
		for j := k + 1; j < nb; j++ {
			if a.blocks[k][j] != nil {
				sb.Add(tFwd, taskrt.In(a.blocks[k][k]), taskrt.InOut(a.blocks[k][j]))
			}
		}
		for i := k + 1; i < nb; i++ {
			if a.blocks[i][k] != nil {
				sb.Add(tBdiv, taskrt.In(a.blocks[k][k]), taskrt.InOut(a.blocks[i][k]))
			}
		}
		for i := k + 1; i < nb; i++ {
			if a.blocks[i][k] == nil {
				continue
			}
			for j := k + 1; j < nb; j++ {
				if a.blocks[k][j] == nil {
					continue
				}
				if a.blocks[i][j] == nil {
					// Fill-in: allocate a clean block (the kernel's
					// allocate_clean_block), decided at submission
					// time on the master thread.
					a.blocks[i][j] = region.NewFloat32(bs * bs)
				}
				sb.Add(tBmod,
					taskrt.In(a.blocks[i][k]), taskrt.In(a.blocks[k][j]),
					taskrt.InOut(a.blocks[i][j]))
			}
		}
	}
	sb.Flush()
	rt.Wait()
}

// Result implements apps.App: the in-place LU factors.
func (a *App) Result() []region.Region {
	var out []region.Region
	for i := range a.blocks {
		for j := range a.blocks[i] {
			if a.blocks[i][j] != nil {
				out = append(out, a.blocks[i][j])
			}
		}
	}
	return out
}

// denseLU assembles the dense combined LU factor matrix.
func (a *App) denseLU() []float64 {
	n := a.p.NB * a.p.BS
	lu := make([]float64, n*n)
	for i := 0; i < a.p.NB; i++ {
		for j := 0; j < a.p.NB; j++ {
			if a.blocks[i][j] == nil {
				continue
			}
			for r := 0; r < a.p.BS; r++ {
				for c := 0; c < a.p.BS; c++ {
					lu[(i*a.p.BS+r)*n+j*a.p.BS+c] = float64(a.blocks[i][j].Data[r*a.p.BS+c])
				}
			}
		}
	}
	return lu
}

// Correctness implements apps.App. LU uses the application-specific
// measure of equation 4, Er = |A − L·U|²/|A|², evaluated against this
// run's own original matrix; the reference run is not needed but accepted
// for interface uniformity.
func (a *App) Correctness(apps.App) float64 {
	n := a.p.NB * a.p.BS
	return metrics.Correctness(metrics.LUResidual(a.origDense, a.denseLU(), n))
}

// MemoTaskInputBytes implements apps.App: bmod reads two blocks and
// updates a third (the paper counts 786,432 bytes = 3·256²·4).
func (a *App) MemoTaskInputBytes() int { return 3 * a.p.BS * a.p.BS * 4 }

// FootprintBytes implements apps.App.
func (a *App) FootprintBytes() int {
	nblocks := 0
	for i := range a.blocks {
		for j := range a.blocks[i] {
			if a.blocks[i][j] != nil {
				nblocks++
			}
		}
	}
	return nblocks*a.p.BS*a.p.BS*4 + len(a.origDense)*8
}

// Params returns the instance's parameters.
func (a *App) Params() Params { return a.p }
