package sparselu

import (
	"math"
	"testing"

	"atm/internal/apps"
	"atm/internal/apps/apptest"
)

func TestDeterministic(t *testing.T)       { apptest.CheckDeterministic(t, Factory) }
func TestStaticExact(t *testing.T)         { apptest.CheckStaticExact(t, Factory) }
func TestWarmStart(t *testing.T)           { apptest.CheckWarmStart(t, Factory) }
func TestWarmStartDeltaChain(t *testing.T) { apptest.CheckWarmStartDeltaChain(t, Factory) }

func TestDynamicBounded(t *testing.T) {
	// LU amplifies errors (§V-B: "errors can get easily propagated"), so
	// dynamic ATM either stays exact or visibly degrades; the adaptive
	// training must keep it above 90%.
	apptest.CheckDynamicBounded(t, Factory, 90)
}

func TestBaselineResidualTiny(t *testing.T) {
	app := New(ParamsFor(apps.ScaleTest))
	apptest.RunBaseline(func(apps.Scale) apps.App { return app }, 4)
	// Equation 4 on an exact (float32) factorization: correctness ~100%.
	if c := app.Correctness(nil); c < 99.99 {
		t.Fatalf("baseline LU correctness=%v", c)
	}
}

func TestLU0SmallFactorization(t *testing.T) {
	// A = [[4,2],[2,3]] -> L21 = 0.5, U = [[4,2],[0,2]].
	d := []float32{4, 2, 2, 3}
	lu0(d, 2)
	if d[0] != 4 || d[1] != 2 {
		t.Fatalf("U row 0 = %v", d[:2])
	}
	if d[2] != 0.5 {
		t.Fatalf("L21=%v", d[2])
	}
	if d[3] != 2 {
		t.Fatalf("U22=%v", d[3])
	}
}

func TestFwdBdivInverses(t *testing.T) {
	// fwd solves L·X=B; reconstructing L·X must give back B. Use the
	// factored diagonal from a known matrix.
	bs := 2
	diag := []float32{4, 2, 0.5, 2} // L=[1,0;0.5,1], U=[4,2;0,2]
	b := []float32{8, 6, 10, 7}
	orig := make([]float32, 4)
	copy(orig, b)
	fwd(diag, b, bs)
	// L*X: row0 = X row0; row1 = 0.5*X row0 + X row1.
	if b[0] != orig[0] || b[1] != orig[1] {
		t.Fatal("fwd must not change row 0")
	}
	if 0.5*b[0]+b[2] != orig[2] || 0.5*b[1]+b[3] != orig[3] {
		t.Fatal("fwd row 1 incorrect")
	}

	c := []float32{8, 6, 10, 7}
	origC := make([]float32, 4)
	copy(origC, c)
	bdiv(diag, c, bs)
	// X*U must reproduce the original: col0 = X[:,0]*4; col1 = X[:,0]*2 + X[:,1]*2.
	if c[0]*4 != origC[0] || c[2]*4 != origC[2] {
		t.Fatal("bdiv column 0 incorrect")
	}
	if c[0]*2+c[1]*2 != origC[1] || c[2]*2+c[3]*2 != origC[3] {
		t.Fatal("bdiv column 1 incorrect")
	}
}

func TestBmodSubtractsProduct(t *testing.T) {
	bs := 2
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{100, 100, 100, 100}
	bmod(a, b, c, bs)
	// A*B = [[19,22],[43,50]].
	want := []float32{81, 78, 57, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c=%v want %v", c, want)
		}
	}
}

func TestBmodSkipsZeroRows(t *testing.T) {
	bs := 2
	a := []float32{0, 0, 0, 2}
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	bmod(a, b, c, bs)
	if c[0] != 1 || c[1] != 1 {
		t.Fatal("zero A row must leave C row untouched")
	}
	if c[2] != 1-14 || c[3] != 1-16 {
		t.Fatalf("c=%v", c)
	}
}

func TestFillInAllocation(t *testing.T) {
	// A matrix with an empty (i,j) block but non-empty (i,k) and (k,j)
	// must allocate the fill-in during submission.
	app := New(ParamsFor(apps.ScaleTest))
	var before int
	for i := range app.blocks {
		for j := range app.blocks[i] {
			if app.blocks[i][j] != nil {
				before++
			}
		}
	}
	apptest.RunBaseline(func(apps.Scale) apps.App { return app }, 2)
	var after int
	for i := range app.blocks {
		for j := range app.blocks[i] {
			if app.blocks[i][j] != nil {
				after++
			}
		}
	}
	if after < before {
		t.Fatal("blocks disappeared")
	}
	// With density < 1 some fill-in should normally appear at this seed.
	if after == before {
		t.Log("no fill-in at this seed (acceptable but unusual)")
	}
}

func TestRepeatedPatternsExist(t *testing.T) {
	// The pattern pool must generate identical off-diagonal blocks — the
	// bmod redundancy source.
	app := New(Params{NB: 8, BS: 4, Density: 0.9, PatternPool: 2, Seed: 5})
	dup := false
	var list [][]float32
	for i := range app.blocks {
		for j := range app.blocks[i] {
			if i != j && app.blocks[i][j] != nil {
				list = append(list, app.blocks[i][j].Data)
			}
		}
	}
	for i := 0; i < len(list) && !dup; i++ {
		for j := i + 1; j < len(list); j++ {
			same := true
			for k := range list[i] {
				if list[i][k] != list[j][k] {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
	}
	if !dup {
		t.Fatal("pattern pool of 2 must produce duplicate blocks")
	}
}

func TestDiagonalDominanceKeepsFactorsFinite(t *testing.T) {
	app := New(ParamsFor(apps.ScaleTest))
	apptest.RunBaseline(func(apps.Scale) apps.App { return app }, 4)
	for i := range app.blocks {
		for j := range app.blocks[i] {
			if app.blocks[i][j] == nil {
				continue
			}
			for _, v := range app.blocks[i][j].Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatal("factorization blew up without pivoting")
				}
			}
		}
	}
}

func TestTableIShape(t *testing.T) {
	p := ParamsFor(apps.ScalePaper)
	if p.NB != 20 || p.BS != 256 {
		t.Fatal("paper scale must match Table I (20x20 blocks of 256)")
	}
	a := New(ParamsFor(apps.ScaleTest))
	if a.Name() != "LU" {
		t.Fatal("name")
	}
	if a.MemoTaskInputBytes() != 3*a.p.BS*a.p.BS*4 {
		t.Fatal("bmod reads three blocks")
	}
}
