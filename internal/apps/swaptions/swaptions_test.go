package swaptions

import (
	"math"
	"testing"

	"atm/internal/apps"
	"atm/internal/apps/apptest"
)

func TestDeterministic(t *testing.T)       { apptest.CheckDeterministic(t, Factory) }
func TestStaticExact(t *testing.T)         { apptest.CheckStaticExact(t, Factory) }
func TestWarmStart(t *testing.T)           { apptest.CheckWarmStart(t, Factory) }
func TestWarmStartDeltaChain(t *testing.T) { apptest.CheckWarmStartDeltaChain(t, Factory) }

func TestDynamicBounded(t *testing.T) {
	// The paper reports 96.8% for Swaptions (its worst case, Fig. 4).
	apptest.CheckDynamicBounded(t, Factory, 90)
}

func TestPriceIsDeterministicInInputs(t *testing.T) {
	// The Monte-Carlo seed derives from the inputs: equal parameter
	// vectors must price to bit-equal results (§III-E's determinism
	// requirement), regardless of execution order.
	app := New(ParamsFor(apps.ScaleTest))
	in := app.inputs[0].Data
	out1 := make([]float64, 2)
	out2 := make([]float64, 2)
	price(in, out1, 100, 8)
	price(in, out2, 100, 8)
	if out1[0] != out2[0] || out1[1] != out2[1] {
		t.Fatal("pricing must be a pure function of the inputs")
	}
}

func TestPriceSensitivityToInputs(t *testing.T) {
	app := New(ParamsFor(apps.ScaleTest))
	in := make([]float64, paramLen)
	copy(in, app.inputs[0].Data)
	base := make([]float64, 2)
	price(in, base, 200, 8)
	in[0] *= 2 // double the strike
	moved := make([]float64, 2)
	price(in, moved, 200, 8)
	if base[0] == moved[0] {
		t.Fatal("strike changes must move the price")
	}
	if moved[0] > base[0] {
		t.Fatal("a payer swaption must be worth less at a higher strike")
	}
}

func TestPriceIsFiniteAndNonNegative(t *testing.T) {
	app := New(ParamsFor(apps.ScaleTest))
	for i, in := range app.inputs {
		out := make([]float64, 2)
		price(in.Data, out, 50, 8)
		if math.IsNaN(out[0]) || math.IsInf(out[0], 0) || out[0] < 0 {
			t.Fatalf("swaption %d price=%v", i, out[0])
		}
		if out[1] < 0 {
			t.Fatalf("swaption %d stderr=%v", i, out[1])
		}
	}
}

func TestPortfolioCarriesExactDuplicates(t *testing.T) {
	app := New(ParamsFor(apps.ScaleTest))
	dups := 0
	for i := range app.inputs {
		for j := i + 1; j < len(app.inputs); j++ {
			if app.inputs[i].EqualContents(app.inputs[j]) {
				dups++
			}
		}
	}
	if dups == 0 {
		t.Fatal("portfolio must contain exact duplicates (static ATM's reuse source)")
	}
}

func TestNearDuplicatesShareMSBs(t *testing.T) {
	// Near-duplicates differ from some pool entry only in the lowest
	// mantissa byte of curve points: their 7 upper bytes must agree.
	p := ParamsFor(apps.ScaleTest)
	app := New(p)
	near := 0
	for i := range app.inputs {
		for j := 0; j < i; j++ {
			a, b := app.inputs[i].Data, app.inputs[j].Data
			if app.inputs[i].EqualContents(app.inputs[j]) {
				continue
			}
			match := true
			for k := range a {
				if math.Float64bits(a[k])>>8 != math.Float64bits(b[k])>>8 {
					match = false
					break
				}
			}
			if match {
				near++
			}
		}
	}
	if near == 0 {
		t.Fatal("portfolio must contain MSB-identical near-duplicates (dynamic ATM's extra reuse)")
	}
}

func TestTableIShape(t *testing.T) {
	if paramLen*8 != 376 {
		t.Fatalf("task input must be 376 bytes as in Table I, got %d", paramLen*8)
	}
	p := ParamsFor(apps.ScalePaper)
	if p.NumSwaptions != 512 {
		t.Fatal("paper scale must use 512 swaptions")
	}
	a := New(ParamsFor(apps.ScaleTest))
	if a.Name() != "Swaptions" || a.NumTasks() != len(a.inputs) {
		t.Fatal("accounting")
	}
}
